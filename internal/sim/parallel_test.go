package sim

import (
	"testing"

	"github.com/sabre-geo/sabre/internal/roadnet"
	"github.com/sabre-geo/sabre/internal/wire"
)

// parallelTestWorkload is small enough to run every strategy twice (serial
// and parallel) under -race in a few seconds while still crossing grid
// cells and firing alarms.
func parallelTestWorkload(t *testing.T) *Workload {
	t.Helper()
	cfg := WorkloadConfig{
		Seed:              7,
		Vehicles:          60,
		DurationTicks:     150,
		NumAlarms:         80,
		PublicFraction:    0.15,
		SharedSubscribers: 2,
		AlarmMinSide:      100,
		AlarmMaxSide:      400,
		Network:           roadnet.Config{Side: 3000, Spacing: 500, Jitter: 0.25, DropProb: 0.1, Seed: 7},
	}
	w, err := BuildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestParallelMatchesSerial verifies the parallel tick driver is a pure
// performance change: for every strategy, the report it produces —
// messages, bytes, triggers, and the deterministic cost-model totals —
// equals the serial driver's bit for bit. (Generated workloads have no
// moving-target alarms, so even push timing cannot differ.)
func TestParallelMatchesSerial(t *testing.T) {
	w := parallelTestWorkload(t)
	cases := []StrategyConfig{
		{Strategy: wire.StrategyPeriodic},
		{Strategy: wire.StrategySafePeriod},
		{Strategy: wire.StrategyMWPSR},
		{Strategy: wire.StrategyPBSR},
		{Strategy: wire.StrategyPBSR, PrecomputePublicBitmaps: true},
		{Strategy: wire.StrategyOptimal},
	}
	for _, sc := range cases {
		sc := sc
		name := sc.Strategy.String()
		if sc.PrecomputePublicBitmaps {
			name += "-precomputed"
		}
		t.Run(name, func(t *testing.T) {
			serial, err := Run(w, sc)
			if err != nil {
				t.Fatal(err)
			}
			par := sc
			par.Parallel = true
			par.Workers = 4
			parallel, err := Run(w, par)
			if err != nil {
				t.Fatal(err)
			}
			if !TriggersEqual(serial.Triggers, parallel.Triggers) {
				t.Errorf("trigger sets differ: serial %d, parallel %d",
					len(serial.Triggers), len(parallel.Triggers))
			}
			// Triggers must match not just as a set but in exact order:
			// the parallel driver reassembles per-tick results in client
			// index order, reproducing the serial loop's append order.
			for i := range serial.Triggers {
				if i >= len(parallel.Triggers) || serial.Triggers[i] != parallel.Triggers[i] {
					t.Errorf("trigger order diverges at %d", i)
					break
				}
			}
			if serial.UplinkMessages != parallel.UplinkMessages ||
				serial.UplinkBytes != parallel.UplinkBytes {
				t.Errorf("uplink differs: serial %d/%d, parallel %d/%d",
					serial.UplinkMessages, serial.UplinkBytes,
					parallel.UplinkMessages, parallel.UplinkBytes)
			}
			if serial.DownlinkMessages != parallel.DownlinkMessages ||
				serial.DownlinkBytes != parallel.DownlinkBytes {
				t.Errorf("downlink differs: serial %d/%d, parallel %d/%d",
					serial.DownlinkMessages, serial.DownlinkBytes,
					parallel.DownlinkMessages, parallel.DownlinkBytes)
			}
			if serial.TotalServerMinutes != parallel.TotalServerMinutes {
				t.Errorf("cost-model minutes differ: serial %v, parallel %v",
					serial.TotalServerMinutes, parallel.TotalServerMinutes)
			}
			if serial.SafeRegionComputations != parallel.SafeRegionComputations ||
				serial.AlarmEvaluations != parallel.AlarmEvaluations {
				t.Errorf("work counters differ: serial %d/%d, parallel %d/%d",
					serial.SafeRegionComputations, serial.AlarmEvaluations,
					parallel.SafeRegionComputations, parallel.AlarmEvaluations)
			}
			if serial.ClientChecks != parallel.ClientChecks ||
				serial.ClientProbes != parallel.ClientProbes {
				t.Errorf("client counters differ: serial %d/%d, parallel %d/%d",
					serial.ClientChecks, serial.ClientProbes,
					parallel.ClientChecks, parallel.ClientProbes)
			}
		})
	}
}

// TestParallelWorkerCounts: the report must not depend on the pool size.
func TestParallelWorkerCounts(t *testing.T) {
	w := parallelTestWorkload(t)
	base, err := Run(w, StrategyConfig{Strategy: wire.StrategyMWPSR})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		r, err := Run(w, StrategyConfig{Strategy: wire.StrategyMWPSR, Parallel: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !TriggersEqual(base.Triggers, r.Triggers) ||
			base.UplinkMessages != r.UplinkMessages ||
			base.DownlinkBytes != r.DownlinkBytes ||
			base.TotalServerMinutes != r.TotalServerMinutes {
			t.Errorf("workers=%d diverges from serial run", workers)
		}
	}
}
