package server

import (
	"testing"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/wire"
)

// TestExpiredSessionDropsStalePending: a client whose session was
// idle-TTL-expired (durably logged) and who reconnects with its old
// token must get a clean fresh-session response — no stale pendingFired
// replay — live and after a crash recovery.
func TestExpiredSessionDropsStalePending(t *testing.T) {
	dir := t.TempDir()
	e := newDurableEngine(t, dir, nil)
	now := time.Unix(5000, 0)
	e.nowFn = func() time.Time { return now }

	if _, err := e.InstallAlarms([]alarm.Alarm{
		{Scope: alarm.Private, Owner: 1, Region: geom.R(400, 400, 600, 600)},
	}); err != nil {
		t.Fatal(err)
	}
	tok, _, _ := hello(t, e, 1, wire.StrategyMWPSR, 0)
	out := handle(t, e, 1, 1, geom.Pt(500, 500))
	if len(firedIn(out)) != 1 {
		t.Fatalf("setup: no firing, got %v", out)
	}
	if pending := e.PendingFired(1); len(pending) != 1 {
		t.Fatalf("setup: pending = %v, want one unacked firing", pending)
	}

	now = now.Add(2 * time.Minute)
	if n, err := e.ExpireSessions(time.Minute); err != nil || n != 1 {
		t.Fatalf("expiry: n=%d err=%v", n, err)
	}

	// The stale token must open a FRESH session with no firing replay.
	tok2, resumed, out := hello(t, e, 1, wire.StrategyMWPSR, tok)
	if resumed || tok2 == tok {
		t.Fatalf("expired session resumed (token %d -> %d)", tok, tok2)
	}
	if got := firedIn(out); len(got) != 0 {
		t.Fatalf("fresh session replayed stale pending %v", got)
	}

	// Expiry is durable: the same holds on an engine recovered from disk.
	e.Store().Kill()
	e2 := newDurableEngine(t, dir, nil)
	_, resumed, out = hello(t, e2, 1, wire.StrategyMWPSR, tok)
	if resumed {
		t.Fatal("recovered engine resurrected the expired session")
	}
	if got := firedIn(out); len(got) != 0 {
		t.Fatalf("recovered engine replayed stale pending %v", got)
	}
}

// TestExportImportRoundTrip: ExportSession removes the session (durably)
// from the old shard and ImportSession rebuilds it — pending firings,
// fired marks and a fresh token — on the new one, surviving a crash of
// the importing engine.
func TestExportImportRoundTrip(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a := newDurableEngine(t, dirA, nil)
	b := newDurableEngine(t, dirB, nil)

	region := geom.R(400, 400, 600, 600)
	idsA, err := a.InstallAlarms([]alarm.Alarm{{Scope: alarm.Private, Owner: 1, Region: region}})
	if err != nil {
		t.Fatal(err)
	}
	// The overlapping install: B has the same alarm under the same ID.
	if err := b.InstallAlarmsAssigned([]alarm.Alarm{{ID: idsA[0], Scope: alarm.Private, Owner: 1, Region: region}}); err != nil {
		t.Fatal(err)
	}
	id := uint64(idsA[0])

	tok, _, _ := hello(t, a, 1, wire.StrategyMWPSR, 0)
	out := handle(t, a, 1, 1, geom.Pt(500, 500))
	if len(firedIn(out)) != 1 {
		t.Fatalf("setup: no firing, got %v", out)
	}

	rec, ok, err := a.ExportSession(1)
	if err != nil || !ok {
		t.Fatalf("export: ok=%v err=%v", ok, err)
	}
	if rec.User != 1 || !rec.Reliable || len(rec.PendingFired) != 1 || rec.PendingFired[0] != id {
		t.Fatalf("exported rec = %+v", rec)
	}
	// The old shard forgot the session — stale token opens fresh.
	if _, resumed, _ := hello(t, a, 1, wire.StrategyMWPSR, tok); resumed {
		t.Fatal("exported session still resumable on the old shard")
	}
	if _, ok, _ := a.ExportSession(1); ok {
		// The fresh hello above re-created state; export THAT is fine, but
		// the original reliable export must have removed the old one: check
		// the new export carries no pending.
		rec2, _, _ := a.ExportSession(1)
		if len(rec2.PendingFired) != 0 {
			t.Fatalf("old shard kept pending after export: %+v", rec2)
		}
	}

	tokB, err := b.ImportSession(rec)
	if err != nil || tokB == 0 {
		t.Fatalf("import: tok=%d err=%v", tokB, err)
	}
	if pending := b.PendingFired(1); len(pending) != 1 || pending[0] != id {
		t.Fatalf("imported pending = %v, want [%d]", pending, id)
	}
	// The fired mark came along: the new shard must not refire the pair.
	out = handle(t, b, 1, 1, geom.Pt(500, 500))
	if trig := b.Metrics().Snapshot().AlarmsTriggered; trig != 0 {
		t.Errorf("imported pair refired on the new shard (AlarmsTriggered=%d)", trig)
	}
	_ = out

	// The import is durable: kill B, recover, resume with the minted token.
	b.Store().Kill()
	b2 := newDurableEngine(t, dirB, nil)
	_, resumed, out := hello(t, b2, 1, wire.StrategyMWPSR, tokB)
	if !resumed {
		t.Fatal("imported session did not survive the new shard's crash")
	}
	if got := firedIn(out); len(got) != 1 || got[0] != id {
		t.Fatalf("recovered redelivery = %v, want [%d]", got, id)
	}
}

// TestExportSessionPlainClient: a fire-and-forget (Register) client
// exports as a non-reliable record and imports with no token.
func TestExportSessionPlainClient(t *testing.T) {
	a := newEngine(t, nil)
	b := newEngine(t, nil)
	register(t, a, 7, wire.StrategyMWPSR)
	handle(t, a, 7, 1, geom.Pt(500, 500))

	rec, ok, err := a.ExportSession(7)
	if err != nil || !ok {
		t.Fatalf("export: ok=%v err=%v", ok, err)
	}
	if rec.Reliable {
		t.Fatalf("plain client exported as reliable: %+v", rec)
	}
	tok, err := b.ImportSession(rec)
	if err != nil || tok != 0 {
		t.Fatalf("plain import: tok=%d err=%v, want 0 token", tok, err)
	}
	// The new shard serves it immediately.
	if _, err := b.HandleUpdate(wire.PositionUpdate{User: 7, Seq: 2, Pos: geom.Pt(600, 500)}); err != nil {
		t.Fatal(err)
	}
}

// TestExportSessionUnknownUser: exporting a user the shard never saw
// reports ok=false without error.
func TestExportSessionUnknownUser(t *testing.T) {
	e := newEngine(t, nil)
	if _, ok, err := e.ExportSession(99); ok || err != nil {
		t.Fatalf("unknown export: ok=%v err=%v", ok, err)
	}
}
