// Package motion implements the steady-motion probability model of paper
// §3 (Figure 1): given a mobile client's current heading, p(φ) is the
// probability density of the client's next movement direction deviating by
// angle φ from that heading.
//
// The model has two steadiness parameters y and z (with y/z < 1):
//
//   - y/z sets how much probability mass is shifted toward the current
//     heading: y/z → 0 recovers the uniform density 1/2π (the random-walk
//     assumption), larger y/z concentrates motion forward.
//   - z sets the angular granularity: the density is constant on deviation
//     bands of width π/z and decreases band by band away from the heading
//     ("the probability of the client moving in a direction such that
//     0 ≤ φ ≤ π/z is the same; for values of φ > π/z this probability
//     decreases", paper §3).
//
// Concretely the unnormalized density is the paper's piecewise form with
// the deviation quantized to bands:
//
//	u(φ) = 1 + (y/z)·(π/2 − Q(|φ|))/π   for Q(|φ|) ≤ π/2
//	u(φ) = 1 − (y/z)·(Q(|φ|) − π/2)/π   otherwise
//
// where Q(a) = (π/z)·⌊a·z/π⌋ snaps the deviation to its band. The density
// is normalized exactly (it is a step function) so that ∫ p(φ)dφ = 1 over
// (−π, π]. Since y/z < 1, p is strictly positive everywhere: every
// direction of travel, including reversal, remains possible — this is what
// keeps the weighted safe regions sound under arbitrary client motion.
//
// The maximum weighted perimeter computation (internal/saferegion) weights
// each candidate rectangle side by the probability that the client's next
// move heads toward that side, i.e. SectorProb over the angular interval
// the side subtends.
package motion

import (
	"fmt"
	"math"

	"github.com/sabre-geo/sabre/internal/geom"
)

// Model is a steady-motion density for fixed steadiness parameters. The
// zero value is not usable; construct with New or Uniform.
type Model struct {
	y, z float64
	// bands[k] is the density value on the band [k·π/z, (k+1)·π/z) of
	// absolute deviation, already normalized. For the uniform model bands
	// is nil and the density is 1/2π everywhere.
	bands     []float64
	bandWidth float64
}

// Uniform returns the model with no steady-motion assumption: p(φ) = 1/2π.
// The paper's "non-weighted" perimeter approach uses this model.
func Uniform() Model { return Model{} }

// New returns the steady-motion model with parameters y and z. It returns
// an error unless z ≥ 1 and 0 ≤ y/z < 1 (the paper's validity condition).
func New(y, z float64) (Model, error) {
	if z < 1 {
		return Model{}, fmt.Errorf("motion: z = %v, need z >= 1", z)
	}
	if y < 0 || y/z >= 1 {
		return Model{}, fmt.Errorf("motion: y/z = %v, need 0 <= y/z < 1", y/z)
	}
	if y == 0 {
		return Uniform(), nil
	}
	n := int(math.Ceil(z)) // number of bands covering [0, π)
	bandWidth := math.Pi / z
	bands := make([]float64, n)
	ratio := y / z
	for k := range bands {
		q := float64(k) * bandWidth // quantized deviation for this band
		var u float64
		if q <= math.Pi/2 {
			u = 1 + ratio*(math.Pi/2-q)/math.Pi
		} else {
			u = 1 - ratio*(q-math.Pi/2)/math.Pi
		}
		bands[k] = u
	}
	// Normalize: total mass = 2 × Σ bands[k]·width(k), where the last band
	// may be clipped at π.
	total := 0.0
	for k := range bands {
		lo := float64(k) * bandWidth
		hi := math.Min(lo+bandWidth, math.Pi)
		total += bands[k] * (hi - lo)
	}
	total *= 2 // symmetric in ±φ
	for k := range bands {
		bands[k] /= total
	}
	return Model{y: y, z: z, bands: bands, bandWidth: bandWidth}, nil
}

// MustNew is New but panics on invalid parameters; for use with constants.
func MustNew(y, z float64) Model {
	m, err := New(y, z)
	if err != nil {
		panic(err)
	}
	return m
}

// IsUniform reports whether the model is the uniform density.
func (m Model) IsUniform() bool { return m.bands == nil }

// Params returns the steadiness parameters (0, 0 for the uniform model).
func (m Model) Params() (y, z float64) { return m.y, m.z }

// PDF returns the density at deviation φ (radians, any value; the density
// has period 2π and is symmetric in φ).
func (m Model) PDF(phi float64) float64 {
	if m.bands == nil {
		return 1 / (2 * math.Pi)
	}
	a := math.Abs(geom.NormalizeAngle(phi))
	k := int(a / m.bandWidth)
	if k >= len(m.bands) {
		k = len(m.bands) - 1
	}
	return m.bands[k]
}

// SectorProb returns ∫ p(φ) dφ for φ from lo to hi, where lo ≤ hi are
// deviations in radians. Intervals wider than 2π return 1; the density is
// treated as periodic.
func (m Model) SectorProb(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	if hi-lo >= 2*math.Pi {
		return 1
	}
	if m.bands == nil {
		return (hi - lo) / (2 * math.Pi)
	}
	// Shift the interval so lo lies in (−π, π] (the density is periodic),
	// then integrate the step function via the cumulative halfMass.
	width := hi - lo
	lo = geom.NormalizeAngle(lo)
	hi = lo + width
	return m.halfMass(hi) - m.halfMass(lo)
}

// halfMass returns ∫_0^x p(φ)dφ for any x in [-2π, 2π] (odd extension:
// halfMass(-x) = -halfMass(x); halfMass(π) = 1/2).
func (m Model) halfMass(x float64) float64 {
	if x < 0 {
		return -m.halfMass(-x)
	}
	if x > math.Pi {
		// Periodic beyond π: mass over [0, x] = 1/2 + mass over [-π, x-2π+π]
		// ... simpler: mass(x) = 1/2 + halfMass(x - π shifted). Use
		// symmetry: p(π + t) = p(π - t) for t in [0, π].
		extra := x - math.Pi
		return 0.5 + (0.5 - m.halfMass(math.Pi-extra))
	}
	total := 0.0
	for k := range m.bands {
		bLo := float64(k) * m.bandWidth
		if bLo >= x {
			break
		}
		bHi := math.Min(math.Min(bLo+m.bandWidth, math.Pi), x)
		total += m.bands[k] * (bHi - bLo)
	}
	return total
}

// Heading estimates a client's heading (radians) from its previous and
// current positions. ok is false when the two fixes coincide, in which
// case no heading information is available and callers should fall back to
// the uniform model.
func Heading(prev, cur geom.Point) (heading float64, ok bool) {
	v := cur.Sub(prev)
	if v.DX == 0 && v.DY == 0 {
		return 0, false
	}
	return v.Angle(), true
}

// HeadingTracker smooths a client's heading across position fixes with an
// exponentially weighted moving average of the displacement vector.
// Instantaneous two-fix headings whip around at intersections and during
// lane noise; the safe region weighting works better against the client's
// sustained direction of travel. The zero value is ready to use.
type HeadingTracker struct {
	// Alpha is the smoothing factor in (0, 1]; 1 reproduces the raw
	// two-fix heading. The zero value defaults to 0.5.
	Alpha float64

	ema    geom.Vector
	hasEMA bool
	last   geom.Point
	hasPos bool
}

// Observe feeds the next position fix and returns the smoothed heading.
// ok is false until the tracker has seen net movement.
func (h *HeadingTracker) Observe(pos geom.Point) (heading float64, ok bool) {
	alpha := h.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	if !h.hasPos {
		h.last, h.hasPos = pos, true
		return 0, false
	}
	d := pos.Sub(h.last)
	h.last = pos
	if d.DX == 0 && d.DY == 0 {
		// Parked: keep the sustained heading, if any.
		return h.ema.Angle(), h.hasEMA && h.ema.Length() > 0
	}
	if !h.hasEMA {
		h.ema, h.hasEMA = d, true
	} else {
		h.ema = geom.Vector{
			DX: h.ema.DX*(1-alpha) + d.DX*alpha,
			DY: h.ema.DY*(1-alpha) + d.DY*alpha,
		}
	}
	if h.ema.Length() < 1e-12 {
		return 0, false
	}
	return h.ema.Angle(), true
}

// Reset clears the tracker (e.g. after a client reconnects elsewhere).
func (h *HeadingTracker) Reset() { *h = HeadingTracker{Alpha: h.Alpha} }

// SideWeights returns the probability mass of the client's next movement
// direction pointing toward each side of a rectangle centred on the
// client's position, given the client heading. The four weights correspond
// to the +x, +y, −x and −y half-axes (quadrant-width sectors centred on
// each axis direction) and sum to 1.
//
// These are the weights the maximum weighted perimeter computation assigns
// to the right, top, left and bottom extents of a candidate safe region.
func (m Model) SideWeights(heading float64) (right, top, left, bottom float64) {
	sector := func(center float64) float64 {
		rel := geom.NormalizeAngle(center - heading)
		return m.SectorProb(rel-math.Pi/4, rel+math.Pi/4)
	}
	return sector(0), sector(math.Pi / 2), sector(math.Pi), sector(-math.Pi / 2)
}

// QuadrantWeights returns the probability mass of the next movement
// direction falling in each Cartesian quadrant around the client (I: +x+y,
// II: −x+y, III: −x−y, IV: +x−y), given the client heading. The MWPSR
// greedy step processes quadrants in descending order of this mass
// (paper §3 step 4).
func (m Model) QuadrantWeights(heading float64) [4]float64 {
	centers := [4]float64{math.Pi / 4, 3 * math.Pi / 4, -3 * math.Pi / 4, -math.Pi / 4}
	var out [4]float64
	for i, c := range centers {
		rel := geom.NormalizeAngle(c - heading)
		out[i] = m.SectorProb(rel-math.Pi/4, rel+math.Pi/4)
	}
	return out
}
