package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sabre-geo/sabre/internal/cluster"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/motion"
	"github.com/sabre-geo/sabre/internal/pyramid"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/sim"
	"github.com/sabre-geo/sabre/internal/wire"
)

// benchClusterUsers is the simulated client population for the cluster
// sweep. Positions are synthesized per (user, seq) instead of replaying
// mobility traces, so the population costs no trace memory and scales to
// cluster size.
const benchClusterUsers = 100_000

// benchClusterPoint is one measured (shards, goroutines, batch) cell.
type benchClusterPoint struct {
	Shards      int     `json:"shards"`
	Goroutines  int     `json:"goroutines"`
	Batch       int     `json:"batch"`
	Updates     uint64  `json:"updates"`
	Seconds     float64 `json:"seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	NsPerUpdate float64 `json:"ns_per_update"`
	// MallocsPerUpdate is the heap allocation count per routed update
	// during the measured loop (runtime.MemStats.Mallocs delta).
	MallocsPerUpdate float64 `json:"mallocs_per_update"`
	// SpeedupVsUnbatched is OpsPerSec over the batch=1 point of the same
	// (shards, goroutines) row.
	SpeedupVsUnbatched float64 `json:"speedup_vs_unbatched"`
}

type benchClusterReport struct {
	Scale      string `json:"scale"`
	Users      int    `json:"users"`
	Alarms     int    `json:"alarms"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Fsync and WALGroupMax record the durability regime the bench ran
	// under. This bench drives memory-only shards: no WAL, so fsync is
	// false and the group-commit cap is 0 (not applicable). bench-wal
	// measures the fsync-on regime.
	Fsync       bool `json:"fsync"`
	WALGroupMax int  `json:"wal_group_max"`
	// Warning is set when GOMAXPROCS=1: goroutine-scaling ratios are then
	// meaningless because everything serializes on one core.
	Warning string              `json:"warning,omitempty"`
	Series  []benchClusterPoint `json:"series"`
}

// runBenchCluster measures routed update throughput on an in-process
// sharded cluster with 100k simulated MWPSR clients, sweeping shard
// count × client goroutines × batch size, and writes BENCH_cluster.json.
// batch=1 routes plain PositionUpdate frames (the unbatched baseline);
// batch≥16 must come out ≥2× faster per update, which is the acceptance
// bar for the batched hot path.
func runBenchCluster(opts options) error {
	w, err := buildWorkload(opts, -1)
	if err != nil {
		return err
	}
	report := benchClusterReport{
		Scale:      opts.scale,
		Users:      benchClusterUsers,
		Alarms:     len(w.Alarms),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if report.GOMAXPROCS == 1 {
		report.Warning = "GOMAXPROCS=1: goroutine counts all serialize on one core; only the batch-size ratios are meaningful"
		fmt.Println("  WARNING:", report.Warning)
	}
	header := []string{"shards", "goroutines", "batch", "ops/sec", "ns/update", "mallocs/update", "speedup vs unbatched"}
	var rows [][]string
	for _, shards := range []int{1, 4} {
		for _, procs := range []int{1, 4} {
			var unbatched float64
			for _, batch := range []int{1, 16, 64} {
				pt, err := benchClusterOnce(w, shards, procs, batch)
				if err != nil {
					return err
				}
				if batch == 1 {
					unbatched = pt.OpsPerSec
					pt.SpeedupVsUnbatched = 1
				} else if unbatched > 0 {
					pt.SpeedupVsUnbatched = pt.OpsPerSec / unbatched
				}
				report.Series = append(report.Series, pt)
				rows = append(rows, []string{
					fmt.Sprintf("%d", pt.Shards),
					fmt.Sprintf("%d", pt.Goroutines),
					fmt.Sprintf("%d", pt.Batch),
					fmt.Sprintf("%.0f", pt.OpsPerSec),
					fmt.Sprintf("%.0f", pt.NsPerUpdate),
					fmt.Sprintf("%.2f", pt.MallocsPerUpdate),
					fmt.Sprintf("%.2fx", pt.SpeedupVsUnbatched),
				})
			}
		}
	}
	table(fmt.Sprintf("Cluster update throughput, %d clients (GOMAXPROCS=%d)",
		benchClusterUsers, report.GOMAXPROCS), header, rows)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_cluster.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_cluster.json")
	return nil
}

// benchClusterOnce builds a fresh in-memory cluster for one sweep point
// and drives one full round over the population: every user gets one
// visit of `batch` successive positions — one UpdateBatch frame, or
// `batch` plain updates when batch=1. A warm-up update per user settles
// first-contact shard handoffs off the clock.
func benchClusterOnce(w *sim.Workload, shards, procs, batch int) (benchClusterPoint, error) {
	universe := w.Net.Bounds().Expand(50)
	cl, err := cluster.New(cluster.Config{
		Shards: shards,
		Engine: server.Config{
			Universe:      universe,
			CellAreaM2:    2.5e6,
			Model:         motion.MustNew(1, 32),
			PyramidParams: pyramid.DefaultParams(5),
			MaxSpeed:      30,
			TickSeconds:   1,
			Costs:         metrics.DefaultCosts(),
		},
	})
	if err != nil {
		return benchClusterPoint{}, err
	}
	defer cl.Close()
	if _, err := cl.InstallAlarms(w.Alarms); err != nil {
		return benchClusterPoint{}, err
	}
	rt := cluster.NewRouter(cl)
	for u := uint64(1); u <= benchClusterUsers; u++ {
		rt.HandleRegister(wire.Register{User: u, Strategy: wire.StrategyMWPSR, MaxHeight: 5})
	}
	seqs := make([]uint32, benchClusterUsers+1)
	for u := uint64(1); u <= benchClusterUsers; u++ {
		seqs[u]++
		upd := wire.PositionUpdate{User: u, Seq: seqs[u], Pos: benchClusterPos(universe, u, seqs[u])}
		if _, err := rt.HandleUpdate(upd); err != nil {
			return benchClusterPoint{}, err
		}
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	var total atomic.Uint64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Disjoint user stripes: worker p owns users p+1, p+1+procs, …
			// so route locks and seq counters are never shared.
			buf := make([]wire.PositionUpdate, batch)
			for u := uint64(worker + 1); u <= benchClusterUsers; u += uint64(procs) {
				if batch == 1 {
					seqs[u]++
					upd := wire.PositionUpdate{User: u, Seq: seqs[u], Pos: benchClusterPos(universe, u, seqs[u])}
					if _, err := rt.HandleUpdate(upd); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					total.Add(1)
					continue
				}
				for j := range buf {
					seqs[u]++
					buf[j] = wire.PositionUpdate{User: u, Seq: seqs[u], Pos: benchClusterPos(universe, u, seqs[u])}
				}
				if _, err := rt.HandleUpdateBatch(wire.UpdateBatch{Updates: buf}); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				total.Add(uint64(batch))
			}
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return benchClusterPoint{}, err
	}
	updates := total.Load()
	return benchClusterPoint{
		Shards:           shards,
		Goroutines:       procs,
		Batch:            batch,
		Updates:          updates,
		Seconds:          elapsed.Seconds(),
		OpsPerSec:        float64(updates) / elapsed.Seconds(),
		NsPerUpdate:      float64(elapsed.Nanoseconds()) / float64(updates),
		MallocsPerUpdate: float64(m1.Mallocs-m0.Mallocs) / float64(updates),
	}, nil
}

// benchClusterPos synthesizes user u's position at seq deterministically:
// a hash spreads the population over the universe, and a ±tens-of-meters
// wiggle per seq keeps each client moving inside its grid cell — the
// steady state the batched hot path optimizes for.
func benchClusterPos(universe geom.Rect, u uint64, seq uint32) geom.Point {
	h := splitmix64(u)
	fx := float64(h>>40) / float64(1<<24)
	fy := float64((h>>16)&0xFFFFFF) / float64(1<<24)
	margin := 60.0
	x := universe.MinX + margin + fx*(universe.MaxX-universe.MinX-2*margin)
	y := universe.MinY + margin + fy*(universe.MaxY-universe.MinY-2*margin)
	return geom.Pt(x+float64(seq%8)*5, y+float64((seq/8)%8)*5)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
