package alarm

import (
	"fmt"
	"math"
	"sort"

	"github.com/sabre-geo/sabre/internal/geom"
)

// Lifecycle subsystem: beyond the paper's one-shot alarm, the registry
// supports three richer alarm kinds, each with its own trigger lifecycle
// and its own conservative safe-region story (DESIGN.md §15):
//
//   - Continuous alarms fire on region entry AND exit and re-arm, running
//     the per-(alarm, user) state machine
//     Armed → FiredEnter → InsideArmed → FiredExit → Armed,
//     with an optional re-arm cooldown between an exit and the next entry.
//   - Pair (moving-anchor proximity) alarms fire when the owner and the
//     anchor user come within Radius of each other, and again (Exit) when
//     they separate. Both endpoints run their own state machine, so each
//     endpoint is notified on its own shard.
//   - Composite risk-zone alarms combine weighted circular/rect factors;
//     they fire once per user when the summed weight of the factors
//     containing the user's position reaches Threshold, and expire at a
//     TTL tick.
//
// Transition events are packed into a single uint64 so they flow through
// every delivery, dedup, persistence and replication path built for
// one-shot alarm IDs without modification: a one-shot firing packs to the
// raw alarm ID, keeping legacy behaviour bit-identical.

// LifecycleKind selects an alarm's trigger lifecycle.
type LifecycleKind uint8

// Alarm lifecycle kinds. KindOneShot is the zero value: the paper's
// fire-once-per-subscriber alarm.
const (
	KindOneShot LifecycleKind = iota
	KindContinuous
	KindPair
	KindComposite
)

// String implements fmt.Stringer.
func (k LifecycleKind) String() string {
	switch k {
	case KindOneShot:
		return "one-shot"
	case KindContinuous:
		return "continuous"
	case KindPair:
		return "pair"
	case KindComposite:
		return "composite"
	default:
		return fmt.Sprintf("LifecycleKind(%d)", int(k))
	}
}

// Transition is the lifecycle transition a fired event carries.
type Transition uint8

// Transitions. TransFired is the zero value so a packed one-shot event is
// numerically equal to its alarm ID.
const (
	TransFired    Transition = iota // one-shot firing (legacy)
	TransEnter                      // continuous/pair: entered region / came into range
	TransExit                       // continuous/pair: left region / went out of range
	TransSeverity                   // composite: severity threshold reached
)

// String implements fmt.Stringer.
func (t Transition) String() string {
	switch t {
	case TransFired:
		return "fired"
	case TransEnter:
		return "enter"
	case TransExit:
		return "exit"
	case TransSeverity:
		return "severity"
	default:
		return fmt.Sprintf("Transition(%d)", int(t))
	}
}

// Packed event layout: bits 0..39 alarm ID, bits 40..42 transition,
// bits 43..63 payload (occurrence count for enter/exit, quantized
// severity for composite firings). 2^40 alarm IDs is far beyond any
// deployment here; Install enforces the bound.
const (
	eventAlarmBits  = 40
	eventAlarmMask  = uint64(1)<<eventAlarmBits - 1
	eventTransShift = eventAlarmBits
	eventTransMask  = uint64(7)
	eventPayloadOff = eventAlarmBits + 3
	EventPayloadMax = uint64(1)<<(64-eventPayloadOff) - 1
	severityQuantum = 1000.0 // severities carry 3 decimal places
	MaxLifecycleID  = ID(eventAlarmMask)
)

// PackEvent packs an alarm transition into the uint64 that rides the
// existing fired-ID machinery (AlarmFired frames, pendingFired sets,
// FiredAck, WAL records, client dedup). A TransFired event with zero
// payload is the raw alarm ID.
func PackEvent(id ID, tr Transition, payload uint32) uint64 {
	p := uint64(payload)
	if p > EventPayloadMax {
		p = EventPayloadMax
	}
	return uint64(id)&eventAlarmMask |
		uint64(tr)&eventTransMask<<eventTransShift |
		p<<eventPayloadOff
}

// EventAlarm extracts the alarm ID from a packed event.
func EventAlarm(ev uint64) ID { return ID(ev & eventAlarmMask) }

// EventTransition extracts the transition from a packed event.
func EventTransition(ev uint64) Transition {
	return Transition(ev >> eventTransShift & eventTransMask)
}

// EventPayload extracts the payload (occurrence or quantized severity).
func EventPayload(ev uint64) uint32 { return uint32(ev >> eventPayloadOff) }

// QuantizeSeverity maps a severity to the integer payload carried in a
// TransSeverity event (3 decimal places).
func QuantizeSeverity(sev float64) uint32 {
	q := math.Round(sev * severityQuantum)
	if q < 0 {
		return 0
	}
	if q > float64(EventPayloadMax) {
		return uint32(EventPayloadMax)
	}
	return uint32(q)
}

// EventSeverity reverses QuantizeSeverity.
func EventSeverity(ev uint64) float64 {
	return float64(EventPayload(ev)) / severityQuantum
}

// Factor is one weighted component of a composite risk-zone alarm:
// a circle (Center, Radius > 0) or an axis-aligned rect. A user's
// severity is the sum of the weights of the factors containing them.
type Factor struct {
	Center geom.Point `json:"center,omitempty"`
	Radius float64    `json:"radius,omitempty"`
	Region geom.Rect  `json:"region,omitempty"`
	Weight float64    `json:"weight"`
}

// Circle reports whether the factor is circular.
func (f Factor) Circle() bool { return f.Radius > 0 }

// Bound returns the factor's bounding rectangle — the conservative
// obstacle a safe-region computation must avoid.
func (f Factor) Bound() geom.Rect {
	if f.Circle() {
		return geom.Rect{
			MinX: f.Center.X - f.Radius, MinY: f.Center.Y - f.Radius,
			MaxX: f.Center.X + f.Radius, MaxY: f.Center.Y + f.Radius,
		}
	}
	return f.Region
}

// Contains reports whether the factor covers p.
func (f Factor) Contains(p geom.Point) bool {
	if f.Circle() {
		return p.DistanceSqTo(f.Center) <= f.Radius*f.Radius
	}
	return f.Region.Contains(p)
}

// FactorsBound returns the union of the factors' bounds.
func FactorsBound(factors []Factor) geom.Rect {
	var b geom.Rect
	for i, f := range factors {
		if i == 0 {
			b = f.Bound()
		} else {
			b = b.Union(f.Bound())
		}
	}
	return b
}

// Severity returns the summed weight of the factors containing p.
func Severity(factors []Factor, p geom.Point) float64 {
	var sev float64
	for _, f := range factors {
		if f.Contains(p) {
			sev += f.Weight
		}
	}
	return sev
}

// lcState is the per-(alarm, user) lifecycle machine for continuous and
// pair alarms. The machine has two stable phases — Armed (outside /
// out of range) and Inside — and transitions emit events:
//
//	Armed --enter--> Inside --exit--> Armed (cooldown) --enter--> ...
//
// occur counts entries, so the k-th enter and the k-th exit pack
// distinct, idempotently dedupable event IDs.
type lcState struct {
	inside   bool
	occur    uint32
	lastTick uint64 // tick of the last transition (cooldown anchor)
}

// progress orders lifecycle states monotonically: each transition
// strictly increases it. Used by the idempotent merge in
// ApplyLifecycleStates (WAL replay, session handoff, shard adoption).
func (s lcState) progress() uint64 {
	if s.occur == 0 {
		return 0
	}
	p := uint64(s.occur) * 2
	if s.inside {
		p--
	}
	return p
}

// LifecycleState is the portable form of one lifecycle machine, carried
// in snapshots, handoff records and adoption transfers.
type LifecycleState struct {
	Alarm    ID     `json:"alarm"`
	User     uint64 `json:"user"`
	Inside   bool   `json:"inside,omitempty"`
	Occur    uint32 `json:"occur"`
	LastTick uint64 `json:"lastTick,omitempty"`
}

// Progress exposes the machine's monotone transition counter, so replay
// and merge paths outside this package (store's state builder) apply the
// same keep-the-further-side rule.
func (s LifecycleState) Progress() uint64 {
	return lcState{inside: s.Inside, occur: s.Occur}.progress()
}

// Event returns the packed transition event that most recently produced
// this machine state — the inverse of TransitionState. A zero-progress
// machine has produced no event.
func (s LifecycleState) Event() (uint64, bool) {
	if s.Occur == 0 {
		return 0, false
	}
	tr := TransExit
	if s.Inside {
		tr = TransEnter
	}
	return PackEvent(s.Alarm, tr, s.Occur), true
}

// TransitionState reconstructs the machine state a delivered enter/exit
// event implies — the WAL-replay inverse of the event packing.
func TransitionState(user UserID, ev uint64, tick uint64) (LifecycleState, bool) {
	tr := EventTransition(ev)
	if tr != TransEnter && tr != TransExit {
		return LifecycleState{}, false
	}
	return LifecycleState{
		Alarm:    EventAlarm(ev),
		User:     uint64(user),
		Inside:   tr == TransEnter,
		Occur:    EventPayload(ev),
		LastTick: tick,
	}, true
}

// validateLifecycle checks kind-specific invariants and normalizes
// derived fields (a composite alarm's Region is always the union of its
// factor bounds). Called by every install/restore path before the
// legacy region/scope checks.
func validateLifecycle(a *Alarm) error {
	switch a.Kind {
	case KindOneShot:
		if a.Anchor != 0 || a.Radius != 0 || len(a.Factors) != 0 ||
			a.Threshold != 0 || a.ExpiresAt != 0 || a.Cooldown != 0 {
			return fmt.Errorf("one-shot alarm carries lifecycle fields")
		}
	case KindContinuous:
		if a.Scope == Public {
			return fmt.Errorf("continuous alarm cannot be public")
		}
		if a.Target != 0 {
			return fmt.Errorf("continuous alarm cannot have a moving target")
		}
		if a.Anchor != 0 || a.Radius != 0 || len(a.Factors) != 0 || a.Threshold != 0 || a.ExpiresAt != 0 {
			return fmt.Errorf("continuous alarm carries foreign lifecycle fields")
		}
	case KindPair:
		if a.Scope != Shared {
			return fmt.Errorf("pair alarm must be shared between its endpoints")
		}
		if a.Owner == 0 || a.Anchor == 0 || a.Owner == a.Anchor {
			return fmt.Errorf("pair alarm needs two distinct endpoints")
		}
		if !(a.Radius > 0) {
			return fmt.Errorf("pair alarm needs a positive radius")
		}
		if a.Target != 0 || len(a.Factors) != 0 || a.Threshold != 0 || a.ExpiresAt != 0 {
			return fmt.Errorf("pair alarm carries foreign lifecycle fields")
		}
		if !a.Region.Empty() {
			return fmt.Errorf("pair alarm region is derived, must be empty")
		}
		if !containsUser(a.Subscribers, a.Anchor) {
			a.Subscribers = append(a.Subscribers, a.Anchor)
		}
	case KindComposite:
		if a.Scope == Public {
			return fmt.Errorf("composite alarm cannot be public")
		}
		if a.Target != 0 || a.Anchor != 0 || a.Radius != 0 || a.Cooldown != 0 {
			return fmt.Errorf("composite alarm carries foreign lifecycle fields")
		}
		if len(a.Factors) == 0 {
			return fmt.Errorf("composite alarm needs factors")
		}
		if !(a.Threshold > 0) {
			return fmt.Errorf("composite alarm needs a positive threshold")
		}
		for i, f := range a.Factors {
			if !(f.Weight > 0) {
				return fmt.Errorf("composite factor %d needs a positive weight", i)
			}
			if !f.Circle() && f.Region.Empty() {
				return fmt.Errorf("composite factor %d needs a circle or a non-empty rect", i)
			}
		}
		a.Region = FactorsBound(a.Factors)
	default:
		return fmt.Errorf("invalid lifecycle kind %d", a.Kind)
	}
	return nil
}

// indexed reports whether the alarm lives in the spatial index. Pair
// alarms have no static region — they are reached through pairsByUser.
func (a *Alarm) indexed() bool { return a.Kind != KindPair }

// trackLifecycleLocked updates the registry's lifecycle indexes for a
// freshly stored alarm. Callers hold r.mu.
func (r *Registry) trackLifecycleLocked(a *Alarm) {
	if a.Kind == KindOneShot {
		return
	}
	r.lifecycle++
	if a.Kind == KindPair {
		r.pairsByUser[a.Owner] = append(r.pairsByUser[a.Owner], a.ID)
		r.pairsByUser[a.Anchor] = append(r.pairsByUser[a.Anchor], a.ID)
	}
}

// untrackLifecycleLocked reverses trackLifecycleLocked on removal and
// drops every lifecycle machine of the alarm. Callers hold r.mu.
func (r *Registry) untrackLifecycleLocked(a *Alarm) {
	if a.Kind == KindOneShot {
		return
	}
	r.lifecycle--
	if a.Kind == KindPair {
		for _, u := range [2]UserID{a.Owner, a.Anchor} {
			ids := r.pairsByUser[u]
			for i, v := range ids {
				if v == a.ID {
					r.pairsByUser[u] = append(ids[:i], ids[i+1:]...)
					break
				}
			}
			if len(r.pairsByUser[u]) == 0 {
				delete(r.pairsByUser, u)
			}
		}
	}
	for k := range r.lcStates {
		if k.alarm == a.ID {
			delete(r.lcStates, k)
		}
	}
	for u, set := range r.insideByUser {
		if _, ok := set[a.ID]; ok {
			delete(set, a.ID)
			if len(set) == 0 {
				delete(r.insideByUser, u)
			}
		}
	}
}

// HasLifecycle reports whether any non-one-shot alarm is installed — the
// gate that keeps every lifecycle code path out of legacy workloads.
func (r *Registry) HasLifecycle() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lifecycle > 0
}

// KindCounts returns the number of installed continuous, pair, and
// composite alarms, in that order (one-shots are Registry.Len minus the
// sum). Feeds the per-kind metrics gauges.
func (r *Registry) KindCounts() (continuous, pair, composite int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, a := range r.alarms {
		switch a.Kind {
		case KindContinuous:
			continuous++
		case KindPair:
			pair++
		case KindComposite:
			composite++
		}
	}
	return continuous, pair, composite
}

// IsPairEndpoint reports whether user u is an endpoint of any pair alarm.
func (r *Registry) IsPairEndpoint(u UserID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.pairsByUser[u]) > 0
}

// PairAlarmsOf appends to dst the pair alarms user u is an endpoint of.
func (r *Registry) PairAlarmsOf(u UserID, dst []Alarm) []Alarm {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, id := range r.pairsByUser[u] {
		if a := r.alarms[id]; a != nil {
			dst = append(dst, *a)
		}
	}
	return dst
}

// PairPartner returns the other endpoint of a pair alarm relative to u.
func (a *Alarm) PairPartner(u UserID) UserID {
	if a.Owner == u {
		return a.Anchor
	}
	return a.Owner
}

// InsideAlarmsOf appends to dst the IDs of the continuous alarms user u
// is currently inside — the regions a safe-region computation must treat
// as carve-INTO rather than carve-AROUND obstacles.
func (r *Registry) InsideAlarmsOf(u UserID, dst []ID) []ID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for id := range r.insideByUser[u] {
		dst = append(dst, id)
	}
	return dst
}

// PairInside reports whether user u's machine for pair alarm id is in
// the Inside (in-contact) phase.
func (r *Registry) PairInside(id ID, u UserID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lcStates[pairKey{alarm: id, user: u}].inside
}

// canEnterLocked applies the re-arm cooldown gate.
func canEnter(st lcState, cooldown uint32, tick uint64) bool {
	if st.inside {
		return false
	}
	if st.occur == 0 || cooldown == 0 {
		return true
	}
	return tick >= st.lastTick+uint64(cooldown)
}

// EvaluateLifecycleInto runs every lifecycle machine of user u against
// position p at the given logical tick, appending the packed transition
// events that fire to dst. hits are the spatial-index point hits already
// collected for this update (EvaluateInto's raw slice) — continuous
// entries and composite firings are drawn from them, exits from the
// registry's inside-set, and pair transitions from the pair index via
// the partner callback (last known partner position, or ok=false when
// the partner has never reported). Transitions mutate machine state;
// the caller must log the returned events before releasing any response
// that reveals them (write-ahead discipline).
func (r *Registry) EvaluateLifecycleInto(u UserID, p geom.Point, tick uint64, hits []uint64, partner func(UserID) (geom.Point, bool), dst []uint64) []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lifecycle == 0 {
		return dst
	}
	// Continuous entries and composite firings from the index hits.
	for _, rawID := range hits {
		id := ID(rawID)
		a := r.alarms[id]
		if a == nil || a.Kind == KindOneShot || a.Kind == KindPair || !r.relevantToLocked(a, u) {
			continue
		}
		switch a.Kind {
		case KindContinuous:
			if !a.Region.Contains(p) {
				continue
			}
			k := pairKey{alarm: id, user: u}
			st := r.lcStates[k]
			if !canEnter(st, a.Cooldown, tick) {
				continue
			}
			st.inside = true
			st.occur++
			st.lastTick = tick
			r.lcStates[k] = st
			r.markInsideLocked(u, id)
			dst = append(dst, PackEvent(id, TransEnter, st.occur))
		case KindComposite:
			if a.ExpiresAt != 0 && tick >= a.ExpiresAt {
				continue
			}
			if _, gone := r.fired[pairKey{alarm: id, user: u}]; gone {
				continue
			}
			sev := Severity(a.Factors, p)
			if sev < a.Threshold {
				continue
			}
			r.fired[pairKey{alarm: id, user: u}] = struct{}{}
			dst = append(dst, PackEvent(id, TransSeverity, QuantizeSeverity(sev)))
		}
	}
	// Continuous exits: machines in the Inside phase whose region no
	// longer contains p. Point queries cannot surface non-containing
	// regions, hence the dedicated inside-set.
	if set := r.insideByUser[u]; len(set) > 0 {
		var exited []ID
		for id := range set {
			a := r.alarms[id]
			if a == nil || a.Region.Contains(p) {
				continue
			}
			exited = append(exited, id)
		}
		// Deterministic event order for multi-exit updates.
		sort.Slice(exited, func(i, j int) bool { return exited[i] < exited[j] })
		for _, id := range exited {
			k := pairKey{alarm: id, user: u}
			st := r.lcStates[k]
			st.inside = false
			st.lastTick = tick
			r.lcStates[k] = st
			delete(set, id)
			dst = append(dst, PackEvent(id, TransExit, st.occur))
		}
		if len(set) == 0 {
			delete(r.insideByUser, u)
		}
	}
	return r.evalPairsLocked(u, p, tick, partner, dst)
}

// EvaluatePairsInto runs only user u's pair machines — the cross-user
// invalidation path: when u's partner reports, the partner's shard calls
// this with u's last known position to wake u's endpoint of the pair.
func (r *Registry) EvaluatePairsInto(u UserID, p geom.Point, tick uint64, partner func(UserID) (geom.Point, bool), dst []uint64) []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evalPairsLocked(u, p, tick, partner, dst)
}

func (r *Registry) evalPairsLocked(u UserID, p geom.Point, tick uint64, partner func(UserID) (geom.Point, bool), dst []uint64) []uint64 {
	for _, id := range r.pairsByUser[u] {
		a := r.alarms[id]
		if a == nil || !r.relevantToLocked(a, u) {
			continue
		}
		pp, ok := partner(a.PairPartner(u))
		if !ok {
			continue
		}
		k := pairKey{alarm: id, user: u}
		st := r.lcStates[k]
		inRange := p.DistanceSqTo(pp) <= a.Radius*a.Radius
		switch {
		case inRange && canEnter(st, a.Cooldown, tick):
			st.inside = true
			st.occur++
			st.lastTick = tick
			r.lcStates[k] = st
			dst = append(dst, PackEvent(id, TransEnter, st.occur))
		case !inRange && st.inside:
			st.inside = false
			st.lastTick = tick
			r.lcStates[k] = st
			dst = append(dst, PackEvent(id, TransExit, st.occur))
		}
	}
	return dst
}

func (r *Registry) markInsideLocked(u UserID, id ID) {
	set := r.insideByUser[u]
	if set == nil {
		set = make(map[ID]struct{})
		r.insideByUser[u] = set
	}
	set[id] = struct{}{}
}

// ExpireDue removes every composite alarm whose TTL has passed at the
// given logical tick and returns their IDs (sorted). The caller logs an
// expiry record per ID so recovery never resurrects an expired alarm's
// firings.
func (r *Registry) ExpireDue(tick uint64) []ID {
	r.mu.Lock()
	var due []ID
	for id, a := range r.alarms {
		if a.Kind == KindComposite && a.ExpiresAt != 0 && tick >= a.ExpiresAt {
			due = append(due, id)
		}
	}
	r.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, id := range due {
		r.Remove(id)
	}
	return due
}

// LifecycleStates returns a snapshot of every lifecycle machine, sorted
// by (alarm, user) for deterministic output.
func (r *Registry) LifecycleStates() []LifecycleState {
	r.mu.RLock()
	out := make([]LifecycleState, 0, len(r.lcStates))
	for k, st := range r.lcStates {
		out = append(out, LifecycleState{
			Alarm: k.alarm, User: uint64(k.user),
			Inside: st.inside, Occur: st.occur, LastTick: st.lastTick,
		})
	}
	r.mu.RUnlock()
	sortLifecycleStates(out)
	return out
}

// LifecycleStatesFor returns user u's lifecycle machines, sorted by
// alarm — the per-session slice a handoff export carries.
func (r *Registry) LifecycleStatesFor(u UserID) []LifecycleState {
	r.mu.RLock()
	var out []LifecycleState
	for k, st := range r.lcStates {
		if k.user != u {
			continue
		}
		out = append(out, LifecycleState{
			Alarm: k.alarm, User: uint64(u),
			Inside: st.inside, Occur: st.occur, LastTick: st.lastTick,
		})
	}
	r.mu.RUnlock()
	sortLifecycleStates(out)
	return out
}

// LifecycleStatesForAlarms returns the machines of the given alarms,
// sorted — the slice a shard split's alarm adoption carries.
func (r *Registry) LifecycleStatesForAlarms(ids map[ID]bool) []LifecycleState {
	r.mu.RLock()
	var out []LifecycleState
	for k, st := range r.lcStates {
		if !ids[k.alarm] {
			continue
		}
		out = append(out, LifecycleState{
			Alarm: k.alarm, User: uint64(k.user),
			Inside: st.inside, Occur: st.occur, LastTick: st.lastTick,
		})
	}
	r.mu.RUnlock()
	sortLifecycleStates(out)
	return out
}

func sortLifecycleStates(s []LifecycleState) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Alarm != s[j].Alarm {
			return s[i].Alarm < s[j].Alarm
		}
		return s[i].User < s[j].User
	})
}

// ApplyLifecycleStates merges portable lifecycle states into the
// registry, keeping whichever side has progressed further (transitions
// strictly increase progress, so replaying a state twice — or importing
// a stale copy after a handoff bounce — is a no-op). States referencing
// unknown alarms are skipped.
func (r *Registry) ApplyLifecycleStates(states []LifecycleState) {
	if len(states) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range states {
		a := r.alarms[s.Alarm]
		if a == nil || (a.Kind != KindContinuous && a.Kind != KindPair) {
			continue
		}
		k := pairKey{alarm: s.Alarm, user: UserID(s.User)}
		cand := lcState{inside: s.Inside, occur: s.Occur, lastTick: s.LastTick}
		if cur, ok := r.lcStates[k]; ok && cur.progress() >= cand.progress() {
			continue
		}
		r.lcStates[k] = cand
		if a.Kind == KindContinuous {
			if cand.inside {
				r.markInsideLocked(k.user, k.alarm)
			} else if set := r.insideByUser[k.user]; set != nil {
				delete(set, k.alarm)
				if len(set) == 0 {
					delete(r.insideByUser, k.user)
				}
			}
		}
	}
}

// ApplyTransition folds one logged transition event into the lifecycle
// machine it belongs to — the WAL-replay form of ApplyLifecycleStates.
func (r *Registry) ApplyTransition(user UserID, ev uint64, tick uint64) {
	id := EventAlarm(ev)
	occur := EventPayload(ev)
	switch EventTransition(ev) {
	case TransEnter:
		r.ApplyLifecycleStates([]LifecycleState{{
			Alarm: id, User: uint64(user), Inside: true, Occur: occur, LastTick: tick,
		}})
	case TransExit:
		r.ApplyLifecycleStates([]LifecycleState{{
			Alarm: id, User: uint64(user), Inside: false, Occur: occur, LastTick: tick,
		}})
	case TransSeverity:
		r.MarkFired(id, user)
	}
}
