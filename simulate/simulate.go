// Package simulate exposes SABRE's experiment driver: build a workload (a
// synthetic road network, a vehicle fleet and an alarm table), run it
// under a processing strategy, and get back the paper's evaluation metrics
// plus the exact delivered trigger set.
//
// It is the public face of the machinery behind cmd/alarmbench and the
// bench_test.go series:
//
//	w, _ := simulate.BuildWorkload(simulate.SmallWorkload(1))
//	truth, _ := simulate.Run(w, simulate.StrategyConfig{Strategy: sabre.StrategyPeriodic})
//	mwpsr, _ := simulate.Run(w, simulate.StrategyConfig{Strategy: sabre.StrategyMWPSR})
//	fmt.Println(simulate.TriggersEqual(truth.Triggers, mwpsr.Triggers)) // true
//	fmt.Println(truth.UplinkMessages / mwpsr.UplinkMessages)            // ~40×
//
// Runs are deterministic in the workload seed: identical configurations
// reproduce identical reports bit-for-bit.
package simulate

import (
	"github.com/sabre-geo/sabre/internal/sim"
)

// Re-exported experiment types; see the field documentation on each.
type (
	// WorkloadConfig describes a workload: fleet size, duration, alarm
	// table composition and the road network substrate.
	WorkloadConfig = sim.WorkloadConfig
	// Workload is a materialized workload, reusable across strategy runs.
	Workload = sim.Workload
	// StrategyConfig selects the processing approach and its knobs for
	// one run.
	StrategyConfig = sim.StrategyConfig
	// Report is the outcome of a run: messages, bandwidth, energy, server
	// cost-model minutes and the delivered triggers.
	Report = sim.Report
	// Trigger is one delivered alarm: (user, alarm, tick).
	Trigger = sim.Trigger
	// MixedClass describes one device class of a heterogeneous fleet.
	MixedClass = sim.MixedClass
	// MixedReport is the outcome of a heterogeneous-fleet run.
	MixedReport = sim.MixedReport
	// ClassReport summarizes one device class of a mixed run.
	ClassReport = sim.ClassReport
)

// DefaultWorkload returns the paper-scale configuration: 10,000 vehicles
// for one hour over 1,000 km² with 10,000 alarms (paper §5.1).
func DefaultWorkload(seed int64) WorkloadConfig { return sim.DefaultWorkload(seed) }

// SmallWorkload returns a laptop-scale configuration with the same
// densities (seconds per run instead of minutes).
func SmallWorkload(seed int64) WorkloadConfig { return sim.SmallWorkload(seed) }

// BuildWorkload generates the road network and alarm table for cfg.
func BuildWorkload(cfg WorkloadConfig) (*Workload, error) { return sim.BuildWorkload(cfg) }

// Run executes one strategy over the workload.
func Run(w *Workload, sc StrategyConfig) (*Report, error) { return sim.Run(w, sc) }

// RunMixed executes one simulation with the fleet partitioned across
// device classes served by a single engine (paper §4's heterogeneity).
func RunMixed(w *Workload, classes []MixedClass, base StrategyConfig) (*MixedReport, error) {
	return sim.RunMixed(w, classes, base)
}

// TriggersEqual reports whether two runs delivered exactly the same
// (user, alarm, tick) set — the paper's 100% accuracy check.
func TriggersEqual(a, b []Trigger) bool { return sim.TriggersEqual(a, b) }
