// Package mobility simulates vehicles moving on a road network and
// produces the high-frequency position trace the paper's experiments are
// driven by (§5.1: "a very high frequency trace of the motion pattern of
// the vehicles", 10,000 vehicles for one hour).
//
// Each vehicle runs trip chains: it picks a random destination in the
// network's giant component, follows the minimum-travel-time route at a
// per-vehicle fraction of each road's speed limit, dwells briefly at the
// destination, and starts the next trip. Positions advance in fixed ticks
// (1 Hz by default) and are exact interpolations along edges, so a
// vehicle's displacement per tick never exceeds MaxSpeed·dt — the bound the
// safe-period baseline and the accuracy ground truth both rely on.
//
// The simulator is deterministic in its seed: vehicles are stepped in index
// order off a single PRNG stream.
package mobility

import (
	"fmt"
	"math/rand"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/roadnet"
)

// Config parameterizes a trace.
type Config struct {
	// Vehicles is the fleet size (the paper's default is 10,000).
	Vehicles int
	// TickSeconds is the sampling interval; the paper's trace is
	// high-frequency, which we model as 1 s.
	TickSeconds float64
	// PauseMaxSeconds is the maximum dwell time between trips.
	PauseMaxSeconds float64
	// MinSpeedFactor..MaxSpeedFactor is the per-vehicle speed range as a
	// fraction of each road's speed limit.
	MinSpeedFactor, MaxSpeedFactor float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns the paper-scale trace configuration.
func DefaultConfig(vehicles int, seed int64) Config {
	return Config{
		Vehicles:        vehicles,
		TickSeconds:     1,
		PauseMaxSeconds: 45,
		MinSpeedFactor:  0.7,
		MaxSpeedFactor:  1.0,
		Seed:            seed,
	}
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.Vehicles <= 0 {
		return fmt.Errorf("mobility: need at least 1 vehicle, got %d", c.Vehicles)
	}
	if c.TickSeconds <= 0 {
		return fmt.Errorf("mobility: non-positive tick %v", c.TickSeconds)
	}
	if c.PauseMaxSeconds < 0 {
		return fmt.Errorf("mobility: negative pause %v", c.PauseMaxSeconds)
	}
	if c.MinSpeedFactor <= 0 || c.MaxSpeedFactor > 1 || c.MinSpeedFactor > c.MaxSpeedFactor {
		return fmt.Errorf("mobility: speed factors [%v, %v] out of (0, 1]",
			c.MinSpeedFactor, c.MaxSpeedFactor)
	}
	return nil
}

type vehicle struct {
	pos         geom.Point
	atNode      roadnet.NodeID // node the vehicle is travelling from
	path        []int32        // remaining edge indices of the current trip
	pathIdx     int            // next edge in path
	edgeOffset  float64        // metres travelled along the current edge
	speedFactor float64
	pauseLeft   float64 // seconds of dwell remaining
}

// Simulator steps a fleet of vehicles. Create with NewSimulator; it is not
// safe for concurrent use.
type Simulator struct {
	net  *roadnet.Network
	cfg  Config
	rng  *rand.Rand
	vehs []vehicle
	tick int
}

// NewSimulator places cfg.Vehicles at random nodes of the giant component
// with their first trips planned.
func NewSimulator(net *roadnet.Network, cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		net:  net,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		vehs: make([]vehicle, cfg.Vehicles),
	}
	for i := range s.vehs {
		v := &s.vehs[i]
		v.atNode = net.RandomNode(s.rng)
		v.pos = net.Node(v.atNode)
		v.speedFactor = cfg.MinSpeedFactor + s.rng.Float64()*(cfg.MaxSpeedFactor-cfg.MinSpeedFactor)
		// Stagger initial pauses so trips don't start in lockstep.
		v.pauseLeft = s.rng.Float64() * cfg.PauseMaxSeconds
	}
	return s, nil
}

// NumVehicles returns the fleet size.
func (s *Simulator) NumVehicles() int { return len(s.vehs) }

// Tick returns the number of completed steps.
func (s *Simulator) Tick() int { return s.tick }

// TickSeconds returns the sampling interval.
func (s *Simulator) TickSeconds() float64 { return s.cfg.TickSeconds }

// MaxSpeed returns the maximum speed any vehicle can reach (m/s).
func (s *Simulator) MaxSpeed() float64 {
	return s.net.MaxSpeed() * s.cfg.MaxSpeedFactor
}

// Position returns vehicle i's current position.
func (s *Simulator) Position(i int) geom.Point { return s.vehs[i].pos }

// Positions copies all current positions into dst (which must have length
// NumVehicles) — index = vehicle.
func (s *Simulator) Positions(dst []geom.Point) {
	for i := range s.vehs {
		dst[i] = s.vehs[i].pos
	}
}

// Step advances every vehicle by one tick, in vehicle order.
func (s *Simulator) Step() {
	dt := s.cfg.TickSeconds
	for i := range s.vehs {
		s.stepVehicle(&s.vehs[i], dt)
	}
	s.tick++
}

func (s *Simulator) stepVehicle(v *vehicle, dt float64) {
	remaining := dt
	for remaining > 0 {
		if v.pauseLeft > 0 {
			if v.pauseLeft >= remaining {
				v.pauseLeft -= remaining
				return
			}
			remaining -= v.pauseLeft
			v.pauseLeft = 0
		}
		if v.pathIdx >= len(v.path) {
			if !s.planTrip(v) {
				// No route available (isolated node); stay parked this tick.
				return
			}
			continue
		}
		e := s.net.Edge(int(v.path[v.pathIdx]))
		speed := e.Class.SpeedLimit() * v.speedFactor
		travel := speed * remaining
		if v.edgeOffset+travel < e.Length {
			v.edgeOffset += travel
			v.pos = s.interpolate(v, e)
			return
		}
		// Finish this edge and continue on the next with leftover time.
		remaining -= (e.Length - v.edgeOffset) / speed
		v.edgeOffset = 0
		v.atNode = otherEnd(e, v.atNode)
		v.pos = s.net.Node(v.atNode)
		v.pathIdx++
		if v.pathIdx >= len(v.path) {
			// Arrived: dwell before the next trip.
			v.path = v.path[:0]
			v.pathIdx = 0
			v.pauseLeft = s.rng.Float64() * s.cfg.PauseMaxSeconds
		}
	}
}

// planTrip assigns a new random destination and route. It reports whether
// a usable trip was found.
func (s *Simulator) planTrip(v *vehicle) bool {
	for attempt := 0; attempt < 4; attempt++ {
		dest := s.net.RandomNode(s.rng)
		if dest == v.atNode {
			continue
		}
		path, _, err := s.net.ShortestPath(v.atNode, dest)
		if err != nil || len(path) == 0 {
			continue
		}
		v.path = path
		v.pathIdx = 0
		v.edgeOffset = 0
		return true
	}
	return false
}

func (s *Simulator) interpolate(v *vehicle, e roadnet.Edge) geom.Point {
	from := s.net.Node(v.atNode)
	to := s.net.Node(otherEnd(e, v.atNode))
	if e.Length == 0 {
		return from
	}
	f := v.edgeOffset / e.Length
	return geom.Pt(from.X+(to.X-from.X)*f, from.Y+(to.Y-from.Y)*f)
}

func otherEnd(e roadnet.Edge, from roadnet.NodeID) roadnet.NodeID {
	if e.From == from {
		return e.To
	}
	return e.From
}
