// Package roadnet generates the synthetic road network substrate that
// replaces the paper's USGS Atlanta map (see DESIGN.md §2 for the
// substitution rationale).
//
// The generator produces a hierarchical lattice over a square universe:
// grid lines at a base spacing carry local roads, every third line is an
// arterial and every tenth a highway, mirroring the speed hierarchy of a
// real metropolitan network. Node positions are jittered so vehicle motion
// is not axis-aligned, and a fraction of edges is removed to create the
// irregular connectivity of a real map. Trips are confined to the largest
// connected component.
//
// Everything is deterministic in the seed, which the simulation relies on
// to reproduce traces bit-for-bit.
package roadnet

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/sabre-geo/sabre/internal/geom"
)

// Class is a road class with an associated speed limit.
type Class int

// Road classes, fastest first.
const (
	Highway Class = iota + 1
	Arterial
	Local
)

// SpeedLimit returns the class speed limit in metres per second.
func (c Class) SpeedLimit() float64 {
	switch c {
	case Highway:
		return 110.0 / 3.6
	case Arterial:
		return 60.0 / 3.6
	default:
		return 35.0 / 3.6
	}
}

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Highway:
		return "highway"
	case Arterial:
		return "arterial"
	case Local:
		return "local"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// NodeID indexes a network node.
type NodeID int32

// Edge is an undirected road segment between two nodes.
type Edge struct {
	From, To NodeID
	Class    Class
	Length   float64 // metres
}

// TravelTime returns the time to traverse the edge at its speed limit.
func (e Edge) TravelTime() float64 { return e.Length / e.Class.SpeedLimit() }

// Config parameterizes network generation.
type Config struct {
	// Side is the universe side length in metres (the paper's ~1000 km²
	// region is a 31,623 m square).
	Side float64
	// Spacing is the base lattice spacing in metres (local road grid).
	Spacing float64
	// Jitter is the maximum node displacement as a fraction of Spacing.
	Jitter float64
	// DropProb is the probability of removing a local road segment, making
	// the network irregular. Arterials and highways are never dropped.
	DropProb float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns the network used by the paper-scale experiments:
// a 1000 km² universe with 500 m local blocks.
func DefaultConfig(seed int64) Config {
	return Config{Side: 31623, Spacing: 500, Jitter: 0.25, DropProb: 0.12, Seed: seed}
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.Side <= 0 {
		return fmt.Errorf("roadnet: non-positive side %v", c.Side)
	}
	if c.Spacing <= 0 || c.Spacing > c.Side {
		return fmt.Errorf("roadnet: spacing %v out of (0, side]", c.Spacing)
	}
	if c.Jitter < 0 || c.Jitter >= 0.5 {
		return fmt.Errorf("roadnet: jitter %v out of [0, 0.5)", c.Jitter)
	}
	if c.DropProb < 0 || c.DropProb >= 1 {
		return fmt.Errorf("roadnet: drop probability %v out of [0, 1)", c.DropProb)
	}
	return nil
}

// Network is an undirected road graph.
type Network struct {
	nodes []geom.Point
	edges []Edge
	adj   [][]int32 // adjacency lists of edge indices per node
	comp  []int32   // connected component labels
	giant int32     // label of the largest component
	bound geom.Rect
	vmax  float64
}

// Generate builds a network from cfg.
func Generate(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cols := int(math.Round(cfg.Side/cfg.Spacing)) + 1
	rows := cols
	if cols < 2 {
		return nil, errors.New("roadnet: universe too small for spacing")
	}
	n := &Network{bound: geom.Rect{MinX: 0, MinY: 0, MaxX: cfg.Side, MaxY: cfg.Side}}
	n.nodes = make([]geom.Point, 0, cols*rows)
	idAt := func(c, r int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x := float64(c) * cfg.Spacing
			y := float64(r) * cfg.Spacing
			// Jitter interior nodes only, keeping the hull intact.
			if c > 0 && c < cols-1 {
				x += (rng.Float64()*2 - 1) * cfg.Jitter * cfg.Spacing
			}
			if r > 0 && r < rows-1 {
				y += (rng.Float64()*2 - 1) * cfg.Jitter * cfg.Spacing
			}
			n.nodes = append(n.nodes, geom.Pt(x, y))
		}
	}
	// lineClass assigns a class to each lattice line: every 10th line is a
	// highway, every 3rd an arterial, the rest local.
	lineClass := func(i int) Class {
		switch {
		case i%10 == 0:
			return Highway
		case i%3 == 0:
			return Arterial
		default:
			return Local
		}
	}
	addEdge := func(a, b NodeID, class Class) {
		if class == Local && rng.Float64() < cfg.DropProb {
			return
		}
		length := n.nodes[a].DistanceTo(n.nodes[b])
		n.edges = append(n.edges, Edge{From: a, To: b, Class: class, Length: length})
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				addEdge(idAt(c, r), idAt(c+1, r), lineClass(r)) // horizontal segment on row r
			}
			if r+1 < rows {
				addEdge(idAt(c, r), idAt(c, r+1), lineClass(c)) // vertical segment on column c
			}
		}
	}
	n.buildAdjacency()
	n.labelComponents()
	n.vmax = Highway.SpeedLimit()
	return n, nil
}

func (n *Network) buildAdjacency() {
	n.adj = make([][]int32, len(n.nodes))
	for i, e := range n.edges {
		n.adj[e.From] = append(n.adj[e.From], int32(i))
		n.adj[e.To] = append(n.adj[e.To], int32(i))
	}
}

func (n *Network) labelComponents() {
	n.comp = make([]int32, len(n.nodes))
	for i := range n.comp {
		n.comp[i] = -1
	}
	var label int32
	sizes := map[int32]int{}
	stack := make([]NodeID, 0, 1024)
	for start := range n.nodes {
		if n.comp[start] != -1 {
			continue
		}
		stack = append(stack[:0], NodeID(start))
		n.comp[start] = label
		size := 0
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, ei := range n.adj[v] {
				e := n.edges[ei]
				w := e.To
				if w == v {
					w = e.From
				}
				if n.comp[w] == -1 {
					n.comp[w] = label
					stack = append(stack, w)
				}
			}
		}
		sizes[label] = size
		label++
	}
	best, bestSize := int32(0), -1
	for l, s := range sizes {
		if s > bestSize {
			best, bestSize = l, s
		}
	}
	n.giant = best
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumEdges returns the edge count.
func (n *Network) NumEdges() int { return len(n.edges) }

// Node returns the position of a node.
func (n *Network) Node(id NodeID) geom.Point { return n.nodes[id] }

// Edge returns the i-th edge.
func (n *Network) Edge(i int) Edge { return n.edges[i] }

// Bounds returns the universe rectangle.
func (n *Network) Bounds() geom.Rect { return n.bound }

// MaxSpeed returns the system-wide maximum speed in m/s — the v_max bound
// the safe-period baseline relies on.
func (n *Network) MaxSpeed() float64 { return n.vmax }

// InGiantComponent reports whether a node can reach the bulk of the map.
func (n *Network) InGiantComponent(id NodeID) bool { return n.comp[id] == n.giant }

// RandomNode returns a uniformly random node of the giant component.
func (n *Network) RandomNode(rng *rand.Rand) NodeID {
	for {
		id := NodeID(rng.Intn(len(n.nodes)))
		if n.InGiantComponent(id) {
			return id
		}
	}
}

// NearestNode returns the node closest to p within the giant component.
// Linear scan; used only for example/demo setup, not in the hot path.
func (n *Network) NearestNode(p geom.Point) NodeID {
	best := NodeID(-1)
	bestD := math.Inf(1)
	for i, np := range n.nodes {
		if !n.InGiantComponent(NodeID(i)) {
			continue
		}
		if d := np.DistanceSqTo(p); d < bestD {
			best, bestD = NodeID(i), d
		}
	}
	return best
}

// ErrNoPath is returned when no route exists between two nodes.
var ErrNoPath = errors.New("roadnet: no path between nodes")

// ShortestPath returns the minimum-travel-time route between two nodes as
// a sequence of edge indices, plus the total travel time in seconds. It is
// an A* search with the straight-line-at-v_max admissible heuristic.
func (n *Network) ShortestPath(from, to NodeID) ([]int32, float64, error) {
	if from == to {
		return nil, 0, nil
	}
	dist := make(map[NodeID]float64, 256)
	prevEdge := make(map[NodeID]int32, 256)
	pq := &pathHeap{}
	heap.Init(pq)
	dist[from] = 0
	heap.Push(pq, pathElem{node: from, prio: n.heuristic(from, to)})
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(pathElem)
		if cur.node == to {
			break
		}
		d := dist[cur.node]
		if cur.prio-n.heuristic(cur.node, to) > d+1e-9 {
			continue // stale heap entry
		}
		for _, ei := range n.adj[cur.node] {
			e := n.edges[ei]
			next := e.To
			if next == cur.node {
				next = e.From
			}
			nd := d + e.TravelTime()
			if old, ok := dist[next]; !ok || nd < old {
				dist[next] = nd
				prevEdge[next] = ei
				heap.Push(pq, pathElem{node: next, prio: nd + n.heuristic(next, to)})
			}
		}
	}
	total, ok := dist[to]
	if !ok {
		return nil, 0, ErrNoPath
	}
	// Reconstruct edge sequence backwards.
	var rev []int32
	cur := to
	for cur != from {
		ei := prevEdge[cur]
		rev = append(rev, ei)
		e := n.edges[ei]
		if e.To == cur {
			cur = e.From
		} else {
			cur = e.To
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, total, nil
}

func (n *Network) heuristic(a, b NodeID) float64 {
	return n.nodes[a].DistanceTo(n.nodes[b]) / n.vmax
}

type pathElem struct {
	node NodeID
	prio float64
}

type pathHeap struct{ elems []pathElem }

func (h *pathHeap) Len() int           { return len(h.elems) }
func (h *pathHeap) Less(i, j int) bool { return h.elems[i].prio < h.elems[j].prio }
func (h *pathHeap) Swap(i, j int)      { h.elems[i], h.elems[j] = h.elems[j], h.elems[i] }
func (h *pathHeap) Push(x interface{}) { h.elems = append(h.elems, x.(pathElem)) }
func (h *pathHeap) Pop() interface{} {
	last := len(h.elems) - 1
	e := h.elems[last]
	h.elems = h.elems[:last]
	return e
}
