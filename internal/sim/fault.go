package sim

import (
	"fmt"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/client"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/mobility"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/stats"
	"github.com/sabre-geo/sabre/internal/transport"
	"github.com/sabre-geo/sabre/internal/wire"
)

// FaultPlan scripts a deterministic fault campaign for RunFaulty. Every
// client link gets its own seeded transport.FaultSchedule derived from
// Seed, so two runs with the same workload, strategy and plan replay
// byte-identical fault sequences.
type FaultPlan struct {
	Seed int64

	// Probabilistic faults applied (both directions) inside [From, Until).
	// Until must leave enough fault-free trailing ticks — see DrainTicks —
	// for queued reports to replay; Until == 0 means the whole trace,
	// which only converges if DrainTicks is generous.
	From, Until   int
	DropProb      float64
	DupProb       float64
	DelayProb     float64
	MaxDelayTicks int
	ReorderProb   float64

	// PartitionEvery selects every Nth client (1-based user ID divisible
	// by N) for a network partition over Partition; 0 disables.
	PartitionEvery int
	Partition      transport.Window

	// ResetEvery selects every Nth client for a hard connection reset at
	// ResetTick; 0 disables. A reset kills the whole link (both
	// directions), forcing the session through reconnect + resume.
	ResetEvery int
	ResetTick  int

	// Session tunes the client session state machines; zero fields take
	// the session defaults.
	Session client.SessionConfig

	// DrainTicks extends the run past the trace end with positions frozen
	// and (scheduled) faults over, giving sessions time to reconnect,
	// replay queues and collect redelivered firings.
	DrainTicks int
}

// DefaultFaultPlan returns an aggressive but convergent plan for a trace
// of the given length: heavy probabilistic faults over the first 3/4 of
// the trace, a mid-run partition for every 3rd client, a hard reset for
// every 4th, and a drain window long enough to replay everything.
func DefaultFaultPlan(seed int64, durationTicks int) FaultPlan {
	return FaultPlan{
		Seed:           seed,
		From:           0,
		Until:          durationTicks * 3 / 4,
		DropProb:       0.15,
		DupProb:        0.10,
		DelayProb:      0.10,
		MaxDelayTicks:  3,
		ReorderProb:    0.10,
		PartitionEvery: 3,
		Partition:      transport.Window{From: durationTicks / 5, Until: durationTicks * 3 / 10},
		ResetEvery:     4,
		ResetTick:      durationTicks / 2,
		DrainTicks:     durationTicks*3/4 + 100,
	}
}

// faultLink is one client's live connection as the harness sees it: the
// raw server endpoint is reached through srv (downlink faults), the
// client endpoint through cli (uplink faults). Both wrappers share the
// pipe, so one reset kills the pair.
type faultLink struct {
	user uint64
	cli  *transport.FaultyConn
	srv  *transport.FaultyConn
}

// schedFor derives the fault schedule for one endpoint. dir is 0 for the
// client (uplink) side, 1 for the server (downlink) side; incarnation
// increments per reconnect so a fresh link draws a fresh fault stream.
func (p FaultPlan) schedFor(user uint64, dir, incarnation int) transport.FaultSchedule {
	s := transport.FaultSchedule{
		Seed: p.Seed ^ int64(user)*0x9E3779B9 ^
			int64(dir+1)<<40 ^ int64(incarnation)<<48,
		From:          p.From,
		Until:         p.Until,
		DropProb:      p.DropProb,
		DupProb:       p.DupProb,
		DelayProb:     p.DelayProb,
		MaxDelayTicks: p.MaxDelayTicks,
		ReorderProb:   p.ReorderProb,
	}
	if p.PartitionEvery > 0 && user%uint64(p.PartitionEvery) == 0 {
		s.Partitions = []transport.Window{p.Partition}
	}
	// Resets live on the uplink wrapper only: closing it tears down the
	// shared pipe, so one scheduled reset already kills both directions.
	if dir == 0 && p.ResetEvery > 0 && user%uint64(p.ResetEvery) == 0 {
		s.ResetAt = []int{p.ResetTick}
	}
	return s
}

// RunFaulty executes one strategy over the workload with every client
// behind a fault-injected link and the full session layer active
// (Hello/Resume, heartbeats, reconnect with backoff, report queues,
// FiredAck). It is single-threaded and fully deterministic. Triggers are
// recorded at client delivery (deduplicated), so under the exactly-once
// guarantee the (User, Alarm) pairs equal a fault-free Run's — which
// TestFaultInjectionDeliveryEquality asserts for each safe-region
// strategy.
func RunFaulty(w *Workload, sc StrategyConfig, plan FaultPlan) (*Report, error) {
	if sc.PyramidHeight == 0 {
		sc.PyramidHeight = 5
	}
	if sc.BitmapMaxBits == 0 {
		sc.BitmapMaxBits = 2048
	}
	if sc.CellAreaKM2 == 0 {
		sc.CellAreaKM2 = 2.5
	}
	mobCfg := mobility.DefaultConfig(w.Config.Vehicles, w.Config.Seed)
	mob, err := mobility.NewSimulator(w.Net, mobCfg)
	if err != nil {
		return nil, err
	}
	universe := w.Net.Bounds().Expand(50)
	eng, err := server.New(server.Config{
		Universe:                universe,
		CellAreaM2:              sc.CellAreaKM2 * 1e6,
		Model:                   sc.Model,
		PyramidParams:           pyramidParams(sc),
		MaxSpeed:                mob.MaxSpeed(),
		TickSeconds:             mobCfg.TickSeconds,
		PrecomputePublicBitmaps: sc.PrecomputePublicBitmaps,
		ExhaustiveAssembly:      sc.ExhaustiveAssembly,
		UseBucketIndex:          sc.BucketIndex,
		SafePeriodSpeedFactor:   sc.SafePeriodSpeedFactor,
		Costs:                   metrics.DefaultCosts(),
	})
	if err != nil {
		return nil, err
	}
	if _, err := eng.Registry().InstallBatch(w.Alarms); err != nil {
		return nil, err
	}

	n := w.Config.Vehicles
	perClient := make([]metrics.Client, n)
	sessions := make([]*client.Session, n)
	links := make([]*faultLink, n)
	incarnation := make([]int, n)
	curTick := 0
	var triggers []Trigger

	for i := 0; i < n; i++ {
		i := i
		user := uint64(i + 1)
		cl := client.New(user, sc.Strategy, &perClient[i])
		scfg := plan.Session
		scfg.MaxHeight = uint8(sc.PyramidHeight)
		scfg.JitterSeed = plan.Seed ^ int64(user)<<17
		dial := func() (transport.Conn, error) {
			incarnation[i]++
			cEnd, sEnd := transport.Pipe(4096)
			ln := &faultLink{
				user: user,
				cli:  transport.Faulty(cEnd, plan.schedFor(user, 0, incarnation[i]), curTick),
				srv:  transport.Faulty(sEnd, plan.schedFor(user, 1, incarnation[i]), curTick),
			}
			links[i] = ln
			return ln.cli, nil
		}
		sessions[i] = client.NewSession(cl, dial, scfg, &perClient[i])
		sessions[i].OnFired = func(ids []uint64) {
			for _, id := range ids {
				triggers = append(triggers, Trigger{User: user, Alarm: id, Tick: curTick})
			}
		}
	}

	// Moving-target invalidation pushes travel the faulty downlink like
	// every other server-initiated message.
	eng.SetPusher(func(user alarm.UserID, msgs []wire.Message) {
		idx := int(user) - 1
		if idx < 0 || idx >= n || links[idx] == nil {
			return
		}
		for _, m := range msgs {
			if links[idx].srv.Send(m) != nil {
				return
			}
		}
	})

	positions := make([]geom.Point, n)
	var serverWall time.Duration
	total := w.Config.DurationTicks + plan.DrainTicks
	for tick := 0; tick < total; tick++ {
		curTick = tick
		if tick < w.Config.DurationTicks {
			mob.Step()
			for i := range positions {
				positions[i] = mob.Position(i)
			}
		}
		// Phase 1: advance every live link's fault clocks, releasing
		// delayed traffic and firing scheduled resets.
		for i, ln := range links {
			if ln == nil {
				continue
			}
			if ln.cli.Advance(tick) != nil || ln.srv.Advance(tick) != nil {
				links[i] = nil // reset fired; the session reconnects
			}
		}
		// Phase 2: sessions evaluate and (re)send in index order. Once the
		// trace ends, sessions only settle in-flight traffic (resends,
		// firing redeliveries, acks) instead of reporting the frozen
		// position forever — a perpetually-unsafe client would otherwise
		// keep an entry in flight at every cutoff.
		for i, s := range sessions {
			if tick < w.Config.DurationTicks {
				s.Step(tick, positions[i])
			} else {
				s.Quiesce(tick)
			}
		}
		// Phase 3: the server drains each link in index order and replies
		// down the faulty downlink; responses reach the session next tick.
		for i, ln := range links {
			if ln == nil {
				continue
			}
			if err := serveFaultLink(eng, ln, &serverWall); err != nil {
				if err == transport.ErrClosed {
					links[i] = nil
					continue
				}
				return nil, fmt.Errorf("tick %d user %d: %w", tick, ln.user, err)
			}
		}
	}

	for i, s := range sessions {
		if qs := s.QueueLen(); qs > 0 {
			return nil, fmt.Errorf("sim: user %d still has %d undrained reports after %d drain ticks — extend DrainTicks or end faults earlier", i+1, qs, plan.DrainTicks)
		}
	}

	clientMet := &metrics.Client{}
	msgsPerClient := make([]uint64, n)
	for i := range perClient {
		clientMet.Merge(perClient[i])
		msgsPerClient[i] = perClient[i].MessagesSent
	}
	met := eng.Metrics().Snapshot()
	traceSeconds := float64(w.Config.DurationTicks) * mobCfg.TickSeconds
	return &Report{
		Strategy:               sc.Strategy.String(),
		Vehicles:               n,
		DurationTicks:          w.Config.DurationTicks,
		UplinkMessages:         met.UplinkMessages,
		UplinkBytes:            met.UplinkBytes,
		DownlinkMessages:       met.DownlinkMessages,
		DownlinkBytes:          met.DownlinkBytes,
		DownlinkMbps:           met.DownlinkMbps(traceSeconds),
		UpdateBatches:          met.UpdateBatches,
		BatchedUpdates:         met.BatchedUpdates,
		ClientChecks:           clientMet.ContainmentChecks,
		ClientProbes:           clientMet.Probes,
		ClientEnergyMWh:        clientMet.Energy(metrics.DefaultEnergy()),
		ClientProbeEnergyMWh:   float64(clientMet.Probes) * metrics.DefaultEnergy().ProbeMilliWattHours,
		PerClientMessages:      stats.SummarizeUints(msgsPerClient),
		AlarmProcessingMinutes: met.AlarmProcessingSeconds() / 60,
		SafeRegionMinutes:      met.SafeRegionSeconds() / 60,
		TotalServerMinutes:     met.TotalSeconds() / 60,
		SafeRegionComputations: met.SafeRegionComputations,
		AlarmEvaluations:       met.AlarmEvaluations,
		RectClips:              met.RectClips,
		MeasuredServerSeconds:  serverWall.Seconds(),
		Triggers:               triggers,
	}, nil
}

// serveFaultLink drains one link's pending uplink messages and replies.
// Returns transport.ErrClosed when the link died underneath us.
func serveFaultLink(eng *server.Engine, ln *faultLink, wall *time.Duration) error {
	for {
		m, ok, err := ln.srv.TryRecv()
		if err != nil {
			return transport.ErrClosed
		}
		if !ok {
			return nil
		}
		var responses []wire.Message
		switch v := m.(type) {
		case wire.Hello:
			responses, _, err = eng.HandleHello(v)
			if err != nil {
				return err
			}
		case wire.Heartbeat:
			responses = eng.HandleHeartbeat(alarm.UserID(ln.user), v)
		case wire.FiredAck:
			if err = eng.AckFired(alarm.UserID(ln.user), v.Alarms); err != nil {
				return err
			}
		case wire.PositionUpdate:
			start := time.Now()
			responses, err = eng.HandleUpdate(v)
			*wall += time.Since(start)
			if err != nil {
				return err
			}
			if len(responses) == 0 {
				responses = []wire.Message{wire.Ack{Seq: v.Seq}}
			}
		case wire.UpdateBatch:
			start := time.Now()
			br, berr := eng.HandleUpdateBatch(v)
			*wall += time.Since(start)
			if berr != nil {
				return berr
			}
			responses = []wire.Message{br}
		default:
			return fmt.Errorf("sim: unexpected uplink message %v", m.Kind())
		}
		for _, r := range responses {
			if ln.srv.Send(r) != nil {
				// Link died mid-reply; the session replays on reconnect.
				return transport.ErrClosed
			}
		}
	}
}
