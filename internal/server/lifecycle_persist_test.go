package server

import (
	"reflect"
	"testing"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/wire"
)

// TestLifecycleSnapshotRoundTrip drives continuous and pair machines into
// the middle of their lifecycle (inside, occurrence 1), checkpoints the
// durable engine, kills it, and recovers: the machines must resume
// exactly where they were — the next boundary crossing is the EXIT of
// occurrence 1, never a replayed enter or a restarted occurrence count.
func TestLifecycleSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := newDurableEngine(t, dir, nil)
	ids, err := e.InstallAlarms([]alarm.Alarm{
		{Scope: alarm.Private, Owner: 1, Kind: alarm.KindContinuous,
			Region: geom.R(400, 400, 600, 600)},
		{Scope: alarm.Shared, Owner: 2, Subscribers: []alarm.UserID{2},
			Kind: alarm.KindPair, Anchor: 3, Radius: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	contID, pairID := uint64(ids[0]), ids[1]
	register(t, e, 1, wire.StrategyMWPSR)
	register(t, e, 2, wire.StrategyMWPSR)
	register(t, e, 3, wire.StrategyMWPSR)
	if err := e.SetTick(1); err != nil {
		t.Fatal(err)
	}

	// User 1 enters the continuous region; users 2 and 3 come into pair
	// range (the anchor reports first, so the endpoint sees it).
	out := handle(t, e, 1, 1, geom.Pt(500, 500))
	wantEnter := alarm.PackEvent(alarm.ID(contID), alarm.TransEnter, 1)
	if got := firedIn(out); len(got) != 1 || got[0] != wantEnter {
		t.Fatalf("continuous enter = %#x, want [%#x]", got, wantEnter)
	}
	handle(t, e, 3, 1, geom.Pt(2000, 2000))
	out = handle(t, e, 2, 1, geom.Pt(2100, 2000))
	if got := firedIn(out); len(got) != 1 || got[0] != alarm.PackEvent(pairID, alarm.TransEnter, 1) {
		t.Fatalf("pair enter = %#x", got)
	}

	// The transition counter must have moved on the metrics snapshot
	// (one continuous enter + pair enters for the reporting endpoint and
	// the woken partner).
	if got := e.Metrics().Snapshot().AlarmTransitions; got < 2 {
		t.Fatalf("alarm_transitions = %d, want >= 2", got)
	}

	before := e.Registry().LifecycleStates()
	if len(before) == 0 {
		t.Fatal("no lifecycle states before checkpoint")
	}

	// Checkpoint (exercising DurableState's lifecycle capture), then die.
	if err := e.Store().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.Store().Kill()

	e2 := newDurableEngine(t, dir, nil)
	if err := e2.SetTick(2); err != nil {
		t.Fatal(err)
	}
	after := e2.Registry().LifecycleStates()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("lifecycle states changed across recovery:\n before %+v\n after  %+v", before, after)
	}
	// The per-kind gauges must be rebuilt by recovery, not only by live
	// installs (both metrics endpoints render this snapshot verbatim).
	sn := e2.Metrics().Snapshot()
	if sn.AlarmsContinuous != 1 || sn.AlarmsPair != 1 || sn.AlarmsComposite != 0 {
		t.Fatalf("recovered gauges = continuous %d / pair %d / composite %d, want 1/1/0",
			sn.AlarmsContinuous, sn.AlarmsPair, sn.AlarmsComposite)
	}

	// Mid-lifecycle semantics: the recovered machine is INSIDE occurrence
	// 1, so leaving the region yields exit #1 — and re-entering later
	// yields enter #2, proving the occurrence counter also survived.
	register(t, e2, 1, wire.StrategyMWPSR)
	out = handle(t, e2, 1, 2, geom.Pt(900, 900))
	wantExit := alarm.PackEvent(alarm.ID(contID), alarm.TransExit, 1)
	if got := firedIn(out); len(got) != 1 || got[0] != wantExit {
		t.Fatalf("post-recovery event = %#x, want exit [%#x]", got, wantExit)
	}
	out = handle(t, e2, 1, 3, geom.Pt(500, 500))
	wantEnter2 := alarm.PackEvent(alarm.ID(contID), alarm.TransEnter, 2)
	if got := firedIn(out); len(got) != 1 || got[0] != wantEnter2 {
		t.Fatalf("re-enter event = %#x, want [%#x]", got, wantEnter2)
	}
}

// TestCompositeTTLExpiry checks the full death of an expired composite
// alarm: past its TTL the alarm is garbage-collected from the registry,
// an expiry record lands in the WAL, and — critically — it never fires
// again, not even after a crash and recovery replay.
func TestCompositeTTLExpiry(t *testing.T) {
	dir := t.TempDir()
	e := newDurableEngine(t, dir, nil)
	ids, err := e.InstallAlarms([]alarm.Alarm{{
		Scope: alarm.Private, Owner: 9, Kind: alarm.KindComposite,
		Factors:   []alarm.Factor{{Center: geom.Pt(500, 500), Radius: 300, Weight: 1.0}},
		Threshold: 0.5, ExpiresAt: 10,
	}})
	if err != nil {
		t.Fatal(err)
	}
	register(t, e, 9, wire.StrategyMWPSR)
	if got := e.Metrics().Snapshot().AlarmsComposite; got != 1 {
		t.Fatalf("alarms_composite = %d, want 1", got)
	}

	// Advance past the TTL without the user ever entering: the alarm is
	// GC'd and logged as expired.
	if err := e.SetTick(10); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Registry().Get(ids[0]); ok {
		t.Fatal("expired composite still in registry")
	}
	if got := e.Metrics().Snapshot().AlarmsComposite; got != 0 {
		t.Fatalf("alarms_composite after expiry = %d, want 0", got)
	}
	// Walking into the (former) factor zone after expiry must not fire.
	if got := firedIn(handle(t, e, 9, 1, geom.Pt(500, 500))); len(got) != 0 {
		t.Fatalf("expired composite fired %#x", got)
	}

	// Crash without a checkpoint: recovery replays the install AND the
	// expiry record, so the alarm must stay dead.
	e.Store().Kill()
	e2 := newDurableEngine(t, dir, nil)
	if _, ok := e2.Registry().Get(ids[0]); ok {
		t.Fatal("expired composite resurrected by recovery replay")
	}
	if got := e2.Metrics().Snapshot().AlarmsComposite; got != 0 {
		t.Fatalf("recovered alarms_composite = %d, want 0", got)
	}
	register(t, e2, 9, wire.StrategyMWPSR)
	if err := e2.SetTick(11); err != nil {
		t.Fatal(err)
	}
	if got := firedIn(handle(t, e2, 9, 2, geom.Pt(500, 500))); len(got) != 0 {
		t.Fatalf("expired composite fired after recovery %#x", got)
	}
}
