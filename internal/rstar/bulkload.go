package rstar

import (
	"math"
	"sort"
)

// BulkLoad builds a tree from a full item set using Sort-Tile-Recursive
// packing (Leutenegger et al., ICDE 1997): items are sorted into
// √(n/M) vertical slabs by centre x, each slab sorted by centre y and cut
// into full leaves. Packed trees are built in O(n log n) — the alarm
// server uses it to index a complete alarm table at startup instead of
// inserting one by one — and their near-100% fill keeps query fan-out low.
// Mutations (Insert/Delete) work normally afterwards.
func BulkLoad(items []Item, maxEntries int) *Tree {
	t := New(maxEntries)
	if len(items) == 0 {
		return t
	}
	leafItems := append([]Item(nil), items...)
	leaves := packLeaves(leafItems, t.maxEntries)
	level := leaves
	height := 1
	for len(level) > 1 {
		level = packInner(level, t.maxEntries)
		height++
	}
	t.root = level[0]
	t.height = height
	t.size = len(items)
	return t
}

// InsertBatch adds many items. An empty tree is STR bulk-loaded (see
// BulkLoad); a non-empty one takes individual inserts.
func (t *Tree) InsertBatch(items []Item) {
	if t.size == 0 && len(items) > t.maxEntries {
		packed := BulkLoad(items, t.maxEntries)
		t.root = packed.root
		t.height = packed.height
		t.size = packed.size
		return
	}
	for _, it := range items {
		t.Insert(it)
	}
}

// packLeaves tiles items into leaf nodes.
func packLeaves(items []Item, m int) []*node {
	entries := make([]entry, len(items))
	for i, it := range items {
		entries[i] = entry{rect: it.Rect, id: it.ID}
	}
	groups := strTile(entries, m)
	out := make([]*node, len(groups))
	for i, g := range groups {
		n := &node{leaf: true, entries: g}
		n.recomputeRect()
		out[i] = n
	}
	return out
}

// packInner tiles child nodes into parent nodes.
func packInner(children []*node, m int) []*node {
	entries := make([]entry, len(children))
	for i, c := range children {
		entries[i] = entry{rect: c.rect, child: c}
	}
	groups := strTile(entries, m)
	out := make([]*node, len(groups))
	for i, g := range groups {
		n := &node{leaf: false, entries: g}
		n.recomputeRect()
		out[i] = n
	}
	return out
}

// strTile partitions entries into groups of at most m using the STR
// slab-then-run tiling.
func strTile(entries []entry, m int) [][]entry {
	n := len(entries)
	numNodes := (n + m - 1) / m
	slabCount := int(math.Ceil(math.Sqrt(float64(numNodes))))
	slabSize := slabCount * m

	sort.Slice(entries, func(i, j int) bool {
		return entries[i].rect.Center().X < entries[j].rect.Center().X
	})
	var groups [][]entry
	for start := 0; start < n; start += slabSize {
		end := start + slabSize
		if end > n {
			end = n
		}
		slab := entries[start:end]
		sort.Slice(slab, func(i, j int) bool {
			return slab[i].rect.Center().Y < slab[j].rect.Center().Y
		})
		for s := 0; s < len(slab); s += m {
			e := s + m
			if e > len(slab) {
				e = len(slab)
			}
			group := make([]entry, e-s)
			copy(group, slab[s:e])
			groups = append(groups, group)
		}
	}
	return groups
}
