// Engine hot-path throughput benchmarks. Unlike the figure benchmarks in
// bench_test.go, which run whole simulations, these call
// Engine.HandleUpdate directly from concurrent goroutines to measure how
// update throughput scales with cores:
//
//	go test -bench=EngineParallel -cpu 1,2,4,8
//
// Each goroutine impersonates a distinct fleet of clients replaying
// pre-generated mobility traces, so per-client serialization never
// bottlenecks the measurement — contention, if any, comes from the shared
// structures (registry reads, metric counters, bitmap cache).
package sabre_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/mobility"
	"github.com/sabre-geo/sabre/internal/motion"
	"github.com/sabre-geo/sabre/internal/pyramid"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/sim"
	"github.com/sabre-geo/sabre/internal/wire"
)

// benchEngine builds an engine loaded with the small workload's alarms,
// registers vehicles under the given strategy, and returns per-vehicle
// position traces of traceTicks steps.
func benchEngine(tb testing.TB, w *sim.Workload, strategy wire.Strategy, traceTicks int) (*server.Engine, [][]geom.Point) {
	tb.Helper()
	mobCfg := mobility.DefaultConfig(w.Config.Vehicles, w.Config.Seed)
	mob, err := mobility.NewSimulator(w.Net, mobCfg)
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := server.New(server.Config{
		Universe:      w.Net.Bounds().Expand(50),
		CellAreaM2:    2.5e6,
		Model:         motion.MustNew(1, 32),
		PyramidParams: pyramid.DefaultParams(5),
		MaxSpeed:      mob.MaxSpeed(),
		TickSeconds:   mobCfg.TickSeconds,
		Costs:         metrics.DefaultCosts(),
	})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := eng.Registry().InstallBatch(w.Alarms); err != nil {
		tb.Fatal(err)
	}
	traces := make([][]geom.Point, w.Config.Vehicles)
	for i := range traces {
		traces[i] = make([]geom.Point, traceTicks)
	}
	for t := 0; t < traceTicks; t++ {
		mob.Step()
		for i := range traces {
			traces[i][t] = mob.Position(i)
		}
	}
	for i := 0; i < w.Config.Vehicles; i++ {
		if err := eng.Register(wire.Register{
			User: uint64(i + 1), Strategy: strategy, MaxHeight: 5,
		}); err != nil {
			tb.Fatal(err)
		}
	}
	return eng, traces
}

// BenchmarkEngineParallel measures HandleUpdate throughput under
// b.RunParallel. Run with -cpu 1,2,4,8 to see the scaling series; the
// sharded engine should deliver ≥2× ops/sec at 4 procs vs 1.
func BenchmarkEngineParallel(b *testing.B) {
	for _, s := range []struct {
		name     string
		strategy wire.Strategy
	}{
		{"MWPSR", wire.StrategyMWPSR},
		{"PBSR", wire.StrategyPBSR},
	} {
		b.Run(s.name, func(b *testing.B) {
			const traceTicks = 256
			w := workloadFor(b, -1)
			eng, traces := benchEngine(b, w, s.strategy, traceTicks)
			var nextUser atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each goroutine owns one vehicle's identity and trace, so
				// updates from different goroutines never serialize on a
				// client mutex.
				idx := int(nextUser.Add(1)-1) % len(traces)
				trace := traces[idx]
				seq := uint32(0)
				for pb.Next() {
					seq++
					upd := wire.PositionUpdate{
						User: uint64(idx + 1),
						Seq:  seq,
						Pos:  trace[int(seq)%traceTicks],
					}
					if _, err := eng.HandleUpdate(upd); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkEngineSteadyState is the zero-allocation acceptance gate: one
// MWPSR client replaying its trace through HandleUpdateScratch. The
// warm-up pass exhausts the one-shot alarm firings and grows the scratch
// buffers, so the measured loop is the steady state — it must report
// 0 B/op and 0 allocs/op.
func BenchmarkEngineSteadyState(b *testing.B) {
	const traceTicks = 256
	w := workloadFor(b, -1)
	eng, traces := benchEngine(b, w, wire.StrategyMWPSR, traceTicks)
	sc := server.NewUpdateScratch()
	trace := traces[0]
	seq := uint32(0)
	step := func() {
		seq++
		upd := wire.PositionUpdate{User: 1, Seq: seq, Pos: trace[int(seq)%traceTicks]}
		if _, err := eng.HandleUpdateScratch(upd, sc); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 2*traceTicks; i++ {
		step() // warm-up: fire every alarm on the trace once, grow buffers
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkEngineBatch measures HandleUpdateBatch throughput across batch
// sizes: each op submits one frame holding `size` successive positions of
// one vehicle's trace, so ns/op÷size is the per-update cost to compare
// against BenchmarkEngineSerial.
func BenchmarkEngineBatch(b *testing.B) {
	for _, size := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			const traceTicks = 256
			w := workloadFor(b, -1)
			eng, traces := benchEngine(b, w, wire.StrategyMWPSR, traceTicks)
			trace := traces[0]
			batch := wire.UpdateBatch{Updates: make([]wire.PositionUpdate, size)}
			seq := uint32(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < size; j++ {
					seq++
					batch.Updates[j] = wire.PositionUpdate{
						User: 1, Seq: seq, Pos: trace[int(seq)%traceTicks],
					}
				}
				if _, err := eng.HandleUpdateBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSerial is the single-goroutine baseline for the same
// update stream, useful to spot per-op regressions from the concurrency
// machinery itself.
func BenchmarkEngineSerial(b *testing.B) {
	const traceTicks = 256
	w := workloadFor(b, -1)
	eng, traces := benchEngine(b, w, wire.StrategyMWPSR, traceTicks)
	seq := uint32(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % len(traces)
		seq++
		upd := wire.PositionUpdate{
			User: uint64(idx + 1),
			Seq:  seq,
			Pos:  traces[idx][i%traceTicks],
		}
		if _, err := eng.HandleUpdate(upd); err != nil {
			b.Fatal(err)
		}
	}
}
