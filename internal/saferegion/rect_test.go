package saferegion

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/motion"
)

var cell = geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}

func uniformOpts() RectOptions { return RectOptions{Model: motion.Uniform()} }

func TestEmptyAlarmsReturnsCell(t *testing.T) {
	res := ComputeRect(geom.Pt(400, 600), cell, nil, uniformOpts())
	if res.Rect != cell {
		t.Errorf("Rect = %v, want whole cell", res.Rect)
	}
	if len(res.Inside) != 0 || res.Clips != 0 {
		t.Errorf("unexpected Inside=%v Clips=%d", res.Inside, res.Clips)
	}
}

func TestAlarmOutsideCellIgnored(t *testing.T) {
	alarms := []geom.Rect{{MinX: 5000, MinY: 5000, MaxX: 5100, MaxY: 5100}}
	res := ComputeRect(geom.Pt(500, 500), cell, alarms, uniformOpts())
	if res.Rect != cell {
		t.Errorf("Rect = %v, want whole cell", res.Rect)
	}
}

func TestSingleAlarmSingleQuadrant(t *testing.T) {
	// Alarm in quadrant I relative to position (200, 200).
	alarms := []geom.Rect{{MinX: 600, MinY: 700, MaxX: 700, MaxY: 800}}
	pos := geom.Pt(200, 200)
	res := ComputeRect(pos, cell, alarms, uniformOpts())
	r := res.Rect
	if !r.Contains(pos) {
		t.Fatalf("safe region %v lost position %v", r, pos)
	}
	if r.Overlaps(alarms[0]) {
		t.Fatalf("safe region %v overlaps alarm", r)
	}
	if !cell.ContainsRect(r) {
		t.Fatalf("safe region %v escapes cell", r)
	}
	// A single distant alarm should still allow a large region: either the
	// region stops at x=600 or at y=700 but spans the cell otherwise.
	if r.Area() < 0.5*cell.Area() {
		t.Errorf("region suspiciously small: %v (area %v)", r, r.Area())
	}
	if res.Clips != 0 {
		t.Errorf("skyline construction needed %d clips", res.Clips)
	}
}

func TestAlarmStraddlingAxis(t *testing.T) {
	// Alarm spans the +x axis relative to pos: it must constrain quadrants
	// I and IV with an axis-projected blocking point — the case Hu et al.
	// cannot handle (paper §6).
	pos := geom.Pt(500, 500)
	alarms := []geom.Rect{{MinX: 700, MinY: 450, MaxX: 800, MaxY: 550}}
	res := ComputeRect(pos, cell, alarms, uniformOpts())
	r := res.Rect
	if r.Overlaps(alarms[0]) {
		t.Fatalf("region %v overlaps axis-straddling alarm", r)
	}
	if !r.Contains(pos) {
		t.Fatal("lost position")
	}
	// The region must stop before x=700 on the right.
	if r.MaxX > 700+1e-9 {
		t.Errorf("MaxX = %v, want <= 700", r.MaxX)
	}
	// But should extend fully elsewhere.
	if r.MinX != 0 || r.MinY != 0 || r.MaxY != 1000 {
		t.Errorf("region %v should span the rest of the cell", r)
	}
}

func TestOverlappingAlarms(t *testing.T) {
	pos := geom.Pt(100, 100)
	alarms := []geom.Rect{
		{MinX: 300, MinY: 200, MaxX: 500, MaxY: 400},
		{MinX: 350, MinY: 250, MaxX: 600, MaxY: 500}, // overlaps the first
		{MinX: 200, MinY: 600, MaxX: 400, MaxY: 800},
	}
	res := ComputeRect(pos, cell, alarms, uniformOpts())
	for i, a := range alarms {
		if res.Rect.Overlaps(a) {
			t.Errorf("region overlaps alarm %d", i)
		}
	}
	if !res.Rect.Contains(pos) {
		t.Error("lost position")
	}
}

func TestInsideAlarmIntersectionCase(t *testing.T) {
	pos := geom.Pt(500, 500)
	alarms := []geom.Rect{
		{MinX: 400, MinY: 400, MaxX: 700, MaxY: 700}, // contains pos
		{MinX: 450, MinY: 300, MaxX: 650, MaxY: 620}, // also contains pos
		{MinX: 900, MinY: 900, MaxX: 950, MaxY: 950}, // unrelated
	}
	res := ComputeRect(pos, cell, alarms, uniformOpts())
	if len(res.Inside) != 2 {
		t.Fatalf("Inside = %v, want the two containing alarms", res.Inside)
	}
	want := alarms[0].Intersect(alarms[1])
	if !want.ContainsRect(res.Rect) {
		t.Errorf("region %v exceeds containment intersection %v", res.Rect, want)
	}
	if !res.Rect.Contains(pos) {
		t.Error("lost position")
	}
}

func TestInsideAlarmClippedAgainstThird(t *testing.T) {
	// Client inside alarm A; alarm B overlaps A near the client. The
	// returned region must not overlap B (our soundness strengthening of
	// the paper's definition (ii)).
	pos := geom.Pt(500, 500)
	alarms := []geom.Rect{
		{MinX: 400, MinY: 400, MaxX: 700, MaxY: 700}, // A contains pos
		{MinX: 600, MinY: 400, MaxX: 800, MaxY: 700}, // B overlaps A, not pos
	}
	res := ComputeRect(pos, cell, alarms, uniformOpts())
	if len(res.Inside) != 1 || res.Inside[0] != 0 {
		t.Fatalf("Inside = %v", res.Inside)
	}
	if res.Rect.Overlaps(alarms[1]) {
		t.Errorf("region %v overlaps third alarm", res.Rect)
	}
	if res.Clips == 0 {
		t.Error("expected at least one clip in the inside case")
	}
}

func TestPositionOnCellBoundary(t *testing.T) {
	pos := geom.Pt(0, 500) // on left edge: quadrants II/III are degenerate
	alarms := []geom.Rect{{MinX: 200, MinY: 400, MaxX: 300, MaxY: 600}}
	res := ComputeRect(pos, cell, alarms, uniformOpts())
	if !res.Rect.Contains(pos) {
		t.Fatalf("region %v lost boundary position %v", res.Rect, pos)
	}
	if res.Rect.Overlaps(alarms[0]) {
		t.Error("region overlaps alarm")
	}
}

func TestPositionOutsideCellClamped(t *testing.T) {
	res := ComputeRect(geom.Pt(-50, 2000), cell, nil, uniformOpts())
	if !cell.ContainsRect(res.Rect) {
		t.Errorf("region %v escapes cell", res.Rect)
	}
}

func TestWeightedBiasesTowardHeading(t *testing.T) {
	// Two symmetric alarms left and right; a client heading east should
	// prefer keeping the right side open.
	pos := geom.Pt(500, 500)
	alarms := []geom.Rect{
		{MinX: 650, MinY: 0, MaxX: 700, MaxY: 1000}, // wall on the right
		{MinX: 300, MinY: 0, MaxX: 350, MaxY: 1000}, // wall on the left
		{MinX: 0, MinY: 800, MaxX: 1000, MaxY: 850}, // ceiling
		{MinX: 0, MinY: 150, MaxX: 1000, MaxY: 200}, // floor
	}
	east := ComputeRect(pos, cell, alarms, RectOptions{Model: motion.MustNew(1, 8), Heading: 0})
	if !east.Rect.Contains(pos) {
		t.Fatal("lost position")
	}
	for i, a := range alarms {
		if east.Rect.Overlaps(a) {
			t.Fatalf("east region overlaps alarm %d", i)
		}
	}
	rightExtent := east.Rect.MaxX - pos.X
	leftExtent := pos.X - east.Rect.MinX
	if rightExtent < leftExtent {
		t.Errorf("heading east but right extent %v < left extent %v", rightExtent, leftExtent)
	}
	// Heading west must mirror the preference.
	west := ComputeRect(pos, cell, alarms, RectOptions{Model: motion.MustNew(1, 8), Heading: math.Pi})
	wRight := west.Rect.MaxX - pos.X
	wLeft := pos.X - west.Rect.MinX
	if wLeft < wRight {
		t.Errorf("heading west but left extent %v < right extent %v", wLeft, wRight)
	}
}

func TestExhaustiveAtLeastAsGoodAsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	model := motion.MustNew(1, 16)
	for iter := 0; iter < 200; iter++ {
		pos := geom.Pt(100+rng.Float64()*800, 100+rng.Float64()*800)
		var alarms []geom.Rect
		for i := 0; i < 1+rng.Intn(10); i++ {
			w, h := rng.Float64()*200+10, rng.Float64()*200+10
			x, y := rng.Float64()*(1000-w), rng.Float64()*(1000-h)
			a := geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
			if a.Contains(pos) {
				continue
			}
			alarms = append(alarms, a)
		}
		heading := rng.Float64()*2*math.Pi - math.Pi
		sc := newScorer(model, heading)
		greedy := ComputeRect(pos, cell, alarms, RectOptions{Model: model, Heading: heading})
		exhaustive := ComputeRect(pos, cell, alarms, RectOptions{Model: model, Heading: heading, Exhaustive: true})
		gw := rectScore(sc, greedy.Rect, pos)
		ew := rectScore(sc, exhaustive.Rect, pos)
		// Both variants run the same grow pass after assembly, so the
		// exhaustive result must score at least as well as the greedy one.
		if gw > ew+1e-9 {
			t.Fatalf("iter %d: greedy %v beat exhaustive %v", iter, gw, ew)
		}
	}
}

// rectScore evaluates the expected-exit-distance objective on a final
// rectangle (mirroring scorer.score but from an absolute rect).
func rectScore(sc *scorer, r geom.Rect, pos geom.Point) float64 {
	choice := [4]candidate{
		{x: r.MaxX - pos.X, y: r.MaxY - pos.Y},
		{x: pos.X - r.MinX, y: r.MaxY - pos.Y},
		{x: pos.X - r.MinX, y: pos.Y - r.MinY},
		{x: r.MaxX - pos.X, y: pos.Y - r.MinY},
	}
	return sc.score(choice)
}

// TestSoundnessProperty is the central MWPSR invariant: for random alarm
// fields and positions, under every motion model, the region contains the
// client, stays in the cell, and overlaps no alarm interior — with zero
// post-hoc clips (the skyline construction is already sound).
func TestSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	models := []motion.Model{motion.Uniform(), motion.MustNew(1, 4), motion.MustNew(1, 32)}
	for iter := 0; iter < 2000; iter++ {
		pos := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		var alarms []geom.Rect
		numInside := 0
		for i := 0; i < rng.Intn(15); i++ {
			w, h := rng.Float64()*300+1, rng.Float64()*300+1
			x, y := rng.Float64()*1100-50, rng.Float64()*1100-50
			a := geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
			if a.Contains(pos) {
				numInside++
			}
			alarms = append(alarms, a)
		}
		m := models[iter%len(models)]
		heading := rng.Float64()*2*math.Pi - math.Pi
		res := ComputeRect(pos, cell, alarms, RectOptions{Model: m, Heading: heading})
		if !res.Rect.Contains(pos) {
			t.Fatalf("iter %d: lost position %v, region %v", iter, pos, res.Rect)
		}
		if !cell.ContainsRect(res.Rect) {
			t.Fatalf("iter %d: region %v escapes cell", iter, res.Rect)
		}
		if len(res.Inside) != numInside {
			t.Fatalf("iter %d: Inside count %d, want %d", iter, len(res.Inside), numInside)
		}
		insideSet := map[int]bool{}
		for _, i := range res.Inside {
			insideSet[i] = true
		}
		for i, a := range alarms {
			if insideSet[i] {
				continue
			}
			if res.Rect.Overlaps(a) {
				t.Fatalf("iter %d: region %v overlaps alarm %d %v", iter, res.Rect, i, a)
			}
		}
		if numInside == 0 && res.Clips != 0 {
			t.Fatalf("iter %d: outside case needed %d clips — skyline not sound", iter, res.Clips)
		}
	}
}

// TestMaximality: the greedy MWPSR region should not be absurdly small —
// in each axis direction it extends either to the cell edge or to some
// alarm boundary.
func TestMaximality(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 300; iter++ {
		pos := geom.Pt(100+rng.Float64()*800, 100+rng.Float64()*800)
		var alarms []geom.Rect
		for i := 0; i < 1+rng.Intn(8); i++ {
			w, h := rng.Float64()*150+10, rng.Float64()*150+10
			x, y := rng.Float64()*(1000-w), rng.Float64()*(1000-h)
			a := geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
			if a.Contains(pos) {
				continue
			}
			alarms = append(alarms, a)
		}
		res := ComputeRect(pos, cell, alarms, uniformOpts())
		r := res.Rect
		// Local maximality: extending any one side by epsilon must either
		// leave the cell or overlap an alarm interior.
		const eps = 1e-6
		grow := func(dir int) geom.Rect {
			g := r
			switch dir {
			case 0:
				g.MaxX += eps
			case 1:
				g.MinX -= eps
			case 2:
				g.MaxY += eps
			default:
				g.MinY -= eps
			}
			return g
		}
		for dir := 0; dir < 4; dir++ {
			g := grow(dir)
			if !cell.ContainsRect(g) {
				continue // stopped at the cell edge
			}
			blocked := false
			for _, a := range alarms {
				if g.Overlaps(a) {
					blocked = true
					break
				}
			}
			if !blocked {
				t.Fatalf("iter %d: side %d of region %v can grow freely (pos %v)", iter, dir, r, pos)
			}
		}
	}
}

func cand(x, y float64) candidate { return candidate{x: x, y: y, absX: x, absY: y} }

func TestPruneDominated(t *testing.T) {
	cands := []candidate{cand(5, 3), cand(2, 8), cand(6, 4), cand(2, 9), cand(5, 3)}
	got := pruneDominated(cands)
	// Survivors must be a strict skyline: x ascending, y descending.
	for i := 1; i < len(got); i++ {
		if got[i].x <= got[i-1].x || got[i].y >= got[i-1].y {
			t.Fatalf("not a skyline: %v", got)
		}
	}
	// (6,4) is implied by (5,3); (2,9) by (2,8); dup (5,3) collapses.
	if len(got) != 2 {
		t.Fatalf("got %v, want 2 survivors", got)
	}
	if pruneDominated(nil) != nil {
		t.Error("empty input should return nil")
	}
}

func TestComponentCorners(t *testing.T) {
	ext := extent{x: 100, y: 100, absX: 100, absY: 100}
	sameXY := func(a, b candidate) bool { return a.x == b.x && a.y == b.y }
	t.Run("no constraints", func(t *testing.T) {
		got := componentCorners(nil, ext)
		if len(got) != 1 || !sameXY(got[0], cand(100, 100)) {
			t.Errorf("got %v", got)
		}
	})
	t.Run("single constraint", func(t *testing.T) {
		got := componentCorners([]candidate{cand(40, 60)}, ext)
		want := []candidate{cand(40, 100), cand(100, 60)}
		if len(got) != 2 || !sameXY(got[0], want[0]) || !sameXY(got[1], want[1]) {
			t.Errorf("got %v, want %v", got, want)
		}
	})
	t.Run("two constraints", func(t *testing.T) {
		got := componentCorners([]candidate{cand(30, 70), cand(60, 40)}, ext)
		want := []candidate{cand(30, 100), cand(60, 70), cand(100, 40)}
		for i := range want {
			if !sameXY(got[i], want[i]) {
				t.Errorf("corner %d = %v, want %v", i, got[i], want[i])
			}
		}
	})
}

func TestCostCounters(t *testing.T) {
	alarms := []geom.Rect{
		{MinX: 600, MinY: 600, MaxX: 700, MaxY: 700},
		{MinX: 200, MinY: 700, MaxX: 300, MaxY: 800},
	}
	res := ComputeRect(geom.Pt(500, 500), cell, alarms, uniformOpts())
	if res.Candidates == 0 || res.Corners == 0 {
		t.Errorf("cost counters not populated: %+v", res)
	}
}

func BenchmarkComputeRect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var alarms []geom.Rect
	for i := 0; i < 25; i++ {
		w, h := rng.Float64()*150+10, rng.Float64()*150+10
		x, y := rng.Float64()*(1000-w), rng.Float64()*(1000-h)
		alarms = append(alarms, geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h})
	}
	model := motion.MustNew(1, 32)
	pos := geom.Pt(500, 500)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ComputeRect(pos, cell, alarms, RectOptions{Model: model, Heading: 0.5})
	}
}

// TestGrowSidesEdgeCases pins the post-assembly growth pass behaviour.
func TestGrowSidesEdgeCases(t *testing.T) {
	w := sideWeightSet(motion.Uniform(), 0)

	t.Run("no alarms grows to cell", func(t *testing.T) {
		got := growSides(geom.R(400, 400, 600, 600), cell, nil, w)
		if got != cell {
			t.Errorf("got %v, want whole cell", got)
		}
	})
	t.Run("growth stops at alarm edges", func(t *testing.T) {
		alarms := []geom.Rect{
			{MinX: 700, MinY: 0, MaxX: 720, MaxY: 1000}, // wall right
			{MinX: 0, MinY: 800, MaxX: 1000, MaxY: 820}, // ceiling
		}
		got := growSides(geom.R(400, 400, 600, 600), cell, alarms, w)
		want := geom.Rect{MinX: 0, MinY: 0, MaxX: 700, MaxY: 800}
		if got != want {
			t.Errorf("got %v, want %v", got, want)
		}
	})
	t.Run("degenerate height cannot grow through a straddling alarm", func(t *testing.T) {
		// An alarm crossing the line y=500 with full x overlap pins a
		// zero-height rect at that line.
		alarms := []geom.Rect{{MinX: 0, MinY: 450, MaxX: 1000, MaxY: 550}}
		got := growSides(geom.R(0, 500, 1000, 500), cell, alarms, w)
		if got.Height() != 0 {
			t.Errorf("degenerate rect grew through a straddling alarm: %v", got)
		}
	})
	t.Run("degenerate width grows where free", func(t *testing.T) {
		got := growSides(geom.R(500, 0, 500, 1000), cell, nil, w)
		if got != cell {
			t.Errorf("got %v, want whole cell", got)
		}
	})
	t.Run("grown rect never overlaps alarms", func(t *testing.T) {
		rng := rand.New(rand.NewSource(77))
		for iter := 0; iter < 500; iter++ {
			var alarms []geom.Rect
			for i := 0; i < rng.Intn(10); i++ {
				wdt, hgt := rng.Float64()*200+5, rng.Float64()*200+5
				x, y := rng.Float64()*(1000-wdt), rng.Float64()*(1000-hgt)
				alarms = append(alarms, geom.Rect{MinX: x, MinY: y, MaxX: x + wdt, MaxY: y + hgt})
			}
			// A sound seed rect: a point not strictly inside any alarm.
			var seed geom.Rect
			for {
				p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
				inside := false
				for _, a := range alarms {
					if a.ContainsStrict(p) {
						inside = true
						break
					}
				}
				if !inside {
					seed = geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
					break
				}
			}
			got := growSides(seed, cell, alarms, w)
			for _, a := range alarms {
				if got.Overlaps(a) {
					t.Fatalf("iter %d: grown %v overlaps %v", iter, got, a)
				}
			}
			if !cell.ContainsRect(got) {
				t.Fatalf("iter %d: grown %v escaped cell", iter, got)
			}
		}
	})
}
