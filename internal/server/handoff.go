package server

import (
	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/wire"
)

// This file implements the two halves of a cross-shard session handoff
// (internal/cluster): the old shard exports the client's durable session
// state and forgets it; the new shard imports that state and mints a
// fresh resume token. Each half follows the write-ahead discipline of
// its own shard's log — export logs an ExpireRec (replay drops the
// client and its tokens, exactly like idle expiry), import logs a
// HelloRec followed by a FiredRec carrying the pending firings (replay
// reconstructs a reliable client with the same unacknowledged set). A
// crash between the two halves cannot lose a firing: the router holds
// the exported record until import succeeds.

// ExportSession removes the user's session from this engine and returns
// its durable record for re-enrollment elsewhere. The second return is
// false when the user has no state here. Soft state (last position,
// bitmap base cell, heading) is deliberately dropped — it regenerates
// from the client's next report, exactly as it does across a crash.
func (e *Engine) ExportSession(user alarm.UserID) (store.ClientRec, bool, error) {
	sh := e.shardFor(user)
	sh.mu.Lock()
	st := sh.m[user]
	delete(sh.m, user)
	sh.mu.Unlock()
	if st == nil {
		return store.ClientRec{}, false, nil
	}

	st.mu.Lock()
	rec := store.ClientRec{
		User:         uint64(user),
		Strategy:     st.strategy,
		MaxHeight:    uint8(st.maxHeight),
		Reliable:     st.reliable,
		PendingFired: append([]uint64(nil), st.pendingFired...),
	}
	st.mu.Unlock()

	e.sessMu.Lock()
	for tok, u := range e.sessions {
		if u == user {
			delete(e.sessions, tok)
		}
	}
	e.sessMu.Unlock()
	e.met.AddSessionExported()

	// ExpireRec replay deletes the client and every token for it — the
	// exact effect of the removal above.
	if err := e.logRecord(store.ExpireRec{User: uint64(user)}); err != nil {
		return rec, true, err
	}
	return rec, true, nil
}

// ImportSession enrolls a session exported from another shard. For a
// reliable session it mints a resume token (returned for the router to
// deliver to the client), carries the pending firings across, and marks
// every carried id fired in the local registry so an alarm installed on
// both shards cannot fire twice. Non-reliable (plain Register) clients
// import as a plain registration and get token 0.
func (e *Engine) ImportSession(rec store.ClientRec) (uint64, error) {
	user := alarm.UserID(rec.User)
	if !rec.Reliable {
		return 0, e.Register(wire.Register{
			User: rec.User, Strategy: rec.Strategy, MaxHeight: rec.MaxHeight,
		})
	}

	e.sessMu.Lock()
	if e.sessions == nil {
		e.sessions = make(map[uint64]alarm.UserID)
	}
	e.lastToken++
	token := e.lastToken
	e.sessions[token] = user
	e.sessMu.Unlock()

	pending := append([]uint64(nil), rec.PendingFired...)
	// Retire the carried pairs locally: a pending firing was already
	// delivered (or is being redelivered) — the local copy of the alarm
	// must become free space here too, keeping pendingFired and any
	// future newFired disjoint.
	reg := e.reg.Load()
	for _, id := range pending {
		reg.MarkFired(alarm.ID(id), user)
	}

	sh := e.shardFor(user)
	sh.mu.Lock()
	sh.m[user] = &clientState{
		strategy:     rec.Strategy,
		maxHeight:    int(rec.MaxHeight),
		reliable:     true,
		pendingFired: pending,
		lastActive:   e.now(),
	}
	sh.mu.Unlock()
	e.met.AddSessionImported()

	// Write-ahead: HelloRec reconstructs the reliable client and its
	// token; FiredRec re-marks the carried pairs fired and re-appends
	// them to the pending set. Replay of the pair is idempotent.
	if err := e.logRecord(store.HelloRec{
		User: rec.User, Token: token, Strategy: rec.Strategy, MaxHeight: rec.MaxHeight,
	}); err != nil {
		return token, err
	}
	if len(pending) > 0 {
		if err := e.logRecord(store.FiredRec{User: rec.User, Alarms: pending}); err != nil {
			return token, err
		}
	}
	return token, nil
}
