package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.String() != "n=0" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("basic fields wrong: %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if math.Abs(s.P50-3) > 1e-12 {
		t.Errorf("P50 = %v", s.P50)
	}
	if math.Abs(s.P25-2) > 1e-12 {
		t.Errorf("P25 = %v", s.P25)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("input mutated")
	}
}

func TestPercentileEdges(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if got := Percentile(sorted, 0); got != 10 {
		t.Errorf("q=0: %v", got)
	}
	if got := Percentile(sorted, 1); got != 40 {
		t.Errorf("q=1: %v", got)
	}
	if got := Percentile(sorted, 0.5); math.Abs(got-25) > 1e-12 {
		t.Errorf("q=0.5: %v (linear interpolation)", got)
	}
	if got := Percentile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("empty: %v", got)
	}
	if got := Percentile([]float64{7}, 0.9); got != 7 {
		t.Errorf("singleton: %v", got)
	}
}

func TestSummarizeUints(t *testing.T) {
	s := SummarizeUints([]uint64{1, 2, 3})
	if s.Count != 3 || s.Min != 1 || s.Max != 3 {
		t.Errorf("%+v", s)
	}
}

// Properties: percentiles are monotone in q and bounded by min/max.
func TestQuickPercentileProperties(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		sample := make([]float64, count)
		for i := range sample {
			sample[i] = rng.NormFloat64() * 100
		}
		sort.Float64s(sample)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Percentile(sample, q)
			if v < prev-1e-9 || v < sample[0]-1e-9 || v > sample[count-1]+1e-9 {
				return false
			}
			prev = v
		}
		s := Summarize(sample)
		return s.Min <= s.P25 && s.P25 <= s.P50 && s.P50 <= s.P90 &&
			s.P90 <= s.P95 && s.P95 <= s.Max &&
			s.Mean >= s.Min && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
