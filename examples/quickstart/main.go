// Quickstart: install a spatial alarm, walk a client toward it, and watch
// the safe region machinery deliver the alert with a handful of messages.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	sabre "github.com/sabre-geo/sabre"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 10×10 km universe of discourse with the paper's optimal 2.5 km²
	// grid cells.
	svc, err := sabre.NewService(sabre.ServiceConfig{
		Universe:    sabre.Rect{MinX: -100, MinY: -100, MaxX: 10100, MaxY: 10100},
		CellAreaKM2: 2.5,
	})
	if err != nil {
		return err
	}

	// "Alert me when I am within 250 m of the dry cleaner" — a private
	// alarm around a fixed target for user 1.
	dryCleaner := sabre.Pt(6000, 5000)
	alarmID, err := svc.InstallAlarm(sabre.Alarm{
		Scope:  sabre.Private,
		Owner:  1,
		Region: sabre.RectAround(dryCleaner, 500),
	})
	if err != nil {
		return err
	}
	fmt.Printf("installed alarm %d around %v\n", alarmID, dryCleaner)

	// The client monitors with rectangular (MWPSR) safe regions.
	if err := svc.RegisterClient(1, sabre.StrategyMWPSR, 0); err != nil {
		return err
	}
	mon := sabre.NewMonitor(1, sabre.StrategyMWPSR)

	// Drive east at 20 m/s, one position fix per second.
	for tick := 0; tick < 400; tick++ {
		pos := sabre.Pt(1000+float64(tick)*20, 5000)

		report := mon.Tick(tick, pos)
		if report == nil {
			continue // still provably safe: nothing to send
		}
		responses, err := svc.HandleUpdate(*report)
		if err != nil {
			return err
		}
		for _, msg := range responses {
			if fired, ok := msg.(sabre.AlarmFired); ok {
				for _, id := range fired.Alarms {
					fmt.Printf("tick %d at %v: alarm %d fired!\n", tick, pos, id)
				}
			}
			if err := mon.Handle(tick, msg); err != nil {
				return err
			}
		}
		if len(responses) == 0 {
			mon.Acknowledge()
		}
	}

	stats := svc.Stats()
	fmt.Printf("\nthe client sent %d reports for 400 position fixes (%.1f%%)\n",
		mon.MessagesSent(), 100*float64(mon.MessagesSent())/400)
	fmt.Printf("server evaluated %d uplink messages and delivered %d trigger(s)\n",
		stats.UplinkMessages, stats.AlarmsTriggered)
	fmt.Printf("estimated client energy: %.2f mWh\n", mon.EnergyMWh())
	return nil
}
