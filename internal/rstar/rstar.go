// Package rstar implements an R*-tree (Beckmann, Kriegel, Schneider, Seeger:
// "The R*-Tree: An Efficient and Robust Access Method for Points and
// Rectangles", SIGMOD 1990).
//
// The alarm server indexes every installed spatial alarm region in an
// R*-tree (paper §5.1) and evaluates position updates against it. The tree
// supports:
//
//   - insertion with forced reinsertion on overflow,
//   - the R* topological split (margin-driven axis choice, overlap-driven
//     distribution choice),
//   - deletion with tree condensation,
//   - point queries (all rectangles containing a point),
//   - range queries (all rectangles intersecting a window), and
//   - best-first nearest-neighbour queries by MINDIST (used by the
//     safe-period baseline).
//
// Every query reports the number of node accesses it performed so the
// server's deterministic cost model (internal/metrics) can charge I/O-like
// work per evaluation, mirroring how the paper accounts server load.
//
// The tree is not safe for concurrent mutation; the server serializes
// access (see internal/server).
package rstar

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"github.com/sabre-geo/sabre/internal/geom"
)

const (
	// DefaultMaxEntries is M, the node capacity. 32 keeps the tree shallow
	// for the paper's default 10,000 alarms (3 levels) while keeping splits
	// cheap.
	DefaultMaxEntries = 32
	// minFillRatio is m/M; the R* paper recommends 40%.
	minFillRatio = 0.4
	// reinsertRatio is p/M for forced reinsertion; the R* paper found 30%
	// of M to perform best.
	reinsertRatio = 0.3
)

// Item is a spatially indexed payload: an opaque identifier and its
// bounding rectangle. For SABRE the ID is the alarm ID and the rectangle
// the alarm region.
type Item struct {
	ID   uint64
	Rect geom.Rect
}

// Tree is an R*-tree. Use New to create one.
type Tree struct {
	root       *node
	maxEntries int
	minEntries int
	size       int
	height     int

	// nodeAccesses counts node visits across all queries since the last
	// ResetStats call. Mutating operations do not count. Atomic so that
	// concurrent readers (queries under a caller-held read lock) can count
	// without a data race.
	nodeAccesses atomic.Uint64
}

type node struct {
	leaf    bool
	rect    geom.Rect // bounding box of all entries; undefined when empty
	entries []entry
}

type entry struct {
	rect  geom.Rect
	child *node  // nil at leaves
	id    uint64 // valid at leaves
}

// New returns an empty R*-tree with node capacity maxEntries. Capacities
// below 4 are raised to 4 so the split distributions are well-defined.
func New(maxEntries int) *Tree {
	if maxEntries < 4 {
		maxEntries = 4
	}
	minEntries := int(math.Floor(float64(maxEntries) * minFillRatio))
	if minEntries < 2 {
		minEntries = 2
	}
	return &Tree{
		root:       &node{leaf: true},
		maxEntries: maxEntries,
		minEntries: minEntries,
		height:     1,
	}
}

// Len returns the number of items stored.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a single leaf root).
func (t *Tree) Height() int { return t.height }

// NodeAccesses returns the number of node visits performed by queries since
// the last ResetStats.
func (t *Tree) NodeAccesses() uint64 { return t.nodeAccesses.Load() }

// ResetStats zeroes the node access counter.
func (t *Tree) ResetStats() { t.nodeAccesses.Store(0) }

// Insert adds an item to the tree. Duplicate IDs are permitted; deletion
// removes the first match by (rect, id).
func (t *Tree) Insert(it Item) {
	// reinsertedLevels tracks which levels already performed forced
	// reinsertion during this insertion (R* performs it at most once per
	// level per insert).
	reinserted := make(map[int]bool)
	t.insertEntry(entry{rect: it.Rect, id: it.ID}, t.leafLevel(), reinserted)
	t.size++
}

// leafLevel returns the level number of leaves; the root is level
// t.height-1 and leaves are level 0.
func (t *Tree) leafLevel() int { return 0 }

// insertEntry inserts e at the given level (0 = leaf).
func (t *Tree) insertEntry(e entry, level int, reinserted map[int]bool) {
	path, idxs := t.choosePath(e.rect, level)
	n := path[len(path)-1]
	n.entries = append(n.entries, e)
	adjustAlongPath(path, idxs)
	if len(n.entries) > t.maxEntries {
		t.overflowTreatment(path, idxs, level, reinserted)
	}
}

// choosePath descends from the root to the node at the target level
// following the R* criteria: minimum overlap enlargement when the children
// are leaves, minimum area enlargement otherwise. It returns the node path
// (path[0] = root) and, for each non-root node, its entry index within its
// parent (idxs[i] is the index of path[i+1] inside path[i]).
func (t *Tree) choosePath(r geom.Rect, level int) (path []*node, idxs []int) {
	n := t.root
	path = append(path, n)
	depth := t.height - 1 // level of n
	for depth > level {
		childrenAreLeaves := depth-1 == 0
		var idx int
		if childrenAreLeaves {
			idx = chooseMinOverlap(n.entries, r)
		} else {
			idx = chooseMinEnlargement(n.entries, r)
		}
		idxs = append(idxs, idx)
		n = n.entries[idx].child
		path = append(path, n)
		depth--
	}
	return path, idxs
}

// adjustAlongPath recomputes bounding rectangles bottom-up along an
// insertion path and mirrors them into the parent entries.
func adjustAlongPath(path []*node, idxs []int) {
	for i := len(path) - 1; i >= 0; i-- {
		path[i].recomputeRect()
		if i > 0 {
			path[i-1].entries[idxs[i-1]].rect = path[i].rect
		}
	}
}

// chooseMinOverlap selects the entry whose rectangle needs the least overlap
// enlargement to include r, resolving ties by least area enlargement, then
// least area. It returns the entry index.
func chooseMinOverlap(entries []entry, r geom.Rect) int {
	bestIdx := 0
	bestOverlap := math.Inf(1)
	bestEnlarge := math.Inf(1)
	bestArea := math.Inf(1)
	for i := range entries {
		e := &entries[i]
		enlarged := e.rect.Union(r)
		var overlapDelta float64
		for j := range entries {
			if j == i {
				continue
			}
			overlapDelta += enlarged.OverlapArea(entries[j].rect) - e.rect.OverlapArea(entries[j].rect)
		}
		enlarge := enlarged.Area() - e.rect.Area()
		area := e.rect.Area()
		if overlapDelta < bestOverlap ||
			(overlapDelta == bestOverlap && enlarge < bestEnlarge) ||
			(overlapDelta == bestOverlap && enlarge == bestEnlarge && area < bestArea) {
			bestIdx, bestOverlap, bestEnlarge, bestArea = i, overlapDelta, enlarge, area
		}
	}
	return bestIdx
}

// chooseMinEnlargement selects the entry with least area enlargement,
// resolving ties by least area. It returns the entry index.
func chooseMinEnlargement(entries []entry, r geom.Rect) int {
	bestIdx := 0
	bestEnlarge := math.Inf(1)
	bestArea := math.Inf(1)
	for i := range entries {
		e := &entries[i]
		enlarge := e.rect.EnlargementArea(r)
		area := e.rect.Area()
		if enlarge < bestEnlarge || (enlarge == bestEnlarge && area < bestArea) {
			bestIdx, bestEnlarge, bestArea = i, enlarge, area
		}
	}
	return bestIdx
}

// overflowTreatment handles the node at the end of path holding M+1
// entries: forced reinsertion the first time a level overflows during an
// insertion, a split otherwise.
func (t *Tree) overflowTreatment(path []*node, idxs []int, level int, reinserted map[int]bool) {
	n := path[len(path)-1]
	if n != t.root && !reinserted[level] {
		reinserted[level] = true
		t.reinsert(path, idxs, level, reinserted)
		return
	}
	t.splitNode(path, idxs, level)
}

// reinsert removes the p entries farthest from the node centre and inserts
// them again from the top (R* forced reinsertion, "far reinsert" variant).
func (t *Tree) reinsert(path []*node, idxs []int, level int, reinserted map[int]bool) {
	n := path[len(path)-1]
	p := int(math.Round(float64(t.maxEntries) * reinsertRatio))
	if p < 1 {
		p = 1
	}
	center := n.rect.Center()
	sort.Slice(n.entries, func(i, j int) bool {
		return n.entries[i].rect.Center().DistanceSqTo(center) >
			n.entries[j].rect.Center().DistanceSqTo(center)
	})
	evicted := make([]entry, p)
	copy(evicted, n.entries[:p])
	n.entries = append(n.entries[:0], n.entries[p:]...)
	adjustAlongPath(path, idxs)
	for _, e := range evicted {
		t.insertEntry(e, level, reinserted)
	}
}

// splitNode performs the R* topological split of the overflowing node at
// the end of path, propagating splits upward along the path as needed.
func (t *Tree) splitNode(path []*node, idxs []int, level int) {
	n := path[len(path)-1]
	left, right := t.chooseSplit(n.entries)
	if n == t.root {
		newRoot := &node{leaf: false}
		ln := &node{leaf: n.leaf, entries: left}
		rn := &node{leaf: n.leaf, entries: right}
		ln.recomputeRect()
		rn.recomputeRect()
		newRoot.entries = []entry{
			{rect: ln.rect, child: ln},
			{rect: rn.rect, child: rn},
		}
		newRoot.recomputeRect()
		t.root = newRoot
		t.height++
		return
	}
	parent := path[len(path)-2]
	idx := idxs[len(idxs)-1]
	rn := &node{leaf: n.leaf, entries: right}
	rn.recomputeRect()
	n.entries = left
	n.recomputeRect()
	parent.entries[idx].rect = n.rect
	parent.entries = append(parent.entries, entry{rect: rn.rect, child: rn})
	adjustAlongPath(path[:len(path)-1], idxs[:len(idxs)-1])
	if len(parent.entries) > t.maxEntries {
		t.splitNode(path[:len(path)-1], idxs[:len(idxs)-1], level+1)
	}
}

// findParent locates the parent of target; depth is the level of cur and
// parentLevel the level the parent lives at. Returns the parent node and
// the index of target within it. Only the delete path uses it.
func (t *Tree) findParent(cur *node, target *node, depth, parentLevel int) (*node, int) {
	if depth < parentLevel {
		return nil, -1
	}
	for i := range cur.entries {
		if cur.entries[i].child == target {
			return cur, i
		}
	}
	if depth == parentLevel {
		return nil, -1
	}
	for i := range cur.entries {
		if cur.entries[i].child == nil {
			continue
		}
		if !cur.entries[i].rect.Intersects(target.rect) {
			continue
		}
		if p, idx := t.findParent(cur.entries[i].child, target, depth-1, parentLevel); p != nil {
			return p, idx
		}
	}
	return nil, -1
}

// chooseSplit implements the R* split: pick the axis with the minimum sum
// of distribution margins, then the distribution with minimum overlap
// (ties: minimum combined area).
func (t *Tree) chooseSplit(entries []entry) (left, right []entry) {
	m := t.minEntries
	type dist struct{ left, right []entry }
	bestForAxis := func(byLower, byUpper []entry) ([]dist, float64) {
		var dists []dist
		var marginSum float64
		for _, sorted := range [][]entry{byLower, byUpper} {
			for k := 0; k <= t.maxEntries-2*m+1; k++ {
				split := m + k
				l := sorted[:split]
				r := sorted[split:]
				marginSum += boundOf(l).Margin() + boundOf(r).Margin()
				dists = append(dists, dist{left: l, right: r})
			}
		}
		return dists, marginSum
	}

	byLowerX := sortedBy(entries, func(a, b entry) bool {
		if a.rect.MinX != b.rect.MinX {
			return a.rect.MinX < b.rect.MinX
		}
		return a.rect.MaxX < b.rect.MaxX
	})
	byUpperX := sortedBy(entries, func(a, b entry) bool {
		if a.rect.MaxX != b.rect.MaxX {
			return a.rect.MaxX < b.rect.MaxX
		}
		return a.rect.MinX < b.rect.MinX
	})
	byLowerY := sortedBy(entries, func(a, b entry) bool {
		if a.rect.MinY != b.rect.MinY {
			return a.rect.MinY < b.rect.MinY
		}
		return a.rect.MaxY < b.rect.MaxY
	})
	byUpperY := sortedBy(entries, func(a, b entry) bool {
		if a.rect.MaxY != b.rect.MaxY {
			return a.rect.MaxY < b.rect.MaxY
		}
		return a.rect.MinY < b.rect.MinY
	})

	distsX, marginX := bestForAxis(byLowerX, byUpperX)
	distsY, marginY := bestForAxis(byLowerY, byUpperY)
	dists := distsX
	if marginY < marginX {
		dists = distsY
	}

	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	var best dist
	for _, d := range dists {
		lb, rb := boundOf(d.left), boundOf(d.right)
		overlap := lb.OverlapArea(rb)
		area := lb.Area() + rb.Area()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestOverlap, bestArea, best = overlap, area, d
		}
	}
	// Copy out: the distributions alias the sort buffers.
	left = append([]entry(nil), best.left...)
	right = append([]entry(nil), best.right...)
	return left, right
}

func sortedBy(entries []entry, less func(a, b entry) bool) []entry {
	out := append([]entry(nil), entries...)
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

func boundOf(entries []entry) geom.Rect {
	if len(entries) == 0 {
		return geom.Rect{}
	}
	r := entries[0].rect
	for _, e := range entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

func (n *node) recomputeRect() { n.rect = boundOf(n.entries) }

// refreshAllRects recomputes every bounding rectangle bottom-up. It is used
// only on the (rare) delete path, where entries can leave arbitrary nodes;
// inserts maintain rectangles incrementally along their path.
func (t *Tree) refreshAllRects() { refreshRects(t.root) }

func refreshRects(n *node) geom.Rect {
	if !n.leaf {
		for i := range n.entries {
			n.entries[i].rect = refreshRects(n.entries[i].child)
		}
	}
	n.recomputeRect()
	return n.rect
}

// Delete removes the first item matching (rect, id). It returns true if an
// item was removed.
func (t *Tree) Delete(it Item) bool {
	leaf, idx := t.findLeaf(t.root, it)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(leaf)
	t.refreshAllRects()
	// Shrink the root if it has a single child and is not a leaf.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.height--
	}
	return true
}

func (t *Tree) findLeaf(n *node, it Item) (*node, int) {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].id == it.ID && n.entries[i].rect == it.Rect {
				return n, i
			}
		}
		return nil, -1
	}
	for i := range n.entries {
		if n.entries[i].rect.ContainsRect(it.Rect) {
			if leaf, idx := t.findLeaf(n.entries[i].child, it); leaf != nil {
				return leaf, idx
			}
		}
	}
	return nil, -1
}

// condense reinserts the entries of underflowing nodes on the path from
// leaf to root (simplified condense-tree: because refreshAllRects keeps all
// rectangles exact, we only need to handle underflow).
func (t *Tree) condense(leaf *node) {
	if leaf == t.root || len(leaf.entries) >= t.minEntries {
		return
	}
	parent, idx := t.findParent(t.root, leaf, t.height-1, 1)
	if parent == nil {
		return
	}
	orphans := append([]entry(nil), leaf.entries...)
	parent.entries = append(parent.entries[:idx], parent.entries[idx+1:]...)
	t.refreshAllRects()
	t.condenseInner(parent, t.height-1)
	reinserted := make(map[int]bool)
	for _, e := range orphans {
		t.insertEntry(e, 0, reinserted)
	}
}

// condenseInner handles underflow of internal nodes after a child removal.
func (t *Tree) condenseInner(n *node, rootLevel int) {
	if n == t.root || len(n.entries) >= t.minEntries {
		return
	}
	level := t.levelOf(n)
	parent, idx := t.findParent(t.root, n, rootLevel, level+1)
	if parent == nil {
		return
	}
	orphans := append([]entry(nil), n.entries...)
	parent.entries = append(parent.entries[:idx], parent.entries[idx+1:]...)
	t.refreshAllRects()
	t.condenseInner(parent, rootLevel)
	reinserted := make(map[int]bool)
	for _, e := range orphans {
		// Orphan entries were stored in n (level `level`), so they must be
		// reinserted at that same level to keep all leaves at equal depth.
		t.insertEntry(e, level, reinserted)
	}
}

// levelOf returns the level of n (leaves are 0). Linear search; only used
// on the rare inner-underflow path.
func (t *Tree) levelOf(target *node) int {
	level := -1
	var walk func(n *node, depth int) bool
	walk = func(n *node, depth int) bool {
		if n == target {
			level = depth
			return true
		}
		if n.leaf {
			return false
		}
		for i := range n.entries {
			if walk(n.entries[i].child, depth-1) {
				return true
			}
		}
		return false
	}
	walk(t.root, t.height-1)
	return level
}

// SearchPoint appends to dst the IDs of all rectangles containing p and
// returns the extended slice.
func (t *Tree) SearchPoint(p geom.Point, dst []uint64) []uint64 {
	dst, _ = t.SearchPointCounted(p, dst)
	return dst
}

// SearchPointCounted is SearchPoint plus the number of node accesses this
// query performed. Queries count locally and fold into the global counter
// once, so concurrent queries each learn their own exact cost.
func (t *Tree) SearchPointCounted(p geom.Point, dst []uint64) ([]uint64, uint64) {
	var accesses uint64
	dst = t.searchPoint(t.root, p, dst, &accesses)
	t.nodeAccesses.Add(accesses)
	return dst, accesses
}

func (t *Tree) searchPoint(n *node, p geom.Point, dst []uint64, accesses *uint64) []uint64 {
	*accesses++
	for i := range n.entries {
		if !n.entries[i].rect.Contains(p) {
			continue
		}
		if n.leaf {
			dst = append(dst, n.entries[i].id)
		} else {
			dst = t.searchPoint(n.entries[i].child, p, dst, accesses)
		}
	}
	return dst
}

// SearchRect appends to dst the IDs of all rectangles intersecting window w
// and returns the extended slice.
func (t *Tree) SearchRect(w geom.Rect, dst []uint64) []uint64 {
	dst, _ = t.SearchRectCounted(w, dst)
	return dst
}

// SearchRectCounted is SearchRect plus the number of node accesses this
// query performed.
func (t *Tree) SearchRectCounted(w geom.Rect, dst []uint64) ([]uint64, uint64) {
	var accesses uint64
	dst = t.searchRect(t.root, w, dst, &accesses)
	t.nodeAccesses.Add(accesses)
	return dst, accesses
}

func (t *Tree) searchRect(n *node, w geom.Rect, dst []uint64, accesses *uint64) []uint64 {
	*accesses++
	for i := range n.entries {
		if !n.entries[i].rect.Intersects(w) {
			continue
		}
		if n.leaf {
			dst = append(dst, n.entries[i].id)
		} else {
			dst = t.searchRect(n.entries[i].child, w, dst, accesses)
		}
	}
	return dst
}

// SearchRectItems appends to dst all items intersecting window w.
func (t *Tree) SearchRectItems(w geom.Rect, dst []Item) []Item {
	var accesses uint64
	dst = t.searchRectItems(t.root, w, dst, &accesses)
	t.nodeAccesses.Add(accesses)
	return dst
}

func (t *Tree) searchRectItems(n *node, w geom.Rect, dst []Item, accesses *uint64) []Item {
	*accesses++
	for i := range n.entries {
		if !n.entries[i].rect.Intersects(w) {
			continue
		}
		if n.leaf {
			dst = append(dst, Item{ID: n.entries[i].id, Rect: n.entries[i].rect})
		} else {
			dst = t.searchRectItems(n.entries[i].child, w, dst, accesses)
		}
	}
	return dst
}

// Neighbor is a nearest-neighbour result: an item and its MINDIST from the
// query point.
type Neighbor struct {
	Item Item
	Dist float64
}

// NearestK returns the k items nearest to p by MINDIST, ascending. A filter
// may be supplied to skip items (e.g. alarms irrelevant to a user); pass
// nil to accept everything. The search is best-first with a binary heap of
// nodes and items ordered by MINDIST.
func (t *Tree) NearestK(p geom.Point, k int, filter func(id uint64) bool) []Neighbor {
	out, _ := t.NearestKCounted(p, k, filter)
	return out
}

// NearestKCounted is NearestK plus the number of node accesses this query
// performed.
func (t *Tree) NearestKCounted(p geom.Point, k int, filter func(id uint64) bool) ([]Neighbor, uint64) {
	if k <= 0 || t.size == 0 {
		return nil, 0
	}
	var accesses uint64
	defer func() { t.nodeAccesses.Add(accesses) }()
	h := &minHeap{}
	h.push(heapElem{node: t.root, dist: t.root.rect.MinDist(p)})
	out := make([]Neighbor, 0, k)
	for h.len() > 0 {
		e := h.pop()
		if e.node != nil {
			accesses++
			for i := range e.node.entries {
				ent := &e.node.entries[i]
				d := ent.rect.MinDist(p)
				if e.node.leaf {
					if filter == nil || filter(ent.id) {
						h.push(heapElem{item: &Item{ID: ent.id, Rect: ent.rect}, dist: d})
					}
				} else {
					h.push(heapElem{node: ent.child, dist: d})
				}
			}
			continue
		}
		out = append(out, Neighbor{Item: *e.item, Dist: e.dist})
		if len(out) == k {
			break
		}
	}
	return out, accesses
}

// NearestDist returns the MINDIST from p to the nearest item accepted by
// the filter, or +Inf if no item qualifies. This is the distance the
// safe-period baseline divides by v_max.
func (t *Tree) NearestDist(p geom.Point, filter func(id uint64) bool) float64 {
	d, _ := t.NearestDistCounted(p, filter)
	return d
}

// NearestDistCounted is NearestDist plus the number of node accesses this
// query performed.
func (t *Tree) NearestDistCounted(p geom.Point, filter func(id uint64) bool) (float64, uint64) {
	n, accesses := t.NearestKCounted(p, 1, filter)
	if len(n) == 0 {
		return math.Inf(1), accesses
	}
	return n[0].Dist, accesses
}

// Items returns all items in the tree in unspecified order.
func (t *Tree) Items() []Item {
	out := make([]Item, 0, t.size)
	var walk func(n *node)
	walk = func(n *node) {
		for i := range n.entries {
			if n.leaf {
				out = append(out, Item{ID: n.entries[i].id, Rect: n.entries[i].rect})
			} else {
				walk(n.entries[i].child)
			}
		}
	}
	walk(t.root)
	return out
}

// CheckInvariants verifies structural invariants (bounding boxes contain
// children, fill factors respected, all leaves at the same depth). It is
// used by tests and returns a descriptive error on the first violation.
// Bulk-loaded trees may legitimately contain underfull fringe nodes; use
// CheckStructure for those.
func (t *Tree) CheckInvariants() error { return t.check(true) }

// CheckStructure is CheckInvariants without the minimum fill check.
func (t *Tree) CheckStructure() error { return t.check(false) }

func (t *Tree) check(fill bool) error {
	leafDepth := -1
	var walk func(n *node, depth int) error
	walk = func(n *node, depth int) error {
		if n != t.root && fill {
			if len(n.entries) < t.minEntries {
				return fmt.Errorf("node at depth %d underfull: %d < %d", depth, len(n.entries), t.minEntries)
			}
		}
		if len(n.entries) > t.maxEntries {
			return fmt.Errorf("node at depth %d overfull: %d > %d", depth, len(n.entries), t.maxEntries)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("leaves at different depths: %d and %d", leafDepth, depth)
			}
			return nil
		}
		for i := range n.entries {
			e := &n.entries[i]
			if e.child == nil {
				return fmt.Errorf("inner node entry %d has nil child", i)
			}
			if e.child.rect != e.rect {
				return fmt.Errorf("entry rect %v != child rect %v", e.rect, e.child.rect)
			}
			if !e.rect.ContainsRect(boundOf(e.child.entries)) {
				return fmt.Errorf("entry rect %v does not contain child bound", e.rect)
			}
			if err := walk(e.child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 0)
}

// heapElem is either a node or an item, ordered by dist.
type heapElem struct {
	node *node
	item *Item
	dist float64
}

type minHeap struct{ elems []heapElem }

func (h *minHeap) len() int { return len(h.elems) }

func (h *minHeap) push(e heapElem) {
	h.elems = append(h.elems, e)
	i := len(h.elems) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.elems[parent].dist <= h.elems[i].dist {
			break
		}
		h.elems[parent], h.elems[i] = h.elems[i], h.elems[parent]
		i = parent
	}
}

func (h *minHeap) pop() heapElem {
	top := h.elems[0]
	last := len(h.elems) - 1
	h.elems[0] = h.elems[last]
	h.elems = h.elems[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.elems) && h.elems[l].dist < h.elems[smallest].dist {
			smallest = l
		}
		if r < len(h.elems) && h.elems[r].dist < h.elems[smallest].dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.elems[i], h.elems[smallest] = h.elems[smallest], h.elems[i]
		i = smallest
	}
	return top
}
