package sabre

import (
	"fmt"
	"io"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/client"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/motion"
	"github.com/sabre-geo/sabre/internal/pyramid"
	"github.com/sabre-geo/sabre/internal/saferegion"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/wire"
)

// Geometry re-exports: all coordinates are metres in a Cartesian plane.
type (
	// Point is a location.
	Point = geom.Point
	// Rect is an axis-aligned rectangle (alarm regions, safe regions,
	// grid cells).
	Rect = geom.Rect
)

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// RectAround returns the square of the given side length centred on p —
// the usual shape of an alarm region around a target.
func RectAround(p Point, side float64) Rect { return geom.RectAround(p, side) }

// Alarm model re-exports.
type (
	// Alarm is one spatial alarm: scope, owner, subscribers and trigger
	// region.
	Alarm = alarm.Alarm
	// AlarmID identifies an installed alarm.
	AlarmID = alarm.ID
	// UserID identifies a mobile user.
	UserID = alarm.UserID
	// Scope is the publish–subscribe scope of an alarm.
	Scope = alarm.Scope
)

// Alarm scopes.
const (
	Private = alarm.Private
	Shared  = alarm.Shared
	Public  = alarm.Public
)

// Strategy selects how alarms are processed for a client.
type Strategy = wire.Strategy

// Processing strategies: the paper's two baselines (periodic and safe
// period), its two safe region approaches (rectangular and pyramid
// bitmap), and the OPT upper bound.
const (
	StrategyPeriodic   = wire.StrategyPeriodic
	StrategySafePeriod = wire.StrategySafePeriod
	StrategyMWPSR      = wire.StrategyMWPSR
	StrategyPBSR       = wire.StrategyPBSR
	StrategyOptimal    = wire.StrategyOptimal
)

// Message re-exports: the client/server protocol vocabulary.
type (
	// Message is any protocol message.
	Message = wire.Message
	// PositionUpdate is a client location report.
	PositionUpdate = wire.PositionUpdate
	// RectRegion carries an MWPSR safe region.
	RectRegion = wire.RectRegion
	// BitmapRegion carries a GBSR/PBSR safe region.
	BitmapRegion = wire.BitmapRegion
	// AlarmFired notifies a client of triggered alarms.
	AlarmFired = wire.AlarmFired
)

// MotionModel is the steady-motion probability density p(φ; y, z) of paper
// §3 used to weight MWPSR perimeters.
type MotionModel = motion.Model

// UniformMotion returns the no-assumption model (p = 1/2π); with it the
// service computes the paper's non-weighted rectangular safe regions.
func UniformMotion() MotionModel { return motion.Uniform() }

// SteadyMotion returns the model with steadiness parameters y and z
// (y/z < 1; the paper evaluates y=1 with z in {4, 16, 32}).
func SteadyMotion(y, z float64) (MotionModel, error) { return motion.New(y, z) }

// ServiceConfig configures an alarm processing service.
type ServiceConfig struct {
	// Universe is the region covered by the grid overlay. It must
	// strictly enclose every position clients will ever report.
	Universe Rect
	// CellAreaKM2 is the grid cell area in km²; 0 defaults to 2.5 (the
	// paper's optimum).
	CellAreaKM2 float64
	// Motion weights MWPSR safe regions; zero value = uniform
	// (non-weighted).
	Motion MotionModel
	// PyramidHeight is the PBSR pyramid height h (1 = GBSR); 0 defaults
	// to 5. Clients may register a lower per-device cap.
	PyramidHeight int
	// MaxSpeedMS is the maximum client speed in m/s (needed by the safe
	// period baseline); 0 defaults to 34 m/s (≈120 km/h).
	MaxSpeedMS float64
	// TickSeconds is the client position sampling interval; 0 defaults
	// to 1 s.
	TickSeconds float64
	// PrecomputePublicBitmaps enables the paper's §4.2 PBSR optimization.
	PrecomputePublicBitmaps bool
}

// Service is the server side of SABRE: it stores alarms, evaluates client
// position reports and computes safe regions. Safe for concurrent use.
type Service struct {
	eng *server.Engine
}

// NewService creates a Service.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.CellAreaKM2 == 0 {
		cfg.CellAreaKM2 = 2.5
	}
	if cfg.MaxSpeedMS == 0 {
		cfg.MaxSpeedMS = 34
	}
	if cfg.TickSeconds == 0 {
		cfg.TickSeconds = 1
	}
	if cfg.PyramidHeight == 0 {
		cfg.PyramidHeight = 5
	}
	eng, err := server.New(server.Config{
		Universe:                cfg.Universe,
		CellAreaM2:              cfg.CellAreaKM2 * 1e6,
		Model:                   cfg.Motion,
		PyramidParams:           pyramid.DefaultParams(cfg.PyramidHeight),
		MaxSpeed:                cfg.MaxSpeedMS,
		TickSeconds:             cfg.TickSeconds,
		PrecomputePublicBitmaps: cfg.PrecomputePublicBitmaps,
	})
	if err != nil {
		return nil, fmt.Errorf("sabre: %w", err)
	}
	return &Service{eng: eng}, nil
}

// SnapshotAlarms serializes the alarm table and per-subscriber trigger
// state; LoadAlarms in a fresh Service restores it, so a restarted server
// resumes with identical one-shot semantics.
func (s *Service) SnapshotAlarms(w io.Writer) error {
	return s.eng.Registry().Snapshot(w)
}

// InstallAlarmBatch installs a whole alarm table at once (bulk-loading the
// spatial index when the service is empty).
func (s *Service) InstallAlarmBatch(alarms []Alarm) ([]AlarmID, error) {
	ids, err := s.eng.Registry().InstallBatch(alarms)
	if err != nil {
		return nil, err
	}
	s.eng.InvalidatePublicBitmaps()
	return ids, nil
}

// InstallAlarm validates and stores an alarm, returning its ID.
func (s *Service) InstallAlarm(a Alarm) (AlarmID, error) {
	id, err := s.eng.Registry().Install(a)
	if err != nil {
		return 0, err
	}
	if a.Scope == Public {
		s.eng.InvalidatePublicBitmaps()
	}
	return id, nil
}

// RemoveAlarm uninstalls an alarm; it reports whether the alarm existed.
func (s *Service) RemoveAlarm(id AlarmID) bool {
	a, ok := s.eng.Registry().Get(id)
	removed := s.eng.Registry().Remove(id)
	if ok && a.Scope == Public {
		s.eng.InvalidatePublicBitmaps()
	}
	return removed
}

// Alarm returns a copy of an installed alarm.
func (s *Service) Alarm(id AlarmID) (Alarm, bool) { return s.eng.Registry().Get(id) }

// MoveTarget re-anchors every alarm whose Target is the given user to a
// new position (moving-target alarms) and returns the affected alarm IDs.
func (s *Service) MoveTarget(user UserID, pos Point) []AlarmID {
	return s.eng.Registry().MoveTarget(user, pos)
}

// SubscribeTopic subscribes a user to topic-scoped public alarms
// ("traffic information on highway 85 North"-style categories, paper §1).
// Public alarms with an empty Topic reach everyone regardless.
func (s *Service) SubscribeTopic(user UserID, topic string) {
	s.eng.Registry().SubscribeTopic(user, topic)
}

// UnsubscribeTopic removes a topic subscription.
func (s *Service) UnsubscribeTopic(user UserID, topic string) {
	s.eng.Registry().UnsubscribeTopic(user, topic)
}

// RegisterClient enrolls a client with its strategy. maxPyramidHeight caps
// PBSR resolution for weak devices; 0 means the service default.
func (s *Service) RegisterClient(user UserID, strategy Strategy, maxPyramidHeight int) error {
	return s.eng.Register(wire.Register{
		User:      uint64(user),
		Strategy:  strategy,
		MaxHeight: uint8(maxPyramidHeight),
	})
}

// HandleUpdate processes a client position report and returns the messages
// to deliver back to that client (fired-alarm notifications and fresh
// monitoring state).
func (s *Service) HandleUpdate(u PositionUpdate) ([]Message, error) {
	return s.eng.HandleUpdate(u)
}

// SetPushHandler installs the delivery callback for server-initiated
// messages: when a moving alarm target reports a new position, the service
// recomputes and pushes monitoring state (Seq 0) to every affected
// subscriber. The handler runs inside HandleUpdate and must not call back
// into the Service; hand the messages to each subscriber's Monitor.
// Without a handler, subscribers of moving-target alarms must poll
// frequently to observe target motion.
func (s *Service) SetPushHandler(h func(user UserID, msgs []Message)) {
	if h == nil {
		s.eng.SetPusher(nil)
		return
	}
	s.eng.SetPusher(func(user UserID, msgs []wire.Message) {
		out := make([]Message, len(msgs))
		for i, m := range msgs {
			out[i] = m
		}
		h(user, out)
	})
}

// Stats is a read-only snapshot of service counters.
type Stats struct {
	UplinkMessages   uint64
	UplinkBytes      uint64
	DownlinkMessages uint64
	DownlinkBytes    uint64
	AlarmsTriggered  uint64
	// AlarmProcessingSeconds and SafeRegionSeconds are the deterministic
	// cost-model buckets the paper plots as server load.
	AlarmProcessingSeconds float64
	SafeRegionSeconds      float64
}

// Stats returns current counters.
func (s *Service) Stats() Stats {
	m := s.eng.Metrics().Snapshot()
	return Stats{
		UplinkMessages:         m.UplinkMessages,
		UplinkBytes:            m.UplinkBytes,
		DownlinkMessages:       m.DownlinkMessages,
		DownlinkBytes:          m.DownlinkBytes,
		AlarmsTriggered:        m.AlarmsTriggered,
		AlarmProcessingSeconds: m.AlarmProcessingSeconds(),
		SafeRegionSeconds:      m.SafeRegionSeconds(),
	}
}

// Monitor is the client side: it watches a stream of positions against the
// monitoring state the service hands it, emitting a report exactly when
// required.
type Monitor struct {
	cli *client.Client
	met *metrics.Client
}

// NewMonitor creates a client monitor.
func NewMonitor(user UserID, strategy Strategy) *Monitor {
	met := &metrics.Client{}
	return &Monitor{cli: client.New(uint64(user), strategy, met), met: met}
}

// Tick advances the monitor to a tick/position; the returned report (nil
// when safe) must be forwarded to the service.
func (m *Monitor) Tick(tick int, pos Point) *PositionUpdate {
	return m.cli.Tick(tick, pos)
}

// Handle applies a service response received at the given tick.
func (m *Monitor) Handle(tick int, msg Message) error { return m.cli.Handle(tick, msg) }

// Acknowledge resumes monitoring when the service returned no messages
// (periodic clients).
func (m *Monitor) Acknowledge() { m.cli.Acknowledge() }

// Fired returns the alarm IDs delivered to this client, in order.
func (m *Monitor) Fired() []AlarmID {
	raw := m.cli.Fired()
	out := make([]AlarmID, len(raw))
	for i, v := range raw {
		out[i] = AlarmID(v)
	}
	return out
}

// EnergyMWh estimates the client's energy spend so far under the default
// energy model.
func (m *Monitor) EnergyMWh() float64 { return m.met.Energy(metrics.DefaultEnergy()) }

// MessagesSent returns the number of reports this monitor emitted.
func (m *Monitor) MessagesSent() uint64 { return m.met.MessagesSent }

// RectRegionOptions configures a direct safe region computation.
type RectRegionOptions struct {
	// Motion weights the perimeter; zero value = non-weighted.
	Motion MotionModel
	// Heading is the client heading in radians.
	Heading float64
}

// ComputeRectRegion exposes the MWPSR algorithm directly: it returns the
// maximum weighted perimeter rectangle around pos within cell that avoids
// every alarm region (paper §3).
func ComputeRectRegion(pos Point, cell Rect, alarms []Rect, opts RectRegionOptions) Rect {
	res := saferegion.ComputeRect(pos, cell, alarms, saferegion.RectOptions{
		Model:   opts.Motion,
		Heading: opts.Heading,
	})
	return res.Rect
}

// BitmapRegionResult is a decoded bitmap safe region plus its encoding
// size in bits.
type BitmapRegionResult struct {
	// Contains reports whether a point is inside the safe region.
	Contains func(Point) bool
	// Coverage is the safe fraction of the cell area (η in the paper).
	Coverage float64
	// SizeBits is the encoded bitmap size.
	SizeBits int
}

// ComputeBitmapRegion exposes the GBSR/PBSR algorithm directly: it encodes
// and decodes the pyramid bitmap safe region of cell against the alarm
// regions at the given height (height 1 = GBSR; the paper's figures use
// 3×3 splits).
func ComputeBitmapRegion(cell Rect, height int, alarms []Rect) (BitmapRegionResult, error) {
	res, err := saferegion.ComputeBitmap(cell, pyramid.DefaultParams(height), alarms, nil)
	if err != nil {
		return BitmapRegionResult{}, err
	}
	reg, err := pyramid.Decode(res.Bitmap)
	if err != nil {
		return BitmapRegionResult{}, err
	}
	return BitmapRegionResult{
		Contains: reg.Contains,
		Coverage: reg.Coverage(),
		SizeBits: res.Bitmap.SizeBits(),
	}, nil
}
