package sim

import (
	"testing"

	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/wire"
)

// TestCrashRecoveryDeliveryEquality is the acceptance check for
// durability: for each safe-region strategy, a run where the server
// process is killed three times — once cleanly at a record boundary,
// once with a torn final write, once with a flipped bit in the WAL tail
// — and recovered from disk must deliver exactly the same (user, alarm)
// set as an uninterrupted run: nothing lost, nothing delivered twice.
func TestCrashRecoveryDeliveryEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-strategy crash simulation")
	}
	w, err := BuildWorkload(SmallWorkload(11))
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultCrashPlan(99, w.Config.DurationTicks)
	cases := []struct {
		name string
		sc   StrategyConfig
	}{
		{"MWPSR", StrategyConfig{Strategy: wire.StrategyMWPSR}},
		{"GBSR", StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 1}},
		{"PBSR", StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 5}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base, err := Run(w, tc.sc)
			if err != nil {
				t.Fatal(err)
			}
			crashed, err := RunCrashing(w, tc.sc, plan, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			basePairs := pairCounts(base.Triggers)
			crashPairs := pairCounts(crashed.Triggers)
			for p, c := range crashPairs {
				if c != 1 {
					t.Errorf("pair (user %d, alarm %d) delivered %d times across crashes", p[0], p[1], c)
				}
				if basePairs[p] == 0 {
					t.Errorf("pair (user %d, alarm %d) delivered across crashes but not crash-free", p[0], p[1])
				}
			}
			for p := range basePairs {
				if crashPairs[p] == 0 {
					t.Errorf("pair (user %d, alarm %d) lost across crashes", p[0], p[1])
				}
			}
			if len(base.Triggers) == 0 {
				t.Fatal("workload produced no triggers; the equality check is vacuous")
			}
			t.Logf("%s: %d crash-free triggers, %d deliveries across 3 crashes, equal sets",
				tc.name, len(base.Triggers), len(crashed.Triggers))
		})
	}
}

// TestRunCrashingDeterministic asserts the crash harness replays
// byte-identically: same workload + plan (fresh data dirs) → the exact
// same trigger sequence, delivery ticks included.
func TestRunCrashingDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("crash simulation")
	}
	cfg := SmallWorkload(5)
	cfg.Vehicles = 60
	cfg.DurationTicks = 200
	cfg.NumAlarms = 80
	w, err := BuildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultCrashPlan(123, cfg.DurationTicks)
	sc := StrategyConfig{Strategy: wire.StrategyMWPSR}
	a, err := RunCrashing(w, sc, plan, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCrashing(w, sc, plan, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Triggers) != len(b.Triggers) {
		t.Fatalf("trigger counts differ: %d vs %d", len(a.Triggers), len(b.Triggers))
	}
	for i := range a.Triggers {
		if a.Triggers[i] != b.Triggers[i] {
			t.Fatalf("trigger %d differs: %+v vs %+v", i, a.Triggers[i], b.Triggers[i])
		}
	}
}

// TestTortureRestart loops kill/mangle/recover many times over one data
// dir — every tear mode, short downtimes, snapshots enabled — and then
// checks the survivors: the delivered set still matches the fault-free
// run. Run under -race in CI.
func TestTortureRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("torture crash simulation")
	}
	cfg := SmallWorkload(7)
	cfg.Vehicles = 60
	cfg.DurationTicks = 300
	cfg.NumAlarms = 80
	w, err := BuildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const kills = 6
	modes := []store.TearMode{
		store.TearNone, store.TearTruncate, store.TearGarbage,
		store.TearFlipBit, store.TearTruncate, store.TearGarbage,
	}
	plan := CrashPlan{
		Seed:          7,
		SnapshotEvery: 64, // small cadence: most kills land just after a rotation
		DrainTicks:    200,
	}
	for i := 0; i < kills; i++ {
		plan.Crashes = append(plan.Crashes, CrashEvent{
			Tick: (i + 1) * cfg.DurationTicks / (kills + 1),
			Tear: modes[i],
			Down: 2,
		})
	}
	sc := StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 5}
	base, err := Run(w, sc)
	if err != nil {
		t.Fatal(err)
	}
	tortured, err := RunCrashing(w, sc, plan, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	basePairs := pairCounts(base.Triggers)
	torturePairs := pairCounts(tortured.Triggers)
	for p, c := range torturePairs {
		if c != 1 {
			t.Errorf("pair (user %d, alarm %d) delivered %d times across %d kills", p[0], p[1], c, kills)
		}
		if basePairs[p] == 0 {
			t.Errorf("pair (user %d, alarm %d) appeared only under torture", p[0], p[1])
		}
	}
	for p := range basePairs {
		if torturePairs[p] == 0 {
			t.Errorf("pair (user %d, alarm %d) lost across %d kills", p[0], p[1], kills)
		}
	}
	if len(base.Triggers) == 0 {
		t.Fatal("workload produced no triggers; torture check is vacuous")
	}
	t.Logf("%d kills, %d deliveries, set equal to fault-free run", kills, len(tortured.Triggers))
}
