// Command tracegen generates a deterministic vehicle mobility trace over a
// synthetic road network and writes it as CSV (tick,user,x,y) or the
// compact binary format (-format bin). The output feeds cmd/alarmclient,
// letting the TCP demo replay exactly the motion the simulations use.
//
// Usage:
//
//	tracegen -vehicles 25 -ticks 600 -seed 1 -side 5000 -out trace.csv
//	tracegen -vehicles 1000 -ticks 3600 -format bin -out trace.sbtr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/mobility"
	"github.com/sabre-geo/sabre/internal/roadnet"
	"github.com/sabre-geo/sabre/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		vehicles = flag.Int("vehicles", 25, "number of vehicles")
		ticks    = flag.Int("ticks", 600, "trace duration in 1 Hz ticks")
		seed     = flag.Int64("seed", 1, "generation seed")
		side     = flag.Float64("side", 5000, "universe side length in metres")
		out      = flag.String("out", "trace.csv", "output file ('-' for stdout)")
		format   = flag.String("format", "csv", "output format: csv or bin")
	)
	flag.Parse()

	net, err := roadnet.Generate(roadnet.Config{
		Side: *side, Spacing: 500, Jitter: 0.25, DropProb: 0.12, Seed: *seed,
	})
	if err != nil {
		return err
	}
	sim, err := mobility.NewSimulator(net, mobility.DefaultConfig(*vehicles, *seed))
	if err != nil {
		return err
	}

	var dst io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	var w *trace.Writer
	switch *format {
	case "csv":
		w = trace.NewCSVWriter(dst)
	case "bin":
		w = trace.NewBinaryWriter(dst)
	default:
		return fmt.Errorf("unknown format %q (want csv or bin)", *format)
	}
	for tick := 0; tick < *ticks; tick++ {
		sim.Step()
		for i := 0; i < sim.NumVehicles(); i++ {
			var p geom.Point = sim.Position(i)
			// Users are 1-based to match the simulation's convention.
			if err := w.Write(trace.Fix{Tick: tick, User: uint64(i + 1), Pos: p}); err != nil {
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Printf("wrote %d ticks x %d vehicles to %s (universe %.0fx%.0f m, v_max %.1f m/s)\n",
			*ticks, *vehicles, *out, *side, *side, sim.MaxSpeed())
	}
	return nil
}
