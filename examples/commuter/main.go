// Commuter: a mobile user with private errand reminders along a daily
// commute, comparing periodic reporting against MWPSR safe region
// monitoring on exactly the same route.
//
// The commuter drives a zig-zag route across town with errand alarms
// ("pick up the dry cleaning", "buy groceries", "return the library
// book") installed near the route. Both strategies deliver the same three
// alerts; the safe region client does it with a tiny fraction of the
// messages — the paper's core scalability argument in miniature.
//
//	go run ./examples/commuter
package main

import (
	"fmt"
	"log"
	"math"

	sabre "github.com/sabre-geo/sabre"
)

// waypoint route of the morning commute (metres).
var route = []sabre.Point{
	sabre.Pt(500, 500),
	sabre.Pt(4200, 500),  // east along the highway
	sabre.Pt(4200, 3100), // north on the arterial
	sabre.Pt(7600, 3100), // east again
	sabre.Pt(7600, 6800), // north to the office park
	sabre.Pt(9200, 6800), // final stretch
}

// errands are the alarm targets with their reminder radii.
var errands = []struct {
	name string
	at   sabre.Point
	side float64
}{
	{"dry cleaner", sabre.Pt(3000, 700), 400},
	{"grocery store", sabre.Pt(4400, 2000), 500},
	{"library", sabre.Pt(7700, 5200), 350},
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	path := samplePath(route, 15) // 15 m per tick ≈ 54 km/h
	fmt.Printf("commute: %d position fixes over %d waypoints\n\n", len(path), len(route))

	type outcome struct {
		fired    []sabre.AlarmID
		messages uint64
		energy   float64
	}
	results := map[string]outcome{}
	for _, strategy := range []sabre.Strategy{sabre.StrategyPeriodic, sabre.StrategyMWPSR} {
		svc, err := sabre.NewService(sabre.ServiceConfig{
			Universe:    sabre.Rect{MinX: -100, MinY: -100, MaxX: 10100, MaxY: 10100},
			CellAreaKM2: 2.5,
		})
		if err != nil {
			return err
		}
		names := map[sabre.AlarmID]string{}
		for _, e := range errands {
			id, err := svc.InstallAlarm(sabre.Alarm{
				Scope:  sabre.Private,
				Owner:  7,
				Region: sabre.RectAround(e.at, e.side),
			})
			if err != nil {
				return err
			}
			names[id] = e.name
		}
		if err := svc.RegisterClient(7, strategy, 0); err != nil {
			return err
		}
		mon := sabre.NewMonitor(7, strategy)
		for tick, pos := range path {
			report := mon.Tick(tick, pos)
			if report == nil {
				continue
			}
			responses, err := svc.HandleUpdate(*report)
			if err != nil {
				return err
			}
			for _, msg := range responses {
				if fired, ok := msg.(sabre.AlarmFired); ok && strategy == sabre.StrategyMWPSR {
					for _, id := range fired.Alarms {
						fmt.Printf("  reminder at %v: %s\n", pos, names[sabre.AlarmID(id)])
					}
				}
				if err := mon.Handle(tick, msg); err != nil {
					return err
				}
			}
			if len(responses) == 0 {
				mon.Acknowledge()
			}
		}
		results[strategy.String()] = outcome{
			fired:    mon.Fired(),
			messages: mon.MessagesSent(),
			energy:   mon.EnergyMWh(),
		}
	}

	prd, mw := results["PRD"], results["MWPSR"]
	fmt.Printf("\n%-22s %10s %10s\n", "", "periodic", "MWPSR")
	fmt.Printf("%-22s %10d %10d\n", "reminders delivered", len(prd.fired), len(mw.fired))
	fmt.Printf("%-22s %10d %10d\n", "messages sent", prd.messages, mw.messages)
	fmt.Printf("%-22s %9.1fx %9.1fx\n", "vs position fixes",
		float64(prd.messages)/float64(len(route)), float64(mw.messages)/float64(len(route)))
	fmt.Printf("%-22s %9.2f %10.2f  (mWh)\n", "client energy", prd.energy, mw.energy)
	if len(prd.fired) != len(mw.fired) {
		return fmt.Errorf("accuracy violation: %d vs %d reminders", len(prd.fired), len(mw.fired))
	}
	fmt.Printf("\nsame reminders, %.0fx fewer messages\n",
		float64(prd.messages)/float64(mw.messages))
	return nil
}

// samplePath interpolates the waypoint route at fixed step length.
func samplePath(waypoints []sabre.Point, step float64) []sabre.Point {
	var out []sabre.Point
	for i := 0; i+1 < len(waypoints); i++ {
		a, b := waypoints[i], waypoints[i+1]
		dist := math.Hypot(b.X-a.X, b.Y-a.Y)
		n := int(dist / step)
		for k := 0; k < n; k++ {
			f := float64(k) / float64(n)
			out = append(out, sabre.Pt(a.X+(b.X-a.X)*f, a.Y+(b.Y-a.Y)*f))
		}
	}
	out = append(out, waypoints[len(waypoints)-1])
	return out
}
