package simulate_test

import (
	"fmt"
	"testing"

	sabre "github.com/sabre-geo/sabre"
	"github.com/sabre-geo/sabre/simulate"
)

// TestPublicExperimentFlow runs the headline comparison through the public
// package only: the safe region approach must match the periodic ground
// truth exactly while sending a small fraction of the messages.
func TestPublicExperimentFlow(t *testing.T) {
	w, err := simulate.BuildWorkload(simulate.SmallWorkload(2))
	if err != nil {
		t.Fatal(err)
	}
	truth, err := simulate.Run(w, simulate.StrategyConfig{Strategy: sabre.StrategyPeriodic})
	if err != nil {
		t.Fatal(err)
	}
	mwpsr, err := simulate.Run(w, simulate.StrategyConfig{Strategy: sabre.StrategyMWPSR})
	if err != nil {
		t.Fatal(err)
	}
	if !simulate.TriggersEqual(truth.Triggers, mwpsr.Triggers) {
		t.Fatal("trigger sets differ")
	}
	if mwpsr.UplinkMessages*10 >= truth.UplinkMessages {
		t.Errorf("MWPSR sent %d messages vs periodic %d; expected >10× reduction",
			mwpsr.UplinkMessages, truth.UplinkMessages)
	}
}

func TestPublicMixedFlow(t *testing.T) {
	w, err := simulate.BuildWorkload(simulate.SmallWorkload(3))
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := simulate.RunMixed(w, []simulate.MixedClass{
		{Name: "a", Strategy: sabre.StrategyMWPSR, Fraction: 0.5},
		{Name: "b", Strategy: sabre.StrategyPBSR, PyramidHeight: 4, Fraction: 0.5},
	}, simulate.StrategyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed.Classes) != 2 {
		t.Fatalf("classes = %d", len(mixed.Classes))
	}
}

// ExampleRun demonstrates the experiment API end to end.
func ExampleRun() {
	w, err := simulate.BuildWorkload(simulate.SmallWorkload(1))
	if err != nil {
		fmt.Println(err)
		return
	}
	truth, _ := simulate.Run(w, simulate.StrategyConfig{Strategy: sabre.StrategyPeriodic})
	mwpsr, _ := simulate.Run(w, simulate.StrategyConfig{Strategy: sabre.StrategyMWPSR})
	fmt.Println("accurate:", simulate.TriggersEqual(truth.Triggers, mwpsr.Triggers))
	fmt.Println("message reduction:", truth.UplinkMessages/mwpsr.UplinkMessages, "x")
	// Output:
	// accurate: true
	// message reduction: 47 x
}
