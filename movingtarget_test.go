package sabre

import "testing"

// TestMovingTargetPushInvalidation exercises the paper's "moving
// subscriber with moving target" class end to end: a subscriber sits
// silent inside its safe region while the alarm target drives toward it;
// the target's own position reports move the alarm region, the service
// pushes a fresh (smaller) safe region to the subscriber, and the
// subscriber's next containment check fails exactly when the region
// reaches it — delivering the alarm without the subscriber ever polling.
func TestMovingTargetPushInvalidation(t *testing.T) {
	for _, strategy := range []Strategy{StrategyMWPSR, StrategyPBSR, StrategySafePeriod, StrategyOptimal} {
		t.Run(strategy.String(), func(t *testing.T) {
			svc := newTestService(t, nil)

			const (
				targetUser     = UserID(1)
				subscriberUser = UserID(2)
			)
			// "Alert me when the delivery van is within 300 m of me"-style
			// alarm: region anchored to the target user.
			id, err := svc.InstallAlarm(Alarm{
				Scope:       Shared,
				Owner:       subscriberUser,
				Subscribers: []UserID{subscriberUser},
				Region:      RectAround(Pt(1000, 5000), 600),
				Target:      targetUser,
			})
			if err != nil {
				t.Fatal(err)
			}

			// The target reports periodically (the server needs its motion);
			// the subscriber uses the strategy under test.
			if err := svc.RegisterClient(targetUser, StrategyPeriodic, 0); err != nil {
				t.Fatal(err)
			}
			if err := svc.RegisterClient(subscriberUser, strategy, 0); err != nil {
				t.Fatal(err)
			}
			targetMon := NewMonitor(targetUser, StrategyPeriodic)
			subMon := NewMonitor(subscriberUser, strategy)

			// Route pushes to the right monitor.
			svc.SetPushHandler(func(user UserID, msgs []Message) {
				if user != subscriberUser {
					return
				}
				for _, m := range msgs {
					if err := subMon.Handle(curTick, m); err != nil {
						t.Error(err)
					}
				}
			})

			subscriberPos := Pt(8000, 5000) // parked
			firedAt := -1
			for curTick = 0; curTick < 500 && firedAt < 0; curTick++ {
				// The target drives east toward the subscriber, 20 m/s.
				targetPos := Pt(1000+float64(curTick)*20, 5000)
				step(t, svc, targetMon, curTick, targetPos)
				step(t, svc, subMon, curTick, subscriberPos)
				for _, got := range subMon.Fired() {
					if got == id {
						firedAt = curTick
					}
				}
			}
			if firedAt < 0 {
				t.Fatal("moving-target alarm never fired for the stationary subscriber")
			}
			// The region reaches the subscriber when the target is within
			// 300 m: target x = 7700 at tick 335. Allow slack for grid
			// effects and the subscriber's report round trip.
			if firedAt < 330 || firedAt > 345 {
				t.Errorf("fired at tick %d, want ≈335 (first geometric contact)", firedAt)
			}
			// The subscriber must have stayed almost entirely silent.
			if strategy != StrategySafePeriod && subMon.MessagesSent() > 25 {
				t.Errorf("subscriber sent %d messages; pushes should keep it silent", subMon.MessagesSent())
			}
		})
	}
}

// curTick is shared between the loop and the push handler (single
// goroutine).
var curTick int

// step forwards one monitor tick through the service.
func step(t *testing.T, svc *Service, mon *Monitor, tick int, pos Point) {
	t.Helper()
	upd := mon.Tick(tick, pos)
	if upd == nil {
		return
	}
	responses, err := svc.HandleUpdate(*upd)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range responses {
		if err := mon.Handle(tick, m); err != nil {
			t.Fatal(err)
		}
	}
	if len(responses) == 0 {
		mon.Acknowledge()
	}
}
