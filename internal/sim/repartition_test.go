package sim

import (
	"testing"

	"github.com/sabre-geo/sabre/internal/cluster"
	"github.com/sabre-geo/sabre/internal/wire"
)

// repartitionPlan scripts the headline dynamic-repartitioning run: the
// default four-shard cluster (with its two scripted shard crashes kept)
// additionally splits shard 0 a quarter into the trace — allocating
// shard 4 for the upper half — and merges it back at the three-quarter
// mark, both while clients keep reporting. The merge drains shard 4's
// resident sessions into shard 0 and retires the ID.
func repartitionPlan(seed int64, durationTicks int) ClusterPlan {
	plan := DefaultClusterPlan(seed, durationTicks)
	plan.Repartitions = []RepartitionEvent{
		{Tick: durationTicks / 4, Op: "split", Shard: 0},
		{Tick: durationTicks * 3 / 4, Op: "merge", Shard: 4, Into: 0},
	}
	return plan
}

// checkPairEquality asserts the sharded run delivered exactly the
// single-server (user, alarm) set, each pair exactly once.
func checkPairEquality(t *testing.T, base, sharded *Report) {
	t.Helper()
	if len(base.Triggers) == 0 {
		t.Fatal("workload produced no triggers; the equality check is vacuous")
	}
	basePairs := pairCounts(base.Triggers)
	shardPairs := pairCounts(sharded.Triggers)
	for p, c := range shardPairs {
		if c != 1 {
			t.Errorf("pair (user %d, alarm %d) delivered %d times across shards", p[0], p[1], c)
		}
		if basePairs[p] == 0 {
			t.Errorf("pair (user %d, alarm %d) delivered sharded but not single-server", p[0], p[1])
		}
	}
	for p := range basePairs {
		if shardPairs[p] == 0 {
			t.Errorf("pair (user %d, alarm %d) lost across shards", p[0], p[1])
		}
	}
}

// TestRepartitionDeliveryEquality is the acceptance check for dynamic
// load-adaptive repartitioning: for each safe-region strategy, batched
// and unbatched, a cluster that splits a shard mid-workload and merges
// it back later — on top of the default plan's two shard crashes — must
// deliver exactly the same (user, alarm) set as the single-server run.
// Sessions migrate three ways during the trace (boundary handoffs,
// lazy post-split handoffs, and the merge drain) and none of them may
// lose or duplicate a firing.
func TestRepartitionDeliveryEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-strategy cluster simulation")
	}
	w, err := BuildWorkload(SmallWorkload(11))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		sc   StrategyConfig
	}{
		{"MWPSR", StrategyConfig{Strategy: wire.StrategyMWPSR}},
		{"GBSR", StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 1}},
		{"PBSR", StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 5}},
	}
	for _, tc := range cases {
		tc := tc
		for _, batched := range []bool{false, true} {
			batched := batched
			name := tc.name
			if batched {
				name += "/batched"
			} else {
				name += "/unbatched"
			}
			t.Run(name, func(t *testing.T) {
				base, err := Run(w, tc.sc)
				if err != nil {
					t.Fatal(err)
				}
				plan := repartitionPlan(99, w.Config.DurationTicks)
				plan.Session.Batch = batched
				sharded, err := RunCluster(w, tc.sc, plan, t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				checkPairEquality(t, base, sharded)
				cm := sharded.Cluster
				if cm == nil {
					t.Fatal("cluster run reported no cluster metrics")
				}
				if cm.Splits != 1 || cm.Merges != 1 {
					t.Errorf("splits/merges = %d/%d, want 1/1", cm.Splits, cm.Merges)
				}
				if cm.SessionsDrained == 0 {
					t.Error("merge drained no sessions — shard 4 never owned a client, the merge path is vacuous")
				}
				if cm.Handoffs == 0 {
					t.Error("no cross-shard handoffs")
				}
				// Epoch 1 (boot) + split + merge + drain-done = 4; shard
				// crashes do not advance the map.
				if sharded.PartitionEpoch != 4 {
					t.Errorf("final partition epoch %d, want 4", sharded.PartitionEpoch)
				}
				if batched && sharded.UpdateBatches == 0 {
					t.Fatal("no UpdateBatch frames reached the shards — batching never engaged")
				}
				t.Logf("%s: %d triggers both ways, %d handoffs, %d sessions drained, %d dup firings suppressed, epoch %d",
					name, len(base.Triggers), cm.Handoffs, cm.SessionsDrained, cm.DuplicateFiringsSuppressed, sharded.PartitionEpoch)
			})
		}
	}
}

// TestRepartitionCrashRecovery interrupts the merge drain at its two
// scripted crash points — between peeking a session at the retired
// shard and importing it at the target, and between the import and the
// drop — with a whole-process crash and reopen. The committed map's
// Drain entry makes recovery finish the migration, and import-before-
// drop ordering means the worst case is a redelivered firing the
// dedup layers suppress: delivery equality must still hold exactly.
func TestRepartitionCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster crash simulation")
	}
	w, err := BuildWorkload(SmallWorkload(11))
	if err != nil {
		t.Fatal(err)
	}
	sc := StrategyConfig{Strategy: wire.StrategyMWPSR}
	base, err := Run(w, sc)
	if err != nil {
		t.Fatal(err)
	}
	points := []string{
		cluster.CPDrainBeforeImport,
		cluster.CPDrainBeforeDrop,
		cluster.CPMergePreDrainDone,
		cluster.CPSplitPreCommit,
		cluster.CPMergePreCommit,
	}
	for _, cp := range points {
		cp := cp
		t.Run(cp, func(t *testing.T) {
			plan := repartitionPlan(99, w.Config.DurationTicks)
			switch cp {
			case cluster.CPSplitPreCommit:
				// The aborted split never creates shard 4, so the scripted
				// merge of it cannot run.
				plan.Repartitions = plan.Repartitions[:1]
				plan.Repartitions[0].CrashPoint = cp
			default:
				plan.Repartitions[1].CrashPoint = cp
			}
			sharded, err := RunCluster(w, sc, plan, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			checkPairEquality(t, base, sharded)
			cm := sharded.Cluster
			// A pre-commit crash rolls the transition back entirely: the
			// reopened cluster is still at the old epoch with the old
			// shard set, and the scripted op never happened. A mid-drain
			// crash lands after the merge committed, so recovery finishes
			// the drain and the final epoch matches the clean run's.
			switch cp {
			case cluster.CPSplitPreCommit:
				if cm.Splits != 0 {
					t.Errorf("split committed through a pre-commit crash (splits=%d)", cm.Splits)
				}
				if sharded.PartitionEpoch != 1 {
					t.Errorf("final epoch %d after aborted split, want 1", sharded.PartitionEpoch)
				}
			case cluster.CPMergePreCommit:
				if sharded.PartitionEpoch != 2 {
					t.Errorf("final epoch %d after aborted merge, want 2 (split only)", sharded.PartitionEpoch)
				}
			default:
				if sharded.PartitionEpoch != 4 {
					t.Errorf("final epoch %d after mid-drain crash, want 4", sharded.PartitionEpoch)
				}
			}
			t.Logf("%s: equal sets, final epoch %d, %d sessions drained", cp, sharded.PartitionEpoch, cm.SessionsDrained)
		})
	}
}
