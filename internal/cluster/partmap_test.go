package cluster

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
)

// samePartitioning reports whether two maps carve the universe into the
// same (shard, rect) set. Epochs may differ.
func samePartitioning(a, b *PartitionMap) bool {
	if a.Universe() != b.Universe() || a.N() != b.N() || a.NextShard() != b.NextShard() {
		return false
	}
	for _, s := range a.Shards() {
		ra, _ := a.RectOf(s)
		rb, ok := b.RectOf(s)
		if !ok || ra != rb {
			return false
		}
	}
	return true
}

// checkEdgeStability probes every leaf rectangle's corners and edge
// midpoints: each point inside the universe must locate un-clamped into
// a shard whose rectangle contains it. A point on a shared seam thus
// has exactly one owner and the owner agrees it is inside — no
// floating-point gap can open between Locate and RectOf.
func checkEdgeStability(t *testing.T, p *PartitionMap) {
	t.Helper()
	for _, s := range p.Shards() {
		r, _ := p.RectOf(s)
		samples := []geom.Point{
			{X: r.MinX, Y: r.MinY}, {X: r.MaxX, Y: r.MinY},
			{X: r.MinX, Y: r.MaxY}, {X: r.MaxX, Y: r.MaxY},
			{X: (r.MinX + r.MaxX) / 2, Y: r.MinY},
			{X: (r.MinX + r.MaxX) / 2, Y: r.MaxY},
			{X: r.MinX, Y: (r.MinY + r.MaxY) / 2},
			{X: r.MaxX, Y: (r.MinY + r.MaxY) / 2},
		}
		for _, pt := range samples {
			owner, clamped := p.Locate(pt)
			if clamped {
				t.Fatalf("edge point %v of shard %d reported clamped", pt, s)
			}
			or, ok := p.RectOf(owner)
			if !ok {
				t.Fatalf("edge point %v located in retired shard %d", pt, owner)
			}
			if !or.Contains(pt) {
				t.Fatalf("edge point %v located in shard %d whose rect %v excludes it", pt, owner, or)
			}
		}
	}
}

// checkCodecIdentity encodes p, decodes it back, and demands a
// byte-identical re-encode plus an equal partitioning with the same
// epoch and drain list.
func checkCodecIdentity(t *testing.T, p *PartitionMap) {
	t.Helper()
	enc := EncodePartitionMap(p)
	dec, err := DecodePartitionMap(enc)
	if err != nil {
		t.Fatalf("decode own encoding: %v", err)
	}
	if !bytes.Equal(EncodePartitionMap(dec), enc) {
		t.Fatal("re-encode differs from original encoding")
	}
	if dec.Epoch() != p.Epoch() || !samePartitioning(dec, p) {
		t.Fatalf("decoded map differs: epoch %d vs %d", dec.Epoch(), p.Epoch())
	}
	da, db := p.Draining(), dec.Draining()
	if len(da) != len(db) {
		t.Fatalf("decoded drains %v, want %v", db, da)
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("decoded drain %d: %+v, want %+v", i, db[i], da[i])
		}
	}
}

// TestPartitionMapRandomOps is the quickcheck-style invariant suite:
// from random seed grids it applies long random sequences of splits,
// merges, and drain completions, and after every step re-checks the
// full invariant set — exact tiling, Locate totality and seam
// stability, epoch monotonicity, and codec byte-identity. Merges are
// additionally probed for the merge(split(x)) round-trip.
func TestPartitionMapRandomOps(t *testing.T) {
	universes := []geom.Rect{
		testUniverse,
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: -1e6, MinY: -3, MaxX: 1e6, MaxY: 17},
	}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		u := universes[rng.Intn(len(universes))]
		p, err := NewPartitionMapGrid(u, 1+rng.Intn(3), 1+rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 40; step++ {
			prevEpoch := p.Epoch()
			shards := p.Shards()
			pairs := p.MergeablePairs()
			switch {
			case len(pairs) > 0 && rng.Intn(3) == 0:
				pair := pairs[rng.Intn(len(pairs))]
				into, from := pair[0], pair[1]
				if rng.Intn(2) == 0 {
					into, from = from, into
				}
				next, err := p.Merge(into, from)
				if err != nil {
					t.Fatalf("seed %d step %d: merge(%d,%d): %v", seed, step, into, from, err)
				}
				if next.Epoch() != prevEpoch+1 {
					t.Fatalf("seed %d step %d: merge epoch %d, want %d", seed, step, next.Epoch(), prevEpoch+1)
				}
				if next.Has(from) {
					t.Fatalf("seed %d step %d: merged-away shard %d still live", seed, step, from)
				}
				drains := next.Draining()
				if len(drains) != 1 || drains[0].Shard != from || drains[0].Target != into {
					t.Fatalf("seed %d step %d: drains %+v after merge(%d,%d)", seed, step, drains, into, from)
				}
				checkCodecIdentity(t, next) // exercises drain serialization
				p, err = next.DrainDone(from)
				if err != nil {
					t.Fatalf("seed %d step %d: drain done: %v", seed, step, err)
				}
			default:
				s := shards[rng.Intn(len(shards))]
				next, newShard, err := p.Split(s)
				if err != nil {
					t.Fatalf("seed %d step %d: split(%d): %v", seed, step, s, err)
				}
				if next.Epoch() != prevEpoch+1 {
					t.Fatalf("seed %d step %d: split epoch %d, want %d", seed, step, next.Epoch(), prevEpoch+1)
				}
				if newShard != p.NextShard() || next.NextShard() != newShard+1 {
					t.Fatalf("seed %d step %d: split allocated %d, allocator %d->%d", seed, step, newShard, p.NextShard(), next.NextShard())
				}
				// merge(split(x)) round-trips to the same partitioning.
				back, err := next.Merge(s, newShard)
				if err != nil {
					t.Fatalf("seed %d step %d: merge back: %v", seed, step, err)
				}
				if back, err = back.DrainDone(newShard); err != nil {
					t.Fatalf("seed %d step %d: drain back: %v", seed, step, err)
				}
				rOld, _ := p.RectOf(s)
				rBack, _ := back.RectOf(s)
				if rOld != rBack || back.N() != p.N() {
					t.Fatalf("seed %d step %d: merge(split(%d)) rect %v, want %v", seed, step, s, rBack, rOld)
				}
				p = next
			}
			checkTiling(t, p)
			checkEdgeStability(t, p)
			checkLocateMatchesRect(t, p, rng, 200)
			checkCodecIdentity(t, p)
		}
	}
}

// TestPartitionMapCodecRejects: every way a frame can lie is refused.
func TestPartitionMapCodecRejects(t *testing.T) {
	p, err := NewPartitionMapGrid(testUniverse, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	good := EncodePartitionMap(p)

	// withCRC re-frames a mutated body with a fresh checksum so the test
	// reaches the checks behind the CRC gate.
	withCRC := func(mut func(body []byte) []byte) []byte {
		body := mut(append([]byte(nil), good[:len(good)-4]...))
		return binary.BigEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	}
	flip := func(i int) []byte {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		return bad
	}
	cases := map[string][]byte{
		"empty":          {},
		"short frame":    good[:8],
		"bad magic":      flip(0),
		"bad version":    withCRC(func(b []byte) []byte { b[5] = 99; return b }),
		"mid-body flip":  flip(len(good) / 2),
		"truncated body": withCRC(func(b []byte) []byte { return b[:len(b)-9] }),
		"trailing bytes": withCRC(func(b []byte) []byte { return append(b, 0, 0, 0, 0) }),
		"crc mismatch":   flip(len(good) - 1),
	}
	for name, payload := range cases {
		if _, err := DecodePartitionMap(payload); err == nil {
			t.Errorf("%s: decode accepted bad frame", name)
		}
	}

	// Structurally invalid but correctly framed maps: only validate()
	// can catch these.
	structural := map[string]func() []byte{
		"epoch 0": func() []byte {
			cp := *p
			cp.epoch = 0
			return EncodePartitionMap(&cp)
		},
		"allocator below leaves": func() []byte {
			cp := *p
			cp.nextShard = 1
			return EncodePartitionMap(&cp)
		},
		"drain source live": func() []byte {
			cp := *p
			cp.draining = []Drain{{Shard: 0, Target: 1, Rect: geom.R(0, 0, 1, 1)}}
			return EncodePartitionMap(&cp)
		},
		"drain source out of range": func() []byte {
			cp := *p
			cp.draining = []Drain{{Shard: 99, Target: 0, Rect: geom.R(0, 0, 1, 1)}}
			return EncodePartitionMap(&cp)
		},
		"drain target not live": func() []byte {
			merged, err := p.Merge(0, 2)
			if err != nil {
				t.Fatal(err)
			}
			cp := *merged
			cp.draining = []Drain{{Shard: 2, Target: 2, Rect: geom.R(0, 0, 1, 1)}}
			return EncodePartitionMap(&cp)
		},
		"drain rect empty": func() []byte {
			merged, err := p.Merge(0, 2)
			if err != nil {
				t.Fatal(err)
			}
			cp := *merged
			cp.draining = []Drain{{Shard: 2, Target: 0, Rect: geom.Rect{}}}
			return EncodePartitionMap(&cp)
		},
	}
	for name, build := range structural {
		if _, err := DecodePartitionMap(build()); err == nil {
			t.Errorf("%s: decode accepted invalid map", name)
		}
	}
}

// TestPartitionMapFile: atomic write + load round-trip, fresh-dir miss,
// and corrupt-file rejection.
func TestPartitionMapFile(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := LoadPartitionMapFile(dir); err != nil || ok {
		t.Fatalf("fresh dir: ok=%v err=%v, want miss", ok, err)
	}
	p, err := NewPartitionMapGrid(testUniverse, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := p.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePartitionMapFile(dir, p2); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadPartitionMapFile(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if got.Epoch() != p2.Epoch() || !samePartitioning(got, p2) {
		t.Fatalf("loaded map differs: epoch %d want %d", got.Epoch(), p2.Epoch())
	}
	// A newer epoch overwrites in place.
	p3, err := p2.Merge(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePartitionMapFile(dir, p3); err != nil {
		t.Fatal(err)
	}
	got, _, err = LoadPartitionMapFile(dir)
	if err != nil || got.Epoch() != p3.Epoch() {
		t.Fatalf("reload: epoch %d err %v, want %d", got.Epoch(), err, p3.Epoch())
	}
	if len(got.Draining()) != 1 {
		t.Fatalf("reload lost drain entries: %+v", got.Draining())
	}
	// Corruption is surfaced, not silently treated as a fresh dir.
	path := filepath.Join(dir, PartitionMapFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadPartitionMapFile(dir); err == nil {
		t.Fatal("corrupt map file loaded without error")
	}
}

// TestSplitTooThin: a shard degenerate on both axes cannot split.
func TestSplitTooThin(t *testing.T) {
	tiny := geom.Rect{MinX: 0, MinY: 0, MaxX: math.SmallestNonzeroFloat64 * 2, MaxY: math.SmallestNonzeroFloat64 * 2}
	p, err := NewPartitionMapGrid(tiny, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Keep splitting until the geometry bottoms out; it must error, not
	// produce an empty or invalid rect.
	for i := 0; i < 200; i++ {
		next, _, err := p.Split(0)
		if err != nil {
			return // refused cleanly
		}
		r, _ := next.RectOf(0)
		if r.Empty() {
			t.Fatalf("split %d produced empty rect %v", i, r)
		}
		p = next
	}
	t.Fatal("split never bottomed out on a degenerate rect")
}
