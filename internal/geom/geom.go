// Package geom provides the planar geometry primitives used throughout
// SABRE: points, axis-aligned rectangles and the containment, intersection
// and distance predicates that safe region computation, spatial indexing and
// alarm evaluation are built on.
//
// All coordinates are in metres in a Cartesian plane (the Universe of
// Discourse). The package is allocation-free on its hot paths; every type is
// a small value type.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane, in metres.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by the vector v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.DX, p.Y + v.DY} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// DistanceTo returns the Euclidean distance between p and q.
func (p Point) DistanceTo(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistanceSqTo returns the squared Euclidean distance between p and q. It is
// cheaper than DistanceTo and sufficient for comparisons.
func (p Point) DistanceSqTo(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Vector is a displacement in the plane, in metres.
type Vector struct {
	DX, DY float64
}

// Length returns the Euclidean norm of v.
func (v Vector) Length() float64 { return math.Hypot(v.DX, v.DY) }

// Angle returns the direction of v in radians in (-π, π], measured
// counter-clockwise from the positive x axis. The zero vector has angle 0.
func (v Vector) Angle() float64 {
	if v.DX == 0 && v.DY == 0 {
		return 0
	}
	return math.Atan2(v.DY, v.DX)
}

// Scale returns v scaled by k.
func (v Vector) Scale(k float64) Vector { return Vector{v.DX * k, v.DY * k} }

// Rect is an axis-aligned rectangle, closed on all sides:
// a point p is inside iff MinX <= p.X <= MaxX and MinY <= p.Y <= MaxY.
// A Rect is valid iff MinX <= MaxX and MinY <= MaxY.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// R is shorthand for a Rect literal. It normalizes the corner order, so
// R(x1,y1,x2,y2) is valid regardless of which corner comes first.
func R(x1, y1, x2, y2 float64) Rect {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if y2 < y1 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// RectAround returns the square of the given side length centred on p.
func RectAround(p Point, side float64) Rect {
	h := side / 2
	return Rect{p.X - h, p.Y - h, p.X + h, p.Y + h}
}

// Valid reports whether r is a well-formed rectangle (possibly degenerate,
// i.e. a segment or a point).
func (r Rect) Valid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// Empty reports whether r encloses no area. Degenerate rectangles (zero
// width or height) are considered empty.
func (r Rect) Empty() bool { return r.MinX >= r.MaxX || r.MinY >= r.MaxY }

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r, 0 for invalid rectangles.
func (r Rect) Area() float64 {
	if !r.Valid() {
		return 0
	}
	return r.Width() * r.Height()
}

// Perimeter returns the perimeter of r, 0 for invalid rectangles.
func (r Rect) Perimeter() float64 {
	if !r.Valid() {
		return 0
	}
	return 2 * (r.Width() + r.Height())
}

// Margin is the half-perimeter (the R*-tree "margin" measure).
func (r Rect) Margin() float64 {
	if !r.Valid() {
		return 0
	}
	return r.Width() + r.Height()
}

// Center returns the centre point of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Contains reports whether p lies in r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsStrict reports whether p lies strictly inside r (boundary
// exclusive). Safe region containment monitoring uses the inclusive form;
// the strict form is used when a shared boundary must count as an exit.
func (r Rect) ContainsStrict(p Point) bool {
	return p.X > r.MinX && p.X < r.MaxX && p.Y > r.MinY && p.Y < r.MaxY
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share any point (boundary touching
// counts as intersecting).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Overlaps reports whether r and s share interior area (boundary touching
// does not count, and a degenerate rectangle has no interior to share).
// Safe region disjointness uses this predicate: a safe region may share an
// edge with an alarm region without risking a missed trigger, because
// clients monitor containment strictly and report the moment they are not
// strictly inside.
func (r Rect) Overlaps(s Rect) bool {
	if r.Empty() || s.Empty() {
		return false
	}
	return r.MinX < s.MaxX && s.MinX < r.MaxX && r.MinY < s.MaxY && s.MinY < r.MaxY
}

// Intersect returns the intersection of r and s. If they do not intersect
// the result is not Valid.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// UnionPoint returns the smallest rectangle containing r and p.
func (r Rect) UnionPoint(p Point) Rect {
	return Rect{
		MinX: math.Min(r.MinX, p.X),
		MinY: math.Min(r.MinY, p.Y),
		MaxX: math.Max(r.MaxX, p.X),
		MaxY: math.Max(r.MaxY, p.Y),
	}
}

// Expand returns r grown by d on every side (shrunk for negative d; the
// result may be invalid if d is too negative).
func (r Rect) Expand(d float64) Rect {
	return Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
}

// EnlargementArea returns the increase in area needed for r to cover s.
func (r Rect) EnlargementArea(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// OverlapArea returns the area shared by r and s (0 if disjoint).
func (r Rect) OverlapArea(s Rect) float64 {
	i := r.Intersect(s)
	if !i.Valid() {
		return 0
	}
	return i.Area()
}

// MinDist returns the minimum Euclidean distance from p to any point of r;
// 0 if p is inside r. This is the R*-tree MINDIST metric and the distance
// the safe-period computation is based on.
func (r Rect) MinDist(p Point) float64 {
	dx := axisDist(p.X, r.MinX, r.MaxX)
	dy := axisDist(p.Y, r.MinY, r.MaxY)
	if dx == 0 {
		return dy
	}
	if dy == 0 {
		return dx
	}
	return math.Hypot(dx, dy)
}

// MinDistSq returns the squared MinDist, avoiding the square root.
func (r Rect) MinDistSq(p Point) float64 {
	dx := axisDist(p.X, r.MinX, r.MaxX)
	dy := axisDist(p.Y, r.MinY, r.MaxY)
	return dx*dx + dy*dy
}

// MaxDist returns the maximum Euclidean distance from p to any point of r.
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.MinX), math.Abs(p.X-r.MaxX))
	dy := math.Max(math.Abs(p.Y-r.MinY), math.Abs(p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// Corners returns the four corner points of r in counter-clockwise order
// starting from (MinX, MinY).
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY},
		{r.MaxX, r.MinY},
		{r.MaxX, r.MaxY},
		{r.MinX, r.MaxY},
	}
}

// ClampPoint returns the point of r nearest to p (p itself if inside).
func (r Rect) ClampPoint(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.MinX), r.MaxX),
		Y: math.Min(math.Max(p.Y, r.MinY), r.MaxY),
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.2f,%.2f]x[%.2f,%.2f]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// SubtractClip shrinks r so that it no longer overlaps obstacle while still
// containing anchor, removing as little area as possible among the four
// axis-aligned cuts. It is the soundness safety net for rectangular safe
// regions: given any rectangle containing the client position, repeatedly
// clipping against every alarm region yields a sound safe region.
//
// anchor must lie inside r and outside the interior of obstacle; otherwise
// SubtractClip returns r unchanged and ok=false.
func (r Rect) SubtractClip(obstacle Rect, anchor Point) (clipped Rect, ok bool) {
	if !r.Overlaps(obstacle) {
		return r, true
	}
	if !r.Contains(anchor) || obstacle.ContainsStrict(anchor) {
		return r, false
	}
	best := Rect{}
	bestArea := -1.0
	// Four candidate cuts; keep only those leaving the anchor inside.
	candidates := [4]Rect{
		{r.MinX, r.MinY, obstacle.MinX, r.MaxY}, // keep left of obstacle
		{obstacle.MaxX, r.MinY, r.MaxX, r.MaxY}, // keep right of obstacle
		{r.MinX, r.MinY, r.MaxX, obstacle.MinY}, // keep below obstacle
		{r.MinX, obstacle.MaxY, r.MaxX, r.MaxY}, // keep above obstacle
	}
	for _, c := range candidates {
		if !c.Valid() || !c.Contains(anchor) {
			continue
		}
		if a := c.Area(); a > bestArea {
			best, bestArea = c, a
		}
	}
	if bestArea < 0 {
		// The anchor is on the boundary of the obstacle in both axes; the
		// largest sound region is the degenerate rectangle at the anchor.
		return Rect{anchor.X, anchor.Y, anchor.X, anchor.Y}, true
	}
	return best, true
}

// NormalizeAngle maps an angle in radians to (-π, π].
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a > math.Pi {
		a -= 2 * math.Pi
	} else if a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
