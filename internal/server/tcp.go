package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/transport"
	"github.com/sabre-geo/sabre/internal/wire"
)

// TCPServer fronts an Engine with a TCP listener speaking length-prefixed
// wire frames: one connection per client, one serving goroutine per
// connection. It demonstrates the engine outside the in-process
// simulation; cmd/alarmserver wraps it.
type TCPServer struct {
	eng *Engine
	ln  net.Listener
	log *log.Logger

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	// userConns maps registered users to their connection so the engine's
	// moving-target pushes reach them.
	userConns map[uint64]transport.Conn
	wg        sync.WaitGroup
}

// NewTCPServer starts listening on addr (e.g. ":7700"). Serving starts
// with Serve.
func NewTCPServer(eng *Engine, addr string, logger *log.Logger) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &TCPServer{
		eng:       eng,
		ln:        ln,
		log:       logger,
		conns:     make(map[net.Conn]struct{}),
		userConns: make(map[uint64]transport.Conn),
	}
	// Deliver moving-target invalidations (Seq-0 pushes) to connected
	// clients. The engine invokes the pusher after releasing its locks, so
	// a blocking Send (or even a callback into the engine) is safe here.
	eng.SetPusher(func(user alarm.UserID, msgs []wire.Message) {
		s.mu.Lock()
		conn := s.userConns[uint64(user)]
		s.mu.Unlock()
		if conn == nil {
			return
		}
		for _, m := range msgs {
			if err := conn.Send(m); err != nil {
				s.log.Printf("push to user %d: %v", user, err)
				return
			}
		}
	})
	return s, nil
}

// Addr returns the bound listener address.
func (s *TCPServer) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts and serves connections until Close. It always returns a
// non-nil error; after Close the error wraps net.ErrClosed.
func (s *TCPServer) Serve() error {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return fmt.Errorf("server: closed: %w", err)
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return errors.New("server: closed")
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(nc)
		}()
	}
}

// Close stops the listener and all connections, then waits for the
// serving goroutines to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *TCPServer) serveConn(nc net.Conn) {
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
	}()
	conn := transport.NewTCP(nc)
	var registeredUser uint64
	defer func() {
		if registeredUser != 0 {
			s.mu.Lock()
			if s.userConns[registeredUser] == conn {
				delete(s.userConns, registeredUser)
			}
			s.mu.Unlock()
		}
	}()
	for {
		msg, err := conn.Recv()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.log.Printf("conn %s: recv: %v", nc.RemoteAddr(), err)
			}
			return
		}
		switch m := msg.(type) {
		case wire.Register:
			if err := s.eng.Register(m); err != nil {
				s.log.Printf("conn %s: register: %v", nc.RemoteAddr(), err)
				return
			}
			registeredUser = m.User
			s.mu.Lock()
			s.userConns[m.User] = conn
			s.mu.Unlock()
		case wire.PositionUpdate:
			responses, err := s.eng.HandleUpdate(m)
			if err != nil {
				s.log.Printf("conn %s: update: %v", nc.RemoteAddr(), err)
				return
			}
			// Always answer something so the client can resume monitoring
			// (periodic clients get a bare Ack).
			if len(responses) == 0 {
				responses = []wire.Message{wire.Ack{Seq: m.Seq}}
			}
			for _, r := range responses {
				if err := conn.Send(r); err != nil {
					s.log.Printf("conn %s: send: %v", nc.RemoteAddr(), err)
					return
				}
			}
		default:
			s.log.Printf("conn %s: unexpected %v", nc.RemoteAddr(), msg.Kind())
			return
		}
	}
}
