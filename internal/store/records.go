// Package store gives the alarm server durable state: a length-prefixed,
// CRC32-framed, fsync-disciplined write-ahead log of every state-changing
// operation, periodic JSON snapshots of the full engine state, and a
// recovery path that replays snapshot+log into a State from which the
// engine reconstructs itself. The observable behaviour of a recovered
// server — the delivered (user, alarm) set and the redelivery of
// unacknowledged firings — is identical to an uninterrupted run; see
// DESIGN.md "Durability" for the invariants and internal/sim.RunCrashing
// for the proof harness.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/wire"
)

// Record type tags. Stable on-disk constants: never renumber.
const (
	recInstall  = 1 // alarm installed (full alarm, server-assigned ID)
	recRemove   = 2 // alarm cancelled
	recRegister = 3 // plain (fire-and-forget) client registration
	recHello    = 4 // reliable session minted: token + registration
	recFired    = 5 // alarms fired for a user, entering pendingFired
	recFiredAck = 6 // client acknowledged firings, leaving pendingFired
	recExpire   = 7 // idle reliable session reaped by the TTL sweep
	recEpoch    = 8 // partition-map epoch this shard last served (clustering)
	// recTransition logs one lifecycle transition event (packed per
	// alarm.PackEvent): replay advances the machine and, when the event
	// was delivered to a reliable session, re-enters it into the pending
	// set like a FiredRec entry.
	recTransition = 9
	// recAlarmExpire logs a composite alarm GC'd at its TTL: replay
	// removes the alarm (and its firings) so recovery never resurrects
	// an expired alarm.
	recAlarmExpire = 10
)

// Codec errors.
var (
	// ErrBadRecord marks a payload the record decoder rejects (unknown
	// type tag, truncated body, absurd count).
	ErrBadRecord = errors.New("store: bad record")
)

// Record is one typed WAL entry. Records are semantic operations: replay
// applies them, in log order, to a State; every application is idempotent
// so a record that also made it into a concurrent snapshot replays
// harmlessly.
type Record interface {
	// appendTo encodes the record including its leading type byte.
	appendTo(dst []byte) []byte
}

// InstallRec logs one installed alarm, including its assigned ID.
type InstallRec struct {
	Alarm alarm.Alarm
}

// RemoveRec logs an alarm cancellation.
type RemoveRec struct {
	ID alarm.ID
}

// RegisterRec logs a plain Register enrollment (fire-and-forget client).
type RegisterRec struct {
	User      uint64
	Strategy  wire.Strategy
	MaxHeight uint8
}

// HelloRec logs a fresh reliable session: the minted token and the
// client's declared strategy and capability. Replay re-mints the session
// and carries any unacknowledged firings over from prior reliable state,
// mirroring Engine.HandleHello.
type HelloRec struct {
	User      uint64
	Token     uint64
	Strategy  wire.Strategy
	MaxHeight uint8
}

// FiredRec logs alarms newly fired for a user: replay marks the
// (alarm, user) pairs fired and, for reliable clients, appends them to
// the pending (unacknowledged) set.
type FiredRec struct {
	User   uint64
	Alarms []uint64
}

// FiredAckRec logs a FiredAck: replay removes the ids from the user's
// pending set.
type FiredAckRec struct {
	User   uint64
	Alarms []uint64
}

// ExpireRec logs a session reaped by the idle TTL sweep: replay removes
// the user's client state and every resume token mapped to it.
type ExpireRec struct {
	User uint64
}

// EpochRec logs the partition-map epoch this shard last served. A
// recovered shard rejoins the cluster at max(logged epoch, map-file
// epoch); epochs only move forward, so replay keeps the highest seen.
type EpochRec struct {
	Epoch uint64
}

// TransitionRec logs one lifecycle transition event for a user: a
// continuous/pair enter or exit, or a composite severity firing, packed
// per alarm.PackEvent. Tick is the logical tick the transition happened
// at (the cooldown anchor). Delivered marks events that entered a
// reliable session's pending set — replay re-adds exactly those;
// state-sync records (handoff import, shard adoption) log with
// Delivered false so no phantom redelivery is created.
type TransitionRec struct {
	User      uint64
	Event     uint64
	Tick      uint64
	Delivered bool
}

// AlarmExpireRec logs a composite alarm reaped at its TTL tick: replay
// removes the alarm, its fired pairs and its lifecycle machines.
type AlarmExpireRec struct {
	ID alarm.ID
}

func (r InstallRec) appendTo(dst []byte) []byte {
	a := r.Alarm
	dst = append(dst, recInstall)
	dst = binary.BigEndian.AppendUint64(dst, uint64(a.ID))
	dst = append(dst, byte(a.Scope))
	dst = binary.BigEndian.AppendUint64(dst, uint64(a.Owner))
	dst = binary.BigEndian.AppendUint64(dst, uint64(a.Target))
	dst = appendRect(dst, a.Region)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(a.Topic)))
	dst = append(dst, a.Topic...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(a.Subscribers)))
	for _, s := range a.Subscribers {
		dst = binary.BigEndian.AppendUint64(dst, uint64(s))
	}
	dst = append(dst, byte(a.Kind))
	dst = binary.BigEndian.AppendUint32(dst, a.Cooldown)
	dst = binary.BigEndian.AppendUint64(dst, uint64(a.Anchor))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(a.Radius))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(a.Threshold))
	dst = binary.BigEndian.AppendUint64(dst, a.ExpiresAt)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(a.Factors)))
	for _, f := range a.Factors {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f.Center.X))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f.Center.Y))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f.Radius))
		dst = appendRect(dst, f.Region)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f.Weight))
	}
	return dst
}

func (r RemoveRec) appendTo(dst []byte) []byte {
	dst = append(dst, recRemove)
	return binary.BigEndian.AppendUint64(dst, uint64(r.ID))
}

func (r RegisterRec) appendTo(dst []byte) []byte {
	dst = append(dst, recRegister)
	dst = binary.BigEndian.AppendUint64(dst, r.User)
	return append(dst, byte(r.Strategy), r.MaxHeight)
}

func (r HelloRec) appendTo(dst []byte) []byte {
	dst = append(dst, recHello)
	dst = binary.BigEndian.AppendUint64(dst, r.User)
	dst = binary.BigEndian.AppendUint64(dst, r.Token)
	return append(dst, byte(r.Strategy), r.MaxHeight)
}

func (r FiredRec) appendTo(dst []byte) []byte {
	return appendUserIDs(dst, recFired, r.User, r.Alarms)
}

func (r FiredAckRec) appendTo(dst []byte) []byte {
	return appendUserIDs(dst, recFiredAck, r.User, r.Alarms)
}

func (r ExpireRec) appendTo(dst []byte) []byte {
	dst = append(dst, recExpire)
	return binary.BigEndian.AppendUint64(dst, r.User)
}

func (r EpochRec) appendTo(dst []byte) []byte {
	dst = append(dst, recEpoch)
	return binary.BigEndian.AppendUint64(dst, r.Epoch)
}

func (r TransitionRec) appendTo(dst []byte) []byte {
	dst = append(dst, recTransition)
	dst = binary.BigEndian.AppendUint64(dst, r.User)
	dst = binary.BigEndian.AppendUint64(dst, r.Event)
	dst = binary.BigEndian.AppendUint64(dst, r.Tick)
	var b byte
	if r.Delivered {
		b = 1
	}
	return append(dst, b)
}

func (r AlarmExpireRec) appendTo(dst []byte) []byte {
	dst = append(dst, recAlarmExpire)
	return binary.BigEndian.AppendUint64(dst, uint64(r.ID))
}

func appendUserIDs(dst []byte, tag byte, user uint64, ids []uint64) []byte {
	dst = append(dst, tag)
	dst = binary.BigEndian.AppendUint64(dst, user)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = binary.BigEndian.AppendUint64(dst, id)
	}
	return dst
}

// EncodeRecord serializes a record payload (type byte + body), ready for
// WAL framing.
func EncodeRecord(r Record) []byte {
	return r.appendTo(nil)
}

// DecodeRecord parses a payload produced by EncodeRecord. Anything it
// accepts re-encodes byte-identically.
func DecodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrBadRecord)
	}
	r := reader{buf: payload[1:]}
	var rec Record
	switch payload[0] {
	case recInstall:
		a := alarm.Alarm{
			ID:     alarm.ID(r.u64()),
			Scope:  alarm.Scope(r.u8()),
			Owner:  alarm.UserID(r.u64()),
			Target: alarm.UserID(r.u64()),
			Region: r.rect(),
		}
		a.Topic = r.str()
		n := r.u32()
		if r.err == nil && uint64(n)*8 > uint64(len(r.buf)-r.pos) {
			return nil, fmt.Errorf("%w: subscriber count %d exceeds payload", ErrBadRecord, n)
		}
		for i := uint32(0); i < n && r.err == nil; i++ {
			a.Subscribers = append(a.Subscribers, alarm.UserID(r.u64()))
		}
		a.Kind = alarm.LifecycleKind(r.u8())
		a.Cooldown = r.u32()
		a.Anchor = alarm.UserID(r.u64())
		a.Radius = r.f64()
		a.Threshold = r.f64()
		a.ExpiresAt = r.u64()
		nf := r.u32()
		// Each encoded factor is 64 bytes.
		if r.err == nil && uint64(nf)*64 > uint64(len(r.buf)-r.pos) {
			return nil, fmt.Errorf("%w: factor count %d exceeds payload", ErrBadRecord, nf)
		}
		for i := uint32(0); i < nf && r.err == nil; i++ {
			a.Factors = append(a.Factors, alarm.Factor{
				Center: geom.Point{X: r.f64(), Y: r.f64()},
				Radius: r.f64(),
				Region: r.rect(),
				Weight: r.f64(),
			})
		}
		rec = InstallRec{Alarm: a}
	case recRemove:
		rec = RemoveRec{ID: alarm.ID(r.u64())}
	case recRegister:
		rec = RegisterRec{User: r.u64(), Strategy: wire.Strategy(r.u8()), MaxHeight: r.u8()}
	case recHello:
		rec = HelloRec{User: r.u64(), Token: r.u64(), Strategy: wire.Strategy(r.u8()), MaxHeight: r.u8()}
	case recFired:
		user, ids, err := r.userIDs()
		if err != nil {
			return nil, err
		}
		rec = FiredRec{User: user, Alarms: ids}
	case recFiredAck:
		user, ids, err := r.userIDs()
		if err != nil {
			return nil, err
		}
		rec = FiredAckRec{User: user, Alarms: ids}
	case recExpire:
		rec = ExpireRec{User: r.u64()}
	case recEpoch:
		rec = EpochRec{Epoch: r.u64()}
	case recTransition:
		rec = TransitionRec{User: r.u64(), Event: r.u64(), Tick: r.u64(), Delivered: r.u8() != 0}
	case recAlarmExpire:
		rec = AlarmExpireRec{ID: alarm.ID(r.u64())}
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadRecord, payload[0])
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(r.buf)-r.pos)
	}
	return rec, nil
}

// reader is a cursor over a record body that records the first error
// instead of returning one per call (the internal/wire idiom).
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.pos+n > len(r.buf) {
		r.err = fmt.Errorf("%w: truncated body", ErrBadRecord)
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) rect() geom.Rect {
	return geom.Rect{MinX: r.f64(), MinY: r.f64(), MaxX: r.f64(), MaxY: r.f64()}
}

func (r *reader) str() string {
	n := r.u32()
	if r.err == nil && uint64(n) > uint64(len(r.buf)-r.pos) {
		r.err = fmt.Errorf("%w: string length %d exceeds payload", ErrBadRecord, n)
	}
	if r.err != nil || n == 0 {
		return ""
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

func (r *reader) userIDs() (uint64, []uint64, error) {
	user := r.u64()
	n := r.u32()
	if r.err == nil && uint64(n)*8 > uint64(len(r.buf)-r.pos) {
		return 0, nil, fmt.Errorf("%w: id count %d exceeds payload", ErrBadRecord, n)
	}
	var ids []uint64
	for i := uint32(0); i < n && r.err == nil; i++ {
		ids = append(ids, r.u64())
	}
	return user, ids, r.err
}

func appendRect(dst []byte, rc geom.Rect) []byte {
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(rc.MinX))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(rc.MinY))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(rc.MaxX))
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(rc.MaxY))
}
