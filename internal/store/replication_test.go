package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/wire"
)

// replSeedState is a small but fully-populated State for snapshot
// frames: alarms, fired pairs, a reliable client and a session token.
func replSeedState() *State {
	return &State{
		NextAlarmID: 7,
		Alarms: []alarm.Alarm{{
			ID: 1, Scope: alarm.Public, Owner: 2, Region: geom.R(0, 0, 10, 10),
			Topic: "traffic/85N", Subscribers: []alarm.UserID{3, 4},
		}},
		Fired: []alarm.FiredPair{{Alarm: 1, User: 3}},
		Clients: []ClientRec{{
			User: 3, Strategy: wire.StrategyMWPSR, Reliable: true,
			PendingFired: []uint64{1},
		}},
		Sessions:  []SessionRec{{Token: 11, User: 3}},
		LastToken: 11,
		Epoch:     2,
	}
}

// replSeedFrames is one coherent stream: a snapshot seeding generation 3
// at position 5, two records advancing it, and a heartbeat from a later
// term. The committed corpus under testdata/fuzz holds these plus their
// concatenation.
func replSeedFrames() []ReplFrame {
	return []ReplFrame{
		{Type: ReplSnapshot, Term: 1, Gen: 3, Pos: 5, Payload: EncodeState(replSeedState())},
		{Type: ReplRecord, Term: 1, Gen: 3, Pos: 6, Payload: EncodeRecord(InstallRec{Alarm: alarm.Alarm{
			ID: 2, Scope: alarm.Private, Owner: 3, Region: geom.R(20, 20, 30, 30),
		}})},
		{Type: ReplRecord, Term: 1, Gen: 3, Pos: 7, Payload: EncodeRecord(FiredRec{User: 3, Alarms: []uint64{2}})},
		{Type: ReplHeartbeat, Term: 2, Gen: 3, Pos: 7},
	}
}

// replFuzzSeeds returns the byte streams FuzzReplicationStreamDecode
// starts from: each seed frame alone and the whole stream back to back.
func replFuzzSeeds() [][]byte {
	var seeds [][]byte
	var multi []byte
	for _, fr := range replSeedFrames() {
		enc := EncodeReplFrame(fr)
		seeds = append(seeds, enc)
		multi = append(multi, enc...)
	}
	return append(seeds, multi)
}

func TestReplFrameRoundTrip(t *testing.T) {
	for i, fr := range replSeedFrames() {
		enc := EncodeReplFrame(fr)
		dec, n, err := DecodeReplFrame(enc)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if n != len(enc) {
			t.Fatalf("frame %d: consumed %d of %d bytes", i, n, len(enc))
		}
		if dec.Type != fr.Type || dec.Term != fr.Term || dec.Gen != fr.Gen || dec.Pos != fr.Pos {
			t.Fatalf("frame %d: header mismatch: %+v vs %+v", i, dec, fr)
		}
		if !bytes.Equal(EncodeReplFrame(dec), enc) {
			t.Fatalf("frame %d: re-encode differs", i)
		}
	}

	// A decoded frame only consumes its own bytes out of a longer stream.
	stream := append(EncodeReplFrame(replSeedFrames()[1]), EncodeReplFrame(replSeedFrames()[3])...)
	first, n, err := DecodeReplFrame(stream)
	if err != nil || first.Pos != 6 {
		t.Fatalf("first frame: pos=%d err=%v", first.Pos, err)
	}
	second, _, err := DecodeReplFrame(stream[n:])
	if err != nil || second.Type != ReplHeartbeat {
		t.Fatalf("second frame: type=%d err=%v", second.Type, err)
	}
}

// TestReplFrameShortVsBad pins the decoder's two-error contract: a short
// buffer asks the reader to wait for more bytes, anything else marks the
// stream corrupt.
func TestReplFrameShortVsBad(t *testing.T) {
	frame := EncodeReplFrame(replSeedFrames()[1])

	// Every strict prefix is short, never bad.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeReplFrame(frame[:cut]); !errors.Is(err, ErrShortReplFrame) {
			t.Fatalf("cut=%d: got %v, want ErrShortReplFrame", cut, err)
		}
	}

	bad := map[string][]byte{
		"unknown type": func() []byte {
			b := append([]byte(nil), frame...)
			b[0] = 99
			return b
		}(),
		"heartbeat with payload": EncodeReplFrame(ReplFrame{
			Type: ReplHeartbeat, Term: 1, Payload: []byte{1},
		}),
		"record claims oversized payload": func() []byte {
			b := append([]byte(nil), frame...)
			b[25], b[26], b[27], b[28] = 0xFF, 0xFF, 0xFF, 0xFF
			return b
		}(),
		"payload bit flip": func() []byte {
			b := append([]byte(nil), frame...)
			b[len(b)-1] ^= 0x40
			return b
		}(),
		"crc bit flip": func() []byte {
			b := append([]byte(nil), frame...)
			b[30] ^= 0x01
			return b
		}(),
	}
	for name, buf := range bad {
		if _, _, err := DecodeReplFrame(buf); !errors.Is(err, ErrBadReplFrame) {
			t.Errorf("%s: got %v, want ErrBadReplFrame", name, err)
		}
	}
}

// followerRecordFrame builds the record frame at stream position pos.
func followerRecordFrame(term, gen, pos uint64, rec Record) ReplFrame {
	return ReplFrame{Type: ReplRecord, Term: term, Gen: gen, Pos: pos, Payload: EncodeRecord(rec)}
}

func TestFollowerApplyRules(t *testing.T) {
	l, err := OpenFollower(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// A record before any snapshot cannot be placed.
	if _, err := l.Apply(followerRecordFrame(1, 3, 1, ExpireRec{User: 9})); !errors.Is(err, ErrNeedSnapshot) {
		t.Fatalf("record before snapshot: %v", err)
	}

	snap := replSeedFrames()[0]
	if adv, err := l.Apply(snap); err != nil || !adv {
		t.Fatalf("snapshot: adv=%v err=%v", adv, err)
	}
	if l.Pos() != 5 || l.Gen() != 3 || !l.Synced() {
		t.Fatalf("after snapshot: pos=%d gen=%d synced=%v", l.Pos(), l.Gen(), l.Synced())
	}

	// In-order record advances.
	if adv, err := l.Apply(followerRecordFrame(1, 3, 6, RemoveRec{ID: 1})); err != nil || !adv {
		t.Fatalf("in-order record: adv=%v err=%v", adv, err)
	}
	// Duplicate (same position) skips silently — resync overlap is benign.
	if adv, err := l.Apply(followerRecordFrame(1, 3, 6, RemoveRec{ID: 1})); err != nil || adv {
		t.Fatalf("duplicate: adv=%v err=%v", adv, err)
	}
	// Stale generation skips silently too.
	if adv, err := l.Apply(followerRecordFrame(1, 2, 99, RemoveRec{ID: 1})); err != nil || adv {
		t.Fatalf("stale gen: adv=%v err=%v", adv, err)
	}
	// A position gap demands a snapshot resync.
	if _, err := l.Apply(followerRecordFrame(1, 3, 9, ExpireRec{User: 3})); !errors.Is(err, ErrNeedSnapshot) {
		t.Fatalf("position gap: %v", err)
	}
	// A generation the follower never saw a snapshot for does as well.
	if _, err := l.Apply(followerRecordFrame(1, 4, 7, ExpireRec{User: 3})); !errors.Is(err, ErrNeedSnapshot) {
		t.Fatalf("unseen gen: %v", err)
	}
	if l.Pos() != 6 || l.Applied() != 1 {
		t.Fatalf("failed applies moved the log: pos=%d applied=%d", l.Pos(), l.Applied())
	}

	// A heartbeat from a newer term advances the fencing term...
	if adv, err := l.Apply(ReplFrame{Type: ReplHeartbeat, Term: 5, Gen: 3, Pos: 6}); err != nil || adv {
		t.Fatalf("heartbeat: adv=%v err=%v", adv, err)
	}
	if l.Term() != 5 {
		t.Fatalf("term after heartbeat = %d, want 5", l.Term())
	}
	// ...after which the deposed term's frames are rejected outright.
	if _, err := l.Apply(followerRecordFrame(1, 3, 7, ExpireRec{User: 3})); !errors.Is(err, ErrBadReplFrame) {
		t.Fatalf("stale term: %v", err)
	}

	// A CRC-valid frame whose payload is not a record must never apply.
	junk := ReplFrame{Type: ReplRecord, Term: 5, Gen: 3, Pos: 7, Payload: []byte{99, 1, 2, 3}}
	if _, err := l.Apply(junk); !errors.Is(err, ErrBadReplFrame) {
		t.Fatalf("undecodable record: %v", err)
	}
	if l.Pos() != 6 {
		t.Fatalf("undecodable record advanced the log to %d", l.Pos())
	}
	// The stream continues cleanly past the rejection.
	if adv, err := l.Apply(followerRecordFrame(5, 3, 7, ExpireRec{User: 3})); err != nil || !adv {
		t.Fatalf("recovery record: adv=%v err=%v", adv, err)
	}

	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Apply(followerRecordFrame(5, 3, 8, ExpireRec{User: 4})); !errors.Is(err, ErrSealed) {
		t.Fatalf("apply after seal: %v", err)
	}
}

// TestAppendFencedAfterSink: a promotion that completes between
// Append's pre-write term check and the sink call must still fail the
// append. Promote resets every follower before the sink delivers the
// frame, so the frame is dropped — acknowledging the write would lose
// it. The term source is driven to advance exactly between the two
// checks, simulating that interleaving deterministically.
func TestAppendFencedAfterSink(t *testing.T) {
	s, _, _ := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	calls := 0
	s.SetTermSource(func() uint64 {
		calls++
		if calls >= 2 {
			return 1 // promotion lands after the pre-write check
		}
		return 0
	})
	posBefore := s.Pos()
	err := s.Append(ExpireRec{User: 1})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("append raced by promotion: got %v, want ErrFenced", err)
	}
	// The record is in the deposed primary's own WAL (a duplicate if it
	// ever rejoins, never a loss), but it was not acknowledged.
	if s.Pos() != posBefore+1 {
		t.Fatalf("pos = %d, want %d", s.Pos(), posBefore+1)
	}
	// Every later append stays fenced.
	if err := s.Append(ExpireRec{User: 2}); !errors.Is(err, ErrFenced) {
		t.Fatalf("append after fencing: got %v, want ErrFenced", err)
	}
}

// TestFollowerReopenAfterSeal: Reopen reverses Seal — the failed-
// promotion retry path — and the log applies and recovers as if it had
// never been sealed.
func TestFollowerReopenAfterSeal(t *testing.T) {
	l, err := OpenFollower(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	frames := replSeedFrames()
	for _, fr := range frames[:2] {
		if _, err := l.Apply(fr); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Apply(frames[2]); !errors.Is(err, ErrSealed) {
		t.Fatalf("apply on sealed log: %v", err)
	}
	if err := l.Reopen(); err != nil {
		t.Fatal(err)
	}
	if adv, err := l.Apply(frames[2]); err != nil || !adv {
		t.Fatalf("apply after reopen: adv=%v err=%v", adv, err)
	}
	if !l.Synced() || l.Pos() != 7 {
		t.Fatalf("after reopen: synced=%v pos=%d, want synced pos 7", l.Synced(), l.Pos())
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	_, _, info := openStore(t, l.Dir(), Options{})
	if info.Replayed != 2 {
		t.Fatalf("replayed %d records, want 2 (reopened log lost its tail)", info.Replayed)
	}
}

// TestFollowerPromotionRecovery is the promotion path in miniature: a
// follower that applied a snapshot plus records seals, and Open on its
// directory recovers exactly the state its warm applier reports.
func TestFollowerPromotionRecovery(t *testing.T) {
	l, err := OpenFollower(t.TempDir(), Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range replSeedFrames() {
		if _, err := l.Apply(fr); err != nil {
			t.Fatalf("apply %d: %v", fr.Type, err)
		}
	}
	warm := EncodeState(l.State())
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}

	_, state, info := openStore(t, l.Dir(), Options{})
	if info.Replayed != 2 {
		t.Fatalf("replayed %d records, want 2", info.Replayed)
	}
	if got := EncodeState(state); !bytes.Equal(got, warm) {
		t.Fatalf("recovered state differs from warm applier:\n got %s\nwant %s", got, warm)
	}
}

// TestFollowerTornStreamTorture feeds truncated and bit-flipped copies
// of a valid stream through the decode loop into fresh followers. The
// invariant: whatever the corruption, the follower applies a clean
// prefix of the true stream, and recovery from its directory replays
// exactly that prefix — a corrupt record never reaches disk or state.
func TestFollowerTornStreamTorture(t *testing.T) {
	frames := replSeedFrames()
	var stream []byte
	for _, fr := range frames {
		stream = AppendReplFrame(stream, fr)
	}

	var cuts []int
	for cut := 0; cut <= len(stream); cut += 7 {
		cuts = append(cuts, cut)
	}
	cuts = append(cuts, len(stream)-1, len(stream))

	run := func(t *testing.T, data []byte) {
		l, err := OpenFollower(t.TempDir(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		rest := data
		for len(rest) > 0 {
			fr, n, err := DecodeReplFrame(rest)
			if errors.Is(err, ErrShortReplFrame) {
				break // a live reader would wait for more bytes
			}
			if err != nil {
				break // corrupt: the primary would resync with a snapshot
			}
			if _, err := l.Apply(fr); err != nil && !errors.Is(err, ErrNeedSnapshot) && !errors.Is(err, ErrBadReplFrame) {
				t.Fatalf("apply: %v", err)
			}
			rest = rest[n:]
		}
		applied := l.Applied()
		if !l.Synced() {
			return // never saw the snapshot; nothing to check on disk
		}
		if err := l.Seal(); err != nil {
			t.Fatal(err)
		}
		warm := EncodeState(l.State())
		_, state, info := openStore(t, l.Dir(), Options{})
		if uint64(info.Replayed) != applied {
			t.Fatalf("recovery replayed %d records, follower applied %d", info.Replayed, applied)
		}
		if got := EncodeState(state); !bytes.Equal(got, warm) {
			t.Fatalf("recovered state differs from warm applier")
		}
	}

	for _, cut := range cuts {
		t.Run(fmt.Sprintf("truncate-%d", cut), func(t *testing.T) { run(t, stream[:cut]) })
	}
	for off := 0; off < len(stream); off += 131 {
		flipped := append([]byte(nil), stream...)
		flipped[off] ^= 0x10
		t.Run(fmt.Sprintf("bitflip-%d", off), func(t *testing.T) { run(t, flipped) })
	}
}

// FuzzReplicationStreamDecode exercises the stream decoder against
// arbitrary bytes, mirroring FuzzWALDecode: decoding must never panic,
// a short error must only appear when bytes are genuinely missing, and
// every accepted frame must re-encode byte-identically.
func FuzzReplicationStreamDecode(f *testing.F) {
	for _, seed := range replFuzzSeeds() {
		f.Add(seed)
		torn := append([]byte(nil), seed[:len(seed)-3]...)
		f.Add(torn)
		flipped := append([]byte(nil), seed...)
		flipped[len(flipped)/2] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add(make([]byte, replHeader))                                     // zero type = unknown
	f.Add(append([]byte{ReplHeartbeat}, make([]byte, replHeader-1)...)) // clean heartbeat
	f.Add([]byte{ReplRecord, 0xFF, 0xFF})                               // torn header

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			fr, n, err := DecodeReplFrame(rest)
			if errors.Is(err, ErrShortReplFrame) {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrBadReplFrame) {
					t.Fatalf("decode error outside the contract: %v", err)
				}
				break
			}
			if n < replHeader || n > len(rest) {
				t.Fatalf("consumed %d bytes of %d", n, len(rest))
			}
			if !bytes.Equal(EncodeReplFrame(fr), rest[:n]) {
				t.Fatalf("accepted frame re-encodes differently")
			}
			rest = rest[n:]
		}
	})
}

// TestReplicationFuzzCorpus keeps the committed seed corpus honest:
// every file under testdata/fuzz/FuzzReplicationStreamDecode must be a
// valid go-fuzz corpus entry, and at least one must decode as a frame
// stream. Run with REGEN_FUZZ_CORPUS=1 to rewrite the corpus from
// replFuzzSeeds.
func TestReplicationFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzReplicationStreamDecode")
	if os.Getenv("REGEN_FUZZ_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range replFuzzSeeds() {
			entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			name := filepath.Join(dir, fmt.Sprintf("seed-repl-%d", i))
			if err := os.WriteFile(name, []byte(entry), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("committed corpus missing: %v", err)
	}
	decodable := 0
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var header string
		if _, err := fmt.Sscanf(string(data), "%s test fuzz v1", &header); err != nil || header != "go" {
			t.Fatalf("%s: not a go fuzz corpus entry", e.Name())
		}
		nl := bytes.IndexByte(data, '\n')
		var quoted string
		if _, err := fmt.Sscanf(string(data[nl+1:]), "[]byte(%q)", &quoted); err != nil {
			t.Fatalf("%s: bad corpus literal: %v", e.Name(), err)
		}
		frame := []byte(quoted)
		if fr, n, err := DecodeReplFrame(frame); err == nil {
			decodable++
			if !bytes.Equal(EncodeReplFrame(fr), frame[:n]) {
				t.Fatalf("%s: corpus frame not byte-stable", e.Name())
			}
		}
	}
	if decodable == 0 {
		t.Fatal("no committed corpus entry decodes — seeds have rotted")
	}
}
