package saferegion

import "math"

// SafePeriodTicks converts the distance to the nearest relevant alarm
// region into a number of whole ticks during which no alarm can possibly
// trigger (the SP baseline, Bamba et al. HiPC'08; paper §1 and §5).
//
// The computation is deliberately pessimistic — dist / v_max, floored to
// whole ticks — because the safe period must hold under any motion the
// client could perform: this is exactly the "pessimistic assumptions
// required to ensure that the safe period approach triggers all alarms
// with a 100% success rate" the paper cites as the reason SP sends 2–3×
// more messages than the safe region approaches.
//
// A distance of +Inf (no relevant alarms) maps to maxTicks. A zero or
// sub-tick distance maps to 0: the client must report every tick.
func SafePeriodTicks(dist, vmax, tickSeconds float64, maxTicks int) int {
	if vmax <= 0 || tickSeconds <= 0 || maxTicks < 0 {
		return 0
	}
	if math.IsInf(dist, 1) {
		return maxTicks
	}
	if dist <= 0 {
		return 0
	}
	ticks := int(math.Floor(dist / vmax / tickSeconds))
	if ticks > maxTicks {
		return maxTicks
	}
	return ticks
}
