package wire

import (
	"bytes"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
)

// FuzzDecode exercises the codec against arbitrary bytes: Decode must
// never panic, and whatever it accepts must re-encode to the same
// semantic message (decode∘encode∘decode is the identity).
func FuzzDecode(f *testing.F) {
	seeds := []Message{
		Register{User: 42, Strategy: StrategyPBSR, MaxHeight: 5},
		PositionUpdate{User: 7, Seq: 1234, Pos: geom.Pt(123.456, -9.75)},
		RectRegion{Seq: 9, Rect: geom.R(1, 2, 3, 4)},
		RectRegion{Seq: 10, Rect: geom.R(1, 2, 3, 4), Cap: 6},
		BitmapRegion{Seq: 3, Cell: geom.R(0, 0, 900, 900), U: 3, V: 3, Height: 4,
			NBits: 19, Data: []byte{0xAB, 0xCD, 0xE0}},
		AlarmPush{Seq: 5, Cell: geom.R(0, 0, 100, 100), Cap: 12, Alarms: []AlarmInfo{
			{ID: 1, Region: geom.R(1, 1, 2, 2)},
		}},
		SafePeriod{Seq: 8, Ticks: 300},
		AlarmFired{Seq: 2, Alarms: []uint64{5, 6, 7}},
		Ack{Seq: 77},
		Ack{Seq: 78, Cap: 1},
		Hello{User: 42, Token: 0xFEEDC0FFEE, Strategy: StrategyMWPSR, MaxHeight: 5},
		Hello{User: 1}, // fresh session, zero token
		Resume{Token: 0xFEEDC0FFEE, Resumed: true},
		Resume{Token: 9},
		Heartbeat{Nonce: 0xABCD1234},
		Heartbeat{},
		FiredAck{Alarms: []uint64{1, 2, 3}},
		FiredAck{},
		Redirect{Token: 0xFEEDC0FFEE, Addr: "10.0.0.7:7701"},
		Redirect{},
		UpdateBatch{},
		UpdateBatch{Updates: []PositionUpdate{
			{User: 1, Seq: 2, Pos: geom.Pt(3, 4)},
			{User: 1, Seq: 3, Pos: geom.Pt(4.5, -5)},
		}},
		BatchReply{},
		BatchReply{Entries: []BatchEntry{
			{User: 1, Msgs: []Message{AlarmFired{Seq: 2, Alarms: []uint64{5}}, Ack{Seq: 2}}},
			{User: 9, Msgs: []Message{RectRegion{Seq: 3, Rect: geom.R(1, 2, 3, 4)}}},
		}},
		InstallContinuous{Owner: 4, Subscribers: []uint64{5, 6}, Region: geom.R(10, 10, 40, 40), Cooldown: 12},
		InstallContinuous{Owner: 4, Region: geom.R(0, 0, 5, 5)},
		InstallPair{Owner: 3, Anchor: 8, Radius: 150.5, Cooldown: 4},
		InstallPair{},
		InstallComposite{Owner: 2, Subscribers: []uint64{7}, Factors: []FactorInfo{
			{Center: geom.Pt(100, 100), Radius: 30, Weight: 0.6},
			{Region: geom.R(50, 50, 90, 90), Weight: 0.5},
		}, Threshold: 1.0, ExpiresAt: 400},
		InstallComposite{},
		InstallReply{ID: 17},
	}
	for _, m := range seeds {
		f.Add(Encode(m))
	}
	// Hand-built hostile frames: zero-length, unknown kind, truncated
	// session messages, and oversized length prefixes claiming more
	// payload than the buffer holds.
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x01})
	f.Add(Encode(Hello{User: 7, Token: 9})[:5])                             // truncated Hello
	f.Add(Encode(Resume{Token: 1, Resumed: true})[:3])                      // truncated Resume
	f.Add(Encode(Heartbeat{Nonce: 1})[:2])                                  // truncated Heartbeat
	f.Add([]byte{byte(KindHello)})                                          // kind byte only
	f.Add([]byte{byte(KindResume)})                                         // kind byte only
	f.Add([]byte{byte(KindHeartbeat)})                                      // kind byte only
	f.Add([]byte{byte(KindFiredAck)})                                       // kind byte only
	f.Add([]byte{byte(KindFiredAck), 0x7F, 0xFF, 0xFF, 0xFF})               // oversized count, no payload
	f.Add([]byte{byte(KindFiredAck), 0, 0, 0, 2, 1, 2, 3})                  // count 2, payload for <1
	f.Add([]byte{byte(KindAlarmFired), 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF}) // oversized fired count
	f.Add([]byte{byte(KindRedirect)})                                       // kind byte only
	f.Add([]byte{byte(KindRedirect), 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF})   // addr length > payload
	f.Add([]byte{byte(KindUpdateBatch), 0x7F, 0xFF, 0xFF, 0xFF})            // oversized update count
	f.Add([]byte{byte(KindBatchReply), 0x7F, 0xFF, 0xFF, 0xFF})             // oversized entry count
	f.Add([]byte{byte(KindBatchReply), 0, 0, 0, 1,                          // one entry, zero-length inner frame
		0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 1, 0, 0, 0, 0})
	f.Add(append([]byte{byte(KindBatchReply), 0, 0, 0, 1, // nested batch inside reply
		0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 1, 0, 0, 0, 5}, Encode(UpdateBatch{})...))
	f.Add([]byte{byte(KindInstallContinuous)})                        // kind byte only
	f.Add([]byte{byte(KindInstallContinuous), 0, 0, 0, 0, 0, 0, 0, 4, // oversized subscriber count
		0x7F, 0xFF, 0xFF, 0xFF})
	f.Add(Encode(InstallPair{Owner: 3, Anchor: 8, Radius: 150.5})[:9]) // truncated InstallPair
	f.Add([]byte{byte(KindInstallComposite)})                          // kind byte only
	f.Add([]byte{byte(KindInstallComposite), 0, 0, 0, 0, 0, 0, 0, 2,   // oversized factor count
		0, 0, 0, 0, 0x7F, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{byte(KindInstallReply), 0, 0, 0, 1}) // truncated InstallReply
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		re := Encode(m)
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if !bytes.Equal(re, Encode(m2)) {
			t.Fatalf("encode not stable: % x vs % x", re, Encode(m2))
		}
	})
}
