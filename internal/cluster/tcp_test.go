package cluster

import (
	"testing"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/client"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/transport"
	"github.com/sabre-geo/sabre/internal/wire"
)

func startTCPCluster(t *testing.T, c *Cluster) *TCPCluster {
	t.Helper()
	addrs := make([]string, c.N())
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	srv, err := NewTCP(c, addrs, nil, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve()
	}()
	t.Cleanup(func() {
		srv.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("Serve did not exit after Close")
		}
	})
	return srv
}

// TestTCPRedirectFollowsShard drives a real client session over real TCP
// across the partition boundary: the first shard replies with a
// wire.Redirect carrying the handed-off session's token, the session
// redials the owning shard via DialTo, resumes there, and the alarm on
// the far side still fires exactly once.
func TestTCPRedirectFollowsShard(t *testing.T) {
	c := newTestCluster(t, 2, 1, "") // split at x=5000
	ids, err := c.InstallAlarms([]alarm.Alarm{{
		Scope: alarm.Private, Owner: 42,
		Region: geom.RectAround(geom.Pt(6000, 5000), 200),
	}})
	if err != nil {
		t.Fatal(err)
	}
	srv := startTCPCluster(t, c)
	addrs := srv.Addrs()

	met := &metrics.Client{}
	cl := client.New(42, wire.StrategyMWPSR, met)
	sess := client.NewSession(cl, func() (transport.Conn, error) {
		return transport.Dial(addrs[0])
	}, client.SessionConfig{MaxHeight: 5, JitterSeed: 1}, met)
	sess.DialTo = func(addr string) (transport.Conn, error) {
		return transport.Dial(addr)
	}
	var fired []uint64
	sess.OnFired = func(alarms []uint64) { fired = append(fired, alarms...) }

	// Walk east from deep in shard 0, through the boundary, into the
	// alarm. Real TCP is asynchronous, so poll each tick briefly.
	for tick := 0; tick < 600 && len(fired) == 0; tick++ {
		pos := geom.Pt(4000+float64(tick)*20, 5000)
		if pos.X > 6000 {
			pos.X = 6000
		}
		sess.Step(tick, pos)
		time.Sleep(2 * time.Millisecond)
	}
	// Drain any in-flight delivery.
	for tick := 600; tick < 650 && len(fired) == 0; tick++ {
		sess.Quiesce(tick)
		time.Sleep(2 * time.Millisecond)
	}
	if len(fired) != 1 || fired[0] != uint64(ids[0]) {
		t.Fatalf("fired = %v, want [%d]", fired, ids[0])
	}
	if met.Redirects == 0 {
		t.Error("session followed no redirects crossing the boundary")
	}
	cm := c.Metrics().Snapshot()
	if cm.RedirectsSent == 0 || cm.Handoffs == 0 {
		t.Errorf("cluster counters: redirects=%d handoffs=%d, want both > 0", cm.RedirectsSent, cm.Handoffs)
	}
}

// TestTCPAddrsMismatch: the front end refuses an address list that does
// not match the shard count.
func TestTCPAddrsMismatch(t *testing.T) {
	c := newTestCluster(t, 2, 1, "")
	if _, err := NewTCP(c, []string{"127.0.0.1:0"}, nil, time.Second); err == nil {
		t.Fatal("one address for two shards accepted")
	}
}
