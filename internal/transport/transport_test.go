package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/wire"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(4)
	defer a.Close()
	want := wire.PositionUpdate{User: 1, Seq: 2, Pos: geom.Pt(3, 4)}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("got %v, want %v", got, want)
	}
	// And the reverse direction.
	if err := b.Send(wire.Ack{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if m, err := a.Recv(); err != nil || m.(wire.Ack).Seq != 2 {
		t.Errorf("reverse direction: %v %v", m, err)
	}
}

func TestPipeClose(t *testing.T) {
	a, b := Pipe(1)
	a.Close()
	if err := a.Send(wire.Ack{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close: %v", err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv after close: %v", err)
	}
}

func TestPipeBlockedRecvUnblocksOnClose(t *testing.T) {
	a, b := Pipe(1)
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	a.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Errorf("blocked Recv returned %v", err)
	}
}

func TestLossyDropsDeterministically(t *testing.T) {
	a, _ := Pipe(1024)
	lossy := Lossy(a, 0.5, 42).(*lossyConn)
	for i := 0; i < 1000; i++ {
		if err := lossy.Send(wire.Ack{Seq: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	dropped := lossy.Dropped()
	if dropped < 400 || dropped > 600 {
		t.Errorf("dropped %d of 1000 at p=0.5", dropped)
	}
	// Same seed, same drops.
	a2, _ := Pipe(1024)
	lossy2 := Lossy(a2, 0.5, 42).(*lossyConn)
	for i := 0; i < 1000; i++ {
		lossy2.Send(wire.Ack{Seq: uint32(i)})
	}
	if lossy2.Dropped() != dropped {
		t.Errorf("drop pattern not deterministic: %d vs %d", lossy2.Dropped(), dropped)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []wire.Message{
		wire.Register{User: 5, Strategy: wire.StrategyPBSR, MaxHeight: 3},
		wire.PositionUpdate{User: 5, Seq: 1, Pos: geom.Pt(10, 20)},
		wire.SafePeriod{Seq: 1, Ticks: 30},
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("got %v, want %v", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("expected EOF at end, got %v", err)
	}
}

func TestFrameRejectsHostileLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("zero frame accepted")
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, wire.Ack{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(data)); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestTCPConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		nc, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		conn := NewTCP(nc)
		defer conn.Close()
		m, err := conn.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		upd, ok := m.(wire.PositionUpdate)
		if !ok {
			t.Errorf("server got %v", m)
			return
		}
		conn.Send(wire.RectRegion{Seq: upd.Seq, Rect: geom.R(0, 0, 10, 10)})
	}()

	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Send(wire.PositionUpdate{User: 9, Seq: 7, Pos: geom.Pt(1, 2)}); err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if rr, ok := resp.(wire.RectRegion); !ok || rr.Seq != 7 {
		t.Errorf("client got %v", resp)
	}
	wg.Wait()
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestConcurrentSends(t *testing.T) {
	a, b := Pipe(4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := a.Send(wire.Ack{Seq: uint32(g*1000 + i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < 800; i++ {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
}
