# SABRE build and verification targets.
#
#   make tier1   build + full test suite (the repo's baseline gate)
#   make race    full test suite under the race detector
#   make crash   crash-recovery suite under the race detector: WAL/
#                snapshot store tests, durable-engine recovery tests and
#                the kill/mangle/recover simulation drivers
#   make cluster sharded-cluster suite under the race detector:
#                partitioner/router/handoff unit tests, the TCP redirect
#                end-to-end test and the multi-shard delivery-equality
#                simulation (4 shards, forced handoffs, shard crashes)
#   make rebalance
#                dynamic repartitioning suite under the race detector:
#                partition-map invariant/property tests, the balancer,
#                the map-file codec seed corpus, and the split/merge
#                delivery-equality + crash-point simulations
#   make failover
#                replication and failover suite under the race detector:
#                replication-stream codec + follower-log tests, the
#                per-shard replicator/fencing/promotion unit tests and
#                the kill-primaries-mid-workload delivery-equality
#                simulations (incl. mid-handoff and mid-merge-drain)
#   make lifecycle
#                lifecycle-alarm suite under the race detector: the
#                continuous/pair/composite state-machine unit tests, the
#                mid-lifecycle snapshot round-trip and composite-TTL
#                recovery tests, and the per-strategy delivery-equality
#                simulations (faults, crash recovery, and a cluster split
#                that separates a pair's endpoints mid-run)
#   make bench   engine throughput sweep at 1/2/4/8 procs; writes
#                BENCH_engine.json via cmd/alarmbench
#   make bench-cluster
#                routed update throughput on a sharded cluster with 100k
#                simulated clients, sweeping shards x goroutines x batch
#                size; writes BENCH_cluster.json
#   make bench-wal
#                durable append throughput with fsync on, sweeping
#                concurrent appenders x group-commit cap; writes
#                BENCH_wal.json
#   make bench-wal-smoke
#                tiny bench-wal run (64 appends/point) plus the
#                BENCH_wal.json parse test — the CI gate that the report
#                regenerates and records GOMAXPROCS + fsync mode
#   make bench-smoke
#                compile and run every benchmark once (-benchtime=1x) so
#                CI catches bit-rotted benchmark code without paying for
#                real measurement runs
#   make figures the paper-figure benchmark series

GO ?= go

.PHONY: tier1 race crash cluster rebalance failover lifecycle bench bench-cluster bench-wal bench-wal-smoke bench-smoke figures

tier1:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

crash:
	$(GO) test -race ./internal/store/
	$(GO) test -race -run 'Durable|SessionExpiry|PendingFiredCap' ./internal/server/
	$(GO) test -race -run 'Crash|Torture' ./internal/sim/

cluster:
	$(GO) test -race ./internal/cluster/
	$(GO) test -race -run 'Export|Import|ExpiredSession' ./internal/server/
	$(GO) test -race -run 'Cluster' ./internal/sim/

rebalance:
	$(GO) test -race -run 'Partition|Balancer|Split|Merge' ./internal/cluster/
	$(GO) test -race -run 'Repartition' ./internal/sim/

failover:
	$(GO) test -race -run 'Repl|Follower' ./internal/store/
	$(GO) test -race -run 'Replication|Failover|Fencing|Promotion|Split' ./internal/cluster/
	$(GO) test -race -run 'Failover' ./internal/sim/

lifecycle:
	$(GO) test -race -run 'Continuous|Pair|Composite|Lifecycle|Event|ResetFired' ./internal/alarm/
	$(GO) test -race -run 'Lifecycle|Composite' ./internal/server/
	$(GO) test -race -run 'Lifecycle' ./internal/sim/

bench:
	$(GO) test -run xxx -bench 'Engine(Parallel|Serial)' -cpu 1,2,4,8 -benchtime 2000x .
	$(GO) run ./cmd/alarmbench -scale small bench-engine

bench-cluster:
	$(GO) run ./cmd/alarmbench -scale small bench-cluster

bench-wal:
	$(GO) run ./cmd/alarmbench -scale small bench-wal

bench-wal-smoke:
	$(GO) run ./cmd/alarmbench -scale small -wal-appends 64 bench-wal
	$(GO) test -run 'BenchWAL' ./cmd/alarmbench/

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

figures:
	$(GO) test -run xxx -bench 'Fig|Ablation' .
