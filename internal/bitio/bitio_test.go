package bitio

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(16)
	pattern := []bool{true, false, true, true, false, false, true, false, true, true}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Len() != len(pattern) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(pattern))
	}
	r := NewReader(w.Bytes(), w.Len())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Errorf("bit %d = %v, want %v", i, got, want)
		}
	}
	if _, err := r.ReadBit(); !errors.Is(err, ErrOutOfBits) {
		t.Errorf("expected ErrOutOfBits past end, got %v", err)
	}
}

func TestWriteBitsMSBFirst(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0b1011, 4)
	w.WriteBits(0b0110, 4)
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0b10110110 {
		t.Fatalf("Bytes = %08b, want 10110110", got[0])
	}
	r := NewReader(got, 8)
	v, err := r.ReadBits(8)
	if err != nil || v != 0b10110110 {
		t.Errorf("ReadBits = %08b err=%v", v, err)
	}
}

func TestReadBitsErrors(t *testing.T) {
	r := NewReader([]byte{0xFF}, 8)
	if _, err := r.ReadBits(65); err == nil {
		t.Error("expected error for n > 64")
	}
	if _, err := r.ReadBits(9); !errors.Is(err, ErrOutOfBits) {
		t.Errorf("expected ErrOutOfBits, got %v", err)
	}
}

func TestBitAtAndSeek(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b1100_1010, 8)
	r := NewReader(w.Bytes(), 8)
	wantBits := []bool{true, true, false, false, true, false, true, false}
	for i, want := range wantBits {
		got, err := r.BitAt(i)
		if err != nil {
			t.Fatalf("BitAt(%d): %v", i, err)
		}
		if got != want {
			t.Errorf("BitAt(%d) = %v, want %v", i, got, want)
		}
	}
	if _, err := r.BitAt(8); !errors.Is(err, ErrOutOfBits) {
		t.Error("BitAt past end should fail")
	}
	if err := r.Seek(6); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.ReadBit(); got != true {
		t.Error("after Seek(6) expected bit 1")
	}
	if r.Remaining() != 1 {
		t.Errorf("Remaining = %d, want 1", r.Remaining())
	}
	if err := r.Seek(100); !errors.Is(err, ErrOutOfBits) {
		t.Error("Seek past end should fail")
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xFF, 8)
	w.Reset()
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Error("Reset did not clear writer")
	}
	w.WriteBit(true)
	if w.Bytes()[0] != 0x80 {
		t.Errorf("after reset, first bit wrong: %08b", w.Bytes()[0])
	}
}

func TestNewReaderNegativeBits(t *testing.T) {
	r := NewReader([]byte{0xAA, 0xBB}, -1)
	if r.Remaining() != 16 {
		t.Errorf("Remaining = %d, want 16", r.Remaining())
	}
}

func TestString(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b0000011010, 10)
	if got := String(w.Bytes(), 10); got != "0000011010" {
		t.Errorf("String = %q, want 0000011010", got)
	}
	// Requesting more bits than available truncates.
	if got := String([]byte{0xF0}, 20); got != "11110000" {
		t.Errorf("String = %q", got)
	}
}

// Property: writing any random bit sequence and reading it back is identity.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n % 2048)
		bits := make([]bool, count)
		w := NewWriter(count)
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
			w.WriteBit(bits[i])
		}
		r := NewReader(w.Bytes(), w.Len())
		for i := range bits {
			got, err := r.ReadBit()
			if err != nil || got != bits[i] {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: WriteBits/ReadBits round-trips any value at any width.
func TestQuickWriteBitsRoundTrip(t *testing.T) {
	f := func(v uint64, width uint8) bool {
		n := int(width % 65)
		masked := v
		if n < 64 {
			masked = v & ((1 << uint(n)) - 1)
		}
		w := NewWriter(n)
		w.WriteBits(v, n)
		r := NewReader(w.Bytes(), w.Len())
		got, err := r.ReadBits(n)
		return err == nil && got == masked
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
