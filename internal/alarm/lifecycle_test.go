package alarm

import (
	"reflect"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
)

func noPartner(UserID) (geom.Point, bool) { return geom.Point{}, false }

// evalLC drives one lifecycle evaluation with explicit index hits (the
// alarm IDs whose regions a point query would surface).
func evalLC(r *Registry, u UserID, p geom.Point, tick uint64, hits []ID, partner func(UserID) (geom.Point, bool)) []uint64 {
	raw := make([]uint64, len(hits))
	for i, id := range hits {
		raw[i] = uint64(id)
	}
	if partner == nil {
		partner = noPartner
	}
	return r.EvaluateLifecycleInto(u, p, tick, raw, partner, nil)
}

func TestContinuousEnterExitRearm(t *testing.T) {
	r := NewRegistry()
	id, err := r.Install(Alarm{Scope: Private, Owner: 1, Kind: KindContinuous,
		Region: geom.R(0, 0, 100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	in, out := geom.Pt(50, 50), geom.Pt(200, 200)

	got := evalLC(r, 1, in, 1, []ID{id}, nil)
	if want := []uint64{PackEvent(id, TransEnter, 1)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("enter = %#x, want %#x", got, want)
	}
	// Staying inside transitions nothing.
	if got = evalLC(r, 1, in, 2, []ID{id}, nil); len(got) != 0 {
		t.Fatalf("dwell produced %#x", got)
	}
	got = evalLC(r, 1, out, 3, nil, nil)
	if want := []uint64{PackEvent(id, TransExit, 1)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("exit = %#x, want %#x", got, want)
	}
	// Re-arm: a second crossing is occurrence 2.
	got = evalLC(r, 1, in, 4, []ID{id}, nil)
	if want := []uint64{PackEvent(id, TransEnter, 2)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("re-enter = %#x, want %#x", got, want)
	}
}

func TestContinuousCooldownGate(t *testing.T) {
	r := NewRegistry()
	id, err := r.Install(Alarm{Scope: Private, Owner: 1, Kind: KindContinuous,
		Region: geom.R(0, 0, 100, 100), Cooldown: 10})
	if err != nil {
		t.Fatal(err)
	}
	in, out := geom.Pt(50, 50), geom.Pt(200, 200)
	evalLC(r, 1, in, 1, []ID{id}, nil)  // enter #1
	evalLC(r, 1, out, 5, []ID{id}, nil) // exit #1 at tick 5
	// Re-entry before lastTick+cooldown is suppressed...
	if got := evalLC(r, 1, in, 9, []ID{id}, nil); len(got) != 0 {
		t.Fatalf("cooldown violated: %#x", got)
	}
	// ...and the suppressed attempt must not have mutated the machine.
	got := evalLC(r, 1, in, 15, []ID{id}, nil)
	if want := []uint64{PackEvent(id, TransEnter, 2)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("post-cooldown enter = %#x, want %#x", got, want)
	}
}

func TestPairSymmetricOccurrences(t *testing.T) {
	r := NewRegistry()
	id, err := r.Install(Alarm{Scope: Shared, Owner: 2, Subscribers: []UserID{2},
		Kind: KindPair, Anchor: 3, Radius: 100})
	if err != nil {
		t.Fatal(err)
	}
	pos := map[UserID]geom.Point{2: geom.Pt(0, 0), 3: geom.Pt(500, 0)}
	partner := func(u UserID) (geom.Point, bool) { p, ok := pos[u]; return p, ok }

	// Out of range: nothing fires either side.
	if got := evalLC(r, 2, pos[2], 1, nil, partner); len(got) != 0 {
		t.Fatalf("out-of-range fired %#x", got)
	}
	// Unknown partner: conservatively no transition.
	if got := r.EvaluatePairsInto(3, pos[3], 1, noPartner, nil); len(got) != 0 {
		t.Fatalf("unknown partner fired %#x", got)
	}
	// User 2 moves into range; each endpoint's machine is driven
	// independently but the occurrence counters must agree.
	pos[2] = geom.Pt(450, 0)
	if got, want := evalLC(r, 2, pos[2], 2, nil, partner), []uint64{PackEvent(id, TransEnter, 1)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("endpoint 2 enter = %#x, want %#x", got, want)
	}
	if got, want := r.EvaluatePairsInto(3, pos[3], 2, partner, nil), []uint64{PackEvent(id, TransEnter, 1)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("endpoint 3 enter = %#x, want %#x", got, want)
	}
	if !r.PairInside(id, 2) || !r.PairInside(id, 3) {
		t.Fatal("both endpoints should be Inside")
	}
	// Partner walks away: both exit with matching occurrence.
	pos[3] = geom.Pt(900, 0)
	if got, want := r.EvaluatePairsInto(3, pos[3], 3, partner, nil), []uint64{PackEvent(id, TransExit, 1)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("endpoint 3 exit = %#x, want %#x", got, want)
	}
	if got, want := evalLC(r, 2, pos[2], 3, nil, partner), []uint64{PackEvent(id, TransExit, 1)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("endpoint 2 exit = %#x, want %#x", got, want)
	}
}

func TestCompositeThresholdAndTTL(t *testing.T) {
	r := NewRegistry()
	id, err := r.Install(Alarm{Scope: Private, Owner: 7, Kind: KindComposite,
		Factors: []Factor{
			{Region: geom.R(0, 0, 1000, 1000), Weight: 0.4},
			{Center: geom.Pt(500, 500), Radius: 100, Weight: 0.5},
		}, Threshold: 0.8, ExpiresAt: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Only the rect factor: severity 0.4 < 0.8.
	if got := evalLC(r, 7, geom.Pt(900, 900), 1, []ID{id}, nil); len(got) != 0 {
		t.Fatalf("sub-threshold fired %#x", got)
	}
	// Both factors: 0.9 >= 0.8, fires once with the quantized severity.
	got := evalLC(r, 7, geom.Pt(500, 500), 2, []ID{id}, nil)
	if want := []uint64{PackEvent(id, TransSeverity, QuantizeSeverity(0.9))}; !reflect.DeepEqual(got, want) {
		t.Fatalf("severity event = %#x, want %#x", got, want)
	}
	// Once per user: a second visit is silent.
	if got = evalLC(r, 7, geom.Pt(500, 500), 3, []ID{id}, nil); len(got) != 0 {
		t.Fatalf("composite re-fired %#x", got)
	}
	// A different subscriber would still fire — but past the TTL the
	// alarm is inert even before GC collects it.
	id2, err := r.Install(Alarm{Scope: Private, Owner: 8, Kind: KindComposite,
		Factors:   []Factor{{Center: geom.Pt(100, 100), Radius: 50, Weight: 1}},
		Threshold: 0.5, ExpiresAt: 50})
	if err != nil {
		t.Fatal(err)
	}
	if got = evalLC(r, 8, geom.Pt(100, 100), 50, []ID{id2}, nil); len(got) != 0 {
		t.Fatalf("expired composite fired %#x", got)
	}
	// ExpireDue reaps exactly the due alarms.
	due := r.ExpireDue(50)
	if len(due) != 2 {
		t.Fatalf("ExpireDue = %v, want both composites", due)
	}
	if _, ok := r.Get(id); ok {
		t.Fatal("expired composite still installed")
	}
}

func TestEventPackUnpack(t *testing.T) {
	ev := PackEvent(MaxLifecycleID, TransSeverity, QuantizeSeverity(1.5))
	if EventAlarm(ev) != MaxLifecycleID || EventTransition(ev) != TransSeverity {
		t.Fatalf("unpack mismatch: %#x", ev)
	}
	if EventPayload(ev) != 1500 {
		t.Fatalf("payload = %d, want 1500", EventPayload(ev))
	}
	// A raw one-shot firing is the degenerate packed event.
	if raw := PackEvent(7, TransFired, 0); raw != 7 {
		t.Fatalf("one-shot event = %#x, want 7", raw)
	}
}

func TestResetFiredRearmsLifecycle(t *testing.T) {
	r := NewRegistry()
	id, err := r.Install(Alarm{Scope: Private, Owner: 1, Kind: KindContinuous,
		Region: geom.R(0, 0, 100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	evalLC(r, 1, geom.Pt(50, 50), 1, []ID{id}, nil)
	if len(r.LifecycleStates()) == 0 {
		t.Fatal("no machine state after enter")
	}
	r.ResetFired()
	if got := r.LifecycleStates(); len(got) != 0 {
		t.Fatalf("ResetFired kept machines: %+v", got)
	}
	// The next entry is occurrence 1 again.
	got := evalLC(r, 1, geom.Pt(50, 50), 2, []ID{id}, nil)
	if want := []uint64{PackEvent(id, TransEnter, 1)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("post-reset enter = %#x, want %#x", got, want)
	}
}
