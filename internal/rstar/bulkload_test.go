package rstar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sabre-geo/sabre/internal/geom"
)

func TestBulkLoadEmpty(t *testing.T) {
	tr := BulkLoad(nil, DefaultMaxEntries)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if got := tr.SearchPoint(geom.Pt(0, 0), nil); len(got) != 0 {
		t.Errorf("query on empty bulk tree: %v", got)
	}
}

func TestBulkLoadMatchesBruteForce(t *testing.T) {
	for _, n := range []int{1, 5, 32, 33, 500, 3000} {
		rng := rand.New(rand.NewSource(int64(n)))
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{ID: uint64(i), Rect: randRect(rng, 10000, 300)}
		}
		tr := BulkLoad(items, DefaultMaxEntries)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		if err := tr.CheckStructure(); err != nil {
			t.Fatalf("n=%d: structure: %v", n, err)
		}
		for q := 0; q < 50; q++ {
			p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
			if !equalIDs(tr.SearchPoint(p, nil), bruteSearchPoint(items, p)) {
				t.Fatalf("n=%d: point query mismatch at %v", n, p)
			}
			w := randRect(rng, 10000, 2000)
			if !equalIDs(tr.SearchRect(w, nil), bruteSearchRect(items, w)) {
				t.Fatalf("n=%d: range query mismatch at %v", n, w)
			}
		}
	}
}

// TestBulkLoadMutable: a packed tree must accept inserts and deletes and
// stay correct.
func TestBulkLoadMutable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	items := make([]Item, 800)
	for i := range items {
		items[i] = Item{ID: uint64(i), Rect: randRect(rng, 5000, 200)}
	}
	tr := BulkLoad(items, 16)
	live := map[uint64]Item{}
	for _, it := range items {
		live[it.ID] = it
	}
	for i := 0; i < 300; i++ {
		it := Item{ID: uint64(1000 + i), Rect: randRect(rng, 5000, 200)}
		tr.Insert(it)
		live[it.ID] = it
	}
	for _, it := range items[:400] {
		if !tr.Delete(it) {
			t.Fatalf("delete %d failed", it.ID)
		}
		delete(live, it.ID)
	}
	all := make([]Item, 0, len(live))
	for _, it := range live {
		all = append(all, it)
	}
	for q := 0; q < 50; q++ {
		w := randRect(rng, 5000, 1000)
		if !equalIDs(tr.SearchRect(w, nil), bruteSearchRect(all, w)) {
			t.Fatalf("post-mutation query mismatch")
		}
	}
}

// TestBulkLoadShallower: packing yields equal-or-shallower trees than
// repeated insertion (its purpose).
func TestBulkLoadShallower(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := make([]Item, 5000)
	for i := range items {
		items[i] = Item{ID: uint64(i), Rect: randRect(rng, 31623, 400)}
	}
	packed := BulkLoad(items, DefaultMaxEntries)
	inserted := New(DefaultMaxEntries)
	for _, it := range items {
		inserted.Insert(it)
	}
	if packed.Height() > inserted.Height() {
		t.Errorf("packed height %d > inserted height %d", packed.Height(), inserted.Height())
	}
	// Query cost: packed should touch no more nodes than inserted on
	// average (allow slack; both prune well).
	packed.ResetStats()
	inserted.ResetStats()
	for q := 0; q < 500; q++ {
		p := geom.Pt(rng.Float64()*31623, rng.Float64()*31623)
		packed.SearchPoint(p, nil)
		inserted.SearchPoint(p, nil)
	}
	if float64(packed.NodeAccesses()) > 1.5*float64(inserted.NodeAccesses()) {
		t.Errorf("packed accesses %d vs inserted %d", packed.NodeAccesses(), inserted.NodeAccesses())
	}
}

// Property: for random item sets, bulk-loaded and insert-built trees
// answer identically.
func TestQuickBulkEquivalence(t *testing.T) {
	f := func(seed int64, count uint16) bool {
		n := int(count%400) + 1
		rng := rand.New(rand.NewSource(seed))
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{ID: uint64(i), Rect: randRect(rng, 2000, 150)}
		}
		packed := BulkLoad(items, 8)
		built := New(8)
		for _, it := range items {
			built.Insert(it)
		}
		for q := 0; q < 10; q++ {
			p := geom.Pt(rng.Float64()*2000, rng.Float64()*2000)
			if !equalIDs(packed.SearchPoint(p, nil), built.SearchPoint(p, nil)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBulkLoad10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := make([]Item, 10000)
	for i := range items {
		items[i] = Item{ID: uint64(i), Rect: randRect(rng, 31623, 500)}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		BulkLoad(items, DefaultMaxEntries)
	}
}
