// Command alarmserver runs the SABRE alarm server on TCP. It installs an
// optional random alarm workload at startup, accepts client connections
// speaking the length-prefixed wire protocol (see cmd/alarmclient), and
// prints the evaluation counters on shutdown (SIGINT/SIGTERM).
//
// With -data-dir the server is durable: every state change (alarm
// installs, client enrollment, session tokens, firings, acks) is
// written-ahead to a CRC-framed log with periodic snapshots, and the
// server recovers its exact observable state from disk after a crash.
//
// Usage:
//
//	alarmserver -addr :7700 -side 5000 -alarms 150 -public 0.1 -seed 1
//	alarmserver -addr :7700 -data-dir /var/lib/sabre -snapshot-every 1024
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/motion"
	"github.com/sabre-geo/sabre/internal/pyramid"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "alarmserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":7700", "listen address")
		side    = flag.Float64("side", 5000, "universe side length in metres")
		cellKM2 = flag.Float64("cell-km2", 2.5, "grid cell area in km²")
		height  = flag.Int("pyramid-height", 5, "PBSR pyramid height")
		nAlarms = flag.Int("alarms", 150, "random alarms to install at startup")
		public  = flag.Float64("public", 0.10, "fraction of startup alarms that are public")
		users   = flag.Int("users", 100, "user-id range for random private alarm owners")
		vmax    = flag.Float64("vmax", 34, "system max client speed in m/s (safe periods)")
		seed    = flag.Int64("seed", 1, "alarm generation seed")
		quiet   = flag.Bool("quiet", false, "suppress per-connection logging")
		snap    = flag.String("snapshot", "", "legacy alarm-table snapshot file (ignored when -data-dir is set)")
		idle    = flag.Duration("idle-timeout", server.DefaultIdleTimeout, "reap connections silent for this long (0 disables); session state survives for a token resume")

		dataDir   = flag.String("data-dir", "", "durable state directory (WAL + snapshots); empty runs memory-only")
		snapEvery = flag.Int("snapshot-every", 1024, "checkpoint the durable state every N log appends (0 disables automatic checkpoints)")
		fsync     = flag.Bool("fsync", true, "fsync the WAL on every append (power-failure durability; off still survives process crashes)")
		sessTTL   = flag.Duration("session-ttl", 0, "expire reliable sessions idle for this long (0 disables expiry)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "alarmserver: ", log.LstdFlags)
	if *quiet {
		logger = nil
	}
	model, err := motion.New(1, 32)
	if err != nil {
		return err
	}
	universe := geom.Rect{MinX: -100, MinY: -100, MaxX: *side + 100, MaxY: *side + 100}
	cfg := server.Config{
		Universe:                universe,
		CellAreaM2:              *cellKM2 * 1e6,
		Model:                   model,
		PyramidParams:           pyramid.Params{U: 3, V: 3, Height: *height, MaxBits: 2048},
		MaxSpeed:                *vmax,
		TickSeconds:             1,
		PrecomputePublicBitmaps: true,
		Costs:                   metrics.DefaultCosts(),
	}

	var eng *server.Engine
	if *dataDir != "" {
		st, state, info, err := store.Open(*dataDir, store.Options{
			Fsync:         *fsync,
			SnapshotEvery: *snapEvery,
		})
		if err != nil {
			return fmt.Errorf("open store %s: %w", *dataDir, err)
		}
		eng, err = server.NewDurable(cfg, st, state, info)
		if err != nil {
			return err
		}
		if info.Replayed > 0 || info.TruncatedBytes > 0 {
			fmt.Printf("recovered generation %d: %d log records replayed, %d torn bytes discarded\n",
				st.Gen(), info.Replayed, info.TruncatedBytes)
		}
		if eng.Registry().Len() == 0 && *nAlarms > 0 {
			if err := installRandomAlarms(eng, *nAlarms, *public, *users, *side, *seed); err != nil {
				return err
			}
		} else {
			fmt.Printf("recovered %d alarms from %s\n", eng.Registry().Len(), *dataDir)
		}
	} else {
		eng, err = server.New(cfg)
		if err != nil {
			return err
		}
		if *snap != "" {
			if f, err := os.Open(*snap); err == nil {
				restored, lerr := alarm.LoadRegistry(f)
				f.Close()
				if lerr != nil {
					return fmt.Errorf("load snapshot %s: %w", *snap, lerr)
				}
				eng.ReplaceRegistry(restored)
				fmt.Printf("restored %d alarms from %s\n", restored.Len(), *snap)
			} else if !os.IsNotExist(err) {
				return err
			} else if err := installRandomAlarms(eng, *nAlarms, *public, *users, *side, *seed); err != nil {
				return err
			}
		} else if err := installRandomAlarms(eng, *nAlarms, *public, *users, *side, *seed); err != nil {
			return err
		}
	}

	srv, err := server.NewTCPServerIdle(eng, *addr, logger, *idle)
	if err != nil {
		return err
	}
	fmt.Printf("alarmserver listening on %s (universe %.0f m, %d alarms, cell %.2f km²)\n",
		srv.Addr(), *side, eng.Registry().Len(), *cellKM2)

	// Session expiry runs off the wall clock; each sweep reaps reliable
	// sessions idle past the TTL and logs their ExpireRec durably.
	stopExpiry := make(chan struct{})
	if *sessTTL > 0 {
		go func() {
			t := time.NewTicker(*sessTTL / 4)
			defer t.Stop()
			for {
				select {
				case <-stopExpiry:
					return
				case <-t.C:
					if n, err := eng.ExpireSessions(*sessTTL); err != nil {
						fmt.Fprintf(os.Stderr, "alarmserver: session expiry: %v\n", err)
					} else if n > 0 {
						fmt.Printf("expired %d idle sessions\n", n)
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()
	select {
	case <-sig:
		close(stopExpiry)
		srv.Close()
		<-errc
	case err := <-errc:
		close(stopExpiry)
		return err
	}

	if st := eng.Store(); st != nil {
		// Clean shutdown: fold the log into a final snapshot so the next
		// boot recovers without replay.
		if err := st.Checkpoint(); err != nil {
			return fmt.Errorf("shutdown checkpoint: %w", err)
		}
		if err := st.Close(); err != nil {
			return err
		}
		fmt.Printf("checkpointed durable state to %s (generation %d)\n", *dataDir, st.Gen())
	} else if *snap != "" {
		f, err := os.Create(*snap)
		if err != nil {
			return err
		}
		if err := eng.Registry().Snapshot(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved alarm table to %s\n", *snap)
	}

	m := eng.Metrics().Snapshot()
	fmt.Printf("\n--- session counters ---\n")
	fmt.Printf("uplink:    %d msgs, %d bytes\n", m.UplinkMessages, m.UplinkBytes)
	fmt.Printf("downlink:  %d msgs, %d bytes\n", m.DownlinkMessages, m.DownlinkBytes)
	fmt.Printf("triggers:  %d\n", m.AlarmsTriggered)
	fmt.Printf("sessions:  %d opened, %d resumed, %d heartbeats, %d expired\n",
		m.SessionsOpened, m.SessionsResumed, m.Heartbeats, m.SessionsExpired)
	fmt.Printf("recovery:  %d duplicate updates, %d firing redeliveries, %d evictions\n",
		m.RedeliveredUpdates, m.FiredRedeliveries, m.FiredEvictions)
	if eng.Store() != nil {
		fmt.Printf("durability: %d appends (%d bytes), %d fsyncs, %d snapshots, %d records replayed at boot\n",
			m.WALAppends, m.WALBytes, m.WALFsyncs, m.Snapshots, m.RecoveredRecords)
	}
	fmt.Printf("cpu model: alarm processing %.3fs, safe region %.3fs\n",
		m.AlarmProcessingSeconds(), m.SafeRegionSeconds())
	return nil
}

// installRandomAlarms seeds the registry with a workload mirroring the
// simulation's composition (public fraction, private:shared 2:1). On a
// durable engine every alarm is logged before the function returns.
func installRandomAlarms(eng *server.Engine, n int, publicFrac float64, users int, side float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	numPublic := int(float64(n) * publicFrac)
	numShared := (n - numPublic) / 3
	batch := make([]alarm.Alarm, 0, n)
	for i := 0; i < n; i++ {
		a := alarm.Alarm{
			Owner: alarm.UserID(rng.Intn(users) + 1),
			Region: geom.RectAround(
				geom.Pt(rng.Float64()*side, rng.Float64()*side),
				100+rng.Float64()*300,
			),
		}
		switch {
		case i < numPublic:
			a.Scope = alarm.Public
		case i < numPublic+numShared:
			a.Scope = alarm.Shared
			a.Subscribers = []alarm.UserID{a.Owner, alarm.UserID(rng.Intn(users) + 1)}
		default:
			a.Scope = alarm.Private
		}
		batch = append(batch, a)
	}
	_, err := eng.InstallAlarms(batch)
	return err
}
