package metrics

import "sync/atomic"

// Cluster accumulates router-level counters for a sharded deployment:
// work the router does on top of the per-shard Server counters. All
// fields are atomics so the TCP router can account from concurrent
// connection goroutines.
type Cluster struct {
	routedUpdates              atomic.Uint64
	routedBatches              atomic.Uint64
	handoffs                   atomic.Uint64
	handoffsDeferred           atomic.Uint64
	duplicateFiringsSuppressed atomic.Uint64
	redirectsSent              atomic.Uint64
	shardCrashes               atomic.Uint64
	shardRecoveries            atomic.Uint64
}

// ClusterSnapshot is a point-in-time copy of the cluster counters. The
// json tags shape the alarmserver -metrics-addr HTTP payload.
type ClusterSnapshot struct {
	// RoutedUpdates counts position updates forwarded to an owning shard.
	RoutedUpdates uint64 `json:"routed_updates"`
	// RoutedBatches counts UpdateBatch frames routed; the updates they
	// carried are included in RoutedUpdates.
	RoutedBatches uint64 `json:"routed_batches"`
	// Handoffs counts sessions moved between shards when a client crossed
	// a partition boundary.
	Handoffs uint64 `json:"handoffs"`
	// HandoffsDeferred counts updates whose handoff had to wait because
	// the old or new shard was down.
	HandoffsDeferred uint64 `json:"handoffs_deferred"`
	// DuplicateFiringsSuppressed counts (user, alarm) firings stripped by
	// the router because another shard already delivered the pair.
	DuplicateFiringsSuppressed uint64 `json:"duplicate_firings_suppressed"`
	// RedirectsSent counts wire Redirect frames emitted by per-shard
	// listeners.
	RedirectsSent uint64 `json:"redirects_sent"`
	// ShardCrashes and ShardRecoveries count fault-injection lifecycle
	// events on individual shards.
	ShardCrashes    uint64 `json:"shard_crashes"`
	ShardRecoveries uint64 `json:"shard_recoveries"`
}

// Snapshot returns a copy of every cluster counter.
func (c *Cluster) Snapshot() ClusterSnapshot {
	return ClusterSnapshot{
		RoutedUpdates:              c.routedUpdates.Load(),
		RoutedBatches:              c.routedBatches.Load(),
		Handoffs:                   c.handoffs.Load(),
		HandoffsDeferred:           c.handoffsDeferred.Load(),
		DuplicateFiringsSuppressed: c.duplicateFiringsSuppressed.Load(),
		RedirectsSent:              c.redirectsSent.Load(),
		ShardCrashes:               c.shardCrashes.Load(),
		ShardRecoveries:            c.shardRecoveries.Load(),
	}
}

// AddRoutedUpdate records one position update forwarded to its shard.
func (c *Cluster) AddRoutedUpdate() { c.routedUpdates.Add(1) }

// AddRoutedBatch records one UpdateBatch frame routed, carrying n
// updates. RoutedUpdates advances by n so totals stay comparable with
// unbatched runs.
func (c *Cluster) AddRoutedBatch(n int) {
	c.routedUpdates.Add(uint64(n))
	c.routedBatches.Add(1)
}

// AddHandoff records one completed cross-shard session handoff.
func (c *Cluster) AddHandoff() { c.handoffs.Add(1) }

// AddHandoffDeferred records a handoff postponed because a shard was down.
func (c *Cluster) AddHandoffDeferred() { c.handoffsDeferred.Add(1) }

// AddDuplicateFiringsSuppressed records firings stripped by router dedup.
func (c *Cluster) AddDuplicateFiringsSuppressed(n uint64) {
	c.duplicateFiringsSuppressed.Add(n)
}

// AddRedirectSent records one wire Redirect frame sent to a client.
func (c *Cluster) AddRedirectSent() { c.redirectsSent.Add(1) }

// AddShardCrash records one injected shard crash.
func (c *Cluster) AddShardCrash() { c.shardCrashes.Add(1) }

// AddShardRecovery records one shard recovered from its durable store.
func (c *Cluster) AddShardRecovery() { c.shardRecoveries.Add(1) }
