// Package cluster distributes the SABRE alarm server across N
// independent engines, each owning one rectangular partition of the
// service area — the paper's "distributed processing" read literally:
// spatial alarms are processed by the server responsible for the space
// they occupy. The package provides the versioned partition map (this
// file: a KD-style binary split tree that splits hot shards and merges
// cold ones at runtime), its serialization and durable map file
// (partmap.go), the cluster lifecycle (cluster.go: per-shard engines
// and durable stores, crash/recover, split/merge transitions), the load
// balancer driving those transitions (balance.go), the message router
// with cross-shard session handoff and firing dedup (router.go), and a
// per-shard TCP front end that redirects clients between shards
// (tcp.go). See DESIGN.md "Clustering" and "Dynamic repartitioning" for
// the soundness arguments and PROTOCOL.md "Redirect and handoff" for
// the wire rules.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"github.com/sabre-geo/sabre/internal/geom"
)

// PartitionMap is the versioned spatial split of the universe: a binary
// KD-style tree whose leaves each carry one shard ID. Every mutation
// (Split, Merge, DrainDone) returns a fresh map with Epoch+1 and leaves
// the receiver untouched, so the cluster publishes maps through one
// atomic pointer and Locate stays lock-free on the hot path.
//
// Boundary convention, shared with the engine grid: a point exactly on
// an interior split belongs to the higher side. Leaf rectangles tile
// the universe exactly — each split produces [min, split] and
// [split, max] children — so no floating-point gap or overlap can open
// between Rect and Locate.
//
// Shard IDs are allocated monotonically and never reused: a merged-away
// shard's ID (and its on-disk directory) stays retired forever, which
// keeps recovery from ever attaching a stale store to a new rectangle.
type PartitionMap struct {
	epoch     uint64
	universe  geom.Rect
	root      *pnode
	nextShard int
	draining  []Drain
	leaves    map[int]*pnode
}

// Drain records one in-flight merge migration: sessions still resident
// on retired shard Shard are being moved to live shard Target. The
// entry is part of the durable map file so a crash mid-drain resumes
// (Rect reboots the retired shard's engine to finish the export).
type Drain struct {
	Shard  int
	Target int
	Rect   geom.Rect
}

// pnode is one tree node. Nodes are immutable once published; Split and
// Merge copy the path from the root.
type pnode struct {
	rect geom.Rect
	// shard is the owning shard for a leaf, -1 for an interior node.
	shard int
	// vertical interior nodes split on X (lo: x < split, hi: x >= split);
	// horizontal ones split on Y.
	vertical bool
	split    float64
	lo, hi   *pnode
}

func (n *pnode) leaf() bool { return n.shard >= 0 }

// NewPartitionMap splits universe into n partitions using the most
// square-ish cols×rows factorization of n (ties broken toward more
// columns for wide universes, more rows for tall ones). Epoch 1.
func NewPartitionMap(universe geom.Rect, n int) (*PartitionMap, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 shard, got %d", n)
	}
	bestCols, bestScore := 0, 0.0
	for cols := 1; cols <= n; cols++ {
		if n%cols != 0 {
			continue
		}
		rows := n / cols
		cw := universe.Width() / float64(cols)
		ch := universe.Height() / float64(rows)
		score := cw / ch
		if score < 1 {
			score = 1 / score
		}
		if bestCols == 0 || score < bestScore {
			bestCols, bestScore = cols, score
		}
	}
	return NewPartitionMapGrid(universe, bestCols, n/bestCols)
}

// NewPartitionMapGrid builds the epoch-1 map for an explicit cols×rows
// grid, numbered row-major from the bottom-left — the exact partitions
// the static seed partitioner produced, expressed as a split tree.
func NewPartitionMapGrid(universe geom.Rect, cols, rows int) (*PartitionMap, error) {
	if cols < 1 || rows < 1 {
		return nil, fmt.Errorf("cluster: invalid partition grid %dx%d", cols, rows)
	}
	if universe.Empty() {
		return nil, fmt.Errorf("cluster: empty universe %v", universe)
	}
	boundaryX := func(c int) float64 {
		return universe.MinX + universe.Width()*float64(c)/float64(cols)
	}
	boundaryY := func(r int) float64 {
		return universe.MinY + universe.Height()*float64(r)/float64(rows)
	}
	var buildRows func(col, r0, r1 int, rect geom.Rect) *pnode
	buildRows = func(col, r0, r1 int, rect geom.Rect) *pnode {
		if r1-r0 == 1 {
			return &pnode{rect: rect, shard: r0*cols + col}
		}
		rm := (r0 + r1) / 2
		split := boundaryY(rm)
		lo, hi := rect, rect
		lo.MaxY, hi.MinY = split, split
		return &pnode{
			rect: rect, shard: -1, vertical: false, split: split,
			lo: buildRows(col, r0, rm, lo), hi: buildRows(col, rm, r1, hi),
		}
	}
	var buildCols func(c0, c1 int, rect geom.Rect) *pnode
	buildCols = func(c0, c1 int, rect geom.Rect) *pnode {
		if c1-c0 == 1 {
			return buildRows(c0, 0, rows, rect)
		}
		cm := (c0 + c1) / 2
		split := boundaryX(cm)
		lo, hi := rect, rect
		lo.MaxX, hi.MinX = split, split
		return &pnode{
			rect: rect, shard: -1, vertical: true, split: split,
			lo: buildCols(c0, cm, lo), hi: buildCols(cm, c1, hi),
		}
	}
	pm := &PartitionMap{
		epoch:     1,
		universe:  universe,
		root:      buildCols(0, cols, universe),
		nextShard: cols * rows,
	}
	pm.reindex()
	return pm, nil
}

// reindex rebuilds the shard→leaf lookup after a structural change.
func (p *PartitionMap) reindex() {
	p.leaves = make(map[int]*pnode)
	var walk func(n *pnode)
	walk = func(n *pnode) {
		if n.leaf() {
			p.leaves[n.shard] = n
			return
		}
		walk(n.lo)
		walk(n.hi)
	}
	walk(p.root)
}

// Epoch returns the map's version number; every transition increments it.
func (p *PartitionMap) Epoch() uint64 { return p.epoch }

// Universe returns the partitioned rectangle.
func (p *PartitionMap) Universe() geom.Rect { return p.universe }

// N returns the number of live partitions (leaves).
func (p *PartitionMap) N() int { return len(p.leaves) }

// NextShard returns the next shard ID the map would allocate; every ID
// below it has existed at some epoch.
func (p *PartitionMap) NextShard() int { return p.nextShard }

// Shards returns the live shard IDs in ascending order.
func (p *PartitionMap) Shards() []int {
	out := make([]int, 0, len(p.leaves))
	for s := range p.leaves {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Has reports whether shard is a live leaf of this map.
func (p *PartitionMap) Has(shard int) bool {
	_, ok := p.leaves[shard]
	return ok
}

// RectOf returns shard's partition rectangle.
func (p *PartitionMap) RectOf(shard int) (geom.Rect, bool) {
	n, ok := p.leaves[shard]
	if !ok {
		return geom.Rect{}, false
	}
	return n.rect, true
}

// Draining returns a copy of the in-flight merge migrations.
func (p *PartitionMap) Draining() []Drain {
	return append([]Drain(nil), p.draining...)
}

// Locate returns the shard owning pt and whether pt lay outside the
// universe and was clamped to its nearest edge partition. Boundary-exact
// points (including the universe's max edges) are inside, not clamped —
// the engine accepts them, so the router must not count them as strays.
func (p *PartitionMap) Locate(pt geom.Point) (shard int, clamped bool) {
	clamped = pt.X < p.universe.MinX || pt.X > p.universe.MaxX ||
		pt.Y < p.universe.MinY || pt.Y > p.universe.MaxY
	n := p.root
	for !n.leaf() {
		v := pt.X
		if !n.vertical {
			v = pt.Y
		}
		if v >= n.split {
			n = n.hi
		} else {
			n = n.lo
		}
	}
	return n.shard, clamped
}

// Overlapping returns the live shards whose rectangle intersects r, in
// ascending order.
func (p *PartitionMap) Overlapping(r geom.Rect) []int {
	var out []int
	var walk func(n *pnode)
	walk = func(n *pnode) {
		if !n.rect.Intersects(r) {
			return
		}
		if n.leaf() {
			out = append(out, n.shard)
			return
		}
		walk(n.lo)
		walk(n.hi)
	}
	walk(p.root)
	sort.Ints(out)
	return out
}

// Split divides shard's rectangle at the midpoint of its longer axis,
// returning the successor map (Epoch+1) and the newly allocated shard ID
// owning the upper half; shard keeps the lower half.
func (p *PartitionMap) Split(shard int) (*PartitionMap, int, error) {
	old, ok := p.leaves[shard]
	if !ok {
		return nil, 0, fmt.Errorf("cluster: split: shard %d is not a live partition", shard)
	}
	r := old.rect
	if r.Width() >= r.Height() {
		return p.SplitAt(shard, r.MinX+r.Width()/2)
	}
	return p.SplitAt(shard, r.MinY+r.Height()/2)
}

// SplitAt divides shard's rectangle at the given coordinate along its
// longer axis (x for wide rectangles, y for tall). The cut must be
// strictly interior. Cluster.SplitShard uses it to cut at the median of
// the shard's resident session positions, so a split of a skewed shard
// balances population, not just area.
func (p *PartitionMap) SplitAt(shard int, at float64) (*PartitionMap, int, error) {
	old, ok := p.leaves[shard]
	if !ok {
		return nil, 0, fmt.Errorf("cluster: split: shard %d is not a live partition", shard)
	}
	r := old.rect
	vertical := r.Width() >= r.Height()
	split := at
	if math.IsNaN(split) {
		return nil, 0, fmt.Errorf("cluster: split: shard %d cut at NaN", shard)
	}
	if vertical {
		if !(split > r.MinX && split < r.MaxX) {
			return nil, 0, fmt.Errorf("cluster: split: shard %d cut x=%v outside (%v, %v)", shard, split, r.MinX, r.MaxX)
		}
	} else {
		if !(split > r.MinY && split < r.MaxY) {
			return nil, 0, fmt.Errorf("cluster: split: shard %d cut y=%v outside (%v, %v)", shard, split, r.MinY, r.MaxY)
		}
	}
	newShard := p.nextShard
	lo, hi := r, r
	if vertical {
		lo.MaxX, hi.MinX = split, split
	} else {
		lo.MaxY, hi.MinY = split, split
	}
	replacement := &pnode{
		rect: r, shard: -1, vertical: vertical, split: split,
		lo: &pnode{rect: lo, shard: shard},
		hi: &pnode{rect: hi, shard: newShard},
	}
	next := p.withReplacedLeaf(shard, replacement)
	next.nextShard = p.nextShard + 1
	return next, newShard, nil
}

// Merge collapses the sibling leaves into and from back into their
// parent rectangle, owned by into. The successor map (Epoch+1) carries a
// Drain entry for from: its sessions must migrate to into before the
// retired shard's engine can shut down (Cluster.MergeShards runs that
// drain; DrainDone clears the entry).
func (p *PartitionMap) Merge(into, from int) (*PartitionMap, error) {
	if _, ok := p.leaves[into]; !ok {
		return nil, fmt.Errorf("cluster: merge: shard %d is not a live partition", into)
	}
	b, ok := p.leaves[from]
	if !ok {
		return nil, fmt.Errorf("cluster: merge: shard %d is not a live partition", from)
	}
	parent := p.parentOf(into)
	if parent == nil || parent != p.parentOf(from) {
		return nil, fmt.Errorf("cluster: merge: shards %d and %d are not sibling partitions", into, from)
	}
	replacement := &pnode{rect: parent.rect, shard: into}
	// Replace the parent (found by either child) with the merged leaf.
	next := p.withReplacedNode(parent, replacement)
	next.draining = append(next.draining, Drain{Shard: from, Target: into, Rect: b.rect})
	return next, nil
}

// BumpEpoch returns a successor map identical in every leaf but with
// Epoch+1 — published on follower promotion so session exports and
// Redirects stamped by the deposed primary's epoch are recognizably
// stale.
func (p *PartitionMap) BumpEpoch() *PartitionMap {
	return p.shallowClone()
}

// DrainDone returns the successor map (Epoch+1) with shard's drain
// entry removed — the retired shard has no sessions left.
func (p *PartitionMap) DrainDone(shard int) (*PartitionMap, error) {
	idx := -1
	for i, d := range p.draining {
		if d.Shard == shard {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("cluster: no drain in flight for shard %d", shard)
	}
	next := p.shallowClone()
	next.draining = append(append([]Drain(nil), p.draining[:idx]...), p.draining[idx+1:]...)
	return next, nil
}

// MergeablePairs returns every (into, from) sibling-leaf pair, ascending
// ID first — the candidates a cold-merge may collapse.
func (p *PartitionMap) MergeablePairs() [][2]int {
	var out [][2]int
	var walk func(n *pnode)
	walk = func(n *pnode) {
		if n.leaf() {
			return
		}
		if n.lo.leaf() && n.hi.leaf() {
			a, b := n.lo.shard, n.hi.shard
			if a > b {
				a, b = b, a
			}
			out = append(out, [2]int{a, b})
			return
		}
		walk(n.lo)
		walk(n.hi)
	}
	walk(p.root)
	return out
}

// parentOf returns the interior node whose direct child is shard's
// leaf, or nil when the leaf is the root.
func (p *PartitionMap) parentOf(shard int) *pnode {
	leaf := p.leaves[shard]
	var find func(n *pnode) *pnode
	find = func(n *pnode) *pnode {
		if n.leaf() {
			return nil
		}
		if n.lo == leaf || n.hi == leaf {
			return n
		}
		v := leaf.rect.MinX
		lo := leaf.rect.MinX < n.split
		if !n.vertical {
			v = leaf.rect.MinY
			lo = v < n.split
		}
		if lo {
			return find(n.lo)
		}
		return find(n.hi)
	}
	return find(p.root)
}

// withReplacedLeaf path-copies the tree, swapping shard's leaf for repl.
func (p *PartitionMap) withReplacedLeaf(shard int, repl *pnode) *PartitionMap {
	return p.withReplacedNode(p.leaves[shard], repl)
}

// withReplacedNode path-copies the tree, swapping target for repl, and
// returns the successor map with Epoch+1.
func (p *PartitionMap) withReplacedNode(target, repl *pnode) *PartitionMap {
	var rebuild func(n *pnode) *pnode
	rebuild = func(n *pnode) *pnode {
		if n == target {
			return repl
		}
		if n.leaf() {
			return n
		}
		lo, hi := rebuild(n.lo), rebuild(n.hi)
		if lo == n.lo && hi == n.hi {
			return n
		}
		cp := *n
		cp.lo, cp.hi = lo, hi
		return &cp
	}
	next := p.shallowClone()
	next.root = rebuild(p.root)
	next.reindex()
	return next
}

// shallowClone copies the map with Epoch+1, sharing the tree.
func (p *PartitionMap) shallowClone() *PartitionMap {
	return &PartitionMap{
		epoch:     p.epoch + 1,
		universe:  p.universe,
		root:      p.root,
		nextShard: p.nextShard,
		draining:  p.draining,
		leaves:    p.leaves,
	}
}

// validate checks the structural invariants the codec and the cluster
// rely on: finite geometry, splits strictly interior, unique live shard
// IDs below nextShard, and drains that reference a retired shard and a
// live target. Decode calls it on every accepted frame.
func (p *PartitionMap) validate() error {
	if p.epoch == 0 {
		return fmt.Errorf("cluster: partition map epoch 0")
	}
	if !finiteRect(p.universe) || p.universe.Empty() {
		return fmt.Errorf("cluster: bad universe %v", p.universe)
	}
	if p.nextShard < 1 {
		return fmt.Errorf("cluster: bad shard allocator %d", p.nextShard)
	}
	seen := make(map[int]bool)
	var walk func(n *pnode, depth int) error
	walk = func(n *pnode, depth int) error {
		if depth > maxPartitionDepth {
			return fmt.Errorf("cluster: partition tree deeper than %d", maxPartitionDepth)
		}
		if n.leaf() {
			if n.shard >= p.nextShard {
				return fmt.Errorf("cluster: leaf shard %d beyond allocator %d", n.shard, p.nextShard)
			}
			if seen[n.shard] {
				return fmt.Errorf("cluster: shard %d owns two partitions", n.shard)
			}
			seen[n.shard] = true
			return nil
		}
		min, max := n.rect.MinX, n.rect.MaxX
		if !n.vertical {
			min, max = n.rect.MinY, n.rect.MaxY
		}
		if !(n.split > min && n.split < max) || math.IsNaN(n.split) {
			return fmt.Errorf("cluster: split %v outside (%v, %v)", n.split, min, max)
		}
		if err := walk(n.lo, depth+1); err != nil {
			return err
		}
		return walk(n.hi, depth+1)
	}
	if err := walk(p.root, 0); err != nil {
		return err
	}
	for _, d := range p.draining {
		if d.Shard < 0 || d.Shard >= p.nextShard || seen[d.Shard] {
			return fmt.Errorf("cluster: drain source %d is not a retired shard", d.Shard)
		}
		if !seen[d.Target] {
			return fmt.Errorf("cluster: drain target %d is not a live partition", d.Target)
		}
		if !finiteRect(d.Rect) || d.Rect.Empty() {
			return fmt.Errorf("cluster: drain %d has bad rect %v", d.Shard, d.Rect)
		}
	}
	return nil
}

func finiteRect(r geom.Rect) bool {
	for _, v := range [4]float64{r.MinX, r.MinY, r.MaxX, r.MaxY} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
