// Command alarmclient connects a mobile client to a running alarmserver
// and replays a mobility trace (produced by cmd/tracegen) through the
// fault-tolerant session layer: it enrolls with Hello, heartbeats on idle
// links, reconnects with exponential backoff when the server goes away,
// resumes its session by token, and queues reports while offline so no
// alarm firing is lost or duplicated. It prints each alarm the server
// delivers and, at the end, the client's message and energy statistics —
// a live demonstration of how few reports safe region monitoring needs.
//
// Usage:
//
//	tracegen -vehicles 5 -ticks 600 -out trace.csv
//	alarmserver &
//	alarmclient -addr localhost:7700 -user 1 -strategy pbsr -trace trace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/sabre-geo/sabre/internal/client"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/trace"
	"github.com/sabre-geo/sabre/internal/transport"
	"github.com/sabre-geo/sabre/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "alarmclient:", err)
		os.Exit(1)
	}
}

var strategies = map[string]wire.Strategy{
	"periodic": wire.StrategyPeriodic,
	"sp":       wire.StrategySafePeriod,
	"mwpsr":    wire.StrategyMWPSR,
	"pbsr":     wire.StrategyPBSR,
	"opt":      wire.StrategyOptimal,
}

func run() error {
	var (
		addr      = flag.String("addr", "localhost:7700", "server address")
		user      = flag.Uint64("user", 1, "user id (must match a trace user)")
		strat     = flag.String("strategy", "mwpsr", "processing strategy: periodic, sp, mwpsr, pbsr, opt")
		height    = flag.Int("max-height", 5, "PBSR: maximum pyramid height this device decodes")
		tracePath = flag.String("trace", "", "trace file from tracegen (csv or bin; required)")
		tickMS    = flag.Int("tick-ms", 10, "wall-clock milliseconds per trace tick")
		realtime  = flag.Bool("realtime", false, "replay at 1 tick per second instead of -tick-ms")

		heartbeat = flag.Int("heartbeat-every", 8, "idle ticks between heartbeats")
		deadAfter = flag.Int("dead-after", 25, "ticks without any inbound message before the link is declared dead")
		resend    = flag.Int("resend-every", 5, "ticks before an unacknowledged report is resent")
		backoff   = flag.Int("backoff-max", 16, "maximum reconnect backoff in ticks")
		maxQueue  = flag.Int("max-queue", 512, "offline report queue bound (oldest evicted)")
		jitter    = flag.Int64("jitter-seed", 0, "reconnect jitter seed (0 derives from the user id)")
		batch     = flag.Bool("batch", false, "coalesce each tick's reports (fresh + resends) into one UpdateBatch frame")
	)
	flag.Parse()
	strategy, ok := strategies[strings.ToLower(*strat)]
	if !ok {
		return fmt.Errorf("unknown strategy %q", *strat)
	}
	if *tracePath == "" {
		return fmt.Errorf("-trace is required (generate one with tracegen)")
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	path, err := trace.ReadUserPath(f, *user)
	f.Close()
	if err != nil {
		return err
	}
	if len(path) == 0 {
		return fmt.Errorf("trace has no positions for user %d", *user)
	}

	tickDur := time.Duration(*tickMS) * time.Millisecond
	if *realtime {
		tickDur = time.Second
	}
	seed := *jitter
	if seed == 0 {
		seed = int64(*user)
	}
	// The read deadline must outlive the heartbeat interval so only a
	// truly dead link times out.
	readTimeout := time.Duration(*deadAfter) * tickDur * 2
	dial := func() (transport.Conn, error) {
		return transport.DialDeadline(*addr, 3*time.Second, readTimeout, 10*time.Second)
	}

	met := &metrics.Client{}
	cl := client.New(*user, strategy, met)
	sess := client.NewSession(cl, dial, client.SessionConfig{
		MaxHeight:      uint8(*height),
		HeartbeatEvery: *heartbeat,
		DeadAfterTicks: *deadAfter,
		ResendEvery:    *resend,
		BackoffMax:     *backoff,
		MaxQueue:       *maxQueue,
		JitterSeed:     seed,
		Batch:          *batch,
	}, met)
	// Against a sharded alarmserver the owning shard can change mid-trace;
	// DialTo follows the wire Redirect to the shard named in the frame.
	sess.DialTo = func(addr string) (transport.Conn, error) {
		return transport.DialDeadline(addr, 3*time.Second, readTimeout, 10*time.Second)
	}

	fmt.Printf("user %d (%s) replaying %d ticks against %s\n", *user, strategy, len(path), *addr)
	start := time.Now()
	curTick := 0
	sess.OnFired = func(ids []uint64) {
		pos := path[minInt(curTick, len(path)-1)]
		for _, id := range ids {
			fmt.Printf("tick %4d at (%.0f, %.0f): ALARM %d fired\n", curTick, pos.X, pos.Y, id)
		}
	}
	for tick, pos := range path {
		if tick > 0 {
			time.Sleep(tickDur)
		}
		curTick = tick
		sess.Step(tick, pos)
	}
	// Drain: keep the session alive until queued reports and pending acks
	// settle, so a firing in flight at the last tick still lands.
	for tick := len(path); tick < len(path)+4**deadAfter; tick++ {
		if sess.QueueLen() == 0 && sess.Connected() {
			break
		}
		time.Sleep(tickDur)
		curTick = tick
		sess.Quiesce(tick)
	}
	if qs := sess.QueueLen(); qs > 0 {
		fmt.Printf("warning: %d reports never confirmed by the server\n", qs)
	}

	fmt.Printf("\ndone in %v: %d of %d ticks reported (%.1f%%), %d containment checks, %.2f mWh\n",
		time.Since(start).Round(time.Millisecond),
		met.MessagesSent, len(path),
		100*float64(met.MessagesSent)/float64(len(path)),
		met.ContainmentChecks,
		met.Energy(metrics.DefaultEnergy()))
	fmt.Printf("session: %d connects, resumed=%v, %d redirects, %d heartbeats, %d report redeliveries, %d reports dropped\n",
		met.Reconnects, sess.Resumed(), met.Redirects, met.HeartbeatsSent, met.RedeliveredReports, met.DroppedReports)
	if met.BatchesSent > 0 {
		fmt.Printf("batching: %d frames carrying %d reports (avg %.2f reports/frame)\n",
			met.BatchesSent, met.BatchedReports, float64(met.BatchedReports)/float64(met.BatchesSent))
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
