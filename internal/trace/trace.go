// Package trace reads and writes mobility traces — the (tick, user, x, y)
// position streams produced by cmd/tracegen and replayed by
// cmd/alarmclient.
//
// Two interchangeable formats:
//
//   - CSV ("tick,user,x,y" with a header line), greppable and
//     spreadsheet-friendly;
//   - a compact binary format ("SBTR" magic, little-endian, one 16-byte
//     record per fix: tick u32, user u32, x and y as signed millimetres
//     i32) that is ~40% smaller and an order of magnitude faster to parse
//     — the difference at the paper's 36 M-fix scale is a sub-600 MB file
//     and seconds instead of minutes of parsing. Millimetre quantization
//     matches the CSV's three decimals.
//
// Readers sniff the format from the first bytes, so consumers never need
// a format flag.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/sabre-geo/sabre/internal/geom"
)

// Fix is one position sample.
type Fix struct {
	Tick int
	User uint64
	Pos  geom.Point
}

// binaryMagic starts every binary trace file.
var binaryMagic = [4]byte{'S', 'B', 'T', 'R'}

const binaryVersion = 1

// ErrBadFormat reports an unrecognized or corrupt trace stream.
var ErrBadFormat = errors.New("trace: unrecognized or corrupt trace")

// Writer emits fixes in one of the two formats.
type Writer struct {
	w      *bufio.Writer
	binary bool
	headed bool
}

// NewCSVWriter returns a writer producing the CSV format.
func NewCSVWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// NewBinaryWriter returns a writer producing the binary format.
func NewBinaryWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), binary: true}
}

// Write appends one fix.
func (t *Writer) Write(f Fix) error {
	if !t.headed {
		t.headed = true
		if t.binary {
			if _, err := t.w.Write(binaryMagic[:]); err != nil {
				return err
			}
			if err := t.w.WriteByte(binaryVersion); err != nil {
				return err
			}
		} else {
			if _, err := t.w.WriteString("tick,user,x,y\n"); err != nil {
				return err
			}
		}
	}
	if t.binary {
		var rec [16]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(f.Tick))
		binary.LittleEndian.PutUint32(rec[4:], uint32(f.User))
		binary.LittleEndian.PutUint32(rec[8:], uint32(toMM(f.Pos.X)))
		binary.LittleEndian.PutUint32(rec[12:], uint32(toMM(f.Pos.Y)))
		_, err := t.w.Write(rec[:])
		return err
	}
	var sb strings.Builder
	sb.Grow(48)
	sb.WriteString(strconv.Itoa(f.Tick))
	sb.WriteByte(',')
	sb.WriteString(strconv.FormatUint(f.User, 10))
	sb.WriteByte(',')
	sb.WriteString(strconv.FormatFloat(f.Pos.X, 'f', 3, 64))
	sb.WriteByte(',')
	sb.WriteString(strconv.FormatFloat(f.Pos.Y, 'f', 3, 64))
	sb.WriteByte('\n')
	_, err := t.w.WriteString(sb.String())
	return err
}

// Flush commits buffered output; call before closing the underlying file.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader parses either format, sniffing from the stream head.
type Reader struct {
	br      *bufio.Reader
	binary  bool
	inited  bool
	line    int
	pending string // first CSV line when it was data, not a header
}

// NewReader wraps a trace stream.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

func (t *Reader) init() error {
	head, err := t.br.Peek(5)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return err
	}
	if [4]byte{head[0], head[1], head[2], head[3]} == binaryMagic {
		if head[4] != binaryVersion {
			return fmt.Errorf("%w: binary version %d", ErrBadFormat, head[4])
		}
		if _, err := t.br.Discard(5); err != nil {
			return err
		}
		t.binary = true
		t.inited = true
		return nil
	}
	// CSV: consume the header line if present.
	line, err := t.br.ReadString('\n')
	if err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	t.line++
	t.inited = true
	if strings.HasPrefix(strings.TrimSpace(line), "tick,") {
		return nil // header consumed
	}
	// Not a header: it was the first record; stash it for Read.
	t.pending = strings.TrimSpace(line)
	return nil
}

// Read returns the next fix or io.EOF.
func (t *Reader) Read() (Fix, error) {
	if !t.inited {
		if err := t.init(); err != nil {
			return Fix{}, err
		}
	}
	if t.binary {
		var rec [16]byte
		if _, err := io.ReadFull(t.br, rec[:]); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return Fix{}, fmt.Errorf("%w: truncated record", ErrBadFormat)
			}
			return Fix{}, err
		}
		return Fix{
			Tick: int(binary.LittleEndian.Uint32(rec[0:])),
			User: uint64(binary.LittleEndian.Uint32(rec[4:])),
			Pos: geom.Pt(
				fromMM(int32(binary.LittleEndian.Uint32(rec[8:]))),
				fromMM(int32(binary.LittleEndian.Uint32(rec[12:]))),
			),
		}, nil
	}
	for {
		var text string
		if t.pending != "" {
			text, t.pending = t.pending, ""
		} else {
			line, err := t.br.ReadString('\n')
			if err != nil && (!errors.Is(err, io.EOF) || line == "") {
				return Fix{}, err
			}
			t.line++
			text = strings.TrimSpace(line)
			if text == "" {
				if err != nil {
					return Fix{}, io.EOF
				}
				continue
			}
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return Fix{}, fmt.Errorf("%w: line %d: want 4 fields, got %d", ErrBadFormat, t.line, len(parts))
		}
		tick, err := strconv.Atoi(parts[0])
		if err != nil {
			return Fix{}, fmt.Errorf("%w: line %d: tick: %v", ErrBadFormat, t.line, err)
		}
		user, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			return Fix{}, fmt.Errorf("%w: line %d: user: %v", ErrBadFormat, t.line, err)
		}
		x, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return Fix{}, fmt.Errorf("%w: line %d: x: %v", ErrBadFormat, t.line, err)
		}
		y, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return Fix{}, fmt.Errorf("%w: line %d: y: %v", ErrBadFormat, t.line, err)
		}
		return Fix{Tick: tick, User: user, Pos: geom.Pt(x, y)}, nil
	}
}

// ReadUserPath collects the tick-ordered positions of one user from a
// trace stream.
func ReadUserPath(r io.Reader, user uint64) ([]geom.Point, error) {
	tr := NewReader(r)
	var out []geom.Point
	for {
		f, err := tr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if f.User == user {
			out = append(out, f.Pos)
		}
	}
}

// toMM quantizes a coordinate to signed millimetres (range ±2147 km).
func toMM(v float64) int32 { return int32(math.Round(v * 1000)) }

func fromMM(mm int32) float64 { return float64(mm) / 1000 }
