package store

import (
	"errors"
	"os"
	"sync"
	"testing"
	"time"
)

// countingCounters is a plain Counters sink for group-commit accounting
// assertions. The store invokes Counters under its own mutex, so plain
// ints read after the appends settle are race-free.
type countingCounters struct {
	appends      int
	appendBytes  int
	fsyncs       int
	snapshots    int
	fenced       int
	groupCommits int
	groupRecords int
	syncNs       int64
}

func (c *countingCounters) AddWALAppend(bytes int) { c.appends++; c.appendBytes += bytes }
func (c *countingCounters) AddWALFsync()           { c.fsyncs++ }
func (c *countingCounters) AddSnapshot()           { c.snapshots++ }
func (c *countingCounters) AddRecovery(int, int64) {}
func (c *countingCounters) AddFencedWrite()        { c.fenced++ }
func (c *countingCounters) AddWALGroupCommit(records int, syncNanos int64) {
	c.groupCommits++
	c.groupRecords += records
	c.syncNs += syncNanos
}

func TestAppendBatchReplay(t *testing.T) {
	dir := t.TempDir()
	met := &countingCounters{}
	s, _, _ := openStore(t, dir, Options{Fsync: true, Counters: met})
	recs := sampleRecords()
	if err := s.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if s.Pos() != 0 || met.groupCommits != 0 {
		t.Fatalf("empty batch moved the store: pos=%d groups=%d", s.Pos(), met.groupCommits)
	}
	if err := s.AppendBatch(recs); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if s.Pos() != uint64(len(recs)) {
		t.Fatalf("pos = %d, want %d", s.Pos(), len(recs))
	}
	// The whole batch is one group: one group commit, one fsync, but the
	// per-record append counter still ticks once per record.
	if met.groupCommits != 1 || met.groupRecords != len(recs) {
		t.Fatalf("group commits = %d/%d records, want 1/%d", met.groupCommits, met.groupRecords, len(recs))
	}
	if met.fsyncs != 1 || met.appends != len(recs) {
		t.Fatalf("fsyncs = %d appends = %d, want 1 and %d", met.fsyncs, met.appends, len(recs))
	}
	s.Close()

	_, state, info := openStore(t, dir, Options{})
	if info.Replayed != len(recs) || info.TruncatedBytes != 0 {
		t.Fatalf("recovery info = %+v", info)
	}
	if len(state.Alarms) != 1 || state.Alarms[0].ID != 1 {
		t.Fatalf("alarms = %+v", state.Alarms)
	}
}

func TestAppendBatchNeverSplit(t *testing.T) {
	met := &countingCounters{}
	s, _, _ := openStore(t, t.TempDir(), Options{GroupMax: 4, Counters: met})
	defer s.Close()
	recs := sampleRecords()
	if len(recs) <= 4 {
		t.Fatal("sample set no longer exceeds GroupMax")
	}
	if err := s.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	// A batch larger than GroupMax still lands as one oversized group:
	// the batch's atomicity outranks the cap.
	if met.groupCommits != 1 || met.groupRecords != len(recs) {
		t.Fatalf("group commits = %d/%d records, want one unsplit group of %d",
			met.groupCommits, met.groupRecords, len(recs))
	}
}

// TestAppendBatchCrashMidGroup: a scripted crash landing on a record in
// the middle of a batch kills the whole group — the batch's caller gets
// ErrCrashed and must not ack — while on disk the records before the hit
// land whole, the hit record tears per the script, and recovery truncates
// cleanly back to the durable prefix.
func TestAppendBatchCrashMidGroup(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := openStore(t, dir, Options{Fsync: true})
	// Lifetime append 4 = second record of the batch below.
	s.SetCrashPoints([]CrashPoint{{AfterAppends: 4, TearBytes: 5, FlipBit: -1}})
	recs := sampleRecords()
	for _, rec := range recs[:2] {
		if err := s.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.AppendBatch(recs[2:6]); !errors.Is(err, ErrCrashed) {
		t.Fatalf("batch over crash point = %v, want ErrCrashed", err)
	}
	if err := s.Append(recs[0]); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append after crash = %v, want ErrCrashed", err)
	}

	_, _, info := openStore(t, dir, Options{})
	if info.Replayed != 3 {
		t.Fatalf("replayed %d, want 3 (two singles + the batch record before the hit)", info.Replayed)
	}
	if info.TruncatedBytes != 5 {
		t.Fatalf("truncated %d bytes, want the 5 torn ones", info.TruncatedBytes)
	}
	_, _, info2 := openStore(t, dir, Options{})
	if info2.TruncatedBytes != 0 || info2.Replayed != 3 {
		t.Fatalf("post-repair reopen: info = %+v", info2)
	}
}

// TestAppendBatchFenced covers both fence checks against a whole group:
// a promotion completing before the write rejects the batch with nothing
// on disk, one completing between the write and the sink delivery rejects
// it with positions advanced (records are duplicates-on-rejoin, never
// losses). Every record of the batch books a fenced write either way.
func TestAppendBatchFenced(t *testing.T) {
	t.Run("pre-write", func(t *testing.T) {
		met := &countingCounters{}
		s, _, _ := openStore(t, t.TempDir(), Options{Counters: met})
		defer s.Close()
		s.SetTermSource(func() uint64 { return 1 })
		recs := sampleRecords()[:3]
		if err := s.AppendBatch(recs); !errors.Is(err, ErrFenced) {
			t.Fatalf("batch = %v, want ErrFenced", err)
		}
		if s.Pos() != 0 {
			t.Fatalf("pre-write fence advanced pos to %d", s.Pos())
		}
		if met.fenced != len(recs) {
			t.Fatalf("fenced writes = %d, want %d", met.fenced, len(recs))
		}
	})
	t.Run("post-sink", func(t *testing.T) {
		met := &countingCounters{}
		s, _, _ := openStore(t, t.TempDir(), Options{Counters: met})
		defer s.Close()
		calls := 0
		s.SetTermSource(func() uint64 {
			calls++
			if calls >= 2 {
				return 1 // promotion lands after the pre-write check
			}
			return 0
		})
		recs := sampleRecords()[:3]
		if err := s.AppendBatch(recs); !errors.Is(err, ErrFenced) {
			t.Fatalf("batch = %v, want ErrFenced", err)
		}
		if s.Pos() != uint64(len(recs)) {
			t.Fatalf("pos = %d, want %d (records are in the deposed WAL)", s.Pos(), len(recs))
		}
		if met.fenced != len(recs) {
			t.Fatalf("fenced writes = %d, want %d", met.fenced, len(recs))
		}
		if err := s.Append(recs[0]); !errors.Is(err, ErrFenced) {
			t.Fatalf("append after fencing = %v, want ErrFenced", err)
		}
	})
}

// TestGroupCommitHammer drives many concurrent appenders through the
// group-commit path (run under -race via make crash/race) and verifies
// the WAL holds exactly every acknowledged record, with each appender's
// records in its own append order — an ack wakes its waiter only after
// the record's bytes are handed to the OS, so per-goroutine WAL order
// must match per-goroutine call order.
func TestGroupCommitHammer(t *testing.T) {
	const goroutines, perG = 64, 32
	for _, opts := range []struct {
		name string
		o    Options
	}{
		{"immediate", Options{}},
		{"groupwait", Options{GroupMax: 16, GroupWait: 100 * time.Microsecond}},
	} {
		t.Run(opts.name, func(t *testing.T) {
			dir := t.TempDir()
			met := &countingCounters{}
			o := opts.o
			o.Counters = met
			s, _, _ := openStore(t, dir, o)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						if err := s.Append(FiredRec{User: uint64(g + 1), Alarms: []uint64{uint64(i)}}); err != nil {
							t.Errorf("goroutine %d append %d: %v", g, i, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			total := goroutines * perG
			if s.Pos() != uint64(total) {
				t.Fatalf("pos = %d, want %d", s.Pos(), total)
			}
			if met.groupRecords != total || met.appends != total {
				t.Fatalf("counters: group records %d, appends %d, want %d", met.groupRecords, met.appends, total)
			}
			if met.groupCommits < 1 || met.groupCommits > total {
				t.Fatalf("group commits = %d, want within [1, %d]", met.groupCommits, total)
			}
			walFile := s.WALPath()
			s.Close()

			buf, err := os.ReadFile(walFile)
			if err != nil {
				t.Fatal(err)
			}
			payloads, _, reason := ScanFrames(buf)
			if len(payloads) != total || reason != "" {
				t.Fatalf("wal holds %d frames (reason %q), want %d", len(payloads), reason, total)
			}
			next := make([]uint64, goroutines+1)
			for i, p := range payloads {
				rec, err := DecodeRecord(p)
				if err != nil {
					t.Fatalf("frame %d: %v", i, err)
				}
				fr := rec.(FiredRec)
				if got := fr.Alarms[0]; got != next[fr.User] {
					t.Fatalf("frame %d: user %d landed seq %d, want %d — group commit reordered one appender",
						i, fr.User, got, next[fr.User])
				}
				next[fr.User]++
			}
		})
	}
}

// TestAppendZeroAlloc pins the hot path's zero-allocation claim: with
// pooled requests warm, a steady-state Append (no fsync, no repl sink)
// performs no heap allocation — encode, frame and group bookkeeping all
// run in reused buffers.
func TestAppendZeroAlloc(t *testing.T) {
	s, _, _ := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	var rec Record = FiredRec{User: 1, Alarms: []uint64{7, 9, 11}}
	for i := 0; i < 16; i++ {
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := testing.AllocsPerRun(300, func() {
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("Append allocates %v per run, want 0", got)
	}
}

// TestReplSinkGroupBatches pins the sink contract: one frame batch per
// group commit carrying one ReplRecord per record at consecutive
// positions, and a single-frame snapshot batch per checkpoint.
func TestReplSinkGroupBatches(t *testing.T) {
	s, _, _ := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	var batches [][]ReplFrame
	s.SetReplSink(func(frames []ReplFrame) {
		batches = append(batches, append([]ReplFrame(nil), frames...))
	})
	recs := sampleRecords()
	if err := s.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(recs[1:4]); err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 || len(batches[0]) != 1 || len(batches[1]) != 3 {
		t.Fatalf("sink saw %d batches, want [1 frame][3 frames]", len(batches))
	}
	pos := uint64(0)
	for _, batch := range batches {
		for _, fr := range batch {
			pos++
			if fr.Type != ReplRecord || fr.Pos != pos || fr.Gen != 0 {
				t.Fatalf("frame %+v, want record pos %d gen 0", fr, pos)
			}
			if _, err := DecodeRecord(fr.Payload); err != nil {
				t.Fatalf("frame pos %d payload does not decode: %v", fr.Pos, err)
			}
		}
	}
	b := newBuilder(nil, 0)
	s.SetStateSource(func() *State { return b.finish() })
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	last := batches[len(batches)-1]
	if len(last) != 1 || last[0].Type != ReplSnapshot || last[0].Gen != 1 || last[0].Pos != 4 {
		t.Fatalf("checkpoint batch = %+v, want one snapshot frame gen 1 pos 4", last)
	}
}

// TestFollowerApplyBatchEquivalence: a batch fed through ApplyBatch must
// leave the follower byte-identical — warm state, position, term, applied
// count and recovered on-disk state — to the same frames fed one at a
// time through Apply, including skipped duplicates and heartbeats.
func TestFollowerApplyBatchEquivalence(t *testing.T) {
	seed := replSeedFrames()
	// snapshot, record, duplicate record, record, heartbeat.
	frames := []ReplFrame{seed[0], seed[1], seed[1], seed[2], seed[3]}

	one, err := OpenFollower(t.TempDir(), Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range frames {
		if _, err := one.Apply(fr); err != nil {
			t.Fatalf("sequential apply %d: %v", i, err)
		}
	}
	batched, err := OpenFollower(t.TempDir(), Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	records, snapshots, err := batched.ApplyBatch(frames)
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if records != 2 || snapshots != 1 {
		t.Fatalf("ApplyBatch advanced %d records, %d snapshots, want 2 and 1", records, snapshots)
	}
	if one.Pos() != batched.Pos() || one.Term() != batched.Term() || one.Applied() != batched.Applied() {
		t.Fatalf("divergence: pos %d/%d term %d/%d applied %d/%d",
			one.Pos(), batched.Pos(), one.Term(), batched.Term(), one.Applied(), batched.Applied())
	}
	warmOne, warmBatched := EncodeState(one.State()), EncodeState(batched.State())
	if string(warmOne) != string(warmBatched) {
		t.Fatalf("warm state diverged:\n seq %s\n batch %s", warmOne, warmBatched)
	}
	for _, l := range []*FollowerLog{one, batched} {
		if err := l.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	_, stateOne, infoOne := openStore(t, one.Dir(), Options{})
	_, stateBatched, infoBatched := openStore(t, batched.Dir(), Options{})
	if infoOne.Replayed != infoBatched.Replayed {
		t.Fatalf("recovery replayed %d vs %d", infoOne.Replayed, infoBatched.Replayed)
	}
	if string(EncodeState(stateOne)) != string(EncodeState(stateBatched)) {
		t.Fatal("recovered states diverged")
	}
}

// TestFollowerApplyBatchValidPrefix: when a frame mid-batch fails, every
// applicable frame before it has been applied and the first failure is
// reported — a batch never applies past an error and never loses the
// clean prefix.
func TestFollowerApplyBatchValidPrefix(t *testing.T) {
	seed := replSeedFrames()
	newSynced := func(t *testing.T) *FollowerLog {
		t.Helper()
		l, err := OpenFollower(t.TempDir(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		if _, _, err := l.ApplyBatch(seed[:1]); err != nil {
			t.Fatal(err)
		}
		return l
	}

	t.Run("position-gap", func(t *testing.T) {
		l := newSynced(t)
		gap := followerRecordFrame(1, 3, 10, ExpireRec{User: 3})
		records, _, err := l.ApplyBatch([]ReplFrame{seed[1], seed[2], gap})
		if !errors.Is(err, ErrNeedSnapshot) {
			t.Fatalf("err = %v, want ErrNeedSnapshot", err)
		}
		if records != 2 || l.Pos() != 7 || l.Applied() != 2 {
			t.Fatalf("prefix: records=%d pos=%d applied=%d, want 2/7/2", records, l.Pos(), l.Applied())
		}
	})
	t.Run("undecodable-record", func(t *testing.T) {
		l := newSynced(t)
		junk := ReplFrame{Type: ReplRecord, Term: 1, Gen: 3, Pos: 7, Payload: []byte{99, 1, 2, 3}}
		records, _, err := l.ApplyBatch([]ReplFrame{seed[1], junk, seed[2]})
		if !errors.Is(err, ErrBadReplFrame) {
			t.Fatalf("err = %v, want ErrBadReplFrame", err)
		}
		if records != 1 || l.Pos() != 6 {
			t.Fatalf("prefix: records=%d pos=%d, want 1/6 — the junk frame must not reach disk", records, l.Pos())
		}
		// The stream resumes cleanly after a resync-free retry at pos 7.
		if records, _, err := l.ApplyBatch([]ReplFrame{seed[2]}); err != nil || records != 1 {
			t.Fatalf("retry: records=%d err=%v", records, err)
		}
	})
	t.Run("stale-term", func(t *testing.T) {
		l := newSynced(t)
		if _, _, err := l.ApplyBatch([]ReplFrame{seed[3]}); err != nil { // heartbeat, term 2
			t.Fatal(err)
		}
		records, _, err := l.ApplyBatch([]ReplFrame{followerRecordFrame(1, 3, 6, RemoveRec{ID: 1})})
		if !errors.Is(err, ErrBadReplFrame) || records != 0 {
			t.Fatalf("deposed-term frame: records=%d err=%v, want 0/ErrBadReplFrame", records, err)
		}
	})
	t.Run("unsynced", func(t *testing.T) {
		l, err := OpenFollower(t.TempDir(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if _, _, err := l.ApplyBatch([]ReplFrame{seed[1]}); !errors.Is(err, ErrNeedSnapshot) {
			t.Fatalf("record before snapshot: %v", err)
		}
	})
	t.Run("sealed", func(t *testing.T) {
		l := newSynced(t)
		if err := l.Seal(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := l.ApplyBatch([]ReplFrame{seed[1]}); !errors.Is(err, ErrSealed) {
			t.Fatalf("sealed: %v", err)
		}
	})
}
