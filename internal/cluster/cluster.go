package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/store"
)

// Config parameterizes a cluster.
type Config struct {
	// Shards is the number of startup partitions (engines). Ignored when
	// Cols and Rows are both set, and ignored entirely when DataDir holds
	// a committed partition map from a previous run.
	Shards int
	// Cols and Rows force an explicit startup partition grid; both zero
	// means the near-square auto split of Shards.
	Cols, Rows int
	// Engine is the configuration shared by every shard engine: all
	// shards see the identical full Universe and grid geometry (so safe
	// regions near a boundary match the single-server ones bit for bit);
	// each shard's Partition field is filled in per shard.
	Engine server.Config
	// DataDir, when non-empty, makes every shard durable with its own
	// write-ahead log and snapshots under DataDir/shard<N>, and commits
	// the partition map to DataDir/partmap on every transition. Empty
	// runs every shard in memory (shards then cannot crash/recover and
	// transitions are not durable).
	DataDir string
	// Store tunes the per-shard durable stores (fsync, checkpoint cadence).
	Store store.Options
	// Replicas is the number of follower logs kept per shard; 0 disables
	// replication. Requires DataDir (followers are durable mirrors).
	Replicas int
	// PromoteAfter is how many replication ticks a primary may stay
	// silent before a follower is promoted in its place.
	PromoteAfter int
	// ReplAck selects synchronous replication: every append applies to
	// every follower before the primary acknowledges. Off, frames buffer
	// and drain on the next TickReplication (still lossless for
	// acknowledged writes: buffers survive the primary's death and drain
	// before promotion).
	ReplAck bool
}

// ErrCrashPoint is returned by a transition that hit a scripted crash
// point (SetCrashPoint). The test harness then calls Crash and reopens
// the cluster from its DataDir, exactly as a process kill would.
var ErrCrashPoint = errors.New("cluster: scripted crash point")

// Crash point names accepted by SetCrashPoint, ordered along the
// transition paths they interrupt.
const (
	// CPSplitPreCommit dies after the new shard's engine booted and
	// adopted its alarms but before the map file committed: recovery
	// sees the old epoch and the orphaned shard directory is wiped when
	// its ID is next allocated.
	CPSplitPreCommit = "split:pre-commit"
	// CPMergePreCommit dies after the merge target adopted the retired
	// shard's alarms but before the map file committed: recovery sees
	// the old epoch; the extra alarms are harmless over-installation.
	CPMergePreCommit = "merge:pre-commit"
	// CPDrainBeforeImport dies mid-drain between peeking a session at
	// the retired shard and importing it at the target: the committed
	// map's Drain entry makes recovery finish the migration.
	CPDrainBeforeImport = "drain:before-import"
	// CPDrainBeforeDrop dies after the import but before the retired
	// shard dropped its copy: recovery re-imports (a no-op union) and
	// drops — at worst a redelivered firing the client dedups.
	CPDrainBeforeDrop = "drain:before-drop"
	// CPMergePreDrainDone dies after every session drained but before
	// the drain-done map committed: recovery re-runs an empty drain.
	CPMergePreDrainDone = "merge:pre-drain-done"
)

// Cluster runs one engine per spatial partition under a versioned
// partition map. Shards fail and recover independently: a down shard's
// slot holds nil, and the router degrades to resend/defer behaviour for
// clients it owns. SplitShard and MergeShards mutate the map at
// runtime; readers follow it lock-free through an atomic pointer.
type Cluster struct {
	cfg      Config
	met      *metrics.Cluster
	cellSide float64

	// part is the published partition map; every transition installs a
	// fresh copy-on-write successor. slots is indexed by shard ID and
	// only ever grows (IDs are never reused); both pointers are atomic
	// so Locate and Engine stay lock-free on the hot path.
	part  atomic.Pointer[PartitionMap]
	slots atomic.Pointer[[]*slot]

	// mu serializes everything that mutates the map or the alarm table:
	// split/merge transitions, drain resumption, alarm installation and
	// slot growth. nextAlarmID is the global ID counter, seeded past
	// every shard's recovered table.
	mu          sync.Mutex
	nextAlarmID uint64

	// retired maps a merged-away shard to the live shard that absorbed
	// it, so the router can re-point routes that still name the retired
	// shard. In-memory only: routes are in-memory too and rebuild from
	// the map after a restart.
	retiredMu sync.RWMutex
	retired   map[int]int

	// crashPoints holds armed one-shot scripted failures (tests only).
	cpMu        sync.Mutex
	crashPoints map[string]bool

	// reps holds each replicated shard's fan-out state; replSeq allocates
	// never-reused follower directory names. fd is the missed-heartbeat
	// failure detector TickReplication drives.
	repMu   sync.Mutex
	reps    map[int]*Replicator
	replSeq int
	fd      FailureDetector
}

type slot struct {
	eng atomic.Pointer[server.Engine]
	dir string
}

// New builds and boots every shard. With DataDir set, each shard opens
// (or recovers) its own store and the partition map is loaded from the
// committed map file when one exists — a cluster restarted on an
// existing DataDir resumes from durable state, including finishing any
// merge drain a crash interrupted.
func New(cfg Config) (*Cluster, error) {
	if cfg.Replicas > 0 && cfg.DataDir == "" {
		return nil, errors.New("cluster: Replicas requires DataDir (followers are durable mirrors)")
	}
	c := &Cluster{
		cfg:         cfg,
		met:         &metrics.Cluster{},
		retired:     make(map[int]int),
		crashPoints: make(map[string]bool),
		reps:        make(map[int]*Replicator),
	}
	if cfg.DataDir != "" {
		// Follower directory names must never be reused, even across
		// process restarts: a past promotion may have made shardN-rM a
		// shard's primary directory, and re-allocating that name would
		// wipe it. Seed the counter past everything on disk.
		c.replSeq = scanReplSeq(cfg.DataDir)
	}
	var pm *PartitionMap
	if cfg.DataDir != "" {
		loaded, found, err := LoadPartitionMapFile(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		if found {
			pm = loaded
		}
	}
	if pm == nil {
		var err error
		if cfg.Cols > 0 || cfg.Rows > 0 {
			pm, err = NewPartitionMapGrid(cfg.Engine.Universe, cfg.Cols, cfg.Rows)
		} else {
			pm, err = NewPartitionMap(cfg.Engine.Universe, cfg.Shards)
		}
		if err != nil {
			return nil, err
		}
		if cfg.DataDir != "" {
			if err := WritePartitionMapFile(cfg.DataDir, pm); err != nil {
				return nil, err
			}
		}
	}
	c.part.Store(pm)
	slots := make([]*slot, pm.NextShard())
	for i := range slots {
		slots[i] = &slot{}
		if cfg.DataDir != "" {
			slots[i].dir = filepath.Join(cfg.DataDir, fmt.Sprintf("shard%d", i))
			// A past promotion may have re-pointed the shard's primary to a
			// follower's directory; the durable pointer survives restarts.
			if dir, ok := readPrimaryPtr(cfg.DataDir, i); ok {
				slots[i].dir = dir
			}
		}
	}
	c.slots.Store(&slots)

	boot := func(id int, rect geom.Rect) error {
		eng, err := c.bootShard(id, rect)
		if err != nil {
			return fmt.Errorf("cluster: boot shard %d: %w", id, err)
		}
		slots[id].eng.Store(eng)
		if next := uint64(eng.Registry().NextID()); next > c.nextAlarmID {
			c.nextAlarmID = next
		}
		return nil
	}
	for _, s := range pm.Shards() {
		rect, _ := pm.RectOf(s)
		if err := boot(s, rect); err != nil {
			return nil, err
		}
	}
	// A drain source is retired from the map but still holds sessions; it
	// reboots on its last rectangle so the drain can finish.
	for _, d := range pm.Draining() {
		if err := boot(d.Shard, d.Rect); err != nil {
			return nil, err
		}
	}
	if c.nextAlarmID == 0 {
		c.nextAlarmID = 1
	}
	first := pm.Shards()[0]
	c.cellSide = slots[first].eng.Load().Grid().CellSide()
	for _, s := range pm.Shards() {
		if err := slots[s].eng.Load().SetEpoch(pm.Epoch()); err != nil {
			return nil, err
		}
	}
	if cfg.Replicas > 0 {
		// Replicate live shards and draining sources alike — a source that
		// dies mid-drain must fail over so its sessions still migrate.
		for _, s := range pm.Shards() {
			if err := c.enableReplication(s); err != nil {
				return nil, err
			}
		}
		for _, d := range pm.Draining() {
			if err := c.enableReplication(d.Shard); err != nil {
				return nil, err
			}
		}
	}
	for _, d := range pm.Draining() {
		c.mu.Lock()
		err := c.finishDrain(d)
		c.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("cluster: resume drain %d→%d: %w", d.Shard, d.Target, err)
		}
	}
	return c, nil
}

// bootShard builds shard id's engine on the given partition rectangle,
// recovering from its store when durable.
func (c *Cluster) bootShard(id int, rect geom.Rect) (*server.Engine, error) {
	sc := c.cfg.Engine
	sc.Partition = rect
	sl := c.slotList()
	if sl[id].dir == "" {
		return server.New(sc)
	}
	st, state, info, err := store.Open(sl[id].dir, c.cfg.Store)
	if err != nil {
		return nil, err
	}
	return server.NewDurable(sc, st, state, info)
}

func (c *Cluster) slotList() []*slot { return *c.slots.Load() }

// PartitionMap returns the current published map. The map is immutable;
// a transition publishes a successor, so a held copy stays consistent
// (if stale) forever.
func (c *Cluster) PartitionMap() *PartitionMap { return c.part.Load() }

// Epoch returns the current partition-map epoch.
func (c *Cluster) Epoch() uint64 { return c.part.Load().Epoch() }

// N returns the number of shard IDs ever allocated (live, down or
// retired). Engine(i) reports nil for the non-live ones; use
// PartitionMap().Shards() for the live set.
func (c *Cluster) N() int { return len(c.slotList()) }

// Metrics returns the cluster-level counters.
func (c *Cluster) Metrics() *metrics.Cluster { return c.met }

// Engine returns shard i's engine, or nil while the shard is down or
// retired.
func (c *Cluster) Engine(i int) *server.Engine {
	sl := c.slotList()
	if i < 0 || i >= len(sl) {
		return nil
	}
	return sl[i].eng.Load()
}

// Up reports whether shard i is serving.
func (c *Cluster) Up(i int) bool { return c.Engine(i) != nil }

// locate returns the live shard owning pt under the current map,
// counting out-of-universe clamps.
func (c *Cluster) locate(pt geom.Point) int {
	shard, clamped := c.part.Load().Locate(pt)
	if clamped {
		c.met.AddLocateClamped()
	}
	return shard
}

// firstShard returns the lowest live shard ID — the enrollment home for
// clients that have not reported a position yet.
func (c *Cluster) firstShard() int {
	return c.part.Load().Shards()[0]
}

// retiredTarget resolves a retired shard to the live shard that
// absorbed its sessions, following chains of merges.
func (c *Cluster) retiredTarget(shard int) (int, bool) {
	c.retiredMu.RLock()
	defer c.retiredMu.RUnlock()
	to, ok := c.retired[shard]
	if !ok {
		return 0, false
	}
	for {
		next, more := c.retired[to]
		if !more {
			return to, true
		}
		to = next
	}
}

// marginRect is the install footprint of a partition rectangle: the
// rectangle expanded by two grid cells. A client routed to the shard
// reports from inside the partition (or at most one cell beyond it, the
// engine's position slack); its grid cell then lies within two cell
// sides of the partition, so every alarm that can intersect that cell —
// and hence shape its safe region — is installed here. See DESIGN.md
// "Clustering".
func (c *Cluster) marginRect(rect geom.Rect) geom.Rect {
	return rect.Expand(2 * c.cellSide)
}

// InstallAlarms assigns cluster-global IDs and installs each alarm on
// every live shard whose margin rectangle its region intersects — so a
// boundary-straddling alarm is known to all shards that could serve a
// client near it. Moving-target alarms are rejected: their region
// re-anchors at runtime, which would require cross-shard re-placement.
func (c *Cluster) InstallAlarms(alarms []alarm.Alarm) ([]alarm.ID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range alarms {
		if alarms[i].Target != 0 {
			return nil, fmt.Errorf("cluster: alarm %d: moving-target alarms are not supported in clustered mode", i)
		}
	}
	assigned := make([]alarm.Alarm, len(alarms))
	ids := make([]alarm.ID, len(alarms))
	for i, a := range alarms {
		a.ID = alarm.ID(c.nextAlarmID)
		c.nextAlarmID++
		assigned[i] = a
		ids[i] = a.ID
	}
	pm := c.part.Load()
	for _, s := range pm.Shards() {
		eng := c.Engine(s)
		if eng == nil {
			return nil, fmt.Errorf("cluster: shard %d down during install", s)
		}
		rect, _ := pm.RectOf(s)
		margin := c.marginRect(rect)
		var batch []alarm.Alarm
		for _, a := range assigned {
			// Pair alarms follow their endpoints, which any shard may
			// serve (or come to serve after a repartition), so every live
			// shard gets a copy; region alarms go where the margin says.
			if a.Kind == alarm.KindPair || a.Region.Intersects(margin) {
				batch = append(batch, a)
			}
		}
		if len(batch) == 0 {
			continue
		}
		if err := eng.InstallAlarmsAssigned(batch); err != nil {
			return nil, fmt.Errorf("cluster: install on shard %d: %w", s, err)
		}
	}
	return ids, nil
}

// SetTick advances every live shard's logical clock — lifecycle
// transitions and composite TTL expiry are tick-driven, and each shard
// logs its own expiry records. Down shards catch up on their next tick
// after recovery (the clock only moves forward). The first shard error
// is returned after all shards were ticked.
func (c *Cluster) SetTick(tick uint64) error {
	var firstErr error
	for _, s := range c.part.Load().Shards() {
		if eng := c.Engine(s); eng != nil {
			if err := eng.SetTick(tick); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// SetCrashPoint arms a one-shot scripted failure (tests only): the next
// transition reaching the named point returns ErrCrashPoint instead of
// proceeding. The harness then calls Crash and reopens the cluster.
func (c *Cluster) SetCrashPoint(name string) {
	c.cpMu.Lock()
	c.crashPoints[name] = true
	c.cpMu.Unlock()
}

// crashAt fires an armed crash point once.
func (c *Cluster) crashAt(name string) error {
	c.cpMu.Lock()
	armed := c.crashPoints[name]
	if armed {
		delete(c.crashPoints, name)
	}
	c.cpMu.Unlock()
	if armed {
		return fmt.Errorf("%w: %s", ErrCrashPoint, name)
	}
	return nil
}

// Crash fail-stops the whole cluster in place, as a process kill would:
// every engine slot goes nil and every durable store dies without
// checkpointing. The DataDir can then be reopened with New.
func (c *Cluster) Crash() {
	for _, sl := range c.slotList() {
		eng := sl.eng.Swap(nil)
		if eng != nil && eng.Store() != nil {
			eng.Store().Kill()
		}
	}
	c.repMu.Lock()
	reps := make([]*Replicator, 0, len(c.reps))
	for _, rep := range c.reps {
		reps = append(reps, rep)
	}
	c.repMu.Unlock()
	for _, rep := range reps {
		rep.Shutdown()
	}
}

// SplitShard divides a hot shard's rectangle in two at the median of
// its resident sessions' positions along the longer axis (midpoint when
// the population is too small to vote): a fresh engine is booted for
// the newly allocated shard ID, adopts every alarm of the parent whose
// region intersects the new margin (plus their fired pairs, so nothing
// refires), and only then does the successor map commit — the ordering makes a crash at any point recoverable to a
// consistent epoch. Sessions are NOT eagerly migrated: clients resident
// in the moved half keep talking to the old shard until their next
// report, which the router hands off through the ordinary durable
// export/import path. It returns the new shard's ID.
func (c *Cluster) SplitShard(shard int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.part.Load()
	src := c.Engine(shard)
	if src == nil {
		return 0, fmt.Errorf("cluster: split: shard %d is down", shard)
	}
	next, newShard, err := c.splitAtMedian(cur, shard, src)
	if err != nil {
		return 0, err
	}

	c.growSlots(next.NextShard())
	sl := c.slotList()
	if sl[newShard].dir != "" {
		// A crash after a previous pre-commit attempt may have left an
		// orphaned directory under this ID; its WAL must not leak into
		// the new shard.
		if err := os.RemoveAll(sl[newShard].dir); err != nil {
			return 0, fmt.Errorf("cluster: split: clear shard %d dir: %w", newShard, err)
		}
		os.Remove(primaryPtrPath(c.cfg.DataDir, newShard))
	}
	newRect, _ := next.RectOf(newShard)
	eng, err := c.bootShard(newShard, newRect)
	if err != nil {
		return 0, fmt.Errorf("cluster: split: boot shard %d: %w", newShard, err)
	}

	// Adopt the parent's alarms intersecting the new margin, with their
	// fired pairs. Alarms beyond the margin can never shape a safe
	// region computed here, so this is exactly the install footprint a
	// fresh InstallAlarms would have produced.
	margin := c.marginRect(newRect)
	var adopt []alarm.Alarm
	adopted := make(map[alarm.ID]bool)
	for _, a := range src.Registry().All() {
		if a.Kind == alarm.KindPair || a.Region.Intersects(margin) {
			adopt = append(adopt, a)
			adopted[a.ID] = true
		}
	}
	var fired []alarm.FiredPair
	for _, p := range src.Registry().FiredPairs() {
		if adopted[p.Alarm] {
			fired = append(fired, p)
		}
	}
	if err := eng.AdoptAlarms(adopt, fired, src.Registry().LifecycleStatesForAlarms(adopted)); err != nil {
		return 0, fmt.Errorf("cluster: split: adopt alarms on shard %d: %w", newShard, err)
	}

	if err := c.crashAt(CPSplitPreCommit); err != nil {
		return 0, err
	}
	if err := c.commitMap(next); err != nil {
		return 0, err
	}
	sl[newShard].eng.Store(eng)
	// The parent's rectangle shrank; tightening its safe-period clamp is
	// always sound (its alarm table still covers the old, larger margin).
	loRect, _ := next.RectOf(shard)
	src.SetPartition(loRect)
	// The source's install footprint shrank with its rectangle: alarms
	// beyond the new margin can no longer shape any safe region computed
	// here, so their copies are dropped (their fired pairs stay). The new
	// shard adopted every copy it needs before the commit, so the GC
	// cannot touch anything the moved half depends on.
	n, gcErr := src.GCAlarmsOutside(c.marginRect(loRect))
	c.met.AddAlarmsGCed(uint64(n))
	// A GC log error means the source store crashed mid-drop. The split
	// is already committed and recovery replays the drops that logged, so
	// the error is the shard's problem (surfaced on its next message),
	// not the transition's.
	_ = gcErr
	c.advanceEpochs(next)
	c.met.AddSplit()
	if c.cfg.Replicas > 0 {
		if err := c.enableReplication(newShard); err != nil {
			return 0, err
		}
	}
	return newShard, nil
}

// splitAtMedian picks the split coordinate for shard: the median of its
// resident sessions' last positions along the rectangle's longer axis,
// so a population-skewed shard splits into halves of comparable load
// rather than comparable area. With fewer than two in-rectangle
// positions — or a degenerate median on the rectangle's edge — it falls
// back to the geometric midpoint.
func (c *Cluster) splitAtMedian(cur *PartitionMap, shard int, src *server.Engine) (*PartitionMap, int, error) {
	rect, ok := cur.RectOf(shard)
	if !ok {
		return cur.Split(shard) // surfaces the not-a-live-partition error
	}
	vertical := rect.Width() >= rect.Height()
	var coords []float64
	for _, p := range src.SessionPositions() {
		if !rect.Contains(p) {
			continue // mid-handoff stragglers belong to another shard
		}
		if vertical {
			coords = append(coords, p.X)
		} else {
			coords = append(coords, p.Y)
		}
	}
	if len(coords) < 2 {
		return cur.Split(shard)
	}
	sort.Float64s(coords)
	median := coords[len(coords)/2]
	if next, newShard, err := cur.SplitAt(shard, median); err == nil {
		return next, newShard, nil
	}
	return cur.Split(shard)
}

// MergeShards collapses sibling partitions: into's engine adopts every
// alarm (and fired pair) of from, takes over the parent rectangle, the
// successor map commits with a Drain entry, and the drain then moves
// every session resident on from to into through peek/import/drop —
// import-before-drop, so a crash anywhere leaves at worst a benign
// duplicate, never a lost firing. When the drain empties, a second map
// commit clears the Drain entry and from's engine retires (its ID and
// directory are never reused).
func (c *Cluster) MergeShards(into, from int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.part.Load()
	next, err := cur.Merge(into, from)
	if err != nil {
		return err
	}
	intoEng, fromEng := c.Engine(into), c.Engine(from)
	if intoEng == nil || fromEng == nil {
		return fmt.Errorf("cluster: merge: shard %d or %d is down", into, from)
	}

	// Widening into's responsibility is sound only once its alarm table
	// covers the widened margin — adopt before commit.
	if err := intoEng.AdoptAlarms(fromEng.Registry().All(), fromEng.Registry().FiredPairs(), fromEng.Registry().LifecycleStates()); err != nil {
		return fmt.Errorf("cluster: merge: adopt alarms on shard %d: %w", into, err)
	}
	parentRect, _ := next.RectOf(into)
	intoEng.SetPartition(parentRect)

	if err := c.crashAt(CPMergePreCommit); err != nil {
		return err
	}
	if err := c.commitMap(next); err != nil {
		return err
	}
	c.advanceEpochs(next)
	c.met.AddMerge()

	drains := next.Draining()
	return c.finishDrain(drains[len(drains)-1])
}

// finishDrain migrates every session off a retired shard and commits
// the drain-done map. Caller holds c.mu. The retired shard's engine is
// shut down and its slot pointed nil once the drain commits.
func (c *Cluster) finishDrain(d Drain) error {
	fromEng, intoEng := c.Engine(d.Shard), c.Engine(d.Target)
	if fromEng == nil || intoEng == nil {
		return fmt.Errorf("cluster: drain %d→%d: shard down", d.Shard, d.Target)
	}
	moved := 0
	for _, user := range fromEng.SessionUsers() {
		if err := c.crashAt(CPDrainBeforeImport); err != nil {
			return err
		}
		rec, ok := fromEng.PeekSession(user)
		if ok {
			if _, _, err := intoEng.ImportSessionMerge(rec); err != nil {
				return fmt.Errorf("cluster: drain user %d: import: %w", user, err)
			}
		}
		if err := c.crashAt(CPDrainBeforeDrop); err != nil {
			return err
		}
		if err := fromEng.DropSession(user); err != nil {
			return fmt.Errorf("cluster: drain user %d: drop: %w", user, err)
		}
		moved++
	}
	c.met.AddSessionsDrained(uint64(moved))

	if err := c.crashAt(CPMergePreDrainDone); err != nil {
		return err
	}
	cur := c.part.Load()
	done, err := cur.DrainDone(d.Shard)
	if err != nil {
		return err
	}
	if err := c.commitMap(done); err != nil {
		return err
	}
	c.advanceEpochs(done)

	c.retiredMu.Lock()
	c.retired[d.Shard] = d.Target
	c.retiredMu.Unlock()
	eng := c.slotList()[d.Shard].eng.Swap(nil)
	if eng != nil && eng.Store() != nil {
		if err := eng.Store().Close(); err != nil {
			return fmt.Errorf("cluster: retire shard %d: %w", d.Shard, err)
		}
	}
	c.dropReplication(d.Shard)
	return nil
}

// commitMap durably commits and publishes a successor map. Caller holds
// c.mu. The map-file rename is the transition's commit point: a crash
// before it leaves the previous epoch in force.
func (c *Cluster) commitMap(next *PartitionMap) error {
	if c.cfg.DataDir != "" {
		if err := WritePartitionMapFile(c.cfg.DataDir, next); err != nil {
			return err
		}
	}
	c.part.Store(next)
	return nil
}

// advanceEpochs WALs the new epoch on every live shard, so each shard's
// recovery rejoins at the map it last served under. A shard that is
// down misses the record and catches up on its next recovery or
// transition. Caller holds c.mu.
func (c *Cluster) advanceEpochs(pm *PartitionMap) {
	for _, s := range pm.Shards() {
		if eng := c.Engine(s); eng != nil {
			// ErrCrashed surfaces on the shard's next handled message; the
			// epoch record is then restored by recovery anyway.
			_ = eng.SetEpoch(pm.Epoch())
		}
	}
}

// growSlots extends the slot table to hold n shard IDs. Caller holds
// c.mu; readers follow the atomic pointer.
func (c *Cluster) growSlots(n int) {
	old := c.slotList()
	if n <= len(old) {
		return
	}
	grown := make([]*slot, n)
	copy(grown, old)
	for i := len(old); i < n; i++ {
		grown[i] = &slot{}
		if c.cfg.DataDir != "" {
			grown[i].dir = filepath.Join(c.cfg.DataDir, fmt.Sprintf("shard%d", i))
		}
	}
	c.slots.Store(&grown)
}

// KillShard fail-stops shard i: the store dies mid-flight, the WAL tail
// is mangled per tear, and the slot goes nil. Durable shards only.
func (c *Cluster) KillShard(i int, tear store.TearMode, rng *rand.Rand) error {
	sl := c.slotList()
	if i < 0 || i >= len(sl) {
		return fmt.Errorf("cluster: no shard %d", i)
	}
	eng := sl[i].eng.Swap(nil)
	if eng == nil {
		return fmt.Errorf("cluster: shard %d already down", i)
	}
	st := eng.Store()
	if st == nil {
		return fmt.Errorf("cluster: shard %d is memory-only and cannot crash", i)
	}
	walPath := st.WALPath()
	st.Kill()
	if err := store.MangleTail(walPath, tear, rng); err != nil {
		return fmt.Errorf("cluster: mangle shard %d: %w", i, err)
	}
	c.met.AddShardCrash()
	return nil
}

// RecoverShard reboots a killed shard from its durable store on its
// current map rectangle.
func (c *Cluster) RecoverShard(i int) error {
	sl := c.slotList()
	if i < 0 || i >= len(sl) {
		return fmt.Errorf("cluster: no shard %d", i)
	}
	if sl[i].eng.Load() != nil {
		return fmt.Errorf("cluster: shard %d already up", i)
	}
	pm := c.part.Load()
	rect, ok := pm.RectOf(i)
	if !ok {
		return fmt.Errorf("cluster: shard %d is retired", i)
	}
	eng, err := c.bootShard(i, rect)
	if err != nil {
		return fmt.Errorf("cluster: recover shard %d: %w", i, err)
	}
	if err := eng.SetEpoch(pm.Epoch()); err != nil {
		return fmt.Errorf("cluster: recover shard %d: %w", i, err)
	}
	if rep := c.replicator(i); rep != nil {
		// The recovered incarnation streams into the existing replicator;
		// its followers resync against the new incarnation's positions.
		rep.AttachPrimary(eng.Store())
	}
	sl[i].eng.Store(eng)
	c.met.AddShardRecovery()
	return nil
}

// Close checkpoints and closes every live durable shard and seals
// every follower log.
func (c *Cluster) Close() error {
	var first error
	for _, sl := range c.slotList() {
		eng := sl.eng.Swap(nil)
		if eng == nil || eng.Store() == nil {
			continue
		}
		if err := eng.Store().Close(); err != nil && first == nil {
			first = err
		}
	}
	c.repMu.Lock()
	reps := make([]*Replicator, 0, len(c.reps))
	for _, rep := range c.reps {
		reps = append(reps, rep)
	}
	c.repMu.Unlock()
	for _, rep := range reps {
		rep.Shutdown()
	}
	return first
}

// ShardSnapshots returns each shard ID's counter snapshot; down and
// retired shards yield a zero snapshot with Up=false.
func (c *Cluster) ShardSnapshots() []ShardStatus {
	pm := c.part.Load()
	out := make([]ShardStatus, c.N())
	for i := range out {
		out[i].Shard = i
		if rect, ok := pm.RectOf(i); ok {
			out[i].Partition = rect
		}
		if eng := c.Engine(i); eng != nil {
			out[i].Up = true
			out[i].Metrics = eng.Metrics().Snapshot()
		}
		if rep := c.replicator(i); rep != nil {
			rs := rep.Status()
			out[i].Replication = &rs
		}
	}
	return out
}

// ShardStatus is one shard's liveness, partition and counters.
type ShardStatus struct {
	Shard     int              `json:"shard"`
	Up        bool             `json:"up"`
	Partition geom.Rect        `json:"partition"`
	Metrics   metrics.Snapshot `json:"metrics"`
	// Replication is the shard's replication health, nil when the shard
	// is unreplicated or retired.
	Replication *ReplicaStatus `json:"replication,omitempty"`
}
