package sim

import (
	"testing"

	"github.com/sabre-geo/sabre/internal/wire"
)

// TestClusterDeliveryEquality is the acceptance check for horizontal
// sharding: for each safe-region strategy, a four-shard cluster run —
// with clients handing off between shards as vehicles cross partition
// boundaries, and two shards crashed (torn WAL tails) and recovered
// mid-trace — must deliver exactly the same (user, alarm) set as the
// single-server run: nothing lost, nothing delivered twice. The SP
// baseline is excluded by design (partition-clamped safe periods change
// its reporting cadence; see DESIGN.md "Clustering").
func TestClusterDeliveryEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-strategy cluster simulation")
	}
	w, err := BuildWorkload(SmallWorkload(11))
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultClusterPlan(99, w.Config.DurationTicks)
	cases := []struct {
		name string
		sc   StrategyConfig
	}{
		{"MWPSR", StrategyConfig{Strategy: wire.StrategyMWPSR}},
		{"GBSR", StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 1}},
		{"PBSR", StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 5}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base, err := Run(w, tc.sc)
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := RunCluster(w, tc.sc, plan, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			basePairs := pairCounts(base.Triggers)
			shardPairs := pairCounts(sharded.Triggers)
			for p, c := range shardPairs {
				if c != 1 {
					t.Errorf("pair (user %d, alarm %d) delivered %d times across shards", p[0], p[1], c)
				}
				if basePairs[p] == 0 {
					t.Errorf("pair (user %d, alarm %d) delivered sharded but not single-server", p[0], p[1])
				}
			}
			for p := range basePairs {
				if shardPairs[p] == 0 {
					t.Errorf("pair (user %d, alarm %d) lost across shards", p[0], p[1])
				}
			}
			if len(base.Triggers) == 0 {
				t.Fatal("workload produced no triggers; the equality check is vacuous")
			}
			cm := sharded.Cluster
			if cm == nil {
				t.Fatal("cluster run reported no cluster metrics")
			}
			if cm.Handoffs == 0 {
				t.Error("no cross-shard handoffs — the partition grid never split the trace")
			}
			if cm.ShardCrashes != uint64(len(plan.Crashes)) || cm.ShardRecoveries != uint64(len(plan.Crashes)) {
				t.Errorf("expected %d crashes and recoveries, got %d / %d",
					len(plan.Crashes), cm.ShardCrashes, cm.ShardRecoveries)
			}
			t.Logf("%s: %d single-server triggers, %d sharded deliveries, %d handoffs, %d duplicate firings suppressed, equal sets",
				tc.name, len(base.Triggers), len(sharded.Triggers), cm.Handoffs, cm.DuplicateFiringsSuppressed)
		})
	}
}

// TestClusterBatchedDeliveryEquality is the acceptance check for the
// batched update path: the same sharded workload with client-side
// batching enabled (each tick's reports coalesced into one UpdateBatch
// frame, answered by a BatchReply, crossing shard handoffs included)
// must deliver exactly the same (user, alarm) set as the unbatched
// single-server run for every safe-region strategy. Batching changes
// framing and which responses carry monitoring state — never which
// positions get evaluated.
func TestClusterBatchedDeliveryEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-strategy cluster simulation")
	}
	w, err := BuildWorkload(SmallWorkload(11))
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultClusterPlan(99, w.Config.DurationTicks)
	plan.Session.Batch = true
	cases := []struct {
		name string
		sc   StrategyConfig
	}{
		{"MWPSR", StrategyConfig{Strategy: wire.StrategyMWPSR}},
		{"GBSR", StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 1}},
		{"PBSR", StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 5}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base, err := Run(w, tc.sc)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := RunCluster(w, tc.sc, plan, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if len(base.Triggers) == 0 {
				t.Fatal("workload produced no triggers; the equality check is vacuous")
			}
			if batched.UpdateBatches == 0 {
				t.Fatal("no UpdateBatch frames reached the shards — batching never engaged")
			}
			basePairs := pairCounts(base.Triggers)
			batchPairs := pairCounts(batched.Triggers)
			for p, c := range batchPairs {
				if c != 1 {
					t.Errorf("pair (user %d, alarm %d) delivered %d times batched", p[0], p[1], c)
				}
				if basePairs[p] == 0 {
					t.Errorf("pair (user %d, alarm %d) delivered batched but not single-server", p[0], p[1])
				}
			}
			for p := range basePairs {
				if batchPairs[p] == 0 {
					t.Errorf("pair (user %d, alarm %d) lost under batching", p[0], p[1])
				}
			}
			avg := float64(batched.BatchedUpdates) / float64(batched.UpdateBatches)
			t.Logf("%s: %d triggers both ways, %d batches avg %.2f updates/frame",
				tc.name, len(base.Triggers), batched.UpdateBatches, avg)
		})
	}
}

// TestRunClusterDeterministic asserts the cluster harness replays
// byte-identically: same workload + plan (fresh data dirs) → the exact
// same trigger sequence, delivery ticks included.
func TestRunClusterDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	cfg := SmallWorkload(5)
	cfg.Vehicles = 60
	cfg.DurationTicks = 200
	cfg.NumAlarms = 80
	w, err := BuildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultClusterPlan(123, cfg.DurationTicks)
	sc := StrategyConfig{Strategy: wire.StrategyMWPSR}
	a, err := RunCluster(w, sc, plan, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCluster(w, sc, plan, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Triggers) != len(b.Triggers) {
		t.Fatalf("trigger counts differ: %d vs %d", len(a.Triggers), len(b.Triggers))
	}
	for i := range a.Triggers {
		if a.Triggers[i] != b.Triggers[i] {
			t.Fatalf("trigger %d differs: %+v vs %+v", i, a.Triggers[i], b.Triggers[i])
		}
	}
}
