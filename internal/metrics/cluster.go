package metrics

import "sync/atomic"

// Cluster accumulates router-level counters for a sharded deployment:
// work the router does on top of the per-shard Server counters. All
// fields are atomics so the TCP router can account from concurrent
// connection goroutines.
type Cluster struct {
	routedUpdates              atomic.Uint64
	routedBatches              atomic.Uint64
	handoffs                   atomic.Uint64
	handoffsDeferred           atomic.Uint64
	duplicateFiringsSuppressed atomic.Uint64
	redirectsSent              atomic.Uint64
	shardCrashes               atomic.Uint64
	shardRecoveries            atomic.Uint64
	splits                     atomic.Uint64
	merges                     atomic.Uint64
	sessionsDrained            atomic.Uint64
	locateClamped              atomic.Uint64
	promotions                 atomic.Uint64
	handoffsParked             atomic.Uint64
	handoffsFailedOver         atomic.Uint64
	alarmsGCed                 atomic.Uint64
	replRecordsStreamed        atomic.Uint64
	replSnapshotsStreamed      atomic.Uint64
}

// ClusterSnapshot is a point-in-time copy of the cluster counters. The
// json tags shape the alarmserver -metrics-addr HTTP payload.
type ClusterSnapshot struct {
	// RoutedUpdates counts position updates forwarded to an owning shard.
	RoutedUpdates uint64 `json:"routed_updates"`
	// RoutedBatches counts UpdateBatch frames routed; the updates they
	// carried are included in RoutedUpdates.
	RoutedBatches uint64 `json:"routed_batches"`
	// Handoffs counts sessions moved between shards when a client crossed
	// a partition boundary.
	Handoffs uint64 `json:"handoffs"`
	// HandoffsDeferred counts updates whose handoff had to wait because
	// the old or new shard was down.
	HandoffsDeferred uint64 `json:"handoffs_deferred"`
	// DuplicateFiringsSuppressed counts (user, alarm) firings stripped by
	// the router because another shard already delivered the pair.
	DuplicateFiringsSuppressed uint64 `json:"duplicate_firings_suppressed"`
	// RedirectsSent counts wire Redirect frames emitted by per-shard
	// listeners.
	RedirectsSent uint64 `json:"redirects_sent"`
	// ShardCrashes and ShardRecoveries count fault-injection lifecycle
	// events on individual shards.
	ShardCrashes    uint64 `json:"shard_crashes"`
	ShardRecoveries uint64 `json:"shard_recoveries"`
	// Splits and Merges count committed repartition transitions.
	Splits uint64 `json:"splits"`
	Merges uint64 `json:"merges"`
	// SessionsDrained counts sessions moved by merge drains (handoffs
	// driven by the balancer rather than by client movement).
	SessionsDrained uint64 `json:"sessions_drained"`
	// LocateClamped counts position lookups that fell outside the
	// universe and were clamped to the nearest boundary shard.
	LocateClamped uint64 `json:"locate_clamped"`
	// Promotions counts followers promoted to primary after a missed-
	// heartbeat failure detection.
	Promotions uint64 `json:"promotions"`
	// HandoffsParked counts handoffs that parked carried session state
	// because the target shard was down at import time.
	HandoffsParked uint64 `json:"handoffs_parked"`
	// HandoffsFailedOver counts previously parked handoffs that later
	// completed onto a shard a follower promotion revived.
	HandoffsFailedOver uint64 `json:"handoffs_failed_over"`
	// AlarmsGCed counts alarm copies dropped from a split source's
	// registry because their region no longer overlaps its margin.
	AlarmsGCed uint64 `json:"alarms_gced"`
	// ReplRecordsStreamed and ReplSnapshotsStreamed count replication
	// frames applied to followers (records and snapshot resyncs).
	ReplRecordsStreamed   uint64 `json:"repl_records_streamed"`
	ReplSnapshotsStreamed uint64 `json:"repl_snapshots_streamed"`
}

// Snapshot returns a copy of every cluster counter.
func (c *Cluster) Snapshot() ClusterSnapshot {
	return ClusterSnapshot{
		RoutedUpdates:              c.routedUpdates.Load(),
		RoutedBatches:              c.routedBatches.Load(),
		Handoffs:                   c.handoffs.Load(),
		HandoffsDeferred:           c.handoffsDeferred.Load(),
		DuplicateFiringsSuppressed: c.duplicateFiringsSuppressed.Load(),
		RedirectsSent:              c.redirectsSent.Load(),
		ShardCrashes:               c.shardCrashes.Load(),
		ShardRecoveries:            c.shardRecoveries.Load(),
		Splits:                     c.splits.Load(),
		Merges:                     c.merges.Load(),
		SessionsDrained:            c.sessionsDrained.Load(),
		LocateClamped:              c.locateClamped.Load(),
		Promotions:                 c.promotions.Load(),
		HandoffsParked:             c.handoffsParked.Load(),
		HandoffsFailedOver:         c.handoffsFailedOver.Load(),
		AlarmsGCed:                 c.alarmsGCed.Load(),
		ReplRecordsStreamed:        c.replRecordsStreamed.Load(),
		ReplSnapshotsStreamed:      c.replSnapshotsStreamed.Load(),
	}
}

// AddRoutedUpdate records one position update forwarded to its shard.
func (c *Cluster) AddRoutedUpdate() { c.routedUpdates.Add(1) }

// AddRoutedBatch records one UpdateBatch frame routed, carrying n
// updates. RoutedUpdates advances by n so totals stay comparable with
// unbatched runs.
func (c *Cluster) AddRoutedBatch(n int) {
	c.routedUpdates.Add(uint64(n))
	c.routedBatches.Add(1)
}

// AddHandoff records one completed cross-shard session handoff.
func (c *Cluster) AddHandoff() { c.handoffs.Add(1) }

// AddHandoffDeferred records a handoff postponed because a shard was down.
func (c *Cluster) AddHandoffDeferred() { c.handoffsDeferred.Add(1) }

// AddDuplicateFiringsSuppressed records firings stripped by router dedup.
func (c *Cluster) AddDuplicateFiringsSuppressed(n uint64) {
	c.duplicateFiringsSuppressed.Add(n)
}

// AddRedirectSent records one wire Redirect frame sent to a client.
func (c *Cluster) AddRedirectSent() { c.redirectsSent.Add(1) }

// AddShardCrash records one injected shard crash.
func (c *Cluster) AddShardCrash() { c.shardCrashes.Add(1) }

// AddShardRecovery records one shard recovered from its durable store.
func (c *Cluster) AddShardRecovery() { c.shardRecoveries.Add(1) }

// AddSplit records one committed split transition.
func (c *Cluster) AddSplit() { c.splits.Add(1) }

// AddMerge records one committed merge transition.
func (c *Cluster) AddMerge() { c.merges.Add(1) }

// AddSessionsDrained records sessions moved by a merge drain.
func (c *Cluster) AddSessionsDrained(n uint64) { c.sessionsDrained.Add(n) }

// AddLocateClamped records one out-of-universe position clamped by Locate.
func (c *Cluster) AddLocateClamped() { c.locateClamped.Add(1) }

// AddPromotion records one follower promoted to primary.
func (c *Cluster) AddPromotion() { c.promotions.Add(1) }

// AddHandoffParked records a handoff whose carried session parked on a
// down target shard.
func (c *Cluster) AddHandoffParked() { c.handoffsParked.Add(1) }

// AddHandoffFailedOver records a parked handoff completed onto a
// promotion-revived shard.
func (c *Cluster) AddHandoffFailedOver() { c.handoffsFailedOver.Add(1) }

// AddAlarmsGCed records alarm copies garbage-collected from a split
// source's registry.
func (c *Cluster) AddAlarmsGCed(n uint64) { c.alarmsGCed.Add(n) }

// AddReplRecordsStreamed records record frames applied to followers.
func (c *Cluster) AddReplRecordsStreamed(n uint64) { c.replRecordsStreamed.Add(n) }

// AddReplSnapshotStreamed records one snapshot frame applied to a
// follower (bootstrap or resync).
func (c *Cluster) AddReplSnapshotStreamed() { c.replSnapshotsStreamed.Add(1) }
