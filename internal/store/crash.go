package store

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
)

// Tail-mangling injectors for the crash harness. They corrupt ONLY the
// final frame of a WAL file: because every append is a single write(2),
// a real crash can tear at most the last frame, and recovery's
// truncation-repair is allowed to discard only records that were never
// acknowledged — which is exactly the final (in-flight) one.

// TearMode selects how a simulated crash mangles the WAL tail.
type TearMode int

const (
	// TearNone kills at a record boundary: the file is left intact.
	TearNone TearMode = iota
	// TearTruncate cuts the final frame short (torn write).
	TearTruncate
	// TearGarbage truncates mid-frame and appends random junk, as if the
	// filesystem surfaced stale blocks.
	TearGarbage
	// TearFlipBit flips one bit inside the final frame (latent corruption
	// caught by the CRC).
	TearFlipBit
)

func (m TearMode) String() string {
	switch m {
	case TearNone:
		return "none"
	case TearTruncate:
		return "truncate"
	case TearGarbage:
		return "garbage"
	case TearFlipBit:
		return "flipbit"
	}
	return fmt.Sprintf("TearMode(%d)", int(m))
}

// MangleTail applies mode to the last frame of the WAL at path, using rng
// to pick the exact byte/bit. A missing or empty file, or one with no
// complete frame, is left untouched (nothing to tear). The store must be
// dead (Kill) before calling.
func MangleTail(path string, mode TearMode, rng *rand.Rand) error {
	if mode == TearNone {
		return nil
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	lastStart, lastLen := lastFrame(buf)
	if lastLen == 0 {
		return nil
	}
	switch mode {
	case TearTruncate:
		// Keep a strict prefix of the final frame (possibly zero bytes of
		// it — a boundary-adjacent tear).
		keep := lastStart + rng.Intn(lastLen)
		return os.Truncate(path, int64(keep))
	case TearGarbage:
		keep := lastStart + rng.Intn(lastLen)
		junk := make([]byte, 3+rng.Intn(16))
		rng.Read(junk)
		out := append(append([]byte(nil), buf[:keep]...), junk...)
		return os.WriteFile(path, out, 0o644)
	case TearFlipBit:
		bit := rng.Intn(lastLen * 8)
		buf[lastStart+bit/8] ^= 1 << (bit % 8)
		return os.WriteFile(path, buf, 0o644)
	}
	return fmt.Errorf("store: unknown tear mode %d", int(mode))
}

// lastFrame walks the frame chain and returns the offset and length of
// the final well-formed frame (0,0 when the file holds none). Trailing
// damage from an earlier mangle is ignored — walking stops where the
// chain breaks, same as recovery.
func lastFrame(buf []byte) (start, length int) {
	off := 0
	for {
		if len(buf)-off < frameHeader {
			return start, length
		}
		n := binary.BigEndian.Uint32(buf[off:])
		if n > maxFramePayload || uint64(len(buf)-off-frameHeader) < uint64(n) {
			return start, length
		}
		start, length = off, frameHeader+int(n)
		off += length
	}
}

// flipBitFromEnd flips one bit in the file at path, addressed as a bit
// index counting backwards from EOF (0 = lowest bit of the final byte).
// Used by CrashPoint scripting.
func flipBitFromEnd(path string, bit int64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	idx := int64(len(buf)) - 1 - bit/8
	if idx < 0 {
		return fmt.Errorf("store: flip bit %d out of range (file %d bytes)", bit, len(buf))
	}
	buf[idx] ^= 1 << (bit % 8)
	return os.WriteFile(path, buf, 0o644)
}
