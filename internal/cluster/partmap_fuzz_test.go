package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
)

// fuzzSeedMaps builds the seed frames FuzzPartitionMapDecode starts
// from: fresh grids, a split map, and a mid-drain merge — every shape
// the durable map file can take. The committed corpus under
// testdata/fuzz/FuzzPartitionMapDecode holds the same frames.
func fuzzSeedMaps(f testing.TB) [][]byte {
	var seeds [][]byte
	add := func(p *PartitionMap, err error) *PartitionMap {
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, EncodePartitionMap(p))
		return p
	}
	add(NewPartitionMapGrid(geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, 1, 1))
	p := add(NewPartitionMapGrid(geom.Rect{MinX: -37, MinY: 13, MaxX: 9963, MaxY: 7013}, 2, 2))
	split, _, err := p.Split(0)
	p2 := add(split, err)
	merged, err := p2.Merge(0, 4)
	add(merged, err)
	return seeds
}

// FuzzPartitionMapDecode exercises the map-file decoder against
// arbitrary bytes, mirroring the WAL's FuzzWALDecode: decoding must
// never panic, and every accepted frame must re-encode byte-identically
// and locate points without escaping its live shard set.
func FuzzPartitionMapDecode(f *testing.F) {
	for _, frame := range fuzzSeedMaps(f) {
		f.Add(frame)
		torn := frame[:len(frame)-5]
		f.Add(append([]byte(nil), torn...))
		flipped := append([]byte(nil), frame...)
		flipped[len(flipped)/2] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("SBPM"))
	f.Add([]byte("SBPM\x00\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePartitionMap(data)
		if err != nil {
			return
		}
		re := EncodePartitionMap(p)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted frame re-encodes differently:\n in: % x\nout: % x", data, re)
		}
		if p.N() < 1 {
			t.Fatal("accepted map with no live shards")
		}
		u := p.Universe()
		probes := []geom.Point{
			u.Center(),
			{X: u.MinX, Y: u.MinY},
			{X: u.MaxX, Y: u.MaxY},
			{X: u.MinX - 1, Y: u.MaxY + 1},
		}
		for _, pt := range probes {
			s, _ := p.Locate(pt)
			if !p.Has(s) {
				t.Fatalf("Locate(%v) returned retired shard %d", pt, s)
			}
		}
	})
}

// TestPartitionMapFuzzCorpus keeps the committed seed corpus honest:
// every file under testdata/fuzz/FuzzPartitionMapDecode must be a
// valid go-fuzz corpus entry whose frame the decoder accepts. Run with
// REGEN_FUZZ_CORPUS=1 to rewrite the corpus from fuzzSeedMaps.
func TestPartitionMapFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzPartitionMapDecode")
	if os.Getenv("REGEN_FUZZ_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, frame := range fuzzSeedMaps(t) {
			entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", frame)
			name := filepath.Join(dir, fmt.Sprintf("seed-map-%d", i))
			if err := os.WriteFile(name, []byte(entry), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("committed corpus missing: %v", err)
	}
	decodable := 0
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var frame []byte
		var header string
		if _, err := fmt.Sscanf(string(data), "%s test fuzz v1", &header); err != nil || header != "go" {
			t.Fatalf("%s: not a go fuzz corpus entry", e.Name())
		}
		nl := bytes.IndexByte(data, '\n')
		var quoted string
		if _, err := fmt.Sscanf(string(data[nl+1:]), "[]byte(%q)", &quoted); err != nil {
			t.Fatalf("%s: bad corpus literal: %v", e.Name(), err)
		}
		frame = []byte(quoted)
		if p, err := DecodePartitionMap(frame); err == nil {
			decodable++
			if !bytes.Equal(EncodePartitionMap(p), frame) {
				t.Fatalf("%s: corpus frame not byte-stable", e.Name())
			}
		}
	}
	if decodable == 0 {
		t.Fatal("no committed corpus entry decodes — seeds have rotted")
	}
}
