package wire

import (
	"encoding/binary"

	"github.com/sabre-geo/sabre/internal/geom"
)

// Typed install messages for the lifecycle alarm kinds (DESIGN.md §15).
// Each installs one alarm owned by the sending user and is answered by an
// InstallReply carrying the assigned alarm ID. The resulting firings
// arrive as AlarmFired ids carrying packed transition events: bits 0..39
// alarm ID, bits 40..42 transition (0 one-shot, 1 enter, 2 exit,
// 3 severity), bits 43..63 occurrence count or quantized severity
// (alarm.PackEvent). A one-shot firing is numerically the raw alarm ID,
// so legacy clients are unaffected.

// InstallContinuous installs a continuous (enter/exit, re-arming) alarm
// for the owner, optionally shared with subscribers. Cooldown is the
// re-arm delay in ticks after an exit.
type InstallContinuous struct {
	Owner       uint64
	Subscribers []uint64
	Region      geom.Rect
	Cooldown    uint32
}

// Kind implements Message.
func (InstallContinuous) Kind() Kind { return KindInstallContinuous }

func (m InstallContinuous) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.Owner)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Subscribers)))
	for _, s := range m.Subscribers {
		dst = binary.BigEndian.AppendUint64(dst, s)
	}
	dst = appendRect(dst, m.Region)
	return binary.BigEndian.AppendUint32(dst, m.Cooldown)
}

// InstallPair installs a moving-anchor proximity alarm between two mobile
// endpoints: it fires (enter) when Owner and Anchor come within Radius
// meters of each other and again (exit) when they separate, on both
// endpoints. Cooldown is the re-arm delay in ticks after an exit.
type InstallPair struct {
	Owner    uint64
	Anchor   uint64
	Radius   float64
	Cooldown uint32
}

// Kind implements Message.
func (InstallPair) Kind() Kind { return KindInstallPair }

func (m InstallPair) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.Owner)
	dst = binary.BigEndian.AppendUint64(dst, m.Anchor)
	dst = appendFloat(dst, m.Radius)
	return binary.BigEndian.AppendUint32(dst, m.Cooldown)
}

// FactorInfo is one weighted risk factor of a composite alarm: a circle
// when Radius > 0, otherwise the rect.
type FactorInfo struct {
	Center geom.Point
	Radius float64
	Region geom.Rect
	Weight float64
}

// InstallComposite installs a composite risk-zone alarm: it fires once
// per subscriber when the summed weight of the factors containing the
// user's position reaches Threshold, and expires (is GC'd server-side)
// at logical tick ExpiresAt (0 = never).
type InstallComposite struct {
	Owner       uint64
	Subscribers []uint64
	Factors     []FactorInfo
	Threshold   float64
	ExpiresAt   uint64
}

// Kind implements Message.
func (InstallComposite) Kind() Kind { return KindInstallComposite }

func (m InstallComposite) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.Owner)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Subscribers)))
	for _, s := range m.Subscribers {
		dst = binary.BigEndian.AppendUint64(dst, s)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Factors)))
	for _, f := range m.Factors {
		dst = appendFloat(dst, f.Center.X)
		dst = appendFloat(dst, f.Center.Y)
		dst = appendFloat(dst, f.Radius)
		dst = appendRect(dst, f.Region)
		dst = appendFloat(dst, f.Weight)
	}
	dst = appendFloat(dst, m.Threshold)
	return binary.BigEndian.AppendUint64(dst, m.ExpiresAt)
}

// InstallReply answers a typed install: the assigned alarm ID, or 0 when
// the server rejected the alarm.
type InstallReply struct {
	ID uint64
}

// Kind implements Message.
func (InstallReply) Kind() Kind { return KindInstallReply }

func (m InstallReply) appendTo(dst []byte) []byte {
	return binary.BigEndian.AppendUint64(dst, m.ID)
}

// sizeFactor is the encoded size of one FactorInfo.
const sizeFactor = 8 + 8 + 8 + 32 + 8
