// Command alarmserver runs the SABRE alarm server on TCP. It installs an
// optional random alarm workload at startup, accepts client connections
// speaking the length-prefixed wire protocol (see cmd/alarmclient), and
// prints the evaluation counters on shutdown (SIGINT/SIGTERM).
//
// With -data-dir the server is durable: every state change (alarm
// installs, client enrollment, session tokens, firings, acks) is
// written-ahead to a CRC-framed log with periodic snapshots, and the
// server recovers its exact observable state from disk after a crash.
//
// With -shards N (or an explicit -partition CxR grid) the server runs as
// a horizontally sharded cluster: each shard owns one rectangular
// partition of the universe, serves its own TCP listener on consecutive
// ports starting at -addr's, and keeps its own durable store under
// <data-dir>/shard<i>. Clients crossing a partition boundary receive a
// wire Redirect to the owning shard, carrying a resume token minted by
// the in-process session handoff (see PROTOCOL.md "Redirect and
// handoff").
//
// With -rebalance the sharded cluster adapts its partition map to load
// at runtime: every interval it splits the hottest shard above
// -split-above and merges the coldest sibling pair below -merge-below,
// migrating sessions durably and redirecting clients with an
// epoch-stamped wire Redirect (see DESIGN.md "Dynamic repartitioning").
// New shards listen on base port + shard ID.
//
// With -replicas N (sharded durable mode) every shard streams its WAL
// to N follower logs; a primary silent past -promote-after is deposed —
// its fencing term rejects any late appends — and its best-caught-up
// follower is promoted in place on the same shard ID and listener, with
// the partition-map epoch bumped so clients re-sync (see DESIGN.md
// "Replication and failover"). -repl-ack applies every write to every
// follower before acknowledging it.
//
// With -metrics-addr the server exposes its counters as JSON over HTTP
// (GET /metrics): the engine snapshot in single-server mode, the cluster
// counters plus every shard's snapshot — including replication term,
// follower count, acked position and lag — in sharded mode.
//
// Usage:
//
//	alarmserver -addr :7700 -side 5000 -alarms 150 -public 0.1 -seed 1
//	alarmserver -addr :7700 -data-dir /var/lib/sabre -snapshot-every 1024
//	alarmserver -addr :7700 -shards 4 -data-dir /var/lib/sabre -metrics-addr :7790
//	alarmserver -addr :7700 -shards 2 -rebalance 5s -split-above 500 -merge-below 100
//	alarmserver -addr :7700 -shards 4 -data-dir /var/lib/sabre -replicas 1 -promote-after 2s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/cluster"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/motion"
	"github.com/sabre-geo/sabre/internal/pyramid"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "alarmserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":7700", "listen address")
		side    = flag.Float64("side", 5000, "universe side length in metres")
		cellKM2 = flag.Float64("cell-km2", 2.5, "grid cell area in km²")
		height  = flag.Int("pyramid-height", 5, "PBSR pyramid height")
		nAlarms = flag.Int("alarms", 150, "random alarms to install at startup")
		public  = flag.Float64("public", 0.10, "fraction of startup alarms that are public")
		users   = flag.Int("users", 100, "user-id range for random private alarm owners")
		vmax    = flag.Float64("vmax", 34, "system max client speed in m/s (safe periods)")
		seed    = flag.Int64("seed", 1, "alarm generation seed")
		quiet   = flag.Bool("quiet", false, "suppress per-connection logging")
		snap    = flag.String("snapshot", "", "legacy alarm-table snapshot file (ignored when -data-dir is set)")
		idle    = flag.Duration("idle-timeout", server.DefaultIdleTimeout, "reap connections silent for this long (0 disables); session state survives for a token resume")

		dataDir   = flag.String("data-dir", "", "durable state directory (WAL + snapshots); empty runs memory-only")
		snapEvery = flag.Int("snapshot-every", 1024, "checkpoint the durable state every N log appends (0 disables automatic checkpoints)")
		fsync     = flag.Bool("fsync", true, "fsync the WAL on every append (power-failure durability; off still survives process crashes)")
		groupMax  = flag.Int("wal-group-max", 0, "max records one WAL group commit lands with a single write+fsync (0 = store default; 1 = per-record commit)")
		groupWait = flag.Duration("wal-group-wait", 0, "hold a WAL commit group open this long before flushing, trading latency for larger groups (0 flushes immediately)")
		sessTTL   = flag.Duration("session-ttl", 0, "expire reliable sessions idle for this long (0 disables expiry)")

		shards      = flag.Int("shards", 1, "run as a sharded cluster with this many spatial partitions (>1); shard i listens on -addr's port + i")
		partition   = flag.String("partition", "", "explicit partition grid as CxR, e.g. 4x2 (overrides the near-square split of -shards)")
		metricsAddr = flag.String("metrics-addr", "", "serve counters as JSON over HTTP on this address (GET /metrics)")

		replicas     = flag.Int("replicas", 0, "follower logs per shard for WAL replication and failover (sharded durable mode only; 0 disables)")
		promoteAfter = flag.Duration("promote-after", 2*time.Second, "promote a follower after a primary has been silent this long (with -replicas)")
		replAck      = flag.Bool("repl-ack", false, "synchronous replication: apply every write to every follower before acknowledging it")

		rebalance  = flag.Duration("rebalance", 0, "observe per-shard load on this interval and split hot / merge cold partitions at runtime (0 disables; sharded mode only)")
		splitAbove = flag.Int("split-above", 0, "split a shard whose load score (sessions + updates per window) exceeds this (0 disables splits)")
		mergeBelow = flag.Int("merge-below", 0, "merge sibling shards whose combined load score falls below this (0 disables merges)")
		maxShards  = flag.Int("max-shards", 0, "cap on live shards for runtime splits (0 = no cap)")
		minShards  = flag.Int("min-shards", 0, "floor on live shards for runtime merges (0 = floor of 1)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "alarmserver: ", log.LstdFlags)
	if *quiet {
		logger = nil
	}
	model, err := motion.New(1, 32)
	if err != nil {
		return err
	}
	universe := geom.Rect{MinX: -100, MinY: -100, MaxX: *side + 100, MaxY: *side + 100}
	cfg := server.Config{
		Universe:                universe,
		CellAreaM2:              *cellKM2 * 1e6,
		Model:                   model,
		PyramidParams:           pyramid.Params{U: 3, V: 3, Height: *height, MaxBits: 2048},
		MaxSpeed:                *vmax,
		TickSeconds:             1,
		PrecomputePublicBitmaps: true,
		Costs:                   metrics.DefaultCosts(),
	}

	cols, rows, err := parsePartition(*partition)
	if err != nil {
		return err
	}
	if *rebalance > 0 && *shards <= 1 && cols*rows <= 1 {
		return fmt.Errorf("-rebalance needs sharded mode (-shards or -partition)")
	}
	if *replicas > 0 {
		if *shards <= 1 && cols*rows <= 1 {
			return fmt.Errorf("-replicas needs sharded mode (-shards or -partition)")
		}
		if *dataDir == "" {
			return fmt.Errorf("-replicas needs -data-dir (follower logs are durable)")
		}
	}
	// The failure detector counts replication ticks; a promotion window
	// shorter than one tick still waits a full tick.
	promoteTicks := int(*promoteAfter / replTickInterval)
	if promoteTicks < 1 {
		promoteTicks = 1
	}
	if *shards > 1 || cols*rows > 1 {
		return runClustered(clusterParams{
			engine:       cfg,
			shards:       *shards,
			cols:         cols,
			rows:         rows,
			addr:         *addr,
			metricsAddr:  *metricsAddr,
			dataDir:      *dataDir,
			store:        store.Options{Fsync: *fsync, SnapshotEvery: *snapEvery, GroupMax: *groupMax, GroupWait: *groupWait},
			logger:       logger,
			idle:         *idle,
			sessTTL:      *sessTTL,
			nAlarms:      *nAlarms,
			public:       *public,
			users:        *users,
			side:         *side,
			seed:         *seed,
			cellKM2:      *cellKM2,
			replicas:     *replicas,
			promoteTicks: promoteTicks,
			replAck:      *replAck,
			rebalance:    *rebalance,
			balancer: cluster.BalancerConfig{
				SplitAbove: *splitAbove,
				MergeBelow: *mergeBelow,
				MaxShards:  *maxShards,
				MinShards:  *minShards,
			},
		})
	}

	var eng *server.Engine
	if *dataDir != "" {
		st, state, info, err := store.Open(*dataDir, store.Options{
			Fsync:         *fsync,
			SnapshotEvery: *snapEvery,
			GroupMax:      *groupMax,
			GroupWait:     *groupWait,
		})
		if err != nil {
			return fmt.Errorf("open store %s: %w", *dataDir, err)
		}
		eng, err = server.NewDurable(cfg, st, state, info)
		if err != nil {
			return err
		}
		if info.Replayed > 0 || info.TruncatedBytes > 0 {
			fmt.Printf("recovered generation %d: %d log records replayed, %d torn bytes discarded\n",
				st.Gen(), info.Replayed, info.TruncatedBytes)
		}
		if eng.Registry().Len() == 0 && *nAlarms > 0 {
			if err := installRandomAlarms(eng, *nAlarms, *public, *users, *side, *seed); err != nil {
				return err
			}
		} else {
			fmt.Printf("recovered %d alarms from %s\n", eng.Registry().Len(), *dataDir)
		}
	} else {
		eng, err = server.New(cfg)
		if err != nil {
			return err
		}
		if *snap != "" {
			if f, err := os.Open(*snap); err == nil {
				restored, lerr := alarm.LoadRegistry(f)
				f.Close()
				if lerr != nil {
					return fmt.Errorf("load snapshot %s: %w", *snap, lerr)
				}
				eng.ReplaceRegistry(restored)
				fmt.Printf("restored %d alarms from %s\n", restored.Len(), *snap)
			} else if !os.IsNotExist(err) {
				return err
			} else if err := installRandomAlarms(eng, *nAlarms, *public, *users, *side, *seed); err != nil {
				return err
			}
		} else if err := installRandomAlarms(eng, *nAlarms, *public, *users, *side, *seed); err != nil {
			return err
		}
	}

	srv, err := server.NewTCPServerIdle(eng, *addr, logger, *idle)
	if err != nil {
		return err
	}
	fmt.Printf("alarmserver listening on %s (universe %.0f m, %d alarms, cell %.2f km²)\n",
		srv.Addr(), *side, eng.Registry().Len(), *cellKM2)

	if *metricsAddr != "" {
		msrv, err := serveMetrics(*metricsAddr, func() any {
			sn := eng.Metrics().Snapshot()
			return struct {
				Server metrics.Snapshot `json:"server"`
				// AvgBatchSize is updates per UpdateBatch frame (0 when the
				// clients don't batch).
				AvgBatchSize float64 `json:"avg_batch_size"`
				// WALGroupSizeAvg is records landed per WAL group commit —
				// the write/fsync amortization factor.
				WALGroupSizeAvg float64 `json:"wal_group_size_avg"`
			}{sn, sn.AvgBatchSize(), sn.WALGroupSizeAvg()}
		})
		if err != nil {
			return err
		}
		defer msrv.Close()
	}

	// Session expiry runs off the wall clock; each sweep reaps reliable
	// sessions idle past the TTL and logs their ExpireRec durably.
	stopExpiry := make(chan struct{})
	if *sessTTL > 0 {
		go func() {
			t := time.NewTicker(*sessTTL / 4)
			defer t.Stop()
			for {
				select {
				case <-stopExpiry:
					return
				case <-t.C:
					if n, err := eng.ExpireSessions(*sessTTL); err != nil {
						fmt.Fprintf(os.Stderr, "alarmserver: session expiry: %v\n", err)
					} else if n > 0 {
						fmt.Printf("expired %d idle sessions\n", n)
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()
	select {
	case <-sig:
		close(stopExpiry)
		srv.Close()
		<-errc
	case err := <-errc:
		close(stopExpiry)
		return err
	}

	if st := eng.Store(); st != nil {
		// Clean shutdown: fold the log into a final snapshot so the next
		// boot recovers without replay.
		if err := st.Checkpoint(); err != nil {
			return fmt.Errorf("shutdown checkpoint: %w", err)
		}
		if err := st.Close(); err != nil {
			return err
		}
		fmt.Printf("checkpointed durable state to %s (generation %d)\n", *dataDir, st.Gen())
	} else if *snap != "" {
		f, err := os.Create(*snap)
		if err != nil {
			return err
		}
		if err := eng.Registry().Snapshot(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved alarm table to %s\n", *snap)
	}

	m := eng.Metrics().Snapshot()
	fmt.Printf("\n--- session counters ---\n")
	fmt.Printf("uplink:    %d msgs, %d bytes\n", m.UplinkMessages, m.UplinkBytes)
	fmt.Printf("downlink:  %d msgs, %d bytes\n", m.DownlinkMessages, m.DownlinkBytes)
	fmt.Printf("triggers:  %d\n", m.AlarmsTriggered)
	fmt.Printf("sessions:  %d opened, %d resumed, %d heartbeats, %d expired\n",
		m.SessionsOpened, m.SessionsResumed, m.Heartbeats, m.SessionsExpired)
	fmt.Printf("recovery:  %d duplicate updates, %d firing redeliveries, %d evictions\n",
		m.RedeliveredUpdates, m.FiredRedeliveries, m.FiredEvictions)
	if eng.Store() != nil {
		fmt.Printf("durability: %d appends (%d bytes), %d fsyncs, %d snapshots, %d records replayed at boot\n",
			m.WALAppends, m.WALBytes, m.WALFsyncs, m.Snapshots, m.RecoveredRecords)
	}
	fmt.Printf("cpu model: alarm processing %.3fs, safe region %.3fs\n",
		m.AlarmProcessingSeconds(), m.SafeRegionSeconds())
	return nil
}

// installRandomAlarms seeds the registry with a workload mirroring the
// simulation's composition (public fraction, private:shared 2:1). On a
// durable engine every alarm is logged before the function returns.
func installRandomAlarms(eng *server.Engine, n int, publicFrac float64, users int, side float64, seed int64) error {
	_, err := eng.InstallAlarms(makeRandomAlarms(n, publicFrac, users, side, seed))
	return err
}

func makeRandomAlarms(n int, publicFrac float64, users int, side float64, seed int64) []alarm.Alarm {
	rng := rand.New(rand.NewSource(seed))
	numPublic := int(float64(n) * publicFrac)
	numShared := (n - numPublic) / 3
	batch := make([]alarm.Alarm, 0, n)
	for i := 0; i < n; i++ {
		a := alarm.Alarm{
			Owner: alarm.UserID(rng.Intn(users) + 1),
			Region: geom.RectAround(
				geom.Pt(rng.Float64()*side, rng.Float64()*side),
				100+rng.Float64()*300,
			),
		}
		switch {
		case i < numPublic:
			a.Scope = alarm.Public
		case i < numPublic+numShared:
			a.Scope = alarm.Shared
			a.Subscribers = []alarm.UserID{a.Owner, alarm.UserID(rng.Intn(users) + 1)}
		default:
			a.Scope = alarm.Private
		}
		batch = append(batch, a)
	}
	return batch
}

// parsePartition parses a "CxR" grid spec ("4x2"); empty means no
// explicit grid (0, 0).
func parsePartition(s string) (cols, rows int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	c, r, ok := strings.Cut(s, "x")
	if ok {
		cols, err = strconv.Atoi(strings.TrimSpace(c))
		if err == nil {
			rows, err = strconv.Atoi(strings.TrimSpace(r))
		}
	}
	if !ok || err != nil || cols < 1 || rows < 1 {
		return 0, 0, fmt.Errorf("bad -partition %q: want CxR, e.g. 4x2", s)
	}
	return cols, rows, nil
}

// shardAddrs derives one listen address per shard from the base -addr by
// incrementing the port: :7700 with 4 shards listens on 7700..7703. A
// base port of 0 keeps 0 everywhere (ephemeral ports for every shard).
func shardAddrs(base string, n int) ([]string, error) {
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return nil, fmt.Errorf("bad -addr %q: %w", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("bad -addr %q: sharded mode needs a numeric port", base)
	}
	addrs := make([]string, n)
	for i := range addrs {
		p := port
		if port != 0 {
			p = port + i
		}
		addrs[i] = net.JoinHostPort(host, strconv.Itoa(p))
	}
	return addrs, nil
}

// shardAddr derives the listen address for one shard ID from the base
// -addr, so shards allocated by runtime splits keep the same port
// scheme as the boot-time grid.
func shardAddr(base string, shard int) (string, error) {
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return "", fmt.Errorf("bad -addr %q: %w", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("bad -addr %q: sharded mode needs a numeric port", base)
	}
	if port != 0 {
		port += shard
	}
	return net.JoinHostPort(host, strconv.Itoa(port)), nil
}

// serveMetrics serves the payload as indented JSON on GET /metrics (and
// /) in a background goroutine until the returned server is closed.
func serveMetrics(addr string, payload func() any) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	handler := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	mux.HandleFunc("/metrics", handler)
	mux.HandleFunc("/", handler)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	return srv, nil
}

// clusterParams carries the parsed flags into the sharded serving path.
type clusterParams struct {
	engine      server.Config
	shards      int
	cols, rows  int
	addr        string
	metricsAddr string
	dataDir     string
	store       store.Options
	logger      *log.Logger
	idle        time.Duration
	sessTTL     time.Duration
	nAlarms     int
	public      float64
	users       int
	side        float64
	seed        int64
	cellKM2     float64
	// replicas/promoteTicks/replAck configure per-shard WAL replication:
	// follower count, silent replication ticks before promotion, and
	// synchronous-apply mode.
	replicas     int
	promoteTicks int
	replAck      bool
	rebalance    time.Duration
	balancer     cluster.BalancerConfig
}

// replTickInterval is the wall-clock cadence of the replication clock in
// server mode: follower pumps, failure detection and promotions all
// advance on this beat.
const replTickInterval = 500 * time.Millisecond

// runClustered serves a horizontally sharded cluster: one engine and one
// TCP listener per spatial partition, with cross-shard handoff and
// redirects handled by the per-listener routers inside cluster.NewTCP.
func runClustered(p clusterParams) error {
	cl, err := cluster.New(cluster.Config{
		Shards:       p.shards,
		Cols:         p.cols,
		Rows:         p.rows,
		Engine:       p.engine,
		DataDir:      p.dataDir,
		Store:        p.store,
		Replicas:     p.replicas,
		PromoteAfter: p.promoteTicks,
		ReplAck:      p.replAck,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	installed := 0
	for i := 0; i < cl.N(); i++ {
		if eng := cl.Engine(i); eng != nil {
			installed += eng.Registry().Len()
		}
	}
	if installed == 0 && p.nAlarms > 0 {
		if _, err := cl.InstallAlarms(makeRandomAlarms(p.nAlarms, p.public, p.users, p.side, p.seed)); err != nil {
			return err
		}
	} else if installed > 0 {
		fmt.Printf("recovered alarms from %s (%d shard-local copies)\n", p.dataDir, installed)
	}

	addrs, err := shardAddrs(p.addr, cl.N())
	if err != nil {
		return err
	}
	srv, err := cluster.NewTCP(cl, addrs, p.logger, p.idle)
	if err != nil {
		return err
	}
	fmt.Printf("alarmserver cluster: %d shards, map epoch %d (universe %.0f m, cell %.2f km²)\n",
		cl.PartitionMap().N(), cl.Epoch(), p.side, p.cellKM2)
	for i, a := range srv.Addrs() {
		if rect, ok := cl.PartitionMap().RectOf(i); ok {
			fmt.Printf("  shard %d: %s owns %v\n", i, a, rect)
		}
	}

	if p.metricsAddr != "" {
		msrv, err := serveMetrics(p.metricsAddr, func() any {
			return struct {
				Cluster metrics.ClusterSnapshot `json:"cluster"`
				Shards  []cluster.ShardStatus   `json:"shards"`
			}{cl.Metrics().Snapshot(), cl.ShardSnapshots()}
		})
		if err != nil {
			return err
		}
		defer msrv.Close()
	}

	// The replication clock beats on a fixed interval: live primaries
	// pump their follower streams, a primary silent for -promote-after
	// is deposed and its best follower promoted in place (same shard ID,
	// same listener — clients see a re-served shard, not a new address),
	// and any merge drain interrupted by a failover resumes.
	stopRepl := make(chan struct{})
	if p.replicas > 0 {
		fmt.Printf("replication: %d follower(s) per shard, promote after %d silent ticks of %v (ack=%v)\n",
			p.replicas, p.promoteTicks, replTickInterval, p.replAck)
		go func() {
			t := time.NewTicker(replTickInterval)
			defer t.Stop()
			now := 0
			for {
				select {
				case <-stopRepl:
					return
				case <-t.C:
					now++
					promoted := cl.Metrics().Snapshot().Promotions
					cl.TickReplication(now)
					if got := cl.Metrics().Snapshot().Promotions; got > promoted {
						fmt.Printf("replication: promoted %d follower(s), map epoch %d\n", got-promoted, cl.Epoch())
					}
					if err := cl.ResumeDrains(); err != nil {
						fmt.Fprintf(os.Stderr, "alarmserver: resume drains: %v\n", err)
					}
				}
			}
		}()
	}

	// The balancer observes per-shard load each interval and performs at
	// most one split and one merge per tick; a split's new shard gets its
	// own listener (base port + shard ID) before clients can be
	// redirected to it, and until then the router serves its users
	// through in-process handoffs from the shard they dialed.
	stopBalance := make(chan struct{})
	if p.rebalance > 0 {
		bal, err := cluster.NewBalancer(cl, p.balancer)
		if err != nil {
			return err
		}
		fmt.Printf("rebalancing every %v (split above %d, merge below %d)\n",
			p.rebalance, p.balancer.SplitAbove, p.balancer.MergeBelow)
		go func() {
			t := time.NewTicker(p.rebalance)
			defer t.Stop()
			for {
				select {
				case <-stopBalance:
					return
				case <-t.C:
					actions, err := bal.Step()
					if err != nil {
						fmt.Fprintf(os.Stderr, "alarmserver: rebalance: %v\n", err)
						continue
					}
					if len(actions) == 0 {
						continue
					}
					for _, a := range actions {
						fmt.Printf("rebalance: %s (map epoch %d)\n", a, cl.Epoch())
					}
					bound := srv.Addrs()
					for _, s := range cl.PartitionMap().Shards() {
						if s < len(bound) && bound[s] != "" {
							continue
						}
						addr, err := shardAddr(p.addr, s)
						if err != nil {
							fmt.Fprintf(os.Stderr, "alarmserver: rebalance: %v\n", err)
							continue
						}
						if la, err := srv.ServeShard(s, addr); err != nil {
							fmt.Fprintf(os.Stderr, "alarmserver: rebalance: shard %d listener: %v\n", s, err)
						} else {
							fmt.Printf("rebalance: shard %d serving on %s\n", s, la)
						}
					}
				}
			}
		}()
	}

	// Session expiry sweeps every shard that is up.
	stopExpiry := make(chan struct{})
	if p.sessTTL > 0 {
		go func() {
			t := time.NewTicker(p.sessTTL / 4)
			defer t.Stop()
			for {
				select {
				case <-stopExpiry:
					return
				case <-t.C:
					for i := 0; i < cl.N(); i++ {
						eng := cl.Engine(i)
						if eng == nil {
							continue
						}
						if n, err := eng.ExpireSessions(p.sessTTL); err != nil {
							fmt.Fprintf(os.Stderr, "alarmserver: shard %d session expiry: %v\n", i, err)
						} else if n > 0 {
							fmt.Printf("shard %d: expired %d idle sessions\n", i, n)
						}
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()
	select {
	case <-sig:
		close(stopRepl)
		close(stopBalance)
		close(stopExpiry)
		srv.Close()
		<-errc
	case err := <-errc:
		close(stopRepl)
		close(stopBalance)
		close(stopExpiry)
		return err
	}

	// Clean shutdown: checkpoint every durable shard so the next boot
	// recovers without replay, then fold the counters for the printout.
	var sum metrics.Snapshot
	for i := 0; i < cl.N(); i++ {
		eng := cl.Engine(i)
		if eng == nil {
			continue
		}
		if st := eng.Store(); st != nil {
			if err := st.Checkpoint(); err != nil {
				return fmt.Errorf("shard %d shutdown checkpoint: %w", i, err)
			}
		}
		m := eng.Metrics().Snapshot()
		sum.UplinkMessages += m.UplinkMessages
		sum.UplinkBytes += m.UplinkBytes
		sum.DownlinkMessages += m.DownlinkMessages
		sum.DownlinkBytes += m.DownlinkBytes
		sum.AlarmsTriggered += m.AlarmsTriggered
		sum.SessionsOpened += m.SessionsOpened
		sum.SessionsResumed += m.SessionsResumed
		sum.Heartbeats += m.Heartbeats
		sum.SessionsExpired += m.SessionsExpired
	}
	if err := cl.Close(); err != nil {
		return err
	}
	if p.dataDir != "" {
		fmt.Printf("checkpointed %d shard stores under %s\n", cl.N(), p.dataDir)
	}

	cm := cl.Metrics().Snapshot()
	fmt.Printf("\n--- cluster counters ---\n")
	fmt.Printf("uplink:    %d msgs, %d bytes\n", sum.UplinkMessages, sum.UplinkBytes)
	fmt.Printf("downlink:  %d msgs, %d bytes\n", sum.DownlinkMessages, sum.DownlinkBytes)
	fmt.Printf("triggers:  %d\n", sum.AlarmsTriggered)
	fmt.Printf("sessions:  %d opened, %d resumed, %d heartbeats, %d expired\n",
		sum.SessionsOpened, sum.SessionsResumed, sum.Heartbeats, sum.SessionsExpired)
	fmt.Printf("routing:   %d updates routed, %d redirects sent, %d out-of-universe positions clamped\n",
		cm.RoutedUpdates, cm.RedirectsSent, cm.LocateClamped)
	fmt.Printf("handoffs:  %d completed, %d deferred, %d duplicate firings suppressed\n",
		cm.Handoffs, cm.HandoffsDeferred, cm.DuplicateFiringsSuppressed)
	fmt.Printf("rebalance: %d splits, %d merges, %d sessions drained (final epoch %d, %d shards)\n",
		cm.Splits, cm.Merges, cm.SessionsDrained, cl.Epoch(), cl.PartitionMap().N())
	return nil
}
