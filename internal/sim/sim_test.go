package sim

import (
	"testing"

	"github.com/sabre-geo/sabre/internal/motion"
	"github.com/sabre-geo/sabre/internal/wire"
)

func buildSmall(t testing.TB, seed int64) *Workload {
	t.Helper()
	w, err := BuildWorkload(SmallWorkload(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func runStrategy(t testing.TB, w *Workload, sc StrategyConfig) *Report {
	t.Helper()
	r, err := Run(w, sc)
	if err != nil {
		t.Fatalf("%v: %v", sc.Strategy, err)
	}
	return r
}

func TestWorkloadValidation(t *testing.T) {
	bad := SmallWorkload(1)
	bad.Vehicles = 0
	if _, err := BuildWorkload(bad); err == nil {
		t.Error("zero vehicles accepted")
	}
	bad = SmallWorkload(1)
	bad.PublicFraction = 1.5
	if _, err := BuildWorkload(bad); err == nil {
		t.Error("public fraction > 1 accepted")
	}
	bad = SmallWorkload(1)
	bad.AlarmMinSide = 0
	if _, err := BuildWorkload(bad); err == nil {
		t.Error("zero alarm side accepted")
	}
}

func TestWorkloadComposition(t *testing.T) {
	w := buildSmall(t, 3)
	counts := map[string]int{}
	for _, a := range w.Alarms {
		counts[a.Scope.String()]++
		if a.Region.Empty() {
			t.Fatal("empty alarm region generated")
		}
	}
	if counts["public"] != 15 {
		t.Errorf("public = %d, want 15 (10%% of 150)", counts["public"])
	}
	// private:shared = 2:1 among the rest.
	if counts["shared"] != 45 {
		t.Errorf("shared = %d, want 45", counts["shared"])
	}
	if counts["private"] != 90 {
		t.Errorf("private = %d, want 90", counts["private"])
	}
}

// TestAccuracyAcrossStrategies is the paper's central claim (§5): every
// approach must deliver exactly the same alarms at exactly the same ticks
// as the periodic ground truth.
func TestAccuracyAcrossStrategies(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		w := buildSmall(t, seed)
		truth := runStrategy(t, w, StrategyConfig{Strategy: wire.StrategyPeriodic})
		if len(truth.Triggers) == 0 {
			t.Fatalf("seed %d: ground truth has no triggers; workload too sparse to test", seed)
		}
		configs := []StrategyConfig{
			{Strategy: wire.StrategySafePeriod},
			{Strategy: wire.StrategyMWPSR},                               // non-weighted
			{Strategy: wire.StrategyMWPSR, Model: motion.MustNew(1, 32)}, // weighted
			{Strategy: wire.StrategyPBSR, PyramidHeight: 1},              // GBSR
			{Strategy: wire.StrategyPBSR, PyramidHeight: 5},              // PBSR
			{Strategy: wire.StrategyPBSR, PyramidHeight: 5, PrecomputePublicBitmaps: true},
			{Strategy: wire.StrategyOptimal},
			{Strategy: wire.StrategyMWPSR, BucketIndex: true}, // index ablation
		}
		for _, sc := range configs {
			got := runStrategy(t, w, sc)
			if !TriggersEqual(truth.Triggers, got.Triggers) {
				t.Errorf("seed %d %v (h=%d pre=%v): %d triggers != ground truth %d",
					seed, sc.Strategy, sc.PyramidHeight, sc.PrecomputePublicBitmaps,
					len(got.Triggers), len(truth.Triggers))
			}
		}
	}
}

// TestMessageOrdering checks the paper's Figure 6(a) ordering: OPT <=
// safe region approaches < SP << PRD.
func TestMessageOrdering(t *testing.T) {
	w := buildSmall(t, 7)
	prd := runStrategy(t, w, StrategyConfig{Strategy: wire.StrategyPeriodic})
	sp := runStrategy(t, w, StrategyConfig{Strategy: wire.StrategySafePeriod})
	mw := runStrategy(t, w, StrategyConfig{Strategy: wire.StrategyMWPSR, Model: motion.MustNew(1, 32)})
	pb := runStrategy(t, w, StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 5})
	opt := runStrategy(t, w, StrategyConfig{Strategy: wire.StrategyOptimal})

	if prd.UplinkMessages != uint64(w.Config.Vehicles*w.Config.DurationTicks) {
		t.Errorf("PRD messages = %d, want every tick (%d)",
			prd.UplinkMessages, w.Config.Vehicles*w.Config.DurationTicks)
	}
	for _, r := range []*Report{sp, mw, pb, opt} {
		if r.UplinkMessages >= prd.UplinkMessages {
			t.Errorf("%s messages %d not below periodic %d", r.Strategy, r.UplinkMessages, prd.UplinkMessages)
		}
	}
	if mw.UplinkMessages >= sp.UplinkMessages {
		t.Errorf("MWPSR %d should send fewer messages than SP %d", mw.UplinkMessages, sp.UplinkMessages)
	}
	if pb.UplinkMessages >= sp.UplinkMessages {
		t.Errorf("PBSR %d should send fewer messages than SP %d", pb.UplinkMessages, sp.UplinkMessages)
	}
	if opt.UplinkMessages > mw.UplinkMessages || opt.UplinkMessages > pb.UplinkMessages {
		t.Errorf("OPT %d should send fewest messages (MW %d, PB %d)",
			opt.UplinkMessages, mw.UplinkMessages, pb.UplinkMessages)
	}
	// Figure 6(c): OPT client energy far above safe region approaches.
	if opt.ClientEnergyMWh <= mw.ClientEnergyMWh || opt.ClientEnergyMWh <= pb.ClientEnergyMWh {
		t.Errorf("OPT energy %.1f should exceed MWPSR %.1f and PBSR %.1f",
			opt.ClientEnergyMWh, mw.ClientEnergyMWh, pb.ClientEnergyMWh)
	}
	// Figure 6(d): periodic server load far above safe region approaches.
	if prd.TotalServerMinutes <= mw.TotalServerMinutes || prd.TotalServerMinutes <= pb.TotalServerMinutes {
		t.Errorf("PRD server time %.2f should exceed MWPSR %.2f and PBSR %.2f",
			prd.TotalServerMinutes, mw.TotalServerMinutes, pb.TotalServerMinutes)
	}
}

// TestPyramidHeightReducesMessages mirrors Figure 5(a): messages drop
// sharply from GBSR (h=1) to tall pyramids.
func TestPyramidHeightReducesMessages(t *testing.T) {
	w := buildSmall(t, 11)
	h1 := runStrategy(t, w, StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 1})
	h5 := runStrategy(t, w, StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 5})
	if h5.UplinkMessages >= h1.UplinkMessages {
		t.Errorf("h=5 messages %d not below h=1 %d", h5.UplinkMessages, h1.UplinkMessages)
	}
	// Energy per check grows with height (more probes per descent).
	if h5.ClientProbes <= h5.ClientChecks {
		t.Error("pyramid descent should cost multiple probes per check")
	}
}

func TestDeterministicRuns(t *testing.T) {
	w := buildSmall(t, 13)
	sc := StrategyConfig{Strategy: wire.StrategyMWPSR, Model: motion.MustNew(1, 16)}
	a := runStrategy(t, w, sc)
	b := runStrategy(t, w, sc)
	if a.UplinkMessages != b.UplinkMessages || a.DownlinkBytes != b.DownlinkBytes {
		t.Errorf("identical runs diverged: %d/%d vs %d/%d msgs/bytes",
			a.UplinkMessages, a.DownlinkBytes, b.UplinkMessages, b.DownlinkBytes)
	}
	if !TriggersEqual(a.Triggers, b.Triggers) {
		t.Error("identical runs delivered different triggers")
	}
}

func TestTriggersEqual(t *testing.T) {
	a := []Trigger{{1, 2, 3}, {4, 5, 6}}
	b := []Trigger{{4, 5, 6}, {1, 2, 3}}
	if !TriggersEqual(a, b) {
		t.Error("order should not matter")
	}
	if TriggersEqual(a, a[:1]) {
		t.Error("length mismatch should fail")
	}
	c := []Trigger{{1, 2, 3}, {4, 5, 7}}
	if TriggersEqual(a, c) {
		t.Error("tick mismatch should fail")
	}
}

// TestPrecomputeMatchesDirect: the §4.2 public-bitmap optimization must
// not change behaviour, only server work.
func TestPrecomputeMatchesDirect(t *testing.T) {
	w := buildSmall(t, 17)
	direct := runStrategy(t, w, StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 4})
	pre := runStrategy(t, w, StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 4, PrecomputePublicBitmaps: true})
	if direct.UplinkMessages != pre.UplinkMessages {
		t.Errorf("message counts diverged: %d vs %d", direct.UplinkMessages, pre.UplinkMessages)
	}
	if !TriggersEqual(direct.Triggers, pre.Triggers) {
		t.Error("precompute changed delivered triggers")
	}
}
