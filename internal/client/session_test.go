package client

import (
	"errors"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/transport"
	"github.com/sabre-geo/sabre/internal/wire"
)

// fakeServer is the server end of a pipe, driven inline from the test: it
// answers position updates with a fixed safe region and lets tests script
// Hello/Resume behaviour and injected pushes.
type fakeServer struct {
	t    *testing.T
	conn transport.PollingConn
	rect geom.Rect

	token      uint64
	dropHellos int // swallow this many Hellos before answering
	updates    []wire.PositionUpdate
	hellos     []wire.Hello
	heartbeats []wire.Heartbeat
	acks       [][]uint64
}

// serve drains and answers everything the client sent this tick.
func (f *fakeServer) serve() {
	f.t.Helper()
	for {
		m, ok, err := f.conn.TryRecv()
		if err != nil || !ok {
			return
		}
		switch v := m.(type) {
		case wire.Hello:
			f.hellos = append(f.hellos, v)
			if f.dropHellos > 0 {
				f.dropHellos--
				continue
			}
			resumed := v.Token != 0 && v.Token == f.token
			if !resumed {
				f.token++
			}
			f.send(wire.Resume{Token: f.token, Resumed: resumed})
		case wire.PositionUpdate:
			f.updates = append(f.updates, v)
			f.send(wire.RectRegion{Seq: v.Seq, Rect: f.rect})
		case wire.Heartbeat:
			f.heartbeats = append(f.heartbeats, v)
			f.send(v)
		case wire.FiredAck:
			f.acks = append(f.acks, v.Alarms)
		default:
			f.t.Errorf("fake server got %v", m.Kind())
		}
	}
}

func (f *fakeServer) send(m wire.Message) {
	f.t.Helper()
	if err := f.conn.Send(m); err != nil {
		f.t.Fatalf("fake server send: %v", err)
	}
}

// newSessionPair wires a session to a fake server over a fresh pipe per
// dial. dials counts connection attempts.
func newSessionPair(t *testing.T, cfg SessionConfig) (*Session, *fakeServer, *metrics.Client, *int) {
	t.Helper()
	srv := &fakeServer{t: t, rect: geom.R(0, 0, 100, 100)}
	dials := 0
	dial := func() (transport.Conn, error) {
		dials++
		cli, s := transport.Pipe(64)
		srv.conn = transport.Poller(s)
		return cli, nil
	}
	met := &metrics.Client{}
	sess := NewSession(New(1, wire.StrategyMWPSR, met), dial, cfg, met)
	return sess, srv, met, &dials
}

// TestSessionHandshakeGatesReports: no position report may leave before
// the server's Resume confirms the Hello — an update processed first would
// enroll the client as unreliable — and the queued backlog replays as soon
// as the session is confirmed.
func TestSessionHandshakeGatesReports(t *testing.T) {
	sess, srv, _, _ := newSessionPair(t, SessionConfig{ResendEvery: 3})
	srv.dropHellos = 1

	// Tick 0 dials and sends the Hello (which the server swallows). The
	// client is unsafe (no region yet) so a report queues — but must not
	// be transmitted.
	for tick := 0; tick < 3; tick++ {
		sess.Step(tick, geom.Pt(10, 10))
		srv.serve()
	}
	if len(srv.updates) != 0 {
		t.Fatalf("%d reports sent before the session was confirmed", len(srv.updates))
	}
	if sess.QueueLen() == 0 {
		t.Fatal("no reports queued while unconfirmed")
	}
	// Tick 3 is ResendEvery past the swallowed Hello: the retry goes out,
	// the server answers, and tick 4 drains the Resume and replays the
	// queue.
	sess.Step(3, geom.Pt(10, 10))
	srv.serve()
	if len(srv.hellos) != 2 {
		t.Fatalf("hellos = %d, want retry after ResendEvery", len(srv.hellos))
	}
	sess.Step(4, geom.Pt(10, 10))
	srv.serve()
	if len(srv.updates) == 0 {
		t.Fatal("queue did not replay after Resume")
	}
	sess.Step(5, geom.Pt(10, 10)) // drain the region replies
	if sess.QueueLen() != 0 {
		t.Errorf("queue = %d after server answered everything", sess.QueueLen())
	}
	if !sess.Connected() {
		t.Error("session not connected")
	}
}

// TestSessionResumePresentsToken: after a link loss the reconnect Hello
// carries the token from the first Resume.
func TestSessionResumePresentsToken(t *testing.T) {
	sess, srv, met, dials := newSessionPair(t, SessionConfig{BackoffBase: 1, BackoffMax: 1, JitterSeed: 3})
	sess.Step(0, geom.Pt(10, 10))
	srv.serve()
	sess.Step(1, geom.Pt(10, 10))
	srv.serve()
	if sess.Resumed() {
		t.Fatal("first connect claims resumed")
	}

	srv.conn.Close() // hard link loss
	tick := 2
	for ; *dials < 2 && tick < 20; tick++ {
		sess.Step(tick, geom.Pt(10, 10))
		srv.serve()
	}
	if *dials != 2 {
		t.Fatalf("dials = %d, want a reconnect", *dials)
	}
	for end := tick + 3; tick < end; tick++ {
		sess.Step(tick, geom.Pt(10, 10))
		srv.serve()
	}
	last := srv.hellos[len(srv.hellos)-1]
	if last.Token == 0 || last.Token != srv.token {
		t.Errorf("reconnect Hello token = %d, want %d", last.Token, srv.token)
	}
	if !sess.Resumed() {
		t.Error("session did not resume")
	}
	if met.Reconnects != 2 {
		t.Errorf("Reconnects = %d", met.Reconnects)
	}
}

// TestSessionBackoffGrowsExponentially: consecutive failed dials space out
// by at least the doubling backoff (jitter only adds delay).
func TestSessionBackoffGrowsExponentially(t *testing.T) {
	var attempts []int
	dial := func() (transport.Conn, error) {
		return nil, errors.New("down")
	}
	met := &metrics.Client{}
	sess := NewSession(New(1, wire.StrategyMWPSR, met), func() (transport.Conn, error) {
		attempts = append(attempts, -1) // placeholder, fixed below
		return dial()
	}, SessionConfig{BackoffBase: 2, BackoffMax: 16, JitterSeed: 1}, met)
	for tick := 0; tick < 120; tick++ {
		if n := len(attempts); n > 0 && attempts[n-1] == -1 {
			attempts[n-1] = tick - 1 // dial happened during the previous Step
		}
		sess.Step(tick, geom.Pt(10, 10))
	}
	if len(attempts) < 4 {
		t.Fatalf("only %d dial attempts in 120 ticks", len(attempts))
	}
	wantMin := 2
	for i := 1; i < len(attempts) && i < 5; i++ {
		gap := attempts[i] - attempts[i-1]
		if gap < wantMin {
			t.Errorf("gap %d→%d = %d ticks, want >= %d", i-1, i, gap, wantMin)
		}
		if wantMin < 16 {
			wantMin *= 2
		}
	}
}

// TestSessionHeartbeatAndDeadPeer: an idle link heartbeats on schedule,
// and a peer that stops answering is declared dead and redialed.
func TestSessionHeartbeatAndDeadPeer(t *testing.T) {
	cfg := SessionConfig{HeartbeatEvery: 4, DeadAfterTicks: 10, BackoffBase: 1, BackoffMax: 2, JitterSeed: 5}
	sess, srv, met, dials := newSessionPair(t, cfg)
	// Establish and install a region so the client goes quiet.
	for tick := 0; tick < 3; tick++ {
		sess.Step(tick, geom.Pt(50, 50))
		srv.serve()
	}
	if !sess.Connected() || sess.QueueLen() != 0 {
		t.Fatalf("not settled: connected=%v queue=%d", sess.Connected(), sess.QueueLen())
	}
	// Idle inside the safe region: heartbeats keep the link warm.
	for tick := 3; tick < 20; tick++ {
		sess.Step(tick, geom.Pt(50, 50))
		srv.serve()
	}
	if len(srv.heartbeats) < 3 {
		t.Errorf("heartbeats = %d, want a steady idle cadence", len(srv.heartbeats))
	}
	if met.HeartbeatsSent != uint64(len(srv.heartbeats)) {
		t.Errorf("HeartbeatsSent = %d, server saw %d", met.HeartbeatsSent, len(srv.heartbeats))
	}
	// Server goes mute (answers nothing, link stays up): dead-peer
	// detection must tear down and redial within DeadAfterTicks + backoff.
	before := *dials
	for tick := 20; tick < 20+cfg.DeadAfterTicks+5; tick++ {
		sess.Step(tick, geom.Pt(50, 50)) // srv.serve() withheld
	}
	if *dials <= before {
		t.Error("mute peer never declared dead")
	}
}

// TestSessionOfflineQueueEviction: a long outage overflows the bounded
// queue oldest-first, and the drops are counted.
func TestSessionOfflineQueueEviction(t *testing.T) {
	dial := func() (transport.Conn, error) { return nil, errors.New("down") }
	met := &metrics.Client{}
	sess := NewSession(New(1, wire.StrategyMWPSR, met), dial, SessionConfig{MaxQueue: 4, JitterSeed: 2}, met)
	for tick := 0; tick < 10; tick++ {
		sess.Step(tick, geom.Pt(10, 10)) // never safe: queues every tick
	}
	if sess.QueueLen() != 4 {
		t.Errorf("queue = %d, want capped at 4", sess.QueueLen())
	}
	if met.DroppedReports != 6 {
		t.Errorf("DroppedReports = %d, want 6", met.DroppedReports)
	}
}

// TestSessionFiredDeliveryAndAck: firings arrive through OnFired exactly
// once even when redelivered, and every delivery is acknowledged.
func TestSessionFiredDeliveryAndAck(t *testing.T) {
	sess, srv, _, _ := newSessionPair(t, SessionConfig{})
	var delivered []uint64
	sess.OnFired = func(ids []uint64) { delivered = append(delivered, ids...) }
	for tick := 0; tick < 3; tick++ {
		sess.Step(tick, geom.Pt(50, 50))
		srv.serve()
	}
	// Server pushes the same firing twice (a redelivery).
	srv.send(wire.AlarmFired{Seq: 0, Alarms: []uint64{42}})
	srv.send(wire.AlarmFired{Seq: 0, Alarms: []uint64{42}})
	for tick := 3; tick < 6; tick++ {
		sess.Step(tick, geom.Pt(50, 50))
		srv.serve()
	}
	if len(delivered) != 1 || delivered[0] != 42 {
		t.Fatalf("delivered = %v, want [42] exactly once", delivered)
	}
	var acked []uint64
	for _, a := range srv.acks {
		acked = append(acked, a...)
	}
	// Both copies are acknowledged — the server must learn its redelivery
	// landed too.
	if len(acked) < 2 {
		t.Errorf("acked = %v, want both delivered copies acknowledged", acked)
	}
}
