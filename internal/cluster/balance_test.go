package cluster

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/store"
)

func TestNewBalancerValidation(t *testing.T) {
	c := newTestCluster(t, 2, 1, "")
	bad := []BalancerConfig{
		{SplitAbove: -1},
		{MergeBelow: -1},
		{SplitAbove: 10, MergeBelow: 10}, // no hysteresis gap
		{SplitAbove: 10, MergeBelow: 20}, // inverted
	}
	for _, cfg := range bad {
		if _, err := NewBalancer(c, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	good := []BalancerConfig{
		{},                              // everything disabled
		{SplitAbove: 10, MergeBelow: 3}, // both triggers
		{MergeBelow: 50},                // merge-only: no split threshold to undercut
		{SplitAbove: 5},                 // split-only
	}
	for _, cfg := range good {
		if _, err := NewBalancer(c, cfg); err != nil {
			t.Errorf("config %+v rejected: %v", cfg, err)
		}
	}
}

// driveLoad parks users on a shard and sends extra updates, raising its
// load score (sessions + uplink delta) to roughly users + users*updates.
func driveLoad(t *testing.T, rt *Router, users []uint64, pos geom.Point, updates int) {
	t.Helper()
	for _, u := range users {
		hello(t, rt, u)
		for s := 1; s <= updates; s++ {
			update(t, rt, u, uint32(s), pos)
		}
	}
}

// TestBalancerSplitsHottest: with two shards above the split threshold,
// one Step splits only the hotter one and leaves the other alone.
func TestBalancerSplitsHottest(t *testing.T) {
	c := newTestCluster(t, 2, 1, "")
	rt := NewRouter(c)
	driveLoad(t, rt, []uint64{1, 2, 3, 4}, geom.Pt(2000, 5000), 4) // shard 0: score ~20
	driveLoad(t, rt, []uint64{5}, geom.Pt(8000, 5000), 2)          // shard 1: score ~3

	b, err := NewBalancer(c, BalancerConfig{SplitAbove: 2})
	if err != nil {
		t.Fatal(err)
	}
	coldRect, _ := c.PartitionMap().RectOf(1)
	actions, err := b.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || !strings.Contains(actions[0], "split shard 0") {
		t.Fatalf("actions = %v, want a single split of shard 0", actions)
	}
	pm := c.PartitionMap()
	if pm.N() != 3 || !pm.Has(2) {
		t.Fatalf("map has %d shards (has 2: %v), want 3 with new shard 2", pm.N(), pm.Has(2))
	}
	if after, _ := pm.RectOf(1); after != coldRect {
		t.Errorf("cold shard 1 rect changed: %+v -> %+v", coldRect, after)
	}
	if got := c.Metrics().Snapshot().Splits; got != 1 {
		t.Errorf("Splits = %d, want 1", got)
	}
}

// TestBalancerUplinkDeltaWindow: the update-volume signal is a delta per
// Step, not a lifetime counter — once traffic stops, a shard whose
// session count sits below the threshold cools down and stops splitting.
func TestBalancerUplinkDeltaWindow(t *testing.T) {
	c := newTestCluster(t, 1, 1, "")
	rt := NewRouter(c)
	driveLoad(t, rt, []uint64{1, 2}, geom.Pt(2000, 5000), 10) // score ~22, sessions 2

	b, err := NewBalancer(c, BalancerConfig{SplitAbove: 10})
	if err != nil {
		t.Fatal(err)
	}
	actions, err := b.Step()
	if err != nil || len(actions) != 1 {
		t.Fatalf("hot step: actions=%v err=%v, want one split", actions, err)
	}
	// No further traffic: the uplink delta is zero and 2 resident
	// sessions sit far below the threshold.
	actions, err = b.Step()
	if err != nil || len(actions) != 0 {
		t.Fatalf("cold step: actions=%v err=%v, want none (lifetime uplink would re-split)", actions, err)
	}
}

// TestBalancerRespectsMaxShards: a hot shard at the cap stays unsplit.
func TestBalancerRespectsMaxShards(t *testing.T) {
	c := newTestCluster(t, 2, 1, "")
	rt := NewRouter(c)
	driveLoad(t, rt, []uint64{1, 2, 3}, geom.Pt(2000, 5000), 5)

	b, err := NewBalancer(c, BalancerConfig{SplitAbove: 2, MaxShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	actions, err := b.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 0 || c.PartitionMap().N() != 2 {
		t.Fatalf("actions=%v N=%d, want no split at the cap", actions, c.PartitionMap().N())
	}
}

// TestBalancerMergesColdToFloor: an idle cluster merges one sibling pair
// per Step until MinShards, then holds.
func TestBalancerMergesColdToFloor(t *testing.T) {
	c := newTestCluster(t, 2, 2, "")
	b, err := NewBalancer(c, BalancerConfig{SplitAbove: 100, MergeBelow: 5, MinShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	actions, err := b.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || !strings.Contains(actions[0], "merged shard") {
		t.Fatalf("actions = %v, want a single merge", actions)
	}
	pm := c.PartitionMap()
	if pm.N() != 3 {
		t.Fatalf("N = %d after merge, want 3", pm.N())
	}
	checkTiling(t, pm) // retired shard's area absorbed, tiling still exact
	if got := c.Metrics().Snapshot().Merges; got != 1 {
		t.Errorf("Merges = %d, want 1", got)
	}
	// At the floor: still cold, but no further merges.
	actions, err = b.Step()
	if err != nil || len(actions) != 0 {
		t.Fatalf("actions=%v err=%v at MinShards floor, want none", actions, err)
	}
	if c.PartitionMap().N() != 3 {
		t.Fatalf("N = %d, floor not respected", c.PartitionMap().N())
	}
}

// TestBalancerSkipsDownShardPair: a pair containing a dead shard cannot
// drain its sessions, so the balancer must leave it alone and merge it
// only after recovery.
func TestBalancerSkipsDownShardPair(t *testing.T) {
	c := newTestCluster(t, 2, 1, t.TempDir())
	b, err := NewBalancer(c, BalancerConfig{MergeBelow: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	if err := c.KillShard(1, store.TearNone, rng); err != nil {
		t.Fatal(err)
	}
	actions, err := b.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 0 || c.PartitionMap().N() != 2 {
		t.Fatalf("actions=%v N=%d, want merge deferred while shard 1 is down", actions, c.PartitionMap().N())
	}
	if err := c.RecoverShard(1); err != nil {
		t.Fatal(err)
	}
	actions, err = b.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || c.PartitionMap().N() != 1 {
		t.Fatalf("actions=%v N=%d, want cold pair merged after recovery", actions, c.PartitionMap().N())
	}
}

// TestBalancerMigratesSessionsOnMerge: sessions resident on the retired
// shard move to the absorbing sibling during the balancer's merge, and
// the router keeps serving them at the new home.
func TestBalancerMigratesSessionsOnMerge(t *testing.T) {
	c := newTestCluster(t, 2, 1, "")
	rt := NewRouter(c)
	driveLoad(t, rt, []uint64{1, 2}, geom.Pt(8000, 5000), 1) // park on shard 1

	b, err := NewBalancer(c, BalancerConfig{MergeBelow: 50})
	if err != nil {
		t.Fatal(err)
	}
	actions, err := b.Step()
	if err != nil || len(actions) != 1 {
		t.Fatalf("actions=%v err=%v, want one merge", actions, err)
	}
	pm := c.PartitionMap()
	if pm.N() != 1 || !pm.Has(0) {
		t.Fatalf("map after merge: N=%d", pm.N())
	}
	if got := c.Metrics().Snapshot().SessionsDrained; got != 2 {
		t.Errorf("SessionsDrained = %d, want 2", got)
	}
	if got := c.Engine(0).ClientCount(); got != 2 {
		t.Errorf("shard 0 holds %d sessions after drain, want 2", got)
	}
	// The drained users keep reporting through the router without rejoin.
	update(t, rt, 1, 2, geom.Pt(8100, 5000))
	update(t, rt, 2, 2, geom.Pt(8100, 5000))
}
