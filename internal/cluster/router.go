package cluster

import (
	"errors"
	"fmt"
	"sync"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/wire"
)

// ShardDownError reports that a message could not be processed because
// the shard that must process it is down (or a handoff is blocked on
// it). It carries the shard ID and the partition-map epoch the router
// observed, so callers can distinguish "wait for this shard" from a
// real failure and can tell whether a later epoch (a promotion or
// recovery) has superseded the observation.
type ShardDownError struct {
	Shard int
	Epoch uint64
}

func (e *ShardDownError) Error() string {
	return fmt.Sprintf("cluster: shard %d down (map epoch %d)", e.Shard, e.Epoch)
}

// IsShardDown unwraps err as a *ShardDownError.
func IsShardDown(err error) (*ShardDownError, bool) {
	var sd *ShardDownError
	if errors.As(err, &sd) {
		return sd, true
	}
	return nil, false
}

// Router forwards one client population's wire messages to the shard
// owning each client's position, performing cross-shard session handoff
// when a client crosses a partition boundary and deduplicating alarm
// firings that overlapping installs would otherwise deliver twice
// (PROTOCOL.md "Redirect and handoff").
//
// Handlers return *ShardDownError when the owning shard is down (or a
// handoff is blocked on a down shard) and nothing was processed — the
// caller sends nothing and the client's session machinery resends until
// the shard recovers or a follower is promoted in its place. A
// write-ahead failure inside a shard (store.ErrCrashed) is treated
// identically: the shard is dying, and the client's retry lands after
// recovery. Any other error is a real protocol failure.
//
// The router itself holds no durable state. Its per-user dedup map and
// parked handoff records rebuild trivially because they shadow durable
// shard state: firing attribution re-derives from redelivery (a pair
// delivered twice is acknowledged back to the duplicate's shard), and a
// parked handoff record is re-exported from the old shard's recovered
// log.
type Router struct {
	cl *Cluster

	mu     sync.Mutex
	routes map[uint64]*route
}

// route is one client's routing state. Its mutex serializes that
// client's messages through the router (mirroring the engine's
// per-client serialization); distinct clients proceed in parallel.
type route struct {
	mu   sync.Mutex
	user uint64
	// shard owns the session; -1 before first enrollment and while a
	// handoff is parked in carried.
	shard int
	// carried holds the session exported from the old shard until the
	// target shard (pendingOwner) accepts the import — a crash between
	// the two halves must not lose pending firings.
	carried      *store.ClientRec
	pendingOwner int
	// pushToken is a token minted by an ImportSession that the client has
	// not been told about yet; delivered as a Resume on the next handled
	// response. If that frame is lost the client's stale token simply
	// misses on its next Hello and the shard re-enrolls it fresh,
	// carrying the pending set — safe, just slower.
	pushToken uint64
	// Last declared registration, used to synthesize a handoff record
	// when the old shard has no state for the user (e.g. it expired the
	// session while the client was offline).
	strategy  wire.Strategy
	maxHeight uint8
	reliable  bool
	// fired attributes each delivered alarm id to the shard that first
	// delivered it. Ids arriving from any other shard are duplicates from
	// overlapping installs: stripped, and acknowledged back to that shard
	// so it stops redelivering.
	fired map[uint64]int
	// parked marks a handoff currently parked on a down target shard;
	// parkedPromotions is the cluster's promotion count at park time, so
	// the import that finally lands can tell whether a follower promotion
	// (rather than the old primary's recovery) revived the target.
	parked           bool
	parkedPromotions uint64
}

// NewRouter routes for cl.
func NewRouter(cl *Cluster) *Router {
	return &Router{cl: cl, routes: make(map[uint64]*route)}
}

func (r *Router) route(user uint64) *route {
	r.mu.Lock()
	defer r.mu.Unlock()
	rt := r.routes[user]
	if rt == nil {
		rt = &route{user: user, shard: -1, fired: make(map[uint64]int)}
		r.routes[user] = rt
	}
	return rt
}

// resolveShard re-points a route whose shard was retired by a merge:
// the drain moved its session to the absorbing shard. The caller holds
// rt.mu.
func (r *Router) resolveShard(rt *route) {
	if rt.shard < 0 {
		return
	}
	if to, ok := r.cl.retiredTarget(rt.shard); ok {
		rt.shard = to
	}
}

// HandleRegister enrolls a plain (fire-and-forget) client. Without a
// position the session starts on the lowest live shard; the first
// update hands it off to its true owner.
func (r *Router) HandleRegister(m wire.Register) bool {
	rt := r.route(m.User)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.strategy, rt.maxHeight, rt.reliable = m.Strategy, m.MaxHeight, false
	r.resolveShard(rt)
	if rt.shard < 0 && rt.carried == nil {
		rt.shard = r.cl.firstShard()
	}
	eng := r.cl.Engine(rt.shard)
	if rt.carried != nil || eng == nil {
		return false
	}
	if err := eng.Register(m); err != nil {
		return false
	}
	return true
}

// downErr builds the typed down-shard error for the current map epoch.
func (r *Router) downErr(shard int) error {
	return &ShardDownError{Shard: shard, Epoch: r.cl.Epoch()}
}

// HandleHello establishes or resumes a session on the client's current
// shard. A client that never reported yet starts on the lowest live
// shard.
func (r *Router) HandleHello(m wire.Hello) ([]wire.Message, error) {
	rt := r.route(m.User)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.strategy, rt.maxHeight, rt.reliable = m.Strategy, m.MaxHeight, true
	if rt.carried != nil {
		// Finish the parked handoff first; the Hello then reaches the new
		// shard, which re-enrolls the client (its token is stale) carrying
		// the imported pending set.
		if _, ok := r.importCarried(rt); !ok {
			return nil, r.downErr(rt.pendingOwner)
		}
	}
	r.resolveShard(rt)
	if rt.shard < 0 {
		rt.shard = r.cl.firstShard()
	}
	eng := r.cl.Engine(rt.shard)
	if eng == nil {
		return nil, r.downErr(rt.shard)
	}
	out, _, err := eng.HandleHello(m)
	if err != nil {
		if errors.Is(err, store.ErrCrashed) {
			return nil, r.downErr(rt.shard)
		}
		return nil, err
	}
	rt.pushToken = 0 // the Hello response carries a fresh Resume already
	return r.filterFired(rt, rt.shard, out), nil
}

// HandleUpdate routes one position report, handing the session off first
// when the position crossed into another shard's partition.
func (r *Router) HandleUpdate(u wire.PositionUpdate) ([]wire.Message, error) {
	rt := r.route(u.User)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	r.cl.met.AddRoutedUpdate()
	owner := r.cl.locate(u.Pos)
	r.resolveShard(rt)

	if rt.carried != nil {
		// A parked handoff: retarget to wherever the client is now and
		// try again.
		rt.pendingOwner = owner
		if _, ok := r.importCarried(rt); !ok {
			return nil, r.downErr(rt.pendingOwner)
		}
	}
	if rt.shard < 0 {
		rt.shard = owner // first contact: enroll where the client is
	}
	if rt.shard != owner {
		if !r.handoff(rt, owner) {
			return nil, r.handoffBlockedErr(rt)
		}
	}
	eng := r.cl.Engine(rt.shard)
	if eng == nil {
		return nil, r.downErr(rt.shard)
	}
	out, err := eng.HandleUpdate(u)
	if err != nil {
		if errors.Is(err, store.ErrCrashed) {
			return nil, r.downErr(rt.shard)
		}
		return nil, err
	}
	r.fanOutAnchor(rt.shard, u.User, u.Pos)
	out = r.filterFired(rt, rt.shard, out)
	if rt.pushToken != 0 {
		// Tell the client its session moved: adopt the new shard's token.
		msg := wire.Resume{Token: rt.pushToken, Resumed: true}
		eng.Metrics().AddDownlink(wire.EncodedSize(msg))
		out = append([]wire.Message{msg}, out...)
		rt.pushToken = 0
	}
	return out, nil
}

// handoffBlockedErr names the shard a failed handoff is stuck on: the
// import target while the session is parked, the old shard otherwise.
// The caller holds rt.mu.
func (r *Router) handoffBlockedErr(rt *route) error {
	if rt.carried != nil {
		return r.downErr(rt.pendingOwner)
	}
	return r.downErr(rt.shard)
}

// HandleUpdateBatch routes one UpdateBatch frame. Updates are grouped by
// user (first-appearance order, chronological within a user, matching the
// engine's batch contract) and each group is split into maximal runs of
// positions owned by the same shard; the handoff dance between runs is
// exactly the single-update path's, so a mis-routed entry falls back to
// the normal cross-shard handoff. Each run is forwarded as its own
// engine-level batch, so the shard charges uplink per run frame — the
// router re-frames per shard.
//
// Entries for users whose owning shard is down (or whose handoff parked)
// are omitted from the reply and the client's resend machinery
// redelivers those reports. A *ShardDownError is returned only when no
// update in the whole frame was processed.
func (r *Router) HandleUpdateBatch(b wire.UpdateBatch) (wire.BatchReply, error) {
	if len(b.Updates) == 0 {
		return wire.BatchReply{}, nil
	}
	r.cl.met.AddRoutedBatch(len(b.Updates))
	reply := wire.BatchReply{}
	var down error
	for i := range b.Updates {
		user := b.Updates[i].User
		seenBefore := false
		for j := 0; j < i; j++ {
			if b.Updates[j].User == user {
				seenBefore = true
				break
			}
		}
		if seenBefore {
			continue
		}
		var ups []wire.PositionUpdate
		for j := i; j < len(b.Updates); j++ {
			if b.Updates[j].User == user {
				ups = append(ups, b.Updates[j])
			}
		}
		msgs, err := r.routeUserRun(user, ups)
		if err != nil {
			if _, ok := IsShardDown(err); ok {
				if down == nil {
					down = err
				}
				continue // this user's reports resend; others proceed
			}
			return wire.BatchReply{}, err
		}
		reply.Entries = append(reply.Entries, wire.BatchEntry{User: user, Msgs: msgs})
	}
	if len(reply.Entries) == 0 && down != nil {
		return wire.BatchReply{}, down
	}
	return reply, nil
}

// routeUserRun forwards one user's chronological updates, splitting them
// into maximal same-shard runs with a handoff between runs. It returns a
// *ShardDownError when nothing could be processed. The returned messages
// may cover a prefix of ups when a shard died mid-group; the client
// resends the unanswered tail.
func (r *Router) routeUserRun(user uint64, ups []wire.PositionUpdate) ([]wire.Message, error) {
	rt := r.route(user)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var msgs []wire.Message
	var blocked error
	processed := false
	for i := 0; i < len(ups); {
		owner := r.cl.locate(ups[i].Pos)
		r.resolveShard(rt)
		if rt.carried != nil {
			rt.pendingOwner = owner
			if _, ok := r.importCarried(rt); !ok {
				blocked = r.downErr(rt.pendingOwner)
				break
			}
		}
		if rt.shard < 0 {
			rt.shard = owner
		}
		if rt.shard != owner {
			if !r.handoff(rt, owner) {
				blocked = r.handoffBlockedErr(rt)
				break
			}
		}
		j := i + 1
		for j < len(ups) && r.cl.locate(ups[j].Pos) == rt.shard {
			j++
		}
		eng := r.cl.Engine(rt.shard)
		if eng == nil {
			blocked = r.downErr(rt.shard)
			break
		}
		br, err := eng.HandleUpdateBatch(wire.UpdateBatch{Updates: ups[i:j]})
		if err != nil {
			if errors.Is(err, store.ErrCrashed) {
				blocked = r.downErr(rt.shard)
				break
			}
			return nil, err
		}
		processed = true
		r.fanOutAnchor(rt.shard, user, ups[j-1].Pos)
		for _, ent := range br.Entries {
			filtered := r.filterFired(rt, rt.shard, ent.Msgs)
			// Dedup may strip an update's only response (an AlarmFired another
			// shard already delivered). Every processed update must still be
			// answered or the client resends it forever, so backfill a bare
			// Ack for any seq the filtered reply no longer covers.
			answered := make(map[uint32]bool, len(filtered))
			for _, m := range filtered {
				if seq, ok := wire.SeqOf(m); ok {
					answered[seq] = true
				}
			}
			for _, u := range ups[i:j] {
				if !answered[u.Seq] {
					filtered = append(filtered, wire.Ack{Seq: u.Seq})
				}
			}
			msgs = append(msgs, filtered...)
		}
		i = j
	}
	if !processed {
		return nil, blocked
	}
	if rt.pushToken != 0 {
		msg := wire.Resume{Token: rt.pushToken, Resumed: true}
		if eng := r.cl.Engine(rt.shard); eng != nil {
			eng.Metrics().AddDownlink(wire.EncodedSize(msg))
		}
		msgs = append([]wire.Message{msg}, msgs...)
		rt.pushToken = 0
	}
	if msgs == nil {
		msgs = []wire.Message{} // processed but silent: keep the entry
	}
	return msgs, nil
}

// fanOutAnchor broadcasts a pair endpoint's fresh position to every
// OTHER live shard, so partner machines resident elsewhere transition
// promptly even when the pair is split across shards. Down shards are
// skipped: the anchor table is soft state that refills from the next
// report after recovery, and the safe-period cap keeps the interim
// sound. An ObserveAnchor log failure means that shard is dying — its
// own next message surfaces it; the serving shard's response stands.
func (r *Router) fanOutAnchor(served int, user uint64, pos geom.Point) {
	srcEng := r.cl.Engine(served)
	if srcEng == nil || !srcEng.Registry().IsPairEndpoint(alarm.UserID(user)) {
		return
	}
	// Broadcast the serving engine's accepted anchor, not the raw report
	// position: the anchor only advances on fresh (in-seq) reports, so a
	// redelivered stale report never ripples an old position to other
	// shards (which would flip a remote partner machine backward).
	if acc, ok := srcEng.Anchor(alarm.UserID(user)); ok {
		pos = acc
	}
	for _, s := range r.cl.PartitionMap().Shards() {
		if s == served {
			continue
		}
		if eng := r.cl.Engine(s); eng != nil {
			_ = eng.ObserveAnchor(alarm.UserID(user), pos)
		}
	}
}

// handoff moves rt's session from rt.shard to owner. On any down shard
// the handoff parks (carried) or defers (old shard unreachable) and
// reports false. The caller holds rt.mu.
func (r *Router) handoff(rt *route, owner int) bool {
	if to, ok := r.cl.retiredTarget(rt.shard); ok {
		// The old shard was merged away; its drain already moved the
		// session to the absorbing shard.
		rt.shard = to
		if rt.shard == owner {
			return true
		}
	}
	oldEng := r.cl.Engine(rt.shard)
	if oldEng == nil {
		r.cl.met.AddHandoffDeferred()
		return false
	}
	rec, ok, err := oldEng.ExportSession(alarm.UserID(rt.user))
	if err != nil && !errors.Is(err, store.ErrCrashed) {
		return false
	}
	// On ErrCrashed the export's ExpireRec append failed, but the
	// in-memory removal happened and rec is complete; the old shard's
	// recovery may resurrect its copy of the session, which the next
	// handoff from it re-exports — harmless, because firing attribution
	// dedups redeliveries.
	if !ok {
		// The old shard no longer knows the client. If the owner already
		// holds the session (a merge drain moved it there while this
		// route still named the source), adopt the owner's copy rather
		// than importing a fresh empty record over the drained pending
		// set.
		if newEng := r.cl.Engine(owner); newEng != nil && newEng.HasSession(alarm.UserID(rt.user)) {
			rt.shard = owner
			return true
		}
		// Idle-expired everywhere: carry the declared registration with
		// no pending firings.
		rec = store.ClientRec{
			User: rt.user, Strategy: rt.strategy,
			MaxHeight: rt.maxHeight, Reliable: rt.reliable,
		}
	}
	rt.carried = &rec
	rt.pendingOwner = owner
	rt.shard = -1
	_, imported := r.importCarried(rt)
	if !imported && rt.carried != nil && !rt.parked {
		// The session is now parked on a down target. Remember the
		// promotion count so the import that finally lands can report
		// whether a failover (not a recovery) unparked it.
		rt.parked = true
		rt.parkedPromotions = r.cl.met.Snapshot().Promotions
		r.cl.met.AddHandoffParked()
	}
	return imported
}

// importCarried lands a parked handoff on its target shard. On success
// the minted token (reliable sessions) is staged in rt.pushToken and the
// carried pending firings are re-attributed to the new shard. The caller
// holds rt.mu.
func (r *Router) importCarried(rt *route) (uint64, bool) {
	eng := r.cl.Engine(rt.pendingOwner)
	if eng == nil {
		r.cl.met.AddHandoffDeferred()
		return 0, false
	}
	tok, err := eng.ImportSession(*rt.carried)
	if err != nil {
		if errors.Is(err, store.ErrCrashed) {
			r.cl.met.AddHandoffDeferred()
		}
		return 0, false
	}
	// The new shard redelivers the carried pending set from now on;
	// re-attribute those ids so dedup lets its redeliveries through.
	for _, id := range rt.carried.PendingFired {
		rt.fired[id] = rt.pendingOwner
	}
	if rt.carried.Reliable {
		rt.pushToken = tok
	}
	rt.shard = rt.pendingOwner
	rt.carried = nil
	if rt.parked {
		if r.cl.met.Snapshot().Promotions > rt.parkedPromotions {
			r.cl.met.AddHandoffFailedOver()
		}
		rt.parked = false
	}
	r.cl.met.AddHandoff()
	return tok, true
}

// HandleHeartbeat forwards a heartbeat to the owning shard, or echoes it
// locally while that shard is down — the link is healthy, only the shard
// is gone, and the client must not tear the connection down for it.
func (r *Router) HandleHeartbeat(user uint64, hb wire.Heartbeat) []wire.Message {
	rt := r.route(user)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	r.resolveShard(rt)
	if rt.shard < 0 || rt.carried != nil {
		return []wire.Message{hb}
	}
	eng := r.cl.Engine(rt.shard)
	if eng == nil {
		return []wire.Message{hb}
	}
	return r.filterFired(rt, rt.shard, eng.HandleHeartbeat(alarm.UserID(user), hb))
}

// HandleAck forwards a FiredAck to the owning shard. While the shard is
// down the ack is dropped: the shard keeps the pending set, redelivers
// after recovery, and the client's session re-acks — converging with no
// router-side buffering.
func (r *Router) HandleAck(user uint64, ids []uint64) {
	rt := r.route(user)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	r.resolveShard(rt)
	if rt.shard < 0 || rt.carried != nil {
		return
	}
	eng := r.cl.Engine(rt.shard)
	if eng == nil {
		return
	}
	_ = eng.AckFired(alarm.UserID(user), ids) // ErrCrashed: redelivery re-acks
}

// filterFired strips duplicate firings from shard's responses. The first
// shard to deliver an id owns it; the same shard may redeliver (the
// client's session dedups and re-acks), but an id arriving from a
// different shard is an overlapping-install duplicate — it is removed
// from the response and acknowledged straight back to that shard so it
// stops redelivering. The caller holds rt.mu.
func (r *Router) filterFired(rt *route, shard int, msgs []wire.Message) []wire.Message {
	out := msgs[:0:0]
	for _, m := range msgs {
		af, isFired := m.(wire.AlarmFired)
		if !isFired {
			out = append(out, m)
			continue
		}
		pass := make([]uint64, 0, len(af.Alarms))
		var strip []uint64
		for _, id := range af.Alarms {
			prev, seen := rt.fired[id]
			switch {
			case !seen:
				rt.fired[id] = shard
				pass = append(pass, id)
			case prev == shard:
				pass = append(pass, id)
			default:
				strip = append(strip, id)
			}
		}
		if len(strip) > 0 {
			r.cl.met.AddDuplicateFiringsSuppressed(uint64(len(strip)))
			if eng := r.cl.Engine(shard); eng != nil {
				_ = eng.AckFired(alarm.UserID(rt.user), strip)
			}
		}
		if len(pass) == 0 {
			continue // fully deduplicated: drop the frame
		}
		out = append(out, wire.AlarmFired{Seq: af.Seq, Alarms: pass})
	}
	return out
}
