package sim

import (
	"testing"

	"github.com/sabre-geo/sabre/internal/motion"
	"github.com/sabre-geo/sabre/internal/wire"
)

func defaultClasses() []MixedClass {
	return []MixedClass{
		{Name: "feature", Strategy: wire.StrategySafePeriod, Fraction: 0.3},
		{Name: "budget", Strategy: wire.StrategyMWPSR, Fraction: 0.4},
		{Name: "flagship", Strategy: wire.StrategyPBSR, PyramidHeight: 6, Fraction: 0.3},
	}
}

// TestMixedFleetAccuracy: a heterogeneous fleet served by one engine must
// still deliver exactly the ground-truth trigger set.
func TestMixedFleetAccuracy(t *testing.T) {
	w := buildSmall(t, 31)
	truth := runStrategy(t, w, StrategyConfig{Strategy: wire.StrategyPeriodic})
	mixed, err := RunMixed(w, defaultClasses(), StrategyConfig{Model: motion.MustNew(1, 32)})
	if err != nil {
		t.Fatal(err)
	}
	if !TriggersEqual(truth.Triggers, mixed.Triggers) {
		t.Fatalf("mixed fleet delivered %d triggers, ground truth %d",
			len(mixed.Triggers), len(truth.Triggers))
	}
}

func TestMixedFleetClassAccounting(t *testing.T) {
	w := buildSmall(t, 33)
	mixed, err := RunMixed(w, defaultClasses(), StrategyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed.Classes) != 3 {
		t.Fatalf("classes = %d", len(mixed.Classes))
	}
	total := 0
	for _, c := range mixed.Classes {
		total += c.Vehicles
		if c.Vehicles == 0 {
			t.Errorf("class %s got no vehicles", c.Name)
		}
		if c.UplinkMessages == 0 {
			t.Errorf("class %s sent no messages", c.Name)
		}
		if c.PerClientMessages.Count != c.Vehicles {
			t.Errorf("class %s distribution count %d != vehicles %d",
				c.Name, c.PerClientMessages.Count, c.Vehicles)
		}
	}
	if total != w.Config.Vehicles {
		t.Errorf("class vehicles sum %d != fleet %d", total, w.Config.Vehicles)
	}
	// The safe-period class must be the chattiest per client (paper
	// Figure 6(a) ordering carries over to the mixed fleet).
	byName := map[string]ClassReport{}
	for _, c := range mixed.Classes {
		byName[c.Name] = c
	}
	spPer := byName["feature"].PerClientMessages.Mean
	mwPer := byName["budget"].PerClientMessages.Mean
	if spPer <= mwPer {
		t.Errorf("SP class mean %.1f should exceed MWPSR class mean %.1f", spPer, mwPer)
	}
}

func TestMixedValidation(t *testing.T) {
	w := buildSmall(t, 35)
	if _, err := RunMixed(w, nil, StrategyConfig{}); err == nil {
		t.Error("empty class list accepted")
	}
	if _, err := RunMixed(w, []MixedClass{{Name: "x", Strategy: wire.StrategyMWPSR, Fraction: -1}}, StrategyConfig{}); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := RunMixed(w, []MixedClass{{Name: "x", Strategy: wire.StrategyMWPSR, Fraction: 0}}, StrategyConfig{}); err == nil {
		t.Error("zero total fraction accepted")
	}
}
