package cluster

import (
	"math/rand"
	"testing"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/motion"
	"github.com/sabre-geo/sabre/internal/pyramid"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/wire"
)

var clusterUniverse = geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}

// newTestCluster builds a cols×rows cluster over clusterUniverse;
// dataDir "" runs the shards in memory.
func newTestCluster(t testing.TB, cols, rows int, dataDir string) *Cluster {
	t.Helper()
	c, err := New(Config{
		Cols: cols,
		Rows: rows,
		Engine: server.Config{
			Universe:      clusterUniverse,
			CellAreaM2:    2.5e6,
			Model:         motion.MustNew(1, 32),
			PyramidParams: pyramid.DefaultParams(5),
			MaxSpeed:      30,
			TickSeconds:   1,
			Costs:         metrics.DefaultCosts(),
		},
		DataDir: dataDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestInstallAlarmsMarginPlacement: an alarm deep inside one partition
// lands only on that shard; an alarm near the boundary lands on both.
func TestInstallAlarmsMarginPlacement(t *testing.T) {
	c := newTestCluster(t, 2, 1, "") // split at x=5000, margin ~3162 m
	deep := alarm.Alarm{Scope: alarm.Private, Owner: 1, Region: geom.RectAround(geom.Pt(9500, 5000), 200)}
	boundary := alarm.Alarm{Scope: alarm.Private, Owner: 1, Region: geom.RectAround(geom.Pt(5000, 5000), 200)}
	ids, err := c.InstallAlarms([]alarm.Alarm{deep, boundary})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] == ids[1] {
		t.Fatalf("ids = %v", ids)
	}
	if got := c.Engine(0).Registry().Len(); got != 1 {
		t.Errorf("shard 0 holds %d alarms, want 1 (boundary only)", got)
	}
	if got := c.Engine(1).Registry().Len(); got != 2 {
		t.Errorf("shard 1 holds %d alarms, want 2", got)
	}
}

// TestInstallAlarmsRejectsMovingTarget: clustered mode has no cross-shard
// re-anchoring, so moving-target alarms must be refused up front.
func TestInstallAlarmsRejectsMovingTarget(t *testing.T) {
	c := newTestCluster(t, 2, 1, "")
	_, err := c.InstallAlarms([]alarm.Alarm{{
		Scope: alarm.Private, Owner: 1, Target: 7,
		Region: geom.RectAround(geom.Pt(5000, 5000), 200),
	}})
	if err == nil {
		t.Fatal("moving-target alarm accepted in clustered mode")
	}
}

// TestClusterCrashRecovery: a killed shard reboots from its own store
// with its alarms, sessions and global ID counter intact, while the
// other shard keeps serving throughout.
func TestClusterCrashRecovery(t *testing.T) {
	c := newTestCluster(t, 2, 1, t.TempDir())
	ids, err := c.InstallAlarms([]alarm.Alarm{
		{Scope: alarm.Private, Owner: 1, Region: geom.RectAround(geom.Pt(2000, 5000), 200)},
		{Scope: alarm.Private, Owner: 1, Region: geom.RectAround(geom.Pt(9500, 5000), 200)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A reliable session on shard 0, with one unacknowledged firing.
	out, _, err := c.Engine(0).HandleHello(wire.Hello{User: 1, Strategy: wire.StrategyMWPSR, MaxHeight: 5})
	if err != nil {
		t.Fatal(err)
	}
	var tok uint64
	for _, m := range out {
		if r, ok := m.(wire.Resume); ok {
			tok = r.Token
		}
	}
	if tok == 0 {
		t.Fatal("no session token issued")
	}
	if _, err := c.Engine(0).HandleUpdate(wire.PositionUpdate{User: 1, Seq: 1, Pos: geom.Pt(2000, 5000)}); err != nil {
		t.Fatal(err)
	}
	if pending := c.Engine(0).PendingFired(1); len(pending) != 1 || pending[0] != uint64(ids[0]) {
		t.Fatalf("pending before crash = %v, want [%d]", pending, ids[0])
	}

	// A clean record-boundary kill: the FiredRec for the unacknowledged
	// firing is the final WAL frame, and a torn tail would (correctly)
	// lose it — torn-tail recovery is the sim harness's territory, where
	// the client-side resend closes that window.
	rng := rand.New(rand.NewSource(1))
	if err := c.KillShard(0, store.TearNone, rng); err != nil {
		t.Fatal(err)
	}
	if c.Up(0) || c.Engine(0) != nil {
		t.Fatal("killed shard still reports up")
	}
	if !c.Up(1) {
		t.Fatal("healthy shard went down with its neighbour")
	}
	if err := c.KillShard(0, store.TearNone, rng); err == nil {
		t.Error("double kill accepted")
	}

	if err := c.RecoverShard(0); err != nil {
		t.Fatal(err)
	}
	if got := c.Engine(0).Registry().Len(); got != 1 {
		t.Errorf("recovered shard 0 holds %d alarms, want 1", got)
	}
	// The session resumed from the log: same token, pending redelivered.
	out, _, err = c.Engine(0).HandleHello(wire.Hello{User: 1, Token: tok, Strategy: wire.StrategyMWPSR, MaxHeight: 5})
	if err != nil {
		t.Fatal(err)
	}
	resumed, redelivered := false, false
	for _, m := range out {
		switch v := m.(type) {
		case wire.Resume:
			resumed = v.Resumed
		case wire.AlarmFired:
			for _, id := range v.Alarms {
				redelivered = redelivered || id == uint64(ids[0])
			}
		}
	}
	if !resumed || !redelivered {
		t.Errorf("after recovery: resumed=%v redelivered=%v, want both", resumed, redelivered)
	}
	met := c.Metrics().Snapshot()
	if met.ShardCrashes != 1 || met.ShardRecoveries != 1 {
		t.Errorf("crash/recovery counters = %d/%d, want 1/1", met.ShardCrashes, met.ShardRecoveries)
	}
}

// TestGlobalAlarmIDsSurviveRestart: a cluster reopened on the same data
// dir seeds its ID counter past every recovered shard, so new installs
// never collide with recovered alarms.
func TestGlobalAlarmIDsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	c := newTestCluster(t, 2, 1, dir)
	first, err := c.InstallAlarms([]alarm.Alarm{
		{Scope: alarm.Private, Owner: 1, Region: geom.RectAround(geom.Pt(2000, 5000), 200)},
		{Scope: alarm.Private, Owner: 1, Region: geom.RectAround(geom.Pt(8000, 5000), 200)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := newTestCluster(t, 2, 1, dir)
	second, err := c2.InstallAlarms([]alarm.Alarm{
		{Scope: alarm.Private, Owner: 1, Region: geom.RectAround(geom.Pt(5000, 5000), 200)},
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[alarm.ID]bool{}
	for _, id := range append(first, second...) {
		if seen[id] {
			t.Fatalf("alarm ID %d reused across restart", id)
		}
		seen[id] = true
	}
}
