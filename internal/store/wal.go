package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// WAL frame layout: u32 payload length | u32 CRC-32 (IEEE) of the payload
// | payload. Appends are a single write(2) of the whole frame, so a crash
// can only tear the *final* frame: everything before it is byte-complete
// on disk, and recovery truncates the log at the first frame that fails
// the length or CRC check.
const (
	frameHeader = 8
	// maxFramePayload bounds the length prefix a frame may claim,
	// mirroring the transport's 1 MiB frame cap. A corrupt length that
	// claims more is rejected rather than trusted.
	maxFramePayload = 1 << 20
)

// Frame wraps a record payload in the WAL framing.
func Frame(payload []byte) []byte {
	return AppendFrame(make([]byte, 0, frameHeader+len(payload)), payload)
}

// AppendFrame appends payload's WAL framing (header + payload) to dst and
// returns the extended slice — the allocation-free form of Frame, used by
// the group-commit paths to gather many frames into one reused buffer.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ScanFrames parses as many whole, checksum-valid frames as buf holds.
// It returns the payloads, the byte offset of the first invalid frame
// (== len(buf) when the log is clean), and a human-readable reason when
// the scan stopped early. Torn tails — a partial header, a payload cut
// short, trailing garbage, a flipped CRC bit — all stop the scan at the
// frame boundary before the damage; they never error, because a torn
// final write is the expected crash artifact.
func ScanFrames(buf []byte) (payloads [][]byte, clean int, reason string) {
	off := 0
	for {
		if off == len(buf) {
			return payloads, off, ""
		}
		if len(buf)-off < frameHeader {
			return payloads, off, fmt.Sprintf("partial frame header (%d bytes) at offset %d", len(buf)-off, off)
		}
		n := binary.BigEndian.Uint32(buf[off:])
		sum := binary.BigEndian.Uint32(buf[off+4:])
		if n > maxFramePayload {
			return payloads, off, fmt.Sprintf("frame at offset %d claims %d bytes (cap %d)", off, n, maxFramePayload)
		}
		if uint64(len(buf)-off-frameHeader) < uint64(n) {
			return payloads, off, fmt.Sprintf("frame at offset %d truncated: claims %d bytes, %d remain", off, n, len(buf)-off-frameHeader)
		}
		payload := buf[off+frameHeader : off+frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, off, fmt.Sprintf("frame at offset %d fails CRC", off)
		}
		payloads = append(payloads, payload)
		off += frameHeader + int(n)
	}
}
