package store

import (
	"bytes"
	"testing"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/wire"
)

// FuzzWALDecode exercises the WAL scan + record decode path against
// arbitrary bytes, mirroring internal/wire's FuzzDecode: scanning must
// never panic, the reported clean offset must cover exactly the accepted
// frames, and every accepted record must re-encode byte-identically.
func FuzzWALDecode(f *testing.F) {
	seeds := []Record{
		InstallRec{Alarm: alarm.Alarm{
			ID: 1, Scope: alarm.Public, Owner: 2, Region: geom.R(0, 0, 10, 10),
			Topic: "traffic/85N", Subscribers: []alarm.UserID{3, 4},
		}},
		RemoveRec{ID: 9},
		RegisterRec{User: 5, Strategy: wire.StrategyMWPSR, MaxHeight: 6},
		HelloRec{User: 6, Token: 0xFEEDC0FFEE, Strategy: wire.StrategySafePeriod},
		FiredRec{User: 7, Alarms: []uint64{1, 2, 3}},
		FiredAckRec{User: 7, Alarms: nil},
		ExpireRec{User: 8},
		EpochRec{Epoch: 3},
	}
	var multi []byte
	for _, rec := range seeds {
		frame := Frame(EncodeRecord(rec))
		f.Add(frame)
		multi = append(multi, frame...)
	}
	f.Add(multi)                 // several frames back to back
	f.Add(multi[:len(multi)-3])  // torn final frame
	f.Add(multi[:len(multi)-11]) // torn into the previous frame's payload
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})             // zero-length payload
	f.Add([]byte{0, 0, 0, 5, 0, 0, 0, 0})             // claims 5 bytes, has none
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // length past the 1 MiB cap
	f.Add([]byte{0, 16, 0, 0, 0, 0, 0, 0})            // max-count claim, empty body
	flipped := append([]byte(nil), multi...)
	flipped[len(flipped)/2] ^= 0x40 // bit flip mid-log
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, clean, _ := ScanFrames(data)
		if clean < 0 || clean > len(data) {
			t.Fatalf("clean offset %d out of range [0,%d]", clean, len(data))
		}
		// The clean prefix must re-scan to the same payloads (truncation
		// repair is stable).
		again, clean2, reason := ScanFrames(data[:clean])
		if clean2 != clean || reason != "" || len(again) != len(payloads) {
			t.Fatalf("re-scan of clean prefix: clean=%d reason=%q frames=%d, want %d/%q/%d",
				clean2, reason, len(again), clean, "", len(payloads))
		}
		for _, p := range payloads {
			rec, err := DecodeRecord(p)
			if err != nil {
				continue // CRC-valid junk may still fail record decode
			}
			re := EncodeRecord(rec)
			if !bytes.Equal(re, p) {
				t.Fatalf("re-encode differs: % x vs % x", re, p)
			}
		}
	})
}
