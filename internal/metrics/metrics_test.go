package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestServerCounters(t *testing.T) {
	s := NewServer(DefaultCosts())
	s.AddUplink(29)
	s.AddUplink(29)
	s.AddDownlink(37)
	snap := s.Snapshot()
	if snap.UplinkMessages != 2 || snap.UplinkBytes != 58 {
		t.Errorf("uplink = %d msgs %d bytes", snap.UplinkMessages, snap.UplinkBytes)
	}
	if snap.DownlinkMessages != 1 || snap.DownlinkBytes != 37 {
		t.Errorf("downlink = %d msgs %d bytes", snap.DownlinkMessages, snap.DownlinkBytes)
	}
}

func TestCostModelSeconds(t *testing.T) {
	costs := CostParams{
		NodeAccessSeconds: 1,
		AlarmCheckSeconds: 10,
		CandidateSeconds:  100,
		CornerSeconds:     1000,
		BitmapTestSeconds: 10000,
	}
	s := NewServer(costs)
	s.AddAlarmEvaluation(3, 2)
	s.AddRectComputation(4, 5, 1)
	s.AddBitmapComputation(6)
	if got := s.AlarmProcessingSeconds(); got != 3*1+2*10 {
		t.Errorf("AlarmProcessingSeconds = %v", got)
	}
	if got := s.SafeRegionSeconds(); got != 4*100+5*1000+6*10000 {
		t.Errorf("SafeRegionSeconds = %v", got)
	}
	if got := s.TotalSeconds(); got != 23+65400 {
		t.Errorf("TotalSeconds = %v", got)
	}
	if s.AlarmEvaluations() != 1 || s.SafeRegionComputations() != 2 {
		t.Errorf("evaluations=%d computations=%d", s.AlarmEvaluations(), s.SafeRegionComputations())
	}
	if s.RectClips() != 1 {
		t.Errorf("RectClips = %d", s.RectClips())
	}
	// The snapshot computes the same seconds as the live accessors.
	snap := s.Snapshot()
	if snap.TotalSeconds() != s.TotalSeconds() {
		t.Errorf("snapshot TotalSeconds %v != server %v", snap.TotalSeconds(), s.TotalSeconds())
	}
}

func TestDownlinkMbps(t *testing.T) {
	s := NewServer(DefaultCosts())
	s.AddDownlink(1e6 / 8) // one megabit
	if got := s.DownlinkMbps(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("DownlinkMbps = %v, want 1", got)
	}
	if got := s.DownlinkMbps(2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("DownlinkMbps over 2s = %v, want 0.5", got)
	}
	if got := s.DownlinkMbps(0); got != 0 {
		t.Errorf("DownlinkMbps with zero duration = %v", got)
	}
}

// TestConcurrentAccounting drives every Add method from many goroutines
// and asserts exact totals: atomic counters must not lose increments.
// Run with -race to additionally verify the absence of data races between
// writers and Snapshot readers.
func TestConcurrentAccounting(t *testing.T) {
	s := NewServer(DefaultCosts())
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	done := make(chan struct{})
	// A concurrent snapshot reader exercising the read path under load.
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = s.Snapshot()
				_ = s.TotalSeconds()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.AddUplink(10)
				s.AddDownlink(20)
				s.AddAlarmsTriggered(1)
				s.AddAlarmEvaluation(2, 3)
				s.AddRectComputation(1, 2, 0)
				s.AddBitmapComputation(4)
				s.AddSafeRegionIndexWork(5)
				s.AddSafePeriodComputation(6)
			}
		}()
	}
	wg.Wait()
	close(done)
	snap := s.Snapshot()
	n := uint64(workers * perWorker)
	if snap.UplinkMessages != n || snap.UplinkBytes != 10*n {
		t.Errorf("uplink = %d/%d, want %d/%d", snap.UplinkMessages, snap.UplinkBytes, n, 10*n)
	}
	if snap.DownlinkMessages != n || snap.DownlinkBytes != 20*n {
		t.Errorf("downlink = %d/%d", snap.DownlinkMessages, snap.DownlinkBytes)
	}
	if snap.AlarmsTriggered != n {
		t.Errorf("triggered = %d, want %d", snap.AlarmsTriggered, n)
	}
	if snap.AlarmEvaluations != n || snap.NodeAccesses != 2*n || snap.AlarmChecks != 3*n {
		t.Errorf("evaluation counters wrong: %+v", snap)
	}
	if snap.SafeRegionComputations != 3*n { // rect + bitmap + safe period
		t.Errorf("SR computations = %d, want %d", snap.SafeRegionComputations, 3*n)
	}
	if snap.SRNodeAccesses != 11*n {
		t.Errorf("SR node accesses = %d, want %d", snap.SRNodeAccesses, 11*n)
	}
}

func TestClientCountersAndEnergy(t *testing.T) {
	var c Client
	c.AddCheck(1)
	c.AddCheck(5)
	c.MessagesSent = 3
	if c.ContainmentChecks != 2 || c.Probes != 6 {
		t.Errorf("checks=%d probes=%d", c.ContainmentChecks, c.Probes)
	}
	p := EnergyParams{ProbeMilliWattHours: 2, RadioMilliWattHours: 10}
	if got := c.Energy(p); got != 6*2+3*10 {
		t.Errorf("Energy = %v", got)
	}
	var agg Client
	agg.Merge(c)
	agg.Merge(c)
	if agg.Probes != 12 || agg.MessagesSent != 6 || agg.ContainmentChecks != 4 {
		t.Errorf("merge wrong: %+v", agg)
	}
}

func TestDefaultsPositive(t *testing.T) {
	c := DefaultCosts()
	for name, v := range map[string]float64{
		"NodeAccess": c.NodeAccessSeconds,
		"AlarmCheck": c.AlarmCheckSeconds,
		"Candidate":  c.CandidateSeconds,
		"Corner":     c.CornerSeconds,
		"BitmapTest": c.BitmapTestSeconds,
	} {
		if v <= 0 {
			t.Errorf("%s cost not positive", name)
		}
	}
	e := DefaultEnergy()
	if e.ProbeMilliWattHours <= 0 || e.RadioMilliWattHours <= 0 {
		t.Error("energy params not positive")
	}
}
