package server

import (
	"testing"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/wire"
)

// newDurableEngine opens (or re-opens) a store in dir and builds the
// engine from whatever it recovers.
func newDurableEngine(t testing.TB, dir string, mutate func(*Config)) *Engine {
	t.Helper()
	st, state, info, err := store.Open(dir, store.Options{Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Universe:    universe,
		CellAreaM2:  2.5e6,
		MaxSpeed:    30,
		TickSeconds: 1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := NewDurable(cfg, st, state, info)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestDurableRecoveryRoundTrip drives a durable engine through the full
// record vocabulary, kills it, recovers, and checks the recovered engine
// behaves identically: the session resumes, unacked firings redeliver,
// and fired alarms never fire twice.
func TestDurableRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := newDurableEngine(t, dir, nil)
	ids, err := e.InstallAlarms([]alarm.Alarm{
		{Scope: alarm.Private, Owner: 1, Region: geom.R(400, 400, 600, 600)},
		{Scope: alarm.Public, Region: geom.R(5000, 5000, 5200, 5200)},
	})
	if err != nil {
		t.Fatal(err)
	}
	tok, resumed, _ := hello(t, e, 1, wire.StrategyMWPSR, 0)
	if resumed {
		t.Fatal("fresh hello resumed")
	}
	// Walk into the private alarm: it fires and stays pending (no ack).
	out := handle(t, e, 1, 1, geom.Pt(500, 500))
	if got := firedIn(out); len(got) != 1 || got[0] != uint64(ids[0]) {
		t.Fatalf("fired = %v, want [%d]", got, ids[0])
	}

	// Abrupt death: no checkpoint, no clean shutdown.
	e.Store().Kill()

	e2 := newDurableEngine(t, dir, nil)
	if got := e2.Registry().Len(); got != 2 {
		t.Fatalf("recovered %d alarms, want 2", got)
	}
	tok2, resumed, out := hello(t, e2, 1, wire.StrategyMWPSR, tok)
	if !resumed || tok2 != tok {
		t.Fatalf("recovered session did not resume: token=%d resumed=%v", tok2, resumed)
	}
	if got := firedIn(out); len(got) != 1 || got[0] != uint64(ids[0]) {
		t.Fatalf("resume redelivery = %v, want [%d]", got, ids[0])
	}
	// The fired pair survived: walking through the region again must NOT
	// re-fire.
	if err := e2.AckFired(1, []uint64{uint64(ids[0])}); err != nil {
		t.Fatal(err)
	}
	out = handle(t, e2, 1, 2, geom.Pt(500, 500))
	if got := firedIn(out); len(got) != 0 {
		t.Fatalf("recovered engine re-fired %v", got)
	}
	// New installs get fresh IDs past the recovered counter.
	more, err := e2.InstallAlarms([]alarm.Alarm{{Scope: alarm.Public, Region: geom.R(0, 0, 10, 10)}})
	if err != nil {
		t.Fatal(err)
	}
	if more[0] <= ids[1] {
		t.Fatalf("new ID %d collides with recovered IDs (max %d)", more[0], ids[1])
	}
	if m := e2.Metrics().Snapshot(); m.Recoveries != 1 || m.RecoveredRecords == 0 {
		t.Fatalf("recovery metrics = %+v", m)
	}
}

// TestDurableCheckpointRecovery: state recovered from a snapshot (plus an
// empty WAL) matches state recovered from a pure log replay.
func TestDurableCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	e := newDurableEngine(t, dir, nil)
	if _, err := e.InstallAlarms([]alarm.Alarm{
		{Scope: alarm.Private, Owner: 1, Region: geom.R(400, 400, 600, 600)},
	}); err != nil {
		t.Fatal(err)
	}
	hello(t, e, 1, wire.StrategyPBSR, 0)
	handle(t, e, 1, 1, geom.Pt(500, 500))
	want := e.DurableState()
	if err := e.Store().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.Store().Kill()

	e2 := newDurableEngine(t, dir, nil)
	got := e2.DurableState()
	if len(got.Alarms) != len(want.Alarms) || len(got.Fired) != len(want.Fired) ||
		len(got.Clients) != len(want.Clients) || len(got.Sessions) != len(want.Sessions) ||
		got.LastToken != want.LastToken || got.NextAlarmID != want.NextAlarmID {
		t.Fatalf("snapshot recovery differs:\n got %+v\nwant %+v", got, want)
	}
	if m := e2.Metrics().Snapshot(); m.RecoveredRecords != 0 {
		t.Fatalf("replayed %d records after a clean checkpoint, want 0", m.RecoveredRecords)
	}
}

// TestSessionExpiry: reliable sessions idle past the TTL are reaped (and
// logged), active ones survive, and a reaped client can re-enroll.
func TestSessionExpiry(t *testing.T) {
	dir := t.TempDir()
	e := newDurableEngine(t, dir, nil)
	now := time.Unix(1000, 0)
	e.nowFn = func() time.Time { return now }

	tok1, _, _ := hello(t, e, 1, wire.StrategyMWPSR, 0)
	hello(t, e, 2, wire.StrategyMWPSR, 0)

	now = now.Add(30 * time.Second)
	handle(t, e, 2, 1, geom.Pt(300, 300)) // user 2 stays active

	now = now.Add(31 * time.Second)
	n, err := e.ExpireSessions(time.Minute) // user 1 idle 61s, user 2 idle 31s
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("expired %d sessions, want 1", n)
	}
	if got := e.Metrics().Snapshot().SessionsExpired; got != 1 {
		t.Fatalf("SessionsExpired = %d", got)
	}
	// User 1's token is dead: hello with it starts fresh.
	tok1b, resumed, _ := hello(t, e, 1, wire.StrategyMWPSR, tok1)
	if resumed || tok1b == tok1 {
		t.Fatalf("expired session resumed (token %d -> %d)", tok1, tok1b)
	}
	// User 2 still resumes... after recovery too: expiry must be durable.
	e.Store().Kill()
	e2 := newDurableEngine(t, dir, nil)
	if _, resumed, _ := hello(t, e2, 1, wire.StrategyMWPSR, tok1); resumed {
		t.Fatal("recovered engine resurrected the expired session")
	}

	if _, err := e.ExpireSessions(0); err == nil {
		t.Error("zero TTL accepted")
	}
}

// TestPendingFiredCap: unacked firings beyond the cap evict oldest-first,
// the eviction metric counts them, and evicted alarms never re-fire.
func TestPendingFiredCap(t *testing.T) {
	e := newEngine(t, func(c *Config) { c.PendingFiredCap = 2 })
	var installed []alarm.ID
	for i := 0; i < 4; i++ {
		lo := float64(100 + 200*i)
		installed = append(installed, install(t, e, alarm.Alarm{
			Scope: alarm.Private, Owner: 1,
			Region: geom.R(lo, 100, lo+100, 200),
		}))
	}
	hello(t, e, 1, wire.StrategyMWPSR, 0)
	// Walk through all four alarms without ever acking.
	for i := 0; i < 4; i++ {
		handle(t, e, 1, uint32(i+1), geom.Pt(float64(150+200*i), 150))
	}
	pending := e.PendingFired(1)
	if len(pending) != 2 {
		t.Fatalf("pending = %v, want the 2 newest", pending)
	}
	if pending[0] != uint64(installed[2]) || pending[1] != uint64(installed[3]) {
		t.Fatalf("pending = %v, want oldest-first eviction leaving [%d %d]",
			pending, installed[2], installed[3])
	}
	if got := e.Metrics().Snapshot().FiredEvictions; got != 2 {
		t.Fatalf("FiredEvictions = %d, want 2", got)
	}
	// Evicted alarms stay fired: revisiting alarm 0 re-fires nothing.
	out := handle(t, e, 1, 9, geom.Pt(150, 150))
	for _, id := range firedIn(out) {
		if id == uint64(installed[0]) {
			t.Fatalf("evicted alarm %d re-fired", installed[0])
		}
	}
}

// TestDurableAppendFailureWithholdsResponse: once the store is dead, every
// state-changing handler errors instead of answering from memory.
func TestDurableAppendFailureWithholdsResponse(t *testing.T) {
	dir := t.TempDir()
	e := newDurableEngine(t, dir, nil)
	if _, err := e.InstallAlarms([]alarm.Alarm{
		{Scope: alarm.Private, Owner: 1, Region: geom.R(400, 400, 600, 600)},
	}); err != nil {
		t.Fatal(err)
	}
	hello(t, e, 1, wire.StrategyMWPSR, 0)
	e.Store().Kill()
	if _, err := e.HandleUpdate(wire.PositionUpdate{User: 1, Seq: 1, Pos: geom.Pt(500, 500)}); err == nil {
		t.Error("HandleUpdate answered after the store died")
	}
	if _, _, err := e.HandleHello(wire.Hello{User: 2, Strategy: wire.StrategyMWPSR}); err == nil {
		t.Error("HandleHello answered after the store died")
	}
	if err := e.Register(wire.Register{User: 3, Strategy: wire.StrategyMWPSR}); err == nil {
		t.Error("Register answered after the store died")
	}
}
