// Package alarm models spatial alarms and their server-side registry.
//
// A spatial alarm (paper §1) is a one-shot, location-triggered notification
// defined by an alarm target (a future location reference), an owner (the
// publisher) and a set of subscribers. By publish–subscribe scope, alarms
// are private (owner only), shared (owner plus an authorized subscriber
// list) or public (all mobile users; the paper's evaluation assumes public
// alarms are subscribed to by everyone).
//
// The registry indexes alarm regions in an R*-tree (paper §5.1) and tracks
// per-(alarm, subscriber) trigger state: an alarm fires at most once per
// subscriber and stops being relevant to that subscriber afterwards.
//
// Alarms on moving targets are supported by re-anchoring the alarm region
// when the target reports a new position (paper §1's "moving target"
// classes); the experiments use static targets, matching the paper's
// evaluation setup.
package alarm

import (
	"fmt"
	"sync"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/rstar"
)

// ID identifies an installed alarm.
type ID uint64

// UserID identifies a mobile user.
type UserID uint64

// Scope is the publish–subscribe scope of an alarm.
type Scope int

// Alarm scopes (paper §1).
const (
	Private Scope = iota + 1
	Shared
	Public
)

// String implements fmt.Stringer.
func (s Scope) String() string {
	switch s {
	case Private:
		return "private"
	case Shared:
		return "shared"
	case Public:
		return "public"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// Alarm is one installed spatial alarm.
type Alarm struct {
	ID    ID
	Scope Scope
	// Owner is the publisher. For private alarms the owner is the sole
	// subscriber; for shared alarms the owner is typically also in
	// Subscribers.
	Owner UserID
	// Subscribers is the authorized subscriber list for shared alarms.
	// Ignored for private (owner only) and public (everyone) alarms.
	Subscribers []UserID
	// Region is the spatial trigger region.
	Region geom.Rect
	// Target, when non-zero, names the mobile user the alarm region is
	// anchored to ("moving target" alarms). The region is recentred on the
	// target's position, preserving its extent, whenever the target moves.
	Target UserID
	// Topic optionally scopes a public alarm to a subscription topic
	// (paper §1: "mobile users may subscribe to public alarms by topic
	// categories or keywords, such as 'traffic information on highway 85
	// North'"). Empty means broadcast to everyone — the paper's
	// evaluation default. Ignored for private and shared alarms.
	Topic string
	// Kind selects the alarm's trigger lifecycle (lifecycle.go). The
	// zero value is the paper's one-shot alarm; the fields below apply
	// only to the kind that names them.
	Kind LifecycleKind
	// Cooldown (continuous, pair) is the minimum number of logical ticks
	// after an exit before the alarm may fire an entry again (0 = none).
	Cooldown uint32
	// Anchor (pair) is the second mobile endpoint; the alarm fires when
	// Owner and Anchor come within Radius of each other.
	Anchor UserID
	// Radius (pair) is the proximity threshold in meters.
	Radius float64
	// Factors (composite) are the weighted risk factors; Region is
	// derived as the union of their bounds.
	Factors []Factor
	// Threshold (composite) is the severity at or above which the alarm
	// fires.
	Threshold float64
	// ExpiresAt (composite) is the logical tick at which the alarm
	// expires and is GC'd (0 = never).
	ExpiresAt uint64
}

// RelevantTo reports whether the alarm can trigger for user u, ignoring
// trigger state and topic subscriptions (topic filtering needs the
// registry's subscription table; see Registry).
func (a *Alarm) RelevantTo(u UserID) bool {
	switch a.Scope {
	case Public:
		return true
	case Private:
		return a.Owner == u
	case Shared:
		if a.Owner == u {
			return true
		}
		for _, s := range a.Subscribers {
			if s == u {
				return true
			}
		}
	}
	return false
}

type pairKey struct {
	alarm ID
	user  UserID
}

// SpatialIndex is the query surface the registry needs from its spatial
// index. *rstar.Tree (the paper's choice) and *gridindex.Index (the
// bucket-grid ablation) both satisfy it.
type SpatialIndex interface {
	Insert(rstar.Item)
	InsertBatch(items []rstar.Item)
	Delete(rstar.Item) bool
	SearchPoint(geom.Point, []uint64) []uint64
	SearchRect(geom.Rect, []uint64) []uint64
	NearestDist(geom.Point, func(uint64) bool) float64
	// Counted variants additionally return the node (or bucket) accesses
	// performed by that query alone. Concurrent callers each get their own
	// exact cost, which the server's cost model charges per update; the
	// cumulative NodeAccesses counter still advances.
	SearchPointCounted(geom.Point, []uint64) ([]uint64, uint64)
	SearchRectCounted(geom.Rect, []uint64) ([]uint64, uint64)
	NearestDistCounted(geom.Point, func(uint64) bool) (float64, uint64)
	NodeAccesses() uint64
	ResetStats()
	Len() int
}

// Registry is the server-side store of installed alarms. It is safe for
// concurrent use.
type Registry struct {
	mu     sync.RWMutex
	alarms map[ID]*Alarm
	index  SpatialIndex
	fired  map[pairKey]struct{}
	// byTarget indexes alarms anchored to a moving target, so MoveTarget
	// costs O(alarms on that target), not O(all alarms).
	byTarget map[UserID][]ID
	// topics holds per-user public-alarm topic subscriptions.
	topics map[UserID]map[string]struct{}
	nextID ID
	// lifecycle counts installed non-one-shot alarms: the cheap gate
	// that keeps lifecycle evaluation out of legacy workloads.
	lifecycle int
	// pairsByUser indexes pair alarms by endpoint (pair alarms have no
	// static region, so the spatial index cannot reach them).
	pairsByUser map[UserID][]ID
	// lcStates holds the per-(alarm, user) lifecycle machines of
	// continuous and pair alarms.
	lcStates map[pairKey]lcState
	// insideByUser indexes continuous machines in the Inside phase, so
	// exit detection is O(regions the user is inside).
	insideByUser map[UserID]map[ID]struct{}
}

// NewRegistry returns an empty registry indexed by an R*-tree (the
// paper's configuration).
func NewRegistry() *Registry {
	return NewRegistryWithIndex(rstar.New(rstar.DefaultMaxEntries))
}

// NewRegistryWithIndex returns an empty registry over a caller-supplied
// spatial index (used by the index ablation).
func NewRegistryWithIndex(idx SpatialIndex) *Registry {
	return &Registry{
		alarms:       make(map[ID]*Alarm),
		index:        idx,
		fired:        make(map[pairKey]struct{}),
		byTarget:     make(map[UserID][]ID),
		topics:       make(map[UserID]map[string]struct{}),
		nextID:       1,
		pairsByUser:  make(map[UserID][]ID),
		lcStates:     make(map[pairKey]lcState),
		insideByUser: make(map[UserID]map[ID]struct{}),
	}
}

// Install validates and stores an alarm, assigning its ID. The returned ID
// identifies the alarm in all other calls.
func (r *Registry) Install(a Alarm) (ID, error) {
	if err := validateLifecycle(&a); err != nil {
		return 0, fmt.Errorf("alarm: %w", err)
	}
	if a.Kind != KindPair && a.Region.Empty() {
		return 0, fmt.Errorf("alarm: empty region %v", a.Region)
	}
	switch a.Scope {
	case Private, Shared, Public:
	default:
		return 0, fmt.Errorf("alarm: invalid scope %d", a.Scope)
	}
	if a.Scope == Shared && len(a.Subscribers) == 0 {
		return 0, fmt.Errorf("alarm: shared alarm requires subscribers")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nextID > MaxLifecycleID {
		return 0, fmt.Errorf("alarm: ID space exhausted")
	}
	a.ID = r.nextID
	r.nextID++
	stored := a
	stored.Subscribers = append([]UserID(nil), a.Subscribers...)
	r.alarms[stored.ID] = &stored
	if stored.indexed() {
		r.index.Insert(rstar.Item{ID: uint64(stored.ID), Rect: stored.Region})
	}
	if stored.Target != 0 {
		r.byTarget[stored.Target] = append(r.byTarget[stored.Target], stored.ID)
	}
	r.trackLifecycleLocked(&stored)
	return stored.ID, nil
}

// InstallBatch validates and stores a whole alarm table at once. When the
// registry is empty the spatial index is STR bulk-loaded (40× faster than
// one-by-one insertion for the paper's 10,000-alarm default); otherwise
// it falls back to individual inserts. Either all alarms are installed or
// none (validation runs first).
func (r *Registry) InstallBatch(alarms []Alarm) ([]ID, error) {
	for i := range alarms {
		a := &alarms[i]
		if err := validateLifecycle(a); err != nil {
			return nil, fmt.Errorf("alarm %d: %w", i, err)
		}
		if a.Kind != KindPair && a.Region.Empty() {
			return nil, fmt.Errorf("alarm %d: empty region %v", i, a.Region)
		}
		switch a.Scope {
		case Private, Shared, Public:
		default:
			return nil, fmt.Errorf("alarm %d: invalid scope %d", i, a.Scope)
		}
		if a.Scope == Shared && len(a.Subscribers) == 0 {
			return nil, fmt.Errorf("alarm %d: shared alarm requires subscribers", i)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]ID, len(alarms))
	items := make([]rstar.Item, 0, len(alarms))
	for i, a := range alarms {
		stored := a
		stored.ID = r.nextID
		r.nextID++
		stored.Subscribers = append([]UserID(nil), a.Subscribers...)
		r.alarms[stored.ID] = &stored
		if stored.Target != 0 {
			r.byTarget[stored.Target] = append(r.byTarget[stored.Target], stored.ID)
		}
		r.trackLifecycleLocked(&stored)
		ids[i] = stored.ID
		if stored.indexed() {
			items = append(items, rstar.Item{ID: uint64(stored.ID), Rect: stored.Region})
		}
	}
	r.index.InsertBatch(items)
	return ids, nil
}

// Remove uninstalls an alarm. It reports whether the alarm existed.
func (r *Registry) Remove(id ID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.alarms[id]
	if !ok {
		return false
	}
	if a.indexed() {
		r.index.Delete(rstar.Item{ID: uint64(id), Rect: a.Region})
	}
	delete(r.alarms, id)
	r.untrackLifecycleLocked(a)
	if a.Target != 0 {
		ids := r.byTarget[a.Target]
		for i, v := range ids {
			if v == id {
				r.byTarget[a.Target] = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		if len(r.byTarget[a.Target]) == 0 {
			delete(r.byTarget, a.Target)
		}
	}
	return true
}

// Get returns a copy of the alarm with the given ID.
func (r *Registry) Get(id ID) (Alarm, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.alarms[id]
	if !ok {
		return Alarm{}, false
	}
	out := *a
	out.Subscribers = append([]UserID(nil), a.Subscribers...)
	return out, true
}

// Len returns the number of installed alarms.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.alarms)
}

// MoveTarget re-anchors every alarm whose Target is user onto the new
// position, preserving each region's extent, and returns the IDs of the
// alarms that moved. Alarm processing for the affected subscribers must be
// re-run by the caller (the server invalidates their safe regions).
func (r *Registry) MoveTarget(user UserID, pos geom.Point) []ID {
	r.mu.Lock()
	defer r.mu.Unlock()
	var moved []ID
	for _, id := range r.byTarget[user] {
		a := r.alarms[id]
		if a == nil {
			continue
		}
		old := a.Region
		w, h := old.Width(), old.Height()
		a.Region = geom.Rect{
			MinX: pos.X - w/2, MinY: pos.Y - h/2,
			MaxX: pos.X + w/2, MaxY: pos.Y + h/2,
		}
		r.index.Delete(rstar.Item{ID: uint64(id), Rect: old})
		r.index.Insert(rstar.Item{ID: uint64(id), Rect: a.Region})
		moved = append(moved, id)
	}
	return moved
}

// IsTarget reports whether any installed alarm is anchored to user u.
func (r *Registry) IsTarget(u UserID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byTarget[u]) > 0
}

// SubscribersOf returns the users an alarm can trigger for: the owner for
// private alarms, the subscriber list for shared ones. Public alarms
// return nil (everyone; callers handle that case explicitly).
func (r *Registry) SubscribersOf(id ID) []UserID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a := r.alarms[id]
	if a == nil {
		return nil
	}
	switch a.Scope {
	case Private:
		return []UserID{a.Owner}
	case Shared:
		out := append([]UserID(nil), a.Subscribers...)
		if a.Owner != 0 && !containsUser(out, a.Owner) {
			out = append(out, a.Owner)
		}
		return out
	default:
		return nil
	}
}

func containsUser(s []UserID, u UserID) bool {
	for _, v := range s {
		if v == u {
			return true
		}
	}
	return false
}

// SubscribeTopic subscribes user u to topic-scoped public alarms.
func (r *Registry) SubscribeTopic(u UserID, topic string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := r.topics[u]
	if set == nil {
		set = make(map[string]struct{})
		r.topics[u] = set
	}
	set[topic] = struct{}{}
}

// UnsubscribeTopic removes a topic subscription.
func (r *Registry) UnsubscribeTopic(u UserID, topic string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if set := r.topics[u]; set != nil {
		delete(set, topic)
		if len(set) == 0 {
			delete(r.topics, u)
		}
	}
}

// relevantToLocked combines scope relevance with topic filtering. Callers
// hold r.mu.
func (r *Registry) relevantToLocked(a *Alarm, u UserID) bool {
	if !a.RelevantTo(u) {
		return false
	}
	if a.Scope == Public && a.Topic != "" {
		set := r.topics[u]
		if set == nil {
			return false
		}
		_, ok := set[a.Topic]
		return ok
	}
	return true
}

// Fired reports whether the alarm already triggered for user u.
func (r *Registry) Fired(id ID, u UserID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.fired[pairKey{alarm: id, user: u}]
	return ok
}

// MarkFired records that the alarm triggered for user u (one-shot
// semantics). Subsequent relevance and evaluation calls for u skip it.
func (r *Registry) MarkFired(id ID, u UserID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fired[pairKey{alarm: id, user: u}] = struct{}{}
}

// ResetFired clears all trigger state (used between experiment runs),
// with explicit per-lifecycle-kind semantics:
//
//   - one-shot: fired (alarm, user) pairs are cleared — every alarm can
//     fire again for every user;
//   - composite: the once-per-user severity firings live in the same
//     fired set and are cleared with it (expired alarms are gone from
//     the registry and do not come back);
//   - continuous and pair: every lifecycle machine returns to Armed with
//     a zero occurrence count — the next entry is occurrence 1 again, so
//     clients that deduplicate delivered events must reset alongside.
func (r *Registry) ResetFired() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fired = make(map[pairKey]struct{})
	r.lcStates = make(map[pairKey]lcState)
	r.insideByUser = make(map[UserID]map[ID]struct{})
}

// RelevantIn appends to dst the alarms relevant to user u whose regions
// intersect window w (typically the user's grid cell), excluding alarms
// already fired for u, and returns the extended slice. The returned
// pointers must be treated as read-only snapshots.
func (r *Registry) RelevantIn(w geom.Rect, u UserID, dst []Alarm) []Alarm {
	dst, _ = r.RelevantInCounted(w, u, dst)
	return dst
}

// RelevantInCounted is RelevantIn plus the index node accesses this query
// performed, so concurrent callers can charge their own exact cost.
func (r *Registry) RelevantInCounted(w geom.Rect, u UserID, dst []Alarm) ([]Alarm, uint64) {
	dst, _, accesses := r.RelevantInInto(w, u, dst, nil)
	return dst, accesses
}

// RelevantInInto is RelevantInCounted against caller-owned scratch: raw
// receives the R*-tree hits (truncated and refilled), dst is appended to
// as in RelevantIn. With warm slices the query allocates nothing. The
// returned slices are the grown scratch; pass them back on the next call.
func (r *Registry) RelevantInInto(w geom.Rect, u UserID, dst []Alarm, raw []uint64) ([]Alarm, []uint64, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	raw, accesses := r.index.SearchRectCounted(w, raw[:0])
	for _, rawID := range raw {
		id := ID(rawID)
		a := r.alarms[id]
		if a == nil || !r.relevantToLocked(a, u) {
			continue
		}
		if _, gone := r.fired[pairKey{alarm: id, user: u}]; gone {
			continue
		}
		dst = append(dst, *a)
	}
	return dst, raw, accesses
}

// Evaluate returns the alarms that trigger for user u at position p:
// relevant, not yet fired, and whose region contains p. It does not change
// trigger state; callers decide when to MarkFired (the server does so when
// it delivers the alert).
func (r *Registry) Evaluate(p geom.Point, u UserID) []ID {
	ids, _, _ := r.EvaluateCounted(p, u)
	return ids
}

// EvaluateCounted is Evaluate plus the number of candidate alarm regions
// the index query surfaced (relevant or not) and the index node accesses
// it performed — the per-update work the server cost model charges.
func (r *Registry) EvaluateCounted(p geom.Point, u UserID) ([]ID, int, uint64) {
	out, _, candidates, accesses := r.EvaluateInto(p, u, nil, nil)
	return out, candidates, accesses
}

// EvaluateInto is EvaluateCounted against caller-owned scratch: raw
// receives the R*-tree hits and dst the triggered IDs (both truncated and
// refilled). With warm slices the evaluation allocates nothing — this is
// the per-update fast path of server.Engine. The returned slices are the
// grown scratch; pass them back on the next call.
func (r *Registry) EvaluateInto(p geom.Point, u UserID, dst []ID, raw []uint64) ([]ID, []uint64, int, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	raw, accesses := r.index.SearchPointCounted(p, raw[:0])
	dst = dst[:0]
	for _, rawID := range raw {
		id := ID(rawID)
		a := r.alarms[id]
		// Non-one-shot alarms never trigger here: their transitions come
		// from EvaluateLifecycleInto, fed the same raw hits.
		if a == nil || a.Kind != KindOneShot || !r.relevantToLocked(a, u) {
			continue
		}
		if _, gone := r.fired[pairKey{alarm: id, user: u}]; gone {
			continue
		}
		dst = append(dst, id)
	}
	return dst, raw, len(raw), accesses
}

// PublicIn appends to dst the regions of all public alarms intersecting w,
// regardless of per-user trigger state — the input to the PBSR public-
// alarm bitmap precomputation (paper §4.2).
func (r *Registry) PublicIn(w geom.Rect, dst []geom.Rect) []geom.Rect {
	dst, _ = r.PublicInCounted(w, dst)
	return dst
}

// PublicInCounted is PublicIn plus the index node accesses this query
// performed.
func (r *Registry) PublicInCounted(w geom.Rect, dst []geom.Rect) ([]geom.Rect, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids, accesses := r.index.SearchRectCounted(w, nil)
	for _, raw := range ids {
		a := r.alarms[ID(raw)]
		if a != nil && a.Scope == Public {
			dst = append(dst, a.Region)
		}
	}
	return dst, accesses
}

// AnyFiredPublicIn reports whether any public alarm intersecting w has
// already fired for user u. The PBSR public-bitmap precomputation is
// shared across users, so it cannot reflect per-user fired state; the
// server falls back to direct computation for exactly these users to keep
// their safe regions maximal.
func (r *Registry) AnyFiredPublicIn(w geom.Rect, u UserID) bool {
	fired, _ := r.AnyFiredPublicInCounted(w, u)
	return fired
}

// AnyFiredPublicInCounted is AnyFiredPublicIn plus the index node accesses
// this query performed.
func (r *Registry) AnyFiredPublicInCounted(w geom.Rect, u UserID) (bool, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids, accesses := r.index.SearchRectCounted(w, nil)
	for _, raw := range ids {
		id := ID(raw)
		a := r.alarms[id]
		if a == nil || a.Scope != Public {
			continue
		}
		if _, gone := r.fired[pairKey{alarm: id, user: u}]; gone {
			return true, accesses
		}
	}
	return false, accesses
}

// AnyFiredIn reports whether any alarm relevant to user u intersecting w
// has already fired for u — i.e. whether a bitmap computed earlier for
// this window is stale (too conservative) for this user.
func (r *Registry) AnyFiredIn(w geom.Rect, u UserID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, raw := range r.index.SearchRect(w, nil) {
		id := ID(raw)
		a := r.alarms[id]
		if a == nil || !r.relevantToLocked(a, u) {
			continue
		}
		if _, gone := r.fired[pairKey{alarm: id, user: u}]; gone {
			return true
		}
	}
	return false
}

// RelevantNonPublicIn is RelevantIn restricted to private and shared
// alarms; combined with a precomputed public bitmap it covers the full
// relevant set.
func (r *Registry) RelevantNonPublicIn(w geom.Rect, u UserID, dst []Alarm) []Alarm {
	dst, _ = r.RelevantNonPublicInCounted(w, u, dst)
	return dst
}

// RelevantNonPublicInCounted is RelevantNonPublicIn plus the index node
// accesses this query performed.
func (r *Registry) RelevantNonPublicInCounted(w geom.Rect, u UserID, dst []Alarm) ([]Alarm, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids, accesses := r.index.SearchRectCounted(w, nil)
	for _, raw := range ids {
		id := ID(raw)
		a := r.alarms[id]
		if a == nil || a.Scope == Public || !r.relevantToLocked(a, u) {
			continue
		}
		if _, gone := r.fired[pairKey{alarm: id, user: u}]; gone {
			continue
		}
		dst = append(dst, *a)
	}
	return dst, accesses
}

// NearestRelevantDist returns the minimum distance from p to the region of
// any alarm relevant to u and not yet fired for u; +Inf when none exists.
// The safe-period baseline divides this distance by the maximum speed.
func (r *Registry) NearestRelevantDist(p geom.Point, u UserID) float64 {
	d, _ := r.NearestRelevantDistCounted(p, u)
	return d
}

// NearestRelevantDistCounted is NearestRelevantDist plus the index node
// accesses this query performed.
func (r *Registry) NearestRelevantDistCounted(p geom.Point, u UserID) (float64, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.index.NearestDistCounted(p, func(raw uint64) bool {
		id := ID(raw)
		a := r.alarms[id]
		if a == nil || !r.relevantToLocked(a, u) {
			return false
		}
		_, gone := r.fired[pairKey{alarm: id, user: u}]
		return !gone
	})
}

// IndexAccesses returns the cumulative R*-tree node accesses performed by
// queries, feeding the server cost model.
func (r *Registry) IndexAccesses() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.index.NodeAccesses()
}

// ResetIndexStats zeroes the node access counter.
func (r *Registry) ResetIndexStats() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.index.ResetStats()
}

// All returns a snapshot of every installed alarm, in unspecified order.
func (r *Registry) All() []Alarm {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Alarm, 0, len(r.alarms))
	for _, a := range r.alarms {
		out = append(out, *a)
	}
	return out
}
