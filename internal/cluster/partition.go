// Package cluster distributes the SABRE alarm server across N
// independent engines, each owning one rectangular partition of the
// service area — the paper's "distributed processing" read literally:
// spatial alarms are processed by the server responsible for the space
// they occupy. The package provides the spatial partitioner (this file),
// the cluster lifecycle (cluster.go: per-shard engines and durable
// stores, crash/recover), the message router with cross-shard session
// handoff and firing dedup (router.go), and a per-shard TCP front end
// that redirects clients between shards (tcp.go). See DESIGN.md
// "Clustering" for the soundness argument and PROTOCOL.md "Redirect and
// handoff" for the wire rules.
package cluster

import (
	"fmt"

	"github.com/sabre-geo/sabre/internal/geom"
)

// Partitioner splits a universe rectangle into a cols×rows grid of
// shard partitions, numbered row-major from the bottom-left. Boundaries
// are computed by one shared formula, so Rect and Locate can never
// disagree about which side of a boundary a point falls on: a point
// exactly on an interior boundary belongs to the higher-indexed cell.
type Partitioner struct {
	universe   geom.Rect
	cols, rows int
}

// NewPartitioner splits universe into n partitions using the most
// square-ish cols×rows factorization of n (ties broken toward more
// columns for wide universes, more rows for tall ones).
func NewPartitioner(universe geom.Rect, n int) (*Partitioner, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 shard, got %d", n)
	}
	bestCols, bestScore := 0, 0.0
	for cols := 1; cols <= n; cols++ {
		if n%cols != 0 {
			continue
		}
		rows := n / cols
		cw := universe.Width() / float64(cols)
		ch := universe.Height() / float64(rows)
		score := cw / ch
		if score < 1 {
			score = 1 / score
		}
		if bestCols == 0 || score < bestScore {
			bestCols, bestScore = cols, score
		}
	}
	return NewPartitionerGrid(universe, bestCols, n/bestCols)
}

// NewPartitionerGrid splits universe into an explicit cols×rows grid.
func NewPartitionerGrid(universe geom.Rect, cols, rows int) (*Partitioner, error) {
	if cols < 1 || rows < 1 {
		return nil, fmt.Errorf("cluster: invalid partition grid %dx%d", cols, rows)
	}
	if universe.Empty() {
		return nil, fmt.Errorf("cluster: empty universe %v", universe)
	}
	return &Partitioner{universe: universe, cols: cols, rows: rows}, nil
}

// N returns the number of partitions.
func (p *Partitioner) N() int { return p.cols * p.rows }

// Cols and Rows expose the partition grid shape.
func (p *Partitioner) Cols() int { return p.cols }
func (p *Partitioner) Rows() int { return p.rows }

// Universe returns the partitioned rectangle.
func (p *Partitioner) Universe() geom.Rect { return p.universe }

func (p *Partitioner) boundaryX(c int) float64 {
	return p.universe.MinX + p.universe.Width()*float64(c)/float64(p.cols)
}

func (p *Partitioner) boundaryY(r int) float64 {
	return p.universe.MinY + p.universe.Height()*float64(r)/float64(p.rows)
}

// Rect returns partition i's rectangle.
func (p *Partitioner) Rect(i int) geom.Rect {
	col, row := i%p.cols, i/p.cols
	return geom.Rect{
		MinX: p.boundaryX(col), MinY: p.boundaryY(row),
		MaxX: p.boundaryX(col + 1), MaxY: p.boundaryY(row + 1),
	}
}

// Locate returns the partition owning pt. Points outside the universe
// clamp to the nearest edge partition, mirroring the engine's one-cell
// position slack beyond the universe.
func (p *Partitioner) Locate(pt geom.Point) int {
	col := locateAxis(pt.X, p.universe.MinX, p.universe.Width(), p.cols, p.boundaryX)
	row := locateAxis(pt.Y, p.universe.MinY, p.universe.Height(), p.rows, p.boundaryY)
	return row*p.cols + col
}

// locateAxis finds i with boundary(i) <= v < boundary(i+1), clamped to
// [0, n-1]. The arithmetic guess is corrected against the exact boundary
// formula so floating-point rounding cannot split a point and its
// partition rectangle across a boundary.
func locateAxis(v, min, width float64, n int, boundary func(int) float64) int {
	i := int((v - min) / width * float64(n))
	if i < 0 {
		i = 0
	}
	if i > n-1 {
		i = n - 1
	}
	for i > 0 && v < boundary(i) {
		i--
	}
	for i < n-1 && v >= boundary(i+1) {
		i++
	}
	return i
}

// Overlapping returns the partitions whose rectangle intersects r, in
// ascending order.
func (p *Partitioner) Overlapping(r geom.Rect) []int {
	var out []int
	for i := 0; i < p.N(); i++ {
		if p.Rect(i).Intersects(r) {
			out = append(out, i)
		}
	}
	return out
}
