// Package stats provides the small summary-statistics helpers the
// experiment harness uses to report distributions (per-client message
// counts, safe region sizes) rather than bare totals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample distribution.
type Summary struct {
	Count              int
	Min, Max           float64
	Mean               float64
	P25, P50, P90, P95 float64
}

// Summarize computes a Summary. The input is not modified. An empty
// sample yields the zero Summary.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	total := 0.0
	for _, v := range sorted {
		total += v
	}
	return Summary{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Mean:  total / float64(len(sorted)),
		P25:   Percentile(sorted, 0.25),
		P50:   Percentile(sorted, 0.50),
		P90:   Percentile(sorted, 0.90),
		P95:   Percentile(sorted, 0.95),
	}
}

// SummarizeUints is Summarize over unsigned counts.
func SummarizeUints(sample []uint64) Summary {
	fs := make([]float64, len(sample))
	for i, v := range sample {
		fs[i] = float64(v)
	}
	return Summarize(fs)
}

// Percentile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample using linear interpolation between closest ranks.
func Percentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String implements fmt.Stringer with a compact one-line rendering.
func (s Summary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%.3g p25=%.3g p50=%.3g p90=%.3g p95=%.3g max=%.3g mean=%.3g",
		s.Count, s.Min, s.P25, s.P50, s.P90, s.P95, s.Max, s.Mean)
}
