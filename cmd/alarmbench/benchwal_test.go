package main

import (
	"encoding/json"
	"os"
	"testing"
)

// TestBenchWALReport checks that the committed BENCH_wal.json parses
// against the report schema and records the environment a reader needs
// to judge the numbers: GOMAXPROCS and the fsync regime. Throughput and
// speedup values are hardware-dependent and deliberately not asserted —
// CI regenerates the file on whatever box it runs on.
func TestBenchWALReport(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_wal.json")
	if err != nil {
		t.Skipf("BENCH_wal.json not present: %v", err)
	}
	var report benchWALReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_wal.json does not parse: %v", err)
	}
	if report.GOMAXPROCS <= 0 {
		t.Errorf("GOMAXPROCS = %d, want > 0", report.GOMAXPROCS)
	}
	if !report.Fsync {
		t.Error("Fsync = false; bench-wal must measure the fsync-on regime")
	}
	if len(report.Series) == 0 {
		t.Fatal("empty series")
	}
	for i, pt := range report.Series {
		if pt.Appenders <= 0 || pt.GroupMax <= 0 {
			t.Errorf("series[%d]: appenders=%d group_max=%d, want > 0", i, pt.Appenders, pt.GroupMax)
		}
		if pt.Appends == 0 || pt.OpsPerSec <= 0 {
			t.Errorf("series[%d]: appends=%d ops/sec=%f, want > 0", i, pt.Appends, pt.OpsPerSec)
		}
		if pt.GroupCommits == 0 || pt.Fsyncs == 0 {
			t.Errorf("series[%d]: group_commits=%d fsyncs=%d, want > 0", i, pt.GroupCommits, pt.Fsyncs)
		}
	}
}

// TestBenchWALAppends pins the scale defaults and the -wal-appends
// override.
func TestBenchWALAppends(t *testing.T) {
	tests := []struct {
		opts options
		want int
	}{
		{options{scale: "small"}, 6400},
		{options{scale: "medium"}, 25600},
		{options{scale: "full"}, 102400},
		{options{scale: "small", walAppends: 64}, 64},
	}
	for _, tt := range tests {
		if got := benchWALAppends(tt.opts); got != tt.want {
			t.Errorf("benchWALAppends(%+v) = %d, want %d", tt.opts, got, tt.want)
		}
	}
}
