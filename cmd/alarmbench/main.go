// Command alarmbench regenerates every table and figure of the paper's
// evaluation (§5) plus three ablations of SABRE-specific design choices.
//
// Usage:
//
//	alarmbench [flags] <experiment> [<experiment>...]
//
// Experiments:
//
//	fig1b    motion pdf p(φ) series (paper Figure 1(b))
//	fig4a    client→server messages vs grid cell size, non-weighted vs
//	         weighted MWPSR (Figure 4(a))
//	fig4b    server processing time vs grid cell size (Figure 4(b))
//	fig5a    messages vs pyramid height per public-alarm density (Figure 5(a))
//	fig5b    client energy vs pyramid height per density (Figure 5(b))
//	fig6a    messages per approach per density (Figure 6(a))
//	fig6b    downstream bandwidth per approach (Figure 6(b))
//	fig6c    client energy per approach (Figure 6(c))
//	fig6d    server time decomposition per approach (Figure 6(d))
//	ablate-weighting     greedy vs exhaustive MWPSR assembly
//	ablate-clipping      MWPSR soundness clip counts
//	ablate-publicbitmap  PBSR with vs without public-alarm precomputation
//	bench-engine         concurrent HandleUpdate throughput at 1/2/4/8
//	         goroutines; writes BENCH_engine.json (not part of "all")
//	bench-cluster        routed update throughput on a sharded cluster
//	         with 100k simulated clients, sweeping shards × goroutines ×
//	         batch size; writes BENCH_cluster.json (not part of "all")
//	bench-wal            durable append throughput with fsync on, sweeping
//	         concurrent appenders × group-commit cap (group_max=1 is the
//	         per-record baseline); writes BENCH_wal.json (not part of "all")
//	all      every figure above in order
//
// Flags select the workload scale: -scale small (default, seconds),
// medium (a minute or two) or full (the paper's 10,000 vehicles × 1 h —
// tens of minutes). -verify additionally re-runs the periodic ground truth
// for every configuration and asserts 100% trigger accuracy.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/grid"
	"github.com/sabre-geo/sabre/internal/motion"
	"github.com/sabre-geo/sabre/internal/pyramid"
	"github.com/sabre-geo/sabre/internal/roadnet"
	"github.com/sabre-geo/sabre/internal/saferegion"
	"github.com/sabre-geo/sabre/internal/sim"
	"github.com/sabre-geo/sabre/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "alarmbench:", err)
		os.Exit(1)
	}
}

type options struct {
	scale      string
	seed       int64
	verify     bool
	walAppends int
}

func run(args []string) error {
	fs := flag.NewFlagSet("alarmbench", flag.ContinueOnError)
	opts := options{}
	fs.StringVar(&opts.scale, "scale", "small", "workload scale: small, medium or full (paper scale)")
	fs.Int64Var(&opts.seed, "seed", 1, "workload seed")
	fs.BoolVar(&opts.verify, "verify", false, "re-run the periodic ground truth per configuration and assert 100% accuracy")
	fs.IntVar(&opts.walAppends, "wal-appends", 0, "bench-wal: records per sweep point (0 = scale default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment given (try: alarmbench fig6a)")
	}
	experiments := fs.Args()
	if len(experiments) == 1 && experiments[0] == "all" {
		experiments = []string{
			"fig1b", "fig4a", "fig4b", "fig5a", "fig5b",
			"fig6a", "fig6b", "fig6c", "fig6d",
			"ablate-weighting", "ablate-clipping", "ablate-publicbitmap",
			"ablate-index", "ablate-safeperiod", "mixed", "coverage",
			"scalability",
		}
	}
	for _, name := range experiments {
		runner, ok := runners[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q", name)
		}
		start := time.Now()
		if err := runner(opts); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("  [%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

var runners = map[string]func(options) error{
	"fig1b":               runFig1b,
	"fig4a":               runFig4a,
	"fig4b":               runFig4b,
	"fig5a":               runFig5a,
	"fig5b":               runFig5b,
	"fig6a":               runFig6a,
	"fig6b":               runFig6b,
	"fig6c":               runFig6c,
	"fig6d":               runFig6d,
	"ablate-weighting":    runAblateWeighting,
	"ablate-clipping":     runAblateClipping,
	"ablate-publicbitmap": runAblatePublicBitmap,
	"ablate-index":        runAblateIndex,
	"ablate-safeperiod":   runAblateSafePeriod,
	"mixed":               runMixed,
	"coverage":            runCoverage,
	"scalability":         runScalability,
	"bench-engine":        runBenchEngine,
	"bench-cluster":       runBenchCluster,
	"bench-wal":           runBenchWAL,
}

// workload returns the scale-appropriate configuration with the given
// public-alarm fraction.
func workload(opts options, publicFraction float64) (sim.WorkloadConfig, error) {
	var cfg sim.WorkloadConfig
	switch opts.scale {
	case "small":
		cfg = sim.SmallWorkload(opts.seed)
	case "medium":
		cfg = sim.WorkloadConfig{
			Seed:              opts.seed,
			Vehicles:          1000,
			DurationTicks:     900,
			NumAlarms:         1000,
			PublicFraction:    0.10,
			SharedSubscribers: 2,
			AlarmMinSide:      100,
			AlarmMaxSide:      400,
			Network:           roadnet.Config{Side: 10000, Spacing: 500, Jitter: 0.25, DropProb: 0.12, Seed: opts.seed},
		}
	case "full":
		cfg = sim.DefaultWorkload(opts.seed)
	default:
		return cfg, fmt.Errorf("unknown scale %q", opts.scale)
	}
	if publicFraction >= 0 {
		cfg.PublicFraction = publicFraction
	}
	return cfg, nil
}

func buildWorkload(opts options, publicFraction float64) (*sim.Workload, error) {
	cfg, err := workload(opts, publicFraction)
	if err != nil {
		return nil, err
	}
	return sim.BuildWorkload(cfg)
}

// runAndVerify executes a strategy run and, under -verify, asserts trigger
// equality with the periodic ground truth (computed once per workload and
// cached).
func runAndVerify(opts options, w *sim.Workload, sc sim.StrategyConfig, truth map[*sim.Workload]*sim.Report) (*sim.Report, error) {
	r, err := sim.Run(w, sc)
	if err != nil {
		return nil, err
	}
	if opts.verify {
		ref, ok := truth[w]
		if !ok {
			base := sc
			base.Strategy = wire.StrategyPeriodic
			ref, err = sim.Run(w, base)
			if err != nil {
				return nil, err
			}
			truth[w] = ref
		}
		if !sim.TriggersEqual(ref.Triggers, r.Triggers) {
			return nil, fmt.Errorf("%s: trigger set differs from periodic ground truth (%d vs %d)",
				r.Strategy, len(r.Triggers), len(ref.Triggers))
		}
		fmt.Printf("  verify %-6s: %d triggers, 100%% accuracy vs PRD\n", r.Strategy, len(r.Triggers))
	}
	return r, nil
}

// table prints an aligned table.
func table(title string, header []string, rows [][]string) {
	fmt.Println("==", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
	printRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range rows {
		printRow(row)
	}
}

func fmtCount(v uint64) string {
	switch {
	case v >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// cellSizes are the paper's Figure 4 grid cell areas in km².
var cellSizes = []float64{0.4, 0.625, 1.11, 2.5, 10}

// densities are the paper's public-alarm percentages.
var densities = []float64{0.01, 0.10, 0.20}

func runFig1b(options) error {
	fmt.Println("== Figure 1(b): steady motion pdf p(φ), y=1")
	zs := []float64{2, 4, 8}
	models := make([]motion.Model, len(zs))
	for i, z := range zs {
		models[i] = motion.MustNew(1, z)
	}
	header := []string{"phi/pi"}
	for _, z := range zs {
		header = append(header, fmt.Sprintf("z=%g", z))
	}
	var rows [][]string
	for i := -8; i <= 8; i++ {
		phi := float64(i) / 8 * math.Pi
		row := []string{fmt.Sprintf("%+.2f", float64(i)/8)}
		for _, m := range models {
			row = append(row, fmt.Sprintf("%.4f", m.PDF(phi)))
		}
		rows = append(rows, row)
	}
	table("pdf values (uniform = 0.1592)", header, rows)
	return nil
}

// fig4Variants are the rectangular safe region variants of Figure 4(a):
// the non-weighted approach plus weighted with y=1 and increasing z.
func fig4Variants() []struct {
	name  string
	model motion.Model
} {
	return []struct {
		name  string
		model motion.Model
	}{
		{"non-weighted", motion.Uniform()},
		{"y=1,z=4", motion.MustNew(1, 4)},
		{"y=1,z=16", motion.MustNew(1, 16)},
		{"y=1,z=32", motion.MustNew(1, 32)},
	}
}

func runFig4a(opts options) error {
	w, err := buildWorkload(opts, -1)
	if err != nil {
		return err
	}
	truth := map[*sim.Workload]*sim.Report{}
	variants := fig4Variants()
	header := []string{"cell km^2"}
	for _, v := range variants {
		header = append(header, v.name)
	}
	var rows [][]string
	for _, cell := range cellSizes {
		row := []string{fmt.Sprintf("%.3f", cell)}
		for _, v := range variants {
			r, err := runAndVerify(opts, w, sim.StrategyConfig{
				Strategy:    wire.StrategyMWPSR,
				Model:       v.model,
				CellAreaKM2: cell,
			}, truth)
			if err != nil {
				return err
			}
			row = append(row, fmtCount(r.UplinkMessages))
		}
		rows = append(rows, row)
	}
	table("Figure 4(a): client-to-server messages vs grid cell size (MWPSR)", header, rows)
	prd := uint64(w.Config.Vehicles) * uint64(w.Config.DurationTicks)
	fmt.Printf("  (periodic baseline would send %s messages)\n", fmtCount(prd))
	return nil
}

func runFig4b(opts options) error {
	w, err := buildWorkload(opts, -1)
	if err != nil {
		return err
	}
	truth := map[*sim.Workload]*sim.Report{}
	header := []string{"cell km^2", "alarm proc (min)", "SR comp (min)", "total (min)"}
	var rows [][]string
	for _, cell := range cellSizes {
		r, err := runAndVerify(opts, w, sim.StrategyConfig{
			Strategy:    wire.StrategyMWPSR,
			Model:       motion.MustNew(1, 32),
			CellAreaKM2: cell,
		}, truth)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", cell),
			fmt.Sprintf("%.3f", r.AlarmProcessingMinutes),
			fmt.Sprintf("%.3f", r.SafeRegionMinutes),
			fmt.Sprintf("%.3f", r.TotalServerMinutes),
		})
	}
	table("Figure 4(b): server processing time vs cell size (MWPSR, y=1 z=32)", header, rows)
	return nil
}

func runFig5(opts options, energy bool) error {
	heights := []int{1, 2, 3, 4, 5, 6, 7}
	header := []string{"pyramid h"}
	for _, d := range densities {
		header = append(header, fmt.Sprintf("%g%% public", d*100))
	}
	var rows [][]string
	workloads := make([]*sim.Workload, len(densities))
	for i, d := range densities {
		w, err := buildWorkload(opts, d)
		if err != nil {
			return err
		}
		workloads[i] = w
	}
	truth := map[*sim.Workload]*sim.Report{}
	for _, h := range heights {
		row := []string{fmt.Sprintf("%d", h)}
		for i := range densities {
			r, err := runAndVerify(opts, workloads[i], sim.StrategyConfig{
				Strategy:      wire.StrategyPBSR,
				PyramidHeight: h,
			}, truth)
			if err != nil {
				return err
			}
			if energy {
				row = append(row, fmt.Sprintf("%.1f", r.ClientProbeEnergyMWh))
			} else {
				row = append(row, fmtCount(r.UplinkMessages))
			}
		}
		rows = append(rows, row)
	}
	if energy {
		table("Figure 5(b): client containment-detection energy (mWh) vs pyramid height (BSR)", header, rows)
	} else {
		table("Figure 5(a): client-to-server messages vs pyramid height (BSR; h=1 is GBSR)", header, rows)
	}
	return nil
}

func runFig5a(opts options) error { return runFig5(opts, false) }
func runFig5b(opts options) error { return runFig5(opts, true) }

// fig6Configs are the approaches compared in Figure 6.
func fig6Configs() []struct {
	name string
	sc   sim.StrategyConfig
} {
	return []struct {
		name string
		sc   sim.StrategyConfig
	}{
		{"PRD", sim.StrategyConfig{Strategy: wire.StrategyPeriodic}},
		{"MWPSR", sim.StrategyConfig{Strategy: wire.StrategyMWPSR, Model: motion.MustNew(1, 32)}},
		{"PBSR", sim.StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 5}},
		{"SP", sim.StrategyConfig{Strategy: wire.StrategySafePeriod}},
		{"OPT", sim.StrategyConfig{Strategy: wire.StrategyOptimal}},
	}
}

// runFig6 executes the Figure 6 comparison and renders the requested
// metric columns. Reports are cached per (workload, approach) so fig6a–d
// reuse runs when invoked together via "all".
func runFig6(opts options, title string, approaches []string, metric func(*sim.Report) string) error {
	configs := fig6Configs()
	header := []string{"approach"}
	for _, d := range densities {
		header = append(header, fmt.Sprintf("%g%% public", d*100))
	}
	workloads := make([]*sim.Workload, len(densities))
	for i, d := range densities {
		w, err := buildWorkload(opts, d)
		if err != nil {
			return err
		}
		workloads[i] = w
	}
	truth := map[*sim.Workload]*sim.Report{}
	var rows [][]string
	for _, c := range configs {
		include := false
		for _, a := range approaches {
			if a == c.name {
				include = true
			}
		}
		if !include {
			continue
		}
		row := []string{c.name}
		for i := range densities {
			r, err := runAndVerify(opts, workloads[i], c.sc, truth)
			if err != nil {
				return err
			}
			row = append(row, metric(r))
		}
		rows = append(rows, row)
	}
	table(title, header, rows)
	return nil
}

func runFig6a(opts options) error {
	return runFig6(opts,
		"Figure 6(a): client-to-server messages per approach (PRD sends every tick)",
		[]string{"PRD", "MWPSR", "PBSR", "SP", "OPT"},
		func(r *sim.Report) string { return fmtCount(r.UplinkMessages) })
}

func runFig6b(opts options) error {
	return runFig6(opts,
		"Figure 6(b): downstream bandwidth (Mbps) per approach",
		[]string{"MWPSR", "PBSR", "OPT"},
		func(r *sim.Report) string { return fmt.Sprintf("%.4f", r.DownlinkMbps) })
}

func runFig6c(opts options) error {
	return runFig6(opts,
		"Figure 6(c): client energy consumption (mWh) per approach",
		[]string{"MWPSR", "PBSR", "OPT"},
		func(r *sim.Report) string { return fmt.Sprintf("%.1f", r.ClientEnergyMWh) })
}

func runFig6d(opts options) error {
	configs := fig6Configs()
	header := []string{"approach", "public %", "alarm proc (min)", "SR comp (min)", "total (min)"}
	var rows [][]string
	truth := map[*sim.Workload]*sim.Report{}
	for _, d := range []float64{0.01, 0.10} {
		w, err := buildWorkload(opts, d)
		if err != nil {
			return err
		}
		for _, c := range configs {
			r, err := runAndVerify(opts, w, c.sc, truth)
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				c.name,
				fmt.Sprintf("%g", d*100),
				fmt.Sprintf("%.3f", r.AlarmProcessingMinutes),
				fmt.Sprintf("%.3f", r.SafeRegionMinutes),
				fmt.Sprintf("%.3f", r.TotalServerMinutes),
			})
		}
	}
	table("Figure 6(d): server processing time decomposition", header, rows)
	return nil
}

func runAblateWeighting(opts options) error {
	w, err := buildWorkload(opts, -1)
	if err != nil {
		return err
	}
	truth := map[*sim.Workload]*sim.Report{}
	header := []string{"assembly", "messages", "SR comp (min)"}
	var rows [][]string
	for _, mode := range []struct {
		name       string
		exhaustive bool
	}{{"greedy (paper §3 step 4)", false}, {"exhaustive (optimal)", true}} {
		r, err := runAndVerify(opts, w, sim.StrategyConfig{
			Strategy:           wire.StrategyMWPSR,
			Model:              motion.MustNew(1, 32),
			ExhaustiveAssembly: mode.exhaustive,
		}, truth)
		if err != nil {
			return err
		}
		rows = append(rows, []string{mode.name, fmtCount(r.UplinkMessages),
			fmt.Sprintf("%.3f", r.SafeRegionMinutes)})
	}
	table("Ablation: greedy vs exhaustive component-rectangle assembly", header, rows)
	return nil
}

func runAblateClipping(opts options) error {
	w, err := buildWorkload(opts, -1)
	if err != nil {
		return err
	}
	truth := map[*sim.Workload]*sim.Report{}
	header := []string{"variant", "SR computations", "soundness clips"}
	var rows [][]string
	for _, v := range fig4Variants() {
		r, err := runAndVerify(opts, w, sim.StrategyConfig{
			Strategy: wire.StrategyMWPSR,
			Model:    v.model,
		}, truth)
		if err != nil {
			return err
		}
		rows = append(rows, []string{v.name, fmtCount(r.SafeRegionComputations), fmtCount(r.RectClips)})
	}
	table("Ablation: MWPSR skyline soundness (clips should be 0)", header, rows)
	return nil
}

// runAblateSafePeriod quantifies the paper's critique of the safe-period
// baseline: its 100% accuracy depends on a pessimistic v_max bound.
// Relaxing the bound cuts messages but silently loses triggers.
func runAblateSafePeriod(opts options) error {
	w, err := buildWorkload(opts, -1)
	if err != nil {
		return err
	}
	truth, err := sim.Run(w, sim.StrategyConfig{Strategy: wire.StrategyPeriodic})
	if err != nil {
		return err
	}
	truthPairs := map[[2]uint64]bool{}
	for _, tr := range truth.Triggers {
		truthPairs[[2]uint64{tr.User, tr.Alarm}] = true
	}
	header := []string{"v_max factor", "messages", "trigger recall"}
	var rows [][]string
	for _, factor := range []float64{1.0, 0.5, 0.25} {
		r, err := sim.Run(w, sim.StrategyConfig{
			Strategy:              wire.StrategySafePeriod,
			SafePeriodSpeedFactor: factor,
		})
		if err != nil {
			return err
		}
		got := map[[2]uint64]bool{}
		for _, tr := range r.Triggers {
			got[[2]uint64{tr.User, tr.Alarm}] = true
		}
		hit := 0
		for pair := range truthPairs {
			if got[pair] {
				hit++
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", factor),
			fmtCount(r.UplinkMessages),
			fmt.Sprintf("%.1f%% (%d/%d)", 100*float64(hit)/float64(len(truthPairs)), hit, len(truthPairs)),
		})
	}
	table("Ablation: safe-period pessimism (factor 1.0 = paper's guarantee)", header, rows)
	return nil
}

// runMixed serves a heterogeneous fleet (paper §4's device heterogeneity)
// from one engine and reports per-class costs.
func runMixed(opts options) error {
	w, err := buildWorkload(opts, -1)
	if err != nil {
		return err
	}
	classes := []sim.MixedClass{
		{Name: "feature phone (SP)", Strategy: wire.StrategySafePeriod, Fraction: 0.3},
		{Name: "budget phone (MWPSR)", Strategy: wire.StrategyMWPSR, Fraction: 0.4},
		{Name: "flagship (PBSR h=6)", Strategy: wire.StrategyPBSR, PyramidHeight: 6, Fraction: 0.3},
	}
	mixed, err := sim.RunMixed(w, classes, sim.StrategyConfig{Model: motion.MustNew(1, 32)})
	if err != nil {
		return err
	}
	if opts.verify {
		truth, err := sim.Run(w, sim.StrategyConfig{Strategy: wire.StrategyPeriodic})
		if err != nil {
			return err
		}
		if !sim.TriggersEqual(truth.Triggers, mixed.Triggers) {
			return fmt.Errorf("mixed fleet trigger set differs from ground truth")
		}
		fmt.Printf("  verify mixed: %d triggers, 100%% accuracy vs PRD\n", len(mixed.Triggers))
	}
	header := []string{"class", "vehicles", "messages", "msgs/client p50", "energy mWh"}
	var rows [][]string
	for _, c := range mixed.Classes {
		rows = append(rows, []string{
			c.Name,
			fmt.Sprintf("%d", c.Vehicles),
			fmtCount(c.UplinkMessages),
			fmt.Sprintf("%.0f", c.PerClientMessages.P50),
			fmt.Sprintf("%.1f", c.EnergyMWh),
		})
	}
	table("Mixed fleet: one engine, three device classes", header, rows)
	fmt.Printf("  (server total %.3f min, downstream %s bytes)\n",
		mixed.TotalServerMinutes, fmtCount(mixed.DownlinkBytes))
	return nil
}

// runScalability sweeps the fleet size at fixed alarm density, comparing
// how server load grows under periodic evaluation versus MWPSR — the
// paper's headline scalability argument ("the alarm processing server may
// become a bottleneck", §1).
func runScalability(opts options) error {
	base, err := workload(opts, -1)
	if err != nil {
		return err
	}
	header := []string{"vehicles", "PRD msgs", "PRD server (min)", "MWPSR msgs", "MWPSR server (min)", "ratio"}
	var rows [][]string
	for _, scale := range []float64{0.5, 1, 2, 4} {
		cfg := base
		cfg.Vehicles = int(float64(base.Vehicles) * scale)
		if cfg.Vehicles < 1 {
			cfg.Vehicles = 1
		}
		w, err := sim.BuildWorkload(cfg)
		if err != nil {
			return err
		}
		prd, err := sim.Run(w, sim.StrategyConfig{Strategy: wire.StrategyPeriodic})
		if err != nil {
			return err
		}
		mw, err := sim.Run(w, sim.StrategyConfig{Strategy: wire.StrategyMWPSR, Model: motion.MustNew(1, 32)})
		if err != nil {
			return err
		}
		if !sim.TriggersEqual(prd.Triggers, mw.Triggers) {
			return fmt.Errorf("scalability: accuracy violation at %d vehicles", cfg.Vehicles)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", cfg.Vehicles),
			fmtCount(prd.UplinkMessages),
			fmt.Sprintf("%.3f", prd.TotalServerMinutes),
			fmtCount(mw.UplinkMessages),
			fmt.Sprintf("%.3f", mw.TotalServerMinutes),
			fmt.Sprintf("%.0fx", prd.TotalServerMinutes/mw.TotalServerMinutes),
		})
	}
	table("Scalability: server load vs fleet size (accuracy verified per row)", header, rows)
	return nil
}

// runCoverage reports the paper's §4.2 quality metrics — coverage η(Ψs)
// and bitmap size — for pyramid heights over sampled grid cells of the
// workload.
func runCoverage(opts options) error {
	w, err := buildWorkload(opts, -1)
	if err != nil {
		return err
	}
	reg := alarm.NewRegistry()
	if _, err := reg.InstallBatch(w.Alarms); err != nil {
		return err
	}
	universe := w.Net.Bounds().Expand(50)
	g, err := grid.New(universe, 2.5e6)
	if err != nil {
		return err
	}
	header := []string{"pyramid h", "mean coverage", "min coverage", "mean bits", "max bits"}
	var rows [][]string
	cols, rowsN := g.Dims()
	for h := 1; h <= 7; h++ {
		var covSum, covMin float64 = 0, 1
		var bitSum, bitMax, n int
		for c := 0; c < cols; c++ {
			for r := 0; r < rowsN; r++ {
				cellRect := g.CellRect(grid.MakeCellID(c, r))
				var rects []geom.Rect
				for _, a := range reg.PublicIn(cellRect, nil) {
					rects = append(rects, a)
				}
				res, err := saferegion.ComputeBitmap(cellRect, pyramid.Params{U: 3, V: 3, Height: h, MaxBits: 2048}, rects, nil)
				if err != nil {
					return err
				}
				region, err := pyramid.Decode(res.Bitmap)
				if err != nil {
					return err
				}
				cov := region.Coverage()
				covSum += cov
				if cov < covMin {
					covMin = cov
				}
				bits := res.Bitmap.SizeBits()
				bitSum += bits
				if bits > bitMax {
					bitMax = bits
				}
				n++
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", h),
			fmt.Sprintf("%.4f", covSum/float64(n)),
			fmt.Sprintf("%.4f", covMin),
			fmt.Sprintf("%.0f", float64(bitSum)/float64(n)),
			fmt.Sprintf("%d", bitMax),
		})
	}
	table("Coverage η(Ψs) vs bitmap size per pyramid height (public alarms, 2.5 km² cells)", header, rows)
	return nil
}

func runAblateIndex(opts options) error {
	w, err := buildWorkload(opts, -1)
	if err != nil {
		return err
	}
	truth := map[*sim.Workload]*sim.Report{}
	header := []string{"index", "strategy", "alarm proc (min)", "SR comp (min)"}
	var rows [][]string
	for _, idx := range []struct {
		name   string
		bucket bool
	}{{"R*-tree (paper §5.1)", false}, {"bucket grid", true}} {
		for _, strat := range []wire.Strategy{wire.StrategyPeriodic, wire.StrategyMWPSR} {
			r, err := runAndVerify(opts, w, sim.StrategyConfig{
				Strategy:    strat,
				Model:       motion.MustNew(1, 32),
				BucketIndex: idx.bucket,
			}, truth)
			if err != nil {
				return err
			}
			rows = append(rows, []string{idx.name, r.Strategy,
				fmt.Sprintf("%.3f", r.AlarmProcessingMinutes),
				fmt.Sprintf("%.3f", r.SafeRegionMinutes)})
		}
	}
	table("Ablation: alarm index structure (costs in index accesses x cost model)", header, rows)
	return nil
}

func runAblatePublicBitmap(opts options) error {
	w, err := buildWorkload(opts, 0.20) // densest public workload
	if err != nil {
		return err
	}
	truth := map[*sim.Workload]*sim.Report{}
	header := []string{"variant", "messages", "SR comp (min)", "SR computations"}
	var rows [][]string
	for _, mode := range []struct {
		name string
		pre  bool
	}{{"direct", false}, {"precomputed public bitmaps (§4.2)", true}} {
		r, err := runAndVerify(opts, w, sim.StrategyConfig{
			Strategy:                wire.StrategyPBSR,
			PyramidHeight:           5,
			PrecomputePublicBitmaps: mode.pre,
		}, truth)
		if err != nil {
			return err
		}
		rows = append(rows, []string{mode.name, fmtCount(r.UplinkMessages),
			fmt.Sprintf("%.3f", r.SafeRegionMinutes), fmtCount(r.SafeRegionComputations)})
	}
	table("Ablation: PBSR public-alarm bitmap precomputation (20% public)", header, rows)
	return nil
}
