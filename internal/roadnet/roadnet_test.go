package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
)

func smallConfig(seed int64) Config {
	return Config{Side: 5000, Spacing: 500, Jitter: 0.2, DropProb: 0.1, Seed: seed}
}

func mustGenerate(t testing.TB, cfg Config) *Network {
	t.Helper()
	n, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"default ok", func(c *Config) {}, false},
		{"zero side", func(c *Config) { c.Side = 0 }, true},
		{"zero spacing", func(c *Config) { c.Spacing = 0 }, true},
		{"spacing > side", func(c *Config) { c.Spacing = 10000 }, true},
		{"jitter too big", func(c *Config) { c.Jitter = 0.6 }, true},
		{"negative drop", func(c *Config) { c.DropProb = -0.1 }, true},
		{"drop = 1", func(c *Config) { c.DropProb = 1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig(1)
			tt.mutate(&cfg)
			_, err := Generate(cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("Generate err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, smallConfig(42))
	b := mustGenerate(t, smallConfig(42))
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different networks")
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.Node(NodeID(i)) != b.Node(NodeID(i)) {
			t.Fatalf("node %d differs between runs", i)
		}
	}
	c := mustGenerate(t, smallConfig(43))
	same := true
	for i := 0; i < a.NumNodes() && same; i++ {
		if a.Node(NodeID(i)) != c.Node(NodeID(i)) {
			same = false
		}
	}
	if same && a.NumEdges() == c.NumEdges() {
		t.Error("different seeds produced identical networks")
	}
}

func TestNetworkShape(t *testing.T) {
	n := mustGenerate(t, smallConfig(7))
	// 5000/500 + 1 = 11x11 nodes.
	if n.NumNodes() != 121 {
		t.Fatalf("NumNodes = %d, want 121", n.NumNodes())
	}
	// Full lattice has 2*11*10 = 220 edges; drops remove some locals only.
	if n.NumEdges() >= 220 || n.NumEdges() < 150 {
		t.Errorf("NumEdges = %d, expected (150, 220)", n.NumEdges())
	}
	bounds := n.Bounds()
	for i := 0; i < n.NumNodes(); i++ {
		p := n.Node(NodeID(i))
		if !bounds.Expand(0.5 * 500).Contains(p) {
			t.Errorf("node %d at %v far outside bounds", i, p)
		}
	}
	if math.Abs(n.MaxSpeed()-110.0/3.6) > 1e-9 {
		t.Errorf("MaxSpeed = %v", n.MaxSpeed())
	}
}

func TestRoadClassHierarchy(t *testing.T) {
	if !(Highway.SpeedLimit() > Arterial.SpeedLimit() && Arterial.SpeedLimit() > Local.SpeedLimit()) {
		t.Error("speed hierarchy violated")
	}
	n := mustGenerate(t, smallConfig(3))
	counts := map[Class]int{}
	for i := 0; i < n.NumEdges(); i++ {
		counts[n.Edge(i).Class]++
	}
	if counts[Highway] == 0 || counts[Arterial] == 0 || counts[Local] == 0 {
		t.Errorf("missing road classes: %v", counts)
	}
	if !(counts[Local] > counts[Arterial] && counts[Arterial] > counts[Highway]) {
		t.Errorf("class distribution inverted: %v", counts)
	}
}

func TestGiantComponent(t *testing.T) {
	n := mustGenerate(t, smallConfig(5))
	inGiant := 0
	for i := 0; i < n.NumNodes(); i++ {
		if n.InGiantComponent(NodeID(i)) {
			inGiant++
		}
	}
	if inGiant < n.NumNodes()*9/10 {
		t.Errorf("giant component only %d/%d nodes", inGiant, n.NumNodes())
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		if !n.InGiantComponent(n.RandomNode(rng)) {
			t.Fatal("RandomNode left the giant component")
		}
	}
}

func TestShortestPath(t *testing.T) {
	n := mustGenerate(t, smallConfig(9))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		from := n.RandomNode(rng)
		to := n.RandomNode(rng)
		path, total, err := n.ShortestPath(from, to)
		if err != nil {
			t.Fatalf("ShortestPath(%d,%d): %v", from, to, err)
		}
		if from == to {
			if len(path) != 0 || total != 0 {
				t.Fatal("trivial path should be empty")
			}
			continue
		}
		// Path is connected from 'from' to 'to' and the times add up.
		cur := from
		var sum float64
		for _, ei := range path {
			e := n.Edge(int(ei))
			switch cur {
			case e.From:
				cur = e.To
			case e.To:
				cur = e.From
			default:
				t.Fatalf("disconnected path at edge %d", ei)
			}
			sum += e.TravelTime()
		}
		if cur != to {
			t.Fatalf("path ends at %d, want %d", cur, to)
		}
		if math.Abs(sum-total) > 1e-6 {
			t.Fatalf("travel time %v != reported %v", sum, total)
		}
		// Admissibility: travel time >= straight-line distance / vmax.
		lower := n.Node(from).DistanceTo(n.Node(to)) / n.MaxSpeed()
		if total < lower-1e-6 {
			t.Fatalf("path faster than physics: %v < %v", total, lower)
		}
	}
}

func TestShortestPathOptimalOnTinyGraph(t *testing.T) {
	// Dense jitter-free network: compare A* against Dijkstra-by-hand
	// (Floyd-Warshall over travel times).
	n := mustGenerate(t, Config{Side: 1500, Spacing: 500, Jitter: 0, DropProb: 0, Seed: 1})
	const inf = math.MaxFloat64
	nn := n.NumNodes()
	d := make([][]float64, nn)
	for i := range d {
		d[i] = make([]float64, nn)
		for j := range d[i] {
			if i != j {
				d[i][j] = inf
			}
		}
	}
	for i := 0; i < n.NumEdges(); i++ {
		e := n.Edge(i)
		tt := e.TravelTime()
		if tt < d[e.From][e.To] {
			d[e.From][e.To], d[e.To][e.From] = tt, tt
		}
	}
	for k := 0; k < nn; k++ {
		for i := 0; i < nn; i++ {
			for j := 0; j < nn; j++ {
				if d[i][k] != inf && d[k][j] != inf && d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	for i := 0; i < nn; i++ {
		for j := 0; j < nn; j++ {
			_, total, err := n.ShortestPath(NodeID(i), NodeID(j))
			if err != nil {
				t.Fatalf("no path %d->%d", i, j)
			}
			if math.Abs(total-d[i][j]) > 1e-6 {
				t.Fatalf("path %d->%d = %v, want %v", i, j, total, d[i][j])
			}
		}
	}
}

func TestNearestNode(t *testing.T) {
	n := mustGenerate(t, smallConfig(4))
	id := n.NearestNode(geom.Pt(2500, 2500))
	if id < 0 {
		t.Fatal("NearestNode returned -1")
	}
	p := n.Node(id)
	if p.DistanceTo(geom.Pt(2500, 2500)) > 500*1.5 {
		t.Errorf("nearest node %v too far from query", p)
	}
	if !n.InGiantComponent(id) {
		t.Error("NearestNode left giant component")
	}
}

func BenchmarkShortestPathPaperScale(b *testing.B) {
	n := mustGenerate(b, DefaultConfig(1))
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := n.RandomNode(rng)
		to := n.RandomNode(rng)
		if _, _, err := n.ShortestPath(from, to); err != nil {
			b.Fatal(err)
		}
	}
}
