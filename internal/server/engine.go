// Package server implements the SABRE alarm server engine: the
// transport-independent core that evaluates client position updates
// against the alarm index and answers with safe regions, safe periods or
// alarm pushes depending on each client's registered strategy.
//
// The engine realizes the paper's distributed partitioning scheme (§2):
// heavy, globally informed work — alarm evaluation against the R*-tree,
// safe region computation — stays on the server; clients only monitor
// their own position against the compact region the server hands them.
// One engine serves heterogeneous clients: every strategy of §5 (PRD, SP,
// MWPSR, PBSR with per-client pyramid height, OPT) can be active at once.
//
// The engine is safe for concurrent use (the TCP front end calls it from
// one goroutine per connection); the in-process simulation drives it
// single-threaded.
package server

import (
	"fmt"
	"math"
	"sync"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/grid"
	"github.com/sabre-geo/sabre/internal/gridindex"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/motion"
	"github.com/sabre-geo/sabre/internal/pyramid"
	"github.com/sabre-geo/sabre/internal/saferegion"
	"github.com/sabre-geo/sabre/internal/wire"
)

// Config parameterizes an engine.
type Config struct {
	// Universe is the region covered by the grid overlay.
	Universe geom.Rect
	// CellAreaM2 is the grid cell area in square metres (paper Figure 4
	// sweeps 0.4–10 km²; 2.5 km² is the paper's optimum).
	CellAreaM2 float64
	// Model weights MWPSR safe regions; motion.Uniform() gives the
	// non-weighted variant.
	Model motion.Model
	// PyramidParams shapes PBSR bitmaps. A client's registered MaxHeight
	// caps the height per client (device heterogeneity, paper §4).
	PyramidParams pyramid.Params
	// MaxSpeed is the system-wide speed bound v_max used by safe periods.
	MaxSpeed float64
	// TickSeconds is the position sampling interval.
	TickSeconds float64
	// PrecomputePublicBitmaps enables the §4.2 optimization: per grid
	// cell, the pyramid bitmap of all public alarms is computed once and
	// reused for every PBSR client in that cell.
	PrecomputePublicBitmaps bool
	// ExhaustiveAssembly switches MWPSR to the quartic-time optimal
	// component-rectangle assembly (ablation).
	ExhaustiveAssembly bool
	// UseBucketIndex replaces the R*-tree alarm index with a uniform
	// bucket grid (ablation of the paper's §5.1 index choice).
	UseBucketIndex bool
	// SafePeriodSpeedFactor scales the v_max bound used by safe-period
	// computation. 0 or 1 is the paper's pessimistic guarantee; smaller
	// values assume clients move slower than the bound, shrinking message
	// counts at the cost of missed or late triggers (the trade-off the
	// paper cites as SP's weakness; see ablate-safeperiod).
	SafePeriodSpeedFactor float64
	// Costs is the server cost model; zero value means metrics.DefaultCosts.
	Costs metrics.CostParams
}

// Pusher delivers server-initiated messages (moving-target safe region
// invalidations) to a connected client. It is called with the engine lock
// held and must not call back into the engine; queue or send, then return.
type Pusher func(user alarm.UserID, msgs []wire.Message)

// Engine is the alarm server core.
type Engine struct {
	cfg    Config
	grid   *grid.Grid
	reg    *alarm.Registry
	pusher Pusher

	mu      sync.Mutex
	met     *metrics.Server
	clients map[alarm.UserID]*clientState
	// publicBitmaps caches the precomputed public-alarm pyramid region per
	// grid cell (invalidated wholesale when alarms change).
	publicBitmaps map[grid.CellID]*pyramid.Region
}

type clientState struct {
	strategy  wire.Strategy
	maxHeight int
	lastPos   geom.Point
	hasPos    bool
	// heading smooths the client's direction of travel across reports for
	// the MWPSR motion weighting.
	heading motion.HeadingTracker
	// PBSR cell-recompute policy (§4.2): the cell the client's current
	// bitmap was computed for. While the client stays in that cell and
	// triggers nothing, the server answers with a bare Ack instead of
	// recomputing and re-shipping the bitmap.
	bitmapCell    grid.CellID
	hasBitmapCell bool
}

// New creates an engine. The registry starts empty; install alarms through
// Registry().
func New(cfg Config) (*Engine, error) {
	if cfg.Costs == (metrics.CostParams{}) {
		cfg.Costs = metrics.DefaultCosts()
	}
	if cfg.PyramidParams == (pyramid.Params{}) {
		cfg.PyramidParams = pyramid.DefaultParams(5)
	}
	if err := cfg.PyramidParams.Validate(); err != nil {
		return nil, err
	}
	if cfg.TickSeconds <= 0 {
		return nil, fmt.Errorf("server: non-positive tick %v", cfg.TickSeconds)
	}
	if cfg.MaxSpeed <= 0 {
		return nil, fmt.Errorf("server: non-positive max speed %v", cfg.MaxSpeed)
	}
	g, err := grid.New(cfg.Universe, cfg.CellAreaM2)
	if err != nil {
		return nil, err
	}
	reg := alarm.NewRegistry()
	if cfg.UseBucketIndex {
		// Roughly one bucket per 0.5 km² keeps per-bucket alarm lists
		// short at the paper's default densities.
		buckets := int(cfg.Universe.Area() / 5e5)
		reg = alarm.NewRegistryWithIndex(gridindex.New(cfg.Universe, buckets))
	}
	return &Engine{
		cfg:           cfg,
		grid:          g,
		reg:           reg,
		met:           metrics.NewServer(cfg.Costs),
		clients:       make(map[alarm.UserID]*clientState),
		publicBitmaps: make(map[grid.CellID]*pyramid.Region),
	}, nil
}

// Registry exposes the alarm store for installation and inspection.
func (e *Engine) Registry() *alarm.Registry { return e.reg }

// ReplaceRegistry swaps in a restored alarm registry (snapshot load at
// startup) and drops any precomputed public bitmaps. It must be called
// before clients connect.
func (e *Engine) ReplaceRegistry(r *alarm.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reg = r
	e.publicBitmaps = make(map[grid.CellID]*pyramid.Region)
}

// Grid exposes the grid overlay.
func (e *Engine) Grid() *grid.Grid { return e.grid }

// Metrics returns the server counters. The caller must not race it with
// in-flight updates.
func (e *Engine) Metrics() *metrics.Server { return e.met }

// SetPusher installs the callback used to push fresh monitoring state to
// clients whose safe regions were invalidated by a moving alarm target.
// Without a pusher, moving-target alarms require their subscribers to use
// frequent reporting (the target's motion cannot reach silent clients).
func (e *Engine) SetPusher(p Pusher) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pusher = p
}

// InvalidatePublicBitmaps drops the precomputed public-alarm bitmaps; call
// after installing or removing public alarms.
func (e *Engine) InvalidatePublicBitmaps() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.publicBitmaps = make(map[grid.CellID]*pyramid.Region)
}

// Register enrolls (or re-enrolls) a client with its strategy and, for
// PBSR, the maximum pyramid height its hardware can decode.
func (e *Engine) Register(m wire.Register) error {
	switch m.Strategy {
	case wire.StrategyPeriodic, wire.StrategySafePeriod, wire.StrategyMWPSR,
		wire.StrategyPBSR, wire.StrategyOptimal:
	default:
		return fmt.Errorf("server: unknown strategy %d", m.Strategy)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Registration is not charged as uplink: the paper's message counts
	// are location messages only, and registration happens once per client.
	e.clients[alarm.UserID(m.User)] = &clientState{
		strategy:  m.Strategy,
		maxHeight: int(m.MaxHeight),
	}
	return nil
}

// HandleUpdate processes one client position report and returns the
// messages to send back: any AlarmFired notification first, then the
// strategy-specific monitoring state (safe region, safe period or alarm
// push). Unknown clients are treated as periodic.
func (e *Engine) HandleUpdate(u wire.PositionUpdate) ([]wire.Message, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	if err := e.validatePosition(u.Pos); err != nil {
		return nil, err
	}
	user := alarm.UserID(u.User)
	st := e.clients[user]
	if st == nil {
		st = &clientState{strategy: wire.StrategyPeriodic}
		e.clients[user] = st
	}
	e.met.AddUplink(wire.EncodedSize(u))

	// Moving-target alarms (paper §1 classes 2 and 3): when the reporting
	// user is an alarm target, re-anchor those alarm regions to the new
	// position and push fresh monitoring state to affected subscribers —
	// their held safe regions no longer prove anything.
	if e.reg.IsTarget(user) {
		movedRegions := make(map[alarm.ID]geom.Rect)
		for _, id := range e.reg.MoveTarget(user, u.Pos) {
			if a, ok := e.reg.Get(id); ok {
				movedRegions[id] = a.Region // region at its new anchor
			}
		}
		if len(movedRegions) > 0 {
			e.pushInvalidations(user, movedRegions)
		}
	}

	// Alarm evaluation against the R*-tree (every strategy does this; it
	// is the "alarm processing" bucket of Figures 4(b)/6(d)).
	before := e.reg.IndexAccesses()
	triggered, candidates := e.reg.EvaluateCounted(u.Pos, user)
	e.met.AddAlarmEvaluation(e.reg.IndexAccesses()-before, uint64(candidates))

	var out []wire.Message
	if len(triggered) > 0 {
		fired := wire.AlarmFired{Seq: u.Seq, Alarms: make([]uint64, len(triggered))}
		for i, id := range triggered {
			// One-shot semantics: retire the pair before recomputing the
			// safe region so the fired alarm becomes free space (§4.2).
			e.reg.MarkFired(id, user)
			fired.Alarms[i] = uint64(id)
			e.met.AlarmsTriggered++
		}
		out = e.send(out, fired)
	}

	switch st.strategy {
	case wire.StrategyPeriodic:
		// Server-centric periodic evaluation: nothing goes back.
	case wire.StrategySafePeriod:
		out = e.send(out, e.safePeriodFor(u))
	case wire.StrategyMWPSR:
		out = e.send(out, e.rectRegionFor(u, st))
	case wire.StrategyPBSR:
		cellID := e.grid.Locate(u.Pos)
		sameCell := st.hasBitmapCell && st.bitmapCell == cellID
		switch {
		case sameCell && len(triggered) == 0:
			// §4.2: no recomputation while the client stays in its base
			// cell without triggering; a 5-byte Ack resumes monitoring.
			// When earlier triggers made the client's bitmap stale (fired
			// alarms still appear blocked), a rectangular patch restores
			// coverage around the client instead.
			if e.reg.AnyFiredIn(e.grid.CellRect(cellID), user) {
				out = e.send(out, e.rectRegionFor(u, st))
			} else {
				out = e.send(out, wire.Ack{Seq: u.Seq})
			}
		case sameCell:
			// §4.2 quick update: the triggered alarm just became free
			// space. Instead of recomputing and re-shipping the bitmap,
			// send a small rectangular patch around the client that avoids
			// every remaining alarm; the client ORs it into its region.
			out = e.send(out, e.rectRegionFor(u, st))
		default:
			msg, err := e.bitmapRegionFor(u, st, cellID)
			if err != nil {
				return nil, err
			}
			st.bitmapCell = cellID
			st.hasBitmapCell = true
			out = e.send(out, msg)
		}
	case wire.StrategyOptimal:
		out = e.send(out, e.alarmPushFor(u))
	}

	st.lastPos = u.Pos
	st.hasPos = true
	return out, nil
}

// validatePosition rejects positions the geometry cannot handle: NaN and
// infinities poison every downstream computation silently, and positions
// far outside the universe indicate a confused or hostile client rather
// than grid-fringe drift.
func (e *Engine) validatePosition(p geom.Point) error {
	if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
		return fmt.Errorf("server: non-finite position %v", p)
	}
	// Allow one cell side of slack beyond the universe.
	slack := e.grid.CellSide()
	if !e.cfg.Universe.Expand(slack).Contains(p) {
		return fmt.Errorf("server: position %v outside universe %v", p, e.cfg.Universe)
	}
	return nil
}

// send charges a downlink message and appends it.
func (e *Engine) send(out []wire.Message, m wire.Message) []wire.Message {
	e.met.AddDownlink(wire.EncodedSize(m))
	return append(out, m)
}

// pushInvalidations recomputes and pushes monitoring state for every
// online subscriber affected by moved alarms. Server-initiated messages
// carry Seq 0, which clients accept without treating them as a reply.
func (e *Engine) pushInvalidations(mover alarm.UserID, moved map[alarm.ID]geom.Rect) {
	if e.pusher == nil {
		return
	}
	affected := make(map[alarm.UserID]bool)
	for id := range moved {
		a, ok := e.reg.Get(id)
		if !ok {
			continue
		}
		if subs := e.reg.SubscribersOf(id); subs != nil {
			for _, s := range subs {
				affected[s] = true
			}
			continue
		}
		// Public moving-target alarm: push to every online client whose
		// current cell intersects the alarm's new region. Clients near the
		// vacated location keep a safe region that merely under-covers
		// (the alarm is gone from there), which is conservative, not
		// unsafe; they refresh on their next report.
		for user, st := range e.clients {
			if affected[user] || !st.hasPos {
				continue
			}
			cell := e.grid.CellRect(e.grid.Locate(st.lastPos))
			if cell.Intersects(a.Region) || cell.Intersects(moved[id]) {
				affected[user] = true
			}
		}
	}
	delete(affected, mover) // the mover's own update handles itself
	for user := range affected {
		st := e.clients[user]
		if st == nil || !st.hasPos {
			continue
		}
		fake := wire.PositionUpdate{User: uint64(user), Seq: 0, Pos: st.lastPos}
		var msg wire.Message
		switch st.strategy {
		case wire.StrategySafePeriod:
			msg = e.safePeriodFor(fake)
		case wire.StrategyMWPSR:
			msg = e.rectRegionFor(fake, st)
		case wire.StrategyPBSR:
			cellID := e.grid.Locate(st.lastPos)
			bm, err := e.bitmapRegionFor(fake, st, cellID)
			if err != nil {
				continue
			}
			st.bitmapCell = cellID
			st.hasBitmapCell = true
			msg = bm
		case wire.StrategyOptimal:
			msg = e.alarmPushFor(fake)
		default:
			continue // periodic clients re-report next tick anyway
		}
		e.met.AddDownlink(wire.EncodedSize(msg))
		e.pusher(user, []wire.Message{msg})
	}
}

func (e *Engine) safePeriodFor(u wire.PositionUpdate) wire.SafePeriod {
	before := e.reg.IndexAccesses()
	dist := e.reg.NearestRelevantDist(u.Pos, alarm.UserID(u.User))
	e.met.AddSafePeriodComputation(e.reg.IndexAccesses() - before)
	vmax := e.cfg.MaxSpeed
	if f := e.cfg.SafePeriodSpeedFactor; f > 0 {
		vmax *= f
	}
	ticks := saferegion.SafePeriodTicks(dist, vmax, e.cfg.TickSeconds, 1<<30)
	return wire.SafePeriod{Seq: u.Seq, Ticks: uint32(ticks)}
}

func (e *Engine) rectRegionFor(u wire.PositionUpdate, st *clientState) wire.RectRegion {
	user := alarm.UserID(u.User)
	cellRect := e.grid.CellRect(e.grid.Locate(u.Pos))
	before := e.reg.IndexAccesses()
	relevant := e.reg.RelevantIn(cellRect, user, nil)
	e.met.AddSafeRegionIndexWork(e.reg.IndexAccesses() - before)
	rects := make([]geom.Rect, len(relevant))
	for i, a := range relevant {
		rects[i] = a.Region
	}
	model := e.cfg.Model
	heading, ok := st.heading.Observe(u.Pos)
	if !ok {
		model = motion.Uniform() // no sustained motion: no heading info
	}
	res := saferegion.ComputeRect(u.Pos, cellRect, rects, saferegion.RectOptions{
		Model:      model,
		Heading:    heading,
		Exhaustive: e.cfg.ExhaustiveAssembly,
	})
	e.met.AddRectComputation(res.Candidates, res.Corners, res.Clips)
	return wire.RectRegion{Seq: u.Seq, Rect: res.Rect}
}

func (e *Engine) bitmapRegionFor(u wire.PositionUpdate, st *clientState, cellID grid.CellID) (wire.BitmapRegion, error) {
	user := alarm.UserID(u.User)
	cellRect := e.grid.CellRect(cellID)
	params := e.cfg.PyramidParams
	if st.maxHeight > 0 && st.maxHeight < params.Height {
		params.Height = st.maxHeight
	}

	var (
		rects []geom.Rect
		pre   *pyramid.Region
		err   error
	)
	before := e.reg.IndexAccesses()
	defer func() { e.met.AddSafeRegionIndexWork(e.reg.IndexAccesses() - before) }()
	// The shared public bitmap cannot reflect this user's fired public
	// alarms; use it only when the user has none in this cell.
	if e.cfg.PrecomputePublicBitmaps && !e.reg.AnyFiredPublicIn(cellRect, user) {
		pre, err = e.publicBitmapFor(cellID, cellRect)
		if err != nil {
			return wire.BitmapRegion{}, err
		}
		for _, a := range e.reg.RelevantNonPublicIn(cellRect, user, nil) {
			rects = append(rects, a.Region)
		}
	} else {
		for _, a := range e.reg.RelevantIn(cellRect, user, nil) {
			rects = append(rects, a.Region)
		}
	}
	res, err := saferegion.ComputeBitmap(cellRect, params, rects, pre)
	if err != nil {
		return wire.BitmapRegion{}, err
	}
	e.met.AddBitmapComputation(res.IntersectionTests)
	return wire.FromBitmap(u.Seq, res.Bitmap), nil
}

// publicBitmapFor returns (computing and caching on first use) the pyramid
// region of all public alarms in a cell, at the engine's full height so it
// can serve clients of any capability.
func (e *Engine) publicBitmapFor(id grid.CellID, cellRect geom.Rect) (*pyramid.Region, error) {
	if reg, ok := e.publicBitmaps[id]; ok {
		return reg, nil
	}
	publics := e.reg.PublicIn(cellRect, nil)
	// The shared bitmap is computed without a bit budget: it never goes on
	// the wire, and keeping it exact makes the per-user budgeted encode
	// bit-identical to a direct computation.
	params := e.cfg.PyramidParams
	params.MaxBits = 0
	res, err := saferegion.ComputeBitmap(cellRect, params, publics, nil)
	if err != nil {
		return nil, err
	}
	// The precomputation itself is charged once per cell; this is the
	// offline step of §4.2.
	e.met.AddBitmapComputation(res.IntersectionTests)
	reg, err := pyramid.Decode(res.Bitmap)
	if err != nil {
		return nil, err
	}
	e.publicBitmaps[id] = reg
	return reg, nil
}

func (e *Engine) alarmPushFor(u wire.PositionUpdate) wire.AlarmPush {
	user := alarm.UserID(u.User)
	cellRect := e.grid.CellRect(e.grid.Locate(u.Pos))
	before := e.reg.IndexAccesses()
	relevant := e.reg.RelevantIn(cellRect, user, nil)
	e.met.AddSafeRegionIndexWork(e.reg.IndexAccesses() - before)
	push := wire.AlarmPush{Seq: u.Seq, Cell: cellRect, Alarms: make([]wire.AlarmInfo, len(relevant))}
	for i, a := range relevant {
		push.Alarms[i] = wire.AlarmInfo{ID: uint64(a.ID), Region: a.Region}
	}
	return push
}
