package sabre

import (
	"testing"
)

// runUntilFired drives a monitor along a straight path until the service
// fires the expected alarm, returning the tick it fired at (-1 if never).
func runUntilFired(t *testing.T, svc *Service, mon *Monitor, path []Point, want AlarmID) int {
	t.Helper()
	for tick, pos := range path {
		upd := mon.Tick(tick, pos)
		if upd == nil {
			continue
		}
		resp, err := svc.HandleUpdate(*upd)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range resp {
			if err := mon.Handle(tick, m); err != nil {
				t.Fatal(err)
			}
		}
		if len(resp) == 0 {
			mon.Acknowledge()
		}
		for _, id := range mon.Fired() {
			if id == want {
				return tick
			}
		}
	}
	return -1
}

func straightPath(from, to Point, steps int) []Point {
	out := make([]Point, steps)
	for i := range out {
		f := float64(i) / float64(steps-1)
		out[i] = Pt(from.X+(to.X-from.X)*f, from.Y+(to.Y-from.Y)*f)
	}
	return out
}

func newTestService(t *testing.T, mutate func(*ServiceConfig)) *Service {
	t.Helper()
	cfg := ServiceConfig{
		Universe:    Rect{MinX: -100, MinY: -100, MaxX: 10100, MaxY: 10100},
		CellAreaKM2: 2.5,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestQuickstartFlow(t *testing.T) {
	for _, strategy := range []Strategy{
		StrategyPeriodic, StrategySafePeriod, StrategyMWPSR, StrategyPBSR, StrategyOptimal,
	} {
		t.Run(strategy.String(), func(t *testing.T) {
			svc := newTestService(t, nil)
			id, err := svc.InstallAlarm(Alarm{
				Scope:  Private,
				Owner:  1,
				Region: RectAround(Pt(5000, 5000), 300),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := svc.RegisterClient(1, strategy, 0); err != nil {
				t.Fatal(err)
			}
			mon := NewMonitor(1, strategy)
			path := straightPath(Pt(1000, 5000), Pt(9000, 5000), 400)
			tick := runUntilFired(t, svc, mon, path, id)
			if tick < 0 {
				t.Fatal("alarm never fired")
			}
			// The alarm region spans x in [4850, 5150]; entry around step
			// 192 of the 20 m steps.
			pos := path[tick]
			a, _ := svc.Alarm(id)
			if !a.Region.Contains(pos) {
				t.Errorf("fired at %v outside region %v", pos, a.Region)
			}
			if got := svc.Stats().AlarmsTriggered; got != 1 {
				t.Errorf("AlarmsTriggered = %d", got)
			}
		})
	}
}

func TestPrivateAlarmInvisibleToOthers(t *testing.T) {
	svc := newTestService(t, nil)
	id, _ := svc.InstallAlarm(Alarm{Scope: Private, Owner: 1, Region: RectAround(Pt(5000, 5000), 300)})
	svc.RegisterClient(2, StrategyMWPSR, 0)
	mon := NewMonitor(2, StrategyMWPSR)
	if tick := runUntilFired(t, svc, mon, straightPath(Pt(1000, 5000), Pt(9000, 5000), 300), id); tick >= 0 {
		t.Errorf("user 2 fired user 1's private alarm at tick %d", tick)
	}
}

func TestSharedAlarmSubscribers(t *testing.T) {
	svc := newTestService(t, nil)
	id, _ := svc.InstallAlarm(Alarm{
		Scope: Shared, Owner: 1, Subscribers: []UserID{1, 3},
		Region: RectAround(Pt(5000, 5000), 300),
	})
	path := straightPath(Pt(1000, 5000), Pt(9000, 5000), 300)
	svc.RegisterClient(3, StrategyPBSR, 0)
	mon3 := NewMonitor(3, StrategyPBSR)
	if tick := runUntilFired(t, svc, mon3, path, id); tick < 0 {
		t.Error("subscriber 3 never fired the shared alarm")
	}
	svc.RegisterClient(4, StrategyPBSR, 0)
	mon4 := NewMonitor(4, StrategyPBSR)
	if tick := runUntilFired(t, svc, mon4, path, id); tick >= 0 {
		t.Error("non-subscriber fired the shared alarm")
	}
}

func TestPublicAlarmFiresPerUser(t *testing.T) {
	svc := newTestService(t, nil)
	id, _ := svc.InstallAlarm(Alarm{Scope: Public, Owner: 1, Region: RectAround(Pt(5000, 5000), 300)})
	path := straightPath(Pt(1000, 5000), Pt(9000, 5000), 300)
	for user := UserID(10); user < 13; user++ {
		svc.RegisterClient(user, StrategyMWPSR, 0)
		mon := NewMonitor(user, StrategyMWPSR)
		if tick := runUntilFired(t, svc, mon, path, id); tick < 0 {
			t.Errorf("user %d never fired the public alarm", user)
		}
	}
	if got := svc.Stats().AlarmsTriggered; got != 3 {
		t.Errorf("AlarmsTriggered = %d, want one per user", got)
	}
}

func TestMovingTargetAlarm(t *testing.T) {
	svc := newTestService(t, nil)
	id, _ := svc.InstallAlarm(Alarm{
		Scope: Shared, Owner: 1, Subscribers: []UserID{2},
		Region: RectAround(Pt(2000, 2000), 400),
		Target: 1,
	})
	// The target (user 1) moves; the region follows.
	moved := svc.MoveTarget(1, Pt(7000, 7000))
	if len(moved) != 1 || moved[0] != id {
		t.Fatalf("MoveTarget = %v", moved)
	}
	svc.RegisterClient(2, StrategyMWPSR, 0)
	mon := NewMonitor(2, StrategyMWPSR)
	// Walking through the old location does nothing...
	if tick := runUntilFired(t, svc, mon, straightPath(Pt(1000, 2000), Pt(3000, 2000), 150), id); tick >= 0 {
		t.Error("alarm fired at the stale target location")
	}
	// ...but through the new one fires.
	if tick := runUntilFired(t, svc, mon, straightPath(Pt(6000, 7000), Pt(8000, 7000), 150), id); tick < 0 {
		t.Error("alarm did not fire at the moved target location")
	}
}

func TestRemoveAlarm(t *testing.T) {
	svc := newTestService(t, nil)
	id, _ := svc.InstallAlarm(Alarm{Scope: Private, Owner: 1, Region: RectAround(Pt(5000, 5000), 300)})
	if !svc.RemoveAlarm(id) {
		t.Fatal("RemoveAlarm returned false")
	}
	if svc.RemoveAlarm(id) {
		t.Error("double remove returned true")
	}
	svc.RegisterClient(1, StrategyMWPSR, 0)
	mon := NewMonitor(1, StrategyMWPSR)
	if tick := runUntilFired(t, svc, mon, straightPath(Pt(1000, 5000), Pt(9000, 5000), 300), id); tick >= 0 {
		t.Error("removed alarm fired")
	}
}

func TestInstallValidation(t *testing.T) {
	svc := newTestService(t, nil)
	if _, err := svc.InstallAlarm(Alarm{Scope: Private, Owner: 1}); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := svc.InstallAlarm(Alarm{Scope: Shared, Owner: 1, Region: RectAround(Pt(1, 1), 2)}); err == nil {
		t.Error("shared without subscribers accepted")
	}
}

func TestComputeRectRegion(t *testing.T) {
	cell := Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	alarms := []Rect{RectAround(Pt(800, 800), 100)}
	got := ComputeRectRegion(Pt(200, 200), cell, alarms, RectRegionOptions{})
	if !got.Contains(Pt(200, 200)) {
		t.Error("region lost position")
	}
	if got.Overlaps(alarms[0]) {
		t.Error("region overlaps alarm")
	}
	m, err := SteadyMotion(1, 32)
	if err != nil {
		t.Fatal(err)
	}
	weighted := ComputeRectRegion(Pt(200, 200), cell, alarms, RectRegionOptions{Motion: m, Heading: 0})
	if !weighted.Contains(Pt(200, 200)) || weighted.Overlaps(alarms[0]) {
		t.Error("weighted region unsound")
	}
}

func TestComputeBitmapRegion(t *testing.T) {
	cell := Rect{MinX: 0, MinY: 0, MaxX: 900, MaxY: 900}
	alarms := []Rect{RectAround(Pt(450, 450), 100)}
	res, err := ComputeBitmapRegion(cell, 4, alarms)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage <= 0.8 {
		t.Errorf("coverage = %v, want most of the cell safe", res.Coverage)
	}
	if res.SizeBits <= 1 {
		t.Errorf("SizeBits = %d", res.SizeBits)
	}
	if res.Contains(Pt(450, 450)) {
		t.Error("alarm centre inside safe region")
	}
	if !res.Contains(Pt(50, 50)) {
		t.Error("far corner not in safe region")
	}
	if _, err := ComputeBitmapRegion(cell, 99, alarms); err == nil {
		t.Error("invalid height accepted")
	}
}

func TestSteadyMotionValidation(t *testing.T) {
	if _, err := SteadyMotion(4, 4); err == nil {
		t.Error("y/z = 1 accepted")
	}
	if m := UniformMotion(); !m.IsUniform() {
		t.Error("UniformMotion not uniform")
	}
}

func TestMonitorEnergyAccounting(t *testing.T) {
	svc := newTestService(t, nil)
	svc.RegisterClient(1, StrategyMWPSR, 0)
	mon := NewMonitor(1, StrategyMWPSR)
	runUntilFired(t, svc, mon, straightPath(Pt(100, 100), Pt(2000, 2000), 200), 0)
	if mon.EnergyMWh() <= 0 {
		t.Error("no energy recorded")
	}
	if mon.MessagesSent() == 0 {
		t.Error("no messages recorded")
	}
}

func TestTopicScopedPublicAlarms(t *testing.T) {
	svc := newTestService(t, nil)
	id, err := svc.InstallAlarm(Alarm{
		Scope:  Public,
		Owner:  1,
		Topic:  "hazards/flooding",
		Region: RectAround(Pt(5000, 5000), 300),
	})
	if err != nil {
		t.Fatal(err)
	}
	path := straightPath(Pt(1000, 5000), Pt(9000, 5000), 300)

	svc.RegisterClient(2, StrategyMWPSR, 0)
	unsub := NewMonitor(2, StrategyMWPSR)
	if tick := runUntilFired(t, svc, unsub, path, id); tick >= 0 {
		t.Error("unsubscribed user received a topic-scoped alarm")
	}

	svc.SubscribeTopic(3, "hazards/flooding")
	svc.RegisterClient(3, StrategyPBSR, 0)
	sub := NewMonitor(3, StrategyPBSR)
	if tick := runUntilFired(t, svc, sub, path, id); tick < 0 {
		t.Error("subscribed user never received the topic-scoped alarm")
	}
}
