package pyramid

import (
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
)

// FuzzDecode throws arbitrary bit strings at the bitmap decoder: it must
// reject or accept without panicking, and accepted regions must answer
// containment queries within the probe bound.
func FuzzDecode(f *testing.F) {
	cell := geom.Rect{MinX: 0, MinY: 0, MaxX: 900, MaxY: 900}
	alarms := []geom.Rect{{MinX: 100, MinY: 100, MaxX: 300, MaxY: 250}}
	if good, err := Encode(cell, DefaultParams(3), blockedBy(alarms)); err == nil {
		f.Add(uint8(3), uint8(3), uint8(3), good.NBits, good.Data)
	}
	f.Add(uint8(3), uint8(3), uint8(1), 1, []byte{0x80})
	f.Add(uint8(2), uint8(2), uint8(2), 10, []byte{0x00, 0xFF})
	f.Fuzz(func(t *testing.T, u, v, h uint8, nbits int, data []byte) {
		bm := &Bitmap{
			Params: Params{U: int(u), V: int(v), Height: int(h)},
			Cell:   cell,
			Data:   data,
			NBits:  nbits,
		}
		reg, err := Decode(bm)
		if err != nil {
			return
		}
		for _, p := range []geom.Point{{X: 1, Y: 1}, {X: 450, Y: 450}, {X: 899, Y: 899}, {X: -5, Y: 5}} {
			_, probes := reg.ContainsProbes(p)
			if probes > int(h)+1 {
				t.Fatalf("probe bound exceeded: %d > %d", probes, h+1)
			}
		}
		if c := reg.Coverage(); c < 0 || c > 1+1e-9 {
			t.Fatalf("coverage out of range: %v", c)
		}
	})
}
