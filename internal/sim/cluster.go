package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"github.com/sabre-geo/sabre/internal/client"
	"github.com/sabre-geo/sabre/internal/cluster"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/mobility"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/stats"
	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/transport"
	"github.com/sabre-geo/sabre/internal/wire"
)

// ClusterCrashEvent scripts one shard's fail-stop mid-workload. Unlike a
// whole-process crash, client connections survive: only the shard's
// engine and store die, and the router degrades to resend/defer
// behaviour for the clients that shard owns.
type ClusterCrashEvent struct {
	// Tick is when the shard dies (before that tick's reports are served).
	Tick int
	// Shard is which partition's engine is killed.
	Shard int
	// Tear is how the death mangles that shard's WAL tail.
	Tear store.TearMode
	// Down is how many ticks the shard stays dead before recovery.
	Down int
}

// RepartitionEvent scripts one dynamic partition-map transition
// mid-workload: a hot shard splits or a cold sibling pair merges while
// clients keep reporting. With CrashPoint set the transition is
// interrupted at that named point (cluster.CP*) and the WHOLE cluster
// is crashed and reopened from its data dir — the recovery must land in
// a consistent epoch with no firing lost or duplicated.
type RepartitionEvent struct {
	// Tick is when the transition runs (before that tick's reports).
	Tick int
	// Op is "split" or "merge".
	Op string
	// Shard is the shard to split, or the shard merged away (the drain
	// source) for a merge.
	Shard int
	// Into is the absorbing sibling for a merge; ignored for splits.
	Into int
	// CrashPoint, when non-empty, arms cluster.SetCrashPoint with this
	// name before the transition and treats the resulting ErrCrashPoint
	// as a full-process crash: reopen from disk, new router, resume.
	// Requires a durable data dir.
	CrashPoint string
}

// ClusterPlan scripts a deterministic sharded run for RunCluster.
type ClusterPlan struct {
	// Seed drives the tail-mangling choices and the client sessions'
	// backoff jitter.
	Seed int64
	// Shards is the partition count (default 4).
	Shards int
	// Crashes fire in tick order; they require a durable data dir.
	Crashes []ClusterCrashEvent
	// Repartitions fire in tick order, interleaved with crashes. A
	// transition must not target a shard scripted to be down at its tick.
	Repartitions []RepartitionEvent
	// SnapshotEvery is each shard store's checkpoint cadence in WAL
	// appends (0 disables).
	SnapshotEvery int
	// Fsync syncs each shard's WAL per append.
	Fsync bool
	// Session tunes the client session state machines.
	Session client.SessionConfig
	// DrainTicks extends the run past the trace end so sessions collect
	// redelivered firings and drain their report queues.
	DrainTicks int
}

// DefaultClusterPlan runs four shards and kills two of them mid-trace —
// one torn final write, one flipped bit — with a few ticks of downtime.
func DefaultClusterPlan(seed int64, durationTicks int) ClusterPlan {
	return ClusterPlan{
		Seed:   seed,
		Shards: 4,
		Crashes: []ClusterCrashEvent{
			{Tick: durationTicks / 3, Shard: 1, Tear: store.TearTruncate, Down: 3},
			{Tick: durationTicks * 2 / 3, Shard: 2, Tear: store.TearFlipBit, Down: 3},
		},
		SnapshotEvery: 256,
		DrainTicks:    200,
	}
}

// RunCluster executes one strategy over the workload against a
// horizontally sharded cluster: every client's reports flow through a
// cluster.Router to the shard owning its position, sessions hand off
// between shards as vehicles cross partition boundaries, and scripted
// shard crashes recover from per-shard durable stores under dataDir.
// An empty dataDir uses a temporary directory removed before returning.
// Triggers are recorded at client delivery (deduplicated by the router
// across shards and by the session within one), so for the safe-region
// strategies the (User, Alarm) set must equal a single-server Run's —
// which TestClusterDeliveryEquality asserts. Fully deterministic for a
// fixed workload, strategy and plan.
//
// The SP (safe period) baseline is excluded from set equality: its safe
// periods are clamped at partition margins, which changes the reporting
// cadence and therefore which positions the server ever sees.
func RunCluster(w *Workload, sc StrategyConfig, plan ClusterPlan, dataDir string) (*Report, error) {
	if sc.PyramidHeight == 0 {
		sc.PyramidHeight = 5
	}
	if sc.BitmapMaxBits == 0 {
		sc.BitmapMaxBits = 2048
	}
	if sc.CellAreaKM2 == 0 {
		sc.CellAreaKM2 = 2.5
	}
	if plan.Shards <= 0 {
		plan.Shards = 4
	}
	needDurable := len(plan.Crashes) > 0
	for _, ev := range plan.Repartitions {
		if ev.CrashPoint != "" {
			needDurable = true
		}
	}
	if dataDir == "" && needDurable {
		// Crashes need durable shards; keep the scratch space tidy.
		tmp, err := os.MkdirTemp("", "sabre-cluster-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}
	mobCfg := mobility.DefaultConfig(w.Config.Vehicles, w.Config.Seed)
	mob, err := mobility.NewSimulator(w.Net, mobCfg)
	if err != nil {
		return nil, err
	}
	universe := w.Net.Bounds().Expand(50)
	engCfg := server.Config{
		Universe:                universe,
		CellAreaM2:              sc.CellAreaKM2 * 1e6,
		Model:                   sc.Model,
		PyramidParams:           pyramidParams(sc),
		MaxSpeed:                mob.MaxSpeed(),
		TickSeconds:             mobCfg.TickSeconds,
		PrecomputePublicBitmaps: sc.PrecomputePublicBitmaps,
		ExhaustiveAssembly:      sc.ExhaustiveAssembly,
		UseBucketIndex:          sc.BucketIndex,
		SafePeriodSpeedFactor:   sc.SafePeriodSpeedFactor,
		Costs:                   metrics.DefaultCosts(),
	}

	clCfg := cluster.Config{
		Shards:  plan.Shards,
		Engine:  engCfg,
		DataDir: dataDir,
		Store: store.Options{
			Fsync:         plan.Fsync,
			SnapshotEvery: plan.SnapshotEvery,
		},
	}
	cl, err := cluster.New(clCfg)
	if err != nil {
		return nil, err
	}
	defer func() { cl.Close() }() // cl is reassigned by crash-point reopens

	// Install the alarm table on the first boot only; a cluster reopened
	// on an existing dataDir recovers it from the per-shard logs.
	installed := 0
	for s := 0; s < cl.N(); s++ {
		if eng := cl.Engine(s); eng != nil {
			installed += eng.Registry().Len()
		}
	}
	if installed == 0 {
		if _, err := cl.InstallAlarms(w.Alarms); err != nil {
			return nil, err
		}
	}
	rt := cluster.NewRouter(cl)

	n := w.Config.Vehicles
	links := make([]*crashLink, n)
	perClient := make([]metrics.Client, n)
	sessions := make([]*client.Session, n)
	curTick := 0
	var triggers []Trigger

	for i := 0; i < n; i++ {
		i := i
		user := uint64(i + 1)
		c := client.New(user, sc.Strategy, &perClient[i])
		scfg := plan.Session
		scfg.MaxHeight = uint8(sc.PyramidHeight)
		scfg.JitterSeed = plan.Seed ^ int64(user)<<17
		// The router front end is always reachable — shard deaths show up
		// as unanswered reports, not failed dials.
		dial := func() (transport.Conn, error) {
			cEnd, sEnd := transport.Pipe(4096)
			links[i] = &crashLink{user: user, cli: cEnd, srv: transport.Poller(sEnd)}
			return cEnd, nil
		}
		sessions[i] = client.NewSession(c, dial, scfg, &perClient[i])
		sessions[i].OnFired = func(ids []uint64) {
			for _, id := range ids {
				triggers = append(triggers, Trigger{User: user, Alarm: id, Tick: curTick})
			}
		}
	}

	rng := rand.New(rand.NewSource(plan.Seed ^ 0x5ABE))
	crashIdx, repIdx := 0, 0
	downUntil := make(map[int]int) // shard -> recovery tick

	positions := make([]geom.Point, n)
	var serverWall time.Duration
	total := w.Config.DurationTicks + plan.DrainTicks
	for tick := 0; tick < total; tick++ {
		curTick = tick
		if tick < w.Config.DurationTicks {
			mob.Step()
			for i := range positions {
				positions[i] = mob.Position(i)
			}
		}

		// Phase 1: shard lifecycle. A scripted crash kills one shard's
		// store and mangles its WAL tail; the other shards keep serving,
		// and every client link stays up.
		for crashIdx < len(plan.Crashes) && tick >= plan.Crashes[crashIdx].Tick {
			ev := plan.Crashes[crashIdx]
			crashIdx++
			if err := cl.KillShard(ev.Shard, ev.Tear, rng); err != nil {
				return nil, fmt.Errorf("sim: crash %d: %w", crashIdx, err)
			}
			downUntil[ev.Shard] = tick + ev.Down
		}
		for _, s := range sortedKeys(downUntil) {
			if tick >= downUntil[s] {
				if err := cl.RecoverShard(s); err != nil {
					return nil, fmt.Errorf("sim: recover shard %d at tick %d: %w", s, tick, err)
				}
				delete(downUntil, s)
			}
		}

		// Phase 1b: scripted repartitions. A split or merge runs between
		// ticks with clients mid-flight; a CrashPoint event turns into a
		// whole-process crash at the scripted point, after which the
		// cluster reopens from its data dir (resuming any committed drain)
		// and a fresh router rebuilds its routes from traffic.
		for repIdx < len(plan.Repartitions) && tick >= plan.Repartitions[repIdx].Tick {
			ev := plan.Repartitions[repIdx]
			repIdx++
			if ev.CrashPoint != "" {
				cl.SetCrashPoint(ev.CrashPoint)
			}
			var terr error
			switch ev.Op {
			case "split":
				_, terr = cl.SplitShard(ev.Shard)
			case "merge":
				terr = cl.MergeShards(ev.Into, ev.Shard)
			default:
				return nil, fmt.Errorf("sim: repartition %d: unknown op %q", repIdx, ev.Op)
			}
			if terr != nil {
				if ev.CrashPoint == "" || !errors.Is(terr, cluster.ErrCrashPoint) {
					return nil, fmt.Errorf("sim: repartition %d (%s shard %d) at tick %d: %w", repIdx, ev.Op, ev.Shard, tick, terr)
				}
				cl.Crash()
				reopened, err := cluster.New(clCfg)
				if err != nil {
					return nil, fmt.Errorf("sim: reopen after crash point %q: %w", ev.CrashPoint, err)
				}
				cl = reopened
				rt = cluster.NewRouter(cl)
				// The reopen rebooted every shard, including any the crash
				// schedule still had down; their pending recoveries are moot.
				downUntil = make(map[int]int)
			}
		}

		// Phase 2: sessions evaluate, (re)connect and send in index order.
		for i, s := range sessions {
			if tick < w.Config.DurationTicks {
				s.Step(tick, positions[i])
			} else {
				s.Quiesce(tick)
			}
		}

		// Phase 3: the router drains each link in index order.
		for i, ln := range links {
			if ln == nil {
				continue
			}
			if err := serveClusterLink(rt, ln, &serverWall); err != nil {
				if err == transport.ErrClosed {
					links[i] = nil
					continue
				}
				return nil, fmt.Errorf("tick %d user %d: %w", tick, ln.user, err)
			}
		}
	}

	for i, s := range sessions {
		if qs := s.QueueLen(); qs > 0 {
			return nil, fmt.Errorf("sim: user %d still has %d undrained reports after %d drain ticks — extend DrainTicks or crash earlier", i+1, qs, plan.DrainTicks)
		}
	}
	if crashIdx != len(plan.Crashes) {
		return nil, fmt.Errorf("sim: only %d of %d crashes fired — trace too short for the plan", crashIdx, len(plan.Crashes))
	}
	if repIdx != len(plan.Repartitions) {
		return nil, fmt.Errorf("sim: only %d of %d repartitions fired — trace too short for the plan", repIdx, len(plan.Repartitions))
	}
	// Every shard live under the final map must be serving; retired IDs
	// (merged away mid-run) legitimately have no engine.
	for _, s := range cl.PartitionMap().Shards() {
		if !cl.Up(s) {
			return nil, fmt.Errorf("sim: shard %d still down at trace end — its Down outlives the run", s)
		}
	}

	clientMet := &metrics.Client{}
	msgsPerClient := make([]uint64, n)
	for i := range perClient {
		clientMet.Merge(perClient[i])
		msgsPerClient[i] = perClient[i].MessagesSent
	}
	// Sum the per-shard counters. Like RunCrashing, a crashed shard's
	// cumulative counters reset with its recovery — the totals reflect
	// each shard's final incarnation, and a retired shard's final
	// incarnation is gone with its engine.
	var met metrics.Snapshot
	for s := 0; s < cl.N(); s++ {
		if eng := cl.Engine(s); eng != nil {
			addSnapshot(&met, eng.Metrics().Snapshot())
		}
	}
	clusterMet := cl.Metrics().Snapshot()
	traceSeconds := float64(w.Config.DurationTicks) * mobCfg.TickSeconds
	return &Report{
		Strategy:               sc.Strategy.String(),
		Vehicles:               n,
		DurationTicks:          w.Config.DurationTicks,
		UplinkMessages:         met.UplinkMessages,
		UplinkBytes:            met.UplinkBytes,
		DownlinkMessages:       met.DownlinkMessages,
		DownlinkBytes:          met.DownlinkBytes,
		DownlinkMbps:           met.DownlinkMbps(traceSeconds),
		UpdateBatches:          met.UpdateBatches,
		BatchedUpdates:         met.BatchedUpdates,
		ClientChecks:           clientMet.ContainmentChecks,
		ClientProbes:           clientMet.Probes,
		ClientEnergyMWh:        clientMet.Energy(metrics.DefaultEnergy()),
		ClientProbeEnergyMWh:   float64(clientMet.Probes) * metrics.DefaultEnergy().ProbeMilliWattHours,
		PerClientMessages:      stats.SummarizeUints(msgsPerClient),
		AlarmProcessingMinutes: met.AlarmProcessingSeconds() / 60,
		SafeRegionMinutes:      met.SafeRegionSeconds() / 60,
		TotalServerMinutes:     met.TotalSeconds() / 60,
		SafeRegionComputations: met.SafeRegionComputations,
		AlarmEvaluations:       met.AlarmEvaluations,
		RectClips:              met.RectClips,
		MeasuredServerSeconds:  serverWall.Seconds(),
		Triggers:               triggers,
		Cluster:                &clusterMet,
		PartitionEpoch:         cl.Epoch(),
	}, nil
}

// serveClusterLink drains one link's pending uplink messages through the
// router. Unhandled messages (owning shard down, handoff deferred) get no
// response; the session's resend machinery retries them after recovery.
func serveClusterLink(rt *cluster.Router, ln *crashLink, wall *time.Duration) error {
	for {
		m, ok, err := ln.srv.TryRecv()
		if err != nil {
			return transport.ErrClosed
		}
		if !ok {
			return nil
		}
		var responses []wire.Message
		switch v := m.(type) {
		case wire.Register:
			rt.HandleRegister(v)
		case wire.Hello:
			out, err := rt.HandleHello(v)
			if err != nil {
				if _, down := cluster.IsShardDown(err); down {
					continue // session resend machinery retries after recovery
				}
				return err
			}
			responses = out
		case wire.Heartbeat:
			responses = rt.HandleHeartbeat(ln.user, v)
		case wire.FiredAck:
			rt.HandleAck(ln.user, v.Alarms)
		case wire.PositionUpdate:
			start := time.Now()
			out, err := rt.HandleUpdate(v)
			*wall += time.Since(start)
			if err != nil {
				if _, down := cluster.IsShardDown(err); down {
					continue
				}
				return err
			}
			if len(out) == 0 {
				out = []wire.Message{wire.Ack{Seq: v.Seq}}
			}
			responses = out
		case wire.UpdateBatch:
			start := time.Now()
			br, err := rt.HandleUpdateBatch(v)
			*wall += time.Since(start)
			if err != nil {
				if _, down := cluster.IsShardDown(err); down {
					continue
				}
				return err
			}
			responses = []wire.Message{br}
		default:
			return fmt.Errorf("sim: unexpected uplink message %v", m.Kind())
		}
		for _, r := range responses {
			if ln.srv.Send(r) != nil {
				return transport.ErrClosed
			}
		}
	}
}

// sortedKeys returns m's keys ascending, for deterministic iteration.
func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// addSnapshot folds one shard's counters into dst.
func addSnapshot(dst *metrics.Snapshot, sn metrics.Snapshot) {
	dst.Costs = sn.Costs
	dst.UplinkMessages += sn.UplinkMessages
	dst.UplinkBytes += sn.UplinkBytes
	dst.DownlinkMessages += sn.DownlinkMessages
	dst.DownlinkBytes += sn.DownlinkBytes
	dst.UpdateBatches += sn.UpdateBatches
	dst.BatchedUpdates += sn.BatchedUpdates
	dst.AlarmsTriggered += sn.AlarmsTriggered
	dst.NodeAccesses += sn.NodeAccesses
	dst.AlarmChecks += sn.AlarmChecks
	dst.SRCandidates += sn.SRCandidates
	dst.SRCorners += sn.SRCorners
	dst.SRBitmapTests += sn.SRBitmapTests
	dst.SRNodeAccesses += sn.SRNodeAccesses
	dst.SafeRegionComputations += sn.SafeRegionComputations
	dst.RectClips += sn.RectClips
	dst.AlarmEvaluations += sn.AlarmEvaluations
	dst.SessionsOpened += sn.SessionsOpened
	dst.SessionsResumed += sn.SessionsResumed
	dst.Heartbeats += sn.Heartbeats
	dst.RedeliveredUpdates += sn.RedeliveredUpdates
	dst.FiredRedeliveries += sn.FiredRedeliveries
	dst.WALAppends += sn.WALAppends
	dst.WALBytes += sn.WALBytes
	dst.WALFsyncs += sn.WALFsyncs
	dst.Snapshots += sn.Snapshots
	dst.Recoveries += sn.Recoveries
	dst.RecoveredRecords += sn.RecoveredRecords
	dst.WALTruncatedBytes += sn.WALTruncatedBytes
	dst.FiredEvictions += sn.FiredEvictions
	dst.SessionsExpired += sn.SessionsExpired
	dst.SessionsExported += sn.SessionsExported
	dst.SessionsImported += sn.SessionsImported
}
