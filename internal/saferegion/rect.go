// Package saferegion implements the paper's safe region computation
// algorithms — the core contribution of "Distributed Processing of Spatial
// Alarms: A Safe Region-based Approach" (ICDCS 2009):
//
//   - ComputeRect: the Maximum Weighted Perimeter rectangular Safe Region
//     (MWPSR, paper §3), built from per-quadrant candidate and tension
//     points with dominance pruning and a greedy weighted-perimeter
//     assembly. The non-weighted variant is the same computation under the
//     uniform motion model.
//   - ComputeBitmap: the Grid and Pyramid Bitmap Encoded Safe Regions
//     (GBSR/PBSR, paper §4), delegating the pyramid mechanics to
//     internal/pyramid.
//   - SafePeriodTicks: the safe-period baseline (SP, Bamba et al. HiPC'08)
//     the paper compares against.
//
// Soundness contract (paper §2.1): the returned safe region for a client
// not inside any alarm region never overlaps the interior of a relevant
// alarm region and is contained in the client's grid cell; if the client is
// inside one or more alarm regions the safe region is the intersection of
// the containing regions (clipped against the remaining alarms — a strict
// reading of the paper's definition (ii) would let a third alarm overlap
// that intersection, so we clip to keep the zero-trigger guarantee).
package saferegion

import (
	"math"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/motion"
)

// RectOptions configures ComputeRect.
type RectOptions struct {
	// Model is the motion model weighting the perimeter. motion.Uniform()
	// yields the paper's non-weighted variant.
	Model motion.Model
	// Heading is the client's current heading in radians (from two
	// consecutive fixes). Ignored by the uniform model.
	Heading float64
	// Exhaustive enumerates every combination of component rectangles
	// instead of the paper's greedy quadrant heuristic (quartic-time
	// optimal variant, used by the ablation benchmarks). Falls back to
	// greedy when the combination count exceeds a safety cap.
	Exhaustive bool
}

// RectResult is the outcome of a rectangular safe region computation.
type RectResult struct {
	// Rect is the safe region. It always contains the client position and
	// is contained in the grid cell.
	Rect geom.Rect
	// Inside lists indices (into the alarms argument) of alarm regions the
	// client position is currently inside; non-empty means the alarms
	// should trigger and the region is the containment intersection case.
	Inside []int
	// Clips counts soundness clips applied after assembly. The skyline
	// construction is provably sound, so this is 0 unless the inside-alarm
	// intersection case required trimming; the ablation bench reports it.
	Clips int
	// Candidates is the total number of candidate points processed and
	// Corners the number of component-rectangle corners evaluated; both
	// feed the server cost model.
	Candidates int
	Corners    int
}

// RectScratch holds the reusable buffers of a rectangular safe region
// computation. A zero value is ready to use; after a few calls the buffers
// reach steady-state capacity and ComputeRectScratch stops allocating.
// A scratch must not be shared between concurrent calls, and the Inside
// slice of a result computed with a scratch aliases it — it is valid only
// until the next call with the same scratch.
type RectScratch struct {
	quads   [4][]candidate
	corners [4][]candidate
	inside  []int
	scorer  scorer
}

// ComputeRect computes the maximum weighted perimeter rectangular safe
// region for a client at pos inside grid cell, against the given relevant
// alarm regions (paper §3). pos must lie within cell; it is clamped if not.
func ComputeRect(pos geom.Point, cell geom.Rect, alarms []geom.Rect, opts RectOptions) RectResult {
	var s RectScratch
	return ComputeRectScratch(pos, cell, alarms, opts, &s)
}

// ComputeRectScratch is ComputeRect against caller-owned scratch buffers;
// it is allocation-free once the scratch is warm. The hot update path in
// internal/server holds one scratch per handler invocation.
func ComputeRectScratch(pos geom.Point, cell geom.Rect, alarms []geom.Rect, opts RectOptions, s *RectScratch) RectResult {
	pos = cell.ClampPoint(pos)
	res := RectResult{}

	// Paper §2.1 case (ii): position inside one or more alarm regions.
	s.inside = s.inside[:0]
	inter := cell
	for i, a := range alarms {
		if a.Contains(pos) {
			s.inside = append(s.inside, i)
			inter = inter.Intersect(a)
		}
	}
	if len(s.inside) > 0 {
		res.Inside = s.inside
		if !inter.Valid() {
			inter = geom.Rect{MinX: pos.X, MinY: pos.Y, MaxX: pos.X, MaxY: pos.Y}
		}
		res.Rect = clipAgainst(inter, alarms, res.Inside, pos, &res.Clips)
		return res
	}

	// Build per-quadrant candidate constraint points (paper §3 step 1).
	ext := quadExtents(pos, cell)
	for q := 0; q < 4; q++ {
		s.quads[q] = s.quads[q][:0]
	}
	for _, a := range alarms {
		if !a.Intersects(cell) {
			continue
		}
		for q := 0; q < 4; q++ {
			if c, ok := blockingPoint(pos, a, q, ext[q]); ok {
				s.quads[q] = append(s.quads[q], c)
				res.Candidates++
			}
		}
	}

	// Per-quadrant skyline: dominance pruning, sort, tension-point sweep
	// (steps 1–3).
	for q := 0; q < 4; q++ {
		s.corners[q] = componentCornersInto(s.corners[q], pruneDominated(s.quads[q]), ext[q])
		res.Corners += len(s.corners[q])
	}

	weights := sideWeightSet(opts.Model, opts.Heading)
	s.scorer.init(opts.Model, opts.Heading)
	sc := &s.scorer
	var choice [4]candidate
	if opts.Exhaustive && combinationCount(s.corners) <= exhaustiveCap {
		choice = assembleExhaustive(s.corners, ext, sc)
	} else {
		choice = assembleGreedy(s.corners, ext, sc, opts.Model, opts.Heading)
	}

	rect := rectFromChoice(pos, choice)
	rect = clipAgainst(rect, alarms, nil, pos, &res.Clips)
	res.Rect = growSides(rect, cell, alarms, weights)
	return res
}

// growSides expands each side of a sound rectangle to the farthest alarm
// or cell boundary, holding the other sides fixed. The per-quadrant corner
// combination can leave slack (choosing the corner (x, 0) in one quadrant
// caps a whole side at zero even when the binding constraint was already
// satisfied through the x extent), and the weighted perimeter objective
// can even prefer degenerate rectangles; growing restores local
// maximality without ever violating soundness. Sides are grown in
// descending weight order so extra area lands in the travel direction.
// The side cases are written out closure-free so the whole pass stays on
// the stack: the striped-lock hot path in internal/server calls this for
// every MWPSR update.
func growSides(r geom.Rect, cell geom.Rect, alarms []geom.Rect, w sideWeights) geom.Rect {
	weights := [4]float64{w.right, w.left, w.top, w.bottom}
	order := sortIdxDesc(weights)
	for _, s := range order {
		switch s {
		case 0: // right
			limit := cell.MaxX
			for _, a := range alarms {
				if a.MinY < r.MaxY && a.MaxY > r.MinY && a.MaxX > r.MaxX && a.MinX < limit {
					limit = math.Max(a.MinX, r.MaxX)
				}
			}
			r.MaxX = math.Max(r.MaxX, limit)
		case 1: // left
			limit := cell.MinX
			for _, a := range alarms {
				if a.MinY < r.MaxY && a.MaxY > r.MinY && a.MinX < r.MinX && a.MaxX > limit {
					limit = math.Min(a.MaxX, r.MinX)
				}
			}
			r.MinX = math.Min(r.MinX, limit)
		case 2: // top
			limit := cell.MaxY
			for _, a := range alarms {
				if a.MinX < r.MaxX && a.MaxX > r.MinX && a.MaxY > r.MaxY && a.MinY < limit {
					limit = math.Max(a.MinY, r.MaxY)
				}
			}
			r.MaxY = math.Max(r.MaxY, limit)
		case 3: // bottom
			limit := cell.MinY
			for _, a := range alarms {
				if a.MinX < r.MaxX && a.MaxX > r.MinX && a.MinY < r.MinY && a.MaxY > limit {
					limit = math.Min(a.MaxY, r.MinY)
				}
			}
			r.MinY = math.Min(r.MinY, limit)
		}
	}
	return r
}

// sortIdxDesc returns the indices 0..3 stably ordered by descending weight
// (an inlined insertion sort; sort.SliceStable would allocate its closure
// and reflect swapper on every safe-region computation).
func sortIdxDesc(weights [4]float64) [4]int {
	order := [4]int{0, 1, 2, 3}
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && weights[order[j]] > weights[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// exhaustiveCap bounds the combination count the exhaustive (ablation)
// variant will enumerate.
const exhaustiveCap = 1 << 20

// candidate is a per-quadrant constraint or corner point in quadrant-local
// coordinates: x and y are non-negative extents from the client position.
// As a constraint it means "the quadrant portion must satisfy X <= x OR
// Y <= y"; as a corner it is a maximal feasible (X, Y). absX and absY are
// the corresponding absolute coordinates (the alarm or cell boundary that
// produced the extent); carrying them through the computation lets the
// final rectangle snap exactly onto those boundaries instead of
// accumulating mirror-transform rounding error.
type candidate struct{ x, y, absX, absY float64 }

// extent is the maximal quadrant rectangle allowed by the grid cell, with
// the absolute cell-edge coordinates alongside.
type extent struct{ x, y, absX, absY float64 }

// quadExtents returns the cell-bounded extents of the four quadrants
// around pos (I: +x+y, II: −x+y, III: −x−y, IV: +x−y).
func quadExtents(pos geom.Point, cell geom.Rect) [4]extent {
	right := cell.MaxX - pos.X
	left := pos.X - cell.MinX
	top := cell.MaxY - pos.Y
	bottom := pos.Y - cell.MinY
	return [4]extent{
		{x: right, y: top, absX: cell.MaxX, absY: cell.MaxY},
		{x: left, y: top, absX: cell.MinX, absY: cell.MaxY},
		{x: left, y: bottom, absX: cell.MinX, absY: cell.MinY},
		{x: right, y: bottom, absX: cell.MaxX, absY: cell.MinY},
	}
}

// blockingPoint maps alarm rect a into quadrant q around pos and returns
// the constraint point: the corner of a ∩ quadrant nearest the origin.
// ok is false when a does not reach into the (open) quadrant or when the
// constraint is already implied by the cell bounds. Handling regions that
// straddle the axes this way is what lets MWPSR support overlapping and
// axis-crossing alarm regions (paper §6 vs Hu et al.).
func blockingPoint(pos geom.Point, a geom.Rect, q int, ext extent) (candidate, bool) {
	// Transform the alarm into quadrant-local coordinates where the
	// quadrant is (+x, +y).
	var lo, hi geom.Point
	switch q {
	case 0: // +x +y
		lo = geom.Pt(a.MinX-pos.X, a.MinY-pos.Y)
		hi = geom.Pt(a.MaxX-pos.X, a.MaxY-pos.Y)
	case 1: // -x +y (mirror x)
		lo = geom.Pt(pos.X-a.MaxX, a.MinY-pos.Y)
		hi = geom.Pt(pos.X-a.MinX, a.MaxY-pos.Y)
	case 2: // -x -y (mirror both)
		lo = geom.Pt(pos.X-a.MaxX, pos.Y-a.MaxY)
		hi = geom.Pt(pos.X-a.MinX, pos.Y-a.MinY)
	default: // +x -y (mirror y)
		lo = geom.Pt(a.MinX-pos.X, pos.Y-a.MaxY)
		hi = geom.Pt(a.MaxX-pos.X, pos.Y-a.MinY)
	}
	if hi.X <= 0 || hi.Y <= 0 {
		return candidate{}, false // does not reach into the open quadrant
	}
	c := candidate{x: math.Max(lo.X, 0), y: math.Max(lo.Y, 0)}
	// Record the absolute coordinate of each constraint edge so final
	// rectangle edges land exactly on alarm boundaries.
	switch q {
	case 0:
		c.absX, c.absY = a.MinX, a.MinY
	case 1:
		c.absX, c.absY = a.MaxX, a.MinY
	case 2:
		c.absX, c.absY = a.MaxX, a.MaxY
	default:
		c.absX, c.absY = a.MinX, a.MaxY
	}
	if c.x == 0 {
		c.absX = pos.X
	}
	if c.y == 0 {
		c.absY = pos.Y
	}
	if c.x >= ext.x || c.y >= ext.y {
		// The cell bound is at least as strict in one axis, so the OR
		// constraint is always satisfied within the cell.
		return candidate{}, false
	}
	return c, true
}

// pruneDominated removes constraint points implied by others: c1 is
// implied by c2 when c1.x >= c2.x and c1.y >= c2.y (satisfying c2's OR
// constraint always satisfies c1's). This is the paper's "remove points
// which fully dominate any other point", extended to weak dominance so
// duplicates collapse. The survivors form a skyline: sorted by ascending
// x, their y values are strictly descending.
func pruneDominated(cands []candidate) []candidate {
	if len(cands) == 0 {
		return nil
	}
	// Insertion sort by (x, y): candidate sets are small (one point per
	// relevant alarm), and sort.Slice allocates. Candidates with equal
	// (x, y) are fully identical — the extents determine the absolute
	// boundary — so instability cannot change the skyline.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && candLess(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	out := cands[:0]
	minY := math.Inf(1)
	for _, c := range cands {
		if c.y >= minY {
			continue // dominated by an earlier (smaller-x, smaller-y) point
		}
		out = append(out, c)
		minY = c.y
	}
	return out
}

func candLess(a, b candidate) bool {
	if a.x != b.x {
		return a.x < b.x
	}
	return a.y < b.y
}

// componentCorners performs the tension-point sweep (paper §3 steps 2–3):
// given the pruned skyline, it returns the corners of all maximal
// component rectangles in the quadrant, cell-clamped. With k skyline
// points there are k+1 corners.
func componentCorners(skyline []candidate, ext extent) []candidate {
	return componentCornersInto(make([]candidate, 0, len(skyline)+1), skyline, ext)
}

// componentCornersInto is componentCorners appending into dst[:0].
func componentCornersInto(dst []candidate, skyline []candidate, ext extent) []candidate {
	dst = dst[:0]
	if ext.x < 0 {
		ext.x = 0
	}
	if ext.y < 0 {
		ext.y = 0
	}
	if len(skyline) == 0 {
		return append(dst, candidate{x: ext.x, y: ext.y, absX: ext.absX, absY: ext.absY})
	}
	dst = append(dst, candidate{
		x: skyline[0].x, y: ext.y,
		absX: skyline[0].absX, absY: ext.absY,
	})
	for i := 1; i < len(skyline); i++ {
		dst = append(dst, candidate{
			x: skyline[i].x, y: skyline[i-1].y,
			absX: skyline[i].absX, absY: skyline[i-1].absY,
		})
	}
	last := skyline[len(skyline)-1]
	return append(dst, candidate{x: ext.x, y: last.y, absX: ext.absX, absY: last.absY})
}

// sideWeights holds the motion-model probability mass toward each side.
type sideWeights struct{ right, top, left, bottom float64 }

func sideWeightSet(m motion.Model, heading float64) sideWeights {
	r, t, l, b := m.SideWeights(heading)
	return sideWeights{right: r, top: t, left: l, bottom: b}
}

// scoreSamples is the number of direction samples used by the region
// score. 32 keeps scoring cheap while resolving the pdf's angular bands.
const scoreSamples = 32

// scorer evaluates candidate rectangles for the greedy/exhaustive
// assembly. The paper's objective is the "maximum weighted perimeter",
// with the perimeter weighted by the steady-motion pdf; taken literally,
// perimeter maximization degenerates — a full-width, zero-height sliver
// has a huge (weighted) perimeter but the client exits it immediately, the
// opposite of what a safe region is for. We therefore score a candidate by
// what the weighting is a proxy for: the expected exit distance
// ∫ p(φ−heading)·d_exit(φ) dφ, where d_exit is the distance from the
// client to the rectangle boundary along direction φ. The pdf enters
// exactly as in the paper — steadier motion stretches the region along the
// heading — and the uniform model recovers the non-weighted variant. See
// DESIGN.md §5.
type scorer struct {
	// dirWeights[k] is p(φ_k − heading)·Δφ; cosines/sines are the sample
	// directions.
	dirWeights [scoreSamples]float64
	absCos     [scoreSamples]float64
	absSin     [scoreSamples]float64
	signX      [scoreSamples]bool // direction points toward +x
	signY      [scoreSamples]bool // direction points toward +y
}

func newScorer(m motion.Model, heading float64) *scorer {
	sc := &scorer{}
	sc.init(m, heading)
	return sc
}

// init (re)fills the scorer for the given model and heading; it overwrites
// every field, so a scratch-held scorer needs no zeroing between uses.
func (sc *scorer) init(m motion.Model, heading float64) {
	dPhi := 2 * math.Pi / scoreSamples
	for k := 0; k < scoreSamples; k++ {
		phi := -math.Pi + (float64(k)+0.5)*dPhi
		sc.dirWeights[k] = m.PDF(phi-heading) * dPhi
		c, s := math.Cos(phi), math.Sin(phi)
		sc.absCos[k] = math.Abs(c)
		sc.absSin[k] = math.Abs(s)
		sc.signX[k] = c >= 0
		sc.signY[k] = s >= 0
	}
}

// score returns the expected exit distance of the rectangle defined by the
// per-quadrant corner choices, from the client position.
func (sc *scorer) score(c [4]candidate) float64 {
	right := math.Min(c[0].x, c[3].x)
	left := math.Min(c[1].x, c[2].x)
	top := math.Min(c[0].y, c[1].y)
	bottom := math.Min(c[2].y, c[3].y)
	total := 0.0
	for k := 0; k < scoreSamples; k++ {
		ex := left
		if sc.signX[k] {
			ex = right
		}
		ey := bottom
		if sc.signY[k] {
			ey = top
		}
		// Distance to the vertical / horizontal boundary along direction k.
		var d float64
		switch {
		case sc.absCos[k] < 1e-12:
			d = ey / sc.absSin[k]
		case sc.absSin[k] < 1e-12:
			d = ex / sc.absCos[k]
		default:
			d = math.Min(ex/sc.absCos[k], ey/sc.absSin[k])
		}
		total += sc.dirWeights[k] * d
	}
	return total
}

// assembleGreedy implements paper §3 step 4: process quadrants in
// descending motion-probability order; in each, pick the component corner
// maximizing the region score of the rectangle formed with the quadrants
// chosen so far (unprocessed quadrants assumed unconstrained).
func assembleGreedy(corners [4][]candidate, ext [4]extent, sc *scorer, m motion.Model, heading float64) [4]candidate {
	qw := m.QuadrantWeights(heading)
	order := sortIdxDesc(qw)

	var choice [4]candidate
	for q := 0; q < 4; q++ {
		choice[q] = candidate{x: ext[q].x, y: ext[q].y, absX: ext[q].absX, absY: ext[q].absY}
	}
	for _, q := range order {
		best := -math.MaxFloat64
		var bestC candidate
		for _, c := range corners[q] {
			trial := choice
			trial[q] = c
			if v := sc.score(trial); v > best {
				best, bestC = v, c
			}
		}
		choice[q] = bestC
	}
	return choice
}

// assembleExhaustive evaluates every combination of component corners —
// the quartic-time optimal assembly the paper contrasts with the greedy
// heuristic.
func assembleExhaustive(corners [4][]candidate, ext [4]extent, sc *scorer) [4]candidate {
	var best [4]candidate
	bestScore := -math.MaxFloat64
	for q := 0; q < 4; q++ {
		if len(corners[q]) == 0 {
			corners[q] = []candidate{{x: ext[q].x, y: ext[q].y, absX: ext[q].absX, absY: ext[q].absY}}
		}
	}
	for _, c0 := range corners[0] {
		for _, c1 := range corners[1] {
			for _, c2 := range corners[2] {
				for _, c3 := range corners[3] {
					trial := [4]candidate{c0, c1, c2, c3}
					if v := sc.score(trial); v > bestScore {
						bestScore, best = v, trial
					}
				}
			}
		}
	}
	return best
}

func combinationCount(corners [4][]candidate) int {
	total := 1
	for q := 0; q < 4; q++ {
		n := len(corners[q])
		if n == 0 {
			n = 1
		}
		total *= n
		if total > exhaustiveCap {
			return exhaustiveCap + 1
		}
	}
	return total
}

// rectFromChoice converts per-quadrant corner choices back to an absolute
// rectangle around pos, taking the binding (smaller-extent) quadrant's
// exact absolute boundary on each side.
func rectFromChoice(pos geom.Point, c [4]candidate) geom.Rect {
	pick := func(a, b candidate, relA, relB, absA, absB float64) float64 {
		if relA <= relB {
			return absA
		}
		return absB
	}
	r := geom.Rect{
		MinX: pick(c[1], c[2], c[1].x, c[2].x, c[1].absX, c[2].absX),
		MaxX: pick(c[0], c[3], c[0].x, c[3].x, c[0].absX, c[3].absX),
		MinY: pick(c[2], c[3], c[2].y, c[3].y, c[2].absY, c[3].absY),
		MaxY: pick(c[0], c[1], c[0].y, c[1].y, c[0].absY, c[1].absY),
	}
	// Degenerate extents can leave the rectangle not containing pos by a
	// rounding hair; widen to the position itself.
	return r.UnionPoint(pos)
}

// clipAgainst is the defence-in-depth soundness pass: it shrinks rect until
// it overlaps no alarm interior (skipping indices in skip, which are the
// containing alarms of the inside case), keeping pos inside. clips counts
// the cuts applied.
func clipAgainst(rect geom.Rect, alarms []geom.Rect, skip []int, pos geom.Point, clips *int) geom.Rect {
	for i, a := range alarms {
		// skip is the handful of containing alarms of the inside case; a
		// linear scan beats building a set (and allocates nothing).
		if intsContain(skip, i) {
			continue
		}
		if !rect.Overlaps(a) {
			continue
		}
		next, ok := rect.SubtractClip(a, pos)
		if !ok {
			// pos strictly inside a non-skipped alarm: degenerate region.
			return geom.Rect{MinX: pos.X, MinY: pos.Y, MaxX: pos.X, MaxY: pos.Y}
		}
		rect = next
		*clips++
	}
	return rect
}

func intsContain(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
