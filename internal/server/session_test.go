package server

import (
	"testing"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/wire"
)

// hello enrolls user through the reliable session path and returns the
// minted resume token.
func hello(t testing.TB, e *Engine, user uint64, s wire.Strategy, token uint64) (uint64, bool, []wire.Message) {
	t.Helper()
	out, resumed, err := e.HandleHello(wire.Hello{User: user, Token: token, Strategy: s, MaxHeight: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("Hello got no reply")
	}
	r, ok := out[0].(wire.Resume)
	if !ok {
		t.Fatalf("first Hello reply is %v, want Resume", out[0].Kind())
	}
	if r.Resumed != resumed {
		t.Fatalf("Resume.Resumed=%v but HandleHello reported %v", r.Resumed, resumed)
	}
	return r.Token, resumed, out
}

func firedIn(out []wire.Message) []uint64 {
	var ids []uint64
	for _, m := range out {
		if f, ok := m.(wire.AlarmFired); ok {
			ids = append(ids, f.Alarms...)
		}
	}
	return ids
}

func TestHelloFreshThenResume(t *testing.T) {
	e := newEngine(t, nil)
	tok, resumed, _ := hello(t, e, 1, wire.StrategyMWPSR, 0)
	if resumed || tok == 0 {
		t.Fatalf("fresh Hello: token=%d resumed=%v", tok, resumed)
	}
	if e.Metrics().Snapshot().SessionsOpened != 1 {
		t.Errorf("SessionsOpened = %d", e.Metrics().Snapshot().SessionsOpened)
	}
	// Give the server a position so the resume can re-push monitoring state.
	handle(t, e, 1, 1, geom.Pt(300, 300))

	tok2, resumed, out := hello(t, e, 1, wire.StrategyMWPSR, tok)
	if !resumed || tok2 != tok {
		t.Fatalf("resume failed: token=%d resumed=%v", tok2, resumed)
	}
	// The resume reply re-installs the safe region (Seq-0 push).
	var push *wire.RectRegion
	for _, m := range out {
		if rr, ok := m.(wire.RectRegion); ok {
			push = &rr
		}
	}
	if push == nil || push.Seq != 0 {
		t.Fatalf("resume reply lacks a Seq-0 region push: %v", out)
	}
	if !push.Rect.Contains(geom.Pt(300, 300)) {
		t.Errorf("resumed region %v lost the client's last position", push.Rect)
	}
	if e.Metrics().Snapshot().SessionsResumed != 1 {
		t.Errorf("SessionsResumed = %d", e.Metrics().Snapshot().SessionsResumed)
	}
}

func TestHelloRejectsUnknownStrategy(t *testing.T) {
	e := newEngine(t, nil)
	if _, _, err := e.HandleHello(wire.Hello{User: 1, Strategy: 99}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestHelloStrategyChangeFallsBackToFresh: a token resume only holds when
// the client re-declares the same strategy and capability; otherwise the
// retained state is useless and a fresh session starts.
func TestHelloStrategyChangeFallsBackToFresh(t *testing.T) {
	e := newEngine(t, nil)
	tok, _, _ := hello(t, e, 1, wire.StrategyMWPSR, 0)
	tok2, resumed, _ := hello(t, e, 1, wire.StrategyPBSR, tok)
	if resumed {
		t.Error("resumed across a strategy change")
	}
	if tok2 == tok {
		t.Error("fresh fallback reused the old token")
	}
}

// TestHelloForeignTokenIgnored: presenting another user's token must not
// hijack their session.
func TestHelloForeignTokenIgnored(t *testing.T) {
	e := newEngine(t, nil)
	tok, _, _ := hello(t, e, 1, wire.StrategyMWPSR, 0)
	_, resumed, _ := hello(t, e, 2, wire.StrategyMWPSR, tok)
	if resumed {
		t.Error("user 2 resumed user 1's session")
	}
}

// TestPendingFiredRetainedUntilAck: a reliable client's firings are
// redelivered on every response until FiredAck clears them.
func TestPendingFiredRetainedUntilAck(t *testing.T) {
	e := newEngine(t, nil)
	hello(t, e, 1, wire.StrategyMWPSR, 0)
	id := install(t, e, alarm.Alarm{Scope: alarm.Private, Owner: 1, Region: geom.RectAround(geom.Pt(500, 500), 100)})

	out := handle(t, e, 1, 1, geom.Pt(500, 500))
	if got := firedIn(out); len(got) != 1 || got[0] != uint64(id) {
		t.Fatalf("fired = %v, want [%d]", got, id)
	}
	// Unacknowledged: the next response redelivers it.
	out = handle(t, e, 1, 2, geom.Pt(500, 500))
	if got := firedIn(out); len(got) != 1 || got[0] != uint64(id) {
		t.Fatalf("redelivery = %v, want [%d]", got, id)
	}
	if got := e.PendingFired(1); len(got) != 1 {
		t.Fatalf("PendingFired = %v", got)
	}
	e.AckFired(1, []uint64{uint64(id)})
	if got := e.PendingFired(1); got != nil {
		t.Fatalf("PendingFired after ack = %v", got)
	}
	out = handle(t, e, 1, 3, geom.Pt(500, 500))
	if got := firedIn(out); len(got) != 0 {
		t.Errorf("fired redelivered after ack: %v", got)
	}
}

// TestHelloCarriesPendingFiredAcrossFreshEnrollment: when a client lost
// its token (e.g. the Resume frame was dropped) and re-enrolls fresh, the
// unacknowledged firings survive the re-enrollment and ride on the reply.
func TestHelloCarriesPendingFiredAcrossFreshEnrollment(t *testing.T) {
	e := newEngine(t, nil)
	hello(t, e, 1, wire.StrategyMWPSR, 0)
	id := install(t, e, alarm.Alarm{Scope: alarm.Private, Owner: 1, Region: geom.RectAround(geom.Pt(500, 500), 100)})
	handle(t, e, 1, 1, geom.Pt(500, 500)) // fires, unacknowledged

	_, resumed, out := hello(t, e, 1, wire.StrategyMWPSR, 0)
	if resumed {
		t.Fatal("token-0 Hello resumed")
	}
	if got := firedIn(out); len(got) != 1 || got[0] != uint64(id) {
		t.Fatalf("fresh reply carried %v, want [%d]", got, id)
	}
	if got := e.PendingFired(1); len(got) != 1 || got[0] != uint64(id) {
		t.Fatalf("pending set after re-enrollment = %v, want [%d]", got, id)
	}
}

// TestHeartbeatEchoAndRedelivery: a heartbeat is echoed and piggybacks any
// pending firings, so a client whose safe region keeps it silent still
// hears about a lost AlarmFired.
func TestHeartbeatEchoAndRedelivery(t *testing.T) {
	e := newEngine(t, nil)
	hello(t, e, 1, wire.StrategyMWPSR, 0)
	id := install(t, e, alarm.Alarm{Scope: alarm.Private, Owner: 1, Region: geom.RectAround(geom.Pt(500, 500), 100)})
	handle(t, e, 1, 1, geom.Pt(500, 500))

	out := e.HandleHeartbeat(1, wire.Heartbeat{Nonce: 7})
	if hb, ok := out[0].(wire.Heartbeat); !ok || hb.Nonce != 7 {
		t.Fatalf("heartbeat not echoed: %v", out)
	}
	if got := firedIn(out); len(got) != 1 || got[0] != uint64(id) {
		t.Fatalf("heartbeat piggyback = %v, want [%d]", got, id)
	}
	e.AckFired(1, []uint64{uint64(id)})
	out = e.HandleHeartbeat(1, wire.Heartbeat{Nonce: 8})
	if len(out) != 1 {
		t.Errorf("acked heartbeat reply = %v, want bare echo", out)
	}
	if e.Metrics().Snapshot().Heartbeats != 2 {
		t.Errorf("Heartbeats = %d", e.Metrics().Snapshot().Heartbeats)
	}
}

// TestReliableDuplicateUpdateCounted: a redelivered position update (same
// Seq) is tolerated and counted rather than corrupting state.
func TestReliableDuplicateUpdateCounted(t *testing.T) {
	e := newEngine(t, nil)
	hello(t, e, 1, wire.StrategyMWPSR, 0)
	handle(t, e, 1, 5, geom.Pt(300, 300))
	handle(t, e, 1, 5, geom.Pt(300, 300)) // duplicate frame
	if got := e.Metrics().Snapshot().RedeliveredUpdates; got != 1 {
		t.Errorf("RedeliveredUpdates = %d, want 1", got)
	}
}
