package saferegion

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/pyramid"
)

func TestComputeBitmapSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 40; iter++ {
		var alarms []geom.Rect
		for i := 0; i < 1+rng.Intn(8); i++ {
			w, h := rng.Float64()*200+5, rng.Float64()*200+5
			x, y := rng.Float64()*900, rng.Float64()*900
			alarms = append(alarms, geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h})
		}
		res, err := ComputeBitmap(cell, pyramid.DefaultParams(4), alarms, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.IntersectionTests == 0 {
			t.Fatal("no intersection tests recorded")
		}
		reg, err := pyramid.Decode(res.Bitmap)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			inAlarm := false
			for _, a := range alarms {
				if a.Contains(p) {
					inAlarm = true
					break
				}
			}
			if inAlarm && reg.Contains(p) {
				t.Fatalf("iter %d: alarm point %v in bitmap safe region", iter, p)
			}
		}
	}
}

// TestComputeBitmapWithPrecomputed verifies the §4.2 public-alarm
// precomputation: building against (public ∪ private) directly must yield
// the same safe region as building against private with the public bitmap
// precomputed, while touching fewer alarm rectangles.
func TestComputeBitmapWithPrecomputed(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	params := pyramid.DefaultParams(4)
	for iter := 0; iter < 25; iter++ {
		var public, private []geom.Rect
		for i := 0; i < 5+rng.Intn(10); i++ {
			w, h := rng.Float64()*150+5, rng.Float64()*150+5
			x, y := rng.Float64()*900, rng.Float64()*900
			public = append(public, geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h})
		}
		for i := 0; i < rng.Intn(5); i++ {
			w, h := rng.Float64()*150+5, rng.Float64()*150+5
			x, y := rng.Float64()*900, rng.Float64()*900
			private = append(private, geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h})
		}
		all := append(append([]geom.Rect(nil), public...), private...)
		direct, err := ComputeBitmap(cell, params, all, nil)
		if err != nil {
			t.Fatal(err)
		}
		pubRes, err := ComputeBitmap(cell, params, public, nil)
		if err != nil {
			t.Fatal(err)
		}
		pubRegion, err := pyramid.Decode(pubRes.Bitmap)
		if err != nil {
			t.Fatal(err)
		}
		viaPre, err := ComputeBitmap(cell, params, private, pubRegion)
		if err != nil {
			t.Fatal(err)
		}
		if direct.Bitmap.String() != viaPre.Bitmap.String() {
			t.Fatalf("iter %d: precomputed path produced different bitmap\n direct: %s\n via:    %s",
				iter, direct.Bitmap.String(), viaPre.Bitmap.String())
		}
		// The precomputation replaces len(public) rect tests per probe by
		// one pyramid probe, so it must do less work when publics dominate.
		if viaPre.IntersectionTests >= direct.IntersectionTests {
			t.Errorf("iter %d: precomputed tests %d >= direct %d",
				iter, viaPre.IntersectionTests, direct.IntersectionTests)
		}
	}
}

func TestComputeBitmapInvalidParams(t *testing.T) {
	if _, err := ComputeBitmap(cell, pyramid.Params{U: 1, V: 3, Height: 2}, nil, nil); err == nil {
		t.Error("expected error for invalid params")
	}
}

func TestSafePeriodTicks(t *testing.T) {
	tests := []struct {
		name     string
		dist     float64
		vmax     float64
		tick     float64
		maxTicks int
		want     int
	}{
		{"no alarms", math.Inf(1), 30, 1, 600, 600},
		{"zero distance", 0, 30, 1, 600, 0},
		{"negative distance", -5, 30, 1, 600, 0},
		{"sub tick", 20, 30, 1, 600, 0},
		{"exact ticks", 90, 30, 1, 600, 3},
		{"floors", 99, 30, 1, 600, 3},
		{"capped", 1e9, 30, 1, 600, 600},
		{"coarser tick", 90, 30, 3, 600, 1},
		{"bad vmax", 100, 0, 1, 600, 0},
		{"bad tick", 100, 30, 0, 600, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SafePeriodTicks(tt.dist, tt.vmax, tt.tick, tt.maxTicks); got != tt.want {
				t.Errorf("SafePeriodTicks = %d, want %d", got, tt.want)
			}
		})
	}
}

// Property: during a safe period the client provably cannot reach the
// nearest alarm: ticks * vmax * tickSeconds <= dist.
func TestSafePeriodPessimistic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		dist := rng.Float64() * 10000
		vmax := rng.Float64()*40 + 1
		tick := rng.Float64()*4 + 0.1
		ticks := SafePeriodTicks(dist, vmax, tick, 1<<30)
		if float64(ticks)*vmax*tick > dist+1e-9 {
			t.Fatalf("safe period overshoots: %d ticks × %v m/s × %v s > %v m", ticks, vmax, tick, dist)
		}
	}
}
