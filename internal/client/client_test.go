package client

import (
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/pyramid"
	"github.com/sabre-geo/sabre/internal/wire"
)

func bitmapFor(t *testing.T, cell geom.Rect, alarms ...geom.Rect) wire.BitmapRegion {
	t.Helper()
	bm, err := pyramid.Encode(cell, pyramid.DefaultParams(3), func(r geom.Rect) pyramid.Coverage {
		return pyramid.CoverageOf(r, alarms)
	})
	if err != nil {
		t.Fatal(err)
	}
	return wire.FromBitmap(0, bm) // caller fixes Seq
}

func TestPeriodicReportsEveryTick(t *testing.T) {
	met := &metrics.Client{}
	c := New(1, wire.StrategyPeriodic, met)
	for tick := 0; tick < 10; tick++ {
		if upd := c.Tick(tick, geom.Pt(float64(tick), 0)); upd == nil {
			t.Fatalf("tick %d: periodic client stayed silent", tick)
		}
	}
	if met.MessagesSent != 10 {
		t.Errorf("MessagesSent = %d", met.MessagesSent)
	}
	if met.ContainmentChecks != 0 {
		t.Errorf("periodic client performed %d checks", met.ContainmentChecks)
	}
}

func TestFirstTickAlwaysReports(t *testing.T) {
	for _, s := range []wire.Strategy{wire.StrategySafePeriod, wire.StrategyMWPSR, wire.StrategyPBSR, wire.StrategyOptimal} {
		c := New(1, s, &metrics.Client{})
		if upd := c.Tick(0, geom.Pt(5, 5)); upd == nil {
			t.Errorf("%v: no initial report", s)
		} else if upd.Seq != 1 || upd.User != 1 {
			t.Errorf("%v: bad first update %+v", s, upd)
		}
	}
}

func TestMWPSRMonitoring(t *testing.T) {
	met := &metrics.Client{}
	c := New(1, wire.StrategyMWPSR, met)
	upd := c.Tick(0, geom.Pt(50, 50))
	if err := c.Handle(0, wire.RectRegion{Seq: upd.Seq, Rect: geom.R(0, 0, 100, 100)}); err != nil {
		t.Fatal(err)
	}
	// Strictly inside: silent.
	if c.Tick(1, geom.Pt(60, 60)) != nil {
		t.Error("reported while strictly inside region")
	}
	// On the boundary: strict containment fails, report.
	if c.Tick(2, geom.Pt(100, 60)) == nil {
		t.Error("silent on region boundary")
	}
	if met.ContainmentChecks != 2 {
		t.Errorf("checks = %d, want 2", met.ContainmentChecks)
	}
}

func TestPBSRMonitoring(t *testing.T) {
	met := &metrics.Client{}
	c := New(1, wire.StrategyPBSR, met)
	cell := geom.R(0, 0, 900, 900)
	alarmRect := geom.R(500, 500, 700, 700)
	upd := c.Tick(0, geom.Pt(100, 100))
	bm := bitmapFor(t, cell, alarmRect)
	bm.Seq = upd.Seq
	if err := c.Handle(0, bm); err != nil {
		t.Fatal(err)
	}
	if c.Tick(1, geom.Pt(110, 110)) != nil {
		t.Error("reported from safe area")
	}
	if c.Tick(2, geom.Pt(600, 600)) == nil {
		t.Error("silent inside blocked area")
	}
	if met.Probes <= met.ContainmentChecks-1 {
		t.Errorf("pyramid probes %d should exceed checks %d", met.Probes, met.ContainmentChecks)
	}
	// Outside the cell: always report.
	c.awaiting = false
	if c.Tick(3, geom.Pt(2000, 2000)) == nil {
		t.Error("silent outside base cell")
	}
}

func TestPBSRBadBitmapError(t *testing.T) {
	c := New(1, wire.StrategyPBSR, &metrics.Client{})
	upd := c.Tick(0, geom.Pt(1, 1))
	bad := wire.BitmapRegion{Seq: upd.Seq, Cell: geom.R(0, 0, 10, 10), U: 3, V: 3, Height: 2, NBits: 3, Data: []byte{0x00}}
	if err := c.Handle(0, bad); err == nil {
		t.Error("corrupt bitmap accepted")
	}
}

func TestSafePeriodTiming(t *testing.T) {
	c := New(1, wire.StrategySafePeriod, &metrics.Client{})
	upd := c.Tick(0, geom.Pt(0, 0))
	if err := c.Handle(0, wire.SafePeriod{Seq: upd.Seq, Ticks: 3}); err != nil {
		t.Fatal(err)
	}
	for tick := 1; tick < 3; tick++ {
		if c.Tick(tick, geom.Pt(float64(tick), 0)) != nil {
			t.Errorf("tick %d: reported during safe period", tick)
		}
	}
	// At tick 3 (= 0 + Ticks) the client must report: with an exact
	// distance multiple it can touch the alarm boundary this tick.
	if c.Tick(3, geom.Pt(3, 0)) == nil {
		t.Error("tick 3: silent at safe period expiry")
	}
}

func TestSafePeriodZeroMeansEveryTick(t *testing.T) {
	c := New(1, wire.StrategySafePeriod, &metrics.Client{})
	upd := c.Tick(0, geom.Pt(0, 0))
	c.Handle(0, wire.SafePeriod{Seq: upd.Seq, Ticks: 0})
	for tick := 1; tick <= 3; tick++ {
		upd = c.Tick(tick, geom.Pt(0, 0))
		if upd == nil {
			t.Fatalf("tick %d: silent with zero safe period", tick)
		}
		c.Handle(tick, wire.SafePeriod{Seq: upd.Seq, Ticks: 0})
	}
}

func TestOptimalLocalEvaluation(t *testing.T) {
	met := &metrics.Client{}
	c := New(1, wire.StrategyOptimal, met)
	cell := geom.R(0, 0, 1000, 1000)
	upd := c.Tick(0, geom.Pt(100, 100))
	push := wire.AlarmPush{Seq: upd.Seq, Cell: cell, Alarms: []wire.AlarmInfo{
		{ID: 7, Region: geom.R(400, 400, 500, 500)},
		{ID: 8, Region: geom.R(700, 700, 800, 800)},
	}}
	if err := c.Handle(0, push); err != nil {
		t.Fatal(err)
	}
	// Outside all alarms, inside cell: silent.
	if c.Tick(1, geom.Pt(200, 200)) != nil {
		t.Error("reported while safe")
	}
	// Entering alarm 7: report.
	upd = c.Tick(2, geom.Pt(450, 450))
	if upd == nil {
		t.Fatal("silent inside alarm region")
	}
	// Server fires it; client must drop it locally and go quiet again.
	c.Handle(2, wire.AlarmFired{Seq: upd.Seq, Alarms: []uint64{7}})
	c.Handle(2, wire.AlarmPush{Seq: upd.Seq, Cell: cell, Alarms: []wire.AlarmInfo{
		{ID: 8, Region: geom.R(700, 700, 800, 800)},
	}})
	if got := c.Fired(); len(got) != 1 || got[0] != 7 {
		t.Errorf("Fired = %v", got)
	}
	if c.Tick(3, geom.Pt(450, 450)) != nil {
		t.Error("re-reported a fired alarm")
	}
	// Leaving the cell: report.
	if c.Tick(4, geom.Pt(1500, 500)) == nil {
		t.Error("silent outside cell")
	}
}

func TestStaleResponsesIgnored(t *testing.T) {
	c := New(1, wire.StrategyMWPSR, &metrics.Client{})
	c.Tick(0, geom.Pt(10, 10))
	// The first response is lost; the client re-reports after the timeout
	// with a new sequence number.
	upd := c.Tick(resendAfterTicks, geom.Pt(10, 10))
	// A response to the superseded report (old Seq) must not clear the
	// awaiting state or install a region.
	if err := c.Handle(resendAfterTicks, wire.RectRegion{Seq: upd.Seq - 1, Rect: geom.R(0, 0, 5, 5)}); err != nil {
		t.Fatal(err)
	}
	if c.hasRect {
		t.Error("stale region installed")
	}
	if !c.awaiting {
		t.Error("stale response cleared awaiting")
	}
	// The matching response works.
	c.Handle(resendAfterTicks, wire.RectRegion{Seq: upd.Seq, Rect: geom.R(0, 0, 100, 100)})
	if !c.hasRect || c.awaiting {
		t.Error("fresh response not applied")
	}
}

// TestServerPushAccepted: Seq-0 messages (moving-target invalidations)
// apply without being treated as a reply.
func TestServerPushAccepted(t *testing.T) {
	c := New(1, wire.StrategyMWPSR, &metrics.Client{})
	upd := c.Tick(0, geom.Pt(10, 10))
	c.Handle(0, wire.RectRegion{Seq: upd.Seq, Rect: geom.R(0, 0, 100, 100)})
	// Silent while safe.
	if c.Tick(1, geom.Pt(50, 50)) != nil {
		t.Fatal("reported while safe")
	}
	// A moving target shrank the region: the server pushes a new one.
	if err := c.Handle(1, wire.RectRegion{Seq: 0, Rect: geom.R(0, 0, 40, 40)}); err != nil {
		t.Fatal(err)
	}
	if c.awaiting {
		t.Error("push flipped awaiting state")
	}
	// The client is now outside the pushed region and must report.
	if c.Tick(2, geom.Pt(50, 50)) == nil {
		t.Error("client missed the pushed invalidation")
	}
}

func TestResendAfterTimeout(t *testing.T) {
	met := &metrics.Client{}
	c := New(1, wire.StrategyMWPSR, met)
	c.Tick(0, geom.Pt(10, 10)) // report, response lost
	silent := 0
	for tick := 1; tick < resendAfterTicks; tick++ {
		if c.Tick(tick, geom.Pt(10, 10)) == nil {
			silent++
		}
	}
	if silent != resendAfterTicks-1 {
		t.Errorf("client re-reported before timeout (%d silent ticks)", silent)
	}
	if c.Tick(resendAfterTicks, geom.Pt(10, 10)) == nil {
		t.Error("client never re-sent after losing the response")
	}
	if met.MessagesSent != 2 {
		t.Errorf("MessagesSent = %d, want 2", met.MessagesSent)
	}
}

// TestResponseOneTickLate: the original response arrives one tick after
// the resend boundary — by then a new report (new Seq) is outstanding, so
// the late response must be dropped and the fresh one honoured.
func TestResponseOneTickLate(t *testing.T) {
	met := &metrics.Client{}
	c := New(1, wire.StrategyMWPSR, met)
	first := c.Tick(0, geom.Pt(10, 10))
	second := c.Tick(resendAfterTicks, geom.Pt(10, 10))
	if second == nil || second.Seq != first.Seq+1 {
		t.Fatalf("no resend at the timeout boundary: %+v", second)
	}
	// The first response limps in one tick late.
	if err := c.Handle(resendAfterTicks+1, wire.RectRegion{Seq: first.Seq, Rect: geom.R(0, 0, 5, 5)}); err != nil {
		t.Fatal(err)
	}
	if c.hasRect || !c.awaiting {
		t.Error("late response to a superseded report was applied")
	}
	// The response to the resend applies normally.
	c.Handle(resendAfterTicks+1, wire.RectRegion{Seq: second.Seq, Rect: geom.R(0, 0, 100, 100)})
	if !c.hasRect || c.awaiting {
		t.Error("response to the resend not applied")
	}
	if met.MessagesSent != 2 {
		t.Errorf("MessagesSent = %d, want 2", met.MessagesSent)
	}
}

// TestResponseJustInTime: a response landing on the last tick before the
// resend boundary suppresses the resend entirely.
func TestResponseJustInTime(t *testing.T) {
	met := &metrics.Client{}
	c := New(1, wire.StrategyMWPSR, met)
	upd := c.Tick(0, geom.Pt(10, 10))
	c.Handle(resendAfterTicks-1, wire.RectRegion{Seq: upd.Seq, Rect: geom.R(0, 0, 100, 100)})
	if c.Tick(resendAfterTicks, geom.Pt(10, 10)) != nil {
		t.Error("resent after the response already arrived")
	}
	if met.MessagesSent != 1 {
		t.Errorf("MessagesSent = %d, want 1", met.MessagesSent)
	}
}

// TestDuplicateResponseSuppression: a duplicated network frame delivers
// the same response twice; the second copy must be harmless, and a
// duplicated AlarmFired must not double-record the firing.
func TestDuplicateResponseSuppression(t *testing.T) {
	c := New(1, wire.StrategyMWPSR, &metrics.Client{})
	upd := c.Tick(0, geom.Pt(10, 10))
	region := wire.RectRegion{Seq: upd.Seq, Rect: geom.R(0, 0, 100, 100)}
	if err := c.Handle(0, region); err != nil {
		t.Fatal(err)
	}
	if err := c.Handle(0, region); err != nil {
		t.Fatalf("duplicate response rejected: %v", err)
	}
	if !c.hasRect || c.awaiting {
		t.Error("duplicate response corrupted monitoring state")
	}
	fired := wire.AlarmFired{Seq: 0, Alarms: []uint64{7, 9}}
	c.Handle(1, fired)
	c.Handle(1, fired) // redelivered frame
	if got := c.Fired(); len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Errorf("Fired = %v, want [7 9] exactly once each", got)
	}
}

func TestUnexpectedMessageError(t *testing.T) {
	c := New(1, wire.StrategyMWPSR, &metrics.Client{})
	if err := c.Handle(0, wire.PositionUpdate{}); err == nil {
		t.Error("client accepted a client->server message")
	}
}

func TestAckClearsAwaiting(t *testing.T) {
	c := New(1, wire.StrategyPBSR, &metrics.Client{})
	cell := geom.R(0, 0, 900, 900)
	upd := c.Tick(0, geom.Pt(100, 100))
	bm := bitmapFor(t, cell, geom.R(500, 500, 600, 600))
	bm.Seq = upd.Seq
	c.Handle(0, bm)
	// Walk into the blocked area; report; server acks without a new bitmap.
	upd = c.Tick(1, geom.Pt(550, 550))
	if upd == nil {
		t.Fatal("no report from blocked area")
	}
	if err := c.Handle(1, wire.Ack{Seq: upd.Seq}); err != nil {
		t.Fatal(err)
	}
	// Still in the blocked area next tick: reports again immediately (the
	// Ack resumed monitoring with the old bitmap).
	if c.Tick(2, geom.Pt(555, 555)) == nil {
		t.Error("client stuck after Ack")
	}
	// Back in safe area: silent.
	c.Handle(2, wire.Ack{Seq: c.seq})
	if c.Tick(3, geom.Pt(100, 100)) != nil {
		t.Error("reported from safe area after Ack")
	}
}
