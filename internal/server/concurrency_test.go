package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/wire"
)

// stressStrategies cycles every strategy through the concurrent fleet so
// the shared paths (public bitmap cache, registry reads, metric counters)
// see mixed traffic.
var stressStrategies = []wire.Strategy{
	wire.StrategyPeriodic,
	wire.StrategySafePeriod,
	wire.StrategyMWPSR,
	wire.StrategyPBSR,
	wire.StrategyOptimal,
}

// checkResponseShape asserts a response list is well-formed for the
// strategy that produced it: optional AlarmFired messages first, then at
// most one strategy-specific payload.
func checkResponseShape(s wire.Strategy, msgs []wire.Message) error {
	payloads := 0
	for _, m := range msgs {
		switch m.(type) {
		case wire.AlarmFired:
			continue
		case wire.SafePeriod:
			if s != wire.StrategySafePeriod {
				return fmt.Errorf("strategy %v got SafePeriod", s)
			}
		case wire.RectRegion:
			if s != wire.StrategyMWPSR && s != wire.StrategyPBSR {
				return fmt.Errorf("strategy %v got RectRegion", s)
			}
		case wire.BitmapRegion, wire.Ack:
			if s != wire.StrategyPBSR {
				return fmt.Errorf("strategy %v got %T", s, m)
			}
		case wire.AlarmPush:
			if s != wire.StrategyOptimal {
				return fmt.Errorf("strategy %v got AlarmPush", s)
			}
		default:
			return fmt.Errorf("unexpected message %T", m)
		}
		payloads++
	}
	if payloads > 1 {
		return fmt.Errorf("strategy %v got %d payloads", s, payloads)
	}
	if s == wire.StrategyPeriodic && payloads != 0 {
		return fmt.Errorf("periodic got a payload")
	}
	return nil
}

// TestConcurrentStress hammers one engine from many goroutines with mixed
// strategies while a moving-target user continuously drives the push
// (invalidation) path. Run with -race. Invariants checked afterwards:
// exact uplink accounting, exact downlink accounting (every response and
// every push charged exactly once), Seq-0 pushes only, and per-strategy
// response shapes throughout.
func TestConcurrentStress(t *testing.T) {
	const (
		users      = 24
		perUser    = 150
		targetUser = 1
	)
	e := newEngine(t, func(c *Config) { c.PrecomputePublicBitmaps = true })

	// A spread of public alarms (shared bitmap cache traffic) plus one
	// private alarm per user along its path (trigger traffic).
	for i := 0; i < 12; i++ {
		install(t, e, alarm.Alarm{
			Scope:  alarm.Public,
			Owner:  1,
			Region: geom.RectAround(geom.Pt(float64(800+i*700), float64(900+i*650)), 180),
		})
	}
	for u := 1; u <= users; u++ {
		install(t, e, alarm.Alarm{
			Scope:  alarm.Private,
			Owner:  alarm.UserID(u),
			Region: geom.RectAround(geom.Pt(float64(500+u*350), 5000), 150),
		})
	}
	// The moving-target alarm every other user subscribes to: each report
	// from targetUser re-anchors it and pushes invalidations.
	subs := make([]alarm.UserID, 0, users)
	for u := 2; u <= users; u++ {
		subs = append(subs, alarm.UserID(u))
	}
	install(t, e, alarm.Alarm{
		Scope:       alarm.Shared,
		Owner:       2,
		Subscribers: subs,
		Region:      geom.RectAround(geom.Pt(2000, 2000), 200),
		Target:      targetUser,
	})

	strategyOf := make(map[uint64]wire.Strategy, users)
	for u := 1; u <= users; u++ {
		s := stressStrategies[(u-1)%len(stressStrategies)]
		if uint64(u) == targetUser {
			s = wire.StrategyPeriodic // the mover itself stays silent
		}
		strategyOf[uint64(u)] = s
		register(t, e, uint64(u), s)
	}

	var pushMu sync.Mutex
	var pushMsgs uint64
	e.SetPusher(func(user alarm.UserID, msgs []wire.Message) {
		pushMu.Lock()
		defer pushMu.Unlock()
		for _, m := range msgs {
			if seq := seqOf(m); seq != 0 {
				t.Errorf("push for user %d has Seq %d, want 0", user, seq)
			}
			pushMsgs++
		}
	})

	var wg sync.WaitGroup
	var respMsgs, updates atomic64
	errs := make(chan error, users)
	// Invalidations only reach subscribers that hold a position, so the
	// mover gates on every subscriber's first report; otherwise a lucky
	// schedule lets it finish before anyone is pushable and the pushMsgs
	// assertion below flakes.
	var primed sync.WaitGroup
	primed.Add(users - 1)
	for u := 1; u <= users; u++ {
		wg.Add(1)
		go func(user uint64) {
			defer wg.Done()
			s := strategyOf[user]
			signalPrimed := func() {}
			if user == targetUser {
				primed.Wait()
			} else {
				var once sync.Once
				signalPrimed = func() { once.Do(primed.Done) }
				defer signalPrimed() // error exits must not strand the mover
			}
			for i := 0; i < perUser; i++ {
				// Deterministic per-user walk that crosses its private
				// alarm and several grid cells.
				x := 500 + float64(user)*350 + float64(i%40)*9
				y := 4000 + float64((int(user)*37+i*53)%2000)
				out, err := e.HandleUpdate(wire.PositionUpdate{
					User: user, Seq: uint32(i + 1), Pos: geom.Pt(x, y),
				})
				if err != nil {
					errs <- err
					return
				}
				if err := checkResponseShape(s, out); err != nil {
					errs <- err
					return
				}
				respMsgs.add(uint64(len(out)))
				updates.add(1)
				signalPrimed()
			}
		}(uint64(u))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snap := e.Metrics().Snapshot()
	if snap.UplinkMessages != updates.load() {
		t.Errorf("uplink = %d, want %d", snap.UplinkMessages, updates.load())
	}
	pushMu.Lock()
	wantDown := respMsgs.load() + pushMsgs
	pushMu.Unlock()
	if snap.DownlinkMessages != wantDown {
		t.Errorf("downlink = %d, want %d (responses %d + pushes %d)",
			snap.DownlinkMessages, wantDown, respMsgs.load(), pushMsgs)
	}
	if snap.AlarmsTriggered == 0 {
		t.Error("stress run fired no alarms; workload too timid to mean anything")
	}
	if pushMsgs == 0 {
		t.Error("moving target drove no pushes; invalidation path not exercised")
	}
}

// seqOf extracts the sequence number of any server→client message.
func seqOf(m wire.Message) uint32 {
	switch v := m.(type) {
	case wire.AlarmFired:
		return v.Seq
	case wire.SafePeriod:
		return v.Seq
	case wire.RectRegion:
		return v.Seq
	case wire.BitmapRegion:
		return v.Seq
	case wire.AlarmPush:
		return v.Seq
	case wire.Ack:
		return v.Seq
	default:
		return 0
	}
}

// atomic64 is a tiny counter wrapper keeping the stress test readable.
type atomic64 struct {
	mu sync.Mutex
	v  uint64
}

func (a *atomic64) add(n uint64) { a.mu.Lock(); a.v += n; a.mu.Unlock() }
func (a *atomic64) load() uint64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

// TestPusherReentrancy is the regression test for the push contract: the
// engine must invoke the Pusher outside every internal lock, so a Pusher
// that synchronously calls back into HandleUpdate (as a store-and-forward
// transport might, to refresh another session) must complete rather than
// deadlock.
func TestPusherReentrancy(t *testing.T) {
	e := newEngine(t, nil)
	install(t, e, alarm.Alarm{
		Scope:       alarm.Shared,
		Owner:       2,
		Subscribers: []alarm.UserID{2},
		Region:      geom.RectAround(geom.Pt(1000, 1000), 200),
		Target:      1,
	})
	register(t, e, 1, wire.StrategyPeriodic)
	register(t, e, 2, wire.StrategyMWPSR)

	reentered := false
	e.SetPusher(func(user alarm.UserID, msgs []wire.Message) {
		// Re-enter the engine from inside the push callback — for the
		// pushed user itself, the hardest case (its state was just
		// recomputed).
		if _, err := e.HandleUpdate(wire.PositionUpdate{User: uint64(user), Seq: 9, Pos: geom.Pt(5100, 5100)}); err != nil {
			t.Errorf("reentrant HandleUpdate: %v", err)
		}
		reentered = true
	})

	handle(t, e, 2, 1, geom.Pt(5000, 5000)) // subscriber position known
	done := make(chan struct{})
	go func() {
		handle(t, e, 1, 1, geom.Pt(4000, 4000)) // target moves → push → reentry
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("HandleUpdate deadlocked while pushing (pusher re-entered the engine)")
	}
	if !reentered {
		t.Fatal("pusher never invoked; moving-target push path broken")
	}
}
