package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/store"
)

// benchWALAppends is how many records one sweep point lands, by scale.
// The per-record baseline at fsync ≈ 0.1–1 ms per append dominates the
// wall clock, so the counts are sized to keep the whole sweep under a
// minute at small scale on ordinary hardware.
func benchWALAppends(opts options) int {
	if opts.walAppends > 0 {
		return opts.walAppends
	}
	switch opts.scale {
	case "medium":
		return 25600
	case "full":
		return 102400
	default:
		return 6400
	}
}

// benchWALPoint is one measured (appenders, group_max, group_wait) cell
// of the fsync-on append throughput sweep.
type benchWALPoint struct {
	Appenders int `json:"appenders"`
	GroupMax  int `json:"group_max"`
	// GroupWaitUS is the leader's queue-hold window in microseconds.
	// 0 groups opportunistically (only callers already queued behind an
	// in-flight flush coalesce — scheduler-dependent, especially on one
	// core); a wait of one or two fsync times makes grouping
	// deterministic at the cost of that much commit latency.
	GroupWaitUS int     `json:"group_wait_us"`
	Appends     uint64  `json:"appends"`
	Seconds     float64 `json:"seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	NsPerAppend float64 `json:"ns_per_append"`
	// GroupCommits and Fsyncs are the store's own counters for the run:
	// group commits (each one write(2) + one fsync) and fsyncs issued.
	GroupCommits uint64 `json:"group_commits"`
	Fsyncs       uint64 `json:"fsyncs"`
	// AvgGroupSize is records per group commit — the syscall
	// amortization factor the group actually achieved.
	AvgGroupSize float64 `json:"avg_group_size"`
	// SyncSeconds is the cumulative wall time spent inside fsync.
	SyncSeconds float64 `json:"sync_seconds"`
	// SpeedupVsPerRecord is OpsPerSec over the group_max=1 point of the
	// same appender count (1.0 for the baseline itself).
	SpeedupVsPerRecord float64 `json:"speedup_vs_per_record"`
}

type benchWALReport struct {
	Scale      string `json:"scale"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Fsync records the durability regime measured: true means every
	// group commit fsyncs before any of its appenders is acknowledged.
	Fsync           bool            `json:"fsync"`
	AppendsPerPoint int             `json:"appends_per_point"`
	Series          []benchWALPoint `json:"series"`
}

// runBenchWAL measures durable append throughput in the fsync-on regime,
// sweeping concurrent appenders × group-commit configuration, and writes
// BENCH_wal.json. group_max=1 is the per-record commit baseline (one
// write + one fsync per record, the pre-group-commit behaviour); the two
// grouped configurations are opportunistic (wait 0) and held-open
// (wait 200µs, roughly one fsync time). The acceptance bar is group
// commit coming out ≥5× faster at 64 appenders.
func runBenchWAL(opts options) error {
	total := benchWALAppends(opts)
	report := benchWALReport{
		Scale:           opts.scale,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Fsync:           true,
		AppendsPerPoint: total,
	}
	configs := []struct {
		groupMax  int
		groupWait time.Duration
	}{
		{1, 0}, // per-record baseline
		{store.DefaultGroupMax, 0},
		{store.DefaultGroupMax, 200 * time.Microsecond},
	}
	header := []string{"appenders", "group_max", "wait_us", "ops/sec", "ns/append", "groups", "avg group", "fsyncs", "speedup vs per-record"}
	var rows [][]string
	for _, appenders := range []int{1, 8, 64} {
		var perRecord float64
		for _, cfg := range configs {
			pt, err := benchWALOnce(appenders, cfg.groupMax, cfg.groupWait, total)
			if err != nil {
				return err
			}
			if cfg.groupMax == 1 {
				perRecord = pt.OpsPerSec
				pt.SpeedupVsPerRecord = 1
			} else if perRecord > 0 {
				pt.SpeedupVsPerRecord = pt.OpsPerSec / perRecord
			}
			report.Series = append(report.Series, pt)
			rows = append(rows, []string{
				fmt.Sprintf("%d", pt.Appenders),
				fmt.Sprintf("%d", pt.GroupMax),
				fmt.Sprintf("%d", pt.GroupWaitUS),
				fmt.Sprintf("%.0f", pt.OpsPerSec),
				fmt.Sprintf("%.0f", pt.NsPerAppend),
				fmt.Sprintf("%d", pt.GroupCommits),
				fmt.Sprintf("%.1f", pt.AvgGroupSize),
				fmt.Sprintf("%d", pt.Fsyncs),
				fmt.Sprintf("%.2fx", pt.SpeedupVsPerRecord),
			})
		}
	}
	table(fmt.Sprintf("Durable append throughput, fsync on (GOMAXPROCS=%d)", report.GOMAXPROCS), header, rows)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_wal.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_wal.json")
	return nil
}

// benchWALOnce opens a fresh store on a scratch directory and hammers it
// with `appenders` goroutines until ~total records are landed, fsync on.
func benchWALOnce(appenders, groupMax int, groupWait time.Duration, total int) (benchWALPoint, error) {
	dir, err := os.MkdirTemp("", "benchwal")
	if err != nil {
		return benchWALPoint{}, err
	}
	defer os.RemoveAll(dir)
	met := metrics.NewServer(metrics.DefaultCosts())
	st, _, _, err := store.Open(dir, store.Options{
		Fsync:     true,
		GroupMax:  groupMax,
		GroupWait: groupWait,
		Counters:  met,
	})
	if err != nil {
		return benchWALPoint{}, err
	}
	defer st.Close()

	per := total / appenders
	if per == 0 {
		per = 1
	}
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			alarms := []uint64{0, 0}
			for i := 0; i < per; i++ {
				alarms[0], alarms[1] = uint64(i), splitmix64(uint64(g)<<32|uint64(i))
				var rec store.Record = store.FiredRec{User: uint64(g + 1), Alarms: alarms}
				if err := st.Append(rec); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return benchWALPoint{}, err
	}
	appends := uint64(per) * uint64(appenders)
	sn := met.Snapshot()
	return benchWALPoint{
		Appenders:    appenders,
		GroupMax:     groupMax,
		GroupWaitUS:  int(groupWait / time.Microsecond),
		Appends:      appends,
		Seconds:      elapsed.Seconds(),
		OpsPerSec:    float64(appends) / elapsed.Seconds(),
		NsPerAppend:  float64(elapsed.Nanoseconds()) / float64(appends),
		GroupCommits: sn.WALGroupCommits,
		Fsyncs:       sn.WALFsyncs,
		AvgGroupSize: sn.WALGroupSizeAvg(),
		SyncSeconds:  float64(sn.WALSyncNs) / 1e9,
	}, nil
}
