// Batched and allocation-free update handling.
//
// Three entry points share one core (processUpdate in engine.go):
//
//   - HandleUpdate: one update, self-contained response values. Scratch
//     comes from the engine pool and never escapes.
//   - HandleUpdateScratch: one update against caller-owned scratch; the
//     returned messages are the scratch's embedded fields boxed by
//     pointer, so the steady-state MWPSR path performs zero heap
//     allocations. The result aliases the scratch.
//   - HandleUpdateBatch: one UpdateBatch frame; updates are grouped by
//     user, each user's striped lock is taken once per group, and only
//     the chronologically last update of a group earns the full strategy
//     response — the monitoring state of earlier positions would be stale
//     before the reply hits the wire. Every update is still individually
//     evaluated against the alarm index, so triggers are never skipped
//     and batched delivery equals unbatched delivery.
//
// Ownership rules (DESIGN.md §10): whoever takes a scratch from the pool
// returns it; pooled scratches never back a message that outlives the
// handler call; pointer-boxed (scratch-backed) messages never travel
// through a transport.Pipe, which retains messages un-serialized.
package server

import (
	"fmt"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/saferegion"
	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/wire"
)

// UpdateScratch holds every reusable buffer of one update evaluation. A
// zero value is ready; after a few updates the buffers are warm and the
// MWPSR steady path stops allocating entirely. A scratch must not be
// shared between concurrent calls.
type UpdateScratch struct {
	// Index query results.
	triggered []alarm.ID
	raw       []uint64
	relevant  []alarm.Alarm
	rects     []geom.Rect
	// Safe-region computation scratch.
	rect saferegion.RectScratch
	// Response slice handed back by HandleUpdateScratch.
	out []wire.Message
	// Embedded response values boxed by pointer on the zero-alloc path. A
	// single update emits at most one message of each kind, so one field
	// per kind suffices.
	firedMsg wire.AlarmFired
	rectMsg  wire.RectRegion
	spMsg    wire.SafePeriod
	ackMsg   wire.Ack
}

// NewUpdateScratch returns an empty scratch; buffers grow on first use.
func NewUpdateScratch() *UpdateScratch { return &UpdateScratch{} }

func (e *Engine) getScratch() *UpdateScratch {
	return e.scratchPool.Get().(*UpdateScratch)
}

func (e *Engine) putScratch(sc *UpdateScratch) { e.scratchPool.Put(sc) }

// HandleUpdateScratch is HandleUpdate against caller-owned scratch
// buffers. Once sc is warm the MWPSR/SP/periodic steady paths allocate
// nothing: evaluation, safe-region computation and the response all run
// in sc.
//
// The returned slice and its messages alias sc: they are valid only until
// the next call with the same scratch, must not be retained, and must not
// be sent through an in-process transport.Pipe (serialize them, as the
// TCP path does, or copy). HandleUpdate is the safe general-purpose
// entry point.
func (e *Engine) HandleUpdateScratch(u wire.PositionUpdate, sc *UpdateScratch) ([]wire.Message, error) {
	if err := e.validatePosition(u.Pos); err != nil {
		return nil, err
	}
	user := alarm.UserID(u.User)
	st := e.clientFor(user, wire.StrategyPeriodic)
	reg := e.reg.Load()
	e.met.AddUplink(wire.SizePositionUpdate)

	pushes := e.moveTargetPushes(reg, user, u.Pos)

	st.mu.Lock()
	out, newFired, newTrans, err := e.processUpdate(reg, u, user, st, sc, sc.out[:0], true, true)
	st.mu.Unlock()
	sc.out = out

	if err == nil {
		if lerr := e.logFired(u.User, newFired, newTrans); lerr != nil {
			return nil, lerr
		}
		if reg.IsPairEndpoint(user) {
			wrecs, wpushes := e.wakePartners(reg, user)
			if lerr := e.logRecords(wrecs); lerr != nil {
				return nil, lerr
			}
			pushes = append(pushes, wpushes...)
		}
	}
	e.deliverPushes(pushes)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// HandleUpdateBatch processes one UpdateBatch frame and returns the
// per-user reply entries, in first-appearance order of each user in the
// batch. Same-user updates are processed in batch (chronological) order
// under one acquisition of that user's lock; every position is evaluated
// for triggers, but only the last update of a user's group receives the
// strategy response — earlier updates get their AlarmFired or a bare Ack.
//
// The whole batch shares one uplink charge (the encoded frame), per the
// batching accounting rules. Any invalid position rejects the whole
// batch before any state changes; a WAL append failure withholds the
// whole reply (clients resend, and replay re-derives the firings) — the
// same discipline as HandleUpdate. One combined FiredRec per user is
// logged, not one per update, and all of the batch's FiredRecs land as
// one store.AppendBatch group commit: a single write(2) and fsync.
func (e *Engine) HandleUpdateBatch(b wire.UpdateBatch) (wire.BatchReply, error) {
	for _, u := range b.Updates {
		if err := e.validatePosition(u.Pos); err != nil {
			return wire.BatchReply{}, fmt.Errorf("server: batch rejected: %w", err)
		}
	}
	reply := wire.BatchReply{}
	if len(b.Updates) == 0 {
		return reply, nil
	}
	reg := e.reg.Load()
	e.met.AddUplinkBatch(wire.SizeUpdateBatch(len(b.Updates)), len(b.Updates))

	// Moving-target re-anchoring happens in batch order, before any group
	// is processed, mirroring the single-update path where the move
	// precedes the mover's own evaluation.
	var pushes []pendingPush
	for _, u := range b.Updates {
		if p := e.moveTargetPushes(reg, alarm.UserID(u.User), u.Pos); len(p) > 0 {
			pushes = append(pushes, p...)
		}
	}

	sc := e.getScratch()
	defer e.putScratch(sc)
	reply.Entries = make([]wire.BatchEntry, 0, len(b.Updates))
	var firedRecs []store.Record
	for i := range b.Updates {
		user64 := b.Updates[i].User
		seenBefore := false
		for j := 0; j < i; j++ {
			if b.Updates[j].User == user64 {
				seenBefore = true
				break
			}
		}
		if seenBefore {
			continue
		}
		last := i
		for j := i + 1; j < len(b.Updates); j++ {
			if b.Updates[j].User == user64 {
				last = j
			}
		}
		user := alarm.UserID(user64)
		st := e.clientFor(user, wire.StrategyPeriodic)
		var msgs []wire.Message
		var combined, combinedTrans []uint64
		st.mu.Lock()
		for j := i; j <= last; j++ {
			if b.Updates[j].User != user64 {
				continue
			}
			var newFired, newTrans []uint64
			var err error
			msgs, newFired, newTrans, err = e.processUpdate(reg, b.Updates[j], user, st, sc, msgs, false, j == last)
			if err != nil {
				st.mu.Unlock()
				return wire.BatchReply{}, err
			}
			combined = append(combined, newFired...)
			combinedTrans = append(combinedTrans, newTrans...)
		}
		st.mu.Unlock()
		if len(combined) > 0 || len(combinedTrans) > 0 {
			all := append(append([]uint64(nil), combined...), combinedTrans...)
			firedRecs = append(firedRecs, store.FiredRec{User: user64, Alarms: all})
			tick := e.tick.Load()
			for _, ev := range combinedTrans {
				firedRecs = append(firedRecs, store.TransitionRec{User: user64, Event: ev, Tick: tick, Delivered: true})
			}
		}
		reply.Entries = append(reply.Entries, wire.BatchEntry{User: user64, Msgs: msgs})
	}
	// Pair endpoints that reported in this batch wake their partners once,
	// after every group has settled, against each reporter's final anchor.
	if reg.HasLifecycle() {
		for i := range b.Updates {
			user := alarm.UserID(b.Updates[i].User)
			dup := false
			for j := 0; j < i; j++ {
				if b.Updates[j].User == b.Updates[i].User {
					dup = true
					break
				}
			}
			if dup || !reg.IsPairEndpoint(user) {
				continue
			}
			wrecs, wpushes := e.wakePartners(reg, user)
			firedRecs = append(firedRecs, wrecs...)
			pushes = append(pushes, wpushes...)
		}
	}
	// One group commit for the whole batch — a B-user batch costs one
	// write(2) + one fsync, not B. The write-ahead discipline holds: an
	// append failure withholds every entry of the reply, and no entry is
	// released before the group is handed to the OS.
	if err := e.logRecords(firedRecs); err != nil {
		return wire.BatchReply{}, err
	}
	e.deliverPushes(pushes)
	return reply, nil
}
