package cluster

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/wire"
)

func hello(t *testing.T, rt *Router, user uint64) uint64 {
	t.Helper()
	out, err := rt.HandleHello(wire.Hello{User: user, Strategy: wire.StrategyMWPSR, MaxHeight: 5})
	if err != nil {
		t.Fatalf("hello: %v", err)
	}
	for _, m := range out {
		if r, ok := m.(wire.Resume); ok {
			return r.Token
		}
	}
	t.Fatal("hello response carries no Resume")
	return 0
}

func update(t *testing.T, rt *Router, user uint64, seq uint32, pos geom.Point) []wire.Message {
	t.Helper()
	out, err := rt.HandleUpdate(wire.PositionUpdate{User: user, Seq: seq, Pos: pos})
	if err != nil {
		t.Fatalf("update seq %d: %v", seq, err)
	}
	return out
}

func firedIDs(msgs []wire.Message) []uint64 {
	var ids []uint64
	for _, m := range msgs {
		if af, ok := m.(wire.AlarmFired); ok {
			ids = append(ids, af.Alarms...)
		}
	}
	return ids
}

// TestRouterHandoffMovesSession: crossing the partition boundary exports
// the session from the old shard, imports it at the new one, and pushes
// the freshly minted token to the client as a Resume.
func TestRouterHandoffMovesSession(t *testing.T) {
	c := newTestCluster(t, 2, 1, "")
	rt := NewRouter(c)
	hello(t, rt, 1)
	update(t, rt, 1, 1, geom.Pt(2000, 5000)) // enrolls on shard 0

	out := update(t, rt, 1, 2, geom.Pt(8000, 5000)) // crosses to shard 1
	var pushed *wire.Resume
	for _, m := range out {
		if r, ok := m.(wire.Resume); ok {
			pushed = &r
		}
	}
	if pushed == nil || pushed.Token == 0 || !pushed.Resumed {
		t.Fatalf("no token push after handoff: %v", out)
	}
	met := c.Metrics().Snapshot()
	if met.Handoffs != 1 {
		t.Errorf("Handoffs = %d, want 1", met.Handoffs)
	}
	if got := c.Engine(0).Metrics().Snapshot().SessionsExported; got != 1 {
		t.Errorf("shard 0 SessionsExported = %d, want 1", got)
	}
	if got := c.Engine(1).Metrics().Snapshot().SessionsImported; got != 1 {
		t.Errorf("shard 1 SessionsImported = %d, want 1", got)
	}
	// The pushed token resumes the session on the new shard.
	out, err := rt.HandleHello(wire.Hello{User: 1, Token: pushed.Token, Strategy: wire.StrategyMWPSR, MaxHeight: 5})
	if err != nil {
		t.Fatalf("resume hello: %v", err)
	}
	for _, m := range out {
		if r, ok := m.(wire.Resume); ok && !r.Resumed {
			t.Error("token minted by handoff did not resume on the new shard")
		}
	}
}

// TestRouterSuppressesCrossShardDuplicate: an alarm straddling the
// boundary is installed on both shards; after it fires (and is acked) on
// one shard, the other shard's stale registry refires it on arrival —
// the router must strip the duplicate and ack it back to that shard.
func TestRouterSuppressesCrossShardDuplicate(t *testing.T) {
	c := newTestCluster(t, 2, 1, "")
	ids, err := c.InstallAlarms([]alarm.Alarm{{
		Scope: alarm.Private, Owner: 1,
		Region: geom.RectAround(geom.Pt(5000, 5000), 1000), // x 4500..5500
	}})
	if err != nil {
		t.Fatal(err)
	}
	id := uint64(ids[0])
	rt := NewRouter(c)
	hello(t, rt, 1)

	out := update(t, rt, 1, 1, geom.Pt(4800, 5000)) // inside region, shard 0
	if got := firedIDs(out); len(got) != 1 || got[0] != id {
		t.Fatalf("first firing = %v, want [%d]", got, id)
	}
	rt.HandleAck(1, []uint64{id})

	out = update(t, rt, 1, 2, geom.Pt(5200, 5000)) // handoff; still inside region
	if got := firedIDs(out); len(got) != 0 {
		t.Fatalf("duplicate firing leaked through the router: %v", got)
	}
	met := c.Metrics().Snapshot()
	if met.DuplicateFiringsSuppressed != 1 {
		t.Errorf("DuplicateFiringsSuppressed = %d, want 1", met.DuplicateFiringsSuppressed)
	}
	// The synthetic ack drained shard 1's pending set: nothing redelivers.
	if pending := c.Engine(1).PendingFired(1); len(pending) != 0 {
		t.Errorf("shard 1 still holds pending %v after synthetic ack", pending)
	}
}

// TestRouterHandoffCarriesPending: an unacknowledged firing survives the
// handoff — the new shard both knows it fired (no refire) and redelivers
// it until the client acks.
func TestRouterHandoffCarriesPending(t *testing.T) {
	c := newTestCluster(t, 2, 1, "")
	ids, err := c.InstallAlarms([]alarm.Alarm{{
		Scope: alarm.Private, Owner: 1,
		Region: geom.RectAround(geom.Pt(5000, 5000), 1000),
	}})
	if err != nil {
		t.Fatal(err)
	}
	id := uint64(ids[0])
	rt := NewRouter(c)
	hello(t, rt, 1)
	out := update(t, rt, 1, 1, geom.Pt(4800, 5000))
	if got := firedIDs(out); len(got) != 1 {
		t.Fatalf("no firing on shard 0: %v", out)
	}
	// No ack: the firing is pending when the client crosses the boundary.
	// The new shard redelivers it (the client session dedups) — but must
	// not REFIRE it, which would double-count the pair.
	out = update(t, rt, 1, 2, geom.Pt(5200, 5000))
	if got := firedIDs(out); len(got) != 1 || got[0] != id {
		t.Fatalf("handoff response = %v, want redelivery of [%d]", got, id)
	}
	s1 := c.Engine(1).Metrics().Snapshot()
	if s1.AlarmsTriggered != 0 {
		t.Errorf("shard 1 refired the carried pair (AlarmsTriggered = %d)", s1.AlarmsTriggered)
	}
	if s1.FiredRedeliveries == 0 {
		t.Error("shard 1 did not count the redelivery")
	}
	if pending := c.Engine(1).PendingFired(1); len(pending) != 1 || pending[0] != id {
		t.Fatalf("shard 1 pending = %v, want [%d]", pending, id)
	}
	// Redelivery from the NEW shard passes dedup (the pair re-attributed).
	hb := rt.HandleHeartbeat(1, wire.Heartbeat{})
	if got := firedIDs(hb); len(got) != 1 || got[0] != id {
		t.Fatalf("heartbeat redelivery = %v, want [%d]", got, id)
	}
	rt.HandleAck(1, []uint64{id})
	if pending := c.Engine(1).PendingFired(1); len(pending) != 0 {
		t.Errorf("pending not drained after ack: %v", pending)
	}
}

// TestRouterDownShardDefers: messages for a dead shard go unanswered
// (the session resends), heartbeats are echoed locally so the link stays
// up, and a handoff into a dead shard parks until it recovers.
func TestRouterDownShardDefers(t *testing.T) {
	c := newTestCluster(t, 2, 1, t.TempDir())
	rt := NewRouter(c)
	hello(t, rt, 1)
	update(t, rt, 1, 1, geom.Pt(2000, 5000))

	rng := rand.New(rand.NewSource(7))
	if err := c.KillShard(0, store.TearNone, rng); err != nil {
		t.Fatal(err)
	}
	_, err := rt.HandleUpdate(wire.PositionUpdate{User: 1, Seq: 2, Pos: geom.Pt(2100, 5000)})
	if sd, ok := IsShardDown(err); !ok || sd.Shard != 0 {
		t.Fatalf("update to dead shard: err=%v, want ShardDownError{Shard: 0}", err)
	}
	hb := rt.HandleHeartbeat(1, wire.Heartbeat{})
	if len(hb) != 1 {
		t.Fatalf("heartbeat to dead shard: %v, want local echo", hb)
	}
	if err := c.RecoverShard(0); err != nil {
		t.Fatal(err)
	}
	update(t, rt, 1, 2, geom.Pt(2100, 5000)) // resumes after recovery

	// Handoff INTO a dead shard parks the carried session.
	if err := c.KillShard(1, store.TearNone, rng); err != nil {
		t.Fatal(err)
	}
	_, err = rt.HandleUpdate(wire.PositionUpdate{User: 1, Seq: 3, Pos: geom.Pt(8000, 5000)})
	if sd, ok := IsShardDown(err); !ok || sd.Shard != 1 {
		t.Fatalf("handoff into dead shard: err=%v, want ShardDownError{Shard: 1}", err)
	}
	if got := c.Metrics().Snapshot().HandoffsParked; got != 1 {
		t.Errorf("HandoffsParked = %d, want 1", got)
	}
	if got := c.Metrics().Snapshot().HandoffsDeferred; got == 0 {
		t.Error("no deferred handoff counted")
	}
	hb = rt.HandleHeartbeat(1, wire.Heartbeat{})
	if len(hb) != 1 {
		t.Fatalf("heartbeat while parked: %v, want local echo", hb)
	}
	if err := c.RecoverShard(1); err != nil {
		t.Fatal(err)
	}
	out := update(t, rt, 1, 3, geom.Pt(8000, 5000))
	var pushed bool
	for _, m := range out {
		if r, ok := m.(wire.Resume); ok && r.Token != 0 {
			pushed = true
		}
	}
	if !pushed {
		t.Errorf("no token push after parked handoff landed: %v", out)
	}
	if got := c.Metrics().Snapshot().Handoffs; got != 1 {
		t.Errorf("Handoffs = %d, want 1", got)
	}
}

// TestRouterConcurrent hammers one router from many goroutines, each
// driving its own user back and forth across the partition boundary.
// Run under -race (make cluster); correctness here is the absence of
// data races and deadlocks, plus every update eventually handled.
func TestRouterConcurrent(t *testing.T) {
	c := newTestCluster(t, 2, 2, "")
	if _, err := c.InstallAlarms([]alarm.Alarm{{
		Scope: alarm.Public, Owner: 1,
		Region: geom.RectAround(geom.Pt(5000, 5000), 800),
	}}); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(c)
	const users = 16
	var wg sync.WaitGroup
	errs := make(chan error, users)
	for u := 1; u <= users; u++ {
		wg.Add(1)
		go func(user uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(user)))
			if _, err := rt.HandleHello(wire.Hello{User: user, Strategy: wire.StrategyPBSR, MaxHeight: 5}); err != nil {
				errs <- err
				return
			}
			for seq := uint32(1); seq <= 200; seq++ {
				pos := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
				if _, err := rt.HandleUpdate(wire.PositionUpdate{User: user, Seq: seq, Pos: pos}); err != nil {
					errs <- err
					return
				}
				if rng.Intn(8) == 0 {
					rt.HandleHeartbeat(user, wire.Heartbeat{})
				}
			}
		}(uint64(u))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent routing failed: %v", err)
	}
	met := c.Metrics().Snapshot()
	if met.Handoffs == 0 {
		t.Error("random walks produced no handoffs")
	}
}
