package cluster

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/transport"
	"github.com/sabre-geo/sabre/internal/wire"
)

// TCPCluster fronts a Cluster with one TCP listener per shard. Clients
// connect to any shard; a position update owned by a different shard
// triggers an in-process handoff (the shards share this process) and a
// wire.Redirect reply pointing the client at the owning shard's address
// with its freshly minted resume token. Cross-shard duplicate firings
// are deduplicated client-side in this mode: the client acknowledges
// everything it receives — including duplicates it suppresses — so each
// shard's pending set drains (PROTOCOL.md "Redirect and handoff").
type TCPCluster struct {
	cl          *Cluster
	log         *log.Logger
	idleTimeout time.Duration
	listeners   []net.Listener
	addrs       []string

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewTCP listens on one address per shard (len(addrs) must equal
// cl.N()); ":0" addresses are supported, with the bound addresses
// available from Addrs. Serving starts with Serve; shards created by a
// later split get listeners through ServeShard.
func NewTCP(cl *Cluster, addrs []string, logger *log.Logger, idleTimeout time.Duration) (*TCPCluster, error) {
	if len(addrs) != cl.N() {
		return nil, fmt.Errorf("cluster: %d addresses for %d shards", len(addrs), cl.N())
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	c := &TCPCluster{
		cl:          cl,
		log:         logger,
		idleTimeout: idleTimeout,
		conns:       make(map[net.Conn]struct{}),
	}
	for i, addr := range addrs {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			for _, l := range c.listeners {
				l.Close()
			}
			return nil, fmt.Errorf("cluster: listen shard %d on %s: %w", i, addr, err)
		}
		c.listeners = append(c.listeners, ln)
		c.addrs = append(c.addrs, ln.Addr().String())
	}
	return c, nil
}

// Addrs returns the bound per-shard listener addresses ("" for shards
// without one yet).
func (c *TCPCluster) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.addrs...)
}

// addrOf returns the listener address serving shard, "" when none.
func (c *TCPCluster) addrOf(shard int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if shard < 0 || shard >= len(c.addrs) {
		return ""
	}
	return c.addrs[shard]
}

// ServeShard adds a listener for a shard created after NewTCP (a
// runtime split) and starts accepting on it immediately. Until a shard
// has a listener, the router cannot redirect clients to it and keeps
// serving them through in-process handoffs from the shard they dialed.
func (c *TCPCluster) ServeShard(shard int, addr string) (string, error) {
	if shard < 0 || shard >= c.cl.N() {
		return "", fmt.Errorf("cluster: no shard %d", shard)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return "", errors.New("cluster: closed")
	}
	for len(c.addrs) < c.cl.N() {
		c.addrs = append(c.addrs, "")
		c.listeners = append(c.listeners, nil)
	}
	if c.addrs[shard] != "" {
		bound := c.addrs[shard]
		c.mu.Unlock()
		return bound, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		c.mu.Unlock()
		return "", fmt.Errorf("cluster: listen shard %d on %s: %w", shard, addr, err)
	}
	c.listeners[shard] = ln
	c.addrs[shard] = ln.Addr().String()
	c.wg.Add(1)
	c.mu.Unlock()
	go func() {
		defer c.wg.Done()
		if err := c.serveShard(shard, ln); err != nil {
			c.log.Printf("shard %d: %v", shard, err)
		}
	}()
	return c.addrOf(shard), nil
}

// Serve accepts on every shard listener until Close; it returns the
// first accept error after all listeners stop.
func (c *TCPCluster) Serve() error {
	errs := make(chan error, len(c.listeners))
	var wg sync.WaitGroup
	for i, ln := range c.listeners {
		if ln == nil {
			continue
		}
		wg.Add(1)
		go func(shard int, ln net.Listener) {
			defer wg.Done()
			errs <- c.serveShard(shard, ln)
		}(i, ln)
	}
	wg.Wait()
	return <-errs
}

func (c *TCPCluster) serveShard(shard int, ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return fmt.Errorf("cluster: closed: %w", err)
			}
			return fmt.Errorf("cluster: shard %d accept: %w", shard, err)
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			nc.Close()
			return errors.New("cluster: closed")
		}
		c.conns[nc] = struct{}{}
		c.wg.Add(1)
		c.mu.Unlock()
		go func() {
			defer c.wg.Done()
			c.serveConn(shard, nc)
		}()
	}
}

// Close stops every listener and connection, waits for serving
// goroutines, and closes the cluster's durable stores.
func (c *TCPCluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	var first error
	for _, ln := range c.listeners {
		if ln == nil {
			continue
		}
		if err := ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	for nc := range c.conns {
		nc.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
	return first
}

func (c *TCPCluster) serveConn(shard int, nc net.Conn) {
	defer func() {
		nc.Close()
		c.mu.Lock()
		delete(c.conns, nc)
		c.mu.Unlock()
	}()
	conn := transport.NewTCPDeadline(nc, c.idleTimeout, 30*time.Second)
	var registeredUser uint64
	reply := func(responses []wire.Message) bool {
		for _, m := range responses {
			if err := conn.Send(m); err != nil {
				c.log.Printf("shard %d conn %s: send: %v", shard, nc.RemoteAddr(), err)
				return false
			}
		}
		return true
	}
	for {
		msg, err := conn.Recv()
		if err != nil {
			switch {
			case errors.Is(err, io.EOF), errors.Is(err, net.ErrClosed):
			case errors.Is(err, os.ErrDeadlineExceeded):
				c.log.Printf("shard %d conn %s: idle timeout, reaping", shard, nc.RemoteAddr())
			default:
				c.log.Printf("shard %d conn %s: recv: %v", shard, nc.RemoteAddr(), err)
			}
			return
		}
		eng := c.cl.Engine(shard)
		if eng == nil {
			// A merged-away shard redirects its clients to the absorbing
			// shard (token 0: the drained session re-enrolls there and
			// carries its pending firings). A merely-down shard drops the
			// connection and the client's resend machinery retries.
			if to, ok := c.cl.retiredTarget(shard); ok {
				if addr := c.addrOf(to); addr != "" {
					c.cl.met.AddRedirectSent()
					reply([]wire.Message{wire.Redirect{Epoch: c.cl.Epoch(), Addr: addr}})
				}
			}
			c.log.Printf("shard %d conn %s: shard down, dropping %v", shard, nc.RemoteAddr(), msg.Kind())
			return
		}
		switch m := msg.(type) {
		case wire.Register:
			if err := eng.Register(m); err != nil {
				c.log.Printf("shard %d conn %s: register: %v", shard, nc.RemoteAddr(), err)
				return
			}
			registeredUser = m.User
		case wire.Hello:
			responses, _, err := eng.HandleHello(m)
			if err != nil {
				c.log.Printf("shard %d conn %s: hello: %v", shard, nc.RemoteAddr(), err)
				return
			}
			registeredUser = m.User
			if !reply(responses) {
				return
			}
		case wire.Heartbeat:
			if !reply(eng.HandleHeartbeat(alarm.UserID(registeredUser), m)) {
				return
			}
		case wire.FiredAck:
			if registeredUser != 0 {
				if err := eng.AckFired(alarm.UserID(registeredUser), m.Alarms); err != nil {
					c.log.Printf("shard %d conn %s: fired-ack: %v", shard, nc.RemoteAddr(), err)
					return
				}
			}
		case wire.PositionUpdate:
			owner := c.cl.locate(m.Pos)
			if owner != shard {
				// Cross-partition report: move the session in-process and
				// point the client at the owning shard.
				addr := c.addrOf(owner)
				if addr == "" {
					continue // no listener yet: drop, client resends
				}
				tok, ok := c.redirectSession(shard, owner, m.User)
				if !ok {
					continue // owner down: drop, client resends
				}
				rd := wire.Redirect{Token: tok, Epoch: c.cl.Epoch(), Addr: addr}
				eng.Metrics().AddDownlink(wire.EncodedSize(rd))
				c.cl.met.AddRedirectSent()
				if !reply([]wire.Message{rd}) {
					return
				}
				continue
			}
			responses, err := eng.HandleUpdate(m)
			if err != nil {
				c.log.Printf("shard %d conn %s: update: %v", shard, nc.RemoteAddr(), err)
				return
			}
			if len(responses) == 0 {
				responses = []wire.Message{wire.Ack{Seq: m.Seq}}
			}
			if !reply(responses) {
				return
			}
		case wire.UpdateBatch:
			if len(m.Updates) == 0 {
				continue
			}
			// The maximal prefix owned by this shard is served as one
			// batch; the first cross-partition update redirects the
			// client exactly as a stand-alone update would, and the rest
			// of the frame is left for the client's resend machinery to
			// retry at the new shard.
			n := 0
			for n < len(m.Updates) && c.cl.locate(m.Updates[n].Pos) == shard {
				n++
			}
			if n > 0 {
				br, err := eng.HandleUpdateBatch(wire.UpdateBatch{Updates: m.Updates[:n]})
				if err != nil {
					c.log.Printf("shard %d conn %s: update-batch: %v", shard, nc.RemoteAddr(), err)
					return
				}
				if !reply([]wire.Message{br}) {
					return
				}
			}
			if n < len(m.Updates) {
				u := m.Updates[n]
				owner := c.cl.locate(u.Pos)
				addr := c.addrOf(owner)
				if addr == "" {
					continue // no listener yet: drop, client resends
				}
				tok, ok := c.redirectSession(shard, owner, u.User)
				if !ok {
					continue // owner down: drop, client resends
				}
				rd := wire.Redirect{Token: tok, Epoch: c.cl.Epoch(), Addr: addr}
				eng.Metrics().AddDownlink(wire.EncodedSize(rd))
				c.cl.met.AddRedirectSent()
				if !reply([]wire.Message{rd}) {
					return
				}
			}
		default:
			c.log.Printf("shard %d conn %s: unexpected %v", shard, nc.RemoteAddr(), msg.Kind())
			return
		}
	}
}

// redirectSession exports user's session from shard `from` and imports
// it at shard `to`, returning the token the client should present there.
// A missing session (never enrolled, or already expired) redirects with
// token 0 — the client re-enrolls fresh at the owner. Reports false when
// the owning shard is down.
func (c *TCPCluster) redirectSession(from, to int, user uint64) (uint64, bool) {
	newEng := c.cl.Engine(to)
	if newEng == nil {
		c.cl.met.AddHandoffDeferred()
		return 0, false
	}
	oldEng := c.cl.Engine(from)
	if oldEng == nil {
		return 0, false
	}
	rec, ok, err := oldEng.ExportSession(alarm.UserID(user))
	if err != nil {
		c.log.Printf("shard %d: export user %d: %v", from, user, err)
	}
	if !ok {
		return 0, true
	}
	tok, err := newEng.ImportSession(rec)
	if err != nil {
		c.log.Printf("shard %d: import user %d: %v", to, user, err)
		return 0, false
	}
	c.cl.met.AddHandoff()
	return tok, true
}
