package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/wire"
)

func sampleRecords() []Record {
	return []Record{
		InstallRec{Alarm: alarm.Alarm{
			ID: 1, Scope: alarm.Public, Owner: 3, Region: geom.R(10, 10, 20, 20),
		}},
		InstallRec{Alarm: alarm.Alarm{
			ID: 2, Scope: alarm.Shared, Owner: 4, Subscribers: []alarm.UserID{4, 9},
			Region: geom.R(-5, -5, 0, 0), Target: 9, Topic: "traffic/85N",
		}},
		RemoveRec{ID: 2},
		RegisterRec{User: 7, Strategy: wire.StrategySafePeriod, MaxHeight: 6},
		HelloRec{User: 8, Token: 0xFEEDC0FFEE, Strategy: wire.StrategyPBSR, MaxHeight: 4},
		FiredRec{User: 8, Alarms: []uint64{1, 5, 9}},
		FiredRec{User: 8, Alarms: nil},
		FiredAckRec{User: 8, Alarms: []uint64{1}},
		EpochRec{Epoch: 12},
		// ExpireRec must stay last: TestStoreTornTailRecovery tears the
		// final record and asserts user 8 survives the tear.
		ExpireRec{User: 8},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords() {
		enc := EncodeRecord(rec)
		dec, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode %T: %v", rec, err)
		}
		if !bytes.Equal(EncodeRecord(dec), enc) {
			t.Fatalf("%T: re-encode differs", rec)
		}
	}
}

func TestDecodeRecordRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"unknown tag":      {99, 0, 0},
		"truncated body":   EncodeRecord(RemoveRec{ID: 5})[:4],
		"trailing bytes":   append(EncodeRecord(ExpireRec{User: 1}), 0xFF),
		"oversized count":  {recFired, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF},
		"oversized string": {recInstall, 0, 0, 0, 0, 0, 0, 0, 1, 3, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF},
	}
	for name, payload := range cases {
		if _, err := DecodeRecord(payload); err == nil {
			t.Errorf("%s: decode accepted bad payload", name)
		}
	}
}

func TestScanFramesTornTail(t *testing.T) {
	var buf []byte
	recs := sampleRecords()
	for _, rec := range recs {
		buf = append(buf, Frame(EncodeRecord(rec))...)
	}
	whole := len(buf)

	payloads, clean, reason := ScanFrames(buf)
	if len(payloads) != len(recs) || clean != whole || reason != "" {
		t.Fatalf("clean log: got %d payloads, clean=%d, reason=%q", len(payloads), clean, reason)
	}

	// Every strict prefix of the final frame scans to the same clean point.
	lastStart, lastLen := lastFrame(buf)
	if lastStart+lastLen != whole {
		t.Fatalf("lastFrame = (%d,%d), want end %d", lastStart, lastLen, whole)
	}
	for cut := lastStart; cut < whole; cut++ {
		payloads, clean, reason = ScanFrames(buf[:cut])
		if len(payloads) != len(recs)-1 || clean != lastStart {
			t.Fatalf("cut=%d: got %d payloads, clean=%d, reason=%q", cut, len(payloads), clean, reason)
		}
		if cut > lastStart && reason == "" {
			t.Fatalf("cut=%d: torn frame scanned without a stop reason", cut)
		}
	}

	// A flipped bit in the final frame invalidates only that frame.
	flipped := append([]byte(nil), buf...)
	flipped[lastStart+frameHeader] ^= 0x10
	payloads, clean, _ = ScanFrames(flipped)
	if len(payloads) != len(recs)-1 || clean != lastStart {
		t.Fatalf("flipped CRC: got %d payloads, clean=%d", len(payloads), clean)
	}
}

func openStore(t *testing.T, dir string, opts Options) (*Store, *State, RecoveryInfo) {
	t.Helper()
	s, state, info, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, state, info
}

func TestStoreReplay(t *testing.T) {
	dir := t.TempDir()
	s, state, info := openStore(t, dir, Options{Fsync: true})
	if info.Replayed != 0 || info.FromSnapshot || len(state.Clients) != 0 {
		t.Fatalf("fresh dir: info=%+v", info)
	}
	for _, rec := range sampleRecords() {
		if err := s.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	s.Close()

	_, state, info = openStore(t, dir, Options{})
	if info.Replayed != len(sampleRecords()) || info.TruncatedBytes != 0 {
		t.Fatalf("recovery info = %+v", info)
	}
	// After the sample sequence: alarm 1 alive (2 removed), user 7
	// registered, user 8 expired, fired pairs persist.
	if len(state.Alarms) != 1 || state.Alarms[0].ID != 1 {
		t.Fatalf("alarms = %+v", state.Alarms)
	}
	if state.NextAlarmID != 3 {
		t.Fatalf("nextAlarmID = %d", state.NextAlarmID)
	}
	if len(state.Clients) != 1 || state.Clients[0].User != 7 {
		t.Fatalf("clients = %+v", state.Clients)
	}
	if len(state.Sessions) != 0 {
		t.Fatalf("sessions = %+v (user 8 expired)", state.Sessions)
	}
	want := []alarm.FiredPair{{Alarm: 1, User: 8}, {Alarm: 5, User: 8}, {Alarm: 9, User: 8}}
	if !reflect.DeepEqual(state.Fired, want) {
		t.Fatalf("fired = %+v", state.Fired)
	}
}

func TestStoreCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := openStore(t, dir, Options{SnapshotEvery: 4})
	// State source reflecting what the log built so far, as the engine's
	// DurableState does.
	b := newBuilder(nil, 0)
	s.SetStateSource(func() *State { return b.finish() })
	for i, rec := range sampleRecords() {
		b.apply(rec)
		if err := s.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if g := s.Gen(); g != 2 {
		t.Fatalf("gen = %d, want 2 (10 appends / snapshot every 4)", g)
	}
	// Old generations are gone.
	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("dir holds %v, want exactly one snapshot + one wal", names)
	}
	s.Close()

	_, state, info := openStore(t, dir, Options{})
	if !info.FromSnapshot || info.Gen != 2 || info.Replayed != 2 {
		t.Fatalf("recovery info = %+v", info)
	}
	if !reflect.DeepEqual(state, b.finish()) {
		t.Fatalf("recovered state differs:\n got %+v\nwant %+v", state, b.finish())
	}
}

func TestStoreIdempotentReplay(t *testing.T) {
	// A snapshot can capture state that already includes a mutation whose
	// record then lands in the NEW wal (append raced the checkpoint):
	// replaying the record over the snapshot must be a no-op.
	recs := sampleRecords()
	b := newBuilder(nil, 0)
	for _, rec := range recs {
		b.apply(rec)
	}
	once := b.finish()
	b2 := newBuilder(once, 0)
	for _, rec := range recs {
		b2.apply(rec) // replay everything again over the final state
	}
	if got := b2.finish(); !reflect.DeepEqual(got, once) {
		t.Fatalf("replay not idempotent:\n got %+v\nwant %+v", got, once)
	}
}

func TestStoreTornTailRecovery(t *testing.T) {
	for _, mode := range []TearMode{TearTruncate, TearGarbage, TearFlipBit} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			s, _, _ := openStore(t, dir, Options{Fsync: true})
			recs := sampleRecords()
			for _, rec := range recs {
				if err := s.Append(rec); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			wal := s.WALPath()
			s.Kill()
			if err := s.Append(ExpireRec{User: 1}); err != ErrCrashed {
				t.Fatalf("append after Kill = %v, want ErrCrashed", err)
			}
			rng := rand.New(rand.NewSource(42))
			if err := MangleTail(wal, mode, rng); err != nil {
				t.Fatalf("MangleTail: %v", err)
			}

			_, state, info := openStore(t, dir, Options{})
			if info.Replayed != len(recs)-1 {
				t.Fatalf("replayed %d records, want %d (last torn away)", info.Replayed, len(recs)-1)
			}
			if info.TruncatedBytes <= 0 || info.TruncateReason == "" {
				t.Fatalf("info = %+v, want truncation reported", info)
			}
			// The torn record was ExpireRec{8}; without it user 8 survives.
			found := false
			for _, c := range state.Clients {
				found = found || c.User == 8
			}
			if !found {
				t.Fatalf("client 8 missing: the tear destroyed more than the final record")
			}

			// The repair truncated the file: reopening is now clean.
			_, _, info2 := openStore(t, dir, Options{})
			if info2.TruncatedBytes != 0 || info2.Replayed != len(recs)-1 {
				t.Fatalf("post-repair reopen: info = %+v", info2)
			}
		})
	}
}

func TestStoreCrashPointMidRecord(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := openStore(t, dir, Options{Fsync: true})
	s.SetCrashPoints([]CrashPoint{{AfterAppends: 3, TearBytes: 5, FlipBit: -1}})
	recs := sampleRecords()
	var died int
	for i, rec := range recs {
		if err := s.Append(rec); err != nil {
			died = i
			break
		}
	}
	if died != 2 {
		t.Fatalf("died on append %d, want 2 (third append)", died)
	}
	if err := s.Append(recs[0]); err != ErrCrashed {
		t.Fatalf("append after crash = %v, want ErrCrashed", err)
	}

	_, _, info := openStore(t, dir, Options{})
	if info.Replayed != 2 {
		t.Fatalf("replayed %d, want 2 (torn third record discarded)", info.Replayed)
	}
	if info.TruncatedBytes != 5 {
		t.Fatalf("truncated %d bytes, want the 5 torn ones", info.TruncatedBytes)
	}
}

func TestStoreCrashPointGarbageAndBitFlip(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := openStore(t, dir, Options{Fsync: true})
	// FlipBit 10 lands inside the 3 garbage bytes, not the real frames.
	s.SetCrashPoints([]CrashPoint{{AfterAppends: 2, TearBytes: 1 << 20, Garbage: []byte{1, 2, 3}, FlipBit: 10}})
	recs := sampleRecords()
	for _, rec := range recs {
		if err := s.Append(rec); err != nil {
			break
		}
	}
	// Append 2 was fully written (TearBytes clamps), then garbage was
	// appended and a bit flipped inside it: record 2 still recovers.
	_, _, info := openStore(t, dir, Options{})
	if info.Replayed != 2 || info.TruncatedBytes == 0 {
		t.Fatalf("info = %+v, want 2 replayed with garbage truncated", info)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	b := newBuilder(nil, 0)
	for _, rec := range sampleRecords() {
		b.apply(rec)
	}
	st := b.finish()
	var buf bytes.Buffer
	if err := writeSnapshot(&buf, st); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}
	got, err := readSnapshot(&buf)
	if err != nil {
		t.Fatalf("readSnapshot: %v", err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip differs:\n got %+v\nwant %+v", got, st)
	}
}

func TestSnapshotRejectsBadVersion(t *testing.T) {
	if _, err := readSnapshot(bytes.NewBufferString(`{"version":99,"state":{}}`)); err == nil {
		t.Fatal("version 99 accepted")
	}
	if _, err := readSnapshot(bytes.NewBufferString(`{"version":1,"state":{"alarms":[{"ID":1}]}}`)); err == nil {
		t.Fatal("empty-region alarm accepted")
	}
}

func TestPendingCapEviction(t *testing.T) {
	b := newBuilder(nil, 3)
	b.apply(HelloRec{User: 1, Token: 10, Strategy: wire.StrategyMWPSR})
	b.apply(FiredRec{User: 1, Alarms: []uint64{1, 2}})
	b.apply(FiredRec{User: 1, Alarms: []uint64{3, 4, 5}})
	st := b.finish()
	if len(st.Clients) != 1 {
		t.Fatalf("clients = %+v", st.Clients)
	}
	if got, want := st.Clients[0].PendingFired, []uint64{3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("pending = %v, want oldest-first eviction to %v", got, want)
	}
	// Evicted ids stay in fired state — they never re-trigger.
	if len(st.Fired) != 5 {
		t.Fatalf("fired = %+v, want all 5 pairs", st.Fired)
	}
}

func TestMangleTailNoCompleteFrame(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "wal-00000000.log")
	if err := os.WriteFile(p, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Nothing to tear: a file with no complete frame must be untouched.
	if err := MangleTail(p, TearTruncate, rng); err != nil {
		t.Fatalf("MangleTail: %v", err)
	}
	buf, _ := os.ReadFile(p)
	if !bytes.Equal(buf, []byte{1, 2, 3}) {
		t.Fatalf("file changed: %v", buf)
	}
	if err := MangleTail(filepath.Join(dir, "missing.log"), TearTruncate, rng); err != nil {
		t.Fatalf("missing file: %v", err)
	}
}
