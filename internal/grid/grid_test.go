package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sabre-geo/sabre/internal/geom"
)

func mustGrid(t testing.TB, universe geom.Rect, area float64) *Grid {
	t.Helper()
	g, err := New(universe, area)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(geom.Rect{}, 100); err == nil {
		t.Error("expected error for empty universe")
	}
	if _, err := New(geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, 0); err == nil {
		t.Error("expected error for zero cell area")
	}
	if _, err := New(geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, -5); err == nil {
		t.Error("expected error for negative cell area")
	}
}

func TestDimsAndCoverage(t *testing.T) {
	// 1000 x 1000 universe with 100x100 cells -> 10x10 grid.
	g := mustGrid(t, geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, 10000)
	cols, rows := g.Dims()
	if cols != 10 || rows != 10 {
		t.Fatalf("Dims = %d,%d want 10,10", cols, rows)
	}
	if g.NumCells() != 100 {
		t.Errorf("NumCells = %d", g.NumCells())
	}
	if math.Abs(g.CellSide()-100) > 1e-9 {
		t.Errorf("CellSide = %v", g.CellSide())
	}
	if math.Abs(g.CellArea()-10000) > 1e-6 {
		t.Errorf("CellArea = %v", g.CellArea())
	}
}

func TestNonDivisibleUniverse(t *testing.T) {
	// 1050 wide with 100-side cells -> 11 columns; fringe cell extends past.
	g := mustGrid(t, geom.Rect{MinX: 0, MinY: 0, MaxX: 1050, MaxY: 1050}, 10000)
	cols, rows := g.Dims()
	if cols != 11 || rows != 11 {
		t.Fatalf("Dims = %d,%d want 11,11", cols, rows)
	}
	id := g.Locate(geom.Pt(1049, 1049))
	if id.Col() != 10 || id.Row() != 10 {
		t.Errorf("Locate fringe = %v", id)
	}
	if !g.CellRect(id).Contains(geom.Pt(1049, 1049)) {
		t.Error("fringe cell does not contain its point")
	}
}

func TestLocateCellRectConsistency(t *testing.T) {
	g := mustGrid(t, geom.Rect{MinX: -500, MinY: 200, MaxX: 4500, MaxY: 5200}, 62500)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		p := geom.Pt(-500+rng.Float64()*5000, 200+rng.Float64()*5000)
		id := g.Locate(p)
		if !g.Contains(id) {
			t.Fatalf("Locate(%v) = invalid cell %v", p, id)
		}
		if !g.CellRect(id).Contains(p) {
			t.Fatalf("CellRect(%v)=%v does not contain %v", id, g.CellRect(id), p)
		}
	}
}

func TestLocateClampsOutside(t *testing.T) {
	g := mustGrid(t, geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, 10000)
	tests := []struct {
		p        geom.Point
		col, row int
	}{
		{geom.Pt(-50, 500), 0, 5},
		{geom.Pt(2000, 500), 9, 5},
		{geom.Pt(500, -1), 5, 0},
		{geom.Pt(500, 5000), 5, 9},
		{geom.Pt(-10, -10), 0, 0},
	}
	for _, tt := range tests {
		id := g.Locate(tt.p)
		if id.Col() != tt.col || id.Row() != tt.row {
			t.Errorf("Locate(%v) = (%d,%d), want (%d,%d)", tt.p, id.Col(), id.Row(), tt.col, tt.row)
		}
	}
}

func TestCellIDPacking(t *testing.T) {
	f := func(col, row uint16) bool {
		id := MakeCellID(int(col), int(row))
		return id.Col() == int(col) && id.Row() == int(row)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeighbors(t *testing.T) {
	g := mustGrid(t, geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, 10000)
	tests := []struct {
		name     string
		col, row int
		want     int
	}{
		{"interior", 5, 5, 8},
		{"corner", 0, 0, 3},
		{"edge", 0, 5, 5},
		{"opposite corner", 9, 9, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := g.Neighbors(MakeCellID(tt.col, tt.row), nil)
			if len(got) != tt.want {
				t.Errorf("Neighbors = %d cells, want %d", len(got), tt.want)
			}
			for _, n := range got {
				if !g.Contains(n) {
					t.Errorf("neighbor %v out of grid", n)
				}
				if n == MakeCellID(tt.col, tt.row) {
					t.Error("cell is its own neighbor")
				}
			}
		})
	}
}

func TestCellsIntersecting(t *testing.T) {
	g := mustGrid(t, geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, 10000)
	t.Run("single cell interior window", func(t *testing.T) {
		got := g.CellsIntersecting(geom.Rect{MinX: 110, MinY: 110, MaxX: 190, MaxY: 190}, nil)
		if len(got) != 1 || got[0] != MakeCellID(1, 1) {
			t.Errorf("got %v", got)
		}
	})
	t.Run("spanning window", func(t *testing.T) {
		got := g.CellsIntersecting(geom.Rect{MinX: 50, MinY: 50, MaxX: 250, MaxY: 150}, nil)
		if len(got) != 3*2 {
			t.Errorf("got %d cells, want 6", len(got))
		}
	})
	t.Run("window outside universe", func(t *testing.T) {
		got := g.CellsIntersecting(geom.Rect{MinX: 5000, MinY: 5000, MaxX: 6000, MaxY: 6000}, nil)
		if len(got) != 0 {
			t.Errorf("got %v, want none", got)
		}
	})
	t.Run("whole universe", func(t *testing.T) {
		got := g.CellsIntersecting(g.Universe(), nil)
		if len(got) != g.NumCells() {
			t.Errorf("got %d, want %d", len(got), g.NumCells())
		}
	})
}

// Property: every point of the universe maps to a unique cell whose rect
// contains it, and cell rects of distinct IDs do not strictly overlap.
func TestQuickLocateBijection(t *testing.T) {
	g := mustGrid(t, geom.Rect{MinX: 0, MinY: 0, MaxX: 31623, MaxY: 31623}, 2.5e6)
	f := func(xs, ys uint32) bool {
		x := float64(xs%31623) + 0.5
		y := float64(ys%31623) + 0.5
		p := geom.Pt(x, y)
		id := g.Locate(p)
		return g.Contains(id) && g.CellRect(id).Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
