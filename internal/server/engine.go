// Package server implements the SABRE alarm server engine: the
// transport-independent core that evaluates client position updates
// against the alarm index and answers with safe regions, safe periods or
// alarm pushes depending on each client's registered strategy.
//
// The engine realizes the paper's distributed partitioning scheme (§2):
// heavy, globally informed work — alarm evaluation against the R*-tree,
// safe region computation — stays on the server; clients only monitor
// their own position against the compact region the server hands them.
// One engine serves heterogeneous clients: every strategy of §5 (PRD, SP,
// MWPSR, PBSR with per-client pyramid height, OPT) can be active at once.
//
// The engine is safe for concurrent use and its update path scales with
// cores: per-client state lives in striped shards with one mutex per
// client, metric accounting is atomic, the alarm registry serves readers
// under an RWMutex, and the public-bitmap cache computes each cell once
// (singleflight) no matter how many PBSR clients enter it concurrently.
// Updates for distinct clients run in parallel; updates for one client
// serialize on that client's mutex. See DESIGN.md "Concurrency" for the
// lock ordering rules.
package server

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/grid"
	"github.com/sabre-geo/sabre/internal/gridindex"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/motion"
	"github.com/sabre-geo/sabre/internal/pyramid"
	"github.com/sabre-geo/sabre/internal/saferegion"
	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/wire"
)

// Config parameterizes an engine.
type Config struct {
	// Universe is the region covered by the grid overlay.
	Universe geom.Rect
	// CellAreaM2 is the grid cell area in square metres (paper Figure 4
	// sweeps 0.4–10 km²; 2.5 km² is the paper's optimum).
	CellAreaM2 float64
	// Model weights MWPSR safe regions; motion.Uniform() gives the
	// non-weighted variant.
	Model motion.Model
	// PyramidParams shapes PBSR bitmaps. A client's registered MaxHeight
	// caps the height per client (device heterogeneity, paper §4).
	PyramidParams pyramid.Params
	// MaxSpeed is the system-wide speed bound v_max used by safe periods.
	MaxSpeed float64
	// TickSeconds is the position sampling interval.
	TickSeconds float64
	// PrecomputePublicBitmaps enables the §4.2 optimization: per grid
	// cell, the pyramid bitmap of all public alarms is computed once and
	// reused for every PBSR client in that cell.
	PrecomputePublicBitmaps bool
	// ExhaustiveAssembly switches MWPSR to the quartic-time optimal
	// component-rectangle assembly (ablation).
	ExhaustiveAssembly bool
	// UseBucketIndex replaces the R*-tree alarm index with a uniform
	// bucket grid (ablation of the paper's §5.1 index choice).
	UseBucketIndex bool
	// SafePeriodSpeedFactor scales the v_max bound used by safe-period
	// computation. 0 or 1 is the paper's pessimistic guarantee; smaller
	// values assume clients move slower than the bound, shrinking message
	// counts at the cost of missed or late triggers (the trade-off the
	// paper cites as SP's weakness; see ablate-safeperiod).
	SafePeriodSpeedFactor float64
	// Costs is the server cost model; zero value means metrics.DefaultCosts.
	Costs metrics.CostParams
	// PendingFiredCap bounds the unacknowledged firings retained per
	// reliable session; beyond it the oldest are evicted (they stay marked
	// fired, but are no longer redelivered). 0 means store.DefaultPendingCap.
	PendingFiredCap int
	// Partition, when non-empty, marks this engine as one shard of a
	// cluster owning just this sub-rectangle of the Universe. The grid,
	// cell geometry and position validation still span the full Universe
	// (so safe regions computed near a boundary are identical to the
	// single-server ones), but the shard's registry only holds alarms
	// intersecting Partition expanded by one grid cell — the margin-
	// install rule (DESIGN.md "Clustering"). Safe-period distances are
	// clamped to that margin boundary because alarms beyond it may be
	// missing from the local registry.
	Partition geom.Rect
}

// Pusher delivers server-initiated messages (moving-target safe region
// invalidations) to a connected client. It is invoked after the engine has
// released every internal lock, so a Pusher may block, send synchronously,
// or even call back into the engine (including HandleUpdate) without
// deadlocking. Pushes for one update are delivered sequentially from the
// goroutine handling that update.
type Pusher func(user alarm.UserID, msgs []wire.Message)

// clientShards stripes the per-client state map so concurrent updates for
// distinct users rarely contend on the same map lock. Must be a power of
// two.
const clientShards = 64

type clientShard struct {
	mu sync.RWMutex
	m  map[alarm.UserID]*clientState
}

// Engine is the alarm server core.
type Engine struct {
	cfg  Config
	grid *grid.Grid
	met  *metrics.Server

	// reg is swapped wholesale by ReplaceRegistry; the pointer is atomic so
	// in-flight updates always observe a consistent registry. The registry
	// itself is internally synchronized (RWMutex read paths).
	reg atomic.Pointer[alarm.Registry]

	pusherMu sync.RWMutex
	pusher   Pusher

	// shards stripe per-client state; each clientState additionally carries
	// its own mutex so one client's updates serialize while distinct
	// clients proceed in parallel.
	shards [clientShards]clientShard

	// sessions maps resume tokens to users. Tokens are minted by
	// HandleHello and survive transport restarts because they live here in
	// the engine, not in the TCP layer. lastToken is the mint counter.
	sessMu    sync.Mutex
	sessions  map[uint64]alarm.UserID
	lastToken uint64

	// wal is the durable backend (nil for a memory-only engine). Appends
	// always happen outside every other engine lock; see persist.go.
	wal *store.Store
	// epoch is the partition-map epoch this shard last served (cluster
	// mode; zero otherwise). Advanced by SetEpoch, persisted as an
	// EpochRec, restored by NewDurable.
	epoch atomic.Uint64
	// part is the shard's partition rectangle. It starts as
	// cfg.Partition and moves when a repartition transition widens the
	// shard; an atomic pointer keeps the safe-period clamp lock-free.
	part atomic.Pointer[geom.Rect]
	// pendingCap bounds each reliable session's unacknowledged firings.
	pendingCap int
	// tick is the logical clock the lifecycle subsystem runs on (cooldown
	// gates, composite TTL expiry, anchor staleness). Advanced by SetTick;
	// it only moves forward.
	tick atomic.Uint64
	// anchors holds the last reported position (and its tick) of every
	// pair-alarm endpoint — the partner positions pair evaluation and the
	// pair safe-region transform consult. Soft state: a crash loses it and
	// the next report from each endpoint relearns it; until then pair
	// machines simply do not transition (conservative, and the shrinking
	// safe-period cap forces both endpoints to report soon).
	anchorMu sync.Mutex
	anchors  map[alarm.UserID]anchorObs
	// nowFn overrides the clock for session-expiry tests; nil means
	// time.Now. Only ExpireSessions and lastActive stamping consult it.
	nowFn func() time.Time

	// publicBitmaps caches the precomputed public-alarm pyramid region per
	// grid cell (invalidated wholesale when alarms change). Each entry is
	// computed exactly once via its sync.Once: N PBSR clients entering a
	// fresh cell concurrently wait for one computation instead of
	// recomputing the same pyramid N times.
	pbMu          sync.RWMutex
	publicBitmaps map[grid.CellID]*publicBitmapEntry

	// scratchPool recycles per-update scratch buffers for callers that do
	// not hold their own (HandleUpdate, HandleUpdateBatch, invalidation
	// pushes). See batch.go for the ownership rules.
	scratchPool sync.Pool
}

type publicBitmapEntry struct {
	once sync.Once
	reg  *pyramid.Region
	err  error
}

type clientState struct {
	// mu guards every field below. Lock ordering: a clientState mutex may
	// be held while taking registry or bitmap-cache read locks, never the
	// reverse, and no code path holds two clientState mutexes at once.
	mu sync.Mutex

	strategy  wire.Strategy
	maxHeight int
	lastPos   geom.Point
	hasPos    bool
	// heading smooths the client's direction of travel across reports for
	// the MWPSR motion weighting.
	heading motion.HeadingTracker
	// PBSR cell-recompute policy (§4.2): the cell the client's current
	// bitmap was computed for. While the client stays in that cell and
	// triggers nothing, the server answers with a bare Ack instead of
	// recomputing and re-shipping the bitmap.
	bitmapCell    grid.CellID
	hasBitmapCell bool

	// reliable marks clients enrolled through Hello (the fault-tolerant
	// session path): their alarm firings are retained in pendingFired until
	// a FiredAck arrives, and duplicate position updates are counted. Plain
	// Register clients (the simulator's fault-free path) stay fire-and-
	// forget, keeping sim.Run byte-identical to pre-session behavior.
	reliable bool
	// lastSeq is the seq of the most recent non-zero position update, used
	// to count client resends.
	lastSeq uint32
	// pendingFired holds fired alarm IDs not yet acknowledged; every
	// AlarmFired to a reliable client carries the full pending set.
	pendingFired []uint64
	// lastActive is the last time this (reliable) client was heard from;
	// the session-expiry sweep reaps sessions idle past the TTL.
	lastActive time.Time
}

// pendingPush is a computed invalidation push awaiting delivery once the
// engine has released its locks.
type pendingPush struct {
	user alarm.UserID
	msgs []wire.Message
}

// New creates an engine. The registry starts empty; install alarms through
// Registry().
func New(cfg Config) (*Engine, error) {
	if cfg.Costs == (metrics.CostParams{}) {
		cfg.Costs = metrics.DefaultCosts()
	}
	if cfg.PyramidParams == (pyramid.Params{}) {
		cfg.PyramidParams = pyramid.DefaultParams(5)
	}
	if err := cfg.PyramidParams.Validate(); err != nil {
		return nil, err
	}
	if cfg.TickSeconds <= 0 {
		return nil, fmt.Errorf("server: non-positive tick %v", cfg.TickSeconds)
	}
	if cfg.MaxSpeed <= 0 {
		return nil, fmt.Errorf("server: non-positive max speed %v", cfg.MaxSpeed)
	}
	g, err := grid.New(cfg.Universe, cfg.CellAreaM2)
	if err != nil {
		return nil, err
	}
	reg := alarm.NewRegistry()
	if cfg.UseBucketIndex {
		// Roughly one bucket per 0.5 km² keeps per-bucket alarm lists
		// short at the paper's default densities.
		buckets := int(cfg.Universe.Area() / 5e5)
		reg = alarm.NewRegistryWithIndex(gridindex.New(cfg.Universe, buckets))
	}
	pendingCap := cfg.PendingFiredCap
	if pendingCap <= 0 {
		pendingCap = store.DefaultPendingCap
	}
	e := &Engine{
		cfg:           cfg,
		grid:          g,
		met:           metrics.NewServer(cfg.Costs),
		pendingCap:    pendingCap,
		publicBitmaps: make(map[grid.CellID]*publicBitmapEntry),
		anchors:       make(map[alarm.UserID]anchorObs),
	}
	e.reg.Store(reg)
	part := cfg.Partition
	e.part.Store(&part)
	e.scratchPool.New = func() any { return NewUpdateScratch() }
	for i := range e.shards {
		e.shards[i].m = make(map[alarm.UserID]*clientState)
	}
	return e, nil
}

// Registry exposes the alarm store for installation and inspection.
func (e *Engine) Registry() *alarm.Registry { return e.reg.Load() }

// ReplaceRegistry swaps in a restored alarm registry (snapshot load at
// startup) and drops any precomputed public bitmaps. Updates already in
// flight finish against the registry they started with.
func (e *Engine) ReplaceRegistry(r *alarm.Registry) {
	e.reg.Store(r)
	e.InvalidatePublicBitmaps()
}

// Grid exposes the grid overlay.
func (e *Engine) Grid() *grid.Grid { return e.grid }

// Epoch returns the partition-map epoch this shard last served (zero
// outside a cluster).
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// SetEpoch advances the shard's partition-map epoch and write-ahead
// logs it. Epochs only move forward; a stale value is a no-op.
func (e *Engine) SetEpoch(epoch uint64) error {
	for {
		cur := e.epoch.Load()
		if epoch <= cur {
			return nil
		}
		if e.epoch.CompareAndSwap(cur, epoch) {
			break
		}
	}
	return e.logRecord(store.EpochRec{Epoch: epoch})
}

// Partition returns the shard's current partition rectangle (empty
// outside a cluster).
func (e *Engine) Partition() geom.Rect { return *e.part.Load() }

// SetPartition moves the shard's partition rectangle after a
// repartition transition (a merge widens it to the parent rectangle).
// Only the safe-period margin clamp consults the rectangle, and the
// clamp stays sound for any rectangle whose margin covers the alarms
// installed locally — the cluster adopts alarms for the new rectangle
// before calling this.
func (e *Engine) SetPartition(r geom.Rect) {
	p := r
	e.part.Store(&p)
}

// Metrics returns the server counters. The counters are atomic: read a
// consistent copy with Metrics().Snapshot(), safe to call concurrently
// with in-flight updates.
func (e *Engine) Metrics() *metrics.Server { return e.met }

// SetPusher installs the callback used to push fresh monitoring state to
// clients whose safe regions were invalidated by a moving alarm target.
// Without a pusher, moving-target alarms require their subscribers to use
// frequent reporting (the target's motion cannot reach silent clients).
func (e *Engine) SetPusher(p Pusher) {
	e.pusherMu.Lock()
	defer e.pusherMu.Unlock()
	e.pusher = p
}

func (e *Engine) getPusher() Pusher {
	e.pusherMu.RLock()
	defer e.pusherMu.RUnlock()
	return e.pusher
}

// InvalidatePublicBitmaps drops the precomputed public-alarm bitmaps; call
// after installing or removing public alarms.
func (e *Engine) InvalidatePublicBitmaps() {
	e.pbMu.Lock()
	defer e.pbMu.Unlock()
	e.publicBitmaps = make(map[grid.CellID]*publicBitmapEntry)
}

// shardFor returns the shard striping user's client state.
func (e *Engine) shardFor(user alarm.UserID) *clientShard {
	return &e.shards[uint64(user)&(clientShards-1)]
}

// clientFor returns the state for user, creating it with the given default
// strategy when absent.
func (e *Engine) clientFor(user alarm.UserID, defaultStrategy wire.Strategy) *clientState {
	sh := e.shardFor(user)
	sh.mu.RLock()
	st := sh.m[user]
	sh.mu.RUnlock()
	if st != nil {
		return st
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st = sh.m[user]; st == nil {
		st = &clientState{strategy: defaultStrategy}
		sh.m[user] = st
	}
	return st
}

// Register enrolls (or re-enrolls) a client with its strategy and, for
// PBSR, the maximum pyramid height its hardware can decode.
func (e *Engine) Register(m wire.Register) error {
	switch m.Strategy {
	case wire.StrategyPeriodic, wire.StrategySafePeriod, wire.StrategyMWPSR,
		wire.StrategyPBSR, wire.StrategyOptimal:
	default:
		return fmt.Errorf("server: unknown strategy %d", m.Strategy)
	}
	user := alarm.UserID(m.User)
	sh := e.shardFor(user)
	sh.mu.Lock()
	// Registration is not charged as uplink: the paper's message counts
	// are location messages only, and registration happens once per client.
	// Re-enrollment replaces the state; updates already holding the old
	// state finish against it.
	sh.m[user] = &clientState{
		strategy:  m.Strategy,
		maxHeight: int(m.MaxHeight),
	}
	sh.mu.Unlock()
	return e.logRecord(store.RegisterRec{User: m.User, Strategy: m.Strategy, MaxHeight: m.MaxHeight})
}

// HandleUpdate processes one client position report and returns the
// messages to send back: any AlarmFired notification first, then the
// strategy-specific monitoring state (safe region, safe period or alarm
// push). Unknown clients are treated as periodic.
//
// HandleUpdate is safe for concurrent use; updates for distinct users run
// in parallel, updates for one user serialize.
func (e *Engine) HandleUpdate(u wire.PositionUpdate) ([]wire.Message, error) {
	if err := e.validatePosition(u.Pos); err != nil {
		return nil, err
	}
	user := alarm.UserID(u.User)
	st := e.clientFor(user, wire.StrategyPeriodic)
	reg := e.reg.Load()
	e.met.AddUplink(wire.SizePositionUpdate)

	pushes := e.moveTargetPushes(reg, user, u.Pos)

	sc := e.getScratch()
	st.mu.Lock()
	out, newFired, newTrans, err := e.processUpdate(reg, u, user, st, sc, nil, false, true)
	st.mu.Unlock()
	e.putScratch(sc)

	// Write-ahead discipline: firings are logged after the state mutation
	// (outside st.mu — see persist.go for why) but before the response is
	// released. If the append fails the response is withheld; the client
	// retries against the recovered server, which re-derives the firing.
	if err == nil {
		if lerr := e.logFired(u.User, newFired, newTrans); lerr != nil {
			return nil, lerr
		}
		// Cross-user invalidation: the report may move this user closer to
		// (or away from) pair partners resident here; wake their machines.
		if reg.IsPairEndpoint(user) {
			wrecs, wpushes := e.wakePartners(reg, user)
			if lerr := e.logRecords(wrecs); lerr != nil {
				return nil, lerr
			}
			pushes = append(pushes, wpushes...)
		}
	}

	// Deliver invalidation pushes outside all engine locks: the Pusher may
	// block or re-enter the engine freely.
	e.deliverPushes(pushes)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// moveTargetPushes handles moving-target alarms (paper §1 classes 2 and
// 3): when the reporting user is an alarm target, re-anchor those alarm
// regions to the new position and compute fresh monitoring state for
// affected subscribers — their held safe regions no longer prove anything.
// Push messages are computed now (the mover's own state is not locked) but
// must be delivered by the caller only after every lock is released.
func (e *Engine) moveTargetPushes(reg *alarm.Registry, user alarm.UserID, pos geom.Point) []pendingPush {
	if !reg.IsTarget(user) {
		return nil
	}
	movedRegions := make(map[alarm.ID]geom.Rect)
	for _, id := range reg.MoveTarget(user, pos) {
		if a, ok := reg.Get(id); ok {
			movedRegions[id] = a.Region // region at its new anchor
		}
	}
	if len(movedRegions) == 0 {
		return nil
	}
	return e.collectInvalidations(reg, user, movedRegions)
}

// deliverPushes hands invalidation pushes to the pusher; callers must have
// released every engine lock first (the Pusher may block or re-enter the
// engine freely).
func (e *Engine) deliverPushes(pushes []pendingPush) {
	if len(pushes) == 0 {
		return
	}
	pusher := e.getPusher()
	if pusher == nil {
		return
	}
	for _, p := range pushes {
		pusher(p.user, p.msgs)
	}
}

// processUpdate runs alarm evaluation and the strategy response for one
// update, appending the response messages to out and returning it plus the
// alarm IDs that newly fired (for the caller to log durably). The caller
// holds st.mu and supplies sc, whose buffers carry every intermediate
// computation.
//
// With boxPointers the response messages are the scratch's embedded
// message fields boxed by pointer — zero heap traffic, but the result
// aliases sc and must be consumed before sc is reused (and must never
// travel through an in-process transport.Pipe, which retains messages
// un-serialized). Without it every message is a self-contained value.
//
// withStrategy selects the full strategy response; without it only alarm
// firings are answered (a bare Ack when nothing fired) — the treatment of
// non-final updates of a batch run, whose monitoring state would be stale
// on arrival anyway.
func (e *Engine) processUpdate(reg *alarm.Registry, u wire.PositionUpdate, user alarm.UserID, st *clientState, sc *UpdateScratch, out []wire.Message, boxPointers, withStrategy bool) ([]wire.Message, []uint64, []uint64, error) {
	// Alarm evaluation against the R*-tree (every strategy does this; it
	// is the "alarm processing" bucket of Figures 4(b)/6(d)).
	var candidates int
	var accesses uint64
	sc.triggered, sc.raw, candidates, accesses = reg.EvaluateInto(u.Pos, user, sc.triggered, sc.raw)
	e.met.AddAlarmEvaluation(accesses, uint64(candidates))

	// fresh means this update is newer than anything evaluated so far.
	// Redelivered or reordered reports (session resends, faulty links)
	// still get full one-shot evaluation — MarkFired is monotone, so
	// re-processing is harmless — but must not reach the lifecycle
	// machines below: re-entering a continuous region from a stale inside
	// position after an Exit would mint a spurious occurrence.
	fresh := u.Seq == 0 || st.lastSeq == 0 || int32(u.Seq-st.lastSeq) > 0
	if u.Seq != 0 {
		if st.reliable && u.Seq == st.lastSeq {
			e.met.AddRedeliveredUpdates(1)
		}
		if fresh {
			st.lastSeq = u.Seq
		}
	}

	// newFired is freshly allocated only when something triggered: it
	// outlives this call (WAL record, AlarmFired payload), so it cannot
	// live in the scratch — and the steady state has no firings.
	var newFired []uint64
	if len(sc.triggered) > 0 {
		newFired = make([]uint64, 0, len(sc.triggered))
		for _, id := range sc.triggered {
			// One-shot semantics: retire the pair before recomputing the
			// safe region so the fired alarm becomes free space (§4.2).
			reg.MarkFired(id, user)
			newFired = append(newFired, uint64(id))
		}
		e.met.AddAlarmsTriggered(uint64(len(newFired)))
	}

	// Lifecycle machines (continuous/pair/composite) run on the same raw
	// index hits. Their packed transition events ride the fired-ID
	// machinery below but are logged as TransitionRecs by the caller, not
	// as FiredRec entries.
	var newTrans []uint64
	if reg.HasLifecycle() && fresh {
		tick := e.tick.Load()
		if reg.IsPairEndpoint(user) {
			e.observeAnchor(user, u.Pos, tick)
		}
		newTrans = reg.EvaluateLifecycleInto(user, u.Pos, tick, sc.raw, e.anchorOf, nil)
		if len(newTrans) > 0 {
			e.met.AddAlarmTransitions(uint64(len(newTrans)))
		}
	}
	delivered := newFired
	if len(newTrans) > 0 {
		delivered = append(append(make([]uint64, 0, len(newFired)+len(newTrans)), newFired...), newTrans...)
	}

	firedIDs := delivered
	if st.reliable {
		st.lastActive = e.now()
		// Exactly-once delivery: carry every unacknowledged firing on each
		// response until the client's FiredAck clears it. MarkFired keeps
		// pendingFired and newFired disjoint (a retired pair never
		// re-triggers), so the concatenation has no duplicates.
		if len(st.pendingFired) > 0 {
			e.met.AddFiredRedeliveries(uint64(len(st.pendingFired)))
		}
		firedIDs = append(append(make([]uint64, 0, len(st.pendingFired)+len(delivered)), st.pendingFired...), delivered...)
		// Bound the unacknowledged set: evict oldest-first past the cap.
		// Evicted ids stay marked fired in the registry (never re-trigger);
		// they are simply no longer redelivered.
		if len(firedIDs) > e.pendingCap {
			drop := len(firedIDs) - e.pendingCap
			firedIDs = firedIDs[drop:]
			e.met.AddFiredEvictions(uint64(drop))
		}
		st.pendingFired = firedIDs
	}
	if len(firedIDs) > 0 {
		if boxPointers {
			sc.firedMsg = wire.AlarmFired{Seq: u.Seq, Alarms: firedIDs}
			out = e.send(out, &sc.firedMsg)
		} else {
			out = e.send(out, wire.AlarmFired{Seq: u.Seq, Alarms: firedIDs})
		}
	}

	if !withStrategy {
		// Non-final update of a batch run: its monitoring state would be
		// superseded within the same reply. Acknowledge it (unless an
		// AlarmFired already does) so the client retires the queued report.
		// The cap still rides along: the batch's final message carries the
		// authoritative one, but an ack processed in isolation must never
		// leave a pair endpoint uncapped.
		if len(firedIDs) == 0 {
			if boxPointers {
				sc.ackMsg = wire.Ack{Seq: u.Seq, Cap: e.regionCap(reg, user, u.Pos)}
				out = e.send(out, &sc.ackMsg)
			} else {
				out = e.send(out, wire.Ack{Seq: u.Seq, Cap: e.regionCap(reg, user, u.Pos)})
			}
		}
		st.lastPos = u.Pos
		st.hasPos = true
		return out, newFired, newTrans, nil
	}

	switch st.strategy {
	case wire.StrategyPeriodic:
		// Server-centric periodic evaluation: nothing goes back.
	case wire.StrategySafePeriod:
		if boxPointers {
			sc.spMsg = e.safePeriodFor(reg, u)
			out = e.send(out, &sc.spMsg)
		} else {
			out = e.send(out, e.safePeriodFor(reg, u))
		}
	case wire.StrategyMWPSR:
		if boxPointers {
			sc.rectMsg = e.rectRegionFor(reg, u, st, sc)
			out = e.send(out, &sc.rectMsg)
		} else {
			out = e.send(out, e.rectRegionFor(reg, u, st, sc))
		}
	case wire.StrategyPBSR:
		cellID := e.grid.Locate(u.Pos)
		sameCell := st.hasBitmapCell && st.bitmapCell == cellID
		switch {
		case sameCell && len(sc.triggered) == 0 && len(newTrans) == 0:
			// §4.2: no recomputation while the client stays in its base
			// cell without triggering; a small Ack resumes monitoring.
			// When earlier triggers made the client's bitmap stale (fired
			// alarms still appear blocked), a rectangular patch restores
			// coverage around the client instead.
			if reg.AnyFiredIn(e.grid.CellRect(cellID), user) {
				out = e.send(out, e.rectRegionFor(reg, u, st, sc))
			} else if boxPointers {
				sc.ackMsg = wire.Ack{Seq: u.Seq, Cap: e.regionCap(reg, user, u.Pos)}
				out = e.send(out, &sc.ackMsg)
			} else {
				out = e.send(out, wire.Ack{Seq: u.Seq, Cap: e.regionCap(reg, user, u.Pos)})
			}
		case sameCell && len(newTrans) == 0:
			// §4.2 quick update: the triggered alarm just became free
			// space. Instead of recomputing and re-shipping the bitmap,
			// send a small rectangular patch around the client that avoids
			// every remaining alarm; the client ORs it into its region.
			// A lifecycle transition must NOT take this path: a patch only
			// ever widens the client's safe area, while an enter/exit flips
			// which side of the region is provable — the full bitmap below
			// re-derives it from the new phase's obstacle set.
			out = e.send(out, e.rectRegionFor(reg, u, st, sc))
		default:
			msg, err := e.bitmapRegionFor(reg, u, st, cellID)
			if err != nil {
				return nil, nil, nil, err
			}
			st.bitmapCell = cellID
			st.hasBitmapCell = true
			out = e.send(out, msg)
		}
	case wire.StrategyOptimal:
		out = e.send(out, e.alarmPushFor(reg, u))
	}

	// Pair endpoints get their safe-period cap folded into the region /
	// ack message itself (the Cap field): no static region stays sound
	// against a moving partner, so the region's proof is time-limited —
	// and a cap shipped as a separate message could be dropped while the
	// region is delivered, leaving the client provably safe forever. SP
	// folds the cap into its own safe period; periodic clients report
	// every tick anyway.

	st.lastPos = u.Pos
	st.hasPos = true
	return out, newFired, newTrans, nil
}

// validatePosition rejects positions the geometry cannot handle: NaN and
// infinities poison every downstream computation silently, and positions
// far outside the universe indicate a confused or hostile client rather
// than grid-fringe drift.
func (e *Engine) validatePosition(p geom.Point) error {
	if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
		return fmt.Errorf("server: non-finite position %v", p)
	}
	// Allow one cell side of slack beyond the universe.
	slack := e.grid.CellSide()
	if !e.cfg.Universe.Expand(slack).Contains(p) {
		return fmt.Errorf("server: position %v outside universe %v", p, e.cfg.Universe)
	}
	return nil
}

// send charges a downlink message and appends it.
func (e *Engine) send(out []wire.Message, m wire.Message) []wire.Message {
	e.met.AddDownlink(wire.EncodedSize(m))
	return append(out, m)
}

// collectInvalidations recomputes monitoring state for every online
// subscriber affected by moved alarms and returns the pushes to deliver.
// Server-initiated messages carry Seq 0, which clients accept without
// treating them as a reply. Each affected client's mutex is taken one at a
// time (the mover's state is not locked here), so two movers invalidating
// each other's subscribers cannot deadlock.
func (e *Engine) collectInvalidations(reg *alarm.Registry, mover alarm.UserID, moved map[alarm.ID]geom.Rect) []pendingPush {
	if e.getPusher() == nil {
		return nil
	}
	affected := make(map[alarm.UserID]bool)
	for id := range moved {
		a, ok := reg.Get(id)
		if !ok {
			continue
		}
		if subs := reg.SubscribersOf(id); subs != nil {
			for _, s := range subs {
				affected[s] = true
			}
			continue
		}
		// Public moving-target alarm: push to every online client whose
		// current cell intersects the alarm's new region. Clients near the
		// vacated location keep a safe region that merely under-covers
		// (the alarm is gone from there), which is conservative, not
		// unsafe; they refresh on their next report.
		for user, st := range e.clientsSnapshot() {
			if affected[user] || user == mover {
				continue
			}
			st.mu.Lock()
			hasPos, lastPos := st.hasPos, st.lastPos
			st.mu.Unlock()
			if !hasPos {
				continue
			}
			cell := e.grid.CellRect(e.grid.Locate(lastPos))
			if cell.Intersects(a.Region) || cell.Intersects(moved[id]) {
				affected[user] = true
			}
		}
	}
	delete(affected, mover) // the mover's own update handles itself
	var pushes []pendingPush
	sc := e.getScratch()
	defer e.putScratch(sc)
	for user := range affected {
		sh := e.shardFor(user)
		sh.mu.RLock()
		st := sh.m[user]
		sh.mu.RUnlock()
		if st == nil {
			continue
		}
		st.mu.Lock()
		msgs := e.invalidationFor(reg, user, st, sc)
		st.mu.Unlock()
		if len(msgs) == 0 {
			continue
		}
		for _, m := range msgs {
			e.met.AddDownlink(wire.EncodedSize(m))
		}
		pushes = append(pushes, pendingPush{user: user, msgs: msgs})
	}
	return pushes
}

// invalidationFor computes the fresh monitoring state pushed to one
// affected client (a region message whose Cap field, for pair endpoints,
// time-limits it). The caller holds st.mu. Returns
// nil when the client has no pushable state (no position yet, or a
// strategy that re-reports on its own).
func (e *Engine) invalidationFor(reg *alarm.Registry, user alarm.UserID, st *clientState, sc *UpdateScratch) []wire.Message {
	if !st.hasPos {
		return nil
	}
	fake := wire.PositionUpdate{User: uint64(user), Seq: 0, Pos: st.lastPos}
	var msgs []wire.Message
	switch st.strategy {
	case wire.StrategySafePeriod:
		return []wire.Message{e.safePeriodFor(reg, fake)}
	case wire.StrategyMWPSR:
		msgs = append(msgs, e.rectRegionFor(reg, fake, st, sc))
	case wire.StrategyPBSR:
		cellID := e.grid.Locate(st.lastPos)
		bm, err := e.bitmapRegionFor(reg, fake, st, cellID)
		if err != nil {
			return nil
		}
		st.bitmapCell = cellID
		st.hasBitmapCell = true
		msgs = append(msgs, bm)
	case wire.StrategyOptimal:
		msgs = append(msgs, e.alarmPushFor(reg, fake))
	default:
		return nil // periodic clients re-report next tick anyway
	}
	return msgs
}

func (e *Engine) safePeriodFor(reg *alarm.Registry, u wire.PositionUpdate) wire.SafePeriod {
	dist, accesses := reg.NearestRelevantDistCounted(u.Pos, alarm.UserID(u.User))
	e.met.AddSafePeriodComputation(accesses)
	// A cluster shard only installs alarms intersecting its expanded
	// partition, so the local nearest-alarm distance can over-estimate:
	// the true nearest alarm may live on a neighbour shard. Any alarm
	// missing locally lies wholly outside the margin rectangle, so its
	// distance from u.Pos is at least the interior distance to that
	// boundary — clamp to it and the safe period stays globally sound.
	if p := *e.part.Load(); !p.Empty() {
		m := p.Expand(e.grid.CellSide())
		interior := math.Min(
			math.Min(u.Pos.X-m.MinX, m.MaxX-u.Pos.X),
			math.Min(u.Pos.Y-m.MinY, m.MaxY-u.Pos.Y),
		)
		if interior < 0 {
			interior = 0
		}
		if interior < dist {
			dist = interior
		}
	}
	vmax := e.cfg.MaxSpeed
	if f := e.cfg.SafePeriodSpeedFactor; f > 0 {
		vmax *= f
	}
	ticks := uint32(saferegion.SafePeriodTicks(dist, vmax, e.cfg.TickSeconds, 1<<30))
	// Pair alarms bound the period too: the partner closes distance at up
	// to v_max as well, so their margin shrinks twice as fast.
	if reg.HasLifecycle() {
		if cap, ok := e.pairCapTicks(reg, alarm.UserID(u.User), u.Pos); ok && cap < ticks {
			ticks = cap
		}
	}
	return wire.SafePeriod{Seq: u.Seq, Ticks: ticks}
}

func (e *Engine) rectRegionFor(reg *alarm.Registry, u wire.PositionUpdate, st *clientState, sc *UpdateScratch) wire.RectRegion {
	user := alarm.UserID(u.User)
	cellRect := e.grid.CellRect(e.grid.Locate(u.Pos))
	var accesses uint64
	sc.relevant, sc.raw, accesses = reg.RelevantInInto(cellRect, user, sc.relevant[:0], sc.raw)
	e.met.AddSafeRegionIndexWork(accesses)
	sc.rects = sc.rects[:0]
	if reg.HasLifecycle() {
		sc.rects = e.lifecycleObstacles(reg, user, cellRect, sc.relevant, sc.rects)
	} else {
		for _, a := range sc.relevant {
			sc.rects = append(sc.rects, a.Region)
		}
	}
	model := e.cfg.Model
	heading, ok := st.heading.Observe(u.Pos)
	if !ok {
		model = motion.Uniform() // no sustained motion: no heading info
	}
	res := saferegion.ComputeRectScratch(u.Pos, cellRect, sc.rects, saferegion.RectOptions{
		Model:      model,
		Heading:    heading,
		Exhaustive: e.cfg.ExhaustiveAssembly,
	}, &sc.rect)
	e.met.AddRectComputation(res.Candidates, res.Corners, res.Clips)
	return wire.RectRegion{Seq: u.Seq, Rect: res.Rect, Cap: e.regionCap(reg, user, u.Pos)}
}

func (e *Engine) bitmapRegionFor(reg *alarm.Registry, u wire.PositionUpdate, st *clientState, cellID grid.CellID) (wire.BitmapRegion, error) {
	user := alarm.UserID(u.User)
	cellRect := e.grid.CellRect(cellID)
	params := e.cfg.PyramidParams
	if st.maxHeight > 0 && st.maxHeight < params.Height {
		params.Height = st.maxHeight
	}

	var (
		rects    []geom.Rect
		pre      *pyramid.Region
		err      error
		accesses uint64
	)
	lifecycle := reg.HasLifecycle()
	// The shared public bitmap cannot reflect this user's fired public
	// alarms; use it only when the user has none in this cell.
	usePre := false
	if e.cfg.PrecomputePublicBitmaps {
		firedPublic, fpAccesses := reg.AnyFiredPublicInCounted(cellRect, user)
		accesses += fpAccesses
		usePre = !firedPublic
	}
	if usePre {
		pre, err = e.publicBitmapFor(reg, cellID, cellRect)
		if err != nil {
			return wire.BitmapRegion{}, err
		}
		nonPublic, npAccesses := reg.RelevantNonPublicInCounted(cellRect, user, nil)
		accesses += npAccesses
		if lifecycle {
			rects = e.lifecycleObstacles(reg, user, cellRect, nonPublic, rects)
		} else {
			for _, a := range nonPublic {
				rects = append(rects, a.Region)
			}
		}
	} else {
		relevant, rAccesses := reg.RelevantInCounted(cellRect, user, nil)
		accesses += rAccesses
		if lifecycle {
			rects = e.lifecycleObstacles(reg, user, cellRect, relevant, rects)
		} else {
			for _, a := range relevant {
				rects = append(rects, a.Region)
			}
		}
	}
	e.met.AddSafeRegionIndexWork(accesses)
	res, err := saferegion.ComputeBitmap(cellRect, params, rects, pre)
	if err != nil {
		return wire.BitmapRegion{}, err
	}
	e.met.AddBitmapComputation(res.IntersectionTests)
	msg := wire.FromBitmap(u.Seq, res.Bitmap)
	msg.Cap = e.regionCap(reg, user, u.Pos)
	return msg, nil
}

// publicBitmapFor returns (computing and caching on first use) the pyramid
// region of all public alarms in a cell, at the engine's full height so it
// can serve clients of any capability. Concurrent callers for the same
// fresh cell wait on a single computation (singleflight) instead of
// recomputing the same pyramid; its cost is charged exactly once per cell.
func (e *Engine) publicBitmapFor(reg *alarm.Registry, id grid.CellID, cellRect geom.Rect) (*pyramid.Region, error) {
	e.pbMu.RLock()
	ent := e.publicBitmaps[id]
	e.pbMu.RUnlock()
	if ent == nil {
		e.pbMu.Lock()
		if ent = e.publicBitmaps[id]; ent == nil {
			ent = &publicBitmapEntry{}
			e.publicBitmaps[id] = ent
		}
		e.pbMu.Unlock()
	}
	ent.once.Do(func() {
		publics, accesses := reg.PublicInCounted(cellRect, nil)
		// The shared bitmap is computed without a bit budget: it never goes
		// on the wire, and keeping it exact makes the per-user budgeted
		// encode bit-identical to a direct computation.
		params := e.cfg.PyramidParams
		params.MaxBits = 0
		res, err := saferegion.ComputeBitmap(cellRect, params, publics, nil)
		if err != nil {
			ent.err = err
			return
		}
		// The precomputation itself is charged once per cell; this is the
		// offline step of §4.2.
		e.met.AddSafeRegionIndexWork(accesses)
		e.met.AddBitmapComputation(res.IntersectionTests)
		ent.reg, ent.err = pyramid.Decode(res.Bitmap)
	})
	return ent.reg, ent.err
}

func (e *Engine) alarmPushFor(reg *alarm.Registry, u wire.PositionUpdate) wire.AlarmPush {
	user := alarm.UserID(u.User)
	cellRect := e.grid.CellRect(e.grid.Locate(u.Pos))
	relevant, accesses := reg.RelevantInCounted(cellRect, user, nil)
	e.met.AddSafeRegionIndexWork(accesses)
	push := wire.AlarmPush{Seq: u.Seq, Cell: cellRect, Cap: e.regionCap(reg, user, u.Pos), Alarms: make([]wire.AlarmInfo, len(relevant))}
	for i, a := range relevant {
		push.Alarms[i] = wire.AlarmInfo{ID: uint64(a.ID), Region: a.Region}
	}
	return push
}

// clientsSnapshot copies the (user, state) pairs out of every shard so
// callers can iterate without holding shard locks.
func (e *Engine) clientsSnapshot() map[alarm.UserID]*clientState {
	out := make(map[alarm.UserID]*clientState)
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for u, st := range sh.m {
			out[u] = st
		}
		sh.mu.RUnlock()
	}
	return out
}
