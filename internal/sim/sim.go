// Package sim runs end-to-end SABRE experiments: it wires a road-network
// mobility trace, a generated alarm workload, the server engine and a
// fleet of per-strategy clients, steps them tick by tick, and returns the
// evaluation metrics the paper reports (client→server messages, downstream
// bandwidth, client energy, server processing time) together with the
// exact set of delivered (user, alarm, tick) triggers.
//
// Determinism: for a fixed Workload, every strategy run sees bit-for-bit
// the same vehicle trace and alarm set, so trigger sets are directly
// comparable — the paper's "100% of the alarms are triggered in all
// scenarios" (§5) becomes an assertable equality against the periodic
// (PRD) ground truth.
package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/client"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/mobility"
	"github.com/sabre-geo/sabre/internal/motion"
	"github.com/sabre-geo/sabre/internal/pyramid"
	"github.com/sabre-geo/sabre/internal/roadnet"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/stats"
	"github.com/sabre-geo/sabre/internal/wire"
)

// WorkloadConfig describes one experiment workload (paper §5.1 defaults:
// 1000 km², 10,000 vehicles, 1 h at 1 Hz, 10,000 alarms, 10% public,
// private:shared 2:1).
type WorkloadConfig struct {
	Seed           int64
	Vehicles       int
	DurationTicks  int
	NumAlarms      int
	PublicFraction float64
	// SharedSubscribers is how many extra subscribers each shared alarm
	// gets besides its owner.
	SharedSubscribers int
	// Alarm region side lengths in metres, drawn uniformly.
	AlarmMinSide, AlarmMaxSide float64
	// Network selects the road substrate; zero value means the paper-scale
	// default network.
	Network roadnet.Config
	// Lifecycle sets the fraction of alarms generated as each lifecycle
	// kind; the remainder (and the public prefix, which lifecycle kinds
	// cannot occupy) stays one-shot. The zero value reproduces the
	// pre-lifecycle workload exactly.
	Lifecycle LifecycleMix
}

// LifecycleMix is the per-kind alarm fraction of a mixed workload. The
// benchmark mix is 70% one-shot / 15% continuous / 10% pair / 5%
// composite: {Continuous: 0.15, Pair: 0.10, Composite: 0.05}.
type LifecycleMix struct {
	Continuous float64
	Pair       float64
	Composite  float64
}

func (m LifecycleMix) sum() float64 { return m.Continuous + m.Pair + m.Composite }

// DefaultWorkload returns the paper-scale configuration.
func DefaultWorkload(seed int64) WorkloadConfig {
	return WorkloadConfig{
		Seed:              seed,
		Vehicles:          10000,
		DurationTicks:     3600,
		NumAlarms:         10000,
		PublicFraction:    0.10,
		SharedSubscribers: 2,
		AlarmMinSide:      100,
		AlarmMaxSide:      400,
		Network:           roadnet.DefaultConfig(seed),
	}
}

// SmallWorkload returns a laptop-scale configuration for tests and quick
// benchmarks, preserving the default's densities (vehicles and alarms per
// km²) on a smaller universe.
func SmallWorkload(seed int64) WorkloadConfig {
	return WorkloadConfig{
		Seed:              seed,
		Vehicles:          150,
		DurationTicks:     400,
		NumAlarms:         150,
		PublicFraction:    0.10,
		SharedSubscribers: 2,
		AlarmMinSide:      100,
		AlarmMaxSide:      400,
		Network:           roadnet.Config{Side: 4000, Spacing: 500, Jitter: 0.25, DropProb: 0.12, Seed: seed},
	}
}

// Validate reports configuration problems.
func (c WorkloadConfig) Validate() error {
	if c.Vehicles <= 0 || c.DurationTicks <= 0 {
		return fmt.Errorf("sim: need positive vehicles and duration")
	}
	if c.NumAlarms < 0 {
		return fmt.Errorf("sim: negative alarm count")
	}
	if c.PublicFraction < 0 || c.PublicFraction > 1 {
		return fmt.Errorf("sim: public fraction %v out of [0,1]", c.PublicFraction)
	}
	if c.AlarmMinSide <= 0 || c.AlarmMaxSide < c.AlarmMinSide {
		return fmt.Errorf("sim: alarm sides [%v, %v] invalid", c.AlarmMinSide, c.AlarmMaxSide)
	}
	m := c.Lifecycle
	if m.Continuous < 0 || m.Pair < 0 || m.Composite < 0 || m.sum() > 1 {
		return fmt.Errorf("sim: lifecycle mix %+v out of range", m)
	}
	if m.Pair > 0 && c.Vehicles < 2 {
		return fmt.Errorf("sim: pair alarms need at least two vehicles")
	}
	return nil
}

// Workload is a fully materialized experiment input, reusable across
// strategy runs.
type Workload struct {
	Config WorkloadConfig
	Net    *roadnet.Network
	Alarms []alarm.Alarm
}

// BuildWorkload generates the road network and alarm set.
func BuildWorkload(cfg WorkloadConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net, err := roadnet.Generate(cfg.Network)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 0x5eed))
	bounds := net.Bounds()
	alarms := make([]alarm.Alarm, 0, cfg.NumAlarms)
	// Lifecycle kinds occupy the tail of the index range; none of them
	// may be Public, so the public prefix shrinks if the mix crowds it.
	numCont := int(float64(cfg.NumAlarms) * cfg.Lifecycle.Continuous)
	numPair := int(float64(cfg.NumAlarms) * cfg.Lifecycle.Pair)
	numComp := int(float64(cfg.NumAlarms) * cfg.Lifecycle.Composite)
	oneShot := cfg.NumAlarms - numCont - numPair - numComp
	numPublic := int(float64(cfg.NumAlarms) * cfg.PublicFraction)
	if numPublic > oneShot {
		numPublic = oneShot
	}
	// Non-public one-shot alarms split private:shared = 2:1 (paper §5.1).
	numShared := (oneShot - numPublic) / 3
	for i := 0; i < cfg.NumAlarms; i++ {
		side := cfg.AlarmMinSide + rng.Float64()*(cfg.AlarmMaxSide-cfg.AlarmMinSide)
		target := geom.Pt(
			bounds.MinX+rng.Float64()*bounds.Width(),
			bounds.MinY+rng.Float64()*bounds.Height(),
		)
		owner := alarm.UserID(rng.Intn(cfg.Vehicles) + 1)
		switch {
		case i >= oneShot+numCont+numPair:
			// Composite risk zone: both factors must overlap at the
			// target to clear the threshold.
			alarms = append(alarms, alarm.Alarm{
				Scope: alarm.Private, Owner: owner, Kind: alarm.KindComposite,
				Factors: []alarm.Factor{
					{Region: geom.RectAround(target, side), Weight: 0.6},
					{Center: target, Radius: side / 2, Weight: 0.6},
				},
				Threshold: 1.0,
			})
			continue
		case i >= oneShot+numCont:
			// Pair proximity: the region is derived from the anchor's
			// position at evaluation time, never generated here.
			anchor := alarm.UserID(rng.Intn(cfg.Vehicles) + 1)
			for anchor == owner {
				anchor = alarm.UserID(rng.Intn(cfg.Vehicles) + 1)
			}
			alarms = append(alarms, alarm.Alarm{
				Scope: alarm.Shared, Owner: owner, Subscribers: []alarm.UserID{owner},
				Kind: alarm.KindPair, Anchor: anchor, Radius: side,
			})
			continue
		case i >= oneShot:
			alarms = append(alarms, alarm.Alarm{
				Scope: alarm.Private, Owner: owner, Kind: alarm.KindContinuous,
				Region: geom.RectAround(target, side),
			})
			continue
		}
		a := alarm.Alarm{Owner: owner, Region: geom.RectAround(target, side)}
		switch {
		case i < numPublic:
			a.Scope = alarm.Public
		case i < numPublic+numShared:
			a.Scope = alarm.Shared
			subs := []alarm.UserID{a.Owner}
			for s := 0; s < cfg.SharedSubscribers; s++ {
				subs = append(subs, alarm.UserID(rng.Intn(cfg.Vehicles)+1))
			}
			a.Subscribers = subs
		default:
			a.Scope = alarm.Private
		}
		alarms = append(alarms, a)
	}
	return &Workload{Config: cfg, Net: net, Alarms: alarms}, nil
}

// StrategyConfig selects the processing approach for one run.
type StrategyConfig struct {
	Strategy wire.Strategy
	// Model is the MWPSR motion model; the zero value (uniform) is the
	// paper's non-weighted variant.
	Model motion.Model
	// PyramidHeight is the PBSR height (h=1 is the GBSR); 0 defaults to 5,
	// the paper's comparison configuration.
	PyramidHeight int
	// BitmapMaxBits caps PBSR bitmap sizes (paper §4.2's size/coverage
	// trade-off); 0 defaults to 2048 bits (256 bytes on the wire).
	BitmapMaxBits int
	// CellAreaKM2 is the grid cell size; 0 defaults to 2.5 km², the
	// paper's optimum.
	CellAreaKM2 float64
	// PrecomputePublicBitmaps enables the §4.2 PBSR optimization.
	PrecomputePublicBitmaps bool
	// ExhaustiveAssembly switches MWPSR to the optimal quartic assembly.
	ExhaustiveAssembly bool
	// BucketIndex swaps the R*-tree alarm index for a uniform bucket grid
	// (index ablation).
	BucketIndex bool
	// SafePeriodSpeedFactor scales the SP baseline's v_max bound (0 or
	// 1 = the paper's pessimistic guarantee; <1 trades accuracy for fewer
	// messages — the ablate-safeperiod experiment).
	SafePeriodSpeedFactor float64
	// Parallel fans each tick's position updates across a worker pool
	// instead of the single-threaded loop, exercising the engine's
	// concurrent hot path. Triggers are reassembled in client order after
	// every tick, so for workloads without moving-target alarms the report
	// (messages, triggers, metric totals) is identical to a serial run.
	// Serial runs (Parallel=false) stay bit-for-bit reproducible across
	// releases.
	Parallel bool
	// Workers is the parallel driver's pool size; 0 means GOMAXPROCS.
	Workers int
}

// Trigger is one delivered alarm: alarm ID, subscriber, and the tick of
// delivery.
type Trigger struct {
	User  uint64
	Alarm uint64
	Tick  int
}

// Report is the outcome of one strategy run.
type Report struct {
	Strategy      string
	Vehicles      int
	DurationTicks int

	UplinkMessages   uint64
	UplinkBytes      uint64
	DownlinkMessages uint64
	DownlinkBytes    uint64
	DownlinkMbps     float64
	// UpdateBatches and BatchedUpdates count UpdateBatch frames the
	// servers received and the reports they carried (zero unless the
	// session config enables batching).
	UpdateBatches  uint64
	BatchedUpdates uint64

	ClientChecks uint64
	ClientProbes uint64
	// ClientEnergyMWh is total client energy (containment probes plus
	// radio); ClientProbeEnergyMWh counts the containment-detection work
	// only, which is what the paper's Figure 5(b) measures.
	ClientEnergyMWh      float64
	ClientProbeEnergyMWh float64
	// PerClientMessages summarizes the distribution of reports across the
	// fleet (fairness: a low total hiding a few chatty clients would show
	// up here).
	PerClientMessages stats.Summary

	AlarmProcessingMinutes float64
	SafeRegionMinutes      float64
	TotalServerMinutes     float64
	// MeasuredServerSeconds is actual wall-clock spent inside
	// Engine.HandleUpdate — machine-dependent, complementing the
	// deterministic cost-model minutes above.
	MeasuredServerSeconds  float64
	SafeRegionComputations uint64
	AlarmEvaluations       uint64
	RectClips              uint64

	Triggers []Trigger

	// Cluster holds the cluster-level counters (handoffs, suppressed
	// duplicates, shard crashes) when the run went through RunCluster;
	// nil for single-server runs.
	Cluster *metrics.ClusterSnapshot
	// PartitionEpoch is the cluster's final partition-map version
	// (cluster runs only; 0 for single-server runs). Scripted splits,
	// merges and crash recoveries all advance it, so tests can assert
	// the run ended in a consistent epoch.
	PartitionEpoch uint64
}

// TriggersEqual reports whether two runs delivered exactly the same
// (user, alarm, tick) set — the 100% accuracy check.
func TriggersEqual(a, b []Trigger) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]Trigger(nil), a...)
	bs := append([]Trigger(nil), b...)
	less := func(s []Trigger) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].User != s[j].User {
				return s[i].User < s[j].User
			}
			if s[i].Alarm != s[j].Alarm {
				return s[i].Alarm < s[j].Alarm
			}
			return s[i].Tick < s[j].Tick
		}
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func pyramidParams(sc StrategyConfig) pyramid.Params {
	p := pyramid.DefaultParams(sc.PyramidHeight)
	p.MaxBits = sc.BitmapMaxBits
	return p
}

// Run executes one strategy over the workload and returns its report.
func Run(w *Workload, sc StrategyConfig) (*Report, error) {
	if sc.PyramidHeight == 0 {
		sc.PyramidHeight = 5
	}
	if sc.BitmapMaxBits == 0 {
		sc.BitmapMaxBits = 2048
	}
	if sc.CellAreaKM2 == 0 {
		sc.CellAreaKM2 = 2.5
	}
	mobCfg := mobility.DefaultConfig(w.Config.Vehicles, w.Config.Seed)
	mob, err := mobility.NewSimulator(w.Net, mobCfg)
	if err != nil {
		return nil, err
	}
	// The grid universe must strictly enclose the road network: the hull
	// roads run exactly along the network bounds, and a client on the
	// universe boundary could never be strictly inside a safe region.
	universe := w.Net.Bounds().Expand(50)
	eng, err := server.New(server.Config{
		Universe:                universe,
		CellAreaM2:              sc.CellAreaKM2 * 1e6,
		Model:                   sc.Model,
		PyramidParams:           pyramidParams(sc),
		MaxSpeed:                mob.MaxSpeed(),
		TickSeconds:             mobCfg.TickSeconds,
		PrecomputePublicBitmaps: sc.PrecomputePublicBitmaps,
		ExhaustiveAssembly:      sc.ExhaustiveAssembly,
		UseBucketIndex:          sc.BucketIndex,
		SafePeriodSpeedFactor:   sc.SafePeriodSpeedFactor,
		Costs:                   metrics.DefaultCosts(),
	})
	if err != nil {
		return nil, err
	}
	if _, err := eng.Registry().InstallBatch(w.Alarms); err != nil {
		return nil, err
	}

	perClient := make([]metrics.Client, w.Config.Vehicles)
	clients := make([]*client.Client, w.Config.Vehicles)
	for i := range clients {
		user := uint64(i + 1)
		clients[i] = client.New(user, sc.Strategy, &perClient[i])
		if err := eng.Register(wire.Register{
			User:      user,
			Strategy:  sc.Strategy,
			MaxHeight: uint8(sc.PyramidHeight),
		}); err != nil {
			return nil, err
		}
	}

	// Moving-target invalidations reach silent clients through the push
	// callback (Seq-0 messages). The per-client mutexes make push delivery
	// safe when the parallel driver is active: a push for client B arriving
	// from a worker processing client A cannot race B's own tick. curTick
	// is written only between ticks, while no worker runs (the WaitGroup
	// barrier orders the write against every reader).
	curTick := 0
	clientMu := make([]sync.Mutex, len(clients))
	eng.SetPusher(func(user alarm.UserID, msgs []wire.Message) {
		idx := int(user) - 1
		if idx < 0 || idx >= len(clients) {
			return
		}
		clientMu[idx].Lock()
		defer clientMu[idx].Unlock()
		for _, m := range msgs {
			// Push decode errors cannot happen with in-process messages.
			_ = clients[idx].Handle(curTick, m)
		}
	})

	var triggers []Trigger
	var serverWall time.Duration
	if sc.Parallel {
		triggers, serverWall, err = runParallelTicks(w, sc, eng, mob, clients, clientMu, &curTick)
		if err != nil {
			return nil, err
		}
	} else {
		for tick := 0; tick < w.Config.DurationTicks; tick++ {
			curTick = tick
			mob.Step()
			for i, cl := range clients {
				upd := cl.Tick(tick, mob.Position(i))
				if upd == nil {
					continue
				}
				start := time.Now()
				responses, err := eng.HandleUpdate(*upd)
				serverWall += time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("tick %d user %d: %w", tick, upd.User, err)
				}
				for _, resp := range responses {
					if fired, ok := resp.(wire.AlarmFired); ok {
						for _, id := range fired.Alarms {
							triggers = append(triggers, Trigger{User: upd.User, Alarm: id, Tick: tick})
						}
					}
					if err := cl.Handle(tick, resp); err != nil {
						return nil, err
					}
				}
				if len(responses) == 0 {
					cl.Acknowledge()
				}
			}
		}
	}

	clientMet := &metrics.Client{}
	msgsPerClient := make([]uint64, len(perClient))
	for i := range perClient {
		clientMet.Merge(perClient[i])
		msgsPerClient[i] = perClient[i].MessagesSent
	}

	met := eng.Metrics().Snapshot()
	traceSeconds := float64(w.Config.DurationTicks) * mobCfg.TickSeconds
	return &Report{
		Strategy:               sc.Strategy.String(),
		Vehicles:               w.Config.Vehicles,
		DurationTicks:          w.Config.DurationTicks,
		UplinkMessages:         met.UplinkMessages,
		UplinkBytes:            met.UplinkBytes,
		DownlinkMessages:       met.DownlinkMessages,
		DownlinkBytes:          met.DownlinkBytes,
		DownlinkMbps:           met.DownlinkMbps(traceSeconds),
		ClientChecks:           clientMet.ContainmentChecks,
		ClientProbes:           clientMet.Probes,
		ClientEnergyMWh:        clientMet.Energy(metrics.DefaultEnergy()),
		ClientProbeEnergyMWh:   float64(clientMet.Probes) * metrics.DefaultEnergy().ProbeMilliWattHours,
		PerClientMessages:      stats.SummarizeUints(msgsPerClient),
		AlarmProcessingMinutes: met.AlarmProcessingSeconds() / 60,
		SafeRegionMinutes:      met.SafeRegionSeconds() / 60,
		TotalServerMinutes:     met.TotalSeconds() / 60,
		SafeRegionComputations: met.SafeRegionComputations,
		AlarmEvaluations:       met.AlarmEvaluations,
		RectClips:              met.RectClips,
		MeasuredServerSeconds:  serverWall.Seconds(),
		Triggers:               triggers,
	}, nil
}

// runParallelTicks drives the simulation with a worker pool: every tick,
// the client updates are distributed across sc.Workers goroutines (0 means
// GOMAXPROCS) via a shared atomic cursor, with a barrier between ticks.
// Per-tick triggers are buffered per client index and flattened in index
// order after the barrier, reproducing exactly the order the serial loop
// would have appended them in. The returned wall duration sums the time
// every worker spent inside Engine.HandleUpdate (aggregate CPU, not
// elapsed time).
func runParallelTicks(w *Workload, sc StrategyConfig, eng *server.Engine, mob *mobility.Simulator, clients []*client.Client, clientMu []sync.Mutex, curTick *int) ([]Trigger, time.Duration, error) {
	workers := sc.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(clients) {
		workers = len(clients)
	}
	var triggers []Trigger
	var serverWall time.Duration
	var wallMu sync.Mutex
	for tick := 0; tick < w.Config.DurationTicks; tick++ {
		*curTick = tick
		mob.Step()
		// Per-client trigger buffers: workers append only to their current
		// client's slot, so no locking is needed and the post-barrier
		// flatten restores the serial (client-index) order.
		tickTriggers := make([][]Trigger, len(clients))
		var cursor atomic.Int64
		var wg sync.WaitGroup
		var errMu sync.Mutex
		var tickErr error
		errIdx := len(clients)
		record := func(i int, err error) {
			errMu.Lock()
			if err != nil && i < errIdx {
				tickErr, errIdx = err, i
			}
			errMu.Unlock()
		}
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var wall time.Duration
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(clients) {
						break
					}
					cl := clients[i]
					clientMu[i].Lock()
					upd := cl.Tick(tick, mob.Position(i))
					clientMu[i].Unlock()
					if upd == nil {
						continue
					}
					// The engine call runs without the client lock: the
					// engine synchronizes itself, and holding clientMu here
					// would serialize pushes against their own trigger.
					start := time.Now()
					responses, err := eng.HandleUpdate(*upd)
					wall += time.Since(start)
					if err != nil {
						record(i, fmt.Errorf("tick %d user %d: %w", tick, upd.User, err))
						continue
					}
					clientMu[i].Lock()
					for _, resp := range responses {
						if fired, ok := resp.(wire.AlarmFired); ok {
							for _, id := range fired.Alarms {
								tickTriggers[i] = append(tickTriggers[i], Trigger{User: upd.User, Alarm: id, Tick: tick})
							}
						}
						if err := cl.Handle(tick, resp); err != nil {
							record(i, err)
							break
						}
					}
					if len(responses) == 0 {
						cl.Acknowledge()
					}
					clientMu[i].Unlock()
				}
				wallMu.Lock()
				serverWall += wall
				wallMu.Unlock()
			}()
		}
		wg.Wait()
		if tickErr != nil {
			return nil, 0, tickErr
		}
		for i := range tickTriggers {
			triggers = append(triggers, tickTriggers[i]...)
		}
	}
	return triggers, serverWall, nil
}
