package sim

import (
	"math/rand"
	"testing"

	"github.com/sabre-geo/sabre/internal/client"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/mobility"
	"github.com/sabre-geo/sabre/internal/pyramid"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/wire"
)

// runLossy replays a workload with the given strategy while dropping each
// client→server and server→client message with probability dropProb.
// It returns the delivered (user, alarm) pairs.
func runLossy(t *testing.T, w *Workload, strategy wire.Strategy, dropProb float64, seed int64) map[[2]uint64]bool {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mobCfg := mobility.DefaultConfig(w.Config.Vehicles, w.Config.Seed)
	mob, err := mobility.NewSimulator(w.Net, mobCfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := server.New(server.Config{
		Universe:      w.Net.Bounds().Expand(50),
		CellAreaM2:    2.5e6,
		PyramidParams: pyramid.DefaultParams(5),
		MaxSpeed:      mob.MaxSpeed(),
		TickSeconds:   mobCfg.TickSeconds,
		Costs:         metrics.DefaultCosts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range w.Alarms {
		if _, err := eng.Registry().Install(a); err != nil {
			t.Fatal(err)
		}
	}
	met := &metrics.Client{}
	clients := make([]*client.Client, w.Config.Vehicles)
	for i := range clients {
		user := uint64(i + 1)
		clients[i] = client.New(user, strategy, met)
		eng.Register(wire.Register{User: user, Strategy: strategy, MaxHeight: 5})
	}
	delivered := map[[2]uint64]bool{}
	for tick := 0; tick < w.Config.DurationTicks; tick++ {
		mob.Step()
		for i, cl := range clients {
			upd := cl.Tick(tick, mob.Position(i))
			if upd == nil {
				continue
			}
			if rng.Float64() < dropProb {
				continue // uplink lost; client resends after its timeout
			}
			responses, err := eng.HandleUpdate(*upd)
			if err != nil {
				t.Fatal(err)
			}
			for _, resp := range responses {
				if fired, ok := resp.(wire.AlarmFired); ok {
					for _, id := range fired.Alarms {
						delivered[[2]uint64{upd.User, id}] = true
					}
				}
				if rng.Float64() < dropProb {
					continue // downlink lost; resend timeout recovers
				}
				if err := cl.Handle(tick, resp); err != nil {
					t.Fatal(err)
				}
			}
			if len(responses) == 0 {
				cl.Acknowledge()
			}
		}
	}
	return delivered
}

// TestMessageLossResilience injects 20% bidirectional message loss and
// verifies the system degrades gracefully: no spurious triggers, most
// triggers still delivered, and no client wedges (progress continues all
// run). Exact tick alignment is not required under loss — a dropped
// report delays evaluation by up to the resend timeout, and a trigger
// whose window is shorter than the retry can be missed entirely; that is
// the documented at-most-once delivery of the unreliable path.
func TestMessageLossResilience(t *testing.T) {
	w := buildSmall(t, 23)
	truth := runStrategy(t, w, StrategyConfig{Strategy: wire.StrategyPeriodic})
	truthPairs := map[[2]uint64]bool{}
	for _, tr := range truth.Triggers {
		truthPairs[[2]uint64{tr.User, tr.Alarm}] = true
	}
	if len(truthPairs) < 20 {
		t.Fatalf("workload too sparse: %d trigger pairs", len(truthPairs))
	}
	for _, strategy := range []wire.Strategy{wire.StrategyMWPSR, wire.StrategyPBSR, wire.StrategySafePeriod} {
		got := runLossy(t, w, strategy, 0.20, 99)
		spurious := 0
		for pair := range got {
			if !truthPairs[pair] {
				spurious++
			}
		}
		if spurious != 0 {
			t.Errorf("%v: %d spurious triggers under loss", strategy, spurious)
		}
		// Grace: under 20% loss the resend timeout recovers the vast
		// majority of triggers.
		if len(got) < len(truthPairs)*8/10 {
			t.Errorf("%v: delivered only %d of %d trigger pairs under 20%% loss",
				strategy, len(got), len(truthPairs))
		}
	}
}

// TestNoLossMatchesDirect: the lossy harness with dropProb=0 must deliver
// exactly the ground-truth pairs (sanity check of the harness itself).
func TestNoLossMatchesDirect(t *testing.T) {
	w := buildSmall(t, 29)
	truth := runStrategy(t, w, StrategyConfig{Strategy: wire.StrategyPeriodic})
	got := runLossy(t, w, wire.StrategyMWPSR, 0, 1)
	want := map[[2]uint64]bool{}
	for _, tr := range truth.Triggers {
		want[[2]uint64{tr.User, tr.Alarm}] = true
	}
	if len(got) != len(want) {
		t.Fatalf("delivered %d pairs, want %d", len(got), len(want))
	}
	for pair := range got {
		if !want[pair] {
			t.Fatalf("spurious pair %v", pair)
		}
	}
}
