package alarm

import (
	"math"
	"sync"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
)

func region(x, y, side float64) geom.Rect {
	return geom.RectAround(geom.Pt(x, y), side)
}

func TestScopeString(t *testing.T) {
	if Private.String() != "private" || Shared.String() != "shared" || Public.String() != "public" {
		t.Error("scope strings wrong")
	}
	if Scope(9).String() != "Scope(9)" {
		t.Errorf("unknown scope string: %v", Scope(9))
	}
}

func TestRelevantTo(t *testing.T) {
	tests := []struct {
		name string
		a    Alarm
		u    UserID
		want bool
	}{
		{"private owner", Alarm{Scope: Private, Owner: 1}, 1, true},
		{"private other", Alarm{Scope: Private, Owner: 1}, 2, false},
		{"shared owner", Alarm{Scope: Shared, Owner: 1, Subscribers: []UserID{2}}, 1, true},
		{"shared subscriber", Alarm{Scope: Shared, Owner: 1, Subscribers: []UserID{2, 3}}, 3, true},
		{"shared outsider", Alarm{Scope: Shared, Owner: 1, Subscribers: []UserID{2}}, 4, false},
		{"public anyone", Alarm{Scope: Public, Owner: 1}, 99, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.RelevantTo(tt.u); got != tt.want {
				t.Errorf("RelevantTo = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestInstallValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Install(Alarm{Scope: Private, Owner: 1}); err == nil {
		t.Error("empty region should fail")
	}
	if _, err := r.Install(Alarm{Scope: 0, Owner: 1, Region: region(10, 10, 5)}); err == nil {
		t.Error("invalid scope should fail")
	}
	if _, err := r.Install(Alarm{Scope: Shared, Owner: 1, Region: region(10, 10, 5)}); err == nil {
		t.Error("shared without subscribers should fail")
	}
	id, err := r.Install(Alarm{Scope: Private, Owner: 1, Region: region(10, 10, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Error("expected nonzero ID")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestInstallCopiesSubscribers(t *testing.T) {
	r := NewRegistry()
	subs := []UserID{2, 3}
	id, err := r.Install(Alarm{Scope: Shared, Owner: 1, Subscribers: subs, Region: region(5, 5, 2)})
	if err != nil {
		t.Fatal(err)
	}
	subs[0] = 99 // caller mutates its slice
	got, ok := r.Get(id)
	if !ok {
		t.Fatal("Get failed")
	}
	if got.Subscribers[0] != 2 {
		t.Error("registry aliased the caller's subscriber slice")
	}
	// And the returned copy is also detached.
	got.Subscribers[0] = 42
	got2, _ := r.Get(id)
	if got2.Subscribers[0] != 2 {
		t.Error("Get returned an aliased slice")
	}
}

func TestEvaluateAndOneShot(t *testing.T) {
	r := NewRegistry()
	id, _ := r.Install(Alarm{Scope: Private, Owner: 7, Region: region(100, 100, 20)})

	inside := geom.Pt(100, 100)
	if got := r.Evaluate(inside, 7); len(got) != 1 || got[0] != id {
		t.Fatalf("Evaluate = %v, want [%d]", got, id)
	}
	// Irrelevant user sees nothing.
	if got := r.Evaluate(inside, 8); len(got) != 0 {
		t.Errorf("other user triggered private alarm: %v", got)
	}
	// Outside the region nothing triggers.
	if got := r.Evaluate(geom.Pt(500, 500), 7); len(got) != 0 {
		t.Errorf("outside point triggered: %v", got)
	}
	// One-shot: after firing, the alarm no longer triggers or counts as
	// relevant for that user.
	r.MarkFired(id, 7)
	if !r.Fired(id, 7) {
		t.Error("Fired not recorded")
	}
	if got := r.Evaluate(inside, 7); len(got) != 0 {
		t.Errorf("fired alarm triggered again: %v", got)
	}
	if got := r.RelevantIn(region(100, 100, 200), 7, nil); len(got) != 0 {
		t.Errorf("fired alarm still relevant: %v", got)
	}
	// But it still triggers for other subscribers of a public alarm.
	pid, _ := r.Install(Alarm{Scope: Public, Owner: 1, Region: region(100, 100, 20)})
	r.MarkFired(pid, 7)
	if got := r.Evaluate(inside, 9); len(got) != 1 || got[0] != pid {
		t.Errorf("public alarm should fire for another user: %v", got)
	}
	// ResetFired restores everything.
	r.ResetFired()
	if got := r.Evaluate(inside, 7); len(got) != 2 {
		t.Errorf("after ResetFired, Evaluate = %v, want both alarms", got)
	}
}

func TestRelevantIn(t *testing.T) {
	r := NewRegistry()
	aPriv, _ := r.Install(Alarm{Scope: Private, Owner: 1, Region: region(50, 50, 10)})
	_, _ = r.Install(Alarm{Scope: Private, Owner: 2, Region: region(60, 60, 10)})
	aPub, _ := r.Install(Alarm{Scope: Public, Owner: 3, Region: region(70, 70, 10)})
	_, _ = r.Install(Alarm{Scope: Public, Owner: 3, Region: region(5000, 5000, 10)}) // far away

	got := r.RelevantIn(geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, 1, nil)
	ids := map[ID]bool{}
	for _, a := range got {
		ids[a.ID] = true
	}
	if len(got) != 2 || !ids[aPriv] || !ids[aPub] {
		t.Errorf("RelevantIn = %v, want private(own)+public in window", ids)
	}
}

func TestRemove(t *testing.T) {
	r := NewRegistry()
	id, _ := r.Install(Alarm{Scope: Private, Owner: 1, Region: region(10, 10, 4)})
	if !r.Remove(id) {
		t.Fatal("Remove returned false")
	}
	if r.Remove(id) {
		t.Error("second Remove should return false")
	}
	if _, ok := r.Get(id); ok {
		t.Error("Get after Remove should fail")
	}
	if got := r.Evaluate(geom.Pt(10, 10), 1); len(got) != 0 {
		t.Errorf("removed alarm evaluated: %v", got)
	}
}

func TestNearestRelevantDist(t *testing.T) {
	r := NewRegistry()
	r.Install(Alarm{Scope: Private, Owner: 1, Region: geom.Rect{MinX: 100, MinY: 0, MaxX: 110, MaxY: 10}})
	r.Install(Alarm{Scope: Private, Owner: 2, Region: geom.Rect{MinX: 20, MinY: 0, MaxX: 30, MaxY: 10}})

	// User 1 only sees its own alarm at distance 100-0=90... from origin
	// (0,5): dx to MinX=100 is 100.
	d := r.NearestRelevantDist(geom.Pt(0, 5), 1)
	if math.Abs(d-100) > 1e-9 {
		t.Errorf("dist = %v, want 100 (user 2's alarm must be ignored)", d)
	}
	// User with no relevant alarms gets +Inf.
	if d := r.NearestRelevantDist(geom.Pt(0, 5), 9); !math.IsInf(d, 1) {
		t.Errorf("dist = %v, want +Inf", d)
	}
	// After firing, the alarm stops pulling the distance in.
	id := func() ID {
		all := r.All()
		for _, a := range all {
			if a.Owner == 1 {
				return a.ID
			}
		}
		return 0
	}()
	r.MarkFired(id, 1)
	if d := r.NearestRelevantDist(geom.Pt(0, 5), 1); !math.IsInf(d, 1) {
		t.Errorf("dist after fire = %v, want +Inf", d)
	}
}

func TestMoveTarget(t *testing.T) {
	r := NewRegistry()
	id, _ := r.Install(Alarm{
		Scope:       Shared,
		Owner:       1,
		Subscribers: []UserID{2},
		Region:      region(100, 100, 20),
		Target:      5,
	})
	r.Install(Alarm{Scope: Private, Owner: 1, Region: region(300, 300, 20)}) // static

	moved := r.MoveTarget(5, geom.Pt(500, 600))
	if len(moved) != 1 || moved[0] != id {
		t.Fatalf("MoveTarget = %v, want [%d]", moved, id)
	}
	got, _ := r.Get(id)
	want := region(500, 600, 20)
	if got.Region != want {
		t.Errorf("Region = %v, want %v", got.Region, want)
	}
	// Index moved with it: evaluation at new centre triggers for subscriber.
	if trig := r.Evaluate(geom.Pt(500, 600), 2); len(trig) != 1 || trig[0] != id {
		t.Errorf("Evaluate at new target pos = %v", trig)
	}
	if trig := r.Evaluate(geom.Pt(100, 100), 2); len(trig) != 0 {
		t.Errorf("old position still triggers: %v", trig)
	}
	// Moving a user no alarms track is a no-op.
	if moved := r.MoveTarget(99, geom.Pt(0, 0)); len(moved) != 0 {
		t.Errorf("unexpected moves: %v", moved)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				x := float64(g*1000 + i)
				id, err := r.Install(Alarm{Scope: Public, Owner: UserID(g), Region: region(x, x, 10)})
				if err != nil {
					t.Error(err)
					return
				}
				r.Evaluate(geom.Pt(x, x), UserID(g))
				r.RelevantIn(region(x, x, 100), UserID(g), nil)
				r.MarkFired(id, UserID(g))
				r.NearestRelevantDist(geom.Pt(x, x), UserID(g))
				if i%10 == 0 {
					r.Remove(id)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestInstallBatch(t *testing.T) {
	r := NewRegistry()
	batch := []Alarm{
		{Scope: Private, Owner: 1, Region: region(10, 10, 4)},
		{Scope: Public, Owner: 2, Region: region(50, 50, 4)},
		{Scope: Shared, Owner: 3, Subscribers: []UserID{4}, Region: region(90, 90, 4), Target: 7},
	}
	ids, err := r.InstallBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || r.Len() != 3 {
		t.Fatalf("ids=%v Len=%d", ids, r.Len())
	}
	if got := r.Evaluate(geom.Pt(10, 10), 1); len(got) != 1 || got[0] != ids[0] {
		t.Errorf("bulk-loaded index missed alarm: %v", got)
	}
	if !r.IsTarget(7) {
		t.Error("target index not maintained by batch install")
	}
	// A second batch on a non-empty registry goes through inserts.
	more, err := r.InstallBatch([]Alarm{{Scope: Public, Owner: 9, Region: region(200, 200, 4)}})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Evaluate(geom.Pt(200, 200), 5); len(got) != 1 || got[0] != more[0] {
		t.Errorf("incremental batch missed: %v", got)
	}
	// Validation rejects the whole batch atomically.
	if _, err := r.InstallBatch([]Alarm{
		{Scope: Public, Owner: 1, Region: region(1, 1, 2)},
		{Scope: Shared, Owner: 1, Region: region(2, 2, 2)}, // no subscribers
	}); err == nil {
		t.Error("invalid batch accepted")
	}
	if r.Len() != 4 {
		t.Errorf("failed batch mutated registry: Len=%d", r.Len())
	}
}

func TestInstallBatchLarge(t *testing.T) {
	r := NewRegistry()
	batch := make([]Alarm, 2000)
	for i := range batch {
		batch[i] = Alarm{Scope: Public, Owner: 1, Region: region(float64(i%100)*50, float64(i/100)*50, 10)}
	}
	if _, err := r.InstallBatch(batch); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2000 {
		t.Fatalf("Len = %d", r.Len())
	}
	// Spot-check queries against per-alarm evaluation.
	for i := 0; i < 50; i++ {
		p := geom.Pt(float64(i*37%5000), float64(i*73%1000))
		got := r.Evaluate(p, 1)
		want := 0
		for _, a := range r.All() {
			if a.Region.Contains(p) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("Evaluate(%v) = %d hits, want %d", p, len(got), want)
		}
	}
}

func TestIndexAccessCounting(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		r.Install(Alarm{Scope: Public, Owner: 1, Region: region(float64(i*50), float64(i*50), 10)})
	}
	r.ResetIndexStats()
	r.Evaluate(geom.Pt(250, 250), 1)
	if r.IndexAccesses() == 0 {
		t.Error("expected node accesses to be counted")
	}
}

func TestTopicSubscriptions(t *testing.T) {
	r := NewRegistry()
	traffic, _ := r.Install(Alarm{Scope: Public, Owner: 1, Topic: "traffic/i85-north", Region: region(100, 100, 20)})
	broadcast, _ := r.Install(Alarm{Scope: Public, Owner: 1, Region: region(100, 100, 40)})

	inside := geom.Pt(100, 100)
	// Without a subscription only the broadcast alarm is relevant.
	if got := r.Evaluate(inside, 5); len(got) != 1 || got[0] != broadcast {
		t.Fatalf("unsubscribed user: %v, want only broadcast %d", got, broadcast)
	}
	r.SubscribeTopic(5, "traffic/i85-north")
	got := r.Evaluate(inside, 5)
	if len(got) != 2 {
		t.Fatalf("subscribed user: %v, want both alarms", got)
	}
	// Topic relevance feeds RelevantIn and NearestRelevantDist too.
	if got := r.RelevantIn(region(100, 100, 200), 6, nil); len(got) != 1 {
		t.Errorf("RelevantIn for unsubscribed = %d alarms, want 1", len(got))
	}
	if got := r.RelevantIn(region(100, 100, 200), 5, nil); len(got) != 2 {
		t.Errorf("RelevantIn for subscribed = %d alarms, want 2", len(got))
	}
	// Unsubscribe restores the filtered view.
	r.UnsubscribeTopic(5, "traffic/i85-north")
	if got := r.Evaluate(inside, 5); len(got) != 1 {
		t.Errorf("after unsubscribe: %v", got)
	}
	// Unsubscribing a never-subscribed topic is a no-op.
	r.UnsubscribeTopic(99, "nothing")
	_ = traffic
}

func TestTopicDoesNotAffectPrivateShared(t *testing.T) {
	r := NewRegistry()
	// Topic on a private alarm is ignored: owner relevance still applies.
	id, _ := r.Install(Alarm{Scope: Private, Owner: 1, Topic: "ignored", Region: region(50, 50, 10)})
	if got := r.Evaluate(geom.Pt(50, 50), 1); len(got) != 1 || got[0] != id {
		t.Errorf("private alarm with topic: %v", got)
	}
}
