package transport

import (
	"math/rand"
	"sync"

	"github.com/sabre-geo/sabre/internal/wire"
)

// Window is a half-open tick interval [From, Until).
type Window struct {
	From, Until int
}

func (w Window) contains(tick int) bool { return tick >= w.From && tick < w.Until }

// FaultSchedule scripts the faults a FaultyConn injects into its outbound
// traffic. All randomness flows from Seed, so identical schedules replay
// identical fault sequences; the probabilistic faults only apply inside
// the [From, Until) tick window (Until == 0 means unbounded), while
// Partitions and ResetAt carry their own tick coordinates.
type FaultSchedule struct {
	Seed int64

	// From and Until bound the probabilistic faults below to the half-open
	// tick window [From, Until). Until == 0 means no upper bound.
	From, Until int

	DropProb  float64 // silently discard the message
	DupProb   float64 // deliver the message twice
	DelayProb float64 // park the message until a later Advance releases it
	// MaxDelayTicks caps the uniform random delay drawn for a delayed
	// message; values below 1 are treated as 1.
	MaxDelayTicks int
	ReorderProb   float64 // hold the message so a later one overtakes it

	// Partitions blackhole every outbound message whose Send falls inside
	// any of the windows, regardless of From/Until.
	Partitions []Window

	// ResetAt lists ticks at which the connection is hard-closed: the
	// inner conn is torn down, queued faults are discarded, and every
	// subsequent operation fails. Resets at or before the wrapper's start
	// tick never fire, so a reconnected incarnation does not replay them.
	ResetAt []int
}

// FaultStats counts what a FaultyConn has done to its traffic.
type FaultStats struct {
	Sent           int // Send calls accepted (before any fault)
	Dropped        int // discarded by DropProb
	Duplicated     int // extra copies injected by DupProb
	Delayed        int // parked by DelayProb
	Reordered      int // held so a later message overtook them
	PartitionDrops int // blackholed inside a partition window
	Resets         int // hard resets fired
}

type delayedMsg struct {
	due int
	m   wire.Message
}

// FaultyConn wraps a Conn and perturbs its outbound messages according to
// a deterministic FaultSchedule. Faults are injected on Send only: wrap
// both endpoints of a link (with independent schedules) to fault both
// directions. The wrapper is tick-driven — the owner calls Advance once
// per simulated tick to release delayed traffic, flush reorder holds, and
// fire scheduled resets — and safe for concurrent use.
type FaultyConn struct {
	mu      sync.Mutex
	inner   PollingConn
	sched   FaultSchedule
	rng     *rand.Rand
	curTick int
	closed  bool
	delayed []delayedMsg
	held    []wire.Message
	stats   FaultStats
}

// Faulty wraps inner with the given fault schedule, starting at startTick.
// Resets scheduled at or before startTick are considered already spent.
func Faulty(inner Conn, sched FaultSchedule, startTick int) *FaultyConn {
	if sched.MaxDelayTicks < 1 {
		sched.MaxDelayTicks = 1
	}
	return &FaultyConn{
		inner:   Poller(inner),
		sched:   sched,
		rng:     rand.New(rand.NewSource(sched.Seed)),
		curTick: startTick,
	}
}

func (f *FaultyConn) activeLocked() bool {
	if f.curTick < f.sched.From {
		return false
	}
	return f.sched.Until == 0 || f.curTick < f.sched.Until
}

// Send applies the fault schedule to m. Dropped and partitioned messages
// report success: from the sender's perspective the network ate them.
func (f *FaultyConn) Send(m wire.Message) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.stats.Sent++
	for _, w := range f.sched.Partitions {
		if w.contains(f.curTick) {
			f.stats.PartitionDrops++
			return nil
		}
	}
	if !f.activeLocked() {
		return f.deliverLocked(m, false)
	}
	// Fixed draw order keeps the rng stream — and so the whole fault
	// sequence — a pure function of (seed, Send sequence).
	if f.sched.DropProb > 0 && f.rng.Float64() < f.sched.DropProb {
		f.stats.Dropped++
		return nil
	}
	dup := f.sched.DupProb > 0 && f.rng.Float64() < f.sched.DupProb
	if f.sched.DelayProb > 0 && f.rng.Float64() < f.sched.DelayProb {
		d := 1 + f.rng.Intn(f.sched.MaxDelayTicks)
		f.stats.Delayed++
		f.delayed = append(f.delayed, delayedMsg{due: f.curTick + d, m: m})
		if dup {
			f.stats.Duplicated++
			f.delayed = append(f.delayed, delayedMsg{due: f.curTick + d, m: m})
		}
		return nil
	}
	if f.sched.ReorderProb > 0 && f.rng.Float64() < f.sched.ReorderProb {
		f.stats.Reordered++
		f.held = append(f.held, m)
		if dup {
			// The duplicate travels now; the original arrives late.
			f.stats.Duplicated++
			return f.inner.Send(m)
		}
		return nil
	}
	return f.deliverLocked(m, dup)
}

// deliverLocked sends m (and an optional duplicate), then flushes any
// reorder hold — the held messages arrive after m, which is the reorder.
func (f *FaultyConn) deliverLocked(m wire.Message, dup bool) error {
	if err := f.inner.Send(m); err != nil {
		return err
	}
	if dup {
		f.stats.Duplicated++
		if err := f.inner.Send(m); err != nil {
			return err
		}
	}
	return f.flushHeldLocked()
}

func (f *FaultyConn) flushHeldLocked() error {
	for len(f.held) > 0 {
		h := f.held[0]
		f.held = f.held[1:]
		if err := f.inner.Send(h); err != nil {
			return err
		}
	}
	return nil
}

// Advance moves the wrapper's clock to tick: scheduled resets in
// (prevTick, tick] fire (closing the connection), reorder holds flush,
// and delayed messages whose due tick has arrived are released. Call it
// once per simulated tick on each wrapper.
func (f *FaultyConn) Advance(tick int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	prev := f.curTick
	f.curTick = tick
	if f.closed {
		return ErrClosed
	}
	for _, r := range f.sched.ResetAt {
		if r > prev && r <= tick {
			f.stats.Resets++
			f.closed = true
			f.delayed = nil
			f.held = nil
			f.inner.Close()
			return ErrClosed
		}
	}
	if err := f.flushHeldLocked(); err != nil {
		return err
	}
	keep := f.delayed[:0]
	for _, dm := range f.delayed {
		if dm.due <= tick {
			if err := f.inner.Send(dm.m); err != nil {
				return err
			}
		} else {
			keep = append(keep, dm)
		}
	}
	f.delayed = keep
	return nil
}

func (f *FaultyConn) Recv() (wire.Message, error) { return f.inner.Recv() }

func (f *FaultyConn) TryRecv() (wire.Message, bool, error) { return f.inner.TryRecv() }

func (f *FaultyConn) Close() error {
	f.mu.Lock()
	f.closed = true
	f.delayed = nil
	f.held = nil
	f.mu.Unlock()
	return f.inner.Close()
}

// Stats returns a snapshot of the fault counters.
func (f *FaultyConn) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}
