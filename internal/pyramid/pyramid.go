// Package pyramid implements the pyramid bitmap data structure behind the
// bitmap-encoded safe regions of paper §4 (after Samet, "The Design and
// Analysis of Spatial Data Structures").
//
// A bitmap encodes which parts of a client's current grid cell belong to
// its safe region. Bit 1 means the corresponding (sub-)cell is wholly free
// of relevant alarm regions — it is safe; bit 0 means the cell intersects
// at least one alarm region. A 0 cell above the maximum height is split
// into U×V equal children whose bits follow, refining the representation;
// a 0 cell at the maximum height is conservatively treated as unsafe.
//
// Bits are emitted level by level (level order): first the bits for the
// whole cell (level 0), then, for each expandable 0 cell of level L in
// raster order, the bits of its U×V children (level L+1). This follows the
// paper's Figure 3(d) layout, with one extension: a blocked cell above the
// maximum height carries a second bit — the expand bit — distinguishing a
// partially covered cell (1: children follow) from a cell wholly inside an
// alarm region (0: leaf; no descendant can ever be safe). Without this
// distinction the interior of every alarm region would subdivide all the
// way to the maximum height, growing bitmaps by U·V× per level for cells
// that carry no information (at h=7 with 3×3 splits that is millions of
// bits per region). See DESIGN.md §5.
//
// The GBSR (grid bitmap) of §4.1 is the height-1 special case.
//
// Decoding builds an explicit tree so a client can test containment with
// at most Height bit probes — the "predefined worst-case number of
// computations" the paper advertises for heterogeneous clients.
package pyramid

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/sabre-geo/sabre/internal/bitio"
	"github.com/sabre-geo/sabre/internal/geom"
)

// Limits protecting against hostile or corrupt encodings.
const (
	maxSplit  = 16      // maximum U or V
	maxHeight = 12      // maximum pyramid height
	maxBits   = 1 << 22 // maximum bitmap size (512 KiB)
)

// Params fixes the shape of a pyramid encoding. U and V are the horizontal
// and vertical split factors (the paper's system parameters; its figures
// use U = V = 3) and Height the number of refinement levels (h ≥ 1;
// h = 1 is the GBSR).
type Params struct {
	U, V   int
	Height int
	// MaxBits caps the encoded bitmap size (0 = the package-wide safety
	// limit). When the budget is reached, remaining blocked cells are
	// emitted as non-expanding leaves — the paper's §4.2 bitmap-size vs
	// coverage trade-off ("we want to achieve high coverage with as small
	// bitmap size as possible"). The level-order traversal spends the
	// budget on coarse levels first, so truncation only costs the finest
	// detail.
	MaxBits int
}

// DefaultParams matches the paper's figures: 3×3 splits.
func DefaultParams(height int) Params { return Params{U: 3, V: 3, Height: height} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.U < 2 || p.U > maxSplit || p.V < 2 || p.V > maxSplit {
		return fmt.Errorf("pyramid: split factors %dx%d out of range [2,%d]", p.U, p.V, maxSplit)
	}
	if p.Height < 1 || p.Height > maxHeight {
		return fmt.Errorf("pyramid: height %d out of range [1,%d]", p.Height, maxHeight)
	}
	if p.MaxBits < 0 || p.MaxBits > maxBits {
		return fmt.Errorf("pyramid: MaxBits %d out of [0,%d]", p.MaxBits, maxBits)
	}
	return nil
}

// Bitmap is an encoded safe region: the packed level-order bits plus the
// shape information needed to interpret them. It is the unit shipped from
// server to client; its BitLen is what the downstream bandwidth accounting
// charges.
type Bitmap struct {
	Params Params
	Cell   geom.Rect // the base grid cell the bitmap subdivides
	Data   []byte    // packed bits, MSB-first
	NBits  int       // number of meaningful bits in Data
}

// Coverage classifies how alarm regions cover a cell.
type Coverage int

// Coverage values: none (the cell is safe), partial (refining can expose
// safe children) or full (the cell lies wholly inside an alarm region and
// no descendant can be safe).
const (
	CoverNone Coverage = iota
	CoverPartial
	CoverFull
)

// CoverageOf is the standard classifier: full if any single alarm contains
// the whole cell, partial if any alarm touches it, none otherwise. Closed
// intersection keeps the encoding sound for boundary positions.
func CoverageOf(cell geom.Rect, alarms []geom.Rect) Coverage {
	cov := CoverNone
	for _, a := range alarms {
		if !a.Intersects(cell) {
			continue
		}
		if a.ContainsRect(cell) {
			return CoverFull
		}
		cov = CoverPartial
	}
	return cov
}

// Encode builds the pyramid bitmap for cell. cover classifies each probed
// rectangle (use CoverageOf, or a custom classifier that also consults a
// precomputed region); it is called once per emitted cell. The traversal
// is breadth-first so bits appear in level order.
func Encode(cell geom.Rect, params Params, cover func(geom.Rect) Coverage) (*Bitmap, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if cell.Empty() {
		return nil, fmt.Errorf("pyramid: empty cell %v", cell)
	}
	budget := params.MaxBits
	if budget == 0 || budget > maxBits {
		budget = maxBits
	}
	fanout := params.U * params.V
	w := bitio.NewWriter(2 + fanout)
	// reserved tracks bits already promised to unwritten children (each
	// expansion promise costs at most 2 bits per child), so the budget
	// holds globally across promises, not just per cell.
	reserved := 0
	// writeCell emits the bits for one cell at the given level and reports
	// whether its children must follow. Expansion requires budget headroom
	// for the children it promises.
	writeCell := func(r geom.Rect, level int) bool {
		switch cover(r) {
		case CoverNone:
			w.WriteBit(true)
			return false
		case CoverFull:
			w.WriteBit(false)
			if level < params.Height {
				w.WriteBit(false) // expand bit: covered leaf
			}
			return false
		default: // CoverPartial
			w.WriteBit(false)
			if level < params.Height {
				if w.Len()+reserved+1+2*fanout <= budget {
					w.WriteBit(true) // expand bit: children follow
					reserved += 2 * fanout
					return true
				}
				w.WriteBit(false) // budget exhausted: conservative leaf
			}
			return false
		}
	}
	open := []geom.Rect{}
	if writeCell(cell, 0) {
		open = append(open, cell)
	}
	for level := 1; level <= params.Height && len(open) > 0; level++ {
		var next []geom.Rect
		for _, parent := range open {
			reserved -= 2 * fanout // the promise is being fulfilled now
			for idx := 0; idx < fanout; idx++ {
				child := childRect(parent, params.U, params.V, idx)
				if writeCell(child, level) {
					next = append(next, child)
				}
			}
		}
		open = next
		if w.Len() > maxBits {
			return nil, fmt.Errorf("pyramid: bitmap exceeds %d bits", maxBits)
		}
	}
	return &Bitmap{Params: params, Cell: cell, Data: w.Bytes(), NBits: w.Len()}, nil
}

// SizeBits returns the number of bits in the encoding — the quantity the
// paper's §4.2 size comparison (82 bits GBSR vs 64 bits PBSR) counts.
func (b *Bitmap) SizeBits() int { return b.NBits }

// SizeBytes returns the packed size in bytes.
func (b *Bitmap) SizeBytes() int { return (b.NBits + 7) / 8 }

// String renders the bit string, for debugging against the paper's figures.
func (b *Bitmap) String() string { return bitio.String(b.Data, b.NBits) }

// Region is a decoded safe region, ready for client-side containment
// monitoring. Decoding is done once per received bitmap; each containment
// check then costs at most Height bit probes.
//
// Nodes are stored flat: children of an expanded node are contiguous (a
// property of the level-order encoding), so each node needs only the index
// of its first child — 5 bytes per node instead of a slice header, which
// matters when thousands of clients hold deep bitmaps at once.
type Region struct {
	params Params
	cell   geom.Rect
	// flags[i] describes node i (nodeSafe / nodeCovered bits); nodes[0] is
	// the root.
	flags []uint8
	// kidsBase[i] is the index of node i's first child (children are
	// contiguous, fanout U·V), or -1 for leaves.
	kidsBase []int32
}

const (
	nodeSafe    uint8 = 1 << 0
	nodeCovered uint8 = 1 << 1
)

func (r *Region) addNode(safe, covered bool) int32 {
	idx := int32(len(r.flags))
	var f uint8
	if safe {
		f |= nodeSafe
	}
	if covered {
		f |= nodeCovered
	}
	r.flags = append(r.flags, f)
	r.kidsBase = append(r.kidsBase, -1)
	return idx
}

// ErrTruncated is returned when a bitmap ends before its structure is
// complete.
var ErrTruncated = errors.New("pyramid: truncated bitmap")

// Decode parses a level-order bitmap back into a queryable region.
func Decode(b *Bitmap) (*Region, error) {
	if err := b.Params.Validate(); err != nil {
		return nil, err
	}
	if b.Cell.Empty() {
		return nil, fmt.Errorf("pyramid: empty cell %v", b.Cell)
	}
	if b.NBits > maxBits || b.NBits > len(b.Data)*8 {
		return nil, fmt.Errorf("pyramid: bit length %d invalid for %d data bytes", b.NBits, len(b.Data))
	}
	r := bitio.NewReader(b.Data, b.NBits)
	reg := &Region{params: b.Params, cell: b.Cell}
	// readCell parses one cell's bits at the given level, appends its node
	// and reports whether children follow.
	readCell := func(level int) (idx int32, expand bool, err error) {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, false, ErrTruncated
		}
		covered := false
		if !bit && level < b.Params.Height {
			exp, err := r.ReadBit()
			if err != nil {
				return 0, false, ErrTruncated
			}
			expand = exp
			covered = !exp
		}
		idx = reg.addNode(bit, covered)
		return idx, expand, nil
	}
	_, rootExpand, err := readCell(0)
	if err != nil {
		return nil, err
	}
	open := []int32{}
	if rootExpand {
		open = append(open, 0)
	}
	fanout := b.Params.U * b.Params.V
	for level := 1; level <= b.Params.Height && len(open) > 0; level++ {
		var next []int32
		for _, parentIdx := range open {
			reg.kidsBase[parentIdx] = int32(len(reg.flags))
			for i := 0; i < fanout; i++ {
				idx, exp, err := readCell(level)
				if err != nil {
					return nil, err
				}
				if exp {
					next = append(next, idx)
				}
			}
		}
		open = next
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("pyramid: %d trailing bits after complete structure", r.Remaining())
	}
	return reg, nil
}

// Cell returns the base grid cell this region subdivides.
func (r *Region) Cell() geom.Rect { return r.cell }

// Params returns the encoding shape.
func (r *Region) Params() Params { return r.params }

// Contains reports whether p lies in the safe region. Points outside the
// base cell are never contained (leaving the cell always forces a server
// report).
func (r *Region) Contains(p geom.Point) bool {
	in, _ := r.ContainsProbes(p)
	return in
}

// ContainsProbes is Contains plus the number of pyramid levels probed —
// the unit the client energy model charges per check.
func (r *Region) ContainsProbes(p geom.Point) (bool, int) {
	if !r.cell.Contains(p) {
		return false, 1
	}
	node := int32(0)
	rect := r.cell
	probes := 1
	for {
		if r.flags[node]&nodeSafe != 0 {
			return true, probes
		}
		if r.kidsBase[node] < 0 {
			return false, probes
		}
		idx := locateChild(rect, r.params.U, r.params.V, p)
		rect = childRect(rect, r.params.U, r.params.V, idx)
		node = r.kidsBase[node] + int32(idx)
		probes++
	}
}

// RectSafe reports whether r lies wholly inside the safe region. r must be
// a pyramid-aligned sub-cell of the region's base cell (the server's
// public-alarm precomputation only ever asks about such cells). The walk
// descends while the current pyramid cell strictly contains r; reaching a
// safe node anywhere on the path proves r safe, while reaching r's own
// level (or running out of refinement) on a blocked node proves it is not.
func (r *Region) RectSafe(query geom.Rect) bool {
	return r.RectCoverage(query) == CoverNone
}

// RectCoverage classifies an aligned sub-cell against the region: CoverNone
// when it is wholly safe, CoverFull when it lies inside a covered leaf (no
// descendant can be safe), CoverPartial otherwise. This lets a per-user
// bitmap computation reuse a precomputed public-alarm region and still
// produce bit-identical output to the direct computation.
func (r *Region) RectCoverage(query geom.Rect) Coverage {
	node := int32(0)
	rect := r.cell
	for {
		f := r.flags[node]
		if f&nodeSafe != 0 {
			return CoverNone
		}
		if f&nodeCovered != 0 {
			return CoverFull
		}
		if r.kidsBase[node] < 0 || query.ContainsRect(rect) {
			// Blocked at (or below) the query's own level; an expandable
			// blocked node at the query level is partial by construction.
			return CoverPartial
		}
		idx := locateChild(rect, r.params.U, r.params.V, query.Center())
		rect = childRect(rect, r.params.U, r.params.V, idx)
		node = r.kidsBase[node] + int32(idx)
	}
}

// Coverage returns the fraction of the base cell area covered by the safe
// region — the paper's coverage quality metric η(Ψs).
func (r *Region) Coverage() float64 {
	fanout := r.params.U * r.params.V
	var safeArea func(idx int32, rect geom.Rect) float64
	safeArea = func(idx int32, rect geom.Rect) float64 {
		if r.flags[idx]&nodeSafe != 0 {
			return rect.Area()
		}
		base := r.kidsBase[idx]
		if base < 0 {
			return 0
		}
		total := 0.0
		for i := 0; i < fanout; i++ {
			total += safeArea(base+int32(i), childRect(rect, r.params.U, r.params.V, i))
		}
		return total
	}
	area := r.cell.Area()
	if area == 0 {
		return 0
	}
	return safeArea(0, r.cell) / area
}

// SafeRects appends to dst the maximal safe cells of the region as
// rectangles (the rectilinear polygon decomposition) and returns the
// extended slice. Used by tests and by the containment-detection geometry
// the paper's technical report describes.
func (r *Region) SafeRects(dst []geom.Rect) []geom.Rect {
	fanout := r.params.U * r.params.V
	var walk func(idx int32, rect geom.Rect)
	walk = func(idx int32, rect geom.Rect) {
		if r.flags[idx]&nodeSafe != 0 {
			dst = append(dst, rect)
			return
		}
		base := r.kidsBase[idx]
		if base < 0 {
			return
		}
		for i := 0; i < fanout; i++ {
			walk(base+int32(i), childRect(rect, r.params.U, r.params.V, i))
		}
	}
	walk(0, r.cell)
	return dst
}

// childRect returns the idx-th child of rect under a U×V split. Children
// are ordered in raster-scan fashion: rows top to bottom, columns left to
// right, matching the paper's figures.
func childRect(rect geom.Rect, u, v int, idx int) geom.Rect {
	col := idx % u
	rowFromTop := idx / u
	w, h := rect.Width(), rect.Height()
	return geom.Rect{
		MinX: rect.MinX + w*float64(col)/float64(u),
		MaxX: rect.MinX + w*float64(col+1)/float64(u),
		MinY: rect.MaxY - h*float64(rowFromTop+1)/float64(v),
		MaxY: rect.MaxY - h*float64(rowFromTop)/float64(v),
	}
}

// locateChild returns the child index containing p (p must be within
// rect; boundary points resolve toward higher column / lower row index,
// clamped to the grid).
func locateChild(rect geom.Rect, u, v int, p geom.Point) int {
	col := int(math.Floor((p.X - rect.MinX) / rect.Width() * float64(u)))
	rowFromTop := int(math.Floor((rect.MaxY - p.Y) / rect.Height() * float64(v)))
	if col < 0 {
		col = 0
	} else if col >= u {
		col = u - 1
	}
	if rowFromTop < 0 {
		rowFromTop = 0
	} else if rowFromTop >= v {
		rowFromTop = v - 1
	}
	return rowFromTop*u + col
}

// MergedSafeRects returns the safe region as a reduced set of disjoint
// rectangles: the safe pyramid cells merged greedily — first runs of
// horizontally adjacent cells sharing a y-interval, then vertically
// adjacent runs sharing an x-interval. This is the "geometrical shape of
// the safe region" decoding the paper defers to its technical report;
// fewer rectangles mean cheaper point-in-region tests for consumers that
// cannot keep the pyramid (and smaller patch lists).
func (r *Region) MergedSafeRects() []geom.Rect {
	rects := r.SafeRects(nil)
	if len(rects) <= 1 {
		return rects
	}
	// Pass 1: merge horizontal neighbours with identical y-extent.
	sort.Slice(rects, func(i, j int) bool {
		if rects[i].MinY != rects[j].MinY {
			return rects[i].MinY < rects[j].MinY
		}
		if rects[i].MaxY != rects[j].MaxY {
			return rects[i].MaxY < rects[j].MaxY
		}
		return rects[i].MinX < rects[j].MinX
	})
	rects = mergeRuns(rects, func(a, b geom.Rect) bool {
		return a.MinY == b.MinY && a.MaxY == b.MaxY && nearlyEqual(a.MaxX, b.MinX)
	}, func(a, b geom.Rect) geom.Rect {
		a.MaxX = b.MaxX
		return a
	})
	// Pass 2: merge vertical neighbours with identical x-extent.
	sort.Slice(rects, func(i, j int) bool {
		if rects[i].MinX != rects[j].MinX {
			return rects[i].MinX < rects[j].MinX
		}
		if rects[i].MaxX != rects[j].MaxX {
			return rects[i].MaxX < rects[j].MaxX
		}
		return rects[i].MinY < rects[j].MinY
	})
	return mergeRuns(rects, func(a, b geom.Rect) bool {
		return a.MinX == b.MinX && a.MaxX == b.MaxX && nearlyEqual(a.MaxY, b.MinY)
	}, func(a, b geom.Rect) geom.Rect {
		a.MaxY = b.MaxY
		return a
	})
}

// mergeRuns folds consecutive mergeable rectangles in a sorted slice.
func mergeRuns(rects []geom.Rect, canMerge func(a, b geom.Rect) bool, merge func(a, b geom.Rect) geom.Rect) []geom.Rect {
	out := rects[:0]
	cur := rects[0]
	for _, next := range rects[1:] {
		if canMerge(cur, next) {
			cur = merge(cur, next)
			continue
		}
		out = append(out, cur)
		cur = next
	}
	return append(out, cur)
}

// nearlyEqual tolerates the float jitter of sibling cell edges computed
// from different parents.
func nearlyEqual(a, b float64) bool {
	diff := a - b
	return diff < 1e-6 && diff > -1e-6
}
