// Package metrics holds the evaluation counters and the deterministic
// server cost model behind the paper's Figures 4(b) and 6(d).
//
// The paper reports server load as CPU minutes split into "alarm
// processing" (evaluating position updates against the R*-tree alarm
// index) and "safe region computation". Re-measuring wall-clock time would
// make every run noisy and machine-dependent, so SABRE instead charges a
// fixed cost per elementary operation — R*-tree node accesses, alarm
// containment checks, skyline candidate/corner work, bitmap intersection
// tests — and converts operation counts to seconds with per-operation
// constants. The constants are calibrated so the default paper-scale
// workload lands in the same few-minutes range as the paper's Figure 4(b);
// only the shape of the curves (which approach wins, where the total is
// minimized) is meaningful, as explained in DESIGN.md §2.
package metrics

// CostParams converts operation counts into seconds of simulated server
// CPU time.
type CostParams struct {
	// NodeAccessSeconds per R*-tree node visited during alarm evaluation
	// or nearest-alarm (safe period) queries.
	NodeAccessSeconds float64
	// AlarmCheckSeconds per alarm region examined during update
	// processing (relevance filtering, containment).
	AlarmCheckSeconds float64
	// CandidateSeconds per MWPSR candidate point processed and
	// CornerSeconds per component-rectangle corner evaluated.
	CandidateSeconds float64
	CornerSeconds    float64
	// BitmapTestSeconds per rect-vs-alarm intersection test performed
	// while encoding a GBSR/PBSR bitmap.
	BitmapTestSeconds float64
}

// DefaultCosts is calibrated to put the default workload's totals in the
// paper's range: per-update index work (node accesses, per-alarm checks)
// is priced like the buffered-I/O-heavy operation it is on a loaded
// server, while the in-memory geometry of safe region construction is
// priced orders of magnitude cheaper. At the paper-scale default workload
// this puts periodic evaluation near the ~150 server-minutes of
// Figure 6(d) and the MWPSR total in the 2–15 minute band of Figure 4(b).
func DefaultCosts() CostParams {
	return CostParams{
		NodeAccessSeconds: 25e-6,
		AlarmCheckSeconds: 5e-6,
		CandidateSeconds:  18e-6,
		CornerSeconds:     6e-6,
		BitmapTestSeconds: 0.2e-6,
	}
}

// Server accumulates the server-side counters for one simulation run.
// It is not safe for concurrent use; the TCP server guards it itself.
type Server struct {
	costs CostParams

	// Uplink (client → server).
	UplinkMessages uint64
	UplinkBytes    uint64
	// Downlink (server → client).
	DownlinkMessages uint64
	DownlinkBytes    uint64
	// Triggers delivered (alarm, subscriber) pairs.
	AlarmsTriggered uint64

	// Operation counters feeding the cost model.
	nodeAccesses     uint64
	alarmChecks      uint64
	srCandidates     uint64
	srCorners        uint64
	srBitmapTests    uint64
	srNodeAccesses   uint64
	srComputations   uint64
	rectClips        uint64
	alarmEvaluations uint64
}

// NewServer returns a counter set using the given cost model.
func NewServer(costs CostParams) *Server {
	return &Server{costs: costs}
}

// AddUplink records a client→server message of the given encoded size.
func (s *Server) AddUplink(bytes int) {
	s.UplinkMessages++
	s.UplinkBytes += uint64(bytes)
}

// AddDownlink records a server→client message of the given encoded size.
func (s *Server) AddDownlink(bytes int) {
	s.DownlinkMessages++
	s.DownlinkBytes += uint64(bytes)
}

// AddAlarmEvaluation charges one position-update evaluation: the R*-tree
// node accesses it performed and the alarm regions it examined.
func (s *Server) AddAlarmEvaluation(nodeAccesses, alarmChecks uint64) {
	s.alarmEvaluations++
	s.nodeAccesses += nodeAccesses
	s.alarmChecks += alarmChecks
}

// AddRectComputation charges one MWPSR safe region computation. clips is
// the number of post-assembly soundness clips that were needed; the
// skyline construction keeps it at zero, and the ablate-clipping benchmark
// reports it as evidence.
func (s *Server) AddRectComputation(candidates, corners, clips int) {
	s.srComputations++
	s.srCandidates += uint64(candidates)
	s.srCorners += uint64(corners)
	s.rectClips += uint64(clips)
}

// RectClips returns the cumulative soundness clips applied to MWPSR
// regions.
func (s *Server) RectClips() uint64 { return s.rectClips }

// AddBitmapComputation charges one GBSR/PBSR safe region computation.
func (s *Server) AddBitmapComputation(intersectionTests int) {
	s.srComputations++
	s.srBitmapTests += uint64(intersectionTests)
}

// AddSafeRegionIndexWork charges R*-tree node accesses performed while
// gathering the relevant alarms for a safe region computation (the
// SearchRect per update); it books into the safe-region bucket without
// counting as a separate computation.
func (s *Server) AddSafeRegionIndexWork(nodeAccesses uint64) {
	s.srNodeAccesses += nodeAccesses
}

// AddSafePeriodComputation charges one safe-period computation (the SP
// baseline's nearest-alarm query); the paper's Figure 6(d) buckets this
// with safe region computation.
func (s *Server) AddSafePeriodComputation(nodeAccesses uint64) {
	s.srComputations++
	s.srNodeAccesses += nodeAccesses
}

// AlarmEvaluations returns the number of position updates evaluated.
func (s *Server) AlarmEvaluations() uint64 { return s.alarmEvaluations }

// SafeRegionComputations returns the number of safe regions computed.
func (s *Server) SafeRegionComputations() uint64 { return s.srComputations }

// AlarmProcessingSeconds converts the alarm evaluation work to seconds.
func (s *Server) AlarmProcessingSeconds() float64 {
	return float64(s.nodeAccesses)*s.costs.NodeAccessSeconds +
		float64(s.alarmChecks)*s.costs.AlarmCheckSeconds
}

// SafeRegionSeconds converts the safe region computation work to seconds.
func (s *Server) SafeRegionSeconds() float64 {
	return float64(s.srCandidates)*s.costs.CandidateSeconds +
		float64(s.srCorners)*s.costs.CornerSeconds +
		float64(s.srBitmapTests)*s.costs.BitmapTestSeconds +
		float64(s.srNodeAccesses)*s.costs.NodeAccessSeconds
}

// TotalSeconds is alarm processing plus safe region computation.
func (s *Server) TotalSeconds() float64 {
	return s.AlarmProcessingSeconds() + s.SafeRegionSeconds()
}

// DownlinkMbps converts downstream bytes over a trace duration to the
// megabits per second the paper's Figure 6(b) plots.
func (s *Server) DownlinkMbps(traceSeconds float64) float64 {
	if traceSeconds <= 0 {
		return 0
	}
	return float64(s.DownlinkBytes) * 8 / traceSeconds / 1e6
}

// Client accumulates per-fleet client-side counters.
type Client struct {
	// ContainmentChecks is the number of safe region containment checks
	// performed, and Probes the total elementary probe operations those
	// checks cost (1 for a rectangle, up to h for a pyramid descent, one
	// per alarm for the OPT local scan).
	ContainmentChecks uint64
	Probes            uint64
	// MessagesSent counts client→server reports.
	MessagesSent uint64
}

// AddCheck records one containment check costing the given probes.
func (c *Client) AddCheck(probes int) {
	c.ContainmentChecks++
	c.Probes += uint64(probes)
}

// Merge folds other into c (used to aggregate per-client counters).
func (c *Client) Merge(other Client) {
	c.ContainmentChecks += other.ContainmentChecks
	c.Probes += other.Probes
	c.MessagesSent += other.MessagesSent
}

// EnergyParams converts client-side work into energy, mirroring the
// paper's mWh reporting (the paper omits its exact energy calculation; the
// constants below are calibrated to land the default workload in the same
// hundreds-of-mWh range as Figures 5(b)/6(c)).
type EnergyParams struct {
	// ProbeMilliWattHours per elementary containment probe.
	ProbeMilliWattHours float64
	// RadioMilliWattHours per message transmitted.
	RadioMilliWattHours float64
}

// DefaultEnergy returns the calibrated energy model.
func DefaultEnergy() EnergyParams {
	return EnergyParams{
		ProbeMilliWattHours: 0.004,
		RadioMilliWattHours: 0.05,
	}
}

// Energy returns the fleet energy in milliwatt-hours under p.
func (c Client) Energy(p EnergyParams) float64 {
	return float64(c.Probes)*p.ProbeMilliWattHours +
		float64(c.MessagesSent)*p.RadioMilliWattHours
}
