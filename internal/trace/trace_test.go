package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
)

func sampleFixes(n int, seed int64) []Fix {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Fix, n)
	for i := range out {
		out[i] = Fix{
			Tick: i / 3,
			User: uint64(i%3 + 1),
			Pos:  geom.Pt(rng.Float64()*10000, rng.Float64()*10000),
		}
	}
	return out
}

func writeAll(t *testing.T, w *Writer, fixes []Fix) {
	t.Helper()
	for _, f := range fixes {
		if err := w.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, r io.Reader) []Fix {
	t.Helper()
	tr := NewReader(r)
	var out []Fix
	for {
		f, err := tr.Read()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, f)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	fixes := sampleFixes(100, 1)
	var buf bytes.Buffer
	writeAll(t, NewCSVWriter(&buf), fixes)
	if !strings.HasPrefix(buf.String(), "tick,user,x,y\n") {
		t.Fatal("missing CSV header")
	}
	got := readAll(t, &buf)
	if len(got) != len(fixes) {
		t.Fatalf("read %d of %d fixes", len(got), len(fixes))
	}
	for i := range got {
		if got[i].Tick != fixes[i].Tick || got[i].User != fixes[i].User {
			t.Fatalf("fix %d: %+v vs %+v", i, got[i], fixes[i])
		}
		// CSV stores 3 decimals (millimetres).
		if got[i].Pos.DistanceTo(fixes[i].Pos) > 0.002 {
			t.Fatalf("fix %d position drifted: %v vs %v", i, got[i].Pos, fixes[i].Pos)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	fixes := sampleFixes(500, 2)
	var buf bytes.Buffer
	writeAll(t, NewBinaryWriter(&buf), fixes)
	got := readAll(t, &buf)
	if len(got) != len(fixes) {
		t.Fatalf("read %d of %d fixes", len(got), len(fixes))
	}
	for i := range got {
		if got[i].Tick != fixes[i].Tick || got[i].User != fixes[i].User {
			t.Fatalf("fix %d: %+v vs %+v", i, got[i], fixes[i])
		}
		// Millimetre quantization, matching the CSV precision.
		if got[i].Pos.DistanceTo(fixes[i].Pos) > 0.001 {
			t.Fatalf("fix %d position drifted: %v vs %v", i, got[i].Pos, fixes[i].Pos)
		}
	}
	// Negative coordinates survive.
	var nbuf bytes.Buffer
	neg := []Fix{{0, 1, geom.Pt(-123.456, -0.001)}}
	writeAll(t, NewBinaryWriter(&nbuf), neg)
	back := readAll(t, &nbuf)
	if back[0].Pos.DistanceTo(neg[0].Pos) > 0.001 {
		t.Fatalf("negative coords: %v vs %v", back[0].Pos, neg[0].Pos)
	}
}

func TestBinarySmallerThanCSV(t *testing.T) {
	fixes := sampleFixes(2000, 3)
	var csvBuf, binBuf bytes.Buffer
	writeAll(t, NewCSVWriter(&csvBuf), fixes)
	writeAll(t, NewBinaryWriter(&binBuf), fixes)
	if binBuf.Len() >= csvBuf.Len() {
		t.Errorf("binary %d >= csv %d bytes", binBuf.Len(), csvBuf.Len())
	}
}

func TestHeaderlessCSVAccepted(t *testing.T) {
	got := readAll(t, strings.NewReader("0,1,10.5,20.5\n1,1,11.5,21.5\n"))
	if len(got) != 2 || got[0].Pos != geom.Pt(10.5, 20.5) {
		t.Fatalf("got %+v", got)
	}
}

func TestBlankLinesSkipped(t *testing.T) {
	got := readAll(t, strings.NewReader("tick,user,x,y\n\n0,1,1,1\n\n\n1,1,2,2\n"))
	if len(got) != 2 {
		t.Fatalf("got %d fixes", len(got))
	}
}

func TestCorruptInputs(t *testing.T) {
	cases := map[string]string{
		"too few fields": "tick,user,x,y\n1,2,3\n",
		"bad tick":       "x,2,3,4\n",
		"bad user":       "1,u,3,4\n",
		"bad x":          "1,2,x,4\n",
		"bad y":          "1,2,3,y\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			tr := NewReader(strings.NewReader(in))
			_, err := tr.Read()
			if !errors.Is(err, ErrBadFormat) {
				t.Errorf("err = %v, want ErrBadFormat", err)
			}
		})
	}
	t.Run("truncated binary", func(t *testing.T) {
		var buf bytes.Buffer
		writeAll(t, NewBinaryWriter(&buf), sampleFixes(2, 4))
		data := buf.Bytes()[:buf.Len()-5]
		tr := NewReader(bytes.NewReader(data))
		if _, err := tr.Read(); err != nil {
			t.Fatalf("first record should parse: %v", err)
		}
		if _, err := tr.Read(); !errors.Is(err, ErrBadFormat) {
			t.Errorf("truncated record: %v", err)
		}
	})
	t.Run("bad binary version", func(t *testing.T) {
		tr := NewReader(bytes.NewReader([]byte{'S', 'B', 'T', 'R', 99, 0, 0}))
		if _, err := tr.Read(); !errors.Is(err, ErrBadFormat) {
			t.Errorf("bad version: %v", err)
		}
	})
}

func TestEmptyStream(t *testing.T) {
	tr := NewReader(strings.NewReader(""))
	if _, err := tr.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestReadUserPath(t *testing.T) {
	fixes := []Fix{
		{0, 1, geom.Pt(1, 1)},
		{0, 2, geom.Pt(9, 9)},
		{1, 1, geom.Pt(2, 2)},
		{1, 2, geom.Pt(8, 8)},
		{2, 1, geom.Pt(3, 3)},
	}
	for _, mk := range []func(io.Writer) *Writer{NewCSVWriter, NewBinaryWriter} {
		var buf bytes.Buffer
		writeAll(t, mk(&buf), fixes)
		path, err := ReadUserPath(&buf, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(path) != 3 || path[2] != geom.Pt(3, 3) {
			t.Fatalf("path = %v", path)
		}
	}
}
