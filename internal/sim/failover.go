package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/sabre-geo/sabre/internal/client"
	"github.com/sabre-geo/sabre/internal/cluster"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/mobility"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/stats"
	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/transport"
)

// FailoverKill scripts one primary's death mid-workload with NO
// scripted recovery: the shard comes back only when the failure
// detector notices the silence and promotes a follower.
type FailoverKill struct {
	// Tick is when the primary dies (before that tick's reports).
	Tick int
	// Shard is which partition's primary is killed.
	Shard int
	// Tear is how the death mangles the dead primary's WAL tail. The
	// promoted follower's own log is untouched either way — promotion
	// never reads the dead primary's disk.
	Tear store.TearMode
	// MidDrain, when true, arms cluster.CPDrainBeforeImport and starts
	// MergeShards(Into, Shard); the merge stops at the armed point with
	// the drain committed but no session moved, and only then is Shard
	// killed — the primary dies mid-merge-drain. Promotion revives it on
	// its drain rectangle and ResumeDrains completes the migration.
	MidDrain bool
	// Into is the absorbing sibling for a MidDrain kill.
	Into int
}

// FailoverPlan scripts a deterministic replicated run for RunFailover.
type FailoverPlan struct {
	// Seed drives tail-mangling choices and session backoff jitter.
	Seed int64
	// Shards is the partition count (default 4).
	Shards int
	// Replicas is the follower count per shard (default 1).
	Replicas int
	// PromoteAfter is how many silent replication ticks depose a primary
	// (default 3).
	PromoteAfter int
	// ReplAck selects synchronous replication: every acknowledged write
	// is applied to every follower before the append returns.
	ReplAck bool
	// Kills fire in tick order.
	Kills []FailoverKill
	// SnapshotEvery is each shard store's checkpoint cadence (0 disables).
	SnapshotEvery int
	// Fsync syncs each shard's WAL per append.
	Fsync bool
	// Session tunes the client session state machines.
	Session client.SessionConfig
	// DrainTicks extends the run past the trace end so sessions collect
	// redelivered firings and drain their report queues.
	DrainTicks int
}

// DefaultFailoverPlan kills every primary of a four-shard cluster once:
// two plain kills with mangled WAL tails, one mid-merge-drain kill of
// shard 0 (merging into its sibling 2), and finally a kill of the
// widened shard 2. No shard is ever recovered from its own disk — every
// revival is a follower promotion.
func DefaultFailoverPlan(seed int64, durationTicks int) FailoverPlan {
	return FailoverPlan{
		Seed:         seed,
		Shards:       4,
		Replicas:     1,
		PromoteAfter: 3,
		Kills: []FailoverKill{
			{Tick: durationTicks / 4, Shard: 1, Tear: store.TearTruncate},
			{Tick: durationTicks / 2, Shard: 3, Tear: store.TearFlipBit},
			{Tick: durationTicks * 2 / 3, Shard: 0, Tear: store.TearNone, MidDrain: true, Into: 2},
			{Tick: durationTicks * 5 / 6, Shard: 2, Tear: store.TearTruncate},
		},
		SnapshotEvery: 256,
		DrainTicks:    200,
	}
}

// RunFailover executes one strategy over the workload against a
// replicated sharded cluster: every shard streams its WAL to follower
// logs, scripted kills fail primaries with no scripted recovery, and
// the per-tick replication clock detects the silence and promotes a
// follower — so the shard's sessions, alarms and pending firings
// survive on the promoted copy and the router resumes without any
// recovery call. Triggers are recorded at client delivery exactly as in
// RunCluster, so the delivered (user, alarm) set must equal a
// single-server Run's — which TestFailoverDeliveryEquality asserts.
// Fully deterministic for a fixed workload, strategy and plan.
func RunFailover(w *Workload, sc StrategyConfig, plan FailoverPlan, dataDir string) (*Report, error) {
	if sc.PyramidHeight == 0 {
		sc.PyramidHeight = 5
	}
	if sc.BitmapMaxBits == 0 {
		sc.BitmapMaxBits = 2048
	}
	if sc.CellAreaKM2 == 0 {
		sc.CellAreaKM2 = 2.5
	}
	if plan.Shards <= 0 {
		plan.Shards = 4
	}
	if plan.Replicas <= 0 {
		plan.Replicas = 1
	}
	if plan.PromoteAfter <= 0 {
		plan.PromoteAfter = 3
	}
	if dataDir == "" {
		tmp, err := os.MkdirTemp("", "sabre-failover-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}
	mobCfg := mobility.DefaultConfig(w.Config.Vehicles, w.Config.Seed)
	mob, err := mobility.NewSimulator(w.Net, mobCfg)
	if err != nil {
		return nil, err
	}
	universe := w.Net.Bounds().Expand(50)
	engCfg := server.Config{
		Universe:                universe,
		CellAreaM2:              sc.CellAreaKM2 * 1e6,
		Model:                   sc.Model,
		PyramidParams:           pyramidParams(sc),
		MaxSpeed:                mob.MaxSpeed(),
		TickSeconds:             mobCfg.TickSeconds,
		PrecomputePublicBitmaps: sc.PrecomputePublicBitmaps,
		ExhaustiveAssembly:      sc.ExhaustiveAssembly,
		UseBucketIndex:          sc.BucketIndex,
		SafePeriodSpeedFactor:   sc.SafePeriodSpeedFactor,
		Costs:                   metrics.DefaultCosts(),
	}

	cl, err := cluster.New(cluster.Config{
		Shards:  plan.Shards,
		Engine:  engCfg,
		DataDir: dataDir,
		Store: store.Options{
			Fsync:         plan.Fsync,
			SnapshotEvery: plan.SnapshotEvery,
		},
		Replicas:     plan.Replicas,
		PromoteAfter: plan.PromoteAfter,
		ReplAck:      plan.ReplAck,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	if _, err := cl.InstallAlarms(w.Alarms); err != nil {
		return nil, err
	}
	rt := cluster.NewRouter(cl)

	n := w.Config.Vehicles
	links := make([]*crashLink, n)
	perClient := make([]metrics.Client, n)
	sessions := make([]*client.Session, n)
	curTick := 0
	var triggers []Trigger

	for i := 0; i < n; i++ {
		i := i
		user := uint64(i + 1)
		c := client.New(user, sc.Strategy, &perClient[i])
		scfg := plan.Session
		scfg.MaxHeight = uint8(sc.PyramidHeight)
		scfg.JitterSeed = plan.Seed ^ int64(user)<<17
		dial := func() (transport.Conn, error) {
			cEnd, sEnd := transport.Pipe(4096)
			links[i] = &crashLink{user: user, cli: cEnd, srv: transport.Poller(sEnd)}
			return cEnd, nil
		}
		sessions[i] = client.NewSession(c, dial, scfg, &perClient[i])
		sessions[i].OnFired = func(ids []uint64) {
			for _, id := range ids {
				triggers = append(triggers, Trigger{User: user, Alarm: id, Tick: curTick})
			}
		}
	}

	rng := rand.New(rand.NewSource(plan.Seed ^ 0x5ABE))
	killIdx := 0

	positions := make([]geom.Point, n)
	var serverWall time.Duration
	total := w.Config.DurationTicks + plan.DrainTicks
	for tick := 0; tick < total; tick++ {
		curTick = tick
		if tick < w.Config.DurationTicks {
			mob.Step()
			for i := range positions {
				positions[i] = mob.Position(i)
			}
		}

		// Phase 1: scripted kills. A plain kill fail-stops the primary
		// mid-flight; a MidDrain kill first drives a merge into its armed
		// crash point so the primary dies with a committed drain entry and
		// every session still resident.
		for killIdx < len(plan.Kills) && tick >= plan.Kills[killIdx].Tick {
			ev := plan.Kills[killIdx]
			killIdx++
			if ev.MidDrain {
				cl.SetCrashPoint(cluster.CPDrainBeforeImport)
				err := cl.MergeShards(ev.Into, ev.Shard)
				if !errors.Is(err, cluster.ErrCrashPoint) {
					return nil, fmt.Errorf("sim: kill %d: merge %d→%d did not stop mid-drain (err=%v) — shard %d has no sessions to drain",
						killIdx, ev.Shard, ev.Into, err, ev.Shard)
				}
			}
			if err := cl.KillShard(ev.Shard, ev.Tear, rng); err != nil {
				return nil, fmt.Errorf("sim: kill %d: %w", killIdx, err)
			}
		}

		// Phase 2: sessions evaluate, (re)connect and send in index order.
		for i, s := range sessions {
			if tick < w.Config.DurationTicks {
				s.Step(tick, positions[i])
			} else {
				s.Quiesce(tick)
			}
		}

		// Phase 3: the router drains each link in index order.
		for i, ln := range links {
			if ln == nil {
				continue
			}
			if err := serveClusterLink(rt, ln, &serverWall); err != nil {
				if err == transport.ErrClosed {
					links[i] = nil
					continue
				}
				return nil, fmt.Errorf("tick %d user %d: %w", tick, ln.user, err)
			}
		}

		// Phase 4: the replication clock beats once per tick — live
		// primaries pump their follower streams, silent ones are deposed
		// and failed over — and any drain interrupted by a kill resumes as
		// soon as a promotion has both of its shards serving again.
		cl.TickReplication(tick)
		if err := cl.ResumeDrains(); err != nil {
			return nil, fmt.Errorf("sim: resume drains at tick %d: %w", tick, err)
		}
	}

	for i, s := range sessions {
		if qs := s.QueueLen(); qs > 0 {
			return nil, fmt.Errorf("sim: user %d still has %d undrained reports after %d drain ticks — extend DrainTicks or kill earlier", i+1, qs, plan.DrainTicks)
		}
	}
	if killIdx != len(plan.Kills) {
		return nil, fmt.Errorf("sim: only %d of %d kills fired — trace too short for the plan", killIdx, len(plan.Kills))
	}
	// Every shard live under the final map must have been revived by a
	// promotion — RunFailover never calls RecoverShard.
	for _, s := range cl.PartitionMap().Shards() {
		if !cl.Up(s) {
			return nil, fmt.Errorf("sim: shard %d still down at trace end — no follower was promotable", s)
		}
	}

	clientMet := &metrics.Client{}
	msgsPerClient := make([]uint64, n)
	for i := range perClient {
		clientMet.Merge(perClient[i])
		msgsPerClient[i] = perClient[i].MessagesSent
	}
	var met metrics.Snapshot
	for s := 0; s < cl.N(); s++ {
		if eng := cl.Engine(s); eng != nil {
			addSnapshot(&met, eng.Metrics().Snapshot())
		}
	}
	clusterMet := cl.Metrics().Snapshot()
	traceSeconds := float64(w.Config.DurationTicks) * mobCfg.TickSeconds
	return &Report{
		Strategy:               sc.Strategy.String(),
		Vehicles:               n,
		DurationTicks:          w.Config.DurationTicks,
		UplinkMessages:         met.UplinkMessages,
		UplinkBytes:            met.UplinkBytes,
		DownlinkMessages:       met.DownlinkMessages,
		DownlinkBytes:          met.DownlinkBytes,
		DownlinkMbps:           met.DownlinkMbps(traceSeconds),
		UpdateBatches:          met.UpdateBatches,
		BatchedUpdates:         met.BatchedUpdates,
		ClientChecks:           clientMet.ContainmentChecks,
		ClientProbes:           clientMet.Probes,
		ClientEnergyMWh:        clientMet.Energy(metrics.DefaultEnergy()),
		ClientProbeEnergyMWh:   float64(clientMet.Probes) * metrics.DefaultEnergy().ProbeMilliWattHours,
		PerClientMessages:      stats.SummarizeUints(msgsPerClient),
		AlarmProcessingMinutes: met.AlarmProcessingSeconds() / 60,
		SafeRegionMinutes:      met.SafeRegionSeconds() / 60,
		TotalServerMinutes:     met.TotalSeconds() / 60,
		SafeRegionComputations: met.SafeRegionComputations,
		AlarmEvaluations:       met.AlarmEvaluations,
		RectClips:              met.RectClips,
		MeasuredServerSeconds:  serverWall.Seconds(),
		Triggers:               triggers,
		Cluster:                &clusterMet,
		PartitionEpoch:         cl.Epoch(),
	}, nil
}
