// Package metrics holds the evaluation counters and the deterministic
// server cost model behind the paper's Figures 4(b) and 6(d).
//
// The paper reports server load as CPU minutes split into "alarm
// processing" (evaluating position updates against the R*-tree alarm
// index) and "safe region computation". Re-measuring wall-clock time would
// make every run noisy and machine-dependent, so SABRE instead charges a
// fixed cost per elementary operation — R*-tree node accesses, alarm
// containment checks, skyline candidate/corner work, bitmap intersection
// tests — and converts operation counts to seconds with per-operation
// constants. The constants are calibrated so the default paper-scale
// workload lands in the same few-minutes range as the paper's Figure 4(b);
// only the shape of the curves (which approach wins, where the total is
// minimized) is meaningful, as explained in DESIGN.md §2.
package metrics

import "sync/atomic"

// CostParams converts operation counts into seconds of simulated server
// CPU time.
type CostParams struct {
	// NodeAccessSeconds per R*-tree node visited during alarm evaluation
	// or nearest-alarm (safe period) queries.
	NodeAccessSeconds float64
	// AlarmCheckSeconds per alarm region examined during update
	// processing (relevance filtering, containment).
	AlarmCheckSeconds float64
	// CandidateSeconds per MWPSR candidate point processed and
	// CornerSeconds per component-rectangle corner evaluated.
	CandidateSeconds float64
	CornerSeconds    float64
	// BitmapTestSeconds per rect-vs-alarm intersection test performed
	// while encoding a GBSR/PBSR bitmap.
	BitmapTestSeconds float64
}

// DefaultCosts is calibrated to put the default workload's totals in the
// paper's range: per-update index work (node accesses, per-alarm checks)
// is priced like the buffered-I/O-heavy operation it is on a loaded
// server, while the in-memory geometry of safe region construction is
// priced orders of magnitude cheaper. At the paper-scale default workload
// this puts periodic evaluation near the ~150 server-minutes of
// Figure 6(d) and the MWPSR total in the 2–15 minute band of Figure 4(b).
func DefaultCosts() CostParams {
	return CostParams{
		NodeAccessSeconds: 25e-6,
		AlarmCheckSeconds: 5e-6,
		CandidateSeconds:  18e-6,
		CornerSeconds:     6e-6,
		BitmapTestSeconds: 0.2e-6,
	}
}

// Server accumulates the server-side counters for one simulation run. All
// counters are atomics, so concurrent update handlers account without any
// external lock and Snapshot can be read while updates are in flight.
type Server struct {
	costs CostParams

	// Uplink (client → server).
	uplinkMessages atomic.Uint64
	uplinkBytes    atomic.Uint64
	// Downlink (server → client).
	downlinkMessages atomic.Uint64
	downlinkBytes    atomic.Uint64
	// Batched uplink: frames received and position updates they carried.
	// A batch charges uplinkBytes once for the whole frame; uplinkMessages
	// still counts the contained updates so update totals stay comparable
	// between batched and unbatched runs.
	updateBatches  atomic.Uint64
	batchedUpdates atomic.Uint64
	// Triggers delivered (alarm, subscriber) pairs.
	alarmsTriggered atomic.Uint64

	// Operation counters feeding the cost model.
	nodeAccesses     atomic.Uint64
	alarmChecks      atomic.Uint64
	srCandidates     atomic.Uint64
	srCorners        atomic.Uint64
	srBitmapTests    atomic.Uint64
	srNodeAccesses   atomic.Uint64
	srComputations   atomic.Uint64
	rectClips        atomic.Uint64
	alarmEvaluations atomic.Uint64

	// Session lifecycle counters (fault-tolerant connection path).
	sessionsOpened     atomic.Uint64
	sessionsResumed    atomic.Uint64
	heartbeats         atomic.Uint64
	redeliveredUpdates atomic.Uint64
	firedRedeliveries  atomic.Uint64

	// Durability counters (write-ahead log and snapshots; Server satisfies
	// store.Counters).
	walAppends        atomic.Uint64
	walBytes          atomic.Uint64
	walFsyncs         atomic.Uint64
	walGroupCommits   atomic.Uint64
	walGroupRecords   atomic.Uint64
	walSyncNs         atomic.Uint64
	snapshots         atomic.Uint64
	recoveries        atomic.Uint64
	recoveredRecords  atomic.Uint64
	walTruncatedBytes atomic.Uint64
	firedEvictions    atomic.Uint64
	sessionsExpired   atomic.Uint64
	fencedWrites      atomic.Uint64

	// Handoff counters (cluster shard membership changes).
	sessionsExported atomic.Uint64
	sessionsImported atomic.Uint64

	// Lifecycle alarm counters: per-kind installed-alarm gauges and the
	// cumulative count of lifecycle transitions (enter/exit/severity)
	// delivered.
	alarmsContinuous atomic.Uint64
	alarmsPair       atomic.Uint64
	alarmsComposite  atomic.Uint64
	alarmTransitions atomic.Uint64
}

// Snapshot is a consistent-enough point-in-time copy of the server
// counters: each field is an atomic load, so a snapshot taken while
// updates are in flight may split one update's charges across two
// snapshots but never tears an individual counter. Once the workload
// quiesces, Snapshot is exact.
type Snapshot struct {
	Costs CostParams

	UplinkMessages   uint64
	UplinkBytes      uint64
	DownlinkMessages uint64
	DownlinkBytes    uint64
	UpdateBatches    uint64 `json:"update_batches"`
	BatchedUpdates   uint64 `json:"batched_updates"`
	AlarmsTriggered  uint64

	NodeAccesses           uint64
	AlarmChecks            uint64
	SRCandidates           uint64
	SRCorners              uint64
	SRBitmapTests          uint64
	SRNodeAccesses         uint64
	SafeRegionComputations uint64
	RectClips              uint64
	AlarmEvaluations       uint64

	SessionsOpened     uint64
	SessionsResumed    uint64
	Heartbeats         uint64
	RedeliveredUpdates uint64
	FiredRedeliveries  uint64

	WALAppends        uint64
	WALBytes          uint64
	WALFsyncs         uint64
	WALGroupCommits   uint64 `json:"wal_group_commits"`
	WALGroupRecords   uint64 `json:"wal_group_records"`
	WALSyncNs         uint64 `json:"wal_sync_ns"`
	Snapshots         uint64
	Recoveries        uint64
	RecoveredRecords  uint64
	WALTruncatedBytes uint64
	FiredEvictions    uint64
	SessionsExpired   uint64
	FencedWrites      uint64 `json:"fenced_writes"`

	SessionsExported uint64
	SessionsImported uint64

	AlarmsContinuous uint64 `json:"alarms_continuous"`
	AlarmsPair       uint64 `json:"alarms_pair"`
	AlarmsComposite  uint64 `json:"alarms_composite"`
	AlarmTransitions uint64 `json:"alarm_transitions"`
}

// NewServer returns a counter set using the given cost model.
func NewServer(costs CostParams) *Server {
	return &Server{costs: costs}
}

// Snapshot returns a copy of every counter. Safe to call concurrently
// with in-flight updates.
func (s *Server) Snapshot() Snapshot {
	return Snapshot{
		Costs:                  s.costs,
		UplinkMessages:         s.uplinkMessages.Load(),
		UplinkBytes:            s.uplinkBytes.Load(),
		DownlinkMessages:       s.downlinkMessages.Load(),
		DownlinkBytes:          s.downlinkBytes.Load(),
		UpdateBatches:          s.updateBatches.Load(),
		BatchedUpdates:         s.batchedUpdates.Load(),
		AlarmsTriggered:        s.alarmsTriggered.Load(),
		NodeAccesses:           s.nodeAccesses.Load(),
		AlarmChecks:            s.alarmChecks.Load(),
		SRCandidates:           s.srCandidates.Load(),
		SRCorners:              s.srCorners.Load(),
		SRBitmapTests:          s.srBitmapTests.Load(),
		SRNodeAccesses:         s.srNodeAccesses.Load(),
		SafeRegionComputations: s.srComputations.Load(),
		RectClips:              s.rectClips.Load(),
		AlarmEvaluations:       s.alarmEvaluations.Load(),
		SessionsOpened:         s.sessionsOpened.Load(),
		SessionsResumed:        s.sessionsResumed.Load(),
		Heartbeats:             s.heartbeats.Load(),
		RedeliveredUpdates:     s.redeliveredUpdates.Load(),
		FiredRedeliveries:      s.firedRedeliveries.Load(),
		WALAppends:             s.walAppends.Load(),
		WALBytes:               s.walBytes.Load(),
		WALFsyncs:              s.walFsyncs.Load(),
		WALGroupCommits:        s.walGroupCommits.Load(),
		WALGroupRecords:        s.walGroupRecords.Load(),
		WALSyncNs:              s.walSyncNs.Load(),
		Snapshots:              s.snapshots.Load(),
		Recoveries:             s.recoveries.Load(),
		RecoveredRecords:       s.recoveredRecords.Load(),
		WALTruncatedBytes:      s.walTruncatedBytes.Load(),
		FiredEvictions:         s.firedEvictions.Load(),
		SessionsExpired:        s.sessionsExpired.Load(),
		FencedWrites:           s.fencedWrites.Load(),
		SessionsExported:       s.sessionsExported.Load(),
		SessionsImported:       s.sessionsImported.Load(),
		AlarmsContinuous:       s.alarmsContinuous.Load(),
		AlarmsPair:             s.alarmsPair.Load(),
		AlarmsComposite:        s.alarmsComposite.Load(),
		AlarmTransitions:       s.alarmTransitions.Load(),
	}
}

// SetAlarmKinds sets the per-kind installed-alarm gauges (continuous,
// pair, composite); one-shot alarms are the registry total minus the sum.
func (s *Server) SetAlarmKinds(continuous, pair, composite uint64) {
	s.alarmsContinuous.Store(continuous)
	s.alarmsPair.Store(pair)
	s.alarmsComposite.Store(composite)
}

// AddAlarmTransitions records delivered lifecycle transitions
// (enter/exit re-arms and composite severity firings).
func (s *Server) AddAlarmTransitions(n uint64) { s.alarmTransitions.Add(n) }

// AddWALAppend records one durable log append of the given framed size.
func (s *Server) AddWALAppend(bytes int) {
	s.walAppends.Add(1)
	s.walBytes.Add(uint64(bytes))
}

// AddWALFsync records one fsync of the write-ahead log.
func (s *Server) AddWALFsync() { s.walFsyncs.Add(1) }

// AddWALGroupCommit records one group commit landing the given number of
// records with a single write (and fsync); syncNanos is the wall time
// that fsync took (0 when fsync is disabled).
func (s *Server) AddWALGroupCommit(records int, syncNanos int64) {
	s.walGroupCommits.Add(1)
	s.walGroupRecords.Add(uint64(records))
	if syncNanos > 0 {
		s.walSyncNs.Add(uint64(syncNanos))
	}
}

// WALGroupSizeAvg returns the average number of records landed per group
// commit (0 before the first commit) — the WAL's syscall amortization
// factor.
func (sn Snapshot) WALGroupSizeAvg() float64 {
	if sn.WALGroupCommits == 0 {
		return 0
	}
	return float64(sn.WALGroupRecords) / float64(sn.WALGroupCommits)
}

// AddSnapshot records one full-state snapshot written (WAL rotation).
func (s *Server) AddSnapshot() { s.snapshots.Add(1) }

// AddRecovery records one crash recovery: how many log records were
// replayed on top of the snapshot and how many torn-tail bytes were
// truncated away.
func (s *Server) AddRecovery(recordsReplayed int, truncatedBytes int64) {
	s.recoveries.Add(1)
	s.recoveredRecords.Add(uint64(recordsReplayed))
	s.walTruncatedBytes.Add(uint64(truncatedBytes))
}

// AddFencedWrite records a WAL append rejected because the store's
// fencing term was overtaken by a promoted follower.
func (s *Server) AddFencedWrite() { s.fencedWrites.Add(1) }

// AddFiredEvictions records pending firings evicted (oldest first) when a
// session exceeded its unacknowledged-firings cap.
func (s *Server) AddFiredEvictions(n uint64) { s.firedEvictions.Add(n) }

// AddSessionsExpired records reliable sessions reaped by the idle TTL
// sweep.
func (s *Server) AddSessionsExpired(n uint64) { s.sessionsExpired.Add(n) }

// AddSessionExported records a session handed off out of this shard.
func (s *Server) AddSessionExported() { s.sessionsExported.Add(1) }

// AddSessionImported records a session handed off into this shard.
func (s *Server) AddSessionImported() { s.sessionsImported.Add(1) }

// AddSessionOpened records a fresh session established via Hello.
func (s *Server) AddSessionOpened() { s.sessionsOpened.Add(1) }

// AddSessionResumed records a reconnecting client resuming its session.
func (s *Server) AddSessionResumed() { s.sessionsResumed.Add(1) }

// AddHeartbeat records a heartbeat received from a client.
func (s *Server) AddHeartbeat() { s.heartbeats.Add(1) }

// AddRedeliveredUpdates records position updates received more than once
// (client resend after a lost response).
func (s *Server) AddRedeliveredUpdates(n uint64) { s.redeliveredUpdates.Add(n) }

// AddFiredRedeliveries records unacknowledged alarm firings re-sent to a
// reliable client.
func (s *Server) AddFiredRedeliveries(n uint64) { s.firedRedeliveries.Add(n) }

// AddUplink records a client→server message of the given encoded size.
func (s *Server) AddUplink(bytes int) {
	s.uplinkMessages.Add(1)
	s.uplinkBytes.Add(uint64(bytes))
}

// AddUplinkBatch records one client→server UpdateBatch frame of the given
// encoded size carrying n position updates. The frame's bytes are charged
// once (that is the point of batching); the message counter advances by n
// so per-update totals stay comparable with unbatched runs.
func (s *Server) AddUplinkBatch(bytes, n int) {
	s.uplinkMessages.Add(uint64(n))
	s.uplinkBytes.Add(uint64(bytes))
	s.updateBatches.Add(1)
	s.batchedUpdates.Add(uint64(n))
}

// AvgBatchSize returns the average number of updates per batch frame (0
// when no batches were received).
func (sn Snapshot) AvgBatchSize() float64 {
	if sn.UpdateBatches == 0 {
		return 0
	}
	return float64(sn.BatchedUpdates) / float64(sn.UpdateBatches)
}

// AddDownlink records a server→client message of the given encoded size.
func (s *Server) AddDownlink(bytes int) {
	s.downlinkMessages.Add(1)
	s.downlinkBytes.Add(uint64(bytes))
}

// AddAlarmsTriggered records delivered (alarm, subscriber) trigger pairs.
func (s *Server) AddAlarmsTriggered(n uint64) {
	s.alarmsTriggered.Add(n)
}

// AddAlarmEvaluation charges one position-update evaluation: the R*-tree
// node accesses it performed and the alarm regions it examined.
func (s *Server) AddAlarmEvaluation(nodeAccesses, alarmChecks uint64) {
	s.alarmEvaluations.Add(1)
	s.nodeAccesses.Add(nodeAccesses)
	s.alarmChecks.Add(alarmChecks)
}

// AddRectComputation charges one MWPSR safe region computation. clips is
// the number of post-assembly soundness clips that were needed; the
// skyline construction keeps it at zero, and the ablate-clipping benchmark
// reports it as evidence.
func (s *Server) AddRectComputation(candidates, corners, clips int) {
	s.srComputations.Add(1)
	s.srCandidates.Add(uint64(candidates))
	s.srCorners.Add(uint64(corners))
	s.rectClips.Add(uint64(clips))
}

// RectClips returns the cumulative soundness clips applied to MWPSR
// regions.
func (s *Server) RectClips() uint64 { return s.rectClips.Load() }

// AddBitmapComputation charges one GBSR/PBSR safe region computation.
func (s *Server) AddBitmapComputation(intersectionTests int) {
	s.srComputations.Add(1)
	s.srBitmapTests.Add(uint64(intersectionTests))
}

// AddSafeRegionIndexWork charges R*-tree node accesses performed while
// gathering the relevant alarms for a safe region computation (the
// SearchRect per update); it books into the safe-region bucket without
// counting as a separate computation.
func (s *Server) AddSafeRegionIndexWork(nodeAccesses uint64) {
	s.srNodeAccesses.Add(nodeAccesses)
}

// AddSafePeriodComputation charges one safe-period computation (the SP
// baseline's nearest-alarm query); the paper's Figure 6(d) buckets this
// with safe region computation.
func (s *Server) AddSafePeriodComputation(nodeAccesses uint64) {
	s.srComputations.Add(1)
	s.srNodeAccesses.Add(nodeAccesses)
}

// AlarmEvaluations returns the number of position updates evaluated.
func (s *Server) AlarmEvaluations() uint64 { return s.alarmEvaluations.Load() }

// SafeRegionComputations returns the number of safe regions computed.
func (s *Server) SafeRegionComputations() uint64 { return s.srComputations.Load() }

// AlarmProcessingSeconds converts the alarm evaluation work to seconds.
func (s *Server) AlarmProcessingSeconds() float64 { return s.Snapshot().AlarmProcessingSeconds() }

// SafeRegionSeconds converts the safe region computation work to seconds.
func (s *Server) SafeRegionSeconds() float64 { return s.Snapshot().SafeRegionSeconds() }

// TotalSeconds is alarm processing plus safe region computation.
func (s *Server) TotalSeconds() float64 { return s.Snapshot().TotalSeconds() }

// DownlinkMbps converts downstream bytes over a trace duration to the
// megabits per second the paper's Figure 6(b) plots.
func (s *Server) DownlinkMbps(traceSeconds float64) float64 {
	return s.Snapshot().DownlinkMbps(traceSeconds)
}

// AlarmProcessingSeconds converts the alarm evaluation work to seconds.
func (sn Snapshot) AlarmProcessingSeconds() float64 {
	return float64(sn.NodeAccesses)*sn.Costs.NodeAccessSeconds +
		float64(sn.AlarmChecks)*sn.Costs.AlarmCheckSeconds
}

// SafeRegionSeconds converts the safe region computation work to seconds.
func (sn Snapshot) SafeRegionSeconds() float64 {
	return float64(sn.SRCandidates)*sn.Costs.CandidateSeconds +
		float64(sn.SRCorners)*sn.Costs.CornerSeconds +
		float64(sn.SRBitmapTests)*sn.Costs.BitmapTestSeconds +
		float64(sn.SRNodeAccesses)*sn.Costs.NodeAccessSeconds
}

// TotalSeconds is alarm processing plus safe region computation.
func (sn Snapshot) TotalSeconds() float64 {
	return sn.AlarmProcessingSeconds() + sn.SafeRegionSeconds()
}

// DownlinkMbps converts downstream bytes over a trace duration to the
// megabits per second the paper's Figure 6(b) plots.
func (sn Snapshot) DownlinkMbps(traceSeconds float64) float64 {
	if traceSeconds <= 0 {
		return 0
	}
	return float64(sn.DownlinkBytes) * 8 / traceSeconds / 1e6
}

// Client accumulates per-fleet client-side counters.
type Client struct {
	// ContainmentChecks is the number of safe region containment checks
	// performed, and Probes the total elementary probe operations those
	// checks cost (1 for a rectangle, up to h for a pyramid descent, one
	// per alarm for the OPT local scan).
	ContainmentChecks uint64
	Probes            uint64
	// MessagesSent counts client→server reports.
	MessagesSent uint64
	// Session lifecycle counters (fault-tolerant connection path).
	Reconnects         uint64 // reconnect attempts that established a link
	HeartbeatsSent     uint64 // heartbeats transmitted
	RedeliveredReports uint64 // queued reports re-sent after reconnect/timeout
	DroppedReports     uint64 // reports evicted from a full offline queue
	Redirects          uint64 // shard redirects followed (cluster handoff)
	StaleRedirects     uint64 // redirects ignored for carrying an older partition-map epoch
	// BatchesSent counts UpdateBatch frames transmitted and BatchedReports
	// the position reports they carried (each also counted in
	// MessagesSent, which stays the per-report total either way).
	BatchesSent    uint64
	BatchedReports uint64
}

// AddCheck records one containment check costing the given probes.
func (c *Client) AddCheck(probes int) {
	c.ContainmentChecks++
	c.Probes += uint64(probes)
}

// Merge folds other into c (used to aggregate per-client counters).
func (c *Client) Merge(other Client) {
	c.ContainmentChecks += other.ContainmentChecks
	c.Probes += other.Probes
	c.MessagesSent += other.MessagesSent
	c.Reconnects += other.Reconnects
	c.HeartbeatsSent += other.HeartbeatsSent
	c.RedeliveredReports += other.RedeliveredReports
	c.DroppedReports += other.DroppedReports
	c.Redirects += other.Redirects
	c.StaleRedirects += other.StaleRedirects
	c.BatchesSent += other.BatchesSent
	c.BatchedReports += other.BatchedReports
}

// EnergyParams converts client-side work into energy, mirroring the
// paper's mWh reporting (the paper omits its exact energy calculation; the
// constants below are calibrated to land the default workload in the same
// hundreds-of-mWh range as Figures 5(b)/6(c)).
type EnergyParams struct {
	// ProbeMilliWattHours per elementary containment probe.
	ProbeMilliWattHours float64
	// RadioMilliWattHours per message transmitted.
	RadioMilliWattHours float64
}

// DefaultEnergy returns the calibrated energy model.
func DefaultEnergy() EnergyParams {
	return EnergyParams{
		ProbeMilliWattHours: 0.004,
		RadioMilliWattHours: 0.05,
	}
}

// Energy returns the fleet energy in milliwatt-hours under p.
func (c Client) Energy(p EnergyParams) float64 {
	return float64(c.Probes)*p.ProbeMilliWattHours +
		float64(c.MessagesSent)*p.RadioMilliWattHours
}
