package alarm

import (
	"fmt"
	"sort"

	"github.com/sabre-geo/sabre/internal/rstar"
)

// Persistence surface: the durable store (internal/store) snapshots a
// registry as (alarms, fired pairs, next ID) and rebuilds it with
// Restore. Topic subscriptions are soft state — clients re-subscribe on
// reconnect — and are deliberately excluded.

// FiredPair is one (alarm, user) trigger event: the alarm has fired for
// the user and is permanently spent for them.
type FiredPair struct {
	Alarm ID     `json:"alarm"`
	User  uint64 `json:"user"`
}

// FiredPairs returns a snapshot of all trigger state, sorted by
// (alarm, user) for deterministic output.
func (r *Registry) FiredPairs() []FiredPair {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]FiredPair, 0, len(r.fired))
	for k := range r.fired {
		out = append(out, FiredPair{Alarm: k.alarm, User: uint64(k.user)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Alarm != out[j].Alarm {
			return out[i].Alarm < out[j].Alarm
		}
		return out[i].User < out[j].User
	})
	return out
}

// NextID returns the ID the next installed alarm would be assigned.
func (r *Registry) NextID() ID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nextID
}

// InstallAssigned stores alarms that already carry their IDs — a cluster
// installing one globally numbered alarm table onto several shard
// registries, where every shard must agree on every ID. Validation runs
// first (either all alarms install or none); the ID counter advances past
// every installed alarm so local installs never collide. When the
// registry is empty the spatial index is STR bulk-loaded, as in
// InstallBatch.
func (r *Registry) InstallAssigned(alarms []Alarm) error {
	for i := range alarms {
		a := &alarms[i]
		if a.ID == 0 {
			return fmt.Errorf("alarm %d: install assigned: zero ID", i)
		}
		if a.ID > MaxLifecycleID {
			return fmt.Errorf("alarm %d: install assigned: ID exceeds event space", a.ID)
		}
		if err := validateLifecycle(a); err != nil {
			return fmt.Errorf("alarm %d: %w", a.ID, err)
		}
		if a.Kind != KindPair && a.Region.Empty() {
			return fmt.Errorf("alarm %d: empty region %v", a.ID, a.Region)
		}
		switch a.Scope {
		case Private, Shared, Public:
		default:
			return fmt.Errorf("alarm %d: invalid scope %d", a.ID, a.Scope)
		}
		if a.Scope == Shared && len(a.Subscribers) == 0 {
			return fmt.Errorf("alarm %d: shared alarm requires subscribers", a.ID)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range alarms {
		if _, dup := r.alarms[a.ID]; dup {
			return fmt.Errorf("alarm %d: install assigned: duplicate ID", a.ID)
		}
	}
	bulk := len(r.alarms) == 0
	items := make([]rstar.Item, 0, len(alarms))
	for _, a := range alarms {
		stored := a
		stored.Subscribers = append([]UserID(nil), a.Subscribers...)
		r.alarms[stored.ID] = &stored
		if stored.Target != 0 {
			r.byTarget[stored.Target] = append(r.byTarget[stored.Target], stored.ID)
		}
		if stored.ID >= r.nextID {
			r.nextID = stored.ID + 1
		}
		r.trackLifecycleLocked(&stored)
		if !stored.indexed() {
			continue
		}
		item := rstar.Item{ID: uint64(stored.ID), Rect: stored.Region}
		if bulk {
			items = append(items, item)
		} else {
			r.index.Insert(item)
		}
	}
	if bulk {
		r.index.InsertBatch(items)
	}
	return nil
}

// Restore builds a registry from recovered state: alarms keep their
// original IDs (unlike Install, which assigns fresh ones), trigger state
// is reinstated, and the ID counter resumes past every restored alarm so
// new installs never collide with recovered ones. The spatial index is
// STR bulk-loaded.
func Restore(alarms []Alarm, fired []FiredPair, nextID ID) (*Registry, error) {
	r := NewRegistry()
	items := make([]rstar.Item, 0, len(alarms))
	for _, a := range alarms {
		if a.ID == 0 {
			return nil, fmt.Errorf("alarm: restore: alarm without ID")
		}
		if _, dup := r.alarms[a.ID]; dup {
			return nil, fmt.Errorf("alarm: restore: duplicate ID %d", a.ID)
		}
		stored := a
		stored.Subscribers = append([]UserID(nil), a.Subscribers...)
		if err := validateLifecycle(&stored); err != nil {
			return nil, fmt.Errorf("alarm: restore: alarm %d: %w", a.ID, err)
		}
		if stored.Kind != KindPair && stored.Region.Empty() {
			return nil, fmt.Errorf("alarm: restore: alarm %d has empty region %v", a.ID, a.Region)
		}
		r.alarms[stored.ID] = &stored
		if stored.Target != 0 {
			r.byTarget[stored.Target] = append(r.byTarget[stored.Target], stored.ID)
		}
		r.trackLifecycleLocked(&stored)
		if stored.indexed() {
			items = append(items, rstar.Item{ID: uint64(stored.ID), Rect: stored.Region})
		}
		if stored.ID >= r.nextID {
			r.nextID = stored.ID + 1
		}
	}
	r.index.InsertBatch(items)
	for _, p := range fired {
		r.fired[pairKey{alarm: p.Alarm, user: UserID(p.User)}] = struct{}{}
	}
	if nextID > r.nextID {
		r.nextID = nextID
	}
	return r, nil
}
