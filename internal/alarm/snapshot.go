package alarm

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/rstar"
)

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// snapshot is the JSON form of a registry: the full alarm table plus the
// per-(alarm, subscriber) trigger state, so a restarted server resumes
// with identical one-shot semantics.
type snapshot struct {
	Version int             `json:"version"`
	NextID  ID              `json:"nextId"`
	Alarms  []snapshotAlarm `json:"alarms"`
	Fired   []snapshotPair  `json:"fired"`
	// Lifecycle carries the continuous/pair machines mid-lifecycle, so a
	// restart resumes every Armed/Inside phase and occurrence count.
	Lifecycle []LifecycleState `json:"lifecycle,omitempty"`
}

type snapshotAlarm struct {
	ID          ID            `json:"id"`
	Scope       Scope         `json:"scope"`
	Owner       UserID        `json:"owner"`
	Subscribers []UserID      `json:"subscribers,omitempty"`
	Region      [4]float64    `json:"region"` // MinX, MinY, MaxX, MaxY
	Target      UserID        `json:"target,omitempty"`
	Kind        LifecycleKind `json:"kind,omitempty"`
	Cooldown    uint32        `json:"cooldown,omitempty"`
	Anchor      UserID        `json:"anchor,omitempty"`
	Radius      float64       `json:"radius,omitempty"`
	Factors     []Factor      `json:"factors,omitempty"`
	Threshold   float64       `json:"threshold,omitempty"`
	ExpiresAt   uint64        `json:"expiresAt,omitempty"`
}

type snapshotPair struct {
	Alarm ID     `json:"alarm"`
	User  UserID `json:"user"`
}

// Snapshot serializes the registry (alarms, trigger state, ID counter) so
// a restarted server can resume exactly where it stopped. Output is
// deterministic: alarms and fired pairs are sorted.
func (r *Registry) Snapshot(w io.Writer) error {
	r.mu.RLock()
	snap := snapshot{Version: snapshotVersion, NextID: r.nextID}
	for _, a := range r.alarms {
		snap.Alarms = append(snap.Alarms, snapshotAlarm{
			ID:          a.ID,
			Scope:       a.Scope,
			Owner:       a.Owner,
			Subscribers: append([]UserID(nil), a.Subscribers...),
			Region:      [4]float64{a.Region.MinX, a.Region.MinY, a.Region.MaxX, a.Region.MaxY},
			Target:      a.Target,
			Kind:        a.Kind,
			Cooldown:    a.Cooldown,
			Anchor:      a.Anchor,
			Radius:      a.Radius,
			Factors:     append([]Factor(nil), a.Factors...),
			Threshold:   a.Threshold,
			ExpiresAt:   a.ExpiresAt,
		})
	}
	for k := range r.fired {
		snap.Fired = append(snap.Fired, snapshotPair{Alarm: k.alarm, User: k.user})
	}
	for k, st := range r.lcStates {
		snap.Lifecycle = append(snap.Lifecycle, LifecycleState{
			Alarm: k.alarm, User: uint64(k.user),
			Inside: st.inside, Occur: st.occur, LastTick: st.lastTick,
		})
	}
	r.mu.RUnlock()

	sort.Slice(snap.Alarms, func(i, j int) bool { return snap.Alarms[i].ID < snap.Alarms[j].ID })
	sort.Slice(snap.Fired, func(i, j int) bool {
		if snap.Fired[i].Alarm != snap.Fired[j].Alarm {
			return snap.Fired[i].Alarm < snap.Fired[j].Alarm
		}
		return snap.Fired[i].User < snap.Fired[j].User
	})
	sortLifecycleStates(snap.Lifecycle)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("alarm: encode snapshot: %w", err)
	}
	return nil
}

// LoadRegistry rebuilds a registry from a Snapshot stream. The spatial
// index is bulk-loaded.
func LoadRegistry(rd io.Reader) (*Registry, error) {
	var snap snapshot
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("alarm: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("alarm: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	r := NewRegistry()
	items := make([]rstar.Item, 0, len(snap.Alarms))
	maxID := ID(0)
	for _, sa := range snap.Alarms {
		region := geom.Rect{MinX: sa.Region[0], MinY: sa.Region[1], MaxX: sa.Region[2], MaxY: sa.Region[3]}
		if sa.Kind != KindPair && region.Empty() {
			return nil, fmt.Errorf("alarm: snapshot alarm %d has empty region", sa.ID)
		}
		switch sa.Scope {
		case Private, Shared, Public:
		default:
			return nil, fmt.Errorf("alarm: snapshot alarm %d has invalid scope %d", sa.ID, sa.Scope)
		}
		if _, dup := r.alarms[sa.ID]; dup {
			return nil, fmt.Errorf("alarm: snapshot has duplicate id %d", sa.ID)
		}
		a := &Alarm{
			ID:          sa.ID,
			Scope:       sa.Scope,
			Owner:       sa.Owner,
			Subscribers: append([]UserID(nil), sa.Subscribers...),
			Region:      region,
			Target:      sa.Target,
			Kind:        sa.Kind,
			Cooldown:    sa.Cooldown,
			Anchor:      sa.Anchor,
			Radius:      sa.Radius,
			Factors:     append([]Factor(nil), sa.Factors...),
			Threshold:   sa.Threshold,
			ExpiresAt:   sa.ExpiresAt,
		}
		if err := validateLifecycle(a); err != nil {
			return nil, fmt.Errorf("alarm: snapshot alarm %d: %w", sa.ID, err)
		}
		r.alarms[a.ID] = a
		if a.Target != 0 {
			r.byTarget[a.Target] = append(r.byTarget[a.Target], a.ID)
		}
		r.trackLifecycleLocked(a)
		if a.indexed() {
			items = append(items, rstar.Item{ID: uint64(a.ID), Rect: a.Region})
		}
		if a.ID > maxID {
			maxID = a.ID
		}
	}
	r.index = rstar.BulkLoad(items, rstar.DefaultMaxEntries)
	for _, p := range snap.Fired {
		if _, ok := r.alarms[p.Alarm]; !ok {
			return nil, fmt.Errorf("alarm: snapshot fired pair references unknown alarm %d", p.Alarm)
		}
		r.fired[pairKey{alarm: p.Alarm, user: p.User}] = struct{}{}
	}
	r.nextID = snap.NextID
	if r.nextID <= maxID {
		r.nextID = maxID + 1
	}
	r.ApplyLifecycleStates(snap.Lifecycle)
	return r, nil
}
