package cluster

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
)

var testUniverse = geom.Rect{MinX: -37, MinY: 13, MaxX: 9963, MaxY: 7013}

// gridBoundaryX mirrors the boundary formula NewPartitionMapGrid uses,
// so tests can probe split lines bit for bit.
func gridBoundaryX(u geom.Rect, c, cols int) float64 {
	return u.MinX + u.Width()*float64(c)/float64(cols)
}

func gridBoundaryY(u geom.Rect, r, rows int) float64 {
	return u.MinY + u.Height()*float64(r)/float64(rows)
}

// checkTiling asserts the map's leaf rectangles tile the universe
// exactly: every rect inside it, pairwise interior-disjoint, areas
// summing to the whole.
func checkTiling(t *testing.T, p *PartitionMap) {
	t.Helper()
	u := p.Universe()
	var area float64
	shards := p.Shards()
	for _, s := range shards {
		r, ok := p.RectOf(s)
		if !ok {
			t.Fatalf("live shard %d has no rect", s)
		}
		if r.Empty() {
			t.Fatalf("shard %d rect empty: %v", s, r)
		}
		if !u.ContainsRect(r) {
			t.Fatalf("shard %d rect %v escapes universe %v", s, r, u)
		}
		area += r.Width() * r.Height()
	}
	for i, a := range shards {
		ra, _ := p.RectOf(a)
		for _, b := range shards[i+1:] {
			rb, _ := p.RectOf(b)
			ix := math.Min(ra.MaxX, rb.MaxX) - math.Max(ra.MinX, rb.MinX)
			iy := math.Min(ra.MaxY, rb.MaxY) - math.Max(ra.MinY, rb.MinY)
			if ix > 0 && iy > 0 {
				t.Fatalf("shards %d and %d overlap: %v vs %v", a, b, ra, rb)
			}
		}
	}
	want := u.Width() * u.Height()
	if math.Abs(area-want) > want*1e-9 {
		t.Errorf("areas sum to %v, universe is %v", area, want)
	}
}

// checkLocateMatchesRect fuzzes random in-universe points: Locate must
// not clamp them and the owning shard's rectangle must contain them.
func checkLocateMatchesRect(t *testing.T, p *PartitionMap, rng *rand.Rand, n int) {
	t.Helper()
	u := p.Universe()
	for i := 0; i < n; i++ {
		pt := geom.Pt(
			u.MinX+rng.Float64()*u.Width(),
			u.MinY+rng.Float64()*u.Height(),
		)
		s, clamped := p.Locate(pt)
		if clamped {
			t.Fatalf("in-universe point %v reported clamped", pt)
		}
		r, ok := p.RectOf(s)
		if !ok {
			t.Fatalf("point %v located in retired shard %d", pt, s)
		}
		if !r.Contains(pt) {
			t.Fatalf("point %v located in shard %d whose rect %v excludes it", pt, s, r)
		}
	}
}

// TestPartitionGridTiling checks that the epoch-1 grid tiles the
// universe exactly and numbers shards row-major with shared seams.
func TestPartitionGridTiling(t *testing.T) {
	grids := [][2]int{{1, 1}, {2, 2}, {3, 2}, {4, 1}, {1, 4}, {5, 3}}
	for _, g := range grids {
		cols, rows := g[0], g[1]
		p, err := NewPartitionMapGrid(testUniverse, cols, rows)
		if err != nil {
			t.Fatal(err)
		}
		if p.Epoch() != 1 {
			t.Errorf("%dx%d: fresh map epoch %d, want 1", cols, rows, p.Epoch())
		}
		if p.N() != cols*rows || p.NextShard() != cols*rows {
			t.Errorf("%dx%d: N=%d NextShard=%d, want %d", cols, rows, p.N(), p.NextShard(), cols*rows)
		}
		checkTiling(t, p)
		for i := 0; i < cols*rows; i++ {
			r, ok := p.RectOf(i)
			if !ok {
				t.Fatalf("%dx%d: shard %d missing", cols, rows, i)
			}
			col, row := i%cols, i/cols
			if col+1 < cols {
				right, _ := p.RectOf(i + 1)
				if r.MaxX != right.MinX {
					t.Errorf("%dx%d: seam gap between %d and %d: %v vs %v", cols, rows, i, i+1, r.MaxX, right.MinX)
				}
			}
			if row+1 < rows {
				above, _ := p.RectOf(i + cols)
				if r.MaxY != above.MinY {
					t.Errorf("%dx%d: seam gap between %d and %d: %v vs %v", cols, rows, i, i+cols, r.MaxY, above.MinY)
				}
			}
		}
	}
}

// TestLocateMatchesRect fuzzes random points and probes interior grid
// boundaries: a point exactly on a split belongs to the higher side.
func TestLocateMatchesRect(t *testing.T) {
	const cols, rows = 5, 3
	p, err := NewPartitionMapGrid(testUniverse, cols, rows)
	if err != nil {
		t.Fatal(err)
	}
	checkLocateMatchesRect(t, p, rand.New(rand.NewSource(42)), 10000)
	for c := 1; c < cols; c++ {
		pt := geom.Pt(gridBoundaryX(testUniverse, c, cols), testUniverse.MinY+1)
		got, clamped := p.Locate(pt)
		if clamped {
			t.Errorf("boundary x=%v reported clamped", pt.X)
		}
		if got%cols != c {
			t.Errorf("boundary x=%v located in column %d, want %d", pt.X, got%cols, c)
		}
	}
	for r := 1; r < rows; r++ {
		pt := geom.Pt(testUniverse.MinX+1, gridBoundaryY(testUniverse, r, rows))
		got, clamped := p.Locate(pt)
		if clamped {
			t.Errorf("boundary y=%v reported clamped", pt.Y)
		}
		if got/cols != r {
			t.Errorf("boundary y=%v located in row %d, want %d", pt.Y, got/cols, r)
		}
	}
}

// TestLocateClampedFlag: positions strictly beyond the universe clamp
// to the nearest edge partition and say so; positions exactly on the
// universe boundary — including the max edges — are NOT clamped. The
// engine accepts boundary-exact reports, so flagging them as strays
// would overcount the stray-traffic metric (regression: the old
// partitioner clamped silently and boundary points were ambiguous).
func TestLocateClampedFlag(t *testing.T) {
	p, err := NewPartitionMapGrid(testUniverse, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	u := testUniverse
	outside := []struct {
		pt   geom.Point
		want int
	}{
		{geom.Pt(u.MinX-500, u.MinY-500), 0},
		{geom.Pt(u.MaxX+500, u.MinY-500), 1},
		{geom.Pt(u.MinX-500, u.MaxY+500), 2},
		{geom.Pt(u.MaxX+500, u.MaxY+500), 3},
		{geom.Pt(u.MinX+1, u.MaxY+0.001), 2},
	}
	for _, tc := range outside {
		got, clamped := p.Locate(tc.pt)
		if got != tc.want {
			t.Errorf("Locate(%v) = %d, want %d", tc.pt, got, tc.want)
		}
		if !clamped {
			t.Errorf("Locate(%v): outside point not reported clamped", tc.pt)
		}
	}
	boundary := []struct {
		pt   geom.Point
		want int
	}{
		{geom.Pt(u.MinX, u.MinY), 0},
		{geom.Pt(u.MaxX, u.MinY), 1},
		{geom.Pt(u.MinX, u.MaxY), 2},
		{geom.Pt(u.MaxX, u.MaxY), 3},
		{geom.Pt(u.MinX+u.Width()/2, u.MaxY), 3},
	}
	for _, tc := range boundary {
		got, clamped := p.Locate(tc.pt)
		if got != tc.want {
			t.Errorf("Locate(%v) = %d, want %d", tc.pt, got, tc.want)
		}
		if clamped {
			t.Errorf("Locate(%v): boundary-exact point wrongly reported clamped", tc.pt)
		}
	}
}

// TestAutoFactorization: NewPartitionMap picks the most squarish grid
// the universe's aspect ratio allows, observable through cell shape.
func TestAutoFactorization(t *testing.T) {
	square := geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	wide := geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 2500}
	cases := []struct {
		universe     geom.Rect
		n            int
		cellW, cellH float64
	}{
		{square, 1, 1000, 1000},
		{square, 4, 500, 500},
		{square, 9, 1000.0 / 3, 1000.0 / 3},
		{wide, 4, 2500, 2500},
		{wide, 8, 2500, 1250},
	}
	for _, tc := range cases {
		p, err := NewPartitionMap(tc.universe, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if p.N() != tc.n {
			t.Errorf("n=%d on %v: got %d shards", tc.n, tc.universe, p.N())
		}
		r, ok := p.RectOf(0)
		if !ok {
			t.Fatalf("n=%d on %v: shard 0 missing", tc.n, tc.universe)
		}
		if math.Abs(r.Width()-tc.cellW) > 1e-9 || math.Abs(r.Height()-tc.cellH) > 1e-9 {
			t.Errorf("n=%d on %v: cell %vx%v, want %vx%v", tc.n, tc.universe, r.Width(), r.Height(), tc.cellW, tc.cellH)
		}
		checkTiling(t, p)
	}
	if _, err := NewPartitionMap(square, 0); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewPartitionMapGrid(geom.Rect{}, 2, 2); err == nil {
		t.Error("empty universe accepted")
	}
}

// TestOverlapping: a rect straddling the centre of a 2x2 grid touches
// all four partitions; a corner rect only its own.
func TestOverlapping(t *testing.T) {
	p, err := NewPartitionMapGrid(testUniverse, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cx := testUniverse.MinX + testUniverse.Width()/2
	cy := testUniverse.MinY + testUniverse.Height()/2
	all := p.Overlapping(geom.RectAround(geom.Pt(cx, cy), 100))
	if len(all) != 4 {
		t.Errorf("centre rect overlaps %v, want all 4", all)
	}
	corner := p.Overlapping(geom.RectAround(geom.Pt(testUniverse.MinX+100, testUniverse.MinY+100), 50))
	if len(corner) != 1 || corner[0] != 0 {
		t.Errorf("corner rect overlaps %v, want [0]", corner)
	}
}

// TestSplitBasics: splitting allocates a fresh monotonic shard ID,
// bumps the epoch, halves the rect on its longer axis, and leaves the
// original map untouched (copy-on-write).
func TestSplitBasics(t *testing.T) {
	p, err := NewPartitionMapGrid(testUniverse, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := p.RectOf(0)
	next, newShard, err := p.Split(0)
	if err != nil {
		t.Fatal(err)
	}
	if newShard != 4 {
		t.Errorf("new shard %d, want 4 (monotonic allocator)", newShard)
	}
	if next.Epoch() != p.Epoch()+1 {
		t.Errorf("epoch %d after split of epoch-%d map", next.Epoch(), p.Epoch())
	}
	if next.N() != 5 || next.NextShard() != 5 {
		t.Errorf("N=%d NextShard=%d after split, want 5/5", next.N(), next.NextShard())
	}
	// Copy-on-write: the original still has 4 shards and shard 0's full rect.
	if p.N() != 4 || p.NextShard() != 4 {
		t.Errorf("split mutated receiver: N=%d NextShard=%d", p.N(), p.NextShard())
	}
	if r, _ := p.RectOf(0); r != before {
		t.Errorf("split mutated receiver rect: %v, want %v", r, before)
	}
	lo, _ := next.RectOf(0)
	hi, _ := next.RectOf(newShard)
	longAxis := math.Max(before.Width(), before.Height())
	if before.Width() >= before.Height() {
		if lo.Width() != longAxis/2 || hi.Width() != longAxis/2 || lo.MaxX != hi.MinX {
			t.Errorf("vertical split rects %v / %v of %v", lo, hi, before)
		}
	} else {
		if lo.Height() != longAxis/2 || hi.Height() != longAxis/2 || lo.MaxY != hi.MinY {
			t.Errorf("horizontal split rects %v / %v of %v", lo, hi, before)
		}
	}
	checkTiling(t, next)
	checkLocateMatchesRect(t, next, rand.New(rand.NewSource(7)), 2000)

	if _, _, err := p.Split(99); err == nil {
		t.Error("split of unknown shard accepted")
	}
}

// TestMergeRoundTrip: merge(split(x)) restores the exact pre-split
// tiling, with the drain entry carrying the retired shard's rect until
// DrainDone clears it.
func TestMergeRoundTrip(t *testing.T) {
	p, err := NewPartitionMapGrid(testUniverse, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := p.RectOf(0)
	split, newShard, err := p.Split(0)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := split.Merge(0, newShard)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := merged.RectOf(0); got != orig {
		t.Errorf("merge(split(x)) rect %v, want original %v", got, orig)
	}
	if merged.N() != 4 {
		t.Errorf("N=%d after round trip, want 4", merged.N())
	}
	if merged.NextShard() != 5 {
		t.Errorf("NextShard=%d after round trip, want 5 (IDs never reused)", merged.NextShard())
	}
	drains := merged.Draining()
	hiRect, _ := split.RectOf(newShard)
	if len(drains) != 1 || drains[0].Shard != newShard || drains[0].Target != 0 || drains[0].Rect != hiRect {
		t.Errorf("drains after merge: %+v, want [{%d 0 %v}]", drains, newShard, hiRect)
	}
	checkTiling(t, merged)

	done, err := merged.DrainDone(newShard)
	if err != nil {
		t.Fatal(err)
	}
	if len(done.Draining()) != 0 {
		t.Errorf("drain survives DrainDone: %+v", done.Draining())
	}
	if done.Epoch() != merged.Epoch()+1 {
		t.Errorf("DrainDone epoch %d, want %d", done.Epoch(), merged.Epoch()+1)
	}
	if _, err := done.DrainDone(newShard); err == nil {
		t.Error("double DrainDone accepted")
	}

	// Non-sibling merges are rejected: shards 0 and 3 sit in different
	// subtrees of the 2x2 grid.
	if _, err := p.Merge(0, 3); err == nil {
		t.Error("non-sibling merge accepted")
	}
	if _, err := p.Merge(0, 99); err == nil {
		t.Error("merge with unknown shard accepted")
	}
}

// TestMergeablePairs: only sibling leaves are candidates.
func TestMergeablePairs(t *testing.T) {
	p, err := NewPartitionMapGrid(testUniverse, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pairs := p.MergeablePairs()
	if len(pairs) != 1 || pairs[0] != [2]int{0, 1} {
		t.Errorf("2x1 pairs %v, want [[0 1]]", pairs)
	}
	split, newShard, err := p.Split(1)
	if err != nil {
		t.Fatal(err)
	}
	pairs = split.MergeablePairs()
	if len(pairs) != 1 || pairs[0] != [2]int{1, newShard} {
		t.Errorf("post-split pairs %v, want [[1 %d]]", pairs, newShard)
	}
}
