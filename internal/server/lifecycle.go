// Lifecycle support: the engine-side half of the continuous / pair /
// composite alarm subsystem (DESIGN.md §15). The registry owns the state
// machines; this file owns the logical clock, the pair-endpoint anchor
// table, the cross-user wake path, and the per-scenario safe-region
// transforms that keep MWPSR/GBSR/PBSR regions sound for each kind:
//
//   - continuous, Armed phase: the region is an ordinary obstacle;
//   - continuous, Inside phase: the safe region must stay INSIDE the
//     alarm region (silence may only prove "no exit yet"), so the
//     complement of the region within the cell becomes the obstacle set;
//   - composite: each factor's bounding rect is an obstacle — reporting
//     before entering any factor re-evaluates the severity before it can
//     change;
//   - pair: no static region is sound against a moving partner, so the
//     partner's last position grown by its maximum displacement since is
//     an obstacle AND every region response is time-limited by a
//     safe-period cap that both endpoints' worst-case closing speed
//     (2·v_max) cannot beat.
package server

import (
	"sort"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/saferegion"
	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/wire"
)

// anchorObs is one pair endpoint's last reported position and the logical
// tick it was reported at (the staleness bound grows from the latter).
type anchorObs struct {
	pos  geom.Point
	tick uint64
}

// SetTick advances the engine's logical clock and expires every composite
// alarm whose TTL has passed, logging an AlarmExpireRec per removal so a
// recovered engine never resurrects an expired alarm's firings. The clock
// only moves forward; a stale tick is a no-op.
func (e *Engine) SetTick(tick uint64) error {
	for {
		cur := e.tick.Load()
		if tick <= cur {
			return nil
		}
		if e.tick.CompareAndSwap(cur, tick) {
			break
		}
	}
	reg := e.reg.Load()
	if !reg.HasLifecycle() {
		return nil
	}
	due := reg.ExpireDue(tick)
	if len(due) == 0 {
		return nil
	}
	e.syncAlarmGauges(reg)
	recs := make([]store.Record, 0, len(due))
	for _, id := range due {
		recs = append(recs, store.AlarmExpireRec{ID: id})
	}
	return e.logRecords(recs)
}

// Tick returns the engine's current logical tick.
func (e *Engine) Tick() uint64 { return e.tick.Load() }

// observeAnchor records a pair endpoint's reported position.
func (e *Engine) observeAnchor(user alarm.UserID, pos geom.Point, tick uint64) {
	e.anchorMu.Lock()
	e.anchors[user] = anchorObs{pos: pos, tick: tick}
	e.anchorMu.Unlock()
}

// anchor returns a pair endpoint's last observed position and its tick.
func (e *Engine) anchor(user alarm.UserID) (geom.Point, uint64, bool) {
	e.anchorMu.Lock()
	o, ok := e.anchors[user]
	e.anchorMu.Unlock()
	return o.pos, o.tick, ok
}

// anchorOf is the partner-position callback lifecycle evaluation uses; it
// is a leaf lock, safe to call under the registry mutex.
func (e *Engine) anchorOf(user alarm.UserID) (geom.Point, bool) {
	p, _, ok := e.anchor(user)
	return p, ok
}

// Anchor returns the engine's newest accepted position for a pair
// endpoint. The cluster router broadcasts THIS — not the raw report
// position — to other shards: the anchor table only advances on fresh
// (in-seq) reports, so a redelivered stale report cannot ripple an old
// position across shards and flip a remote pair machine backward.
func (e *Engine) Anchor(user alarm.UserID) (geom.Point, bool) {
	return e.anchorOf(user)
}

// ObserveAnchor folds a pair endpoint's position observed on another
// shard into the local anchor table and wakes resident partner machines —
// the cluster router fans each pair endpoint's report to every other live
// shard through this, so a pair split across shards transitions on both.
func (e *Engine) ObserveAnchor(user alarm.UserID, pos geom.Point) error {
	reg := e.reg.Load()
	if !reg.HasLifecycle() || !reg.IsPairEndpoint(user) {
		return nil
	}
	e.observeAnchor(user, pos, e.tick.Load())
	recs, pushes := e.wakePartners(reg, user)
	if err := e.logRecords(recs); err != nil {
		return err
	}
	e.deliverPushes(pushes)
	return nil
}

// wakePartners evaluates the pair machines of every partner of mover that
// is resident on this engine, using the partners' last known positions
// against mover's fresh anchor. Transitions are appended to each reliable
// partner's pending set and returned as TransitionRecs for the caller to
// log (write-ahead) before the pushes — an AlarmFired plus fresh
// monitoring state per woken partner — are delivered.
func (e *Engine) wakePartners(reg *alarm.Registry, mover alarm.UserID) ([]store.Record, []pendingPush) {
	tick := e.tick.Load()
	var partners []alarm.UserID
	for _, a := range reg.PairAlarmsOf(mover, nil) {
		p := a.PairPartner(mover)
		dup := false
		for _, q := range partners {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			partners = append(partners, p)
		}
	}
	sort.Slice(partners, func(i, j int) bool { return partners[i] < partners[j] })
	var recs []store.Record
	var pushes []pendingPush
	var sc *UpdateScratch
	for _, p := range partners {
		sh := e.shardFor(p)
		sh.mu.RLock()
		st := sh.m[p]
		sh.mu.RUnlock()
		if st == nil {
			continue // not resident here: the router's anchor fan-out covers it
		}
		ppos, _, ok := e.anchor(p)
		if !ok {
			continue // partner has not reported a position yet
		}
		st.mu.Lock()
		events := reg.EvaluatePairsInto(p, ppos, tick, e.anchorOf, nil)
		var msgs []wire.Message
		if len(events) > 0 {
			e.met.AddAlarmTransitions(uint64(len(events)))
			deliver := events
			if st.reliable {
				st.pendingFired = append(st.pendingFired, events...)
				if len(st.pendingFired) > e.pendingCap {
					drop := len(st.pendingFired) - e.pendingCap
					st.pendingFired = append(st.pendingFired[:0], st.pendingFired[drop:]...)
					e.met.AddFiredEvictions(uint64(drop))
				}
				deliver = append([]uint64(nil), st.pendingFired...)
			}
			msgs = append(msgs, wire.AlarmFired{Seq: 0, Alarms: deliver})
			for _, ev := range events {
				recs = append(recs, store.TransitionRec{User: uint64(p), Event: ev, Tick: tick, Delivered: true})
			}
			// The partner's held region was computed against the anchor's
			// old position; refresh it along with the transition.
			if sc == nil {
				sc = e.getScratch()
			}
			msgs = append(msgs, e.invalidationFor(reg, p, st, sc)...)
		}
		st.mu.Unlock()
		if len(msgs) > 0 {
			for _, m := range msgs {
				e.met.AddDownlink(wire.EncodedSize(m))
			}
			pushes = append(pushes, pendingPush{user: p, msgs: msgs})
		}
	}
	if sc != nil {
		e.putScratch(sc)
	}
	return recs, pushes
}

// regionCap converts pairCapTicks into the atomic Cap field carried by
// every monitoring-state response (0 = no cap, v = expire after v-1
// ticks). The cap must travel inside the region/ack message itself: a
// separately shipped SafePeriod can be dropped while the region is
// delivered, leaving a pair endpoint with an uncapped region that its
// partner's motion silently invalidates.
func (e *Engine) regionCap(reg *alarm.Registry, user alarm.UserID, pos geom.Point) uint32 {
	if !reg.HasLifecycle() {
		return 0
	}
	ticks, ok := e.pairCapTicks(reg, user, pos)
	if !ok {
		return 0
	}
	return ticks + 1
}

// pairCapTicks returns the safe-period cap bounding how long user may
// stay silent before a pair transition could be missed, and whether the
// user has any pair alarms at all. The margin to the nearest transition
// boundary (Radius minus distance while in contact, distance minus
// Radius otherwise, both shrunk by the partner's possible displacement
// since its last report) closes at up to 2·v_max — both endpoints move.
func (e *Engine) pairCapTicks(reg *alarm.Registry, user alarm.UserID, pos geom.Point) (uint32, bool) {
	pairs := reg.PairAlarmsOf(user, nil)
	if len(pairs) == 0 {
		return 0, false
	}
	tick := e.tick.Load()
	step := e.cfg.MaxSpeed * e.cfg.TickSeconds
	best := ^uint32(0)
	for _, a := range pairs {
		var t uint32
		pp, ptick, ok := e.anchor(a.PairPartner(user))
		if ok {
			slack := float64(tick-ptick) * step
			d := pos.DistanceTo(pp)
			margin := d - a.Radius - slack
			if reg.PairInside(a.ID, user) {
				margin = a.Radius - d - slack
			}
			if margin < 0 {
				margin = 0
			}
			t = uint32(saferegion.SafePeriodTicks(margin/2, e.cfg.MaxSpeed, e.cfg.TickSeconds, 1<<30))
		}
		// Unknown partner: t stays 0, forcing a report every tick until
		// the partner's first report establishes an anchor.
		if t < best {
			best = t
		}
	}
	return best, true
}

// lifecycleObstacles rewrites the relevant-alarm obstacle list for the
// lifecycle scenarios (see the package comment above) and appends the
// result to dst. It replaces the plain region copy in rectRegionFor /
// bitmapRegionFor whenever any lifecycle alarm is installed.
func (e *Engine) lifecycleObstacles(reg *alarm.Registry, user alarm.UserID, cell geom.Rect, relevant []alarm.Alarm, dst []geom.Rect) []geom.Rect {
	inside := reg.InsideAlarmsOf(user, nil)
	for _, a := range relevant {
		switch {
		case a.Kind == alarm.KindContinuous && containsAlarmID(inside, a.ID):
			// Inside phase: handled below as a carve-INTO constraint.
		case a.Kind == alarm.KindComposite:
			for _, f := range a.Factors {
				if b := f.Bound(); b.Intersects(cell) {
					dst = append(dst, b)
				}
			}
		default:
			dst = append(dst, a.Region)
		}
	}
	for _, id := range inside {
		if a, ok := reg.Get(id); ok {
			dst = appendComplement(dst, cell, a.Region)
		}
	}
	tick := e.tick.Load()
	step := e.cfg.MaxSpeed * e.cfg.TickSeconds
	for _, a := range reg.PairAlarmsOf(user, nil) {
		if reg.PairInside(a.ID, user) {
			continue // in contact: no static region is sound, the cap is the guard
		}
		pp, ptick, ok := e.anchor(a.PairPartner(user))
		if !ok {
			continue // no anchor: the zero cap already forces per-tick reports
		}
		r := a.Radius + float64(tick-ptick)*step
		disc := geom.Rect{MinX: pp.X - r, MinY: pp.Y - r, MaxX: pp.X + r, MaxY: pp.Y + r}
		if disc.Intersects(cell) {
			dst = append(dst, disc)
		}
	}
	return dst
}

// appendComplement appends the parts of cell NOT covered by region (≤4
// rects) — the obstacle set that confines a safe region to the interior
// of an Inside-phase continuous alarm.
func appendComplement(dst []geom.Rect, cell, region geom.Rect) []geom.Rect {
	rc := region.Intersect(cell)
	if rc.Empty() {
		// The region misses the cell entirely (the user just crossed a
		// cell boundary while inside): nothing here is provably exit-free.
		return append(dst, cell)
	}
	if rc.MinX > cell.MinX {
		dst = append(dst, geom.Rect{MinX: cell.MinX, MinY: cell.MinY, MaxX: rc.MinX, MaxY: cell.MaxY})
	}
	if rc.MaxX < cell.MaxX {
		dst = append(dst, geom.Rect{MinX: rc.MaxX, MinY: cell.MinY, MaxX: cell.MaxX, MaxY: cell.MaxY})
	}
	if rc.MinY > cell.MinY {
		dst = append(dst, geom.Rect{MinX: rc.MinX, MinY: cell.MinY, MaxX: rc.MaxX, MaxY: rc.MinY})
	}
	if rc.MaxY < cell.MaxY {
		dst = append(dst, geom.Rect{MinX: rc.MinX, MinY: rc.MaxY, MaxX: rc.MaxX, MaxY: cell.MaxY})
	}
	return dst
}

// syncAlarmGauges refreshes the per-kind installed-alarm gauges on the
// metrics endpoints. Called from every durable install/remove path.
func (e *Engine) syncAlarmGauges(reg *alarm.Registry) {
	c, p, k := reg.KindCounts()
	e.met.SetAlarmKinds(uint64(c), uint64(p), uint64(k))
}

func containsAlarmID(s []alarm.ID, id alarm.ID) bool {
	for _, v := range s {
		if v == id {
			return true
		}
	}
	return false
}
