package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"github.com/sabre-geo/sabre/internal/geom"
)

// This file serializes the PartitionMap: a self-validating binary frame
// (magic, version, CRC32 trailer — the WAL's framing idiom applied to
// one whole map) and the durable map file the cluster commits each
// transition through an atomic tmp+rename. The map file is the commit
// point of a split or merge: a crash before the rename leaves the old
// epoch in force, a crash after it leaves the new epoch plus whatever
// Drain entries describe the unfinished session migration. Anything
// DecodePartitionMap accepts re-encodes byte-identically, which
// FuzzPartitionMapDecode (mirroring FuzzWALDecode) hammers on.

// Codec limits. Absurd frames are rejected before allocation.
const (
	partMapMagic   = "SBPM"
	partMapVersion = 1
	// maxPartitionDepth bounds tree recursion (decode and validate).
	maxPartitionDepth = 64
	// maxPartitionLeaves bounds the leaf count a frame may declare.
	maxPartitionLeaves = 1 << 16
	// maxPartitionDrains bounds the drain list.
	maxPartitionDrains = 1 << 12

	nodeTagLeaf     = 1
	nodeTagInterior = 2
)

// ErrBadPartitionMap marks a serialized partition map the decoder
// rejects (bad magic, truncated body, CRC mismatch, invalid structure).
var ErrBadPartitionMap = errors.New("cluster: bad partition map")

// PartitionMapFileName is the cluster's durable map file under DataDir.
const PartitionMapFileName = "partmap"

// EncodePartitionMap serializes p, CRC trailer included.
func EncodePartitionMap(p *PartitionMap) []byte {
	dst := []byte(partMapMagic)
	dst = binary.BigEndian.AppendUint16(dst, partMapVersion)
	dst = binary.BigEndian.AppendUint64(dst, p.epoch)
	dst = appendRectBits(dst, p.universe)
	dst = binary.BigEndian.AppendUint32(dst, uint32(p.nextShard))
	dst = appendNode(dst, p.root)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(p.draining)))
	for _, d := range p.draining {
		dst = binary.BigEndian.AppendUint32(dst, uint32(d.Shard))
		dst = binary.BigEndian.AppendUint32(dst, uint32(d.Target))
		dst = appendRectBits(dst, d.Rect)
	}
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst))
}

func appendNode(dst []byte, n *pnode) []byte {
	if n.leaf() {
		dst = append(dst, nodeTagLeaf)
		return binary.BigEndian.AppendUint32(dst, uint32(n.shard))
	}
	dst = append(dst, nodeTagInterior)
	axis := byte(0)
	if !n.vertical {
		axis = 1
	}
	dst = append(dst, axis)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(n.split))
	dst = appendNode(dst, n.lo)
	return appendNode(dst, n.hi)
}

func appendRectBits(dst []byte, r geom.Rect) []byte {
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.MinX))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.MinY))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.MaxX))
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(r.MaxY))
}

// DecodePartitionMap parses a frame produced by EncodePartitionMap,
// verifying the CRC and every structural invariant (exact tiling is
// inherent: child rectangles are derived from the parent and the split,
// never stored). Anything accepted re-encodes byte-identically.
func DecodePartitionMap(data []byte) (*PartitionMap, error) {
	if len(data) < len(partMapMagic)+2+4 {
		return nil, fmt.Errorf("%w: short frame (%d bytes)", ErrBadPartitionMap, len(data))
	}
	if string(data[:len(partMapMagic)]) != partMapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadPartitionMap)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadPartitionMap)
	}
	r := &pmReader{buf: body[len(partMapMagic):]}
	if v := r.u16(); r.err == nil && v != partMapVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadPartitionMap, v, partMapVersion)
	}
	p := &PartitionMap{
		epoch:    r.u64(),
		universe: r.rect(),
	}
	p.nextShard = int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if p.nextShard > maxPartitionLeaves {
		return nil, fmt.Errorf("%w: shard allocator %d exceeds limit", ErrBadPartitionMap, p.nextShard)
	}
	leaves := 0
	p.root = decodeNode(r, p.universe, 0, &leaves)
	if r.err != nil {
		return nil, r.err
	}
	nd := int(r.u32())
	if r.err == nil && nd > maxPartitionDrains {
		return nil, fmt.Errorf("%w: %d drains exceeds limit", ErrBadPartitionMap, nd)
	}
	for i := 0; i < nd && r.err == nil; i++ {
		d := Drain{Shard: int(r.u32()), Target: int(r.u32()), Rect: r.rect()}
		p.draining = append(p.draining, d)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPartitionMap, len(r.buf)-r.pos)
	}
	p.reindex()
	if err := p.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPartitionMap, err)
	}
	return p, nil
}

// decodeNode parses one preorder subtree covering rect. Child
// rectangles are derived from the parent and the split so the decoded
// tree tiles exactly by construction.
func decodeNode(r *pmReader, rect geom.Rect, depth int, leaves *int) *pnode {
	if r.err != nil {
		return &pnode{rect: rect, shard: 0}
	}
	if depth > maxPartitionDepth {
		r.fail("tree deeper than %d", maxPartitionDepth)
		return &pnode{rect: rect, shard: 0}
	}
	switch tag := r.u8(); tag {
	case nodeTagLeaf:
		*leaves++
		if *leaves > maxPartitionLeaves {
			r.fail("more than %d leaves", maxPartitionLeaves)
		}
		s := r.u32()
		if r.err == nil && s > maxPartitionLeaves {
			r.fail("leaf shard %d exceeds limit", s)
		}
		return &pnode{rect: rect, shard: int(s)}
	case nodeTagInterior:
		n := &pnode{rect: rect, shard: -1}
		n.vertical = r.u8() == 0
		n.split = math.Float64frombits(r.u64())
		lo, hi := rect, rect
		if n.vertical {
			lo.MaxX, hi.MinX = n.split, n.split
		} else {
			lo.MaxY, hi.MinY = n.split, n.split
		}
		n.lo = decodeNode(r, lo, depth+1, leaves)
		n.hi = decodeNode(r, hi, depth+1, leaves)
		return n
	default:
		if r.err == nil {
			r.fail("unknown node tag %d", tag)
		}
		return &pnode{rect: rect, shard: 0}
	}
}

// pmReader is the error-latching cursor idiom shared with internal/wire
// and internal/store.
type pmReader struct {
	buf []byte
	pos int
	err error
}

func (r *pmReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrBadPartitionMap, fmt.Sprintf(format, args...))
	}
}

func (r *pmReader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.pos+n > len(r.buf) {
		r.err = fmt.Errorf("%w: truncated body", ErrBadPartitionMap)
		return false
	}
	return true
}

func (r *pmReader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

func (r *pmReader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return v
}

func (r *pmReader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

func (r *pmReader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

func (r *pmReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *pmReader) rect() geom.Rect {
	return geom.Rect{MinX: r.f64(), MinY: r.f64(), MaxX: r.f64(), MaxY: r.f64()}
}

// WritePartitionMapFile atomically commits p as dir's map file: encode,
// write to a temp file, fsync, rename. The rename is the transition's
// commit point.
func WritePartitionMapFile(dir string, p *PartitionMap) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cluster: write partition map: %w", err)
	}
	path := filepath.Join(dir, PartitionMapFileName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cluster: write partition map: %w", err)
	}
	data := EncodePartitionMap(p)
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cluster: write partition map: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cluster: sync partition map: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: close partition map: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: commit partition map: %w", err)
	}
	return nil
}

// LoadPartitionMapFile reads dir's map file. The second return is false
// when no map file exists (a fresh data dir).
func LoadPartitionMapFile(dir string) (*PartitionMap, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, PartitionMapFileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("cluster: read partition map: %w", err)
	}
	p, err := DecodePartitionMap(data)
	if err != nil {
		return nil, false, err
	}
	return p, true, nil
}
