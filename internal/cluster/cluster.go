package cluster

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/store"
)

// Config parameterizes a cluster.
type Config struct {
	// Shards is the number of partitions (engines). Ignored when Cols and
	// Rows are both set.
	Shards int
	// Cols and Rows force an explicit partition grid; both zero means the
	// near-square auto split of Shards.
	Cols, Rows int
	// Engine is the configuration shared by every shard engine: all
	// shards see the identical full Universe and grid geometry (so safe
	// regions near a boundary match the single-server ones bit for bit);
	// each shard's Partition field is filled in per shard.
	Engine server.Config
	// DataDir, when non-empty, makes every shard durable with its own
	// write-ahead log and snapshots under DataDir/shard<N>. Empty runs
	// every shard in memory (shards then cannot crash/recover).
	DataDir string
	// Store tunes the per-shard durable stores (fsync, checkpoint cadence).
	Store store.Options
}

// Cluster runs one engine per spatial partition. Shards fail and
// recover independently: a down shard's slot holds nil, and the router
// degrades to resend/defer behaviour for clients it owns.
type Cluster struct {
	cfg      Config
	part     *Partitioner
	slots    []*slot
	met      *metrics.Cluster
	cellSide float64

	// installMu serializes alarm installation; nextAlarmID is the global
	// ID counter, seeded past every shard's recovered table.
	installMu   sync.Mutex
	nextAlarmID uint64
}

type slot struct {
	eng atomic.Pointer[server.Engine]
	dir string
}

// New builds and boots every shard. With DataDir set, each shard opens
// (or recovers) its own store, so a cluster restarted on an existing
// DataDir resumes from durable state.
func New(cfg Config) (*Cluster, error) {
	var part *Partitioner
	var err error
	if cfg.Cols > 0 || cfg.Rows > 0 {
		part, err = NewPartitionerGrid(cfg.Engine.Universe, cfg.Cols, cfg.Rows)
	} else {
		part, err = NewPartitioner(cfg.Engine.Universe, cfg.Shards)
	}
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:   cfg,
		part:  part,
		slots: make([]*slot, part.N()),
		met:   &metrics.Cluster{},
	}
	for i := range c.slots {
		c.slots[i] = &slot{}
		if cfg.DataDir != "" {
			c.slots[i].dir = filepath.Join(cfg.DataDir, fmt.Sprintf("shard%d", i))
		}
	}
	for i := range c.slots {
		eng, err := c.bootShard(i)
		if err != nil {
			return nil, fmt.Errorf("cluster: boot shard %d: %w", i, err)
		}
		c.slots[i].eng.Store(eng)
		if next := uint64(eng.Registry().NextID()); next > c.nextAlarmID {
			c.nextAlarmID = next
		}
	}
	if c.nextAlarmID == 0 {
		c.nextAlarmID = 1
	}
	c.cellSide = c.slots[0].eng.Load().Grid().CellSide()
	return c, nil
}

// bootShard builds shard i's engine, recovering from its store when
// durable.
func (c *Cluster) bootShard(i int) (*server.Engine, error) {
	sc := c.cfg.Engine
	sc.Partition = c.part.Rect(i)
	if c.slots[i].dir == "" {
		return server.New(sc)
	}
	st, state, info, err := store.Open(c.slots[i].dir, c.cfg.Store)
	if err != nil {
		return nil, err
	}
	return server.NewDurable(sc, st, state, info)
}

// Partitioner exposes the spatial split.
func (c *Cluster) Partitioner() *Partitioner { return c.part }

// N returns the shard count.
func (c *Cluster) N() int { return c.part.N() }

// Metrics returns the cluster-level counters.
func (c *Cluster) Metrics() *metrics.Cluster { return c.met }

// Engine returns shard i's engine, or nil while the shard is down.
func (c *Cluster) Engine(i int) *server.Engine {
	if i < 0 || i >= len(c.slots) {
		return nil
	}
	return c.slots[i].eng.Load()
}

// Up reports whether shard i is serving.
func (c *Cluster) Up(i int) bool { return c.Engine(i) != nil }

// marginRect is the install footprint of shard i: its partition expanded
// by two grid cells. A client routed to shard i reports from inside the
// partition (or at most one cell beyond it, the engine's position
// slack); its grid cell then lies within two cell sides of the
// partition, so every alarm that can intersect that cell — and hence
// shape its safe region — is installed here. See DESIGN.md "Clustering".
func (c *Cluster) marginRect(i int) geom.Rect {
	return c.part.Rect(i).Expand(2 * c.cellSide)
}

// InstallAlarms assigns cluster-global IDs and installs each alarm on
// every shard whose margin rectangle its region intersects — so a
// boundary-straddling alarm is known to all shards that could serve a
// client near it. Moving-target alarms are rejected: their region
// re-anchors at runtime, which would require cross-shard re-placement.
func (c *Cluster) InstallAlarms(alarms []alarm.Alarm) ([]alarm.ID, error) {
	c.installMu.Lock()
	defer c.installMu.Unlock()
	for i := range alarms {
		if alarms[i].Target != 0 {
			return nil, fmt.Errorf("cluster: alarm %d: moving-target alarms are not supported in clustered mode", i)
		}
	}
	assigned := make([]alarm.Alarm, len(alarms))
	ids := make([]alarm.ID, len(alarms))
	for i, a := range alarms {
		a.ID = alarm.ID(c.nextAlarmID)
		c.nextAlarmID++
		assigned[i] = a
		ids[i] = a.ID
	}
	for s := 0; s < c.N(); s++ {
		eng := c.Engine(s)
		if eng == nil {
			return nil, fmt.Errorf("cluster: shard %d down during install", s)
		}
		margin := c.marginRect(s)
		var batch []alarm.Alarm
		for _, a := range assigned {
			if a.Region.Intersects(margin) {
				batch = append(batch, a)
			}
		}
		if len(batch) == 0 {
			continue
		}
		if err := eng.InstallAlarmsAssigned(batch); err != nil {
			return nil, fmt.Errorf("cluster: install on shard %d: %w", s, err)
		}
	}
	return ids, nil
}

// KillShard fail-stops shard i: the store dies mid-flight, the WAL tail
// is mangled per tear, and the slot goes nil. Durable shards only.
func (c *Cluster) KillShard(i int, tear store.TearMode, rng *rand.Rand) error {
	if i < 0 || i >= len(c.slots) {
		return fmt.Errorf("cluster: no shard %d", i)
	}
	eng := c.slots[i].eng.Swap(nil)
	if eng == nil {
		return fmt.Errorf("cluster: shard %d already down", i)
	}
	st := eng.Store()
	if st == nil {
		return fmt.Errorf("cluster: shard %d is memory-only and cannot crash", i)
	}
	walPath := st.WALPath()
	st.Kill()
	if err := store.MangleTail(walPath, tear, rng); err != nil {
		return fmt.Errorf("cluster: mangle shard %d: %w", i, err)
	}
	c.met.AddShardCrash()
	return nil
}

// RecoverShard reboots a killed shard from its durable store.
func (c *Cluster) RecoverShard(i int) error {
	if i < 0 || i >= len(c.slots) {
		return fmt.Errorf("cluster: no shard %d", i)
	}
	if c.slots[i].eng.Load() != nil {
		return fmt.Errorf("cluster: shard %d already up", i)
	}
	eng, err := c.bootShard(i)
	if err != nil {
		return fmt.Errorf("cluster: recover shard %d: %w", i, err)
	}
	c.slots[i].eng.Store(eng)
	c.met.AddShardRecovery()
	return nil
}

// Close checkpoints and closes every live durable shard.
func (c *Cluster) Close() error {
	var first error
	for i := range c.slots {
		eng := c.slots[i].eng.Swap(nil)
		if eng == nil || eng.Store() == nil {
			continue
		}
		if err := eng.Store().Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ShardSnapshots returns each live shard's counter snapshot; down shards
// yield a zero snapshot with Up=false.
func (c *Cluster) ShardSnapshots() []ShardStatus {
	out := make([]ShardStatus, c.N())
	for i := range out {
		out[i].Shard = i
		out[i].Partition = c.part.Rect(i)
		if eng := c.Engine(i); eng != nil {
			out[i].Up = true
			out[i].Metrics = eng.Metrics().Snapshot()
		}
	}
	return out
}

// ShardStatus is one shard's liveness, partition and counters.
type ShardStatus struct {
	Shard     int              `json:"shard"`
	Up        bool             `json:"up"`
	Partition geom.Rect        `json:"partition"`
	Metrics   metrics.Snapshot `json:"metrics"`
}
