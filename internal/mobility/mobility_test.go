package mobility

import (
	"math"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/roadnet"
)

func testNet(t testing.TB) *roadnet.Network {
	t.Helper()
	net, err := roadnet.Generate(roadnet.Config{
		Side: 5000, Spacing: 500, Jitter: 0.2, DropProb: 0.1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func mustSim(t testing.TB, net *roadnet.Network, cfg Config) *Simulator {
	t.Helper()
	s, err := NewSimulator(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	base := DefaultConfig(10, 1)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero vehicles", func(c *Config) { c.Vehicles = 0 }},
		{"zero tick", func(c *Config) { c.TickSeconds = 0 }},
		{"negative pause", func(c *Config) { c.PauseMaxSeconds = -1 }},
		{"zero min speed", func(c *Config) { c.MinSpeedFactor = 0 }},
		{"speed factor > 1", func(c *Config) { c.MaxSpeedFactor = 1.5 }},
		{"min > max speed", func(c *Config) { c.MinSpeedFactor = 0.9; c.MaxSpeedFactor = 0.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := NewSimulator(testNet(t), cfg); err == nil {
				t.Error("expected config error")
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	net := testNet(t)
	run := func() []geom.Point {
		s := mustSim(t, net, DefaultConfig(20, 99))
		for i := 0; i < 300; i++ {
			s.Step()
		}
		out := make([]geom.Point, s.NumVehicles())
		s.Positions(out)
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vehicle %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	// Different seed should diverge.
	s2 := mustSim(t, net, DefaultConfig(20, 100))
	for i := 0; i < 300; i++ {
		s2.Step()
	}
	c := make([]geom.Point, s2.NumVehicles())
	s2.Positions(c)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

// TestSpeedBound: per-tick displacement must never exceed MaxSpeed·dt —
// the invariant the safe-period baseline and ground-truth accuracy rest on.
func TestSpeedBound(t *testing.T) {
	net := testNet(t)
	cfg := DefaultConfig(50, 7)
	s := mustSim(t, net, cfg)
	bound := s.MaxSpeed()*cfg.TickSeconds + 1e-9
	prev := make([]geom.Point, s.NumVehicles())
	cur := make([]geom.Point, s.NumVehicles())
	s.Positions(prev)
	for tick := 0; tick < 600; tick++ {
		s.Step()
		s.Positions(cur)
		for i := range cur {
			if d := cur[i].DistanceTo(prev[i]); d > bound {
				t.Fatalf("tick %d vehicle %d moved %v > bound %v", tick, i, d, bound)
			}
		}
		copy(prev, cur)
	}
	if s.Tick() != 600 {
		t.Errorf("Tick = %d, want 600", s.Tick())
	}
}

// TestVehiclesStayInBounds: positions remain within (slightly expanded)
// network bounds.
func TestVehiclesStayInBounds(t *testing.T) {
	net := testNet(t)
	s := mustSim(t, net, DefaultConfig(30, 3))
	world := net.Bounds().Expand(500)
	for tick := 0; tick < 500; tick++ {
		s.Step()
		for i := 0; i < s.NumVehicles(); i++ {
			if !world.Contains(s.Position(i)) {
				t.Fatalf("tick %d: vehicle %d escaped to %v", tick, i, s.Position(i))
			}
		}
	}
}

// TestVehiclesActuallyMove: over a long window every vehicle should cover
// real distance (no one stays parked forever).
func TestVehiclesActuallyMove(t *testing.T) {
	net := testNet(t)
	cfg := DefaultConfig(25, 5)
	s := mustSim(t, net, cfg)
	start := make([]geom.Point, s.NumVehicles())
	s.Positions(start)
	travelled := make([]float64, s.NumVehicles())
	prev := append([]geom.Point(nil), start...)
	cur := make([]geom.Point, s.NumVehicles())
	for tick := 0; tick < 900; tick++ {
		s.Step()
		s.Positions(cur)
		for i := range cur {
			travelled[i] += cur[i].DistanceTo(prev[i])
		}
		copy(prev, cur)
	}
	for i, d := range travelled {
		if d < 100 {
			t.Errorf("vehicle %d travelled only %.1f m in 900 s", i, d)
		}
	}
}

// TestPauseBehaviour: with a huge pause and tiny duration, vehicles stay
// near their start nodes initially.
func TestPauseBehaviour(t *testing.T) {
	net := testNet(t)
	cfg := DefaultConfig(10, 2)
	cfg.PauseMaxSeconds = 100000
	s := mustSim(t, net, cfg)
	start := make([]geom.Point, s.NumVehicles())
	s.Positions(start)
	for i := 0; i < 10; i++ {
		s.Step()
	}
	cur := make([]geom.Point, s.NumVehicles())
	s.Positions(cur)
	moved := 0
	for i := range cur {
		if cur[i] != start[i] {
			moved++
		}
	}
	// With pauses uniform in [0, 100000] s, almost nobody moves in 10 s.
	if moved > 3 {
		t.Errorf("%d of %d vehicles moved during huge pause", moved, len(cur))
	}
}

// TestAverageSpeedPlausible: mean moving speed should be within road speed
// range (sanity check against unit errors km/h vs m/s).
func TestAverageSpeedPlausible(t *testing.T) {
	net := testNet(t)
	cfg := DefaultConfig(40, 9)
	cfg.PauseMaxSeconds = 0 // keep them driving
	s := mustSim(t, net, cfg)
	prev := make([]geom.Point, s.NumVehicles())
	cur := make([]geom.Point, s.NumVehicles())
	s.Positions(prev)
	var sum float64
	var n int
	for tick := 0; tick < 600; tick++ {
		s.Step()
		s.Positions(cur)
		for i := range cur {
			d := cur[i].DistanceTo(prev[i])
			if d > 0 {
				sum += d
				n++
			}
		}
		copy(prev, cur)
	}
	mean := sum / float64(n)
	// Local roads at 35 km/h ≈ 9.7 m/s; highways 110 km/h ≈ 30.6 m/s.
	// Straight-line per-tick displacement can dip below road speed at
	// turns, so accept a broad plausible band.
	if mean < 5 || mean > 31 {
		t.Errorf("mean per-second displacement %.2f m implausible", mean)
	}
	if math.IsNaN(mean) {
		t.Fatal("no movement recorded")
	}
}
