// Command alarmclient connects a mobile client to a running alarmserver
// and replays a mobility trace (produced by cmd/tracegen) through the
// client-side monitoring state machine. It prints each alarm the server
// delivers and, at the end, the client's message and energy statistics —
// a live demonstration of how few reports safe region monitoring needs.
//
// Usage:
//
//	tracegen -vehicles 5 -ticks 600 -out trace.csv
//	alarmserver &
//	alarmclient -addr localhost:7700 -user 1 -strategy pbsr -trace trace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/sabre-geo/sabre/internal/client"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/trace"
	"github.com/sabre-geo/sabre/internal/transport"
	"github.com/sabre-geo/sabre/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "alarmclient:", err)
		os.Exit(1)
	}
}

var strategies = map[string]wire.Strategy{
	"periodic": wire.StrategyPeriodic,
	"sp":       wire.StrategySafePeriod,
	"mwpsr":    wire.StrategyMWPSR,
	"pbsr":     wire.StrategyPBSR,
	"opt":      wire.StrategyOptimal,
}

func run() error {
	var (
		addr      = flag.String("addr", "localhost:7700", "server address")
		user      = flag.Uint64("user", 1, "user id (must match a trace user)")
		strat     = flag.String("strategy", "mwpsr", "processing strategy: periodic, sp, mwpsr, pbsr, opt")
		height    = flag.Int("max-height", 5, "PBSR: maximum pyramid height this device decodes")
		tracePath = flag.String("trace", "", "trace file from tracegen (csv or bin; required)")
		realtime  = flag.Bool("realtime", false, "replay at 1 tick per second instead of full speed")
	)
	flag.Parse()
	strategy, ok := strategies[strings.ToLower(*strat)]
	if !ok {
		return fmt.Errorf("unknown strategy %q", *strat)
	}
	if *tracePath == "" {
		return fmt.Errorf("-trace is required (generate one with tracegen)")
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	path, err := trace.ReadUserPath(f, *user)
	f.Close()
	if err != nil {
		return err
	}
	if len(path) == 0 {
		return fmt.Errorf("trace has no positions for user %d", *user)
	}

	conn, err := transport.Dial(*addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(wire.Register{User: *user, Strategy: strategy, MaxHeight: uint8(*height)}); err != nil {
		return err
	}

	met := &metrics.Client{}
	cl := client.New(*user, strategy, met)
	fmt.Printf("user %d (%s) replaying %d ticks against %s\n", *user, strategy, len(path), *addr)
	start := time.Now()
	for tick, pos := range path {
		if *realtime && tick > 0 {
			time.Sleep(time.Second)
		}
		upd := cl.Tick(tick, pos)
		if upd == nil {
			continue
		}
		if err := conn.Send(*upd); err != nil {
			return err
		}
		for {
			msg, err := conn.Recv()
			if err != nil {
				return err
			}
			if fired, ok := msg.(wire.AlarmFired); ok {
				for _, id := range fired.Alarms {
					fmt.Printf("tick %4d at (%.0f, %.0f): ALARM %d fired\n", tick, pos.X, pos.Y, id)
				}
			}
			if err := cl.Handle(tick, msg); err != nil {
				return err
			}
			if _, again := msg.(wire.AlarmFired); !again {
				break
			}
		}
	}
	fmt.Printf("\ndone in %v: %d of %d ticks reported (%.1f%%), %d containment checks, %.2f mWh\n",
		time.Since(start).Round(time.Millisecond),
		met.MessagesSent, len(path),
		100*float64(met.MessagesSent)/float64(len(path)),
		met.ContainmentChecks,
		met.Energy(metrics.DefaultEnergy()))
	return nil
}
