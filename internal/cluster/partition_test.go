package cluster

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
)

var testUniverse = geom.Rect{MinX: -37, MinY: 13, MaxX: 9963, MaxY: 7013}

// TestPartitionGridTiling checks that the partition rectangles tile the
// universe exactly: every rect is inside it, neighbouring rects share
// their boundary bit for bit, and the areas sum to the whole.
func TestPartitionGridTiling(t *testing.T) {
	grids := [][2]int{{1, 1}, {2, 2}, {3, 2}, {4, 1}, {1, 4}, {5, 3}}
	for _, g := range grids {
		p, err := NewPartitionerGrid(testUniverse, g[0], g[1])
		if err != nil {
			t.Fatal(err)
		}
		var area float64
		for i := 0; i < p.N(); i++ {
			r := p.Rect(i)
			if r.Empty() {
				t.Fatalf("%dx%d: partition %d empty: %v", g[0], g[1], i, r)
			}
			if !testUniverse.ContainsRect(r) {
				t.Fatalf("%dx%d: partition %d %v escapes universe", g[0], g[1], i, r)
			}
			area += r.Width() * r.Height()
			col, row := i%g[0], i/g[0]
			if col+1 < g[0] {
				right := p.Rect(i + 1)
				if r.MaxX != right.MinX {
					t.Errorf("%dx%d: seam gap between %d and %d: %v vs %v", g[0], g[1], i, i+1, r.MaxX, right.MinX)
				}
			}
			if row+1 < g[1] {
				above := p.Rect(i + g[0])
				if r.MaxY != above.MinY {
					t.Errorf("%dx%d: seam gap between %d and %d: %v vs %v", g[0], g[1], i, i+g[0], r.MaxY, above.MinY)
				}
			}
		}
		want := testUniverse.Width() * testUniverse.Height()
		if math.Abs(area-want) > want*1e-9 {
			t.Errorf("%dx%d: areas sum to %v, universe is %v", g[0], g[1], area, want)
		}
	}
}

// TestLocateMatchesRect fuzzes random points: the owning partition's
// rectangle must contain the point, and a point exactly on an interior
// boundary must belong to the higher-indexed cell.
func TestLocateMatchesRect(t *testing.T) {
	p, err := NewPartitionerGrid(testUniverse, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		pt := geom.Pt(
			testUniverse.MinX+rng.Float64()*testUniverse.Width(),
			testUniverse.MinY+rng.Float64()*testUniverse.Height(),
		)
		s := p.Locate(pt)
		if !p.Rect(s).Contains(pt) {
			t.Fatalf("point %v located in shard %d whose rect %v excludes it", pt, s, p.Rect(s))
		}
	}
	// Interior boundaries belong to the higher-indexed cell.
	for c := 1; c < p.Cols(); c++ {
		pt := geom.Pt(p.boundaryX(c), testUniverse.MinY+1)
		if got := p.Locate(pt); got%p.Cols() != c {
			t.Errorf("boundary x=%v located in column %d, want %d", pt.X, got%p.Cols(), c)
		}
	}
	for r := 1; r < p.Rows(); r++ {
		pt := geom.Pt(testUniverse.MinX+1, p.boundaryY(r))
		if got := p.Locate(pt); got/p.Cols() != r {
			t.Errorf("boundary y=%v located in row %d, want %d", pt.Y, got/p.Cols(), r)
		}
	}
}

// TestLocateClampsOutside: positions beyond the universe (the engine
// tolerates one cell of slack) clamp to the nearest edge partition.
func TestLocateClampsOutside(t *testing.T) {
	p, err := NewPartitionerGrid(testUniverse, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pt   geom.Point
		want int
	}{
		{geom.Pt(testUniverse.MinX-500, testUniverse.MinY-500), 0},
		{geom.Pt(testUniverse.MaxX+500, testUniverse.MinY-500), 1},
		{geom.Pt(testUniverse.MinX-500, testUniverse.MaxY+500), 2},
		{geom.Pt(testUniverse.MaxX+500, testUniverse.MaxY+500), 3},
	}
	for _, tc := range cases {
		if got := p.Locate(tc.pt); got != tc.want {
			t.Errorf("Locate(%v) = %d, want %d", tc.pt, got, tc.want)
		}
	}
}

// TestAutoFactorization: the shard count splits into the most squarish
// grid the universe's aspect ratio allows.
func TestAutoFactorization(t *testing.T) {
	square := geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	wide := geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 2500}
	cases := []struct {
		universe   geom.Rect
		n          int
		cols, rows int
	}{
		{square, 1, 1, 1},
		{square, 4, 2, 2},
		{square, 9, 3, 3},
		{wide, 4, 4, 1},
		{wide, 8, 4, 2},
	}
	for _, tc := range cases {
		p, err := NewPartitioner(tc.universe, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Cols() != tc.cols || p.Rows() != tc.rows {
			t.Errorf("n=%d on %v: got %dx%d, want %dx%d", tc.n, tc.universe, p.Cols(), p.Rows(), tc.cols, tc.rows)
		}
	}
	if _, err := NewPartitioner(square, 0); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewPartitionerGrid(geom.Rect{}, 2, 2); err == nil {
		t.Error("empty universe accepted")
	}
}

// TestOverlapping: a rect straddling the centre of a 2x2 grid touches
// all four partitions; a corner rect only its own.
func TestOverlapping(t *testing.T) {
	p, err := NewPartitionerGrid(testUniverse, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cx := testUniverse.MinX + testUniverse.Width()/2
	cy := testUniverse.MinY + testUniverse.Height()/2
	all := p.Overlapping(geom.RectAround(geom.Pt(cx, cy), 100))
	if len(all) != 4 {
		t.Errorf("centre rect overlaps %v, want all 4", all)
	}
	corner := p.Overlapping(geom.RectAround(geom.Pt(testUniverse.MinX+100, testUniverse.MinY+100), 50))
	if len(corner) != 1 || corner[0] != 0 {
		t.Errorf("corner rect overlaps %v, want [0]", corner)
	}
}
