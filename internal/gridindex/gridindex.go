// Package gridindex implements a uniform bucket-grid spatial index with
// the same query surface as the R*-tree. The paper indexes alarms in an
// R*-tree (§5.1); this index exists to ablate that choice: bucket grids
// are the standard straw-man alternative for uniformly distributed
// regions, trading the tree's adaptivity for O(1) bucket addressing.
// `alarmbench ablate-index` compares the two under identical workloads.
//
// Each rectangle is registered in every bucket it intersects; queries
// visit the buckets covering the query range and deduplicate. Nearest-
// neighbour queries expand ring by ring until the best hit provably beats
// every unvisited ring.
package gridindex

import (
	"math"
	"sync/atomic"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/rstar"
)

// Index is a bucket-grid spatial index. Create with New; not safe for
// concurrent mutation (matching rstar.Tree).
type Index struct {
	bounds   geom.Rect
	cellSide float64
	cols     int
	rows     int
	buckets  [][]rstar.Item
	size     int

	accesses atomic.Uint64
}

// New creates an index over bounds with roughly targetBuckets buckets.
func New(bounds geom.Rect, targetBuckets int) *Index {
	if targetBuckets < 1 {
		targetBuckets = 1
	}
	if bounds.Empty() {
		bounds = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	side := math.Sqrt(bounds.Area() / float64(targetBuckets))
	cols := int(math.Ceil(bounds.Width() / side))
	rows := int(math.Ceil(bounds.Height() / side))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Index{
		bounds:   bounds,
		cellSide: side,
		cols:     cols,
		rows:     rows,
		buckets:  make([][]rstar.Item, cols*rows),
	}
}

// Len returns the number of stored items.
func (x *Index) Len() int { return x.size }

// NodeAccesses returns bucket visits since the last ResetStats (the
// bucket-grid analogue of the R*-tree's node accesses).
func (x *Index) NodeAccesses() uint64 { return x.accesses.Load() }

// ResetStats zeroes the access counter.
func (x *Index) ResetStats() { x.accesses.Store(0) }

func (x *Index) clampCol(c int) int {
	if c < 0 {
		return 0
	}
	if c >= x.cols {
		return x.cols - 1
	}
	return c
}

func (x *Index) clampRow(r int) int {
	if r < 0 {
		return 0
	}
	if r >= x.rows {
		return x.rows - 1
	}
	return r
}

// bucketRange returns the clamped bucket coordinates covering r.
func (x *Index) bucketRange(r geom.Rect) (c0, r0, c1, r1 int) {
	c0 = x.clampCol(int(math.Floor((r.MinX - x.bounds.MinX) / x.cellSide)))
	c1 = x.clampCol(int(math.Floor((r.MaxX - x.bounds.MinX) / x.cellSide)))
	r0 = x.clampRow(int(math.Floor((r.MinY - x.bounds.MinY) / x.cellSide)))
	r1 = x.clampRow(int(math.Floor((r.MaxY - x.bounds.MinY) / x.cellSide)))
	return
}

// Insert adds an item (registered in every bucket its rect intersects).
func (x *Index) Insert(it rstar.Item) {
	c0, r0, c1, r1 := x.bucketRange(it.Rect)
	for c := c0; c <= c1; c++ {
		for r := r0; r <= r1; r++ {
			b := r*x.cols + c
			x.buckets[b] = append(x.buckets[b], it)
		}
	}
	x.size++
}

// InsertBatch adds many items.
func (x *Index) InsertBatch(items []rstar.Item) {
	for _, it := range items {
		x.Insert(it)
	}
}

// Delete removes the first item matching (rect, id); it reports whether
// an item was removed.
func (x *Index) Delete(it rstar.Item) bool {
	c0, r0, c1, r1 := x.bucketRange(it.Rect)
	found := false
	for c := c0; c <= c1; c++ {
		for r := r0; r <= r1; r++ {
			b := r*x.cols + c
			for i, cand := range x.buckets[b] {
				if cand.ID == it.ID && cand.Rect == it.Rect {
					x.buckets[b] = append(x.buckets[b][:i], x.buckets[b][i+1:]...)
					found = true
					break
				}
			}
		}
	}
	if found {
		x.size--
	}
	return found
}

// SearchPoint appends the IDs of all rectangles containing p.
func (x *Index) SearchPoint(p geom.Point, dst []uint64) []uint64 {
	dst, _ = x.SearchPointCounted(p, dst)
	return dst
}

// SearchPointCounted is SearchPoint plus the number of bucket visits this
// query performed.
func (x *Index) SearchPointCounted(p geom.Point, dst []uint64) ([]uint64, uint64) {
	// Bucket addressing clamps to the fringe (out-of-bounds rectangles are
	// registered into edge buckets too); the containment test below uses
	// the original point.
	addr := x.bounds.ClampPoint(p)
	c := x.clampCol(int(math.Floor((addr.X - x.bounds.MinX) / x.cellSide)))
	r := x.clampRow(int(math.Floor((addr.Y - x.bounds.MinY) / x.cellSide)))
	x.accesses.Add(1)
	for _, it := range x.buckets[r*x.cols+c] {
		if it.Rect.Contains(p) {
			dst = append(dst, it.ID)
		}
	}
	return dst, 1
}

// SearchRect appends the IDs of all rectangles intersecting w, without
// duplicates.
func (x *Index) SearchRect(w geom.Rect, dst []uint64) []uint64 {
	dst, _ = x.SearchRectCounted(w, dst)
	return dst
}

// SearchRectCounted is SearchRect plus the number of bucket visits this
// query performed.
func (x *Index) SearchRectCounted(w geom.Rect, dst []uint64) ([]uint64, uint64) {
	c0, r0, c1, r1 := x.bucketRange(w)
	seen := make(map[uint64]struct{}, 16)
	var accesses uint64
	for c := c0; c <= c1; c++ {
		for r := r0; r <= r1; r++ {
			accesses++
			for _, it := range x.buckets[r*x.cols+c] {
				if !it.Rect.Intersects(w) {
					continue
				}
				if _, dup := seen[it.ID]; dup {
					continue
				}
				seen[it.ID] = struct{}{}
				dst = append(dst, it.ID)
			}
		}
	}
	x.accesses.Add(accesses)
	return dst, accesses
}

// NearestDist returns the minimum distance from p to any item accepted by
// filter (+Inf when none qualifies), expanding outward bucket ring by
// bucket ring.
func (x *Index) NearestDist(p geom.Point, filter func(id uint64) bool) float64 {
	d, _ := x.NearestDistCounted(p, filter)
	return d
}

// NearestDistCounted is NearestDist plus the number of bucket visits this
// query performed.
func (x *Index) NearestDistCounted(p geom.Point, filter func(id uint64) bool) (float64, uint64) {
	if x.size == 0 {
		return math.Inf(1), 0
	}
	pc := x.clampCol(int(math.Floor((p.X - x.bounds.MinX) / x.cellSide)))
	pr := x.clampRow(int(math.Floor((p.Y - x.bounds.MinY) / x.cellSide)))
	best := math.Inf(1)
	var accesses uint64
	maxRing := x.cols
	if x.rows > maxRing {
		maxRing = x.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Once the best hit is closer than the nearest possible point of
		// the next unvisited ring, stop.
		if ringDist := (float64(ring) - 1) * x.cellSide; ringDist > 0 && best <= ringDist {
			break
		}
		scanned := false
		for c := pc - ring; c <= pc+ring; c++ {
			for r := pr - ring; r <= pr+ring; r++ {
				onRing := c == pc-ring || c == pc+ring || r == pr-ring || r == pr+ring
				if !onRing || c < 0 || c >= x.cols || r < 0 || r >= x.rows {
					continue
				}
				scanned = true
				accesses++
				for _, it := range x.buckets[r*x.cols+c] {
					if filter != nil && !filter(it.ID) {
						continue
					}
					if d := it.Rect.MinDist(p); d < best {
						best = d
					}
				}
			}
		}
		if !scanned && ring > 0 && !math.IsInf(best, 1) {
			break
		}
	}
	x.accesses.Add(accesses)
	return best, accesses
}
