package server

import (
	"bytes"
	"math"
	"testing"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/motion"
	"github.com/sabre-geo/sabre/internal/pyramid"
	"github.com/sabre-geo/sabre/internal/wire"
)

var universe = geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}

func newEngine(t testing.TB, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := Config{
		Universe:      universe,
		CellAreaM2:    2.5e6,
		Model:         motion.MustNew(1, 32),
		PyramidParams: pyramid.DefaultParams(5),
		MaxSpeed:      30,
		TickSeconds:   1,
		Costs:         metrics.DefaultCosts(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func install(t testing.TB, e *Engine, a alarm.Alarm) alarm.ID {
	t.Helper()
	id, err := e.Registry().Install(a)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func register(t testing.TB, e *Engine, user uint64, s wire.Strategy) {
	t.Helper()
	if err := e.Register(wire.Register{User: user, Strategy: s, MaxHeight: 5}); err != nil {
		t.Fatal(err)
	}
}

func handle(t testing.TB, e *Engine, user uint64, seq uint32, p geom.Point) []wire.Message {
	t.Helper()
	out, err := e.HandleUpdate(wire.PositionUpdate{User: user, Seq: seq, Pos: p})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	bad := Config{Universe: universe, CellAreaM2: 2.5e6, MaxSpeed: 30}
	if _, err := New(bad); err == nil {
		t.Error("zero tick accepted")
	}
	bad = Config{Universe: universe, CellAreaM2: 2.5e6, TickSeconds: 1}
	if _, err := New(bad); err == nil {
		t.Error("zero max speed accepted")
	}
	bad = Config{Universe: geom.Rect{}, CellAreaM2: 2.5e6, TickSeconds: 1, MaxSpeed: 30}
	if _, err := New(bad); err == nil {
		t.Error("empty universe accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	e := newEngine(t, nil)
	if err := e.Register(wire.Register{User: 1, Strategy: 99}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := e.Register(wire.Register{User: 1, Strategy: wire.StrategyMWPSR}); err != nil {
		t.Error(err)
	}
}

func TestPeriodicNoResponse(t *testing.T) {
	e := newEngine(t, nil)
	register(t, e, 1, wire.StrategyPeriodic)
	out := handle(t, e, 1, 1, geom.Pt(100, 100))
	if len(out) != 0 {
		t.Errorf("periodic got responses: %v", out)
	}
	if e.Metrics().Snapshot().UplinkMessages != 1 {
		t.Errorf("uplink = %d", e.Metrics().Snapshot().UplinkMessages)
	}
}

func TestUnknownClientTreatedAsPeriodic(t *testing.T) {
	e := newEngine(t, nil)
	out := handle(t, e, 77, 1, geom.Pt(100, 100))
	if len(out) != 0 {
		t.Errorf("unregistered client got responses: %v", out)
	}
}

func TestTriggerAndOneShot(t *testing.T) {
	e := newEngine(t, nil)
	register(t, e, 1, wire.StrategyMWPSR)
	id := install(t, e, alarm.Alarm{Scope: alarm.Private, Owner: 1, Region: geom.RectAround(geom.Pt(500, 500), 100)})

	out := handle(t, e, 1, 1, geom.Pt(500, 500))
	var fired *wire.AlarmFired
	var region *wire.RectRegion
	for _, m := range out {
		switch v := m.(type) {
		case wire.AlarmFired:
			fired = &v
		case wire.RectRegion:
			region = &v
		}
	}
	if fired == nil || len(fired.Alarms) != 1 || fired.Alarms[0] != uint64(id) {
		t.Fatalf("expected AlarmFired for %d, got %v", id, out)
	}
	if region == nil {
		t.Fatal("expected a safe region response")
	}
	// The fired alarm is free space: the new region may cover it; but it
	// must contain the client position.
	if !region.Rect.Contains(geom.Pt(500, 500)) {
		t.Errorf("region %v lost client", region.Rect)
	}
	if e.Metrics().Snapshot().AlarmsTriggered != 1 {
		t.Errorf("AlarmsTriggered = %d", e.Metrics().Snapshot().AlarmsTriggered)
	}
	// Same position again: one-shot means no second fire.
	out = handle(t, e, 1, 2, geom.Pt(500, 500))
	for _, m := range out {
		if _, ok := m.(wire.AlarmFired); ok {
			t.Error("alarm fired twice")
		}
	}
}

func TestMWPSRResponseSound(t *testing.T) {
	e := newEngine(t, nil)
	register(t, e, 1, wire.StrategyMWPSR)
	a := geom.RectAround(geom.Pt(900, 900), 200)
	install(t, e, alarm.Alarm{Scope: alarm.Private, Owner: 1, Region: a})
	// Two updates so the server has a heading.
	handle(t, e, 1, 1, geom.Pt(300, 300))
	out := handle(t, e, 1, 2, geom.Pt(320, 310))
	region, ok := out[len(out)-1].(wire.RectRegion)
	if !ok {
		t.Fatalf("expected RectRegion, got %v", out)
	}
	if region.Rect.Overlaps(a) {
		t.Errorf("region %v overlaps alarm %v", region.Rect, a)
	}
	if !region.Rect.Contains(geom.Pt(320, 310)) {
		t.Error("region lost client")
	}
	if region.Seq != 2 {
		t.Errorf("seq = %d", region.Seq)
	}
	if e.Metrics().SafeRegionComputations() != 2 {
		t.Errorf("SR computations = %d", e.Metrics().SafeRegionComputations())
	}
}

func TestSafePeriodResponse(t *testing.T) {
	e := newEngine(t, nil)
	register(t, e, 1, wire.StrategySafePeriod)
	install(t, e, alarm.Alarm{Scope: alarm.Private, Owner: 1,
		Region: geom.Rect{MinX: 400, MinY: 0, MaxX: 500, MaxY: 1000}})
	out := handle(t, e, 1, 1, geom.Pt(100, 500))
	sp, ok := out[0].(wire.SafePeriod)
	if !ok {
		t.Fatalf("expected SafePeriod, got %v", out)
	}
	// Distance 300 m at v_max 30 m/s = 10 ticks.
	if sp.Ticks != 10 {
		t.Errorf("Ticks = %d, want 10", sp.Ticks)
	}
	// A user with no relevant alarms gets a huge period.
	register(t, e, 2, wire.StrategySafePeriod)
	out = handle(t, e, 2, 1, geom.Pt(100, 500))
	if sp := out[0].(wire.SafePeriod); sp.Ticks < 1<<29 {
		t.Errorf("expected unbounded period, got %d", sp.Ticks)
	}
}

func TestPBSRCellCachingProtocol(t *testing.T) {
	e := newEngine(t, nil)
	register(t, e, 1, wire.StrategyPBSR)
	install(t, e, alarm.Alarm{Scope: alarm.Public, Owner: 2, Region: geom.RectAround(geom.Pt(700, 700), 150)})

	// First update: full bitmap.
	out := handle(t, e, 1, 1, geom.Pt(100, 100))
	if _, ok := out[0].(wire.BitmapRegion); !ok {
		t.Fatalf("expected BitmapRegion, got %v", out)
	}
	comps := e.Metrics().SafeRegionComputations()
	// Second update in the same cell without trigger: bare Ack, no new
	// computation (paper §4.2).
	out = handle(t, e, 1, 2, geom.Pt(200, 200))
	if _, ok := out[0].(wire.Ack); !ok {
		t.Fatalf("expected Ack, got %v", out)
	}
	if e.Metrics().SafeRegionComputations() != comps {
		t.Error("Ack path recomputed the safe region")
	}
	// Crossing into another cell: fresh bitmap.
	out = handle(t, e, 1, 3, geom.Pt(4000, 4000))
	if _, ok := out[0].(wire.BitmapRegion); !ok {
		t.Fatalf("expected BitmapRegion after cell change, got %v", out)
	}
	// A trigger inside the cell also forces recomputation.
	out = handle(t, e, 1, 4, geom.Pt(700, 700)) // inside the public alarm, cell change too
	hasBitmap := false
	for _, m := range out {
		if _, ok := m.(wire.BitmapRegion); ok {
			hasBitmap = true
		}
	}
	if !hasBitmap {
		t.Fatalf("expected recomputed bitmap on trigger, got %v", out)
	}
}

func TestPBSRHeightCappedByClient(t *testing.T) {
	e := newEngine(t, nil)
	if err := e.Register(wire.Register{User: 1, Strategy: wire.StrategyPBSR, MaxHeight: 2}); err != nil {
		t.Fatal(err)
	}
	install(t, e, alarm.Alarm{Scope: alarm.Public, Owner: 2, Region: geom.RectAround(geom.Pt(500, 500), 100)})
	out := handle(t, e, 1, 1, geom.Pt(100, 100))
	bm := out[0].(wire.BitmapRegion)
	if bm.Height != 2 {
		t.Errorf("height = %d, want client cap 2", bm.Height)
	}
}

func TestOptimalPush(t *testing.T) {
	e := newEngine(t, nil)
	register(t, e, 1, wire.StrategyOptimal)
	install(t, e, alarm.Alarm{Scope: alarm.Public, Owner: 2, Region: geom.RectAround(geom.Pt(700, 700), 100)})
	install(t, e, alarm.Alarm{Scope: alarm.Private, Owner: 9, Region: geom.RectAround(geom.Pt(600, 600), 100)})  // not relevant
	install(t, e, alarm.Alarm{Scope: alarm.Public, Owner: 2, Region: geom.RectAround(geom.Pt(9000, 9000), 100)}) // other cell

	out := handle(t, e, 1, 1, geom.Pt(100, 100))
	push, ok := out[0].(wire.AlarmPush)
	if !ok {
		t.Fatalf("expected AlarmPush, got %v", out)
	}
	if len(push.Alarms) != 1 {
		t.Errorf("pushed %d alarms, want only the relevant in-cell one", len(push.Alarms))
	}
	if !push.Cell.Contains(geom.Pt(100, 100)) {
		t.Error("pushed cell does not contain client")
	}
}

func TestPrecomputedPublicBitmapsCachedPerCell(t *testing.T) {
	e := newEngine(t, func(c *Config) { c.PrecomputePublicBitmaps = true })
	register(t, e, 1, wire.StrategyPBSR)
	register(t, e, 2, wire.StrategyPBSR)
	install(t, e, alarm.Alarm{Scope: alarm.Public, Owner: 9, Region: geom.RectAround(geom.Pt(700, 700), 150)})

	handle(t, e, 1, 1, geom.Pt(100, 100))
	afterFirst := e.Metrics().SafeRegionComputations()
	// Second client in the same cell reuses the cached public bitmap: only
	// one additional (per-user) computation, not two.
	handle(t, e, 2, 1, geom.Pt(150, 150))
	if got := e.Metrics().SafeRegionComputations() - afterFirst; got != 1 {
		t.Errorf("second client cost %d computations, want 1 (cached public bitmap)", got)
	}
	// Invalidation clears the cache.
	e.InvalidatePublicBitmaps()
	handle(t, e, 1, 2, geom.Pt(4000, 200)) // different cell, rebuilds public bitmap there
}

func TestDownlinkAccounting(t *testing.T) {
	e := newEngine(t, nil)
	register(t, e, 1, wire.StrategyMWPSR)
	out := handle(t, e, 1, 1, geom.Pt(100, 100))
	var want uint64
	for _, m := range out {
		want += uint64(wire.EncodedSize(m))
	}
	if e.Metrics().Snapshot().DownlinkBytes != want {
		t.Errorf("DownlinkBytes = %d, want %d", e.Metrics().Snapshot().DownlinkBytes, want)
	}
	if e.Metrics().Snapshot().DownlinkMessages != uint64(len(out)) {
		t.Errorf("DownlinkMessages = %d, want %d", e.Metrics().Snapshot().DownlinkMessages, len(out))
	}
}

func TestHandleUpdateRejectsBadPositions(t *testing.T) {
	e := newEngine(t, nil)
	register(t, e, 1, wire.StrategyMWPSR)
	bad := []geom.Point{
		{X: math.NaN(), Y: 5},
		{X: 5, Y: math.NaN()},
		{X: math.Inf(1), Y: 5},
		{X: 5, Y: math.Inf(-1)},
		{X: 1e9, Y: 5}, // far outside the universe
	}
	for _, p := range bad {
		if _, err := e.HandleUpdate(wire.PositionUpdate{User: 1, Seq: 1, Pos: p}); err == nil {
			t.Errorf("position %v accepted", p)
		}
	}
	// Slight fringe drift (within a cell side of the universe) is fine.
	if _, err := e.HandleUpdate(wire.PositionUpdate{User: 1, Seq: 2, Pos: geom.Pt(-100, 5000)}); err != nil {
		t.Errorf("fringe position rejected: %v", err)
	}
}

// TestSnapshotRestart: firing state survives a snapshot/restore cycle, so
// a restarted server keeps one-shot semantics (no duplicate alerts).
func TestSnapshotRestart(t *testing.T) {
	e1 := newEngine(t, nil)
	register(t, e1, 1, wire.StrategyMWPSR)
	id := install(t, e1, alarm.Alarm{Scope: alarm.Private, Owner: 1, Region: geom.RectAround(geom.Pt(500, 500), 100)})
	out := handle(t, e1, 1, 1, geom.Pt(500, 500))
	if _, ok := out[0].(wire.AlarmFired); !ok {
		t.Fatalf("expected fire, got %v", out)
	}

	var buf bytes.Buffer
	if err := e1.Registry().Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := alarm.LoadRegistry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e2 := newEngine(t, nil)
	e2.ReplaceRegistry(restored)
	register(t, e2, 1, wire.StrategyMWPSR)
	out = handle(t, e2, 1, 1, geom.Pt(500, 500))
	for _, m := range out {
		if _, ok := m.(wire.AlarmFired); ok {
			t.Errorf("alarm %d re-fired after restart", id)
		}
	}
	// A fresh user still gets nothing (private alarm, not theirs).
	register(t, e2, 2, wire.StrategyMWPSR)
	out = handle(t, e2, 2, 1, geom.Pt(500, 500))
	for _, m := range out {
		if _, ok := m.(wire.AlarmFired); ok {
			t.Error("private alarm fired for the wrong user after restart")
		}
	}
}
