package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// Follower-side replication: a FollowerLog mirrors a primary store's
// snapshot + WAL generation on its own directory, applying the frames
// the primary's repl sink emits. The on-disk layout is byte-for-byte the
// primary's (snap-<gen>.json plus wal-<gen>.log of ordinary WAL frames),
// so promotion is simply Seal followed by Open — the existing recovery
// path rebuilds the full engine state from the follower's disk in
// bounded time. Alongside the disk mirror the follower keeps a warm
// Applier so its current state is inspectable without a replay.
//
// Apply rules (the stream's safety argument):
//   - a frame whose term is older than the newest term seen is rejected
//     (a deposed primary cannot rewrite a promoted log);
//   - a record must decode (DecodeRecord) before one byte of it reaches
//     the follower's WAL — a corrupt record is never applied;
//   - positions must advance exactly one at a time within a generation;
//     a gap or a generation the follower never saw a snapshot for
//     reports ErrNeedSnapshot and the primary resyncs it;
//   - duplicates (position at or below the applied one) are skipped,
//     not errors, so a resync overlapping buffered frames is harmless.

// ErrSealed is returned by Apply after Seal: the log was promoted (or
// retired) and must not advance further.
var ErrSealed = errors.New("store: follower log sealed")

// ErrNeedSnapshot reports a stream gap the follower cannot bridge from
// record frames alone; the primary must send a fresh snapshot frame.
var ErrNeedSnapshot = errors.New("store: follower needs snapshot resync")

// FollowerLog is one follower's durable mirror of a primary store.
type FollowerLog struct {
	dir  string
	opts Options

	mu      sync.Mutex
	synced  bool // a snapshot frame has seeded the log
	sealed  bool
	gen     uint64
	pos     uint64
	term    uint64
	wal     *os.File
	applier *Applier
	applied uint64 // records applied over the log's lifetime

	// ApplyBatch scratch, reused across batches under mu: the coalesced
	// frame buffer for one run and the decoded records awaiting apply.
	batchBuf  []byte
	batchRecs []Record
}

// OpenFollower creates a fresh follower log under dir, wiping anything
// a previous incarnation left there: a follower always bootstraps from
// a snapshot frame, never from stale disk.
func OpenFollower(dir string, opts Options) (*FollowerLog, error) {
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("store: follower: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: follower: %w", err)
	}
	return &FollowerLog{dir: dir, opts: opts}, nil
}

// Dir returns the follower's directory (the promotion target for Open).
func (l *FollowerLog) Dir() string { return l.dir }

// Pos returns the last applied record position — the follower's
// acknowledged position for lag accounting.
func (l *FollowerLog) Pos() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pos
}

// Gen returns the generation the follower currently mirrors.
func (l *FollowerLog) Gen() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// Term returns the newest fencing term the follower has seen.
func (l *FollowerLog) Term() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.term
}

// Applied returns how many record frames the follower has applied over
// its lifetime.
func (l *FollowerLog) Applied() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.applied
}

// Synced reports whether a snapshot frame has seeded the log.
func (l *FollowerLog) Synced() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// State materializes the follower's warm state (nil before the first
// snapshot frame).
func (l *FollowerLog) State() *State {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.applier == nil {
		return nil
	}
	return l.applier.State()
}

// Apply folds one replication frame. The bool reports whether the frame
// advanced the log (false for skipped duplicates and heartbeats).
func (l *FollowerLog) Apply(f ReplFrame) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		return false, ErrSealed
	}
	if f.Term < l.term {
		return false, fmt.Errorf("%w: frame term %d below %d", ErrBadReplFrame, f.Term, l.term)
	}
	l.term = f.Term
	switch f.Type {
	case ReplHeartbeat:
		return false, nil
	case ReplSnapshot:
		return true, l.installSnapshotLocked(f)
	case ReplRecord:
		return l.applyRecordLocked(f)
	default:
		return false, fmt.Errorf("%w: unknown type %d", ErrBadReplFrame, f.Type)
	}
}

// ApplyBatch folds a batch of replication frames in order, coalescing
// every run of consecutive applicable record frames into a single WAL
// write and (per Options.Fsync) a single fsync — the follower half of
// the primary's group commit. Per-frame validation is identical to
// Apply: records decode before any byte reaches the WAL, duplicates are
// skipped, gaps demand a snapshot. On error the valid prefix before the
// failing frame has been applied and the first failure is reported —
// the caller resyncs, exactly as for a failed Apply. It returns how
// many record frames and snapshot frames advanced the log.
func (l *FollowerLog) ApplyBatch(frames []ReplFrame) (records, snapshots int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		return 0, 0, ErrSealed
	}
	buf := l.batchBuf[:0]
	recs := l.batchRecs[:0]
	vpos := l.pos // position at the end of the pending run
	flush := func() error {
		if len(recs) == 0 {
			return nil
		}
		if _, werr := l.wal.Write(buf); werr != nil {
			return fmt.Errorf("store: follower wal: %w", werr)
		}
		if l.opts.Fsync {
			if serr := l.wal.Sync(); serr != nil {
				return fmt.Errorf("store: follower wal: %w", serr)
			}
		}
		for _, rec := range recs {
			l.applier.Apply(rec)
		}
		l.applied += uint64(len(recs))
		l.pos = vpos
		records += len(recs)
		buf, recs = buf[:0], recs[:0]
		return nil
	}
loop:
	for _, f := range frames {
		if f.Term < l.term {
			err = fmt.Errorf("%w: frame term %d below %d", ErrBadReplFrame, f.Term, l.term)
			break
		}
		l.term = f.Term
		switch f.Type {
		case ReplHeartbeat:
			// Term refreshed above; a heartbeat does not break a run.
		case ReplSnapshot:
			if err = flush(); err != nil {
				break loop
			}
			if err = l.installSnapshotLocked(f); err != nil {
				break loop
			}
			snapshots++
			vpos = l.pos
		case ReplRecord:
			if !l.synced {
				err = ErrNeedSnapshot
				break loop
			}
			if f.Gen < l.gen || f.Pos <= vpos {
				continue // duplicate from before a resync or rotation
			}
			if f.Gen > l.gen {
				err = fmt.Errorf("%w: record for gen %d, follower at %d", ErrNeedSnapshot, f.Gen, l.gen)
				break loop
			}
			if f.Pos != vpos+1 {
				err = fmt.Errorf("%w: record position %d, follower at %d", ErrNeedSnapshot, f.Pos, vpos)
				break loop
			}
			rec, derr := DecodeRecord(f.Payload)
			if derr != nil {
				err = fmt.Errorf("%w: record does not decode: %v", ErrBadReplFrame, derr)
				break loop
			}
			buf = AppendFrame(buf, f.Payload)
			recs = append(recs, rec)
			vpos = f.Pos
		default:
			err = fmt.Errorf("%w: unknown type %d", ErrBadReplFrame, f.Type)
			break loop
		}
	}
	if ferr := flush(); ferr != nil && err == nil {
		err = ferr
	}
	for i := range recs {
		recs[i] = nil // drop record references; the backing array is kept
	}
	l.batchBuf, l.batchRecs = buf[:0], recs[:0]
	return records, snapshots, err
}

// installSnapshotLocked replaces the follower's disk with generation
// f.Gen: snapshot written via tmp+rename, a fresh WAL, the previous
// generation's files removed, and the warm applier reseeded.
func (l *FollowerLog) installSnapshotLocked(f ReplFrame) error {
	state, err := DecodeState(f.Payload)
	if err != nil {
		return fmt.Errorf("store: follower snapshot: %w", err)
	}
	tmp := snapPath(l.dir, f.Gen) + ".tmp"
	sf, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: follower snapshot: %w", err)
	}
	if err := writeSnapshot(sf, state); err == nil {
		err = sf.Sync()
	}
	if err != nil {
		sf.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: follower snapshot: %w", err)
	}
	if err := sf.Close(); err != nil {
		return fmt.Errorf("store: follower snapshot: %w", err)
	}
	if err := os.Rename(tmp, snapPath(l.dir, f.Gen)); err != nil {
		return fmt.Errorf("store: follower snapshot: %w", err)
	}
	syncDir(l.dir)
	wal, err := os.OpenFile(walPath(l.dir, f.Gen), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: follower wal: %w", err)
	}
	if l.wal != nil {
		l.wal.Close()
		if l.gen != f.Gen {
			os.Remove(walPath(l.dir, l.gen))
			os.Remove(snapPath(l.dir, l.gen))
			syncDir(l.dir)
		}
	}
	l.wal = wal
	l.gen = f.Gen
	l.pos = f.Pos
	l.applier = NewApplier(state, l.opts.PendingCap)
	l.synced = true
	return nil
}

// applyRecordLocked validates and appends one record frame. The record
// must decode before anything touches disk; a gap in position or an
// unseen generation demands a snapshot resync.
func (l *FollowerLog) applyRecordLocked(f ReplFrame) (bool, error) {
	if !l.synced {
		return false, ErrNeedSnapshot
	}
	if f.Gen < l.gen || f.Pos <= l.pos {
		return false, nil // duplicate from before a resync or rotation
	}
	if f.Gen > l.gen {
		return false, fmt.Errorf("%w: record for gen %d, follower at %d", ErrNeedSnapshot, f.Gen, l.gen)
	}
	if f.Pos != l.pos+1 {
		return false, fmt.Errorf("%w: record position %d, follower at %d", ErrNeedSnapshot, f.Pos, l.pos)
	}
	rec, err := DecodeRecord(f.Payload)
	if err != nil {
		// A corrupt record never reaches the follower's WAL or state.
		return false, fmt.Errorf("%w: record does not decode: %v", ErrBadReplFrame, err)
	}
	if _, err := l.wal.Write(Frame(f.Payload)); err != nil {
		return false, fmt.Errorf("store: follower wal: %w", err)
	}
	if l.opts.Fsync {
		if err := l.wal.Sync(); err != nil {
			return false, fmt.Errorf("store: follower wal: %w", err)
		}
	}
	l.applier.Apply(rec)
	l.pos = f.Pos
	l.applied++
	return true, nil
}

// Seal syncs and closes the follower's WAL and refuses every further
// Apply. Promotion seals first, then Opens the directory — the ordinary
// recovery path — so the promoted store sees a quiescent log.
func (l *FollowerLog) Seal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		return nil
	}
	l.sealed = true
	if l.wal == nil {
		return nil
	}
	if err := l.wal.Sync(); err != nil {
		l.wal.Close()
		return fmt.Errorf("store: follower seal: %w", err)
	}
	return l.wal.Close()
}

// Reopen reverses Seal for a promotion attempt that failed after the
// log was sealed and removed from the fan-out: the WAL reopens for
// appends and Apply resumes, so the log can rejoin the follower set and
// a later promotion can retry from it. The directory must still be
// intact (Reopen after Close is an error).
func (l *FollowerLog) Reopen() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.sealed {
		return nil
	}
	if l.synced {
		wal, err := os.OpenFile(walPath(l.dir, l.gen), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("store: follower reopen: %w", err)
		}
		l.wal = wal
	}
	l.sealed = false
	return nil
}

// Close discards the follower: seals the log and removes its directory.
func (l *FollowerLog) Close() error {
	if err := l.Seal(); err != nil {
		return err
	}
	return os.RemoveAll(l.dir)
}
