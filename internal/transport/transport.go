// Package transport moves wire messages between clients and the server.
//
// Two implementations share one Conn interface: an in-process channel pipe
// (used by simulations and tests, optionally with injected message loss)
// and a TCP transport with 4-byte length-prefixed frames (used by the
// cmd/alarmserver and cmd/alarmclient binaries). The client state machine
// already tolerates lost responses via its resend timeout, so the lossy
// wrapper doubles as the failure-injection harness.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"

	"github.com/sabre-geo/sabre/internal/wire"
)

// MaxFrameBytes bounds a single message frame; larger frames indicate a
// corrupt or hostile peer.
const MaxFrameBytes = 1 << 20

// ErrClosed is returned for operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// Conn is a bidirectional, ordered message pipe.
type Conn interface {
	// Send transmits one message. It is safe for concurrent use.
	Send(m wire.Message) error
	// Recv blocks for the next message.
	Recv() (wire.Message, error)
	// Close releases the connection; pending and future Recv calls fail.
	Close() error
}

// Pipe returns two connected in-process endpoints with the given buffer
// capacity per direction.
func Pipe(capacity int) (Conn, Conn) {
	if capacity < 1 {
		capacity = 1
	}
	ab := make(chan wire.Message, capacity)
	ba := make(chan wire.Message, capacity)
	done := make(chan struct{})
	var once sync.Once
	closeFn := func() error {
		once.Do(func() { close(done) })
		return nil
	}
	a := &pipeConn{send: ab, recv: ba, done: done, close: closeFn}
	b := &pipeConn{send: ba, recv: ab, done: done, close: closeFn}
	return a, b
}

type pipeConn struct {
	send  chan wire.Message
	recv  chan wire.Message
	done  chan struct{}
	close func() error
}

func (c *pipeConn) Send(m wire.Message) error {
	// Check done first: a two-way select picks randomly when both cases
	// are ready, which would let sends sneak through after Close.
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	select {
	case <-c.done:
		return ErrClosed
	case c.send <- m:
		return nil
	}
}

func (c *pipeConn) Recv() (wire.Message, error) {
	select {
	case <-c.done:
		return nil, ErrClosed
	default:
	}
	select {
	case <-c.done:
		return nil, ErrClosed
	case m := <-c.recv:
		return m, nil
	}
}

func (c *pipeConn) Close() error { return c.close() }

// Lossy wraps a Conn, dropping outbound messages with the given
// probability (deterministic in seed). Receives are unaffected. Used to
// inject message loss in failure tests.
func Lossy(inner Conn, dropProb float64, seed int64) Conn {
	return &lossyConn{inner: inner, dropProb: dropProb, rng: rand.New(rand.NewSource(seed))}
}

type lossyConn struct {
	inner    Conn
	dropProb float64
	mu       sync.Mutex
	rng      *rand.Rand
	dropped  int
}

func (c *lossyConn) Send(m wire.Message) error {
	c.mu.Lock()
	drop := c.rng.Float64() < c.dropProb
	if drop {
		c.dropped++
	}
	c.mu.Unlock()
	if drop {
		return nil // silently lost, like the network would
	}
	return c.inner.Send(m)
}

func (c *lossyConn) Recv() (wire.Message, error) { return c.inner.Recv() }
func (c *lossyConn) Close() error                { return c.inner.Close() }

// Dropped reports how many messages the lossy wrapper discarded.
func (c *lossyConn) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// WriteFrame writes one length-prefixed message to w.
func WriteFrame(w io.Writer, m wire.Message) error {
	payload := wire.Encode(m)
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("transport: message of %d bytes exceeds frame limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("transport: write payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed message from r.
func ReadFrame(r io.Reader) (wire.Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameBytes {
		return nil, fmt.Errorf("transport: invalid frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("transport: read payload: %w", err)
	}
	return wire.Decode(payload)
}

// tcpConn adapts a net.Conn to the Conn interface with framed messages.
type tcpConn struct {
	nc net.Conn
	wm sync.Mutex
	rm sync.Mutex
}

// NewTCP wraps an established network connection.
func NewTCP(nc net.Conn) Conn { return &tcpConn{nc: nc} }

// Dial connects to a SABRE server at addr.
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCP(nc), nil
}

func (c *tcpConn) Send(m wire.Message) error {
	c.wm.Lock()
	defer c.wm.Unlock()
	return WriteFrame(c.nc, m)
}

func (c *tcpConn) Recv() (wire.Message, error) {
	c.rm.Lock()
	defer c.rm.Unlock()
	return ReadFrame(c.nc)
}

func (c *tcpConn) Close() error { return c.nc.Close() }
