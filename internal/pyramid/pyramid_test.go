package pyramid

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
)

var testCell = geom.Rect{MinX: 0, MinY: 0, MaxX: 900, MaxY: 900}

func blockedBy(alarms []geom.Rect) func(geom.Rect) Coverage {
	return func(r geom.Rect) Coverage { return CoverageOf(r, alarms) }
}

func mustEncode(t testing.TB, cell geom.Rect, p Params, blocked func(geom.Rect) Coverage) *Bitmap {
	t.Helper()
	b, err := Encode(cell, p, blocked)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustDecode(t testing.TB, b *Bitmap) *Region {
	t.Helper()
	r, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"default h1", DefaultParams(1), false},
		{"default h7", DefaultParams(7), false},
		{"u too small", Params{U: 1, V: 3, Height: 2}, true},
		{"v too big", Params{U: 3, V: 17, Height: 2}, true},
		{"height zero", Params{U: 3, V: 3, Height: 0}, true},
		{"height too big", Params{U: 3, V: 3, Height: 13}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestEncodeEmptyCell(t *testing.T) {
	if _, err := Encode(geom.Rect{}, DefaultParams(2), blockedBy(nil)); err == nil {
		t.Error("expected error for empty cell")
	}
}

func TestAllSafeSingleBit(t *testing.T) {
	b := mustEncode(t, testCell, DefaultParams(3), blockedBy(nil))
	if b.SizeBits() != 1 {
		t.Fatalf("SizeBits = %d, want 1", b.SizeBits())
	}
	if b.String() != "1" {
		t.Errorf("bits = %q, want \"1\"", b.String())
	}
	r := mustDecode(t, b)
	if !r.Contains(geom.Pt(450, 450)) {
		t.Error("all-safe region should contain interior point")
	}
	if r.Contains(geom.Pt(-1, 450)) {
		t.Error("points outside the cell are never contained")
	}
	if c := r.Coverage(); math.Abs(c-1) > 1e-12 {
		t.Errorf("Coverage = %v, want 1", c)
	}
}

func TestFullyBlockedSizes(t *testing.T) {
	// A cover() that always reports partial opens every cell above the
	// maximum height. With the expand-bit extension every such cell costs
	// 2 bits and max-height cells cost 1:
	// bits = 2·(1 + 9 + … + 9^(h−1)) + 9^h for U=V=3.
	always := func(geom.Rect) Coverage { return CoverPartial }
	wantBits := func(h int) int {
		inner, pow := 0, 1
		for l := 0; l < h; l++ {
			inner += pow
			pow *= 9
		}
		return 2*inner + pow
	}
	for h := 1; h <= 4; h++ {
		b := mustEncode(t, testCell, DefaultParams(h), always)
		if b.SizeBits() != wantBits(h) {
			t.Errorf("h=%d: SizeBits = %d, want %d", h, b.SizeBits(), wantBits(h))
		}
		r := mustDecode(t, b)
		if r.Coverage() != 0 {
			t.Errorf("h=%d: Coverage = %v, want 0", h, r.Coverage())
		}
		if r.Contains(geom.Pt(1, 1)) {
			t.Error("fully blocked region contains a point")
		}
	}
}

// TestPaperFigure3Sizes reproduces the size comparison of paper §4.2: for a
// safe region representable at 9×9 resolution, the flat GBSR (one level of
// 9×9 = 82 bits) must use more bits than the PBSR (3×3, h=2) whenever the
// blockage is localized.
func TestPaperFigure3Sizes(t *testing.T) {
	// Alarms confined to the bottom-left third of the cell.
	alarms := []geom.Rect{
		{MinX: 10, MinY: 10, MaxX: 200, MaxY: 150},
		{MinX: 120, MinY: 180, MaxX: 260, MaxY: 290},
	}
	gbsr := mustEncode(t, testCell, Params{U: 9, V: 9, Height: 1}, blockedBy(alarms))
	pbsr := mustEncode(t, testCell, Params{U: 3, V: 3, Height: 2}, blockedBy(alarms))
	// The paper's GBSR example is 82 bits (1 + 81); the expand-bit
	// extension adds one bit for the partially covered root.
	if gbsr.SizeBits() != 83 {
		t.Fatalf("GBSR 9x9 size = %d, want 83", gbsr.SizeBits())
	}
	if pbsr.SizeBits() >= gbsr.SizeBits() {
		t.Errorf("PBSR (%d bits) should be smaller than GBSR (%d bits)", pbsr.SizeBits(), gbsr.SizeBits())
	}
	// And PBSR coverage at equal effective resolution is at least GBSR's.
	cg := mustDecode(t, gbsr).Coverage()
	cp := mustDecode(t, pbsr).Coverage()
	if cp+1e-12 < cg {
		t.Errorf("PBSR coverage %v < GBSR coverage %v at same resolution", cp, cg)
	}
}

func TestRoundTripBits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		var alarms []geom.Rect
		for i := 0; i < rng.Intn(12); i++ {
			w, h := rng.Float64()*200+5, rng.Float64()*200+5
			x, y := rng.Float64()*880, rng.Float64()*880
			alarms = append(alarms, geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h})
		}
		p := Params{U: 2 + rng.Intn(3), V: 2 + rng.Intn(3), Height: 1 + rng.Intn(4)}
		b := mustEncode(t, testCell, p, blockedBy(alarms))
		r := mustDecode(t, b)
		// Re-encode from the decoded region's own predicate: a rect is
		// "blocked" iff it is not fully safe. Checking equality of decoded
		// safe area instead (bit-exact re-encoding isn't required).
		safeRects := r.SafeRects(nil)
		var sum float64
		for _, sr := range safeRects {
			sum += sr.Area()
		}
		if math.Abs(sum/testCell.Area()-r.Coverage()) > 1e-9 {
			t.Fatalf("iter %d: SafeRects area %v disagrees with Coverage %v", iter, sum/testCell.Area(), r.Coverage())
		}
	}
}

// TestSoundness is the central property: no point inside any alarm region
// may ever be contained in the decoded safe region, at any height.
func TestSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 30; iter++ {
		var alarms []geom.Rect
		for i := 0; i < 1+rng.Intn(10); i++ {
			w, h := rng.Float64()*250+5, rng.Float64()*250+5
			x, y := rng.Float64()*880, rng.Float64()*880
			alarms = append(alarms, geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h})
		}
		for h := 1; h <= 5; h++ {
			b := mustEncode(t, testCell, DefaultParams(h), blockedBy(alarms))
			r := mustDecode(t, b)
			for i := 0; i < 500; i++ {
				p := geom.Pt(rng.Float64()*900, rng.Float64()*900)
				inAlarm := false
				for _, a := range alarms {
					if a.Contains(p) {
						inAlarm = true
						break
					}
				}
				if inAlarm && r.Contains(p) {
					t.Fatalf("iter %d h=%d: alarm point %v inside safe region", iter, h, p)
				}
			}
			// Points inside alarms sampled directly (boundary-heavy).
			for _, a := range alarms {
				for _, p := range []geom.Point{a.Center(), {X: a.MinX, Y: a.MinY}, {X: a.MaxX, Y: a.MaxY}} {
					if testCell.Contains(p) && r.Contains(p) {
						t.Fatalf("iter %d h=%d: alarm boundary point %v in safe region", iter, h, p)
					}
				}
			}
		}
	}
}

// TestCoverageMonotoneInHeight: higher pyramids refine blocked cells, so
// coverage never decreases with height (paper Proposition 3).
func TestCoverageMonotoneInHeight(t *testing.T) {
	alarms := []geom.Rect{
		{MinX: 100, MinY: 100, MaxX: 350, MaxY: 250},
		{MinX: 500, MinY: 600, MaxX: 620, MaxY: 780},
		{MinX: 40, MinY: 700, MaxX: 180, MaxY: 860},
	}
	prev := -1.0
	prevBits := 0
	for h := 1; h <= 6; h++ {
		b := mustEncode(t, testCell, DefaultParams(h), blockedBy(alarms))
		c := mustDecode(t, b).Coverage()
		if c < prev-1e-12 {
			t.Errorf("coverage decreased at h=%d: %v -> %v", h, prev, c)
		}
		if h > 1 && b.SizeBits() < prevBits {
			t.Errorf("bitmap shrank with height at h=%d: %d -> %d", h, prevBits, b.SizeBits())
		}
		prev, prevBits = c, b.SizeBits()
	}
	if prev <= 0.5 {
		t.Errorf("final coverage %v suspiciously low for sparse alarms", prev)
	}
}

// TestCoveredLeafPruning: a cell wholly inside an alarm must not subdivide,
// keeping bitmap sizes bounded (the expand-bit extension).
func TestCoveredLeafPruning(t *testing.T) {
	// Alarm covers the whole cell: 2 bits total (blocked root + expand 0).
	covering := []geom.Rect{testCell.Expand(10)}
	b := mustEncode(t, testCell, DefaultParams(7), blockedBy(covering))
	if b.SizeBits() != 2 {
		t.Fatalf("fully covered cell encoded in %d bits, want 2", b.SizeBits())
	}
	r := mustDecode(t, b)
	if r.Coverage() != 0 {
		t.Errorf("Coverage = %v", r.Coverage())
	}
	if r.Contains(geom.Pt(450, 450)) {
		t.Error("covered cell contained a point")
	}
	if got := r.RectCoverage(testCell); got != CoverFull {
		t.Errorf("RectCoverage = %v, want CoverFull", got)
	}
	// An alarm covering one level-1 child exactly: that child is a covered
	// leaf; total bits stay small even at height 7.
	child := childRect(testCell, 3, 3, 4) // centre child
	// Sibling cells share edges with the alarm and refine along them —
	// O(3^h) boundary cells, not the O(9^h) interior blow-up the covered
	// leaf prevents (9^7 would be ~4.8M bits).
	b2 := mustEncode(t, testCell, DefaultParams(7), blockedBy([]geom.Rect{child}))
	if b2.SizeBits() > 60000 {
		t.Errorf("centre-covered encoding ballooned to %d bits", b2.SizeBits())
	}
	r2 := mustDecode(t, b2)
	if r2.Contains(child.Center()) {
		t.Error("covered child contained its centre")
	}
	if !r2.Contains(geom.Pt(10, 10)) {
		t.Error("far corner should be safe")
	}
}

func TestRectCoverageAgainstDirect(t *testing.T) {
	alarms := []geom.Rect{
		{MinX: 100, MinY: 100, MaxX: 420, MaxY: 380},
		{MinX: 600, MinY: 650, MaxX: 700, MaxY: 900},
	}
	b := mustEncode(t, testCell, DefaultParams(5), blockedBy(alarms))
	r := mustDecode(t, b)
	// For every aligned cell down to level 3, RectCoverage must match the
	// direct classification (the precompute-consistency contract).
	var walk func(rect geom.Rect, level int)
	walk = func(rect geom.Rect, level int) {
		got := r.RectCoverage(rect)
		want := CoverageOf(rect, alarms)
		if got != want {
			t.Fatalf("level %d cell %v: RectCoverage = %v, direct = %v", level, rect, got, want)
		}
		if level >= 3 || want != CoverPartial {
			return
		}
		for i := 0; i < 9; i++ {
			walk(childRect(rect, 3, 3, i), level+1)
		}
	}
	walk(testCell, 0)
}

func TestContainsProbesBounded(t *testing.T) {
	alarms := []geom.Rect{{MinX: 430, MinY: 430, MaxX: 470, MaxY: 470}}
	for h := 1; h <= 7; h++ {
		b := mustEncode(t, testCell, DefaultParams(h), blockedBy(alarms))
		r := mustDecode(t, b)
		rng := rand.New(rand.NewSource(int64(h)))
		maxProbes := 0
		for i := 0; i < 2000; i++ {
			p := geom.Pt(rng.Float64()*900, rng.Float64()*900)
			_, probes := r.ContainsProbes(p)
			if probes > maxProbes {
				maxProbes = probes
			}
		}
		if maxProbes > h+1 {
			t.Errorf("h=%d: max probes %d exceeds h+1", h, maxProbes)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	alarms := []geom.Rect{{MinX: 0, MinY: 0, MaxX: 450, MaxY: 450}}
	good := mustEncode(t, testCell, DefaultParams(2), blockedBy(alarms))

	t.Run("truncated", func(t *testing.T) {
		bad := *good
		bad.NBits = good.NBits - 3
		if _, err := Decode(&bad); err == nil {
			t.Error("expected error for truncated bitmap")
		}
	})
	t.Run("trailing bits", func(t *testing.T) {
		bad := *good
		bad.Data = append(append([]byte(nil), good.Data...), 0xFF)
		bad.NBits = good.NBits + 8
		if _, err := Decode(&bad); err == nil {
			t.Error("expected error for trailing bits")
		}
	})
	t.Run("nbits beyond data", func(t *testing.T) {
		bad := *good
		bad.NBits = len(good.Data)*8 + 5
		if _, err := Decode(&bad); err == nil {
			t.Error("expected error for NBits > data")
		}
	})
	t.Run("invalid params", func(t *testing.T) {
		bad := *good
		bad.Params = Params{U: 0, V: 3, Height: 2}
		if _, err := Decode(&bad); err == nil {
			t.Error("expected error for invalid params")
		}
	})
	t.Run("empty cell", func(t *testing.T) {
		bad := *good
		bad.Cell = geom.Rect{}
		if _, err := Decode(&bad); err == nil {
			t.Error("expected error for empty cell")
		}
	})
}

func TestChildRectPartition(t *testing.T) {
	rect := geom.Rect{MinX: 10, MinY: 20, MaxX: 100, MaxY: 110}
	for _, uv := range [][2]int{{2, 2}, {3, 3}, {3, 4}, {5, 2}} {
		u, v := uv[0], uv[1]
		var total float64
		for i := 0; i < u*v; i++ {
			c := childRect(rect, u, v, i)
			total += c.Area()
			if !rect.ContainsRect(c) {
				t.Errorf("%dx%d child %d %v escapes parent", u, v, i, c)
			}
			for j := i + 1; j < u*v; j++ {
				if c.Overlaps(childRect(rect, u, v, j)) {
					t.Errorf("%dx%d children %d and %d overlap", u, v, i, j)
				}
			}
		}
		if math.Abs(total-rect.Area()) > 1e-6 {
			t.Errorf("%dx%d children areas sum %v != parent %v", u, v, total, rect.Area())
		}
	}
}

func TestLocateChildConsistency(t *testing.T) {
	rect := geom.Rect{MinX: 0, MinY: 0, MaxX: 90, MaxY: 90}
	rng := rand.New(rand.NewSource(3))
	for _, uv := range [][2]int{{2, 2}, {3, 3}, {4, 5}} {
		u, v := uv[0], uv[1]
		for i := 0; i < 2000; i++ {
			p := geom.Pt(rng.Float64()*90, rng.Float64()*90)
			idx := locateChild(rect, u, v, p)
			if idx < 0 || idx >= u*v {
				t.Fatalf("locateChild out of range: %d", idx)
			}
			if !childRect(rect, u, v, idx).Contains(p) {
				t.Fatalf("%dx%d: child %d does not contain %v", u, v, idx, p)
			}
		}
		// Boundary points still land in a containing child.
		for _, p := range []geom.Point{{X: 0, Y: 0}, {X: 90, Y: 90}, {X: 30, Y: 30}, {X: 45, Y: 0}} {
			idx := locateChild(rect, u, v, p)
			if !childRect(rect, u, v, idx).Contains(p) {
				t.Fatalf("%dx%d: boundary %v -> child %d not containing", u, v, p, idx)
			}
		}
	}
}

func TestRasterOrderMatchesPaper(t *testing.T) {
	// With a 3x3 split, index 0 must be the top-left child (raster scan).
	rect := geom.Rect{MinX: 0, MinY: 0, MaxX: 90, MaxY: 90}
	c0 := childRect(rect, 3, 3, 0)
	if c0.MinX != 0 || c0.MaxY != 90 {
		t.Errorf("child 0 = %v, want top-left", c0)
	}
	c8 := childRect(rect, 3, 3, 8)
	if c8.MaxX != 90 || c8.MinY != 0 {
		t.Errorf("child 8 = %v, want bottom-right", c8)
	}
}

func BenchmarkEncodeH5(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var alarms []geom.Rect
	for i := 0; i < 20; i++ {
		w, h := rng.Float64()*100+5, rng.Float64()*100+5
		x, y := rng.Float64()*800, rng.Float64()*800
		alarms = append(alarms, geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h})
	}
	blocked := blockedBy(alarms)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := Encode(testCell, DefaultParams(5), blocked); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContains(b *testing.B) {
	alarms := []geom.Rect{{MinX: 100, MinY: 100, MaxX: 300, MaxY: 300}}
	bm := mustEncode(b, testCell, DefaultParams(5), blockedBy(alarms))
	r := mustDecode(b, bm)
	pts := make([]geom.Point, 1024)
	rng := rand.New(rand.NewSource(2))
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*900, rng.Float64()*900)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		r.Contains(pts[n%len(pts)])
	}
}

func TestMergedSafeRects(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 25; iter++ {
		var alarms []geom.Rect
		for i := 0; i < 1+rng.Intn(8); i++ {
			w, h := rng.Float64()*250+5, rng.Float64()*250+5
			x, y := rng.Float64()*880, rng.Float64()*880
			alarms = append(alarms, geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h})
		}
		b := mustEncode(t, testCell, DefaultParams(4), blockedBy(alarms))
		r := mustDecode(t, b)
		raw := r.SafeRects(nil)
		merged := r.MergedSafeRects()
		if len(merged) > len(raw) {
			t.Fatalf("iter %d: merge grew the set: %d > %d", iter, len(merged), len(raw))
		}
		// Area preserved.
		var rawA, mergedA float64
		for _, rc := range raw {
			rawA += rc.Area()
		}
		for _, rc := range merged {
			mergedA += rc.Area()
		}
		if math.Abs(rawA-mergedA) > 1e-6*rawA {
			t.Fatalf("iter %d: area changed: %v vs %v", iter, mergedA, rawA)
		}
		// Disjoint.
		for i := range merged {
			for j := i + 1; j < len(merged); j++ {
				if merged[i].Overlaps(merged[j]) {
					t.Fatalf("iter %d: merged rects %v and %v overlap", iter, merged[i], merged[j])
				}
			}
		}
		// Containment equivalence on random points.
		for q := 0; q < 200; q++ {
			p := geom.Pt(rng.Float64()*900, rng.Float64()*900)
			inMerged := false
			for _, rc := range merged {
				if rc.Contains(p) {
					inMerged = true
					break
				}
			}
			// Contains is cell-based; boundaries may differ by inclusion,
			// so compare only for strictly interior points of the merged set
			// vs the region's own verdict on clearly-inside points.
			if inMerged && !r.Contains(p) {
				// p may sit on a blocked/safe boundary; tolerate only
				// boundary coincidences.
				onBoundary := false
				for _, rc := range merged {
					if rc.Contains(p) && !rc.ContainsStrict(p) {
						onBoundary = true
						break
					}
				}
				if !onBoundary {
					t.Fatalf("iter %d: merged contains %v but region does not", iter, p)
				}
			}
		}
	}
}

func TestMergedSafeRectsReduction(t *testing.T) {
	// A single small alarm leaves large contiguous safe areas: merging
	// must reduce the rect count substantially.
	alarms := []geom.Rect{{MinX: 430, MinY: 430, MaxX: 470, MaxY: 470}}
	b := mustEncode(t, testCell, DefaultParams(4), blockedBy(alarms))
	r := mustDecode(t, b)
	raw := len(r.SafeRects(nil))
	merged := len(r.MergedSafeRects())
	if merged >= raw/2 {
		t.Errorf("merge only reduced %d -> %d rects", raw, merged)
	}
}
