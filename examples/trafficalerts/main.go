// Traffic alerts: public hazard alarms broadcast to a whole fleet, served
// with pyramid bitmap safe regions (PBSR) and the §4.2 public-alarm
// precomputation.
//
// A road authority publishes public alarms around accident sites and
// construction zones; every vehicle in the fleet is implicitly subscribed.
// Each vehicle drives its own random-waypoint route; the server hands out
// pyramid bitmaps and each vehicle monitors locally. Every vehicle that
// passes a hazard gets alerted exactly once.
//
//	go run ./examples/trafficalerts
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	sabre "github.com/sabre-geo/sabre"
)

const (
	fleetSize = 40
	ticks     = 500
	side      = 8000.0
)

var hazards = []struct {
	name string
	at   sabre.Point
	side float64
}{
	{"accident on I-85", sabre.Pt(2000, 4000), 700},
	{"construction zone", sabre.Pt(5500, 2500), 900},
	{"flooded underpass", sabre.Pt(6500, 6500), 600},
	{"stalled truck", sabre.Pt(3500, 6800), 500},
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	svc, err := sabre.NewService(sabre.ServiceConfig{
		Universe:                sabre.Rect{MinX: -100, MinY: -100, MaxX: side + 100, MaxY: side + 100},
		CellAreaKM2:             2.5,
		PyramidHeight:           5,
		PrecomputePublicBitmaps: true,
	})
	if err != nil {
		return err
	}
	names := map[sabre.AlarmID]string{}
	for _, h := range hazards {
		id, err := svc.InstallAlarm(sabre.Alarm{
			Scope:  sabre.Public,
			Owner:  1, // the road authority
			Region: sabre.RectAround(h.at, h.side),
		})
		if err != nil {
			return err
		}
		names[id] = h.name
	}

	// Build the fleet: every vehicle follows its own random-waypoint path.
	rng := rand.New(rand.NewSource(42))
	monitors := make([]*sabre.Monitor, fleetSize)
	paths := make([][]sabre.Point, fleetSize)
	for i := range monitors {
		user := sabre.UserID(i + 1)
		if err := svc.RegisterClient(user, sabre.StrategyPBSR, 0); err != nil {
			return err
		}
		monitors[i] = sabre.NewMonitor(user, sabre.StrategyPBSR)
		paths[i] = randomWaypointPath(rng, ticks)
	}

	alerts := 0
	for tick := 0; tick < ticks; tick++ {
		for i, mon := range monitors {
			report := mon.Tick(tick, paths[i][tick])
			if report == nil {
				continue
			}
			responses, err := svc.HandleUpdate(*report)
			if err != nil {
				return err
			}
			for _, msg := range responses {
				if fired, ok := msg.(sabre.AlarmFired); ok {
					for _, id := range fired.Alarms {
						alerts++
						if alerts <= 12 { // don't flood the terminal
							fmt.Printf("tick %3d: vehicle %2d alerted: %s\n",
								tick, i+1, names[sabre.AlarmID(id)])
						}
					}
				}
				if err := mon.Handle(tick, msg); err != nil {
					return err
				}
			}
			if len(responses) == 0 {
				mon.Acknowledge()
			}
		}
	}
	if alerts > 12 {
		fmt.Printf("... and %d more alerts\n", alerts-12)
	}

	stats := svc.Stats()
	var totalMsgs uint64
	for _, mon := range monitors {
		totalMsgs += mon.MessagesSent()
	}
	fixes := uint64(fleetSize * ticks)
	fmt.Printf("\nfleet of %d vehicles, %d hazards, %d position fixes\n", fleetSize, len(hazards), fixes)
	fmt.Printf("alerts delivered:      %d (once per vehicle per hazard passed)\n", stats.AlarmsTriggered)
	fmt.Printf("client reports:        %d (%.1f%% of fixes)\n", totalMsgs, 100*float64(totalMsgs)/float64(fixes))
	fmt.Printf("downstream bandwidth:  %d bytes (%.1f B per vehicle per minute)\n",
		stats.DownlinkBytes, float64(stats.DownlinkBytes)/fleetSize/(float64(ticks)/60))
	fmt.Printf("server cpu (model):    %.3f s alarm processing + %.3f s safe regions\n",
		stats.AlarmProcessingSeconds, stats.SafeRegionSeconds)
	return nil
}

// randomWaypointPath simulates a vehicle hopping between random waypoints
// at 10–25 m/s.
func randomWaypointPath(rng *rand.Rand, n int) []sabre.Point {
	out := make([]sabre.Point, 0, n)
	cur := sabre.Pt(rng.Float64()*side, rng.Float64()*side)
	target := cur
	speed := 10 + rng.Float64()*15
	for len(out) < n {
		if math.Hypot(target.X-cur.X, target.Y-cur.Y) < speed {
			target = sabre.Pt(rng.Float64()*side, rng.Float64()*side)
			speed = 10 + rng.Float64()*15
		}
		d := math.Hypot(target.X-cur.X, target.Y-cur.Y)
		cur = sabre.Pt(cur.X+(target.X-cur.X)/d*speed, cur.Y+(target.Y-cur.Y)/d*speed)
		out = append(out, cur)
	}
	return out
}
