package sim

import (
	"testing"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/client"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/wire"
)

// expectedLifecycleEvents is the exact delivery set DefaultLifecycleScenario
// must produce — derived from the scripted geometry, not from a reference
// run, so a bug that corrupts every harness identically still fails.
func expectedLifecycleEvents() []LifecycleEvent {
	evs := []LifecycleEvent{
		// User 1 crosses the continuous region twice...
		{User: 1, Event: alarm.PackEvent(1, alarm.TransEnter, 1)},
		{User: 1, Event: alarm.PackEvent(1, alarm.TransExit, 1)},
		{User: 1, Event: alarm.PackEvent(1, alarm.TransEnter, 2)},
		{User: 1, Event: alarm.PackEvent(1, alarm.TransExit, 2)},
		// ...and the one-shot region once (legacy raw-ID event).
		{User: 1, Event: 5},
		// The pair enters once and exits once, on both endpoints.
		{User: 2, Event: alarm.PackEvent(2, alarm.TransEnter, 1)},
		{User: 2, Event: alarm.PackEvent(2, alarm.TransExit, 1)},
		{User: 3, Event: alarm.PackEvent(2, alarm.TransEnter, 1)},
		{User: 3, Event: alarm.PackEvent(2, alarm.TransExit, 1)},
		// The live composite fires at severity 0.4+0.5; the expired one
		// (ID 3) must never appear.
		{User: 7, Event: alarm.PackEvent(4, alarm.TransSeverity, alarm.QuantizeSeverity(0.9))},
	}
	SortLifecycleEvents(evs)
	return evs
}

func diffLifecycleEvents(t *testing.T, label string, got, want []LifecycleEvent) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d events, want %d\n got:  %v\n want: %v", label, len(got), len(want), got, want)
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: event %d = {user %d, ev %#x}, want {user %d, ev %#x}\n got:  %v\n want: %v",
				label, i, got[i].User, got[i].Event, want[i].User, want[i].Event, got, want)
			return
		}
	}
}

// TestLifecycleDeliveryEquality is the lifecycle subsystem's end-to-end
// exactly-once proof: for each safe-region strategy, the scripted
// continuous / pair / composite scenario must deliver the exact same
// (user, packed event) set under
//
//   - a clean single-server run (asserted against the geometry-derived
//     expectation),
//   - fault-injected links (drops, dups, delays, reorders, resets),
//   - a mid-workload server crash with WAL tail loss and recovery,
//   - a sharded cluster whose single shard splits mid-run — separating
//     the pair endpoints across shards — and whose new shard then
//     crashes and recovers while the pair is still inside.
func TestLifecycleDeliveryEquality(t *testing.T) {
	scn := DefaultLifecycleScenario()
	want := expectedLifecycleEvents()

	strategies := []struct {
		name string
		sc   StrategyConfig
	}{
		{"MWPSR", StrategyConfig{Strategy: wire.StrategyMWPSR}},
		{"GBSR", StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 1}},
		{"PBSR", StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 5}},
	}

	for _, st := range strategies {
		st := st
		t.Run(st.name, func(t *testing.T) {
			clean, err := RunLifecycleFaulty(scn, st.sc, FaultPlan{Seed: 1, DrainTicks: 120})
			if err != nil {
				t.Fatalf("clean run: %v", err)
			}
			diffLifecycleEvents(t, "clean vs expected", clean, want)

			faulty, err := RunLifecycleFaulty(scn, st.sc, FaultPlan{
				Seed:          7,
				From:          10,
				Until:         530,
				DropProb:      0.12,
				DupProb:       0.08,
				DelayProb:     0.15,
				MaxDelayTicks: 3,
				ReorderProb:   0.10,
				ResetEvery:    3,
				ResetTick:     120,
				DrainTicks:    250,
			})
			if err != nil {
				t.Fatalf("faulty run: %v", err)
			}
			diffLifecycleEvents(t, "faulty vs clean", faulty, clean)

			crashed, err := RunLifecycleCrashing(scn, st.sc, CrashPlan{
				Seed:          11,
				Crashes:       []CrashEvent{{Tick: 170, Tear: store.TearTruncate, Down: 25}},
				SnapshotEvery: 64,
				DrainTicks:    250,
			}, "")
			if err != nil {
				t.Fatalf("crash run: %v", err)
			}
			diffLifecycleEvents(t, "crashed vs clean", crashed, clean)

			clustered, pm, err := RunLifecycleCluster(scn, st.sc, ClusterPlan{
				Seed:   13,
				Shards: 1,
				Repartitions: []RepartitionEvent{
					{Tick: 150, Op: "split", Shard: 0},
				},
				Crashes: []ClusterCrashEvent{
					{Tick: 205, Shard: 1, Tear: store.TearTruncate, Down: 25},
				},
				SnapshotEvery: 64,
				DrainTicks:    250,
				Session:       client.SessionConfig{},
			}, "")
			if err != nil {
				t.Fatalf("cluster run: %v", err)
			}
			diffLifecycleEvents(t, "clustered vs clean", clustered, clean)

			// The split must actually have separated the pair endpoints:
			// user 2 ends at (990, 1000), user 3 at (1600, 1000).
			if pm.N() != 2 {
				t.Fatalf("cluster ended with %d shards, want 2 (split did not happen)", pm.N())
			}
			shardA, _ := pm.Locate(geom.Pt(990, 1000))
			shardB, _ := pm.Locate(geom.Pt(1600, 1000))
			if shardA == shardB {
				t.Fatalf("pair endpoints both on shard %d — the median split did not separate them", shardA)
			}
		})
	}
}
