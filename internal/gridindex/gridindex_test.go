package gridindex

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/rstar"
)

var world = geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}

func randItem(rng *rand.Rand, id uint64) rstar.Item {
	w, h := rng.Float64()*300+1, rng.Float64()*300+1
	x, y := rng.Float64()*(10000-w), rng.Float64()*(10000-h)
	return rstar.Item{ID: id, Rect: geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}}
}

func buildBoth(t testing.TB, n int, seed int64) (*Index, []rstar.Item) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	idx := New(world, 256)
	items := make([]rstar.Item, n)
	for i := range items {
		items[i] = randItem(rng, uint64(i))
		idx.Insert(items[i])
	}
	return idx, items
}

func sortedIDs(ids []uint64) []uint64 {
	out := append([]uint64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []uint64) bool {
	a, b = sortedIDs(a), sortedIDs(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyIndex(t *testing.T) {
	idx := New(world, 64)
	if idx.Len() != 0 {
		t.Fatal("not empty")
	}
	if got := idx.SearchPoint(geom.Pt(5, 5), nil); len(got) != 0 {
		t.Errorf("SearchPoint = %v", got)
	}
	if d := idx.NearestDist(geom.Pt(5, 5), nil); !math.IsInf(d, 1) {
		t.Errorf("NearestDist = %v", d)
	}
}

func TestDegenerateConstruction(t *testing.T) {
	idx := New(geom.Rect{}, 0)
	idx.Insert(rstar.Item{ID: 1, Rect: geom.R(0, 0, 1, 1)})
	if got := idx.SearchPoint(geom.Pt(0.5, 0.5), nil); len(got) != 1 {
		t.Errorf("degenerate-bounds index lost item: %v", got)
	}
}

func TestQueriesMatchBruteForce(t *testing.T) {
	idx, items := buildBoth(t, 2000, 1)
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 300; q++ {
		p := geom.Pt(rng.Float64()*11000-500, rng.Float64()*11000-500) // includes out-of-bounds
		var want []uint64
		for _, it := range items {
			if it.Rect.Contains(p) {
				want = append(want, it.ID)
			}
		}
		if got := idx.SearchPoint(p, nil); !equalIDs(got, want) {
			t.Fatalf("SearchPoint(%v): got %d want %d", p, len(got), len(want))
		}
		w := geom.RectAround(geom.Pt(rng.Float64()*10000, rng.Float64()*10000), rng.Float64()*3000)
		want = want[:0]
		for _, it := range items {
			if it.Rect.Intersects(w) {
				want = append(want, it.ID)
			}
		}
		if got := idx.SearchRect(w, nil); !equalIDs(got, want) {
			t.Fatalf("SearchRect(%v): got %d want %d", w, len(got), len(want))
		}
	}
}

func TestNearestDistMatchesBruteForce(t *testing.T) {
	idx, items := buildBoth(t, 800, 3)
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 200; q++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		filter := func(id uint64) bool { return id%3 != 0 }
		want := math.Inf(1)
		for _, it := range items {
			if !filter(it.ID) {
				continue
			}
			if d := it.Rect.MinDist(p); d < want {
				want = d
			}
		}
		if got := idx.NearestDist(p, filter); math.Abs(got-want) > 1e-9 {
			t.Fatalf("NearestDist(%v) = %v, want %v", p, got, want)
		}
	}
	// Filter rejecting everything.
	if d := idx.NearestDist(geom.Pt(1, 1), func(uint64) bool { return false }); !math.IsInf(d, 1) {
		t.Errorf("all-rejecting filter: %v", d)
	}
}

func TestDelete(t *testing.T) {
	idx, items := buildBoth(t, 500, 5)
	for _, it := range items[:250] {
		if !idx.Delete(it) {
			t.Fatalf("delete %d failed", it.ID)
		}
	}
	if idx.Len() != 250 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if idx.Delete(items[0]) {
		t.Error("double delete succeeded")
	}
	remaining := items[250:]
	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 100; q++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		var want []uint64
		for _, it := range remaining {
			if it.Rect.Contains(p) {
				want = append(want, it.ID)
			}
		}
		if got := idx.SearchPoint(p, nil); !equalIDs(got, want) {
			t.Fatalf("post-delete mismatch at %v", p)
		}
	}
}

func TestSearchRectDeduplicates(t *testing.T) {
	idx := New(world, 256)
	// A huge rect spanning many buckets must be returned once.
	idx.Insert(rstar.Item{ID: 42, Rect: geom.R(100, 100, 9000, 9000)})
	got := idx.SearchRect(geom.R(0, 0, 10000, 10000), nil)
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("got %v, want exactly [42]", got)
	}
}

func TestAccessCounting(t *testing.T) {
	idx, _ := buildBoth(t, 100, 7)
	idx.ResetStats()
	idx.SearchPoint(geom.Pt(5000, 5000), nil)
	if idx.NodeAccesses() != 1 {
		t.Errorf("point query accesses = %d, want 1", idx.NodeAccesses())
	}
	idx.SearchRect(geom.R(0, 0, 10000, 10000), nil)
	if idx.NodeAccesses() < 100 {
		t.Errorf("full-range accesses = %d, want every bucket", idx.NodeAccesses())
	}
}
