package saferegion

import (
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/pyramid"
)

// BitmapResult is the outcome of a GBSR/PBSR computation.
type BitmapResult struct {
	// Bitmap is the encoded safe region to ship to the client.
	Bitmap *pyramid.Bitmap
	// IntersectionTests counts rect-vs-alarm tests performed, feeding the
	// server cost model.
	IntersectionTests int
}

// ComputeBitmap computes the bitmap-encoded safe region of the grid cell
// against the relevant alarm regions (paper §4). params.Height = 1 yields
// the GBSR; greater heights the PBSR. A cell (at any pyramid level) is
// marked safe only if it touches no alarm region at all — closed
// intersection — which makes the encoding sound for boundary positions.
//
// precomputed, when non-nil, is a bitmap of the same cell and params
// covering a fixed alarm subset (the public-alarm precomputation of §4.2):
// cells unsafe in precomputed are treated as blocked without re-testing
// the alarms it covers.
func ComputeBitmap(cell geom.Rect, params pyramid.Params, alarms []geom.Rect, precomputed *pyramid.Region) (BitmapResult, error) {
	res := BitmapResult{}
	cover := func(r geom.Rect) pyramid.Coverage {
		cov := pyramid.CoverNone
		if precomputed != nil {
			res.IntersectionTests++ // one pyramid probe charged
			cov = precomputed.RectCoverage(r)
			if cov == pyramid.CoverFull {
				return cov
			}
		}
		for _, a := range alarms {
			res.IntersectionTests++
			if !a.Intersects(r) {
				continue
			}
			if a.ContainsRect(r) {
				return pyramid.CoverFull
			}
			cov = pyramid.CoverPartial
		}
		return cov
	}
	bm, err := pyramid.Encode(cell, params, cover)
	if err != nil {
		return BitmapResult{}, err
	}
	res.Bitmap = bm
	return res, nil
}
