package server

import (
	"fmt"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/wire"
)

// This file implements the session lifecycle for fault-tolerant clients
// (PROTOCOL.md "Sessions"). A client that wants reconnect/resume
// semantics enrolls with Hello instead of Register. The engine mints a
// resume token and marks the client reliable: alarm firings are retained
// until acknowledged and duplicate position updates are tolerated (and
// counted). On reconnect the client presents its token; if the engine
// still holds matching state, the session resumes — the registration,
// safe-region bookkeeping and unacknowledged firings all survive, so the
// client re-installs its monitoring state from one push instead of
// replaying history. The table lives in the engine, not the transport,
// so it also survives a TCP listener restart.

// HandleHello establishes or resumes a reliable session. It returns the
// messages to send back — a Resume always, then (on resume) any
// unacknowledged alarm firings and a fresh monitoring push when the
// client already has a position — and whether the session resumed.
func (e *Engine) HandleHello(m wire.Hello) ([]wire.Message, bool, error) {
	switch m.Strategy {
	case wire.StrategyPeriodic, wire.StrategySafePeriod, wire.StrategyMWPSR,
		wire.StrategyPBSR, wire.StrategyOptimal:
	default:
		return nil, false, fmt.Errorf("server: unknown strategy %d", m.Strategy)
	}
	user := alarm.UserID(m.User)

	e.sessMu.Lock()
	if e.sessions == nil {
		e.sessions = make(map[uint64]alarm.UserID)
	}
	owner, known := e.sessions[m.Token]
	e.sessMu.Unlock()

	if m.Token != 0 && known && owner == user {
		if out, ok := e.tryResume(user, m); ok {
			e.met.AddSessionResumed()
			return out, true, nil
		}
	}

	// Fresh session: mint a token and replace any prior state. If the
	// client had a reliable session before (its token was lost with the
	// Resume frame, or expired), the unacknowledged firings carry over:
	// re-enrollment must not silently discard deliveries the client never
	// saw.
	e.sessMu.Lock()
	e.lastToken++
	token := e.lastToken
	e.sessions[token] = user
	e.sessMu.Unlock()

	var carried []uint64
	sh := e.shardFor(user)
	sh.mu.Lock()
	if old := sh.m[user]; old != nil {
		old.mu.Lock()
		if old.reliable && len(old.pendingFired) > 0 {
			carried = append([]uint64(nil), old.pendingFired...)
		}
		old.mu.Unlock()
	}
	sh.m[user] = &clientState{
		strategy:     m.Strategy,
		maxHeight:    int(m.MaxHeight),
		reliable:     true,
		pendingFired: carried,
		lastActive:   e.now(),
	}
	sh.mu.Unlock()
	e.met.AddSessionOpened()

	// Write-ahead: the minted token must survive a crash, or the client's
	// Resume would be refused and its unacked firings stranded. Logged
	// outside every engine lock, before the Resume frame is released.
	if err := e.logRecord(store.HelloRec{
		User: m.User, Token: token, Strategy: m.Strategy, MaxHeight: m.MaxHeight,
	}); err != nil {
		return nil, false, err
	}

	var out []wire.Message
	out = e.send(out, wire.Resume{Token: token, Resumed: false})
	if len(carried) > 0 {
		e.met.AddFiredRedeliveries(uint64(len(carried)))
		out = e.send(out, wire.AlarmFired{Seq: 0, Alarms: append([]uint64(nil), carried...)})
	}
	return out, false, nil
}

// tryResume resumes the session iff the retained state matches what the
// client re-declares; a mismatch (strategy or capability changed across
// the reconnect) falls back to a fresh session.
func (e *Engine) tryResume(user alarm.UserID, m wire.Hello) ([]wire.Message, bool) {
	sh := e.shardFor(user)
	sh.mu.RLock()
	st := sh.m[user]
	sh.mu.RUnlock()
	if st == nil {
		return nil, false
	}
	reg := e.reg.Load()

	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.reliable || st.strategy != m.Strategy || st.maxHeight != int(m.MaxHeight) {
		return nil, false
	}
	st.lastActive = e.now()
	var out []wire.Message
	out = e.send(out, wire.Resume{Token: m.Token, Resumed: true})
	if len(st.pendingFired) > 0 {
		e.met.AddFiredRedeliveries(uint64(len(st.pendingFired)))
		fired := append([]uint64(nil), st.pendingFired...)
		out = e.send(out, wire.AlarmFired{Seq: 0, Alarms: fired})
	}
	// Re-install monitoring state so the client stops degrading on its
	// stale region. Seq 0 marks a server-initiated push.
	sc := e.getScratch()
	msgs := e.invalidationFor(reg, user, st, sc)
	e.putScratch(sc)
	for _, m := range msgs {
		out = e.send(out, m)
	}
	return out, true
}

// AckFired clears acknowledged alarm firings from the user's pending set
// and logs the acknowledgement durably (so a recovered server does not
// redeliver firings the client already confirmed). A new slice is built
// rather than filtering in place: the previous pending slice may still
// back an in-flight AlarmFired message.
func (e *Engine) AckFired(user alarm.UserID, ids []uint64) error {
	if len(ids) == 0 {
		return nil
	}
	sh := e.shardFor(user)
	sh.mu.RLock()
	st := sh.m[user]
	sh.mu.RUnlock()
	if st == nil {
		return nil
	}
	acked := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		acked[id] = true
	}
	st.mu.Lock()
	var keep []uint64
	for _, id := range st.pendingFired {
		if !acked[id] {
			keep = append(keep, id)
		}
	}
	st.pendingFired = keep
	reliable := st.reliable
	if reliable {
		st.lastActive = e.now()
	}
	st.mu.Unlock()
	if !reliable {
		return nil
	}
	return e.logRecord(store.FiredAckRec{User: uint64(user), Alarms: ids})
}

// touchSession refreshes the idle clock of a reliable session.
func (e *Engine) touchSession(user alarm.UserID) {
	sh := e.shardFor(user)
	sh.mu.RLock()
	st := sh.m[user]
	sh.mu.RUnlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	if st.reliable {
		st.lastActive = e.now()
	}
	st.mu.Unlock()
}

// PendingFired returns the user's unacknowledged alarm firings (a copy).
// The transport layer piggybacks them on heartbeat replies so a firing
// whose AlarmFired frame was lost still reaches the client even when its
// safe region keeps it silent.
func (e *Engine) PendingFired(user alarm.UserID) []uint64 {
	sh := e.shardFor(user)
	sh.mu.RLock()
	st := sh.m[user]
	sh.mu.RUnlock()
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.pendingFired) == 0 {
		return nil
	}
	return append([]uint64(nil), st.pendingFired...)
}

// HandleHeartbeat counts a heartbeat and returns the echo plus any
// pending firing redelivery for the user (zero user or unknown user gets
// just the echo).
func (e *Engine) HandleHeartbeat(user alarm.UserID, hb wire.Heartbeat) []wire.Message {
	e.met.AddHeartbeat()
	e.touchSession(user)
	var out []wire.Message
	out = e.send(out, hb)
	if pending := e.PendingFired(user); len(pending) > 0 {
		e.met.AddFiredRedeliveries(uint64(len(pending)))
		out = e.send(out, wire.AlarmFired{Seq: 0, Alarms: pending})
	}
	return out
}
