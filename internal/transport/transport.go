// Package transport moves wire messages between clients and the server.
//
// Two implementations share one Conn interface: an in-process channel pipe
// (used by simulations and tests) and a TCP transport with 4-byte
// length-prefixed frames (used by the cmd/alarmserver and cmd/alarmclient
// binaries). The Faulty wrapper injects a deterministic, seed-scripted
// fault schedule — drops, delays, duplicates, reorders, hard resets and
// timed partitions — onto any Conn; the session layer in internal/client
// and internal/server is what makes delivery survive it.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/sabre-geo/sabre/internal/wire"
)

// MaxFrameBytes bounds a single message frame; larger frames indicate a
// corrupt or hostile peer.
const MaxFrameBytes = 1 << 20

// ErrClosed is returned for operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// Conn is a bidirectional, ordered message pipe.
type Conn interface {
	// Send transmits one message. It is safe for concurrent use.
	Send(m wire.Message) error
	// Recv blocks for the next message.
	Recv() (wire.Message, error)
	// Close releases the connection; pending and future Recv calls fail.
	Close() error
}

// PollingConn is a Conn that additionally supports a non-blocking receive.
// Single-threaded drivers (the deterministic fault simulator, the client
// session state machine) poll instead of parking a goroutine per
// connection. Pipe endpoints and Faulty wrappers implement it natively;
// Buffer adapts any other Conn.
type PollingConn interface {
	Conn
	// TryRecv returns the next message if one is ready. ok is false when
	// no message is waiting; a non-nil error means the connection is dead.
	TryRecv() (m wire.Message, ok bool, err error)
}

// Poller returns c as a PollingConn, wrapping it in a Buffer pump when the
// implementation has no native non-blocking receive.
func Poller(c Conn) PollingConn {
	if p, ok := c.(PollingConn); ok {
		return p
	}
	return Buffer(c, 256)
}

// Pipe returns two connected in-process endpoints with the given buffer
// capacity per direction.
func Pipe(capacity int) (Conn, Conn) {
	if capacity < 1 {
		capacity = 1
	}
	ab := make(chan wire.Message, capacity)
	ba := make(chan wire.Message, capacity)
	done := make(chan struct{})
	var once sync.Once
	closeFn := func() error {
		once.Do(func() { close(done) })
		return nil
	}
	a := &pipeConn{send: ab, recv: ba, done: done, close: closeFn}
	b := &pipeConn{send: ba, recv: ab, done: done, close: closeFn}
	return a, b
}

type pipeConn struct {
	send  chan wire.Message
	recv  chan wire.Message
	done  chan struct{}
	close func() error
}

func (c *pipeConn) Send(m wire.Message) error {
	// Check done first: a two-way select picks randomly when both cases
	// are ready, which would let sends sneak through after Close.
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	select {
	case <-c.done:
		return ErrClosed
	case c.send <- m:
		return nil
	}
}

func (c *pipeConn) Recv() (wire.Message, error) {
	select {
	case <-c.done:
		return nil, ErrClosed
	default:
	}
	select {
	case <-c.done:
		return nil, ErrClosed
	case m := <-c.recv:
		return m, nil
	}
}

func (c *pipeConn) Close() error { return c.close() }

// TryRecv implements PollingConn without blocking. Like Recv, a closed
// pipe reports ErrClosed even if undrained messages remain.
func (c *pipeConn) TryRecv() (wire.Message, bool, error) {
	select {
	case <-c.done:
		return nil, false, ErrClosed
	default:
	}
	select {
	case <-c.done:
		return nil, false, ErrClosed
	case m := <-c.recv:
		return m, true, nil
	default:
		return nil, false, nil
	}
}

// Buffer adapts any Conn into a PollingConn by pumping Recv through a
// goroutine into a channel of the given capacity. Used for TCP
// connections, whose framing cannot tolerate a timed-out partial read.
// Closing the returned conn closes the inner one, which stops the pump.
func Buffer(inner Conn, capacity int) PollingConn {
	if capacity < 1 {
		capacity = 1
	}
	b := &bufferedConn{inner: inner, ch: make(chan wire.Message, capacity)}
	go b.pump()
	return b
}

type bufferedConn struct {
	inner Conn
	ch    chan wire.Message
	mu    sync.Mutex
	err   error
}

func (b *bufferedConn) pump() {
	for {
		m, err := b.inner.Recv()
		if err != nil {
			b.mu.Lock()
			b.err = err
			b.mu.Unlock()
			close(b.ch)
			return
		}
		b.ch <- m
	}
}

func (b *bufferedConn) savedErr() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err == nil {
		return ErrClosed
	}
	return b.err
}

func (b *bufferedConn) Send(m wire.Message) error { return b.inner.Send(m) }
func (b *bufferedConn) Close() error              { return b.inner.Close() }

func (b *bufferedConn) Recv() (wire.Message, error) {
	m, ok := <-b.ch
	if !ok {
		return nil, b.savedErr()
	}
	return m, nil
}

func (b *bufferedConn) TryRecv() (wire.Message, bool, error) {
	select {
	case m, ok := <-b.ch:
		if !ok {
			return nil, false, b.savedErr()
		}
		return m, true, nil
	default:
		return nil, false, nil
	}
}

// framePool recycles encode buffers so the steady-state send path stops
// allocating: header and payload are built in one pooled buffer and
// written with a single Write (also halving syscalls per frame).
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// WriteFrame writes one length-prefixed message to w.
func WriteFrame(w io.Writer, m wire.Message) error {
	bp := framePool.Get().(*[]byte)
	buf := append((*bp)[:0], 0, 0, 0, 0) // header placeholder
	buf = wire.AppendEncode(buf, m)
	n := len(buf) - 4
	if n > MaxFrameBytes {
		*bp = buf
		framePool.Put(bp)
		return fmt.Errorf("transport: message of %d bytes exceeds frame limit", n)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(n))
	_, err := w.Write(buf)
	*bp = buf
	framePool.Put(bp)
	if err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed message from r.
func ReadFrame(r io.Reader) (wire.Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameBytes {
		return nil, fmt.Errorf("transport: invalid frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("transport: read payload: %w", err)
	}
	return wire.Decode(payload)
}

// tcpConn adapts a net.Conn to the Conn interface with framed messages
// and optional per-operation deadlines (zero disables a deadline).
type tcpConn struct {
	nc           net.Conn
	readTimeout  time.Duration
	writeTimeout time.Duration
	wm           sync.Mutex
	rm           sync.Mutex
}

// NewTCP wraps an established network connection with no deadlines.
func NewTCP(nc net.Conn) Conn { return &tcpConn{nc: nc} }

// NewTCPDeadline wraps an established network connection applying a read
// deadline per Recv and a write deadline per Send (either may be zero to
// disable). A Recv that outlives the read deadline kills the connection —
// framing cannot resume after a partial read — so the read timeout doubles
// as dead-peer detection: pick it longer than the peer's heartbeat
// interval.
func NewTCPDeadline(nc net.Conn, readTimeout, writeTimeout time.Duration) Conn {
	return &tcpConn{nc: nc, readTimeout: readTimeout, writeTimeout: writeTimeout}
}

// Dial connects to a SABRE server at addr.
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCP(nc), nil
}

// DialDeadline connects to a SABRE server at addr with a connect timeout
// and per-operation deadlines on the returned conn.
func DialDeadline(addr string, connectTimeout, readTimeout, writeTimeout time.Duration) (Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, connectTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCPDeadline(nc, readTimeout, writeTimeout), nil
}

func (c *tcpConn) Send(m wire.Message) error {
	c.wm.Lock()
	defer c.wm.Unlock()
	if c.writeTimeout > 0 {
		if err := c.nc.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return err
		}
	}
	return WriteFrame(c.nc, m)
}

func (c *tcpConn) Recv() (wire.Message, error) {
	c.rm.Lock()
	defer c.rm.Unlock()
	if c.readTimeout > 0 {
		if err := c.nc.SetReadDeadline(time.Now().Add(c.readTimeout)); err != nil {
			return nil, err
		}
	}
	return ReadFrame(c.nc)
}

func (c *tcpConn) Close() error { return c.nc.Close() }
