// Package client implements the mobile client side of SABRE's distributed
// partitioning (paper §2): each client monitors its own position against
// the compact state the server handed it — a rectangle (MWPSR), a decoded
// pyramid bitmap (PBSR), a safe period (SP), or the full local alarm set
// (OPT) — and reports to the server only when that state can no longer
// prove it safe. Periodic clients (PRD) report every tick.
//
// Containment checks are strict (interior-only): a client on the boundary
// of its safe region reports, which is what keeps a region that merely
// touches an alarm region sound. Every check's probe cost is accounted
// toward the client energy model (paper Figures 5(b)/6(c)).
package client

import (
	"fmt"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/pyramid"
	"github.com/sabre-geo/sabre/internal/wire"
)

// resendAfterTicks bounds how long a client waits for a server response
// before it re-reports (lost-message recovery on unreliable transports).
const resendAfterTicks = 5

// maxPatches bounds the quick-update patch list a PBSR client keeps; the
// oldest patches are dropped first (dropping is safe — a patch only ever
// proves extra area safe).
const maxPatches = 16

// Client is one mobile client's monitoring state machine.
type Client struct {
	user     uint64
	strategy wire.Strategy
	met      *metrics.Client

	seq      uint32
	lastSent int // tick of the last report, -1 before the first
	awaiting bool
	everSent bool

	// MWPSR state.
	rect    geom.Rect
	hasRect bool
	// PBSR state: the decoded bitmap plus the rectangular patches the
	// server sent for alarms that fired inside the current cell (the §4.2
	// quick update); a point is safe if the pyramid or any patch proves it.
	region  *pyramid.Region
	patches []geom.Rect
	// SP state.
	safeUntil int
	hasPeriod bool
	// OPT state.
	cell    geom.Rect
	hasCell bool
	alarms  []wire.AlarmInfo
	// fired collects alarm IDs the server reported triggered, in delivery
	// order; the simulation reads them for the accuracy check. firedSeen
	// dedups redeliveries: a reliable server re-sends unacknowledged
	// firings, and each must land in fired exactly once.
	fired     []uint64
	firedSeen map[uint64]struct{}
}

// New creates a client. All clients of a simulation may share one
// metrics.Client aggregate; the TCP binary gives each its own.
func New(user uint64, strategy wire.Strategy, met *metrics.Client) *Client {
	return &Client{user: user, strategy: strategy, met: met, lastSent: -1}
}

// User returns the client's identifier.
func (c *Client) User() uint64 { return c.user }

// Strategy returns the client's processing strategy.
func (c *Client) Strategy() wire.Strategy { return c.strategy }

// Fired returns the alarm IDs delivered to this client so far. The
// returned slice is owned by the client.
func (c *Client) Fired() []uint64 { return c.fired }

// Tick advances the client to the given tick at position pos and returns
// a position report to send, or nil when the client can prove itself safe.
func (c *Client) Tick(tick int, pos geom.Point) *wire.PositionUpdate {
	if c.strategy == wire.StrategyPeriodic {
		// Periodic clients expect no response; they report unconditionally.
		return c.report(tick, pos)
	}
	if c.awaiting {
		// A report is outstanding; re-send only after a timeout so a lost
		// response cannot silence the client forever.
		if tick-c.lastSent < resendAfterTicks {
			return nil
		}
		return c.report(tick, pos)
	}
	if !c.everSent {
		return c.report(tick, pos)
	}
	if c.SafeNow(tick, pos) {
		return nil
	}
	return c.report(tick, pos)
}

// SafeNow reports whether the client's current monitoring state proves
// pos safe at tick, charging the containment probes to the client
// metrics. It is the pure evaluation half of Tick: the session layer
// calls it directly so a disconnected client keeps evaluating its last
// (still sound, for static alarms) state and queues a report whenever
// safety cannot be proven. Periodic clients are never provably safe.
func (c *Client) SafeNow(tick int, pos geom.Point) bool {
	switch c.strategy {
	case wire.StrategySafePeriod:
		return c.hasPeriod && tick < c.safeUntil
	case wire.StrategyMWPSR:
		c.met.AddCheck(1)
		if c.expired(tick) {
			return false
		}
		return c.hasRect && c.rect.ContainsStrict(pos)
	case wire.StrategyPBSR:
		if c.region == nil || c.expired(tick) {
			return false
		}
		inside, probes := c.region.ContainsProbes(pos)
		if !inside {
			for _, p := range c.patches {
				probes++
				if p.ContainsStrict(pos) {
					inside = true
					break
				}
			}
		}
		c.met.AddCheck(probes)
		return inside
	case wire.StrategyOptimal:
		if !c.hasCell || c.expired(tick) {
			return false
		}
		// Full local evaluation against every pushed alarm: this is the
		// "clients have very high capacity" assumption of the OPT bound.
		c.met.AddCheck(maxInt(len(c.alarms), 1))
		if !c.cell.ContainsStrict(pos) {
			return false
		}
		for _, a := range c.alarms {
			if a.Region.Contains(pos) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// expired reports whether a server-issued time cap on the client's region
// has run out. For non-SP strategies the cap rides along with lifecycle
// (pair-alarm) responses: the spatial region stays sound against static
// regions, but past the cap the partner may have closed the distance, so
// the client must report. Legacy responses carry no cap (hasPeriod stays
// false) and behave exactly as before.
func (c *Client) expired(tick int) bool {
	return c.hasPeriod && tick >= c.safeUntil
}

// Report unconditionally generates a position report, advancing the seq.
// The session layer uses it instead of Tick when it has already decided
// (via SafeNow) that a report is due.
func (c *Client) Report(tick int, pos geom.Point) *wire.PositionUpdate {
	return c.report(tick, pos)
}

func (c *Client) report(tick int, pos geom.Point) *wire.PositionUpdate {
	c.seq++
	c.lastSent = tick
	c.awaiting = true
	c.everSent = true
	c.met.MessagesSent++
	return &wire.PositionUpdate{User: c.user, Seq: c.seq, Pos: pos}
}

// acceptSeq decides whether a monitoring-state message applies: Seq equal
// to the outstanding report is the reply (and resumes monitoring); Seq 0
// is a server-initiated push (moving-target invalidation), always applied
// without touching the awaiting state.
func (c *Client) acceptSeq(seq uint32) bool {
	switch seq {
	case c.seq:
		c.awaiting = false
		return true
	case 0:
		return true
	default:
		return false
	}
}

// Handle applies a server message received at the given tick. Responses to
// superseded reports (stale Seq) are ignored except for AlarmFired, which
// is always honoured, and server-initiated pushes (Seq 0), which update
// monitoring state without counting as a reply.
func (c *Client) Handle(tick int, m wire.Message) error {
	switch v := m.(type) {
	case wire.AlarmFired:
		for _, id := range v.Alarms {
			if c.firedSeen == nil {
				c.firedSeen = make(map[uint64]struct{})
			}
			if _, dup := c.firedSeen[id]; dup {
				continue // redelivered firing: already recorded
			}
			c.firedSeen[id] = struct{}{}
			c.fired = append(c.fired, id)
		}
		// Fired alarms vanish from the OPT local set immediately.
		if len(c.alarms) > 0 {
			kept := c.alarms[:0]
			for _, a := range c.alarms {
				if !contains(v.Alarms, a.ID) {
					kept = append(kept, a)
				}
			}
			c.alarms = kept
		}
		return nil
	case wire.RectRegion:
		if !c.acceptSeq(v.Seq) {
			return nil
		}
		c.applyCap(tick, v.Cap)
		if c.strategy == wire.StrategyPBSR {
			// Quick-update patch: extend the bitmap region with a
			// rectangle proven safe by the server.
			c.patches = append(c.patches, v.Rect)
			if len(c.patches) > maxPatches {
				c.patches = c.patches[len(c.patches)-maxPatches:]
			}
			return nil
		}
		c.rect, c.hasRect = v.Rect, true
		return nil
	case wire.BitmapRegion:
		if !c.acceptSeq(v.Seq) {
			return nil
		}
		reg, err := pyramid.Decode(v.Bitmap())
		if err != nil {
			return fmt.Errorf("client %d: decode bitmap: %w", c.user, err)
		}
		c.applyCap(tick, v.Cap)
		c.region = reg
		c.patches = c.patches[:0] // patches belong to the previous bitmap
		return nil
	case wire.SafePeriod:
		if !c.acceptSeq(v.Seq) {
			return nil
		}
		// Report again at tick + Ticks, not one later: when the distance is
		// an exact multiple of v_max·dt the client can touch the nearest
		// alarm boundary (inclusive containment) exactly Ticks ticks after
		// the report, so that tick must itself be evaluated.
		c.safeUntil = tick + int(v.Ticks)
		c.hasPeriod = true
		return nil
	case wire.AlarmPush:
		if !c.acceptSeq(v.Seq) {
			return nil
		}
		c.applyCap(tick, v.Cap)
		c.cell, c.hasCell = v.Cell, true
		c.alarms = append(c.alarms[:0], v.Alarms...)
		return nil
	case wire.Ack:
		if c.acceptSeq(v.Seq) {
			c.applyCap(tick, v.Cap)
		}
		return nil
	default:
		return fmt.Errorf("client %d: unexpected message %v", c.user, m.Kind())
	}
}

// applyCap installs the time cap a monitoring-state message carries in its
// Cap field: 0 clears any previous cap (the server vouches there is no
// pair alarm limiting this region), v > 0 expires the proof v-1 ticks
// after receipt. Because the cap rides inside the same wire message as the
// region it limits, a lossy link can never deliver the region while
// dropping its cap. SP clients keep their period — it IS their monitoring
// state, replaced only by SafePeriod messages.
func (c *Client) applyCap(tick int, cap uint32) {
	if c.strategy == wire.StrategySafePeriod {
		return
	}
	if cap == 0 {
		c.hasPeriod = false
		return
	}
	c.safeUntil = tick + int(cap) - 1
	c.hasPeriod = true
}

// Acknowledge clears the awaiting flag for strategies that get no
// monitoring payload back (periodic clients).
func (c *Client) Acknowledge() { c.awaiting = false }

func contains(ids []uint64, id uint64) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
