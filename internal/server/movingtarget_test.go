package server

import (
	"testing"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/wire"
)

// TestMovingTargetPushes exercises the engine-level push path: when a
// target reports, affected subscribers receive recomputed monitoring
// state as Seq-0 messages, charged to the downlink counters.
func TestMovingTargetPushes(t *testing.T) {
	e := newEngine(t, nil)
	install(t, e, alarm.Alarm{
		Scope:       alarm.Shared,
		Owner:       2,
		Subscribers: []alarm.UserID{2, 3},
		Region:      geom.RectAround(geom.Pt(1000, 1000), 200),
		Target:      1,
	})
	register(t, e, 1, wire.StrategyPeriodic) // the target
	register(t, e, 2, wire.StrategyMWPSR)
	register(t, e, 3, wire.StrategyPBSR)

	pushed := map[alarm.UserID][]wire.Message{}
	e.SetPusher(func(user alarm.UserID, msgs []wire.Message) {
		pushed[user] = append(pushed[user], msgs...)
	})

	// Subscribers report once so the server knows their positions.
	handle(t, e, 2, 1, geom.Pt(5000, 5000))
	handle(t, e, 3, 1, geom.Pt(6000, 6000))
	downBefore := e.Metrics().Snapshot().DownlinkBytes

	// The target moves: both subscribers must get fresh state.
	handle(t, e, 1, 1, geom.Pt(4000, 4000))
	if len(pushed[2]) != 1 {
		t.Fatalf("subscriber 2 got %d pushes, want 1", len(pushed[2]))
	}
	if len(pushed[3]) != 1 {
		t.Fatalf("subscriber 3 got %d pushes, want 1", len(pushed[3]))
	}
	if rr, ok := pushed[2][0].(wire.RectRegion); !ok || rr.Seq != 0 {
		t.Errorf("subscriber 2 push = %#v, want Seq-0 RectRegion", pushed[2][0])
	}
	if bm, ok := pushed[3][0].(wire.BitmapRegion); !ok || bm.Seq != 0 {
		t.Errorf("subscriber 3 push = %#v, want Seq-0 BitmapRegion", pushed[3][0])
	}
	if e.Metrics().Snapshot().DownlinkBytes <= downBefore {
		t.Error("pushes not charged to downlink")
	}
	// The pushed MWPSR region must exclude the moved alarm.
	rr := pushed[2][0].(wire.RectRegion)
	moved := geom.RectAround(geom.Pt(4000, 4000), 200)
	if rr.Rect.Overlaps(moved) {
		t.Errorf("pushed region %v overlaps moved alarm %v", rr.Rect, moved)
	}
	// A non-subscriber (the target itself) gets nothing.
	if len(pushed[1]) != 0 {
		t.Errorf("target received %d pushes", len(pushed[1]))
	}
}

// TestMovingTargetWithoutPusher: without a pusher the engine still moves
// the region (evaluation correctness) and does not panic.
func TestMovingTargetWithoutPusher(t *testing.T) {
	e := newEngine(t, nil)
	id := install(t, e, alarm.Alarm{
		Scope: alarm.Private, Owner: 2,
		Region: geom.RectAround(geom.Pt(1000, 1000), 200),
		Target: 1,
	})
	register(t, e, 1, wire.StrategyPeriodic)
	register(t, e, 2, wire.StrategyPeriodic)
	handle(t, e, 1, 1, geom.Pt(4000, 4000)) // moves the alarm
	out := handle(t, e, 2, 1, geom.Pt(4000, 4000))
	found := false
	for _, m := range out {
		if f, ok := m.(wire.AlarmFired); ok {
			for _, a := range f.Alarms {
				if a == uint64(id) {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("moved alarm did not fire at its new location")
	}
}

// TestPublicMovingTargetPushScope: public moving-target alarms push only
// to clients whose cells intersect the old or new region.
func TestPublicMovingTargetPushScope(t *testing.T) {
	e := newEngine(t, nil)
	install(t, e, alarm.Alarm{
		Scope:  alarm.Public,
		Owner:  1,
		Region: geom.RectAround(geom.Pt(1000, 1000), 200),
		Target: 1,
	})
	register(t, e, 1, wire.StrategyPeriodic)
	register(t, e, 5, wire.StrategyMWPSR) // near the new region
	register(t, e, 6, wire.StrategyMWPSR) // far away

	pushed := map[alarm.UserID]int{}
	e.SetPusher(func(user alarm.UserID, msgs []wire.Message) { pushed[user] += len(msgs) })

	handle(t, e, 5, 1, geom.Pt(4100, 4100))
	handle(t, e, 6, 1, geom.Pt(9500, 9500))
	handle(t, e, 1, 1, geom.Pt(4000, 4000)) // target moves near client 5

	if pushed[5] != 1 {
		t.Errorf("nearby client got %d pushes, want 1", pushed[5])
	}
	if pushed[6] != 0 {
		t.Errorf("distant client got %d pushes, want 0", pushed[6])
	}
}
